package reach

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// plantSystem assembles the paper's power-plant schema over the
// public API.
func plantSystem(t testing.TB, dir string) (*System, *VirtualClock) {
	t.Helper()
	vc := NewVirtualClock(time.Date(1995, 3, 6, 0, 0, 0, 0, time.UTC))
	sys, err := Open(Options{Dir: dir, Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	river := NewClass("River",
		Attr{Name: "level", Type: TInt},
		Attr{Name: "temp", Type: TFloat},
	)
	river.Monitored = true
	river.Method("updateWaterLevel", func(ctx *Ctx, self *Object, args []any) (any, error) {
		return nil, ctx.Set(self, "level", args[0])
	})
	river.Method("getWaterTemp", func(ctx *Ctx, self *Object, args []any) (any, error) {
		return ctx.GetFloat(self, "temp")
	})
	reactor := NewClass("Reactor",
		Attr{Name: "heatOutput", Type: TFloat},
		Attr{Name: "plannedPower", Type: TFloat},
	)
	reactor.Monitored = true
	reactor.Method("getHeatOutput", func(ctx *Ctx, self *Object, args []any) (any, error) {
		return ctx.GetFloat(self, "heatOutput")
	})
	reactor.Method("reducePlannedPower", func(ctx *Ctx, self *Object, args []any) (any, error) {
		frac := args[0].(float64)
		p, err := ctx.GetFloat(self, "plannedPower")
		if err != nil {
			return nil, err
		}
		return nil, ctx.Set(self, "plannedPower", p*(1-frac))
	})
	for _, c := range []*Class{river, reactor} {
		if err := sys.RegisterClass(c); err != nil {
			t.Fatal(err)
		}
	}
	return sys, vc
}

// TestPaperScenarioEndToEnd drives the paper's §6.1 rule through the
// public API against a persistent store, reopens the database, and
// verifies the rule's effects survived.
func TestPaperScenarioEndToEnd(t *testing.T) {
	dir := t.TempDir()
	sys, _ := plantSystem(t, dir)

	tx := sys.Begin()
	river, _ := sys.DB.NewObject(tx, "River")
	sys.DB.Set(tx, river, "temp", 26.0)
	reactor, _ := sys.DB.NewObject(tx, "Reactor")
	sys.DB.Set(tx, reactor, "heatOutput", 2_000_000.0)
	sys.DB.Set(tx, reactor, "plannedPower", 1000.0)
	if err := sys.DB.SetRoot(tx, "BlockA", reactor); err != nil {
		t.Fatal(err)
	}
	if err := sys.DB.SetRoot(tx, "Rhine", river); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	loaded, err := sys.LoadRules(`
rule WaterLevel {
    prio 5;
    decl River *river, int x, Reactor *reactor named "BlockA";
    event after river->updateWaterLevel(x);
    cond imm x < 37 and river->getWaterTemp() > 24.5
             and reactor->getHeatOutput() > 1000000;
    action imm reactor->reducePlannedPower(0.05);
};`)
	if err != nil {
		t.Fatal(err)
	}

	tx2 := sys.Begin()
	if _, err := sys.DB.Invoke(tx2, river, "updateWaterLevel", int64(30)); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	loaded.Stop()
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the 5% reduction must be durable.
	sys2, _ := plantSystem(t, dir)
	defer sys2.Close()
	tx3 := sys2.Begin()
	reactor2, err := sys2.DB.Root(tx3, "BlockA")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := sys2.DB.Get(tx3, reactor2, "plannedPower"); v != 950.0 {
		t.Fatalf("plannedPower after reopen = %v, want 950", v)
	}
	tx3.Commit()
}

// TestQueryWithRuleMaintainedIndex combines the query processor, the
// ECA-maintained index, and rule firing in one flow.
func TestQueryWithRuleMaintainedIndex(t *testing.T) {
	sys, _ := plantSystem(t, "")
	defer sys.Close()

	tx := sys.Begin()
	for i := 0; i < 20; i++ {
		r, _ := sys.DB.NewObject(tx, "River")
		sys.DB.Set(tx, r, "level", int64(i%5))
	}
	tx.Commit()

	ix, err := sys.Query.CreateIndex("River", "level")
	if err != nil {
		t.Fatal(err)
	}
	if ix.Size() != 20 {
		t.Fatalf("index size = %d, want 20", ix.Size())
	}

	tx2 := sys.Begin()
	objs, err := sys.Query.OQL(tx2, `select r from River r where r.level == 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 4 {
		t.Fatalf("OQL matched %d, want 4", len(objs))
	}
	// Mutate through a sentried method; the index rule keeps up.
	if _, err := sys.DB.Invoke(tx2, objs[0], "updateWaterLevel", int64(99)); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
	if got := ix.Lookup(int64(99)); len(got) != 1 {
		t.Fatalf("index after sentried update: %v", got)
	}
}

// TestTemporalRuleViaPublicAPI arms a periodic DSL rule and advances
// the virtual clock.
func TestTemporalRuleViaPublicAPI(t *testing.T) {
	sys, vc := plantSystem(t, "")
	defer sys.Close()
	tx := sys.Begin()
	river, _ := sys.DB.NewObject(tx, "River")
	sys.DB.SetRoot(tx, "Rhine", river)
	tx.Commit()

	loaded, err := sys.LoadRules(`
rule Sample {
    decl River *r named "Rhine";
    event every 15s;
    action detached set r.level = r.level + 1;
};`)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Stop()
	vc.Advance(time.Minute)
	sys.Engine.WaitDetached()
	tx2 := sys.Begin()
	if v, _ := sys.DB.Get(tx2, river, "level"); v != int64(4) {
		t.Fatalf("level = %v, want 4", v)
	}
	tx2.Commit()
}

// TestCompositeAcrossPublicAPI defines a cross-transaction composite
// programmatically.
func TestCompositeAcrossPublicAPI(t *testing.T) {
	sys, _ := plantSystem(t, "")
	defer sys.Close()
	tx := sys.Begin()
	river, _ := sys.DB.NewObject(tx, "River")
	tx.Commit()

	key := MethodSpec{Class: "River", Method: "updateWaterLevel", When: After}.Key()
	comp := &Composite{
		Name:     "two-updates",
		Expr:     Seq{Exprs: []Expr{Prim{Key: key}, Prim{Key: key}}},
		Policy:   Chronicle,
		Scope:    ScopeGlobal,
		Validity: time.Hour,
	}
	if err := sys.Engine.DefineComposite(comp); err != nil {
		t.Fatal(err)
	}
	var fired atomic.Int64
	sys.Engine.AddRule(&Rule{
		Name: "onPair", EventKey: comp.Key(), ActionMode: Detached,
		Action: func(rc *RuleCtx) error { fired.Add(1); return nil },
	})
	for i := 0; i < 4; i++ {
		tx := sys.Begin()
		sys.DB.Invoke(tx, river, "updateWaterLevel", int64(i))
		tx.Commit()
	}
	sys.Engine.DrainComposers()
	sys.Engine.WaitDetached()
	// With one event type at both positions, every update both
	// terminates the oldest open pair and opens a new one: 4 updates
	// yield the 3 overlapping pairs (1,2) (2,3) (3,4).
	if fired.Load() != 3 {
		t.Fatalf("pairs fired = %d, want 3 (chronicle over 4 updates)", fired.Load())
	}
}

// TestVetoRuleProtectsInvariant shows an immediate before-rule acting
// as an integrity constraint through the public API.
func TestVetoRuleProtectsInvariant(t *testing.T) {
	sys, _ := plantSystem(t, "")
	defer sys.Close()
	tx := sys.Begin()
	river, _ := sys.DB.NewObject(tx, "River")
	tx.Commit()

	loaded, err := sys.LoadRules(`
rule NonNegative {
    decl River *r, int x;
    event before r->updateWaterLevel(x);
    cond imm x < 0;
    action imm abort "water level cannot be negative";
};`)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Stop()
	tx2 := sys.Begin()
	if _, err := sys.DB.Invoke(tx2, river, "updateWaterLevel", int64(-1)); err == nil {
		t.Fatal("negative update not vetoed")
	}
	if _, err := sys.DB.Invoke(tx2, river, "updateWaterLevel", int64(10)); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
}

// TestManyObjectsManyRules is a small load test over the public API.
func TestManyObjectsManyRules(t *testing.T) {
	sys, _ := plantSystem(t, "")
	defer sys.Close()
	var fired atomic.Int64
	key := MethodSpec{Class: "River", Method: "updateWaterLevel", When: After}.Key()
	for i := 0; i < 10; i++ {
		sys.Engine.AddRule(&Rule{
			Name: fmt.Sprintf("r%d", i), EventKey: key, Priority: i, ActionMode: Immediate,
			Action: func(*RuleCtx) error { fired.Add(1); return nil },
		})
	}
	tx := sys.Begin()
	var rivers []*Object
	for i := 0; i < 50; i++ {
		r, _ := sys.DB.NewObject(tx, "River")
		rivers = append(rivers, r)
	}
	tx.Commit()
	for round := 0; round < 10; round++ {
		tx := sys.Begin()
		for _, r := range rivers {
			if _, err := sys.DB.Invoke(tx, r, "updateWaterLevel", int64(round)); err != nil {
				t.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if fired.Load() != 10*50*10 {
		t.Fatalf("fired = %d, want %d", fired.Load(), 10*50*10)
	}
	st := sys.Engine.Stats()
	if st.Events != 500 {
		t.Fatalf("events = %d, want 500", st.Events)
	}
}
