package reach_test

import (
	"os"
	"path/filepath"
	"testing"

	reach "repro"
)

// TestExampleRulesVetClean parses and vets every .rules file shipped
// with the examples. A rule edit that drifts into Table 1-invalid
// territory — or an engine change that re-categorizes an event — fails
// here, in tier-1, before it fails at load time in a demo.
func TestExampleRulesVetClean(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("examples", "*", "rules", "*.rules"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no example rule files found; the glob or the layout moved")
	}
	vetter := reach.NewRuleVetter()
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		decls, err := reach.ParseRules(string(src))
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		for _, d := range vetter.Vet(path, decls) {
			t.Errorf("%s", d)
		}
	}
}
