// Workflow management: the paper's intro names workflow as a domain
// that "combines event-driven activities with temporal constraints".
// Orders flow through steps (received → packed → shipped) recorded in
// the chronicle consumption context so completions consume step events
// in arrival order. A milestone tracks each order transaction against
// its deadline and invokes a contingency (detached, as Table 1
// requires for temporal events); an exclusive-causal compensation
// commits only when an order transaction aborts.
//
//	go run ./examples/workflow
package main

import (
	"fmt"
	"log"
	"sync/atomic" //lint:allow rawatomics demo-local escalation counter, not an engine metric
	"time"

	reach "repro"
)

func main() {
	vc := reach.NewVirtualClock(time.Date(1995, 3, 6, 8, 0, 0, 0, time.UTC))
	sys, err := reach.Open(reach.Options{Clock: vc})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	order := reach.NewClass("Order",
		reach.Attr{Name: "id", Type: reach.TString},
		reach.Attr{Name: "state", Type: reach.TString},
	)
	order.Monitored = true
	for _, step := range []string{"receive", "pack", "ship"} {
		step := step
		order.Method(step, func(ctx *reach.Ctx, self *reach.Object, args []any) (any, error) {
			return nil, ctx.Set(self, "state", step)
		})
	}
	if err := sys.RegisterClass(order); err != nil {
		log.Fatal(err)
	}

	// Composite: the full receive;pack;ship chain within one order
	// transaction, chronicle context (workflow steps are consumed in
	// chronological order, §3.4). The deferred rule stamps completion
	// before the order transaction commits.
	key := func(m string) string {
		return reach.MethodSpec{Class: "Order", Method: m, When: reach.After}.Key()
	}
	chain := &reach.Composite{
		Name: "fulfilled",
		Expr: reach.Seq{Exprs: []reach.Expr{
			reach.Prim{Key: key("receive")},
			reach.Prim{Key: key("pack")},
			reach.Prim{Key: key("ship")},
		}},
		Policy: reach.Chronicle,
		Scope:  reach.ScopeTransaction,
	}
	if err := sys.Engine.DefineComposite(chain); err != nil {
		log.Fatal(err)
	}
	var fulfilled atomic.Int64
	sys.Engine.AddRule(&reach.Rule{
		Name: "Fulfilled", EventKey: chain.Key(), ActionMode: reach.Deferred,
		Action: func(rc *reach.RuleCtx) error {
			fulfilled.Add(1)
			fmt.Println("  [deferred] order fulfilled inside its transaction")
			return nil
		},
	})

	// Compensation: commits only if the order transaction aborts
	// (exclusive detached causally dependent, §3.2).
	var compensations atomic.Int64
	compDone := make(chan reach.TxnStatus, 8)
	sys.Engine.AddRule(&reach.Rule{
		Name:       "Compensate",
		EventKey:   key("receive"),
		ActionMode: reach.DetachedExclusiveCausal,
		Action: func(rc *reach.RuleCtx) error {
			t := rc.Txn
			go func() {
				st := t.Wait()
				if st == reach.TxnCommitted {
					compensations.Add(1)
					fmt.Println("  [exclusive-causal] compensation COMMITTED (trigger aborted)")
				}
				compDone <- st
			}()
			return nil
		},
	})

	// Milestone contingency: if the order transaction has not finished
	// 30 simulated minutes after its receive step, escalate.
	milestone := reach.TemporalSpec{Name: "order-deadline", Temporal: reach.MilestoneKind, Delay: 30 * time.Minute}
	var escalations atomic.Int64
	sys.Engine.AddRule(&reach.Rule{
		Name: "Escalate", EventKey: milestone.Key(), ActionMode: reach.Detached,
		Action: func(rc *reach.RuleCtx) error {
			escalations.Add(1)
			fmt.Printf("  [contingency] txn %v missed its milestone — escalating\n", rc.Trigger.Args[0])
			return nil
		},
	})

	// --- Order 1: completes in time. -------------------------------
	fmt.Println("-- order A: received, packed, shipped, committed in time")
	txA := sys.Begin()
	a, _ := sys.DB.NewObject(txA, "Order")
	sys.DB.Set(txA, a, "id", "A")
	hA, _ := sys.Engine.ArmMilestone(txA, milestone)
	sys.DB.Invoke(txA, a, "receive")
	vc.Advance(5 * time.Minute)
	sys.DB.Invoke(txA, a, "pack")
	vc.Advance(5 * time.Minute)
	sys.DB.Invoke(txA, a, "ship")
	if err := txA.Commit(); err != nil {
		log.Fatal(err)
	}
	hA.Stop()

	// --- Order 2: aborted — compensation commits. ------------------
	fmt.Println("-- order B: received, then the transaction aborts")
	txB := sys.Begin()
	b, _ := sys.DB.NewObject(txB, "Order")
	sys.DB.Set(txB, b, "id", "B")
	sys.DB.Invoke(txB, b, "receive")
	_ = txB.Abort() // the abort is the demonstration; it cannot fail here
	sys.Engine.WaitDetached()
	<-compDone // order A's compensation resolved (aborted)
	<-compDone // order B's compensation resolved (committed)

	// --- Order 3: stalls past its milestone. ------------------------
	fmt.Println("-- order C: received, then stalls past the 30-minute milestone")
	txC := sys.Begin()
	c, _ := sys.DB.NewObject(txC, "Order")
	sys.DB.Set(txC, c, "id", "C")
	sys.Engine.ArmMilestone(txC, milestone)
	sys.DB.Invoke(txC, c, "receive")
	vc.Advance(45 * time.Minute) // deadline passes while still active
	// Note: WaitDetached here would deadlock — the exclusive-causal
	// compensation is itself waiting for txC to resolve. Wait only for
	// the escalation to be observed.
	for escalations.Load() == 0 {
		time.Sleep(time.Millisecond) //lint:allow clockusage demo pacing against the real scheduler, not engine time
	}
	sys.DB.Invoke(txC, c, "pack")
	sys.DB.Invoke(txC, c, "ship")
	if err := txC.Commit(); err != nil {
		log.Fatal(err)
	}
	sys.Engine.WaitDetached()
	<-compDone // order C's compensation resolved (aborted)

	fmt.Printf("\nfulfilled: %d, compensations committed: %d, escalations: %d\n",
		fulfilled.Load(), compensations.Load(), escalations.Load())
	st := sys.Engine.Stats()
	fmt.Printf("engine: %d events, %d composites, %d deferred, %d detached\n",
		st.Events, st.CompositesDetected, st.DeferredFired, st.DetachedFired)
}
