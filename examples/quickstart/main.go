// Quickstart: open a REACH database, define a monitored class, load a
// rule in the REACH rule language, and watch it fire.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	reach "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "reach-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sys, err := reach.Open(reach.Options{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// A monitored class: every method invocation and attribute change
	// is trapped by the sentry and delivered to the rule engine.
	account := reach.NewClass("Account",
		reach.Attr{Name: "owner", Type: reach.TString},
		reach.Attr{Name: "balance", Type: reach.TInt},
	)
	account.Monitored = true
	account.Method("deposit", func(ctx *reach.Ctx, self *reach.Object, args []any) (any, error) {
		b, err := ctx.GetInt(self, "balance")
		if err != nil {
			return nil, err
		}
		return nil, ctx.Set(self, "balance", b+args[0].(int64))
	})
	account.Method("withdraw", func(ctx *reach.Ctx, self *reach.Object, args []any) (any, error) {
		b, err := ctx.GetInt(self, "balance")
		if err != nil {
			return nil, err
		}
		return nil, ctx.Set(self, "balance", b-args[0].(int64))
	})
	if err := sys.RegisterClass(account); err != nil {
		log.Fatal(err)
	}

	// Create and persist an account under a root name.
	tx := sys.Begin()
	acct, err := sys.DB.NewObject(tx, "Account")
	if err != nil {
		log.Fatal(err)
	}
	sys.DB.Set(tx, acct, "owner", "ada")
	sys.DB.Set(tx, acct, "balance", 100)
	if err := sys.DB.SetRoot(tx, "ada-account", acct); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	// An integrity rule in the REACH rule language: withdrawals that
	// would overdraw the account are vetoed immediately.
	loaded, err := sys.LoadRules(`
rule NoOverdraft {
    prio 10;
    decl Account *a, int amount;
    event before a->withdraw(amount);
    cond imm a.balance - amount < 0;
    action imm abort "overdraft refused";
};
`)
	if err != nil {
		log.Fatal(err)
	}
	defer loaded.Stop()

	tx2 := sys.Begin()
	if _, err := sys.DB.Invoke(tx2, acct, "withdraw", int64(30)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("withdraw 30: ok")
	if _, err := sys.DB.Invoke(tx2, acct, "withdraw", int64(500)); err != nil {
		fmt.Println("withdraw 500:", err)
	} else {
		log.Fatal("overdraft was not vetoed")
	}
	if err := tx2.Commit(); err != nil {
		log.Fatal(err)
	}

	tx3 := sys.Begin()
	balance, _ := sys.DB.Get(tx3, acct, "balance")
	fmt.Printf("final balance: %d\n", balance)
	if err := tx3.Commit(); err != nil {
		log.Fatal(err)
	}

	st := sys.Engine.Stats()
	fmt.Printf("engine: %d events, %d immediate rule firings\n", st.Events, st.ImmediateFired)
}
