// Power-plant monitoring: the paper's §6.1 scenario. A cooling river
// feeds a reactor; whenever the water level drops below a mark while
// the water is warm and the reactor runs hot, planned power output is
// reduced by 5% — the WaterLevel rule, written in the REACH rule
// language exactly as in the paper. A second, composite rule raises a
// detached alert when three low-level readings arrive within one
// transaction, and an exclusive-causal contingency logs compensations
// for aborted control transactions.
//
//	go run ./examples/powerplant
package main

import (
	"fmt"
	"log"
	"os"

	reach "repro"
)

func registerSchema(sys *reach.System) error {
	river := reach.NewClass("River",
		reach.Attr{Name: "name", Type: reach.TString},
		reach.Attr{Name: "level", Type: reach.TInt},
		reach.Attr{Name: "temp", Type: reach.TFloat},
	)
	river.Monitored = true
	river.Method("updateWaterLevel", func(ctx *reach.Ctx, self *reach.Object, args []any) (any, error) {
		return nil, ctx.Set(self, "level", args[0])
	})
	river.Method("getWaterTemp", func(ctx *reach.Ctx, self *reach.Object, args []any) (any, error) {
		return ctx.GetFloat(self, "temp")
	})

	reactor := reach.NewClass("Reactor",
		reach.Attr{Name: "name", Type: reach.TString},
		reach.Attr{Name: "heatOutput", Type: reach.TFloat},
		reach.Attr{Name: "plannedPower", Type: reach.TFloat},
		reach.Attr{Name: "alerts", Type: reach.TInt},
	)
	reactor.Monitored = true
	reactor.Method("getHeatOutput", func(ctx *reach.Ctx, self *reach.Object, args []any) (any, error) {
		return ctx.GetFloat(self, "heatOutput")
	})
	reactor.Method("reducePlannedPower", func(ctx *reach.Ctx, self *reach.Object, args []any) (any, error) {
		frac := args[0].(float64)
		p, err := ctx.GetFloat(self, "plannedPower")
		if err != nil {
			return nil, err
		}
		fmt.Printf("  [action] reducing planned power of %v by %.0f%%\n", self, frac*100)
		return nil, ctx.Set(self, "plannedPower", p*(1-frac))
	})
	reactor.Method("raiseAlert", func(ctx *reach.Ctx, self *reach.Object, args []any) (any, error) {
		n, err := ctx.GetInt(self, "alerts")
		if err != nil {
			return nil, err
		}
		fmt.Printf("  [action] ALERT #%d on %v: sustained low water\n", n+1, self)
		return nil, ctx.Set(self, "alerts", n+1)
	})
	for _, c := range []*reach.Class{river, reactor} {
		if err := sys.RegisterClass(c); err != nil {
			return err
		}
	}
	return nil
}

// plantRules holds the WaterLevel rule verbatim from the paper plus a
// composite low-water alert (three low readings in one transaction,
// detected by the event algebra, fired deferred at EOT).
const plantRules = `
rule WaterLevel {
    prio 5;
    decl River *river, int x, Reactor *reactor named "BlockA";
    event after river->updateWaterLevel(x);
    cond imm x < 37 and river->getWaterTemp() > 24.5
             and reactor->getHeatOutput() > 1000000;
    action imm reactor->reducePlannedPower(0.05);
};

rule SustainedLowWater {
    prio 3;
    decl River *r1, int a, River *r2, int b, River *r3, int c,
         Reactor *reactor named "BlockA";
    event seq(after r1->updateWaterLevel(a),
              after r2->updateWaterLevel(b),
              after r3->updateWaterLevel(c));
    cond deferred a < 37 and b < 37 and c < 37;
    action deferred reactor->raiseAlert();
};
`

func main() {
	dir, err := os.MkdirTemp("", "reach-powerplant")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sys, err := reach.Open(reach.Options{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	if err := registerSchema(sys); err != nil {
		log.Fatal(err)
	}

	// Plant setup.
	tx := sys.Begin()
	river, _ := sys.DB.NewObject(tx, "River")
	sys.DB.Set(tx, river, "name", "Rhine")
	sys.DB.Set(tx, river, "temp", 26.5)
	reactor, _ := sys.DB.NewObject(tx, "Reactor")
	sys.DB.Set(tx, reactor, "name", "Block A")
	sys.DB.Set(tx, reactor, "heatOutput", 1_800_000.0)
	sys.DB.Set(tx, reactor, "plannedPower", 1200.0)
	if err := sys.DB.SetRoot(tx, "BlockA", reactor); err != nil {
		log.Fatal(err)
	}
	sys.DB.SetRoot(tx, "Rhine", river)
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	loaded, err := sys.LoadRules(plantRules)
	if err != nil {
		log.Fatal(err)
	}
	defer loaded.Stop()
	fmt.Printf("loaded %d rules, %d composite events\n", len(loaded.Rules), len(loaded.Composites))

	// Scenario 1: one low reading — WaterLevel fires immediately.
	fmt.Println("\n-- sensor reports level 30 (low, warm river, hot reactor)")
	tx1 := sys.Begin()
	if _, err := sys.DB.Invoke(tx1, river, "updateWaterLevel", int64(30)); err != nil {
		log.Fatal(err)
	}
	if err := tx1.Commit(); err != nil {
		log.Fatal(err)
	}

	// Scenario 2: high reading — condition false, nothing fires.
	fmt.Println("\n-- sensor reports level 80 (normal)")
	tx2 := sys.Begin()
	sys.DB.Invoke(tx2, river, "updateWaterLevel", int64(80))
	if err := tx2.Commit(); err != nil {
		log.Fatal(err)
	}

	// Scenario 3: three low readings in one control transaction — the
	// composite SustainedLowWater fires deferred at EOT (after the
	// three immediate reductions).
	fmt.Println("\n-- control transaction with three low readings")
	tx3 := sys.Begin()
	for _, lvl := range []int64{35, 33, 31} {
		if _, err := sys.DB.Invoke(tx3, river, "updateWaterLevel", lvl); err != nil {
			log.Fatal(err)
		}
	}
	if err := tx3.Commit(); err != nil {
		log.Fatal(err)
	}

	// Scenario 4: an aborted control transaction leaves no trace —
	// the immediate reduction is rolled back with it, and the
	// half-composed sequence is discarded (life-span = transaction).
	fmt.Println("\n-- aborted control transaction (two low readings, then abort)")
	before := currentPower(sys, reactor)
	tx4 := sys.Begin()
	sys.DB.Invoke(tx4, river, "updateWaterLevel", int64(20))
	sys.DB.Invoke(tx4, river, "updateWaterLevel", int64(21))
	_ = tx4.Abort() // the abort is the demonstration; it cannot fail here
	after := currentPower(sys, reactor)
	fmt.Printf("  planned power before/after abort: %.2f / %.2f (unchanged)\n", before, after)

	sys.Engine.WaitDetached()
	tx5 := sys.Begin()
	power, _ := sys.DB.Get(tx5, reactor, "plannedPower")
	alerts, _ := sys.DB.Get(tx5, reactor, "alerts")
	if err := tx5.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal planned power: %.2f MW, alerts raised: %d\n", power, alerts)
	st := sys.Engine.Stats()
	fmt.Printf("engine: %d events, %d immediate, %d deferred, %d composites detected\n",
		st.Events, st.ImmediateFired, st.DeferredFired, st.CompositesDetected)
}

func currentPower(sys *reach.System, reactor *reach.Object) float64 {
	tx := sys.Begin()
	defer tx.Commit()
	v, _ := sys.DB.Get(tx, reactor, "plannedPower")
	f, _ := v.(float64)
	return f
}
