// Commodity trading: monitoring of an index in the continuous
// consumption context (paper §3.4 names "monitoring of the Dow Jones
// index" as the canonical use of the continuous context). Each tick
// arrives in its own feed transaction, so the composite "a drop
// followed by a recovery within 5 minutes" spans transactions: it is
// declared with global scope and a validity interval, and its rule
// runs detached — the only coupling Table 1 permits for
// multi-transaction composites besides the causal variants.
//
//	go run ./examples/trading
package main

import (
	"fmt"
	"log"
	"sync/atomic" //lint:allow rawatomics demo-local signal counter, not an engine metric
	"time"

	reach "repro"
)

func main() {
	vc := reach.NewVirtualClock(time.Date(1995, 3, 6, 9, 30, 0, 0, time.UTC))
	sys, err := reach.Open(reach.Options{Clock: vc})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	index := reach.NewClass("Index",
		reach.Attr{Name: "symbol", Type: reach.TString},
		reach.Attr{Name: "value", Type: reach.TFloat},
	)
	index.Monitored = true
	index.Method("tick", func(ctx *reach.Ctx, self *reach.Object, args []any) (any, error) {
		return nil, ctx.Set(self, "value", args[0])
	})
	if err := sys.RegisterClass(index); err != nil {
		log.Fatal(err)
	}

	tx := sys.Begin()
	dow, _ := sys.DB.NewObject(tx, "Index")
	sys.DB.Set(tx, dow, "symbol", "DJIA")
	sys.DB.Set(tx, dow, "value", 4000.0)
	sys.DB.SetRoot(tx, "DJIA", dow)
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	// Composite event: a drop tick then a rise tick, across feed
	// transactions, each drop opening its own window (continuous
	// context), valid for 5 minutes.
	tickAfter := reach.MethodSpec{Class: "Index", Method: "tick", When: reach.After}.Key()
	vshape := &reach.Composite{
		Name: "v-shape",
		Expr: reach.Seq{Exprs: []reach.Expr{
			reach.Prim{Key: tickAfter},
			reach.Prim{Key: tickAfter},
		}},
		Policy:   reach.Continuous,
		Scope:    reach.ScopeGlobal,
		Validity: 5 * time.Minute,
	}
	if err := sys.Engine.DefineComposite(vshape); err != nil {
		log.Fatal(err)
	}

	var signals atomic.Int64
	err = sys.Engine.AddRule(&reach.Rule{
		Name:       "VShapeSignal",
		EventKey:   vshape.Key(),
		ActionMode: reach.Detached,
		Cond: func(rc *reach.RuleCtx) (bool, error) {
			parts := rc.Trigger.Flatten()
			first := parts[0].Args[0].(float64)
			second := parts[1].Args[0].(float64)
			return second > first, nil // only rising pairs
		},
		Action: func(rc *reach.RuleCtx) error {
			parts := rc.Trigger.Flatten()
			signals.Add(1)
			fmt.Printf("  [signal] pair %.1f -> %.1f across txns %v\n",
				parts[0].Args[0], parts[1].Args[0], keys(rc.Trigger.Transactions()))
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Feed: each tick in its own transaction, time advancing.
	feed := []float64{3990, 3985, 4010, 3970, 3960}
	for _, v := range feed {
		tx := sys.Begin()
		if _, err := sys.DB.Invoke(tx, dow, "tick", v); err != nil {
			log.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
		vc.Advance(time.Minute)
	}
	sys.Engine.DrainComposers()
	sys.Engine.WaitDetached()
	fmt.Printf("signals after first feed: %d\n", signals.Load())

	// Validity: after 10 quiet minutes the pending windows expire and
	// a late rise does not pair with stale drops.
	vc.Advance(10 * time.Minute)
	dropped := sys.Engine.GCExpired()
	fmt.Printf("semi-composed occurrences garbage-collected after validity lapse: %d\n", dropped)

	tx2 := sys.Begin()
	sys.DB.Invoke(tx2, dow, "tick", 4050.0)
	if err := tx2.Commit(); err != nil {
		log.Fatal(err)
	}
	sys.Engine.DrainComposers()
	sys.Engine.WaitDetached()
	fmt.Printf("signals after late tick: %d (stale windows must not fire)\n", signals.Load())

	st := sys.Engine.Stats()
	fmt.Printf("engine: %d events, %d composites detected, %d detached firings, %d GCed\n",
		st.Events, st.CompositesDetected, st.DetachedFired, st.SemiComposedGCed)
}

func keys(m map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
