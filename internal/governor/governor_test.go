package governor

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
)

var epoch = time.Date(1995, time.March, 6, 0, 0, 0, 0, time.UTC)

// testGov returns a governor on a virtual clock with one resource
// ("load") whose value the returned gauge controls: 10 → degraded,
// 20 → shedding, 30 → read-only.
func testGov(t *testing.T, opts Options) (*Governor, *clock.Virtual, *obs.Gauge) {
	t.Helper()
	clk := clock.NewVirtual(epoch)
	opts.Clock = clk
	if opts.Hysteresis == 0 {
		opts.Hysteresis = time.Second
	}
	if opts.Interval == 0 {
		opts.Interval = 100 * time.Millisecond
	}
	g := New(opts)
	load := new(obs.Gauge)
	g.Register("load", load.Value, Levels{Degraded: 10, Shedding: 20, ReadOnly: 30})
	return g, clk, load
}

func TestStateLadderWorseIsImmediate(t *testing.T) {
	g, _, load := testGov(t, Options{})
	if got := g.Evaluate(); got != Healthy {
		t.Fatalf("initial state = %v, want healthy", got)
	}
	for _, step := range []struct {
		v    int64
		want State
	}{{9, Healthy}, {10, Degraded}, {20, Shedding}, {30, ReadOnly}} {
		load.Set(step.v)
		if got := g.Evaluate(); got != step.want {
			t.Fatalf("value %d: state = %v, want %v", step.v, got, step.want)
		}
	}
	// A single evaluation may jump several rungs at once.
	g2, _, load2 := testGov(t, Options{})
	load2.Set(25)
	if got := g2.Evaluate(); got != Shedding {
		t.Fatalf("jump to 25: state = %v, want shedding", got)
	}
}

func TestRecoveryWaitsOutHysteresis(t *testing.T) {
	g, clk, load := testGov(t, Options{Hysteresis: time.Second})
	load.Set(20)
	if got := g.Evaluate(); got != Shedding {
		t.Fatalf("state = %v, want shedding", got)
	}
	load.Set(0)
	if got := g.Evaluate(); got != Shedding {
		t.Fatalf("immediate recovery: state = %v, want shedding (hysteresis)", got)
	}
	clk.Advance(999 * time.Millisecond)
	if got := g.Evaluate(); got != Shedding {
		t.Fatalf("inside window: state = %v, want shedding", got)
	}
	clk.Advance(time.Millisecond)
	if got := g.Evaluate(); got != Healthy {
		t.Fatalf("after window: state = %v, want healthy", got)
	}
}

func TestRecoveryStreakResetsOnRelapse(t *testing.T) {
	g, clk, load := testGov(t, Options{Hysteresis: time.Second})
	load.Set(20)
	g.Evaluate()
	load.Set(0)
	g.Evaluate() // streak starts
	clk.Advance(900 * time.Millisecond)
	load.Set(20)
	g.Evaluate() // relapse: streak over
	load.Set(0)
	clk.Advance(200 * time.Millisecond)
	if got := g.Evaluate(); got != Shedding {
		t.Fatalf("old streak must not count: state = %v, want shedding", got)
	}
	clk.Advance(time.Second)
	if got := g.Evaluate(); got != Healthy {
		t.Fatalf("fresh streak complete: state = %v, want healthy", got)
	}
}

func TestAdmitHealthyAndDegraded(t *testing.T) {
	g, _, load := testGov(t, Options{})
	if err := g.AdmitTxn(); err != nil {
		t.Fatalf("healthy admit: %v", err)
	}
	load.Set(10)
	g.Evaluate()
	if err := g.AdmitTxn(); err != nil {
		t.Fatalf("degraded admit: %v", err)
	}
}

func TestAdmitSheddingTimesOutWithErrOverloaded(t *testing.T) {
	g, clk, load := testGov(t, Options{AdmitDeadline: 250 * time.Millisecond})
	load.Set(20)
	g.Evaluate()
	errc := make(chan error, 1)
	go func() { errc <- g.AdmitTxn() }()
	waitPending(t, clk) // admission parked on the deadline timer
	clk.Advance(250 * time.Millisecond)
	select {
	case err := <-errc:
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("err = %v, want ErrOverloaded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AdmitTxn did not return after deadline")
	}
	if sheds := g.Sheds(); sheds[ClassWriter] != 1 {
		t.Fatalf("writer sheds = %d, want 1", sheds[ClassWriter])
	}
}

func TestAdmitSheddingAdmittedOnRecovery(t *testing.T) {
	g, clk, load := testGov(t, Options{Hysteresis: time.Millisecond, AdmitDeadline: time.Hour})
	load.Set(20)
	g.Evaluate()
	errc := make(chan error, 1)
	go func() { errc <- g.AdmitTxn() }()
	waitPending(t, clk)
	load.Set(0)
	g.Evaluate()
	clk.Advance(time.Millisecond)
	g.Evaluate() // hysteresis out: shedding → healthy, broadcasts waiters
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("recovered admit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked AdmitTxn not released by recovery")
	}
}

func TestAdmitReadOnlyRejectsImmediately(t *testing.T) {
	g, _, load := testGov(t, Options{AdmitDeadline: time.Hour})
	load.Set(30)
	g.Evaluate()
	if err := g.AdmitTxn(); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("read-only admit err = %v, want ErrOverloaded", err)
	}
}

func TestShutdownRefusesAndReleasesWaiters(t *testing.T) {
	g, clk, load := testGov(t, Options{AdmitDeadline: time.Hour})
	load.Set(20)
	g.Evaluate()
	errc := make(chan error, 1)
	go func() { errc <- g.AdmitTxn() }()
	waitPending(t, clk)
	g.BeginShutdown()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrShutdown) {
			t.Fatalf("parked waiter err = %v, want ErrShutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked AdmitTxn not released by shutdown")
	}
	if err := g.AdmitTxn(); !errors.Is(err, ErrShutdown) {
		t.Fatalf("post-shutdown admit err = %v, want ErrShutdown", err)
	}
	if !g.ShuttingDown() {
		t.Fatal("ShuttingDown() = false after BeginShutdown")
	}
	g.BeginShutdown() // idempotent
}

func TestShouldShedLadder(t *testing.T) {
	g, _, load := testGov(t, Options{})
	cases := []struct {
		v                           int64
		detached, deferred, writer  bool
	}{
		{0, false, false, false},
		{10, true, false, false},
		{20, true, true, false},
		{30, true, true, true},
	}
	for _, c := range cases {
		load.Set(c.v)
		g.Evaluate()
		if got := g.ShouldShed(ClassDetached); got != c.detached {
			t.Errorf("v=%d ShouldShed(detached) = %v, want %v", c.v, got, c.detached)
		}
		if got := g.ShouldShed(ClassDeferred); got != c.deferred {
			t.Errorf("v=%d ShouldShed(deferred) = %v, want %v", c.v, got, c.deferred)
		}
		if got := g.ShouldShed(ClassWriter); got != c.writer {
			t.Errorf("v=%d ShouldShed(writer) = %v, want %v", c.v, got, c.writer)
		}
	}
}

func TestDisabledGovernorIsPassThrough(t *testing.T) {
	g, _, load := testGov(t, Options{Disabled: true})
	load.Set(1000)
	if got := g.Evaluate(); got != Healthy {
		t.Fatalf("disabled Evaluate = %v, want healthy", got)
	}
	if err := g.AdmitTxn(); err != nil {
		t.Fatalf("disabled admit: %v", err)
	}
	if g.ShouldShed(ClassDetached) {
		t.Fatal("disabled governor sheds")
	}
	g.Start() // must not start a loop
	g.Stop()
}

func TestNilGovernorIsSafe(t *testing.T) {
	var g *Governor
	if g.State() != Healthy {
		t.Fatal("nil State != healthy")
	}
	if err := g.AdmitTxn(); err != nil {
		t.Fatalf("nil admit: %v", err)
	}
	if g.ShouldShed(ClassDeferred) {
		t.Fatal("nil governor sheds")
	}
	g.NoteShed(ClassDetached)
	g.BeginShutdown()
	g.Stop()
	if g.ShuttingDown() {
		t.Fatal("nil ShuttingDown")
	}
	if s := g.Snapshot(); s.State != "healthy" {
		t.Fatalf("nil snapshot state %q", s.State)
	}
}

func TestSetLevels(t *testing.T) {
	g, _, load := testGov(t, Options{})
	if g.SetLevels("nope", Levels{}) {
		t.Fatal("SetLevels on unknown resource reported true")
	}
	if !g.SetLevels("load", Levels{Degraded: 5}) {
		t.Fatal("SetLevels on known resource reported false")
	}
	load.Set(5)
	if got := g.Evaluate(); got != Degraded {
		t.Fatalf("retuned watermark: state = %v, want degraded", got)
	}
	// Zero levels make the resource visibility-only.
	g.SetLevels("load", Levels{})
	load.Set(1 << 40)
	// Hysteresis applies to the way down; wait it out.
	g2, clk2, load2 := testGov(t, Options{Hysteresis: time.Millisecond})
	g2.SetLevels("load", Levels{})
	load2.Set(1 << 40)
	if got := g2.Evaluate(); got != Healthy {
		t.Fatalf("visibility-only resource drove state to %v", got)
	}
	_ = clk2
}

func TestEvaluationLoop(t *testing.T) {
	g, clk, load := testGov(t, Options{Interval: 100 * time.Millisecond})
	g.Start()
	g.Start() // idempotent
	defer g.Stop()
	load.Set(30)
	// Each Advance fires at most one loop tick; the loop re-arms After
	// asynchronously, so poll.
	deadline := time.Now().Add(5 * time.Second)
	for g.State() != ReadOnly {
		if time.Now().After(deadline) {
			t.Fatal("loop never evaluated to read-only")
		}
		clk.Advance(100 * time.Millisecond)
		time.Sleep(time.Millisecond)
	}
	g.Stop()
	g.Stop() // idempotent
}

func TestMetricsBoundToRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	clk := clock.NewVirtual(epoch)
	g := New(Options{Clock: clk, Metrics: reg, Hysteresis: time.Second})
	load := new(obs.Gauge)
	g.Register("load", load.Value, Levels{Degraded: 1})
	load.Set(1)
	g.Evaluate()
	if got := g.stateG.Value(); got != int64(Degraded) {
		t.Fatalf("state gauge = %d, want %d", got, Degraded)
	}
	if got := g.transitions[Degraded].Value(); got != 1 {
		t.Fatalf("degraded transitions = %d, want 1", got)
	}
}

func TestSnapshotAndHandler(t *testing.T) {
	g, _, load := testGov(t, Options{})
	check := func(wantCode int, wantState string) {
		t.Helper()
		rec := httptest.NewRecorder()
		g.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/health", nil))
		if rec.Code != wantCode {
			t.Fatalf("/health code = %d, want %d (state %s)", rec.Code, wantCode, wantState)
		}
		var snap Snapshot
		if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
			t.Fatalf("bad /health body: %v", err)
		}
		if snap.State != wantState {
			t.Fatalf("/health state = %q, want %q", snap.State, wantState)
		}
		if len(snap.Resources) != 1 || snap.Resources[0].Name != "load" {
			t.Fatalf("resources = %+v", snap.Resources)
		}
	}
	check(200, "healthy")
	load.Set(10)
	g.Evaluate()
	check(200, "degraded")
	load.Set(20)
	g.Evaluate()
	check(429, "shedding")
	load.Set(30)
	g.Evaluate()
	check(503, "read-only")
	g.BeginShutdown()
	check(503, "read-only")

	rec := httptest.NewRecorder()
	g.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/health", nil))
	if rec.Code != 405 {
		t.Fatalf("POST /health code = %d, want 405", rec.Code)
	}
}

func TestConcurrentAdmitHammer(t *testing.T) {
	// Race-detector sanity: many writers admitting while the state
	// flaps and shutdown lands.
	g, clk, load := testGov(t, Options{Hysteresis: time.Millisecond, AdmitDeadline: 10 * time.Millisecond})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = g.AdmitTxn()
				g.ShouldShed(ClassDetached)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			load.Set(int64((i % 4) * 10))
			g.Evaluate()
			clk.Advance(5 * time.Millisecond)
		}
	}()
	time.Sleep(50 * time.Millisecond)
	g.BeginShutdown()
	close(stop)
	wg.Wait()
	if err := g.AdmitTxn(); !errors.Is(err, ErrShutdown) {
		t.Fatalf("post-hammer admit err = %v, want ErrShutdown", err)
	}
}

// waitPending blocks until the virtual clock has a pending timer — the
// sign that an AdmitTxn call parked on its deadline.
func waitPending(t *testing.T, clk *clock.Virtual) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for clk.PendingTimers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no admission parked on the clock")
		}
		time.Sleep(time.Millisecond)
	}
}
