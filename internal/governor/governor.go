// Package governor implements the system-wide overload governor: one
// place that accounts the resources every subsystem consumes, derives
// a health state from configurable watermarks, and enforces it at the
// engine's choke points.
//
// The paper's central risk in integrating active behaviour into the
// transaction kernel is that cascading rule firings turn one client
// request into unbounded internal work. Cascade *depth* is bounded by
// the rule-set analysis and the engine's depth guard; nothing bounds
// aggregate *load*. Every robustness layer in this tree (failpoints,
// crash matrix, supervised executor, fuzzy checkpoints) protects a
// single subsystem; the governor protects the whole: under sustained
// overload the system degrades in a fixed priority order — shed
// observability and detached firings first, then deferred batches,
// then new writers — instead of OOMing or convoying, and it recovers
// on its own when load drops.
//
// The health ladder:
//
//	healthy    everything runs
//	degraded   detached rule firings are shed (dead-lettered), trace
//	           minting stops; admitted work is untouched
//	shedding   deferred batches are additionally shed at EOT; new
//	           writers queue up to the admission deadline, then are
//	           rejected with ErrOverloaded
//	read-only  new writers are rejected immediately; reads and
//	           already-admitted transactions still complete
//
// Immediate-coupled rules are NEVER shed: they run inside the
// triggering transaction and abort with it (paper §3.2) — shedding
// them would silently change transaction semantics, which is exactly
// what a constraint-enforcing rule must not allow.
//
// Transitions to a worse state are immediate; transitions back are
// held for a hysteresis window so the system does not flap at a
// watermark boundary.
package governor

import (
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
)

// State is a rung on the governor's health ladder. Ordering is
// significant: a larger State is a sicker system.
type State int

// Health states, healthiest first.
const (
	Healthy State = iota
	Degraded
	Shedding
	ReadOnly
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Shedding:
		return "shedding"
	case ReadOnly:
		return "read-only"
	}
	return "unknown"
}

// Errors returned by admission control.
var (
	// ErrOverloaded rejects a new writer under overload. It is the
	// client retry contract: back off and try again — the condition is
	// load, not a fault in the request.
	ErrOverloaded = errors.New("governor: system overloaded, retry with backoff")
	// ErrShutdown rejects new admissions once BeginShutdown was called.
	// Unlike ErrOverloaded it is permanent: the process is going away.
	ErrShutdown = errors.New("governor: shutting down, no new transactions")
)

// Class is a sheddable work class, in shed-priority order: detached
// firings go first (independent top-level transactions whose loss is
// recorded in the dead-letter queue), deferred batches second (their
// triggering transaction still commits), new writers last. Immediate
// rules are not a class — they are never shed.
type Class int

// Shed classes, first-shed first.
const (
	ClassDetached Class = iota
	ClassDeferred
	ClassWriter
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassDetached:
		return "detached"
	case ClassDeferred:
		return "deferred"
	case ClassWriter:
		return "writer"
	}
	return "unknown"
}

// Levels are the watermarks of one resource: reaching a level pushes
// the system into (at least) that state. A zero level disables that
// transition for the resource — a resource registered with all-zero
// Levels is accounted and surfaced but never drives the state.
type Levels struct {
	Degraded int64 `json:"degraded,omitempty"`
	Shedding int64 `json:"shedding,omitempty"`
	ReadOnly int64 `json:"read_only,omitempty"`
}

// stateOf maps a resource value to the state its watermarks demand.
func (l Levels) stateOf(v int64) State {
	switch {
	case l.ReadOnly > 0 && v >= l.ReadOnly:
		return ReadOnly
	case l.Shedding > 0 && v >= l.Shedding:
		return Shedding
	case l.Degraded > 0 && v >= l.Degraded:
		return Degraded
	}
	return Healthy
}

// Options configure a Governor.
type Options struct {
	// Hysteresis is how long the raw (watermark-derived) state must
	// hold below the current state before the governor steps down.
	// Worsening is immediate; recovery is damped. Zero selects 2s.
	Hysteresis time.Duration
	// AdmitDeadline bounds how long a new writer queues while the
	// system sheds before it is rejected with ErrOverloaded. Zero
	// selects 250ms; negative rejects immediately.
	AdmitDeadline time.Duration
	// Interval paces the background evaluation loop. Zero selects
	// 100ms.
	Interval time.Duration
	// Clock paces the loop, the hysteresis window, and the admission
	// deadline; nil selects the real clock.
	Clock clock.Clock
	// Metrics binds the governor's health gauge, transition counters,
	// and shed counters into a shared registry; nil keeps them
	// standalone.
	Metrics *obs.Registry
	// Disabled turns the governor into a pass-through: always healthy,
	// every admission granted, nothing shed. The ablation arm of the
	// overload experiments — it demonstrates the failure the governor
	// prevents.
	Disabled bool
}

func (o Options) withDefaults() Options {
	if o.Hysteresis == 0 {
		o.Hysteresis = 2 * time.Second
	}
	if o.AdmitDeadline == 0 {
		o.AdmitDeadline = 250 * time.Millisecond
	}
	if o.AdmitDeadline < 0 {
		o.AdmitDeadline = 0
	}
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.Clock == nil {
		o.Clock = clock.NewReal()
	}
	return o
}

// resource is one registered gauge with its watermarks.
type resource struct {
	name   string
	read   func() int64
	levels Levels
}

// Governor is the system-wide overload governor. Subsystems register
// cheap gauge readers; the evaluation loop derives the health state;
// the choke points (transaction admission, detached spawn, deferred
// drain) consult it. The hot-path read — State — is one atomic load.
type Governor struct {
	opts Options
	clk  clock.Clock

	// stateG holds the current State as an atomic gauge: the single
	// source of truth for hot-path reads and the /metrics surface.
	stateG      *obs.Gauge
	transitions [4]*obs.Counter
	sheds       [3]*obs.Counter

	mu          sync.Mutex
	resources   []resource
	state       State
	betterSince time.Time // start of the current below-state streak
	shutdown    bool
	// waiters is closed and replaced on every state change or
	// shutdown, broadcasting to writers parked in AdmitTxn.
	waiters chan struct{}

	loopStop chan struct{}
	loopDone chan struct{}
}

// New returns a governor. Call Register for each resource, then Start
// to run the evaluation loop.
func New(opts Options) *Governor {
	opts = opts.withDefaults()
	g := &Governor{
		opts:    opts,
		clk:     opts.Clock,
		waiters: make(chan struct{}),
	}
	if reg := opts.Metrics; reg != nil {
		g.stateG = reg.Gauge("reach_governor_state",
			"Overload governor health state (0 healthy, 1 degraded, 2 shedding, 3 read-only).")
		const tr, trHelp = "reach_governor_transitions_total",
			"Governor health-state transitions, by destination state."
		const sh, shHelp = "reach_governor_shed_total",
			"Work shed by the governor, by class (detached firing, deferred batch entry, writer admission)."
		for s := Healthy; s <= ReadOnly; s++ {
			g.transitions[s] = reg.Counter(tr, trHelp, "to", s.String())
		}
		for c := ClassDetached; c <= ClassWriter; c++ {
			g.sheds[c] = reg.Counter(sh, shHelp, "class", c.String())
		}
	} else {
		g.stateG = new(obs.Gauge)
		for s := Healthy; s <= ReadOnly; s++ {
			g.transitions[s] = new(obs.Counter)
		}
		for c := ClassDetached; c <= ClassWriter; c++ {
			g.sheds[c] = new(obs.Counter)
		}
	}
	return g
}

// Register adds a resource: a name, a cheap reader (typically an
// atomic gauge load), and its watermarks. Resources registered with
// zero Levels are accounted in Snapshot but never drive the state.
// Register before Start; readers are called off the hot path, on the
// evaluation interval only.
func (g *Governor) Register(name string, read func() int64, levels Levels) {
	g.mu.Lock()
	g.resources = append(g.resources, resource{name: name, read: read, levels: levels})
	g.mu.Unlock()
}

// SetLevels replaces the watermarks of a registered resource and
// reports whether the resource exists. Operators and tests use it to
// retune a live system.
func (g *Governor) SetLevels(name string, levels Levels) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i := range g.resources {
		if g.resources[i].name == name {
			g.resources[i].levels = levels
			return true
		}
	}
	return false
}

// State reports the current health state: one atomic load, safe on
// every hot path. A nil governor is always healthy.
func (g *Governor) State() State {
	if g == nil || g.opts.Disabled {
		return Healthy
	}
	return State(g.stateG.Value())
}

// ShouldShed reports whether work of the given class must be shed at
// the current state: detached firings from Degraded, deferred batch
// entries from Shedding. Writers are governed by AdmitTxn, not here.
func (g *Governor) ShouldShed(c Class) bool {
	st := g.State()
	switch c {
	case ClassDetached:
		return st >= Degraded
	case ClassDeferred:
		return st >= Shedding
	case ClassWriter:
		return st >= ReadOnly
	}
	return false
}

// NoteShed records one shed unit of the given class.
func (g *Governor) NoteShed(c Class) {
	if g == nil {
		return
	}
	g.sheds[c].Inc()
}

// Sheds reports the cumulative shed counts indexed by Class.
func (g *Governor) Sheds() [3]uint64 {
	var out [3]uint64
	if g == nil {
		return out
	}
	for c := ClassDetached; c <= ClassWriter; c++ {
		out[c] = g.sheds[c].Value()
	}
	return out
}

// Evaluate recomputes the health state from the registered resources
// and applies the transition policy: worsening is immediate, recovery
// waits out the hysteresis window. The background loop calls it on
// the interval; tests call it directly.
func (g *Governor) Evaluate() State {
	if g == nil || g.opts.Disabled {
		return Healthy
	}
	g.mu.Lock()
	if g.shutdown {
		st := g.state
		g.mu.Unlock()
		return st
	}
	res := append([]resource(nil), g.resources...)
	g.mu.Unlock()

	// Resource readers run outside g.mu: they reach into other
	// subsystems (lockdiscipline — no cross-package call under a held
	// mutex), and a slow reader must not block State transitions.
	raw := Healthy
	for _, r := range res {
		if s := r.levels.stateOf(r.read()); s > raw {
			raw = s
		}
	}
	now := g.clk.Now()

	g.mu.Lock()
	defer g.mu.Unlock()
	if g.shutdown {
		return g.state
	}
	switch {
	case raw > g.state:
		g.setStateLocked(raw)
	case raw < g.state:
		if g.betterSince.IsZero() {
			g.betterSince = now
		} else if now.Sub(g.betterSince) >= g.opts.Hysteresis {
			g.setStateLocked(raw)
		}
	default:
		g.betterSince = time.Time{} // back at the current state: streak over
	}
	return g.state
}

// setStateLocked applies a transition; the caller holds g.mu.
func (g *Governor) setStateLocked(s State) {
	g.state = s
	g.betterSince = time.Time{}
	g.stateG.Set(int64(s))
	g.transitions[s].Inc()
	close(g.waiters)
	g.waiters = make(chan struct{})
}

// AdmitTxn is the writer admission gate. Healthy and degraded admit
// immediately; read-only rejects immediately; shedding parks the
// caller until the state improves or the admission deadline expires,
// then rejects with ErrOverloaded — the queue-then-reject contract
// that turns a thundering herd into bounded, retriable backpressure.
// A nil or disabled governor admits everything.
func (g *Governor) AdmitTxn() error {
	if g == nil || g.opts.Disabled {
		return nil
	}
	var deadline time.Time
	for {
		g.mu.Lock()
		if g.shutdown {
			g.mu.Unlock()
			return ErrShutdown
		}
		st := g.state
		ch := g.waiters
		g.mu.Unlock()
		switch {
		case st < Shedding:
			return nil
		case st >= ReadOnly:
			g.NoteShed(ClassWriter)
			return ErrOverloaded
		}
		now := g.clk.Now()
		if deadline.IsZero() {
			deadline = now.Add(g.opts.AdmitDeadline)
		}
		if !now.Before(deadline) {
			g.NoteShed(ClassWriter)
			return ErrOverloaded
		}
		select {
		case <-ch: // state changed: re-check
		case <-g.clk.After(deadline.Sub(now)):
		}
	}
}

// StateChanged returns a channel closed at the next state transition
// (or shutdown). Work parked on a queue while holding transaction
// locks selects on it alongside the queue so a worsening state can
// convert the park into a shed — without this, backpressure applied
// to a lock-holding raiser can deadlock against workers waiting on
// those very locks. A nil governor returns a nil channel, which
// blocks forever in a select: the ungoverned behavior.
func (g *Governor) StateChanged() <-chan struct{} {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.waiters
}

// BeginShutdown flips the governor into drain mode: every pending and
// future admission is refused with ErrShutdown. Idempotent. The
// graceful-shutdown path calls it before draining the executor so no
// new work races the final checkpoint.
func (g *Governor) BeginShutdown() {
	if g == nil {
		return
	}
	g.mu.Lock()
	if !g.shutdown {
		g.shutdown = true
		close(g.waiters)
		g.waiters = make(chan struct{})
	}
	g.mu.Unlock()
}

// ShuttingDown reports whether BeginShutdown was called.
func (g *Governor) ShuttingDown() bool {
	if g == nil {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.shutdown
}

// Start runs the background evaluation loop. Idempotent; a disabled
// governor never starts one.
func (g *Governor) Start() {
	if g == nil || g.opts.Disabled {
		return
	}
	g.mu.Lock()
	if g.loopStop != nil {
		g.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	g.loopStop, g.loopDone = stop, done
	g.mu.Unlock()
	go g.loop(stop, done)
}

func (g *Governor) loop(stop, done chan struct{}) {
	defer close(done)
	for {
		select {
		case <-stop:
			return
		case <-g.clk.After(g.opts.Interval):
		}
		g.Evaluate()
	}
}

// Stop halts the evaluation loop and waits for it to exit.
// Idempotent; a no-op when the loop never started.
func (g *Governor) Stop() {
	if g == nil {
		return
	}
	g.mu.Lock()
	stop, done := g.loopStop, g.loopDone
	g.loopStop, g.loopDone = nil, nil
	g.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// ResourceHealth is one resource's view in a Snapshot.
type ResourceHealth struct {
	Name   string `json:"name"`
	Value  int64  `json:"value"`
	Levels Levels `json:"levels"`
	State  string `json:"state"`
}

// Snapshot is the operator view served by /health and the REPL.
type Snapshot struct {
	State       string            `json:"state"`
	Disabled    bool              `json:"disabled,omitempty"`
	Shutdown    bool              `json:"shutdown,omitempty"`
	Resources   []ResourceHealth  `json:"resources"`
	Sheds       map[string]uint64 `json:"sheds"`
	Transitions map[string]uint64 `json:"transitions"`
}

// Snapshot reads every resource and reports the full governor view.
func (g *Governor) Snapshot() Snapshot {
	if g == nil {
		return Snapshot{State: Healthy.String(), Disabled: true}
	}
	g.mu.Lock()
	res := append([]resource(nil), g.resources...)
	shutdown := g.shutdown
	g.mu.Unlock()
	snap := Snapshot{
		State:       g.State().String(),
		Disabled:    g.opts.Disabled,
		Shutdown:    shutdown,
		Sheds:       make(map[string]uint64, 3),
		Transitions: make(map[string]uint64, 4),
	}
	for _, r := range res {
		v := r.read()
		snap.Resources = append(snap.Resources, ResourceHealth{
			Name:   r.name,
			Value:  v,
			Levels: r.levels,
			State:  r.levels.stateOf(v).String(),
		})
	}
	for c := ClassDetached; c <= ClassWriter; c++ {
		snap.Sheds[c.String()] = g.sheds[c].Value()
	}
	for s := Healthy; s <= ReadOnly; s++ {
		snap.Transitions[s.String()] = g.transitions[s].Value()
	}
	return snap
}

// Handler serves the /health contract:
//
//	200  healthy or degraded — keep sending traffic
//	429  shedding — back off, retry with jitter
//	503  read-only or shutting down — stop sending writes
//
// The body is the JSON Snapshot in every case, so a load balancer can
// act on the status code while an operator reads the detail.
func (g *Governor) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		snap := g.Snapshot()
		code := http.StatusOK
		switch {
		case snap.Shutdown, snap.State == ReadOnly.String():
			code = http.StatusServiceUnavailable
		case snap.State == Shedding.String():
			code = http.StatusTooManyRequests
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap)
	})
}
