package rules

import (
	"testing"
	"time"

	"repro/internal/eca"
)

// TestParseRobustnessClauses pins the supervised-executor clauses:
// timeout takes a duration, retry and breaker take integers, and all
// three land on the declaration.
func TestParseRobustnessClauses(t *testing.T) {
	decls, err := Parse(`
rule Guarded {
    decl River *r, int x;
    event after r->updateWaterLevel(x);
    timeout 500ms;
    retry 2;
    breaker 4;
    action detached r->getWaterTemp();
};`)
	if err != nil {
		t.Fatal(err)
	}
	d := decls[0]
	if d.Timeout != 500*time.Millisecond {
		t.Errorf("Timeout = %v, want 500ms", d.Timeout)
	}
	if !d.RetrySet || d.Retry != 2 {
		t.Errorf("Retry = %d (set=%v), want 2", d.Retry, d.RetrySet)
	}
	if !d.BreakerSet || d.Breaker != 4 {
		t.Errorf("Breaker = %d (set=%v), want 4", d.Breaker, d.BreakerSet)
	}
}

// TestCompileRobustnessClauses checks the language→engine spelling:
// positive values pass through, and an explicit 0 ("disabled") maps
// to the engine's negative override so the engine default does not
// resurface.
func TestCompileRobustnessClauses(t *testing.T) {
	e, _, _ := newPlant(t)
	loaded, err := Load(e, `
rule Tuned {
    decl River *r, int x;
    event after r->updateWaterLevel(x);
    timeout 250ms;
    retry 0;
    breaker 3;
    action detached r->getWaterTemp();
};`)
	if err != nil {
		t.Fatal(err)
	}
	r := loaded.Rules[0]
	if r.Timeout != 250*time.Millisecond {
		t.Errorf("Rule.Timeout = %v, want 250ms", r.Timeout)
	}
	if r.Retries != -1 {
		t.Errorf("Rule.Retries = %d, want -1 (retry 0 disables)", r.Retries)
	}
	if r.Breaker != 3 {
		t.Errorf("Rule.Breaker = %d, want 3", r.Breaker)
	}
	if r.ActionMode != eca.Detached {
		t.Errorf("ActionMode = %v, want detached", r.ActionMode)
	}
}

// TestVetRobustnessOnCoupledRules rejects the executor clauses on
// rules that run inside the triggering transaction: the executor
// never sees them, so the clauses would be silently dead.
func TestVetRobustnessOnCoupledRules(t *testing.T) {
	diags := vetSrc(t, `
rule Imm {
    decl River *r, int x;
    event after r->updateWaterLevel(x);
    timeout 1s;
    action imm abort "x";
};
rule Def {
    decl River *r, int x;
    event after r->updateWaterLevel(x);
    retry 2;
    breaker 3;
    action deferred r->getWaterTemp();
};`)
	wantDiag(t, diags, "timeout clause applies only to detached-coupled rules")
	wantDiag(t, diags, "retry clause applies only to detached-coupled rules")
	wantDiag(t, diags, "breaker clause applies only to detached-coupled rules")
	if len(diags) != 3 {
		t.Errorf("diags = %v, want exactly 3", diags)
	}
}

// TestVetRobustnessOnDetachedRule accepts the clauses on every
// detached variant.
func TestVetRobustnessOnDetachedRule(t *testing.T) {
	diags := vetSrc(t, `
rule Det {
    decl River *r, int x;
    event after r->updateWaterLevel(x);
    timeout 1s;
    retry 2;
    breaker 3;
    action sequential r->getWaterTemp();
};`)
	if len(diags) != 0 {
		t.Errorf("detached rule with executor clauses produced diagnostics: %v", diags)
	}
}
