package rules

import (
	"strings"
	"testing"
)

func vetSrc(t *testing.T, src string) []Diag {
	t.Helper()
	decls, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Vet("test.rules", decls)
}

func wantDiag(t *testing.T, diags []Diag, substr string) {
	t.Helper()
	for _, d := range diags {
		if strings.Contains(d.Msg, substr) {
			return
		}
	}
	t.Errorf("no diagnostic containing %q in %v", substr, diags)
}

func TestVetCleanRule(t *testing.T) {
	diags := vetSrc(t, `
rule Clean {
    decl Account *a, int amount;
    event before a->withdraw(amount);
    cond imm a.balance - amount < 0;
    action imm abort "overdraft";
};`)
	if len(diags) != 0 {
		t.Errorf("clean rule produced diagnostics: %v", diags)
	}
}

func TestVetTable1Temporal(t *testing.T) {
	diags := vetSrc(t, `
rule T {
    event every 1h;
    action imm abort "x";
};`)
	wantDiag(t, diags, "Table 1 rejects immediate action coupling on a purely-temporal event")
}

func TestVetTable1CompositeImmediate(t *testing.T) {
	diags := vetSrc(t, `
rule C {
    decl S *s, int a, int b;
    event seq(after s->read(a), after s->read(b));
    action imm s->alarm();
};`)
	wantDiag(t, diags, "Table 1 rejects immediate action coupling on a composite-1tx event")
}

func TestVetGlobalCompositeDeferred(t *testing.T) {
	// Deferred is admitted for single-transaction composites but not
	// for cross-transaction ones: scope flips the Table 1 column.
	src := `
rule C {
    decl S *s, int a, int b;
    event seq(after s->read(a), after s->read(b));
    %s
    validity 10s;
    action deferred s->alarm();
};`
	if diags := vetSrc(t, strings.Replace(src, "%s\n    ", "", 1)); len(diags) != 0 {
		t.Errorf("transaction-scope deferred composite should vet clean: %v", diags)
	}
	diags := vetSrc(t, strings.Replace(src, "%s", "scope global;", 1))
	wantDiag(t, diags, "Table 1 rejects deferred action coupling on a composite-ntx event")
}

func TestVetGlobalNeedsValidity(t *testing.T) {
	diags := vetSrc(t, `
rule C {
    decl S *s, int a, int b;
    event and(after s->read(a), after s->read(b));
    scope global;
    action detached s->alarm();
};`)
	wantDiag(t, diags, "needs a validity clause")
}

func TestVetUnknownPolicyAndScope(t *testing.T) {
	diags := vetSrc(t, `
rule C {
    decl S *s, int a, int b;
    event or(after s->read(a), after s->read(b));
    policy newest;
    scope session;
    action detached s->alarm();
};`)
	wantDiag(t, diags, `unknown consumption policy "newest"`)
	wantDiag(t, diags, `unknown scope "session"`)
}

func TestVetCompositeAttrsOnPrimitive(t *testing.T) {
	diags := vetSrc(t, `
rule P {
    decl S *s, int a;
    event after s->read(a);
    policy recent;
    action deferred s->alarm();
};`)
	wantDiag(t, diags, "apply only to composite events")
}

func TestVetUndeclaredVariables(t *testing.T) {
	diags := vetSrc(t, `
rule U {
    decl S *s, int a;
    event after s->read(a);
    cond deferred a < threshold;
    action deferred other->alarm(b + 1);
};`)
	wantDiag(t, diags, `undeclared variable "threshold" referenced in condition`)
	wantDiag(t, diags, `undeclared variable "other" referenced in action`)
	wantDiag(t, diags, `undeclared variable "b" referenced in action`)
}

func TestVetDuplicateVariable(t *testing.T) {
	diags := vetSrc(t, `
rule D {
    decl S *s, int a, int a;
    event after s->read(a);
    action deferred s->alarm();
};`)
	wantDiag(t, diags, `variable "a" declared twice`)
}

// TestVetNestedNotTimes drives walkEvent through a deeply nested
// not(times(...)) chain: variables bound (or misspelled) at the
// innermost terminal must still be resolved against the decl list.
func TestVetNestedNotTimes(t *testing.T) {
	diags := vetSrc(t, `
rule N {
    decl S *s, int a;
    event and(after s->read(a), not(times(2, after q->read(b))));
    validity 10s;
    action detached s->alarm();
};`)
	wantDiag(t, diags, `undeclared variable "q" referenced in event`)
	wantDiag(t, diags, `undeclared variable "b" referenced in event`)

	clean := vetSrc(t, `
rule N {
    decl S *s, int a, int b;
    event and(after s->read(a), not(times(2, after s->read(b))));
    validity 10s;
    action detached s->alarm();
};`)
	if len(clean) != 0 {
		t.Errorf("declared vars inside not(times(...)) still diagnosed: %v", clean)
	}
}

// TestVetScalarOnlyInCompositeSub: a scalar declared once and
// referenced only inside a composite sub-event (never in the
// condition or action) counts as referenced — walkEvent must descend
// through closure(seq(...)) to find the binding site.
func TestVetScalarOnlyInCompositeSub(t *testing.T) {
	diags := vetSrc(t, `
rule Deep {
    decl S *s, int hidden;
    event closure(seq(after s->open(), after s->read(hidden)));
    validity 1h;
    action detached s->alarm();
};`)
	if len(diags) != 0 {
		t.Errorf("scalar bound only in a nested sub-event diagnosed: %v", diags)
	}
}

// TestVetDuplicateVarAcrossAndBranches: the same undeclared name
// bound in two and() branches is reported once (the seen-set dedup),
// while a declared variable rebound across branches is legal.
func TestVetDuplicateVarAcrossAndBranches(t *testing.T) {
	diags := vetSrc(t, `
rule Dup {
    decl S *s;
    event and(after s->read(x), after s->write(x));
    validity 10s;
    action detached s->alarm();
};`)
	count := 0
	for _, d := range diags {
		if strings.Contains(d.Msg, `undeclared variable "x"`) {
			count++
		}
	}
	if count != 1 {
		t.Errorf(`undeclared "x" reported %d times, want exactly 1: %v`, count, diags)
	}

	clean := vetSrc(t, `
rule Dup {
    decl S *s, int x;
    event and(after s->read(x), after s->write(x));
    validity 10s;
    action detached s->alarm();
};`)
	if len(clean) != 0 {
		t.Errorf("declared var bound in both and() branches diagnosed: %v", clean)
	}
}

func TestVetModeParity(t *testing.T) {
	diags := vetSrc(t, `
rule M {
    decl S *s, int a;
    event after s->read(a);
    cond deferred a < 0;
    action imm s->alarm();
};`)
	wantDiag(t, diags, "condition mode deferred is later than action mode immediate")
}

func TestVetDuplicateNamesAcrossFiles(t *testing.T) {
	src := `
rule Same {
    decl S *s, int a;
    event after s->read(a);
    action deferred s->alarm();
};`
	declsA, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	declsB, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	v := NewVetter()
	if diags := v.Vet("a.rules", declsA); len(diags) != 0 {
		t.Fatalf("first file should vet clean: %v", diags)
	}
	diags := v.Vet("b.rules", declsB)
	wantDiag(t, diags, "duplicate rule name (first defined at a.rules:2)")
}

// TestVetLineNumbers pins the Line field the parser stamps on each
// declaration — the anchor every diagnostic position depends on.
func TestVetLineNumbers(t *testing.T) {
	decls, err := Parse(`rule A {
    event bot;
    action deferred abort "x";
};

rule B {
    event eot;
    action deferred abort "y";
};`)
	if err != nil {
		t.Fatal(err)
	}
	if decls[0].Line != 1 || decls[1].Line != 6 {
		t.Errorf("lines = %d, %d; want 1, 6", decls[0].Line, decls[1].Line)
	}
}
