package rules

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/eca"
	"repro/internal/event"
	"repro/internal/oodb"
)

// Loaded is the result of loading a rule set into an engine.
type Loaded struct {
	Rules      []*eca.Rule
	Composites []*algebra.Composite
	Temporal   []*eca.TemporalHandle
}

// Stop disarms every temporal event source the rule set armed.
func (l *Loaded) Stop() {
	for _, h := range l.Temporal {
		h.Stop()
	}
}

// Load parses src, compiles every rule, defines the composites the
// rules need, arms their temporal event sources, and registers the
// rules with the engine.
func Load(e *eca.Engine, src string) (*Loaded, error) {
	decls, err := Parse(src)
	if err != nil {
		return nil, err
	}
	out := &Loaded{}
	for _, d := range decls {
		r, comps, temps, err := Compile(e, d)
		if err != nil {
			out.Stop()
			return nil, err
		}
		for _, c := range comps {
			if err := e.DefineComposite(c); err != nil {
				out.Stop()
				return nil, fmt.Errorf("rules: rule %s: %w", d.Name, err)
			}
			out.Composites = append(out.Composites, c)
		}
		for _, spec := range temps {
			h, err := e.ArmTemporal(spec)
			if err != nil {
				out.Stop()
				return nil, fmt.Errorf("rules: rule %s: %w", d.Name, err)
			}
			out.Temporal = append(out.Temporal, h)
		}
		if err := e.AddRule(r); err != nil {
			out.Stop()
			return nil, err
		}
		out.Rules = append(out.Rules, r)
	}
	return out, nil
}

// Compile translates one parsed rule declaration into an eca.Rule,
// the composite declarations it needs, and the temporal specs to arm.
// The rule is not registered; Load does that.
func Compile(e *eca.Engine, d *RuleDecl) (*eca.Rule, []*algebra.Composite, []event.TemporalSpec, error) {
	classOf := make(map[string]string, len(d.Decls))
	for _, v := range d.Decls {
		if _, dup := classOf[v.Name]; dup {
			return nil, nil, nil, fmt.Errorf("rules: rule %s: variable %q declared twice", d.Name, v.Name)
		}
		classOf[v.Name] = v.Class
	}

	c := &compiler{decl: d, classOf: classOf}
	expr, err := c.compileEvent(d.Event)
	if err != nil {
		return nil, nil, nil, err
	}

	var comps []*algebra.Composite
	eventKey := ""
	if prim, ok := expr.(algebra.Prim); ok && !c.composite {
		eventKey = prim.Key
	} else {
		comp := &algebra.Composite{
			Name:     d.Name + "__event",
			Expr:     expr,
			Policy:   parsePolicy(d.Policy),
			Scope:    parseScope(d.Scope),
			Validity: d.Validity,
		}
		if comp.Scope == algebra.ScopeGlobal && comp.Validity == 0 {
			return nil, nil, nil, fmt.Errorf("rules: rule %s: global-scope composite event needs a validity clause", d.Name)
		}
		comps = append(comps, comp)
		eventKey = comp.Key()
	}

	r := &eca.Rule{
		Name:       d.Name,
		EventKey:   eventKey,
		Priority:   d.Prio,
		CondMode:   parseMode(d.CondMode),
		ActionMode: parseMode(d.ActionMode),
	}
	if r.ActionMode == 0 {
		r.ActionMode = eca.Detached
	}
	// Supervised-executor attributes: 0 in the language means
	// "disabled", which the engine spells as a negative override.
	r.Timeout = d.Timeout
	if d.RetrySet {
		r.Retries = d.Retry
		if d.Retry <= 0 {
			r.Retries = -1
		}
	}
	if d.BreakerSet {
		r.Breaker = d.Breaker
		if d.Breaker <= 0 {
			r.Breaker = -1
		}
	}
	if d.Cond != nil {
		cond := d.Cond
		decl := d
		bindings := c.bindings
		r.Cond = func(rc *eca.RuleCtx) (bool, error) {
			ev, err := bindEnv(rc, decl, bindings)
			if err != nil {
				return false, err
			}
			v, err := ev.eval(cond)
			if err != nil {
				return false, err
			}
			b, ok := v.(bool)
			if !ok {
				return false, fmt.Errorf("rules: rule %s: condition evaluated to %T, want bool", decl.Name, v)
			}
			return b, nil
		}
	}
	actions := d.Actions
	decl := d
	bindings := c.bindings
	r.Action = func(rc *eca.RuleCtx) error {
		ev, err := bindEnv(rc, decl, bindings)
		if err != nil {
			return err
		}
		for _, s := range actions {
			if err := ev.exec(s); err != nil {
				return err
			}
		}
		return nil
	}
	return r, comps, c.temporal, nil
}

// binding maps a primitive spec key to the variables it populates.
type binding struct {
	key    string
	recv   string   // object variable bound to the event's receiver
	params []string // scalar variables bound positionally to arguments
}

type compiler struct {
	decl      *RuleDecl
	classOf   map[string]string
	bindings  []binding
	temporal  []event.TemporalSpec
	composite bool
}

// compileEvent lowers an event AST into an algebra expression over
// primitive spec keys, recording variable bindings and temporal specs.
func (c *compiler) compileEvent(ev EventExpr) (algebra.Expr, error) {
	switch x := ev.(type) {
	case MethodEvent:
		class, ok := c.classOf[x.Recv]
		if !ok {
			return nil, fmt.Errorf("rules: rule %s: receiver %q not declared", c.decl.Name, x.Recv)
		}
		when := event.Before
		if x.After {
			when = event.After
		}
		key := event.MethodSpec{Class: class, Method: x.Method, When: when}.Key()
		for _, p := range x.Params {
			if _, ok := c.classOf[p]; !ok {
				return nil, fmt.Errorf("rules: rule %s: event parameter %q not declared", c.decl.Name, p)
			}
		}
		c.bindings = append(c.bindings, binding{key: key, recv: x.Recv, params: x.Params})
		return algebra.Prim{Key: key}, nil
	case StateEvent:
		key := event.StateSpec{Class: x.Class, Attr: x.Attr}.Key()
		return algebra.Prim{Key: key}, nil
	case TxnEvent:
		var phase event.TxnPhase
		switch x.Phase {
		case "bot":
			phase = event.BOT
		case "eot":
			phase = event.EOT
		case "commit":
			phase = event.Commit
		case "abort":
			phase = event.Abort
		}
		return algebra.Prim{Key: event.TxnSpec{Phase: phase}.Key()}, nil
	case TimeEvent:
		var spec event.TemporalSpec
		switch x.Kind {
		case "at":
			spec = event.TemporalSpec{Name: c.decl.Name, Temporal: event.Absolute, At: x.At}
		case "every":
			spec = event.TemporalSpec{Name: c.decl.Name, Temporal: event.Periodic, Period: x.Period}
		case "in":
			spec = event.TemporalSpec{Name: c.decl.Name, Temporal: event.Relative, Delay: x.Period}
		}
		c.temporal = append(c.temporal, spec)
		return algebra.Prim{Key: spec.Key()}, nil
	case SeqEvent:
		c.composite = true
		subs, err := c.compileAll(x.Sub)
		if err != nil {
			return nil, err
		}
		return algebra.Seq{Exprs: subs}, nil
	case AndEvent:
		c.composite = true
		subs, err := c.compileAll(x.Sub)
		if err != nil {
			return nil, err
		}
		return algebra.Conj{Exprs: subs}, nil
	case OrEvent:
		c.composite = true
		subs, err := c.compileAll(x.Sub)
		if err != nil {
			return nil, err
		}
		return algebra.Disj{Exprs: subs}, nil
	case NotEvent:
		c.composite = true
		sub, err := c.compileEvent(x.Sub)
		if err != nil {
			return nil, err
		}
		return algebra.Neg{Of: sub}, nil
	case TimesEvent:
		c.composite = true
		sub, err := c.compileEvent(x.Sub)
		if err != nil {
			return nil, err
		}
		return algebra.History{Of: sub, Count: x.N}, nil
	case CloseEvent:
		c.composite = true
		sub, err := c.compileEvent(x.Sub)
		if err != nil {
			return nil, err
		}
		return algebra.Closure{Of: sub}, nil
	}
	return nil, fmt.Errorf("rules: rule %s: unsupported event %T", c.decl.Name, ev)
}

func (c *compiler) compileAll(subs []EventExpr) ([]algebra.Expr, error) {
	out := make([]algebra.Expr, len(subs))
	for i, s := range subs {
		e, err := c.compileEvent(s)
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}

// bindEnv builds the evaluation environment for one firing: named
// roots are fetched, the event's receiver and parameters are bound
// from the trigger instance (matching composite constituents by spec
// key, in order).
func bindEnv(rc *eca.RuleCtx, d *RuleDecl, bindings []binding) (*env, error) {
	ev := &env{ctx: rc.Ctx(), vars: make(map[string]any, len(d.Decls))}
	for _, v := range d.Decls {
		if v.Named != "" {
			obj, err := ev.ctx.Root(v.Named)
			if err != nil {
				return nil, fmt.Errorf("rules: rule %s: %w", d.Name, err)
			}
			ev.vars[v.Name] = obj
		}
	}
	parts := rc.Trigger.Flatten()
	used := make([]bool, len(parts))
	for _, b := range bindings {
		var part *event.Instance
		for i, p := range parts {
			if !used[i] && p.SpecKey == b.key {
				part = p
				used[i] = true
				break
			}
		}
		if part == nil {
			continue // constituent absent (e.g. disjunction branch)
		}
		if b.recv != "" && part.OID != 0 {
			obj, err := ev.ctx.Load(oodb.OID(part.OID))
			if err != nil {
				return nil, fmt.Errorf("rules: rule %s: bind %s: %w", d.Name, b.recv, err)
			}
			ev.vars[b.recv] = obj
		}
		for i, p := range b.params {
			if i < len(part.Args) {
				ev.vars[p] = part.Args[i]
			}
		}
	}
	return ev, nil
}

// Modes resolves the declaration's effective coupling modes, applying
// the engine defaults: an unspecified action mode means detached, an
// unspecified condition mode follows the action.
func (d *RuleDecl) Modes() (cond, action eca.Coupling) {
	action = parseMode(d.ActionMode)
	if action == 0 {
		action = eca.Detached
	}
	cond = parseMode(d.CondMode)
	if cond == 0 {
		cond = action
	}
	return cond, action
}

func parseMode(s string) eca.Coupling {
	switch s {
	case "imm", "immediate":
		return eca.Immediate
	case "deferred":
		return eca.Deferred
	case "detached":
		return eca.Detached
	case "parallel":
		return eca.DetachedParallelCausal
	case "sequential":
		return eca.DetachedSequentialCausal
	case "exclusive":
		return eca.DetachedExclusiveCausal
	}
	return 0
}

func parsePolicy(s string) algebra.Policy {
	switch s {
	case "recent":
		return algebra.Recent
	case "continuous":
		return algebra.Continuous
	case "cumulative":
		return algebra.Cumulative
	default:
		return algebra.Chronicle
	}
}

func parseScope(s string) algebra.Scope {
	if s == "global" {
		return algebra.ScopeGlobal
	}
	return algebra.ScopeTransaction
}
