package rules

import (
	"fmt"

	"repro/internal/oodb"
)

// env is the variable scope a rule's condition and action evaluate in.
type env struct {
	ctx  *oodb.Ctx
	vars map[string]any
}

func (ev *env) lookup(name string) (any, error) {
	v, ok := ev.vars[name]
	if !ok {
		return nil, fmt.Errorf("rules: variable %q not bound", name)
	}
	return v, nil
}

func (ev *env) object(name string) (*oodb.Object, error) {
	v, err := ev.lookup(name)
	if err != nil {
		return nil, err
	}
	obj, ok := v.(*oodb.Object)
	if !ok {
		return nil, fmt.Errorf("rules: variable %q is not an object", name)
	}
	return obj, nil
}

// eval evaluates an expression to a Go value (int64, float64, string,
// bool, *oodb.Object, oodb.OID, nil).
func (ev *env) eval(e Expr) (any, error) {
	switch x := e.(type) {
	case Lit:
		return x.Val, nil
	case VarRef:
		return ev.lookup(x.Name)
	case AttrRef:
		obj, err := ev.object(x.Var)
		if err != nil {
			return nil, err
		}
		return ev.ctx.Get(obj, x.Attr)
	case CallExpr:
		obj, err := ev.object(x.Recv)
		if err != nil {
			return nil, err
		}
		args := make([]any, len(x.Args))
		for i, a := range x.Args {
			args[i], err = ev.eval(a)
			if err != nil {
				return nil, err
			}
		}
		return ev.ctx.Invoke(obj, x.Method, args...)
	case UnOp:
		v, err := ev.eval(x.X)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "not":
			b, ok := v.(bool)
			if !ok {
				return nil, fmt.Errorf("rules: not applied to %T", v)
			}
			return !b, nil
		case "-":
			switch n := v.(type) {
			case int64:
				return -n, nil
			case float64:
				return -n, nil
			}
			return nil, fmt.Errorf("rules: unary - applied to %T", v)
		}
	case BinOp:
		return ev.binop(x)
	}
	return nil, fmt.Errorf("rules: cannot evaluate %T", e)
}

func (ev *env) binop(x BinOp) (any, error) {
	// Short-circuit boolean operators.
	if x.Op == "and" || x.Op == "or" {
		l, err := ev.eval(x.L)
		if err != nil {
			return nil, err
		}
		lb, ok := l.(bool)
		if !ok {
			return nil, fmt.Errorf("rules: %s applied to %T", x.Op, l)
		}
		if x.Op == "and" && !lb {
			return false, nil
		}
		if x.Op == "or" && lb {
			return true, nil
		}
		r, err := ev.eval(x.R)
		if err != nil {
			return nil, err
		}
		rb, ok := r.(bool)
		if !ok {
			return nil, fmt.Errorf("rules: %s applied to %T", x.Op, r)
		}
		return rb, nil
	}
	l, err := ev.eval(x.L)
	if err != nil {
		return nil, err
	}
	r, err := ev.eval(x.R)
	if err != nil {
		return nil, err
	}
	// Numeric coercion: if either side is a float, compare as floats.
	lf, lIsF := toFloat(l)
	rf, rIsF := toFloat(r)
	numeric := lIsF && rIsF
	switch x.Op {
	case "+", "-", "*", "/", "%":
		if !numeric {
			if x.Op == "+" {
				if ls, ok := l.(string); ok {
					if rs, ok := r.(string); ok {
						return ls + rs, nil
					}
				}
			}
			return nil, fmt.Errorf("rules: %s applied to %T and %T", x.Op, l, r)
		}
		li, lInt := l.(int64)
		ri, rInt := r.(int64)
		if lInt && rInt {
			switch x.Op {
			case "+":
				return li + ri, nil
			case "-":
				return li - ri, nil
			case "*":
				return li * ri, nil
			case "/":
				if ri == 0 {
					return nil, fmt.Errorf("rules: division by zero")
				}
				return li / ri, nil
			case "%":
				if ri == 0 {
					return nil, fmt.Errorf("rules: modulo by zero")
				}
				return li % ri, nil
			}
		}
		switch x.Op {
		case "+":
			return lf + rf, nil
		case "-":
			return lf - rf, nil
		case "*":
			return lf * rf, nil
		case "/":
			if rf == 0 {
				return nil, fmt.Errorf("rules: division by zero")
			}
			return lf / rf, nil
		case "%":
			return nil, fmt.Errorf("rules: %% needs integers")
		}
	case "<", "<=", ">", ">=":
		if numeric {
			switch x.Op {
			case "<":
				return lf < rf, nil
			case "<=":
				return lf <= rf, nil
			case ">":
				return lf > rf, nil
			case ">=":
				return lf >= rf, nil
			}
		}
		if ls, ok := l.(string); ok {
			if rs, ok := r.(string); ok {
				switch x.Op {
				case "<":
					return ls < rs, nil
				case "<=":
					return ls <= rs, nil
				case ">":
					return ls > rs, nil
				case ">=":
					return ls >= rs, nil
				}
			}
		}
		return nil, fmt.Errorf("rules: %s applied to %T and %T", x.Op, l, r)
	case "==", "!=":
		eq := valuesEqual(l, r)
		if x.Op == "==" {
			return eq, nil
		}
		return !eq, nil
	}
	return nil, fmt.Errorf("rules: unknown operator %q", x.Op)
}

func toFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case int64:
		return float64(n), true
	case float64:
		return n, true
	}
	return 0, false
}

func valuesEqual(l, r any) bool {
	if lf, ok := toFloat(l); ok {
		if rf, ok := toFloat(r); ok {
			return lf == rf
		}
	}
	if lo, ok := l.(*oodb.Object); ok {
		if ro, ok := r.(*oodb.Object); ok {
			return lo.OID() == ro.OID()
		}
	}
	return l == r
}

// exec runs an action statement.
func (ev *env) exec(s Stmt) error {
	switch x := s.(type) {
	case CallStmt:
		_, err := ev.eval(x.Call)
		return err
	case SetStmt:
		obj, err := ev.object(x.Target.Var)
		if err != nil {
			return err
		}
		v, err := ev.eval(x.Value)
		if err != nil {
			return err
		}
		return ev.ctx.Set(obj, x.Target.Attr, v)
	case AbortStmt:
		return fmt.Errorf("rules: %s", x.Message)
	}
	return fmt.Errorf("rules: cannot execute %T", s)
}
