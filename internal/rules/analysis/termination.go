package analysis

import (
	"sort"
	"strings"

	"repro/internal/eca"
)

// ord mirrors the engine's coupling phase ordering: immediate <
// deferred < every detached variant.
func ord(c eca.Coupling) int {
	switch c {
	case eca.Immediate:
		return 0
	case eca.Deferred:
		return 1
	}
	return 2
}

// termination finds cycles in the triggering graph and, for acyclic
// sets, computes the static cascade-depth bound. A cycle of
// immediate/deferred rules recurses inside the triggering transaction
// and is always an error. A cycle through a detached rule is an
// unbounded cascade of top-level transactions: an error unless some
// member carries a timeout or breaker clause that bounds it at run
// time, which demotes the cycle to a warning.
func (a *Analyzer) termination(g *Graph, res *Result) []Finding {
	var out []Finding
	for _, comp := range sccs(len(g.Nodes), g.succ) {
		if !cyclic(comp, g.succ) {
			continue
		}
		cyc := buildCycle(g, comp)
		res.Cycles = append(res.Cycles, cyc)
		for _, name := range cyc.Rules {
			g.Node(name).InCycle = true
		}
		anchor := g.Node(cyc.Rules[0])
		why := "immediate/deferred coupling recurses inside the triggering transaction"
		if cyc.Detached {
			if cyc.Guarded {
				why = "detached cascade bounded only by a timeout/breaker clause"
			} else {
				why = "detached cascade with no timeout or breaker clause"
			}
		}
		out = append(out, finding(anchor, "termination", cyc.Severity,
			"rule cycle %s (%s)", cyc, why))
	}
	sort.SliceStable(res.Cycles, func(i, j int) bool {
		a, b := g.Node(res.Cycles[i].Rules[0]), g.Node(res.Cycles[j].Rules[0])
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Decl.Line < b.Decl.Line
	})
	if len(res.Cycles) == 0 {
		res.DepthBound = longestChain(g)
	}
	return out
}

// cyclic reports whether an SCC contains a cycle: more than one
// member, or a single member with a self-edge.
func cyclic(comp []int, succ map[int][]int) bool {
	if len(comp) > 1 {
		return true
	}
	for _, j := range succ[comp[0]] {
		if j == comp[0] {
			return true
		}
	}
	return false
}

// buildCycle extracts one concrete closed path through the SCC,
// anchored at the member that appears earliest in the input, and
// classifies it.
func buildCycle(g *Graph, comp []int) Cycle {
	sort.Ints(comp)
	anchor := comp[0]
	member := make(map[int]bool, len(comp))
	for _, i := range comp {
		member[i] = true
	}
	path := shortestLoop(anchor, member, g.succ)
	c := Cycle{}
	for _, i := range path {
		n := g.Nodes[i]
		c.Rules = append(c.Rules, n.Name())
		if ord(n.Action) >= 2 || ord(n.Cond) >= 2 {
			c.Detached = true
		}
		if n.Decl.Timeout != 0 || n.Decl.BreakerSet {
			c.Guarded = true
		}
	}
	c.Severity = Error
	if c.Detached && c.Guarded {
		c.Severity = Warning
	}
	return c
}

// shortestLoop BFSes from start back to start within the member set
// and returns the node path (start first, closing edge implied).
func shortestLoop(start int, member map[int]bool, succ map[int][]int) []int {
	prev := map[int]int{start: -1}
	queue := []int{start}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for _, j := range succ[i] {
			if !member[j] {
				continue
			}
			if j == start {
				// Close the loop: walk back from i to start.
				var rev []int
				for k := i; k != -1; k = prev[k] {
					rev = append(rev, k)
				}
				path := make([]int, 0, len(rev))
				for k := len(rev) - 1; k >= 0; k-- {
					path = append(path, rev[k])
				}
				return path
			}
			if _, seen := prev[j]; !seen {
				prev[j] = i
				queue = append(queue, j)
			}
		}
	}
	return []int{start} // unreachable for a true SCC; defensive
}

// longestChain computes the static cascade-depth bound of an acyclic
// graph: the maximum number of rules a single external event can fire
// transitively.
func longestChain(g *Graph) int {
	memo := make([]int, len(g.Nodes))
	var depth func(i int) int
	depth = func(i int) int {
		if memo[i] != 0 {
			return memo[i]
		}
		best := 1
		for _, j := range g.succ[i] {
			if d := depth(j) + 1; d > best {
				best = d
			}
		}
		memo[i] = best
		return best
	}
	bound := 0
	for i := range g.Nodes {
		if d := depth(i); d > bound {
			bound = d
		}
	}
	return bound
}

// sccs returns the strongly connected components of the graph in
// Tarjan order (reverse topological), each component as node indices.
func sccs(n int, succ map[int][]int) [][]int {
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		counter int
		stack   []int
		out     [][]int
	)
	// Iterative Tarjan: each frame tracks the node and the position in
	// its successor list, so deep rule chains cannot overflow the Go
	// stack.
	type frame struct{ node, succIdx int }
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames := []frame{{node: root}}
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.node
			if f.succIdx == 0 {
				index[v] = counter
				low[v] = counter
				counter++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.succIdx < len(succ[v]) {
				w := succ[v][f.succIdx]
				f.succIdx++
				if index[w] == unvisited {
					frames = append(frames, frame{node: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				out = append(out, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].node
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return out
}

// confluence flags rule pairs whose relative firing order is
// observable: equal priority, same coupling phase, and either both
// write the same attribute or their trigger sets overlap while one
// writes an attribute the other reads.
func (a *Analyzer) confluence(g *Graph) []Finding {
	var out []Finding
	for i, p := range g.Nodes {
		for _, q := range g.Nodes[i+1:] {
			if p.Decl.Prio != q.Decl.Prio || ord(p.Action) != ord(q.Action) {
				continue
			}
			if ww := intersect(p.Writes, q.Writes); len(ww) > 0 {
				out = append(out, finding(p, "confluence", Warning,
					"rules %s and %s fire at equal priority in the same coupling phase and both write %s; final value depends on firing order (set distinct priorities)",
					p.Name(), q.Name(), strings.Join(ww, ", ")))
				continue
			}
			if len(intersect(p.triggerKeys(), q.triggerKeys())) == 0 {
				continue
			}
			rw := append(intersect(p.Writes, q.Reads), intersect(q.Writes, p.Reads)...)
			if len(rw) > 0 {
				sort.Strings(rw)
				out = append(out, finding(p, "confluence", Warning,
					"rules %s and %s share a trigger at equal priority in the same coupling phase and one writes %s the other reads; outcome depends on firing order (set distinct priorities)",
					p.Name(), q.Name(), strings.Join(dedup(rw), ", ")))
			}
		}
	}
	return out
}

func intersect(a, b []string) []string {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	in := make(map[string]bool, len(b))
	for _, s := range b {
		in[s] = true
	}
	var out []string
	for _, s := range a {
		if in[s] {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

func dedup(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}
