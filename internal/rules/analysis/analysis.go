// Package analysis performs whole-ruleset interaction analysis over
// parsed REACH rule declarations. Where rulec -vet checks each rule in
// isolation, this package looks at how rules interact: it derives the
// events every rule's condition and action can raise (method calls →
// before/after method events, set statements → state events, abort →
// the transaction abort event), connects them to the rules those
// events can fire — through the composite operators seq/and/or/times/
// closure, with not() terminals tracked but marked non-triggering —
// and runs three analyses on the resulting triggering graph:
//
//   - termination: cycles in the graph. A cycle whose rules all run
//     inside the triggering transaction (immediate/deferred coupling)
//     recurses unboundedly and is an error; a detached cycle is an
//     unbounded cascade of top-level transactions — an error unless it
//     crosses a timeout or breaker clause, which demotes it to a
//     warning. For acyclic rule sets the analysis also computes the
//     static cascade-depth bound (the longest rule chain) that the
//     engine enforces at run time.
//   - confluence: rule pairs at equal priority in the same coupling
//     phase whose firing order is observable — both write the same
//     Class.attr, or their trigger sets overlap and one writes an
//     attribute the other reads.
//   - reachability: rules whose triggering event can never complete —
//     every terminal sits under not(), or (against a closed world) a
//     constituent is neither a registered method/attribute nor raised
//     by any reachable rule's action.
//
// Findings can be suppressed per rule with a reviewed comment in the
// .rules source — `# lint:allow <analyzer> <justification>` (or the
// `//` comment form) on the rule's header line or any line above it
// back to the previous rule; a suppression without a justification is
// itself an error, and a suppression that allows nothing is reported
// as stale.
package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/eca"
	"repro/internal/event"
	"repro/internal/rules"
)

// Severity ranks findings: errors gate registration and fail rulec
// -analyze; warnings are advisory.
type Severity int

// Finding severities.
const (
	Warning Severity = iota + 1
	Error
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// MarshalJSON encodes the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// Finding is one analysis diagnostic, anchored at the rule whose
// declaration it concerns.
type Finding struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Rule     string   `json:"rule,omitempty"`
	Analyzer string   `json:"analyzer"`
	Severity Severity `json:"severity"`
	Msg      string   `json:"message"`
}

// String formats the finding as file:line: rule R: [analyzer] message,
// matching the vet and lint diagnostic styles.
func (f Finding) String() string {
	who := ""
	if f.Rule != "" {
		who = fmt.Sprintf("rule %s: ", f.Rule)
	}
	return fmt.Sprintf("%s:%d: %s[%s] %s: %s", f.File, f.Line, who, f.Analyzer, f.Severity, f.Msg)
}

// Terminal is one primitive leaf of a rule's event expression.
type Terminal struct {
	// Key is the canonical event spec key (the same keys the engine's
	// ECA managers register under).
	Key string
	// Triggering is false for terminals under not(): their occurrences
	// participate in (by inhibiting) detection but can never initiate
	// the rule, so they contribute no triggering edges.
	Triggering bool
}

// Raised is one event a rule's condition or action can raise.
type Raised struct {
	Key string
	Via string // "action" or "condition"
}

// Node is one rule in the triggering graph.
type Node struct {
	Decl *rules.RuleDecl
	File string
	// Cond and Action are the effective coupling modes.
	Cond, Action eca.Coupling
	// Terminals are the primitive leaves of the triggering event.
	Terminals []Terminal
	// Raises are the events the rule's condition and action can raise.
	Raises []Raised
	// Reads and Writes are the Class.attr sets the rule's expressions
	// touch, for the confluence analysis.
	Reads, Writes []string
	// InCycle marks membership in a termination cycle.
	InCycle bool
	// Unreachable marks rules whose event can never complete.
	Unreachable bool
}

// Name returns the rule name.
func (n *Node) Name() string { return n.Decl.Name }

// triggerKeys returns the keys of the node's triggering terminals.
func (n *Node) triggerKeys() []string {
	var out []string
	for _, t := range n.Terminals {
		if t.Triggering {
			out = append(out, t.Key)
		}
	}
	return out
}

// Edge connects a raising rule to a rule its raised event can fire.
type Edge struct {
	From, To string
	// Key is the event that carries the edge.
	Key string
	// Via says whether the event is raised by From's action or by a
	// method call in its condition.
	Via string
}

// Graph is the whole-ruleset triggering graph.
type Graph struct {
	// Nodes in input order (file order, then declaration order).
	Nodes []*Node
	// Edges sorted by (From, To, Key, Via).
	Edges []Edge

	index map[string]int // rule name -> Nodes index
	succ  map[int][]int  // deduplicated adjacency, sorted
}

// Node returns the graph node for a rule name, or nil.
func (g *Graph) Node(name string) *Node {
	if i, ok := g.index[name]; ok {
		return g.Nodes[i]
	}
	return nil
}

// Cycle is one termination cycle: a closed rule path A → B → … → A
// (Rules holds each rule once; the path re-enters the first).
type Cycle struct {
	Rules []string `json:"rules"`
	// Detached is true when any rule in the cycle runs detached — the
	// cascade spans top-level transactions instead of recursing inside
	// one.
	Detached bool `json:"detached"`
	// Guarded is true when a detached cycle crosses a rule with a
	// timeout or breaker clause, which bounds the cascade at run time.
	Guarded  bool     `json:"guarded"`
	Severity Severity `json:"severity"`
}

// String renders the cycle path.
func (c Cycle) String() string {
	return strings.Join(append(append([]string{}, c.Rules...), c.Rules[0]), " -> ")
}

// World describes the classes the analysis may assume exist. A nil
// World is the open world: any method invocation or attribute update
// could arrive from application code, so only rules whose event is
// structurally un-completable (e.g. entirely negated) are unreachable.
// A closed World — built from a live data dictionary — additionally
// rejects rules waiting on methods or attributes that do not exist.
type World struct {
	// Methods holds "Class.method" for every registered method.
	Methods map[string]bool
	// Attrs holds "Class.attr" for every declared attribute.
	Attrs map[string]bool
}

// Result is the outcome of analyzing a rule set.
type Result struct {
	Graph *Graph
	// Findings that survived suppression, sorted by (file, line, rule).
	Findings []Finding
	// Suppressed counts findings silenced by justified lint:allow
	// comments.
	Suppressed int
	// Cycles found by the termination analysis.
	Cycles []Cycle
	// DepthBound is the static cascade-depth bound — the longest rule
	// chain a single external event can fire — valid (non-zero) only
	// when the graph is acyclic.
	DepthBound int
}

// HasErrors reports whether any surviving finding is an error.
func (r *Result) HasErrors() bool {
	for _, f := range r.Findings {
		if f.Severity == Error {
			return true
		}
	}
	return false
}

// Analyzer accumulates rule files and analyzes them as one set —
// cross-file edges are the analysis's reason to exist.
type Analyzer struct {
	files []fileSet
}

type fileSet struct {
	name  string
	decls []*rules.RuleDecl
	sups  []*suppression
}

// New returns an empty Analyzer.
func New() *Analyzer { return &Analyzer{} }

// Add records one parsed rule file. src is the raw source, scanned for
// lint:allow suppression comments; it may be empty when the source is
// unavailable (no suppressions then).
func (a *Analyzer) Add(name, src string, decls []*rules.RuleDecl) {
	a.files = append(a.files, fileSet{name: name, decls: decls, sups: parseSuppressions(src)})
}

// Analyze is the single-file convenience wrapper.
func Analyze(name, src string, decls []*rules.RuleDecl, w *World) *Result {
	a := New()
	a.Add(name, src, decls)
	return a.Run(w)
}

// Run builds the triggering graph over every added file and runs the
// termination, confluence, and reachability analyses against w.
func (a *Analyzer) Run(w *World) *Result {
	g := a.buildGraph()
	res := &Result{Graph: g}
	var raw []Finding
	raw = append(raw, a.termination(g, res)...)
	raw = append(raw, a.confluence(g)...)
	raw = append(raw, a.reachability(g, w)...)
	res.Findings, res.Suppressed = a.applySuppressions(raw)
	sortFindings(res.Findings)
	return res
}

// buildGraph derives terminals, raised events, and read/write sets for
// every rule and connects raisers to the rules their events can fire.
func (a *Analyzer) buildGraph() *Graph {
	g := &Graph{index: make(map[string]int), succ: make(map[int][]int)}
	for _, fs := range a.files {
		for _, d := range fs.decls {
			n := newNode(fs.name, d)
			if _, dup := g.index[n.Name()]; dup {
				// Duplicate names are a vet error; the analysis keeps
				// the first definition so the graph stays a function
				// of rule names.
				continue
			}
			g.index[n.Name()] = len(g.Nodes)
			g.Nodes = append(g.Nodes, n)
		}
	}
	// Index triggering terminals by key, preserving node order.
	byKey := make(map[string][]int)
	for i, n := range g.Nodes {
		seen := map[string]bool{}
		for _, t := range n.Terminals {
			if !t.Triggering || seen[t.Key] {
				continue
			}
			seen[t.Key] = true
			byKey[t.Key] = append(byKey[t.Key], i)
		}
	}
	for i, n := range g.Nodes {
		edges := map[[2]int]bool{} // dedup (to, raise-index collapse)
		for _, r := range n.Raises {
			for _, j := range byKey[r.Key] {
				g.Edges = append(g.Edges, Edge{From: n.Name(), To: g.Nodes[j].Name(), Key: r.Key, Via: r.Via})
				if !edges[[2]int{i, j}] {
					edges[[2]int{i, j}] = true
					g.succ[i] = append(g.succ[i], j)
				}
			}
		}
		sort.Ints(g.succ[i])
	}
	sort.SliceStable(g.Edges, func(i, j int) bool {
		a, b := g.Edges[i], g.Edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		return a.Via < b.Via
	})
	return g
}

// newNode derives one rule's graph node from its declaration.
func newNode(file string, d *rules.RuleDecl) *Node {
	cond, action := d.Modes()
	n := &Node{Decl: d, File: file, Cond: cond, Action: action}
	classOf := d.ClassOf()
	n.Terminals = terminals(d.Event, classOf, d.Name, true)

	rw := &rwSets{classOf: classOf}
	if d.Cond != nil {
		rw.walkExpr(d.Cond, "condition")
	}
	for _, s := range d.Actions {
		switch st := s.(type) {
		case rules.CallStmt:
			rw.raiseCall(st.Call, "action")
		case rules.SetStmt:
			if cls, ok := classOf[st.Target.Var]; ok && !scalar(cls) {
				rw.raise(event.StateSpec{Class: cls, Attr: st.Target.Attr}.Key(), "action")
				rw.write(cls + "." + st.Target.Attr)
			}
			rw.walkExpr(st.Value, "action")
		case rules.AbortStmt:
			// Aborting the rule transaction surfaces as the trigger's
			// abort; conservatively, rules on txn:abort may fire.
			rw.raise(event.TxnSpec{Phase: event.Abort}.Key(), "action")
		}
	}
	n.Raises = rw.raises
	n.Reads = sortedSet(rw.reads)
	n.Writes = sortedSet(rw.writes)
	return n
}

// terminals flattens an event expression into its primitive leaves.
// triggering is cleared under not(): non-occurrence terminals cannot
// initiate the rule.
func terminals(e rules.EventExpr, classOf map[string]string, ruleName string, triggering bool) []Terminal {
	switch ev := e.(type) {
	case rules.MethodEvent:
		cls, ok := classOf[ev.Recv]
		if !ok || scalar(cls) {
			return nil // undeclared receiver: vet's finding, not ours
		}
		when := event.Before
		if ev.After {
			when = event.After
		}
		key := event.MethodSpec{Class: cls, Method: ev.Method, When: when}.Key()
		return []Terminal{{Key: key, Triggering: triggering}}
	case rules.StateEvent:
		return []Terminal{{Key: event.StateSpec{Class: ev.Class, Attr: ev.Attr}.Key(), Triggering: triggering}}
	case rules.TxnEvent:
		return []Terminal{{Key: event.TxnSpec{Phase: txnPhase(ev.Phase)}.Key(), Triggering: triggering}}
	case rules.TimeEvent:
		var spec event.TemporalSpec
		switch ev.Kind {
		case "at":
			spec = event.TemporalSpec{Name: ruleName, Temporal: event.Absolute, At: ev.At}
		case "every":
			spec = event.TemporalSpec{Name: ruleName, Temporal: event.Periodic, Period: ev.Period}
		default:
			spec = event.TemporalSpec{Name: ruleName, Temporal: event.Relative, Delay: ev.Period}
		}
		return []Terminal{{Key: spec.Key(), Triggering: triggering}}
	case rules.SeqEvent:
		return terminalsAll(ev.Sub, classOf, ruleName, triggering)
	case rules.AndEvent:
		return terminalsAll(ev.Sub, classOf, ruleName, triggering)
	case rules.OrEvent:
		return terminalsAll(ev.Sub, classOf, ruleName, triggering)
	case rules.NotEvent:
		return terminals(ev.Sub, classOf, ruleName, false)
	case rules.TimesEvent:
		return terminals(ev.Sub, classOf, ruleName, triggering)
	case rules.CloseEvent:
		return terminals(ev.Sub, classOf, ruleName, triggering)
	}
	return nil
}

func terminalsAll(subs []rules.EventExpr, classOf map[string]string, ruleName string, triggering bool) []Terminal {
	var out []Terminal
	for _, s := range subs {
		out = append(out, terminals(s, classOf, ruleName, triggering)...)
	}
	return out
}

func txnPhase(s string) event.TxnPhase {
	switch s {
	case "bot":
		return event.BOT
	case "eot":
		return event.EOT
	case "commit":
		return event.Commit
	default:
		return event.Abort
	}
}

// scalar reports whether a declared "class" is a scalar type binding.
func scalar(cls string) bool {
	switch cls {
	case "int", "float", "string", "bool":
		return true
	}
	return false
}

// rwSets accumulates raised events and attribute read/write sets while
// walking condition and action expressions.
type rwSets struct {
	classOf map[string]string
	raises  []Raised
	reads   map[string]bool
	writes  map[string]bool
}

func (rw *rwSets) raise(key, via string) {
	for _, r := range rw.raises {
		if r.Key == key && r.Via == via {
			return
		}
	}
	rw.raises = append(rw.raises, Raised{Key: key, Via: via})
}

func (rw *rwSets) read(attr string) {
	if rw.reads == nil {
		rw.reads = make(map[string]bool)
	}
	rw.reads[attr] = true
}

func (rw *rwSets) write(attr string) {
	if rw.writes == nil {
		rw.writes = make(map[string]bool)
	}
	rw.writes[attr] = true
}

// raiseCall records the before/after method events of one invocation
// and walks its arguments.
func (rw *rwSets) raiseCall(c rules.CallExpr, via string) {
	if cls, ok := rw.classOf[c.Recv]; ok && !scalar(cls) {
		rw.raise(event.MethodSpec{Class: cls, Method: c.Method, When: event.Before}.Key(), via)
		rw.raise(event.MethodSpec{Class: cls, Method: c.Method, When: event.After}.Key(), via)
	}
	for _, a := range c.Args {
		rw.walkExpr(a, via)
	}
}

func (rw *rwSets) walkExpr(e rules.Expr, via string) {
	switch x := e.(type) {
	case rules.AttrRef:
		if cls, ok := rw.classOf[x.Var]; ok && !scalar(cls) {
			rw.read(cls + "." + x.Attr)
		}
	case rules.CallExpr:
		rw.raiseCall(x, via)
	case rules.BinOp:
		rw.walkExpr(x.L, via)
		rw.walkExpr(x.R, via)
	case rules.UnOp:
		rw.walkExpr(x.X, via)
	}
}

func sortedSet(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Msg < b.Msg
	})
}

// finding constructs a Finding anchored at a node.
func finding(n *Node, analyzer string, sev Severity, format string, args ...any) Finding {
	return Finding{
		File:     n.File,
		Line:     n.Decl.Line,
		Rule:     n.Name(),
		Analyzer: analyzer,
		Severity: sev,
		Msg:      fmt.Sprintf(format, args...),
	}
}
