package analysis

import (
	"strings"

	"repro/internal/rules"
)

// reachability computes the fixpoint of fireable rules: an event key
// is raisable if it comes from outside the rule set (any method call
// or attribute update the world admits, every transaction phase,
// every temporal source the engine arms) or is raised by a rule
// already known to be fireable. A rule is fireable when its event
// expression can complete from raisable keys and at least one
// triggering terminal is raisable — a rule whose every terminal sits
// under not() has nothing to initiate it and can never fire.
func (a *Analyzer) reachability(g *Graph, w *World) []Finding {
	raised := make(map[string]bool)
	raisable := func(key string) bool {
		if raised[key] {
			return true
		}
		switch {
		case strings.HasPrefix(key, "txn:"), strings.HasPrefix(key, "time:"):
			// Transaction phases occur for every transaction; temporal
			// sources are armed when the rule loads.
			return true
		case strings.HasPrefix(key, "method:"):
			if w == nil || w.Methods == nil {
				return true // open world: any application call
			}
			name := strings.TrimPrefix(key, "method:")
			if i := strings.LastIndexByte(name, ':'); i >= 0 {
				name = name[:i] // strip :before/:after
			}
			return w.Methods[name]
		case strings.HasPrefix(key, "state:"):
			if w == nil || w.Attrs == nil {
				return true
			}
			return w.Attrs[strings.TrimPrefix(key, "state:")]
		}
		return false
	}

	fireable := make([]bool, len(g.Nodes))
	for changed := true; changed; {
		changed = false
		for i, n := range g.Nodes {
			if fireable[i] || !canFire(n, raisable) {
				continue
			}
			fireable[i] = true
			changed = true
			for _, r := range n.Raises {
				raised[r.Key] = true
			}
		}
	}

	var out []Finding
	for i, n := range g.Nodes {
		if fireable[i] {
			continue
		}
		n.Unreachable = true
		trig := n.triggerKeys()
		if len(trig) == 0 {
			out = append(out, finding(n, "reachability", Warning,
				"event has no triggering terminal (every constituent is negated); the rule can never be initiated"))
			continue
		}
		var dead []string
		sev := Warning
		for _, k := range trig {
			if !raisable(k) {
				dead = append(dead, k)
				// Against a closed world a missing method or attribute
				// is a schema error, not merely dead code.
				if w != nil && (strings.HasPrefix(k, "method:") || strings.HasPrefix(k, "state:")) {
					sev = Error
				}
			}
		}
		if w != nil && sev == Error {
			out = append(out, finding(n, "reachability", Error,
				"event waits on %s, not registered in the data dictionary and raised by no rule action", strings.Join(dead, ", ")))
			continue
		}
		out = append(out, finding(n, "reachability", Warning,
			"no action, method source, or sentry-visible update can raise %s; the rule can never fire", strings.Join(dead, ", ")))
	}
	return out
}

// canFire reports whether the node's event can complete from raisable
// keys with at least one raisable triggering terminal to initiate it.
func canFire(n *Node, raisable func(string) bool) bool {
	initiated := false
	for _, t := range n.Terminals {
		if t.Triggering && raisable(t.Key) {
			initiated = true
			break
		}
	}
	if !initiated {
		return false
	}
	return completable(n.Decl.Event, n.Decl.ClassOf(), n.Decl.Name, raisable)
}

// completable mirrors the composite detectors' completion semantics:
// not() completes by non-occurrence, or() needs any branch, the
// conjunctive operators need every constituent, times/closure need
// their sub-event.
func completable(e rules.EventExpr, classOf map[string]string, ruleName string, raisable func(string) bool) bool {
	switch ev := e.(type) {
	case rules.NotEvent:
		return true
	case rules.OrEvent:
		for _, s := range ev.Sub {
			if completable(s, classOf, ruleName, raisable) {
				return true
			}
		}
		return false
	case rules.SeqEvent:
		return allCompletable(ev.Sub, classOf, ruleName, raisable)
	case rules.AndEvent:
		return allCompletable(ev.Sub, classOf, ruleName, raisable)
	case rules.TimesEvent:
		return completable(ev.Sub, classOf, ruleName, raisable)
	case rules.CloseEvent:
		return completable(ev.Sub, classOf, ruleName, raisable)
	}
	for _, t := range terminals(e, classOf, ruleName, true) {
		if !raisable(t.Key) {
			return false
		}
	}
	return true
}

func allCompletable(subs []rules.EventExpr, classOf map[string]string, ruleName string, raisable func(string) bool) bool {
	for _, s := range subs {
		if !completable(s, classOf, ruleName, raisable) {
			return false
		}
	}
	return true
}
