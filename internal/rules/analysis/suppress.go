package analysis

import (
	"sort"
	"strings"
)

// suppression is one reviewed lint:allow comment in a .rules source:
//
//	# lint:allow termination detached loop bounded by plant breaker
//
// It attaches to the next rule declaration at or below it and silences
// that rule's findings from the named analyzer. The justification is
// mandatory — an allow without a reason is itself an error — and an
// allow that silences nothing is reported as stale so suppressions
// cannot outlive the problem they excused.
type suppression struct {
	line          int
	analyzer      string
	justification string
	used          bool
}

// parseSuppressions scans raw .rules source for lint:allow comments.
func parseSuppressions(src string) []*suppression {
	if src == "" {
		return nil
	}
	var out []*suppression
	for i, line := range strings.Split(src, "\n") {
		text, ok := commentText(line)
		if !ok {
			continue
		}
		rest, ok := strings.CutPrefix(text, "lint:allow")
		if !ok {
			continue
		}
		rest = strings.TrimSpace(rest)
		analyzer, justification, _ := strings.Cut(rest, " ")
		out = append(out, &suppression{
			line:          i + 1,
			analyzer:      analyzer,
			justification: strings.TrimSpace(justification),
		})
	}
	return out
}

// commentText extracts the trimmed comment body of a line, accepting
// both the # and // comment forms.
func commentText(line string) (string, bool) {
	for _, marker := range []string{"#", "//"} {
		if _, after, ok := strings.Cut(line, marker); ok {
			return strings.TrimSpace(after), true
		}
	}
	return "", false
}

// applySuppressions attaches each file's suppressions to rules, drops
// findings they cover, and reports malformed or stale suppressions.
func (a *Analyzer) applySuppressions(raw []Finding) (kept []Finding, suppressed int) {
	type attached struct {
		*suppression
		file string
		rule string
	}
	var all []attached
	for _, fs := range a.files {
		for _, sup := range fs.sups {
			at := attached{suppression: sup, file: fs.name}
			// Attach to the nearest rule declared at or below the
			// comment; a trailing comment attaches to nothing.
			best := -1
			for _, d := range fs.decls {
				if d.Line >= sup.line && (best == -1 || d.Line < best) {
					best = d.Line
					at.rule = d.Name
				}
			}
			all = append(all, at)
		}
	}

	for _, f := range raw {
		hit := false
		for i := range all {
			s := &all[i]
			if s.file == f.File && s.rule == f.Rule && s.analyzer == f.Analyzer && s.justification != "" {
				s.used = true
				hit = true
			}
		}
		if hit {
			suppressed++
		} else {
			kept = append(kept, f)
		}
	}

	sort.SliceStable(all, func(i, j int) bool {
		if all[i].file != all[j].file {
			return all[i].file < all[j].file
		}
		return all[i].line < all[j].line
	})
	for _, s := range all {
		switch {
		case s.analyzer == "" || s.justification == "":
			kept = append(kept, Finding{
				File: s.file, Line: s.line, Rule: s.rule,
				Analyzer: "suppression", Severity: Error,
				Msg: "lint:allow needs an analyzer name and a justification: lint:allow <analyzer> <why this is safe>",
			})
		case !s.used:
			kept = append(kept, Finding{
				File: s.file, Line: s.line, Rule: s.rule,
				Analyzer: "suppression", Severity: Warning,
				Msg: "stale lint:allow " + s.analyzer + ": no finding left to suppress; delete the comment",
			})
		}
	}
	return kept, suppressed
}
