package analysis

import (
	"fmt"
	"io"
	"strings"
)

// DOT writes the triggering graph in Graphviz dot syntax. Rules in a
// termination cycle render red, unreachable rules gray and dashed;
// edges are labeled with the event that carries them, and edges raised
// from a rule's condition (rather than its action) are dashed. Output
// order is deterministic: nodes in declaration order, edges in the
// graph's (From, To, Key, Via) sort.
func (g *Graph) DOT(w io.Writer) error {
	var b strings.Builder
	b.WriteString("digraph triggering {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=box, fontname=\"Helvetica\"];\n")
	for _, n := range g.Nodes {
		attrs := []string{fmt.Sprintf("label=%q", fmt.Sprintf("%s\\nprio %d · %v", n.Name(), n.Decl.Prio, n.Action))}
		switch {
		case n.InCycle:
			attrs = append(attrs, "color=red", "fontcolor=red")
		case n.Unreachable:
			attrs = append(attrs, "color=gray", "fontcolor=gray", "style=dashed")
		}
		fmt.Fprintf(&b, "  %q [%s];\n", n.Name(), strings.Join(attrs, ", "))
	}
	for _, e := range g.Edges {
		attrs := []string{fmt.Sprintf("label=%q", e.Key)}
		if e.Via == "condition" {
			attrs = append(attrs, "style=dashed")
		}
		fmt.Fprintf(&b, "  %q -> %q [%s];\n", e.From, e.To, strings.Join(attrs, ", "))
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
