package analysis

import (
	"strings"
	"testing"

	"repro/internal/rules"
)

func parse(t *testing.T, src string) []*rules.RuleDecl {
	t.Helper()
	decls, err := rules.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return decls
}

// pingPong is a two-rule immediate-coupling cycle: PingA's action
// calls drain, which PongB triggers on; PongB's action calls fill,
// which PingA triggers on.
const pingPong = `
rule PingA {
    prio 5;
    decl Tank *t;
    event after t->fill();
    action imm t->drain();
};

rule PongB {
    prio 4;
    decl Tank *t;
    event before t->drain();
    action imm t->fill();
};
`

func TestImmediateCycleIsError(t *testing.T) {
	res := Analyze("ping.rules", pingPong, parse(t, pingPong), nil)
	if !res.HasErrors() {
		t.Fatalf("want termination error, got %v", res.Findings)
	}
	if len(res.Cycles) != 1 {
		t.Fatalf("cycles = %v, want 1", res.Cycles)
	}
	c := res.Cycles[0]
	if c.Detached || c.Guarded || c.Severity != Error {
		t.Errorf("cycle classified %+v, want non-detached error", c)
	}
	if got := c.String(); got != "PingA -> PongB -> PingA" {
		t.Errorf("cycle path = %q", got)
	}
	var hit bool
	for _, f := range res.Findings {
		if f.Analyzer == "termination" && strings.Contains(f.Msg, "PingA -> PongB -> PingA") {
			hit = true
			if f.Rule != "PingA" || f.Line == 0 {
				t.Errorf("finding anchored at %s:%d rule %s, want the first cycle member", f.File, f.Line, f.Rule)
			}
		}
	}
	if !hit {
		t.Errorf("no termination finding naming the cycle path: %v", res.Findings)
	}
	if !res.Graph.Node("PingA").InCycle || !res.Graph.Node("PongB").InCycle {
		t.Error("cycle members not marked InCycle")
	}
	if res.DepthBound != 0 {
		t.Errorf("DepthBound = %d on a cyclic set, want 0", res.DepthBound)
	}
}

func TestSuppressedCyclePasses(t *testing.T) {
	src := strings.Replace(pingPong, "rule PingA {",
		"# lint:allow termination operators bound this loop via the plant interlock\nrule PingA {", 1)
	res := Analyze("ping.rules", src, parse(t, src), nil)
	if res.HasErrors() {
		t.Fatalf("suppressed set still has errors: %v", res.Findings)
	}
	if res.Suppressed != 1 {
		t.Errorf("Suppressed = %d, want 1", res.Suppressed)
	}
}

func TestUnjustifiedSuppressionIsError(t *testing.T) {
	src := strings.Replace(pingPong, "rule PingA {", "# lint:allow termination\nrule PingA {", 1)
	res := Analyze("ping.rules", src, parse(t, src), nil)
	found := false
	for _, f := range res.Findings {
		if f.Analyzer == "suppression" && f.Severity == Error {
			found = true
		}
	}
	if !found {
		t.Errorf("no suppression error for justification-less lint:allow: %v", res.Findings)
	}
}

func TestStaleSuppressionWarns(t *testing.T) {
	src := `
# lint:allow termination nothing here loops
rule Lone {
    decl Tank *t;
    event after t->fill();
    action imm set t.level = 0;
};
`
	res := Analyze("lone.rules", src, parse(t, src), nil)
	found := false
	for _, f := range res.Findings {
		if f.Analyzer == "suppression" && f.Severity == Warning && strings.Contains(f.Msg, "stale") {
			found = true
		}
	}
	if !found {
		t.Errorf("no stale-suppression warning: %v", res.Findings)
	}
}

func TestDetachedGuardedCycleIsWarning(t *testing.T) {
	src := `
rule Refill {
    decl Tank *t;
    event after t->fill();
    action detached t->fill();
    timeout 5s;
};
`
	res := Analyze("refill.rules", src, parse(t, src), nil)
	if res.HasErrors() {
		t.Fatalf("guarded detached cycle should be a warning: %v", res.Findings)
	}
	if len(res.Cycles) != 1 || !res.Cycles[0].Detached || !res.Cycles[0].Guarded {
		t.Fatalf("cycles = %+v, want one guarded detached cycle", res.Cycles)
	}
}

func TestDetachedUnguardedCycleIsError(t *testing.T) {
	src := `
rule Refill {
    decl Tank *t;
    event after t->fill();
    action detached t->fill();
};
`
	res := Analyze("refill.rules", src, parse(t, src), nil)
	if !res.HasErrors() {
		t.Fatalf("unguarded detached cycle should be an error: %v", res.Findings)
	}
}

func TestDepthBoundOfChain(t *testing.T) {
	src := `
rule C1 {
    prio 3;
    decl Tank *t;
    event after t->a();
    action imm t->b();
};
rule C2 {
    prio 2;
    decl Tank *t;
    event before t->b();
    action imm t->c();
};
rule C3 {
    prio 1;
    decl Tank *t;
    event before t->c();
    action imm set t.x = 1;
};
`
	res := Analyze("chain.rules", src, parse(t, src), nil)
	if res.HasErrors() {
		t.Fatalf("chain should be clean: %v", res.Findings)
	}
	if res.DepthBound != 3 {
		t.Errorf("DepthBound = %d, want 3", res.DepthBound)
	}
}

func TestConfluenceWriteWrite(t *testing.T) {
	src := `
rule W1 {
    prio 2;
    decl Tank *t;
    event update of Tank.level;
    action imm set t.alarm = 1;
};
rule W2 {
    prio 2;
    decl Tank *t;
    event commit;
    action imm set t.alarm = 0;
};
`
	res := Analyze("ww.rules", src, parse(t, src), nil)
	found := false
	for _, f := range res.Findings {
		if f.Analyzer == "confluence" && strings.Contains(f.Msg, "Tank.alarm") {
			found = true
		}
	}
	if !found {
		t.Errorf("no confluence finding for equal-priority write-write pair: %v", res.Findings)
	}
	// Distinct priorities order the pair deterministically — no finding.
	fixed := strings.Replace(src, "prio 2;\n    decl Tank *t;\n    event commit", "prio 1;\n    decl Tank *t;\n    event commit", 1)
	res = Analyze("ww.rules", fixed, parse(t, fixed), nil)
	for _, f := range res.Findings {
		if f.Analyzer == "confluence" {
			t.Errorf("unexpected confluence finding after priorities split: %v", f)
		}
	}
}

func TestConfluenceReadWriteNeedsTriggerOverlap(t *testing.T) {
	src := `
rule R1 {
    prio 2;
    decl Tank *t;
    event update of Tank.level;
    cond imm t.alarm > 0;
    action imm t->vent();
};
rule R2 {
    prio 2;
    decl Tank *t;
    event update of Tank.level;
    action imm set t.alarm = 1;
};
`
	res := Analyze("rw.rules", src, parse(t, src), nil)
	found := false
	for _, f := range res.Findings {
		if f.Analyzer == "confluence" && strings.Contains(f.Msg, "Tank.alarm") {
			found = true
		}
	}
	if !found {
		t.Errorf("no confluence finding for overlapping-trigger read/write pair: %v", res.Findings)
	}
}

func TestReachabilityNegatedOnly(t *testing.T) {
	src := `
rule NeverInit {
    decl Tank *t;
    event not(after t->fill());
    action imm t->drain();
};
`
	res := Analyze("neg.rules", src, parse(t, src), nil)
	found := false
	for _, f := range res.Findings {
		if f.Analyzer == "reachability" && f.Rule == "NeverInit" {
			found = true
		}
	}
	if !found {
		t.Errorf("no reachability finding for fully negated event: %v", res.Findings)
	}
	if !res.Graph.Node("NeverInit").Unreachable {
		t.Error("node not marked Unreachable")
	}
}

func TestReachabilityClosedWorld(t *testing.T) {
	src := `
rule Ghost {
    decl Tank *t;
    event update of Tank.missing;
    action imm t->drain();
};
`
	w := &World{
		Methods: map[string]bool{"Tank.drain": true, "Tank.fill": true},
		Attrs:   map[string]bool{"Tank.level": true},
	}
	res := Analyze("ghost.rules", src, parse(t, src), nil)
	if res.HasErrors() {
		t.Fatalf("open world should not reject unknown attrs: %v", res.Findings)
	}
	res = Analyze("ghost.rules", src, parse(t, src), w)
	if !res.HasErrors() {
		t.Fatalf("closed world should reject state:Tank.missing: %v", res.Findings)
	}
}

// A rule waiting on an attribute no application code can touch is
// still reachable when another rule's action writes it: the fixpoint
// feeds rule-raised events back into the raisable set.
func TestReachabilityFixpointThroughRuleActions(t *testing.T) {
	src := `
rule Source {
    prio 2;
    decl Tank *t;
    event commit;
    action imm set t.derived = 1;
};
rule Sink {
    prio 1;
    decl Tank *t;
    event update of Tank.derived;
    action imm t->drain();
};
`
	w := &World{
		Methods: map[string]bool{"Tank.drain": true},
		Attrs:   map[string]bool{}, // Tank.derived is rule-maintained only
	}
	res := Analyze("fix.rules", src, parse(t, src), w)
	if res.Graph.Node("Sink").Unreachable {
		t.Errorf("Sink unreachable despite Source raising its trigger: %v", res.Findings)
	}
}

func TestCrossFileEdges(t *testing.T) {
	a := New()
	f1 := `
rule Raiser {
    prio 2;
    decl Tank *t;
    event commit;
    action imm t->fill();
};
`
	f2 := `
rule Listener {
    prio 1;
    decl Tank *t;
    event after t->fill();
    action imm set t.level = 0;
};
`
	a.Add("one.rules", f1, parse(t, f1))
	a.Add("two.rules", f2, parse(t, f2))
	res := a.Run(nil)
	found := false
	for _, e := range res.Graph.Edges {
		if e.From == "Raiser" && e.To == "Listener" && e.Key == "method:Tank.fill:after" {
			found = true
		}
	}
	if !found {
		t.Errorf("no cross-file edge Raiser -> Listener: %v", res.Graph.Edges)
	}
}

func TestAbortRaisesTxnAbort(t *testing.T) {
	src := `
rule Guard {
    prio 2;
    decl Tank *t;
    event update of Tank.level;
    action imm abort "overfull";
};
rule Janitor {
    prio 1;
    decl Tank *t;
    event abort;
    action detached t->drain();
    timeout 1s;
};
`
	res := Analyze("abort.rules", src, parse(t, src), nil)
	found := false
	for _, e := range res.Graph.Edges {
		if e.From == "Guard" && e.To == "Janitor" && e.Key == "txn:abort" {
			found = true
		}
	}
	if !found {
		t.Errorf("abort action did not edge to the txn:abort rule: %v", res.Graph.Edges)
	}
}

func TestFindingsDeterministicOrder(t *testing.T) {
	src := pingPong + `
rule NeverInit {
    decl Tank *t;
    event not(after t->vent());
    action imm t->drain();
};
`
	var first []string
	for round := 0; round < 5; round++ {
		res := Analyze("mix.rules", src, parse(t, src), nil)
		var got []string
		for _, f := range res.Findings {
			got = append(got, f.String())
		}
		if round == 0 {
			first = got
			continue
		}
		if strings.Join(first, "\n") != strings.Join(got, "\n") {
			t.Fatalf("round %d reordered findings:\n%v\nvs\n%v", round, first, got)
		}
	}
}

func TestDOTExport(t *testing.T) {
	res := Analyze("ping.rules", pingPong, parse(t, pingPong), nil)
	var b strings.Builder
	if err := res.Graph.DOT(&b); err != nil {
		t.Fatal(err)
	}
	dot := b.String()
	for _, want := range []string{
		"digraph triggering {",
		`"PingA" -> "PongB" [label="method:Tank.drain:before"];`,
		`"PongB" -> "PingA" [label="method:Tank.fill:after"];`,
		"color=red",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}
