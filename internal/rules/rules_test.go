package rules

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/eca"
	"repro/internal/oodb"
)

var epoch = time.Date(1995, 3, 6, 0, 0, 0, 0, time.UTC)

// waterLevelRule is the paper's §6.1 example, verbatim in spirit.
const waterLevelRule = `
rule WaterLevel {
    prio 5;
    decl River *river, int x, Reactor *reactor named "BlockA";
    event after river->updateWaterLevel(x);
    cond imm x < 37 and river->getWaterTemp() > 24.5
             and reactor->getHeatOutput() > 1000000;
    action imm reactor->reducePlannedPower(0.05);
};
`

// newPlant builds the power-plant schema of §6.1.
func newPlant(t *testing.T) (*eca.Engine, *oodb.DB, *clock.Virtual) {
	t.Helper()
	vc := clock.NewVirtual(epoch)
	db, err := oodb.Open(oodb.Options{Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	river := oodb.NewClass("River",
		oodb.Attr{Name: "level", Type: oodb.TInt},
		oodb.Attr{Name: "temp", Type: oodb.TFloat},
	)
	river.Monitored = true
	river.Method("updateWaterLevel", func(ctx *oodb.Ctx, self *oodb.Object, args []any) (any, error) {
		return nil, ctx.Set(self, "level", args[0])
	})
	river.Method("getWaterTemp", func(ctx *oodb.Ctx, self *oodb.Object, args []any) (any, error) {
		return ctx.GetFloat(self, "temp")
	})
	reactor := oodb.NewClass("Reactor",
		oodb.Attr{Name: "heatOutput", Type: oodb.TFloat},
		oodb.Attr{Name: "plannedPower", Type: oodb.TFloat},
	)
	reactor.Monitored = true
	reactor.Method("getHeatOutput", func(ctx *oodb.Ctx, self *oodb.Object, args []any) (any, error) {
		return ctx.GetFloat(self, "heatOutput")
	})
	reactor.Method("reducePlannedPower", func(ctx *oodb.Ctx, self *oodb.Object, args []any) (any, error) {
		frac, _ := args[0].(float64)
		p, err := ctx.GetFloat(self, "plannedPower")
		if err != nil {
			return nil, err
		}
		return nil, ctx.Set(self, "plannedPower", p*(1-frac))
	})
	for _, c := range []*oodb.Class{river, reactor} {
		if err := db.Dictionary().Register(c); err != nil {
			t.Fatal(err)
		}
	}
	e := eca.New(db, eca.Options{})
	t.Cleanup(e.Close)
	return e, db, vc
}

func TestWaterLevelRuleEndToEnd(t *testing.T) {
	e, db, _ := newPlant(t)
	// Set up the plant: a river and the named reactor "BlockA".
	tx := db.Begin()
	river, _ := db.NewObject(tx, "River")
	db.Set(tx, river, "temp", 26.0)
	reactorObj, _ := db.NewObject(tx, "Reactor")
	db.Set(tx, reactorObj, "heatOutput", 2_000_000.0)
	db.Set(tx, reactorObj, "plannedPower", 1000.0)
	if err := db.SetRoot(tx, "BlockA", reactorObj); err != nil {
		t.Skip("in-memory DB cannot persist; binding roots needs names only")
	}
	tx.Commit()

	loaded, err := Load(e, waterLevelRule)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Stop()
	if len(loaded.Rules) != 1 || loaded.Rules[0].Name != "WaterLevel" {
		t.Fatalf("loaded %v", loaded.Rules)
	}
	if loaded.Rules[0].Priority != 5 {
		t.Fatalf("priority = %d, want 5", loaded.Rules[0].Priority)
	}

	// Low water level while hot: the rule must reduce planned power 5%.
	tx2 := db.Begin()
	if _, err := db.Invoke(tx2, river, "updateWaterLevel", int64(30)); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	tx3 := db.Begin()
	if v, _ := db.Get(tx3, reactorObj, "plannedPower"); v != 950.0 {
		t.Fatalf("plannedPower = %v, want 950 (reduced by 5%%)", v)
	}
	// High water level: condition false, no further reduction.
	if _, err := db.Invoke(tx3, river, "updateWaterLevel", int64(80)); err != nil {
		t.Fatal(err)
	}
	tx3.Commit()
	tx4 := db.Begin()
	if v, _ := db.Get(tx4, reactorObj, "plannedPower"); v != 950.0 {
		t.Fatalf("plannedPower = %v, want 950 (unchanged)", v)
	}
	tx4.Commit()
}

func TestWaterLevelRuleEndToEndOnDisk(t *testing.T) {
	vc := clock.NewVirtual(epoch)
	db, err := oodb.Open(oodb.Options{Dir: t.TempDir(), Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	river := oodb.NewClass("River", oodb.Attr{Name: "level", Type: oodb.TInt}, oodb.Attr{Name: "temp", Type: oodb.TFloat})
	river.Monitored = true
	river.Method("updateWaterLevel", func(ctx *oodb.Ctx, self *oodb.Object, args []any) (any, error) {
		return nil, ctx.Set(self, "level", args[0])
	})
	river.Method("getWaterTemp", func(ctx *oodb.Ctx, self *oodb.Object, args []any) (any, error) {
		return ctx.GetFloat(self, "temp")
	})
	reactor := oodb.NewClass("Reactor", oodb.Attr{Name: "heatOutput", Type: oodb.TFloat}, oodb.Attr{Name: "plannedPower", Type: oodb.TFloat})
	reactor.Monitored = true
	reactor.Method("getHeatOutput", func(ctx *oodb.Ctx, self *oodb.Object, args []any) (any, error) {
		return ctx.GetFloat(self, "heatOutput")
	})
	reactor.Method("reducePlannedPower", func(ctx *oodb.Ctx, self *oodb.Object, args []any) (any, error) {
		frac, _ := args[0].(float64)
		p, _ := ctx.GetFloat(self, "plannedPower")
		return nil, ctx.Set(self, "plannedPower", p*(1-frac))
	})
	db.Dictionary().Register(river)
	db.Dictionary().Register(reactor)
	e := eca.New(db, eca.Options{})
	defer e.Close()

	tx := db.Begin()
	riverObj, _ := db.NewObject(tx, "River")
	db.Set(tx, riverObj, "temp", 30.0)
	reactorObj, _ := db.NewObject(tx, "Reactor")
	db.Set(tx, reactorObj, "heatOutput", 1_500_000.0)
	db.Set(tx, reactorObj, "plannedPower", 800.0)
	if err := db.SetRoot(tx, "BlockA", reactorObj); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	loaded, err := Load(e, waterLevelRule)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Stop()

	tx2 := db.Begin()
	db.Invoke(tx2, riverObj, "updateWaterLevel", int64(20))
	tx2.Commit()
	tx3 := db.Begin()
	if v, _ := db.Get(tx3, reactorObj, "plannedPower"); v != 760.0 {
		t.Fatalf("plannedPower = %v, want 760", v)
	}
	tx3.Commit()
}

func TestParseWaterLevelShape(t *testing.T) {
	decls, err := Parse(waterLevelRule)
	if err != nil {
		t.Fatal(err)
	}
	if len(decls) != 1 {
		t.Fatalf("parsed %d rules, want 1", len(decls))
	}
	d := decls[0]
	if d.Name != "WaterLevel" || d.Prio != 5 {
		t.Fatalf("name/prio = %s/%d", d.Name, d.Prio)
	}
	if len(d.Decls) != 3 {
		t.Fatalf("decls = %v", d.Decls)
	}
	if d.Decls[0].Class != "River" || !d.Decls[0].Ptr || d.Decls[0].Name != "river" {
		t.Fatalf("decl[0] = %+v", d.Decls[0])
	}
	if d.Decls[1].Class != "int" || d.Decls[1].Name != "x" || !d.Decls[1].IsScalar() {
		t.Fatalf("decl[1] = %+v", d.Decls[1])
	}
	if d.Decls[2].Named != "BlockA" {
		t.Fatalf("decl[2] = %+v", d.Decls[2])
	}
	me, ok := d.Event.(MethodEvent)
	if !ok || !me.After || me.Recv != "river" || me.Method != "updateWaterLevel" ||
		len(me.Params) != 1 || me.Params[0] != "x" {
		t.Fatalf("event = %+v", d.Event)
	}
	if d.CondMode != "imm" || d.ActionMode != "imm" {
		t.Fatalf("modes = %q/%q", d.CondMode, d.ActionMode)
	}
	if d.Cond == nil || len(d.Actions) != 1 {
		t.Fatal("cond/actions missing")
	}
}

func TestParseCompositeEvents(t *testing.T) {
	src := `
rule Chain {
    decl Sensor *a, Sensor *b;
    event seq(after a->ping(), not(after a->reset()), after b->ping());
    policy recent;
    scope global;
    validity 30s;
    action detached a->ping();
};
rule Counter {
    decl Sensor *s;
    event times(3, after s->ping());
    action deferred s->reset();
};
rule Either {
    decl Sensor *s;
    event or(after s->ping(), before s->reset());
    action detached s->ping();
};
rule AllOfThem {
    decl Sensor *s;
    event closure(after s->ping());
    action deferred s->reset();
};
`
	decls, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(decls) != 4 {
		t.Fatalf("parsed %d rules", len(decls))
	}
	seq, ok := decls[0].Event.(SeqEvent)
	if !ok || len(seq.Sub) != 3 {
		t.Fatalf("Chain event = %+v", decls[0].Event)
	}
	if _, ok := seq.Sub[1].(NotEvent); !ok {
		t.Fatalf("Chain middle = %+v", seq.Sub[1])
	}
	if decls[0].Policy != "recent" || decls[0].Scope != "global" || decls[0].Validity != 30*time.Second {
		t.Fatalf("Chain attrs = %+v", decls[0])
	}
	if tim, ok := decls[1].Event.(TimesEvent); !ok || tim.N != 3 {
		t.Fatalf("Counter event = %+v", decls[1].Event)
	}
	if _, ok := decls[2].Event.(OrEvent); !ok {
		t.Fatalf("Either event = %+v", decls[2].Event)
	}
	if _, ok := decls[3].Event.(CloseEvent); !ok {
		t.Fatalf("AllOfThem event = %+v", decls[3].Event)
	}
}

func TestParseTemporalAndTxnEvents(t *testing.T) {
	src := `
rule Nightly {
    event every 24h;
    action detached abort "placeholder";
};
rule OnCommit {
    event commit;
    action detached abort "x";
};
rule StateWatch {
    decl River *r;
    event update of River.level;
    action deferred r->getWaterTemp();
};
rule Deadline {
    event at "1995-03-07T12:00:00Z";
    action detached abort "deadline";
};
rule Soon {
    event in 90s;
    action detached abort "soon";
};
`
	decls, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if te := decls[0].Event.(TimeEvent); te.Kind != "every" || te.Period != 24*time.Hour {
		t.Fatalf("Nightly = %+v", te)
	}
	if te := decls[1].Event.(TxnEvent); te.Phase != "commit" {
		t.Fatalf("OnCommit = %+v", te)
	}
	if se := decls[2].Event.(StateEvent); se.Class != "River" || se.Attr != "level" {
		t.Fatalf("StateWatch = %+v", se)
	}
	if te := decls[3].Event.(TimeEvent); te.Kind != "at" || te.At.IsZero() {
		t.Fatalf("Deadline = %+v", te)
	}
	if te := decls[4].Event.(TimeEvent); te.Kind != "in" || te.Period != 90*time.Second {
		t.Fatalf("Soon = %+v", te)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`rule {}`,
		`rule R { }`,                         // no event/action
		`rule R { event after x->m(); }`,     // no action
		`rule R { action detached a->m(); }`, // no event
		`rule R { prio "high"; event commit; action detached a->m(); }`, // bad prio
		`rule R { event after x->m; action detached a->m(); }`,          // missing parens
		`rule R { bogus 5; event commit; action detached a->m(); }`,     // unknown clause
		`rule R { event at "not-a-time"; action detached a->m(); }`,
		`rule R { validity fast; event commit; action detached a->m(); }`,
		`rule R { event commit; action detached a->m() }`, // missing ;
	}
	for i, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d: Parse accepted %q", i, src)
		}
	}
}

func TestCompositeRuleThroughDSL(t *testing.T) {
	e, db, _ := newPlant(t)
	tx := db.Begin()
	riverObj, _ := db.NewObject(tx, "River")
	db.Set(tx, riverObj, "temp", 20.0)
	tx.Commit()

	// Two level updates in one transaction trigger the deferred rule.
	src := `
rule DoubleUpdate {
    decl River *r, int x, River *r2, int y;
    event seq(after r->updateWaterLevel(x), after r2->updateWaterLevel(y));
    cond deferred x > y;
    action deferred r->getWaterTemp();
};
`
	loaded, err := Load(e, src)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Stop()
	if len(loaded.Composites) != 1 {
		t.Fatalf("composites = %d, want 1", len(loaded.Composites))
	}

	var fired atomic.Int64
	// Wrap: count invocations of getWaterTemp via an extra rule.
	e.AddRule(&eca.Rule{
		Name:       "count",
		EventKey:   "method:River.getWaterTemp:after",
		ActionMode: eca.Detached,
		Action:     func(*eca.RuleCtx) error { fired.Add(1); return nil },
	})

	tx2 := db.Begin()
	db.Invoke(tx2, riverObj, "updateWaterLevel", int64(50))
	db.Invoke(tx2, riverObj, "updateWaterLevel", int64(10))
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	e.WaitDetached()
	if fired.Load() != 1 {
		t.Fatalf("composite DSL rule fired %d times, want 1", fired.Load())
	}

	// Descending condition false: x < y.
	tx3 := db.Begin()
	db.Invoke(tx3, riverObj, "updateWaterLevel", int64(10))
	db.Invoke(tx3, riverObj, "updateWaterLevel", int64(50))
	tx3.Commit()
	e.WaitDetached()
	if fired.Load() != 1 {
		t.Fatalf("condition x>y did not filter: fired = %d", fired.Load())
	}
}

func TestTemporalRuleThroughDSL(t *testing.T) {
	e, db, vc := newPlant(t)
	tx := db.Begin()
	riverObj, _ := db.NewObject(tx, "River")
	db.SetRoot(tx, "Rhine", riverObj)
	tx.Commit()

	src := `
rule Sample {
    decl River *r named "Rhine";
    event every 10s;
    action detached set r.level = r.level + 1;
};
`
	loaded, err := Load(e, src)
	if err != nil {
		if strings.Contains(err.Error(), "persist") {
			t.Skip("needs persistent roots")
		}
		t.Fatal(err)
	}
	defer loaded.Stop()
	vc.Advance(35 * time.Second)
	e.WaitDetached()
	tx2 := db.Begin()
	if v, _ := db.Get(tx2, riverObj, "level"); v != int64(3) {
		t.Fatalf("level = %v, want 3 (three periods)", v)
	}
	tx2.Commit()
	loaded.Stop()
	vc.Advance(time.Minute)
	e.WaitDetached()
	tx3 := db.Begin()
	if v, _ := db.Get(tx3, riverObj, "level"); v != int64(3) {
		t.Fatalf("level = %v after Stop, want 3", v)
	}
	tx3.Commit()
}

func TestAbortActionVetoes(t *testing.T) {
	e, db, _ := newPlant(t)
	tx := db.Begin()
	riverObj, _ := db.NewObject(tx, "River")
	tx.Commit()

	src := `
rule Guard {
    decl River *r, int x;
    event before r->updateWaterLevel(x);
    cond imm x < 0;
    action imm abort "negative water level";
};
`
	loaded, err := Load(e, src)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Stop()
	tx2 := db.Begin()
	if _, err := db.Invoke(tx2, riverObj, "updateWaterLevel", int64(-5)); err == nil {
		t.Fatal("negative update not vetoed")
	}
	if _, err := db.Invoke(tx2, riverObj, "updateWaterLevel", int64(5)); err != nil {
		t.Fatalf("positive update vetoed: %v", err)
	}
	tx2.Commit()
}

func TestLoadRejectsBadAdmission(t *testing.T) {
	e, _, _ := newPlant(t)
	// Temporal event with immediate coupling must be rejected (Table 1).
	src := `
rule Bad {
    event every 5s;
    action imm abort "x";
};
`
	if _, err := Load(e, src); err == nil {
		t.Fatal("temporal+immediate DSL rule admitted")
	}
}

func TestExpressionEvaluation(t *testing.T) {
	cases := []struct {
		expr string
		want any
	}{
		{"1 + 2 * 3", int64(7)},
		{"(1 + 2) * 3", int64(9)},
		{"10 / 4", int64(2)},
		{"10.0 / 4", 2.5},
		{"7 % 3", int64(1)},
		{"-3 + 5", int64(2)},
		{"1 < 2 and 2 < 3", true},
		{"1 > 2 or 3 > 2", true},
		{"not (1 == 1)", false},
		{"1 != 2", true},
		{"2 == 2.0", true},
		{`"abc" + "def" == "abcdef"`, true},
		{`"a" < "b"`, true},
		{"true and not false", true},
	}
	for _, c := range cases {
		src := "rule T { event commit; cond detached " + c.expr + "; action detached abort \"x\"; };"
		decls, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", c.expr, err)
		}
		ev := &env{vars: map[string]any{}}
		got, err := ev.eval(decls[0].Cond)
		if err != nil {
			t.Fatalf("%s: %v", c.expr, err)
		}
		if got != c.want {
			t.Errorf("%s = %v (%T), want %v", c.expr, got, got, c.want)
		}
	}
}

func TestExpressionErrors(t *testing.T) {
	bad := []string{
		"1 / 0",
		"7 % 0",
		`1 + "x"`,
		"not 5",
		"unboundVar > 3",
		"true < false",
	}
	for _, expr := range bad {
		src := "rule T { event commit; cond detached " + expr + "; action detached abort \"x\"; };"
		decls, err := Parse(src)
		if err != nil {
			t.Fatalf("%s did not parse: %v", expr, err)
		}
		ev := &env{vars: map[string]any{}}
		if _, err := ev.eval(decls[0].Cond); err == nil {
			t.Errorf("%s evaluated without error", expr)
		}
	}
}

func TestLexerBasics(t *testing.T) {
	toks, err := lex(`rule R // comment
{ prio 5; decl A *a named "x\"y"; validity 1.5s; } # trailing`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Fatal("no EOF token")
	}
	// Find the string literal and duration.
	var sawString, sawDuration bool
	for _, tk := range toks {
		if tk.kind == tokString && tk.text == `x"y` {
			sawString = true
		}
		if tk.kind == tokDuration && tk.dval == 1500*time.Millisecond {
			sawDuration = true
		}
	}
	if !sawString || !sawDuration {
		t.Fatalf("string/duration lexing failed: %v", toks)
	}
	if _, err := lex(`"unterminated`); err == nil {
		t.Fatal("unterminated string accepted")
	}
	if _, err := lex("@"); err == nil {
		t.Fatal("bad character accepted")
	}
}
