package rules

import (
	"fmt"
	"strings"
	"time"
)

// RuleDecl is the parsed form of one rule definition.
type RuleDecl struct {
	Name       string
	Line       int // source line of the rule keyword
	Prio       int
	Decls      []VarDecl
	Event      EventExpr
	CondMode   string // "", imm, deferred, detached, parallel, sequential, exclusive
	Cond       Expr   // nil means always true
	ActionMode string
	Actions    []Stmt

	// Composite-event attributes.
	Policy   string        // recent | chronicle | continuous | cumulative
	Scope    string        // transaction | global
	Validity time.Duration // required for global scope

	// Supervised-executor attributes (detached-coupled rules only).
	Timeout    time.Duration // per-attempt deadline; 0 = engine default
	Retry      int           // retry budget; meaningful when RetrySet
	RetrySet   bool
	Breaker    int // circuit-breaker threshold; meaningful when BreakerSet
	BreakerSet bool
}

// ClassOf maps each declared variable to its class (or scalar type)
// name.
func (d *RuleDecl) ClassOf() map[string]string {
	out := make(map[string]string, len(d.Decls))
	for _, v := range d.Decls {
		out[v.Name] = v.Class
	}
	return out
}

// VarDecl binds a name in the rule's scope. Object declarations carry
// a class and optionally a root name ("named"); scalar declarations
// (int, float, string, bool) bind event parameters positionally.
type VarDecl struct {
	Class string // class name, or int/float/string/bool
	Ptr   bool
	Name  string
	Named string // root name to fetch, "" if bound from the event
}

// IsScalar reports whether the declaration binds an event parameter.
func (d VarDecl) IsScalar() bool {
	switch d.Class {
	case "int", "float", "string", "bool":
		return true
	}
	return false
}

// EventExpr is a parsed event specification.
type EventExpr interface{ isEvent() }

// MethodEvent matches before/after an invocation: after recv->m(p...).
type MethodEvent struct {
	After  bool
	Recv   string // declared object variable; its class scopes the event
	Method string
	Params []string // declared scalar variables bound to the arguments
}

// StateEvent matches attribute updates: update of Class.attr.
type StateEvent struct {
	Class string
	Attr  string
}

// TxnEvent matches flow-control events: bot | eot | commit | abort.
type TxnEvent struct{ Phase string }

// TimeEvent matches temporal events: at "RFC3339" | every D | in D.
type TimeEvent struct {
	Kind   string // at | every | in
	At     time.Time
	Period time.Duration
}

// SeqEvent is seq(e1, e2, ...).
type SeqEvent struct{ Sub []EventExpr }

// AndEvent is and(e1, e2, ...).
type AndEvent struct{ Sub []EventExpr }

// OrEvent is or(e1, e2, ...).
type OrEvent struct{ Sub []EventExpr }

// NotEvent is not(e).
type NotEvent struct{ Sub EventExpr }

// TimesEvent is times(n, e).
type TimesEvent struct {
	N   int
	Sub EventExpr
}

// CloseEvent is closure(e).
type CloseEvent struct{ Sub EventExpr }

func (MethodEvent) isEvent() {}
func (StateEvent) isEvent()  {}
func (TxnEvent) isEvent()    {}
func (TimeEvent) isEvent()   {}
func (SeqEvent) isEvent()    {}
func (AndEvent) isEvent()    {}
func (OrEvent) isEvent()     {}
func (NotEvent) isEvent()    {}
func (TimesEvent) isEvent()  {}
func (CloseEvent) isEvent()  {}

// Expr is a parsed condition (or argument) expression.
type Expr interface{ isExpr() }

// Lit is a literal value (int64, float64, string, bool).
type Lit struct{ Val any }

// VarRef reads a declared variable.
type VarRef struct{ Name string }

// AttrRef reads obj.attr on a declared object variable.
type AttrRef struct {
	Var  string
	Attr string
}

// CallExpr invokes a method: var->method(args...).
type CallExpr struct {
	Recv   string
	Method string
	Args   []Expr
}

// BinOp is a binary operation: and or < <= > >= == != + - * / %.
type BinOp struct {
	Op   string
	L, R Expr
}

// UnOp is a unary operation: not, -.
type UnOp struct {
	Op string
	X  Expr
}

func (Lit) isExpr()      {}
func (VarRef) isExpr()   {}
func (AttrRef) isExpr()  {}
func (CallExpr) isExpr() {}
func (BinOp) isExpr()    {}
func (UnOp) isExpr()     {}

// Stmt is an action statement.
type Stmt interface{ isStmt() }

// CallStmt invokes a method for effect.
type CallStmt struct{ Call CallExpr }

// SetStmt assigns an attribute: set var.attr = expr.
type SetStmt struct {
	Target AttrRef
	Value  Expr
}

// AbortStmt aborts the rule's transaction with a message.
type AbortStmt struct{ Message string }

func (CallStmt) isStmt()  {}
func (SetStmt) isStmt()   {}
func (AbortStmt) isStmt() {}

// String implements fmt.Stringer.
func (e MethodEvent) String() string {
	when := "before"
	if e.After {
		when = "after"
	}
	return fmt.Sprintf("%s %s->%s(%s)", when, e.Recv, e.Method, strings.Join(e.Params, ", "))
}

// String implements fmt.Stringer.
func (e StateEvent) String() string { return fmt.Sprintf("update of %s.%s", e.Class, e.Attr) }

// String implements fmt.Stringer.
func (e TxnEvent) String() string { return e.Phase }

// String implements fmt.Stringer.
func (e TimeEvent) String() string {
	switch e.Kind {
	case "at":
		return "at " + e.At.Format(time.RFC3339)
	case "every":
		return "every " + e.Period.String()
	default:
		return "in " + e.Period.String()
	}
}

// String implements fmt.Stringer.
func (e SeqEvent) String() string { return "seq(" + joinEvents(e.Sub) + ")" }

// String implements fmt.Stringer.
func (e AndEvent) String() string { return "and(" + joinEvents(e.Sub) + ")" }

// String implements fmt.Stringer.
func (e OrEvent) String() string { return "or(" + joinEvents(e.Sub) + ")" }

// String implements fmt.Stringer.
func (e NotEvent) String() string { return "not(" + fmt.Sprint(e.Sub) + ")" }

// String implements fmt.Stringer.
func (e TimesEvent) String() string { return fmt.Sprintf("times(%d, %v)", e.N, e.Sub) }

// String implements fmt.Stringer.
func (e CloseEvent) String() string { return fmt.Sprintf("closure(%v)", e.Sub) }

func joinEvents(evs []EventExpr) string {
	parts := make([]string, len(evs))
	for i, e := range evs {
		parts[i] = fmt.Sprint(e)
	}
	return strings.Join(parts, ", ")
}
