// Package rules implements the REACH rule definition language of
// §6.1 — the C++-embedded syntax of the paper's WaterLevel example:
//
//	rule WaterLevel {
//	    prio 5;
//	    decl River *river, int x, Reactor *reactor named "BlockA";
//	    event after river->updateWaterLevel(x);
//	    cond imm x < 37 and river->getWaterTemp() > 24.5
//	             and reactor->getHeatOutput() > 1000000;
//	    action imm reactor->reducePlannedPower(0.05);
//	};
//
// A rule is parsed into a declaration, compiled into a rule object
// whose condition and action functions evaluate against the live
// database (the analogue of the shared-library "Cond"/"Action" C
// functions), and registered with the ECA engine. Composite event
// specifications (seq, and, or, not, times, closure) compile into
// algebra composites defined alongside the rule.
package rules

import (
	"fmt"
	"strings"
	"time"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString
	tokDuration
	tokPunct // one of  { } ( ) ; , = == != <= >= < > + - * / % -> .
)

type token struct {
	kind tokKind
	text string
	ival int64
	fval float64
	dval time.Duration
	line int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexError reports a scanning failure with its line.
type lexError struct {
	line int
	msg  string
}

func (e *lexError) Error() string { return fmt.Sprintf("rules: line %d: %s", e.line, e.msg) }

// lex scans src into tokens. Comments run from // or # to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#' || (c == '/' && i+1 < n && src[i+1] == '/'):
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < n && src[j] != '"' {
				if src[j] == '\\' && j+1 < n {
					j++
				}
				if src[j] == '\n' {
					return nil, &lexError{line, "newline in string literal"}
				}
				sb.WriteByte(src[j])
				j++
			}
			if j >= n {
				return nil, &lexError{line, "unterminated string literal"}
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), line: line})
			i = j + 1
		case unicode.IsDigit(rune(c)):
			j := i
			isFloat := false
			for j < n && (unicode.IsDigit(rune(src[j])) || src[j] == '.') {
				if src[j] == '.' {
					if isFloat {
						break
					}
					isFloat = true
				}
				j++
			}
			numEnd := j
			// Duration suffix? (ns, us, ms, s, m, h)
			for j < n && (src[j] == 'n' || src[j] == 'u' || src[j] == 'm' || src[j] == 's' || src[j] == 'h') {
				j++
			}
			if j > numEnd {
				d, err := time.ParseDuration(src[i:j])
				if err != nil {
					return nil, &lexError{line, fmt.Sprintf("bad duration %q", src[i:j])}
				}
				toks = append(toks, token{kind: tokDuration, text: src[i:j], dval: d, line: line})
				i = j
				continue
			}
			text := src[i:numEnd]
			if isFloat {
				var f float64
				if _, err := fmt.Sscanf(text, "%g", &f); err != nil {
					return nil, &lexError{line, fmt.Sprintf("bad number %q", text)}
				}
				toks = append(toks, token{kind: tokFloat, text: text, fval: f, line: line})
			} else {
				var v int64
				if _, err := fmt.Sscanf(text, "%d", &v); err != nil {
					return nil, &lexError{line, fmt.Sprintf("bad number %q", text)}
				}
				toks = append(toks, token{kind: tokInt, text: text, ival: v, line: line})
			}
			i = numEnd
			// re-scan potential duration suffix consumed above
			if j > numEnd {
				i = j
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < n && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: src[i:j], line: line})
			i = j
		default:
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "->", "==", "!=", "<=", ">=":
				toks = append(toks, token{kind: tokPunct, text: two, line: line})
				i += 2
				continue
			}
			switch c {
			case '{', '}', '(', ')', ';', ',', '=', '<', '>', '+', '-', '*', '/', '%', '.', '!':
				toks = append(toks, token{kind: tokPunct, text: string(c), line: line})
				i++
			default:
				return nil, &lexError{line, fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line})
	return toks, nil
}
