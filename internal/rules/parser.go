package rules

import (
	"fmt"
	"time"
)

// Parse parses a rule set: any number of rule definitions.
func Parse(src string) ([]*RuleDecl, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []*RuleDecl
	for !p.at(tokEOF) {
		r, err := p.rule()
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("rules: no rule definitions found")
	}
	return out, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(k tokKind) bool { return p.cur().kind == k }

func (p *parser) atPunct(s string) bool {
	return p.cur().kind == tokPunct && p.cur().text == s
}

func (p *parser) atIdent(s string) bool {
	return p.cur().kind == tokIdent && p.cur().text == s
}

func (p *parser) eatPunct(s string) error {
	if !p.atPunct(s) {
		return p.errf("expected %q, got %s", s, p.cur())
	}
	p.pos++
	return nil
}

func (p *parser) eatIdent(s string) error {
	if !p.atIdent(s) {
		return p.errf("expected %q, got %s", s, p.cur())
	}
	p.pos++
	return nil
}

func (p *parser) ident() (string, error) {
	if !p.at(tokIdent) {
		return "", p.errf("expected identifier, got %s", p.cur())
	}
	return p.next().text, nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("rules: line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

// rule := "rule" IDENT "{" clause* "}" ";"?
func (p *parser) rule() (*RuleDecl, error) {
	line := p.cur().line
	if err := p.eatIdent("rule"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.eatPunct("{"); err != nil {
		return nil, err
	}
	r := &RuleDecl{Name: name, Line: line}
	for !p.atPunct("}") {
		if err := p.clause(r); err != nil {
			return nil, err
		}
	}
	p.next() // }
	if p.atPunct(";") {
		p.next()
	}
	if r.Event == nil {
		return nil, fmt.Errorf("rules: rule %s has no event clause", name)
	}
	if len(r.Actions) == 0 {
		return nil, fmt.Errorf("rules: rule %s has no action clause", name)
	}
	return r, nil
}

func (p *parser) clause(r *RuleDecl) error {
	kw, err := p.ident()
	if err != nil {
		return err
	}
	switch kw {
	case "prio":
		if !p.at(tokInt) {
			return p.errf("prio needs an integer")
		}
		r.Prio = int(p.next().ival)
	case "decl":
		for {
			d, err := p.varDecl()
			if err != nil {
				return err
			}
			r.Decls = append(r.Decls, d)
			if !p.atPunct(",") {
				break
			}
			p.next()
		}
	case "event":
		ev, err := p.eventExpr()
		if err != nil {
			return err
		}
		r.Event = ev
	case "cond":
		r.CondMode = p.optMode()
		e, err := p.expr()
		if err != nil {
			return err
		}
		r.Cond = e
	case "action":
		r.ActionMode = p.optMode()
		for {
			s, err := p.stmt()
			if err != nil {
				return err
			}
			r.Actions = append(r.Actions, s)
			if !p.atPunct(",") {
				break
			}
			p.next()
		}
	case "policy":
		pol, err := p.ident()
		if err != nil {
			return err
		}
		r.Policy = pol
	case "scope":
		sc, err := p.ident()
		if err != nil {
			return err
		}
		r.Scope = sc
	case "validity":
		if !p.at(tokDuration) {
			return p.errf("validity needs a duration (e.g. 10s)")
		}
		r.Validity = p.next().dval
	case "timeout":
		if !p.at(tokDuration) {
			return p.errf("timeout needs a duration (e.g. 500ms)")
		}
		r.Timeout = p.next().dval
	case "retry":
		if !p.at(tokInt) {
			return p.errf("retry needs an integer attempt budget (0 disables)")
		}
		r.Retry = int(p.next().ival)
		r.RetrySet = true
	case "breaker":
		if !p.at(tokInt) {
			return p.errf("breaker needs an integer failure threshold (0 disables)")
		}
		r.Breaker = int(p.next().ival)
		r.BreakerSet = true
	default:
		return p.errf("unknown clause %q", kw)
	}
	return p.eatPunct(";")
}

// optMode consumes a coupling mode keyword if present.
func (p *parser) optMode() string {
	if p.at(tokIdent) {
		switch p.cur().text {
		case "imm", "immediate", "deferred", "detached", "parallel", "sequential", "exclusive":
			return p.next().text
		}
	}
	return ""
}

// varDecl := IDENT "*"? IDENT ("named" STRING)?
func (p *parser) varDecl() (VarDecl, error) {
	class, err := p.ident()
	if err != nil {
		return VarDecl{}, err
	}
	d := VarDecl{Class: class}
	if p.atPunct("*") {
		d.Ptr = true
		p.next()
	}
	d.Name, err = p.ident()
	if err != nil {
		return VarDecl{}, err
	}
	if p.atIdent("named") {
		p.next()
		if !p.at(tokString) {
			return VarDecl{}, p.errf("named needs a string")
		}
		d.Named = p.next().text
	}
	return d, nil
}

// eventExpr := composite | primitive
func (p *parser) eventExpr() (EventExpr, error) {
	if p.at(tokIdent) {
		switch p.cur().text {
		case "seq", "and", "or":
			op := p.next().text
			subs, err := p.eventList()
			if err != nil {
				return nil, err
			}
			switch op {
			case "seq":
				return SeqEvent{Sub: subs}, nil
			case "and":
				return AndEvent{Sub: subs}, nil
			default:
				return OrEvent{Sub: subs}, nil
			}
		case "not":
			p.next()
			if err := p.eatPunct("("); err != nil {
				return nil, err
			}
			sub, err := p.eventExpr()
			if err != nil {
				return nil, err
			}
			if err := p.eatPunct(")"); err != nil {
				return nil, err
			}
			return NotEvent{Sub: sub}, nil
		case "times":
			p.next()
			if err := p.eatPunct("("); err != nil {
				return nil, err
			}
			if !p.at(tokInt) {
				return nil, p.errf("times needs a count")
			}
			n := int(p.next().ival)
			if err := p.eatPunct(","); err != nil {
				return nil, err
			}
			sub, err := p.eventExpr()
			if err != nil {
				return nil, err
			}
			if err := p.eatPunct(")"); err != nil {
				return nil, err
			}
			return TimesEvent{N: n, Sub: sub}, nil
		case "closure":
			p.next()
			if err := p.eatPunct("("); err != nil {
				return nil, err
			}
			sub, err := p.eventExpr()
			if err != nil {
				return nil, err
			}
			if err := p.eatPunct(")"); err != nil {
				return nil, err
			}
			return CloseEvent{Sub: sub}, nil
		}
	}
	return p.primEvent()
}

func (p *parser) eventList() ([]EventExpr, error) {
	if err := p.eatPunct("("); err != nil {
		return nil, err
	}
	var subs []EventExpr
	for {
		sub, err := p.eventExpr()
		if err != nil {
			return nil, err
		}
		subs = append(subs, sub)
		if p.atPunct(",") {
			p.next()
			continue
		}
		break
	}
	if err := p.eatPunct(")"); err != nil {
		return nil, err
	}
	return subs, nil
}

// primEvent :=
//
//	("before"|"after") IDENT "->" IDENT "(" IDENT,* ")"
//	| "update" "of" IDENT "." IDENT
//	| "bot" | "eot" | "commit" | "abort"
//	| "at" STRING | "every" DURATION | "in" DURATION
func (p *parser) primEvent() (EventExpr, error) {
	kw, err := p.ident()
	if err != nil {
		return nil, err
	}
	switch kw {
	case "before", "after":
		recv, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.eatPunct("->"); err != nil {
			return nil, err
		}
		method, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.eatPunct("("); err != nil {
			return nil, err
		}
		var params []string
		for !p.atPunct(")") {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			params = append(params, name)
			if p.atPunct(",") {
				p.next()
			}
		}
		p.next() // )
		return MethodEvent{After: kw == "after", Recv: recv, Method: method, Params: params}, nil
	case "update":
		if err := p.eatIdent("of"); err != nil {
			return nil, err
		}
		class, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.eatPunct("."); err != nil {
			return nil, err
		}
		attr, err := p.ident()
		if err != nil {
			return nil, err
		}
		return StateEvent{Class: class, Attr: attr}, nil
	case "bot", "eot", "commit", "abort":
		return TxnEvent{Phase: kw}, nil
	case "at":
		if !p.at(tokString) {
			return nil, p.errf("at needs an RFC3339 string")
		}
		s := p.next().text
		at, err := time.Parse(time.RFC3339, s)
		if err != nil {
			return nil, p.errf("bad timestamp %q: %v", s, err)
		}
		return TimeEvent{Kind: "at", At: at}, nil
	case "every":
		if !p.at(tokDuration) {
			return nil, p.errf("every needs a duration")
		}
		return TimeEvent{Kind: "every", Period: p.next().dval}, nil
	case "in":
		if !p.at(tokDuration) {
			return nil, p.errf("in needs a duration")
		}
		return TimeEvent{Kind: "in", Period: p.next().dval}, nil
	}
	return nil, p.errf("unknown event specification %q", kw)
}

// expr with precedence: or < and < not < comparison < additive <
// multiplicative < unary < primary.
func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.atIdent("or") {
		p.next()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = BinOp{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.atIdent("and") {
		p.next()
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = BinOp{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.atIdent("not") || p.atPunct("!") {
		p.next()
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return UnOp{Op: "not", X: x}, nil
	}
	return p.cmpExpr()
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tokPunct) {
		op := p.cur().text
		switch op {
		case "<", "<=", ">", ">=", "==", "!=":
			p.next()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			l = BinOp{Op: op, L: l, R: r}
		default:
			return l, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.atPunct("+") || p.atPunct("-") {
		op := p.next().text
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = BinOp{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.atPunct("*") || p.atPunct("/") || p.atPunct("%") {
		op := p.next().text
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = BinOp{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.atPunct("-") {
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return UnOp{Op: "-", X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	switch {
	case p.at(tokInt):
		return Lit{Val: p.next().ival}, nil
	case p.at(tokFloat):
		return Lit{Val: p.next().fval}, nil
	case p.at(tokString):
		return Lit{Val: p.next().text}, nil
	case p.atPunct("("):
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.eatPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.at(tokIdent):
		name := p.next().text
		switch name {
		case "true":
			return Lit{Val: true}, nil
		case "false":
			return Lit{Val: false}, nil
		}
		if p.atPunct("->") {
			p.next()
			method, err := p.ident()
			if err != nil {
				return nil, err
			}
			args, err := p.callArgs()
			if err != nil {
				return nil, err
			}
			return CallExpr{Recv: name, Method: method, Args: args}, nil
		}
		if p.atPunct(".") {
			p.next()
			attr, err := p.ident()
			if err != nil {
				return nil, err
			}
			return AttrRef{Var: name, Attr: attr}, nil
		}
		return VarRef{Name: name}, nil
	}
	return nil, p.errf("unexpected token %s in expression", p.cur())
}

func (p *parser) callArgs() ([]Expr, error) {
	if err := p.eatPunct("("); err != nil {
		return nil, err
	}
	var args []Expr
	for !p.atPunct(")") {
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if p.atPunct(",") {
			p.next()
		}
	}
	p.next() // )
	return args, nil
}

// stmt := "abort" STRING | "set" IDENT "." IDENT "=" expr |
//
//	IDENT "->" IDENT "(" args ")" | IDENT "." IDENT "=" expr
func (p *parser) stmt() (Stmt, error) {
	if p.atIdent("abort") {
		p.next()
		msg := "rule abort"
		if p.at(tokString) {
			msg = p.next().text
		}
		return AbortStmt{Message: msg}, nil
	}
	if p.atIdent("set") {
		p.next()
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if p.atPunct("->") {
		p.next()
		method, err := p.ident()
		if err != nil {
			return nil, err
		}
		args, err := p.callArgs()
		if err != nil {
			return nil, err
		}
		return CallStmt{Call: CallExpr{Recv: name, Method: method, Args: args}}, nil
	}
	if err := p.eatPunct("."); err != nil {
		return nil, err
	}
	attr, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.eatPunct("="); err != nil {
		return nil, err
	}
	val, err := p.expr()
	if err != nil {
		return nil, err
	}
	return SetStmt{Target: AttrRef{Var: name, Attr: attr}, Value: val}, nil
}
