package rules

import (
	"sync/atomic"
	"testing"

	"repro/internal/eca"
)

// TestStateEventRuleThroughDSL triggers a rule on `update of
// River.level` — the value-change detection closed systems could not
// provide (§4).
func TestStateEventRuleThroughDSL(t *testing.T) {
	e, db, _ := newPlant(t)
	tx := db.Begin()
	riverObj, _ := db.NewObject(tx, "River")
	tx.Commit()

	src := `
rule LevelWatch {
    decl River *r named "watched";
    event update of River.level;
    action deferred r->getWaterTemp();
};
`
	tx0 := db.Begin()
	if err := db.SetRoot(tx0, "watched", riverObj); err != nil {
		t.Fatal(err)
	}
	tx0.Commit()

	loaded, err := Load(e, src)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Stop()

	var fired atomic.Int64
	e.AddRule(&eca.Rule{
		Name:       "count",
		EventKey:   "method:River.getWaterTemp:after",
		ActionMode: eca.Detached,
		Action:     func(*eca.RuleCtx) error { fired.Add(1); return nil },
	})

	// A direct attribute write raises the state event; the rule defers
	// to EOT.
	tx2 := db.Begin()
	if err := db.Set(tx2, riverObj, "level", 12); err != nil {
		t.Fatal(err)
	}
	if fired.Load() != 0 {
		t.Fatal("deferred state rule ran before EOT")
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	e.WaitDetached()
	if fired.Load() != 1 {
		t.Fatalf("state-change rule fired %d, want 1", fired.Load())
	}
}

// TestContinuousPolicyThroughDSL exercises the policy clause end to
// end.
func TestContinuousPolicyThroughDSL(t *testing.T) {
	e, db, _ := newPlant(t)
	tx := db.Begin()
	riverObj, _ := db.NewObject(tx, "River")
	tx.Commit()

	src := `
rule Windows {
    decl River *a, int x, River *b, int y;
    event seq(after a->updateWaterLevel(x), after b->updateWaterLevel(y));
    policy continuous;
    scope global;
    validity 1h;
    action detached a->getWaterTemp();
};
`
	loaded, err := Load(e, src)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Stop()
	if loaded.Composites[0].Policy.String() != "continuous" {
		t.Fatalf("policy = %v", loaded.Composites[0].Policy)
	}

	var fired atomic.Int64
	e.AddRule(&eca.Rule{
		Name:       "count",
		EventKey:   "method:River.getWaterTemp:after",
		ActionMode: eca.Detached,
		Action:     func(*eca.RuleCtx) error { fired.Add(1); return nil },
	})
	// Three updates: each update both terminates the open windows and
	// opens its own. Update 2 closes window (1,2); update 3 closes
	// window (2,3) — two completions, with window 3 still open.
	for i := 0; i < 3; i++ {
		tx := db.Begin()
		db.Invoke(tx, riverObj, "updateWaterLevel", int64(i))
		tx.Commit()
	}
	e.DrainComposers()
	e.WaitDetached()
	if fired.Load() != 2 {
		t.Fatalf("continuous windows fired %d, want 2", fired.Load())
	}
}
