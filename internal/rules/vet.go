package rules

import (
	"fmt"
	"sort"

	"repro/internal/eca"
)

// Diag is one semantic diagnostic produced by Vet.
type Diag struct {
	File string
	Line int
	Rule string
	Msg  string
}

// String formats the diagnostic as file:line: rule NAME: message.
func (d Diag) String() string {
	return fmt.Sprintf("%s:%d: rule %s: %s", d.File, d.Line, d.Rule, d.Msg)
}

// Vetter checks parsed rule declarations for semantic errors the
// parser cannot see: Table 1-invalid coupling/category pairs,
// cross-transaction composites without a validity interval, unknown
// consumption policies and scopes, undeclared variable references,
// and duplicate rule names. Names accumulate across Vet calls so
// duplicates are caught across a multi-file rule set.
type Vetter struct {
	seen map[string]string // rule name -> "file:line" of first definition
}

// NewVetter returns a Vetter with an empty name table.
func NewVetter() *Vetter {
	return &Vetter{seen: make(map[string]string)}
}

// Vet checks decls (as parsed from file) and returns the diagnostics
// in source order. An empty slice means the rules are semantically
// valid.
func (v *Vetter) Vet(file string, decls []*RuleDecl) []Diag {
	var out []Diag
	for _, d := range decls {
		rv := &ruleVet{file: file, decl: d}
		rv.run(v)
		out = append(out, rv.diags...)
	}
	SortDiags(out)
	return out
}

// SortDiags orders diagnostics by (file, line, rule name), the stable
// presentation order shared by vet and the rule-set analysis so output
// never depends on map iteration or input interleaving.
func SortDiags(diags []Diag) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Rule < b.Rule
	})
}

// Vet is the single-file convenience wrapper around Vetter.
func Vet(file string, decls []*RuleDecl) []Diag {
	return NewVetter().Vet(file, decls)
}

type ruleVet struct {
	file  string
	decl  *RuleDecl
	diags []Diag
}

func (rv *ruleVet) errf(format string, args ...any) {
	rv.diags = append(rv.diags, Diag{
		File: rv.file,
		Line: rv.decl.Line,
		Rule: rv.decl.Name,
		Msg:  fmt.Sprintf(format, args...),
	})
}

func (rv *ruleVet) run(v *Vetter) {
	d := rv.decl
	at := fmt.Sprintf("%s:%d", rv.file, d.Line)
	if prev, dup := v.seen[d.Name]; dup {
		rv.errf("duplicate rule name (first defined at %s)", prev)
	} else {
		v.seen[d.Name] = at
	}

	rv.checkCompositeAttrs()
	rv.checkCoupling()
	rv.checkRobustness()
	rv.checkVars()
}

// checkRobustness verifies the supervised-executor clauses appear
// only on detached-coupled rules: immediate and deferred rules run
// inside the triggering transaction, where the executor's deadline,
// retry, and breaker machinery does not apply.
func (rv *ruleVet) checkRobustness() {
	d := rv.decl
	_, action := d.Modes()
	if couplingOrd(action) >= 2 {
		return
	}
	for _, c := range []struct {
		name string
		set  bool
	}{
		{"timeout", d.Timeout != 0},
		{"retry", d.RetrySet},
		{"breaker", d.BreakerSet},
	} {
		if c.set {
			rv.errf("%s clause applies only to detached-coupled rules (%v rules run inside the triggering transaction)", c.name, action)
		}
	}
}

// isComposite reports whether the event clause is an algebra
// expression (and therefore defines a composite event).
func isComposite(e EventExpr) bool {
	switch e.(type) {
	case MethodEvent, StateEvent, TxnEvent, TimeEvent:
		return false
	}
	return true
}

// category derives the Table 1 column of the rule's triggering event
// from the event AST: primitive database events are single-method,
// simple temporal events purely temporal, and composites split by
// declared scope (transaction-scoped composites draw all constituents
// from one transaction; global-scoped ones cross transactions).
func (rv *ruleVet) category() eca.Category {
	d := rv.decl
	switch d.Event.(type) {
	case MethodEvent, StateEvent, TxnEvent:
		return eca.SingleMethod
	case TimeEvent:
		return eca.PurelyTemporal
	}
	if d.Scope == "global" {
		return eca.CompositeMultiTxn
	}
	return eca.CompositeSingleTxn
}

func (rv *ruleVet) checkCompositeAttrs() {
	d := rv.decl
	switch d.Policy {
	case "", "recent", "chronicle", "continuous", "cumulative":
	default:
		rv.errf("unknown consumption policy %q (want recent, chronicle, continuous, or cumulative)", d.Policy)
	}
	switch d.Scope {
	case "", "transaction", "global":
	default:
		rv.errf("unknown scope %q (want transaction or global)", d.Scope)
	}
	if !isComposite(d.Event) {
		if d.Policy != "" || d.Scope != "" || d.Validity != 0 {
			rv.errf("policy/scope/validity clauses apply only to composite events")
		}
		return
	}
	if d.Scope == "global" && d.Validity == 0 {
		rv.errf("cross-transaction composite event needs a validity clause (semi-composed occurrences would accumulate forever)")
	}
}

func (rv *ruleVet) checkCoupling() {
	d := rv.decl
	cat := rv.category()
	cond, action := d.Modes()
	if !eca.Supported(cat, cond) {
		rv.errf("Table 1 rejects %v condition coupling on a %v event", cond, cat)
	}
	if !eca.Supported(cat, action) {
		rv.errf("Table 1 rejects %v action coupling on a %v event", action, cat)
	}
	if couplingOrd(cond) > couplingOrd(action) {
		rv.errf("condition mode %v is later than action mode %v", cond, action)
	}
	if cond.Detachedness() != action.Detachedness() && couplingOrd(cond) >= 2 {
		rv.errf("detached condition %v with non-detached action %v", cond, action)
	}
}

// couplingOrd mirrors the engine's coupling ordering: immediate <
// deferred < all detached variants.
func couplingOrd(c eca.Coupling) int {
	switch c {
	case eca.Immediate:
		return 0
	case eca.Deferred:
		return 1
	}
	return 2
}

// checkVars verifies every variable referenced by the event clause,
// the condition, and the actions is declared, and that no variable is
// declared twice.
func (rv *ruleVet) checkVars() {
	d := rv.decl
	declared := make(map[string]bool, len(d.Decls))
	for _, vd := range d.Decls {
		if declared[vd.Name] {
			rv.errf("variable %q declared twice", vd.Name)
		}
		declared[vd.Name] = true
	}
	seen := make(map[string]bool) // report each undeclared name once
	ref := func(name, where string) {
		if name == "" || declared[name] || seen[name] {
			return
		}
		seen[name] = true
		rv.errf("undeclared variable %q referenced in %s", name, where)
	}
	rv.walkEvent(d.Event, ref)
	if d.Cond != nil {
		rv.walkExpr(d.Cond, "condition", ref)
	}
	for _, s := range d.Actions {
		switch st := s.(type) {
		case CallStmt:
			ref(st.Call.Recv, "action")
			for _, a := range st.Call.Args {
				rv.walkExpr(a, "action", ref)
			}
		case SetStmt:
			ref(st.Target.Var, "action")
			rv.walkExpr(st.Value, "action", ref)
		}
	}
}

func (rv *ruleVet) walkEvent(e EventExpr, ref func(name, where string)) {
	switch ev := e.(type) {
	case MethodEvent:
		ref(ev.Recv, "event")
		for _, p := range ev.Params {
			ref(p, "event")
		}
	case SeqEvent:
		for _, s := range ev.Sub {
			rv.walkEvent(s, ref)
		}
	case AndEvent:
		for _, s := range ev.Sub {
			rv.walkEvent(s, ref)
		}
	case OrEvent:
		for _, s := range ev.Sub {
			rv.walkEvent(s, ref)
		}
	case NotEvent:
		rv.walkEvent(ev.Sub, ref)
	case TimesEvent:
		rv.walkEvent(ev.Sub, ref)
	case CloseEvent:
		rv.walkEvent(ev.Sub, ref)
	}
}

func (rv *ruleVet) walkExpr(e Expr, where string, ref func(name, where string)) {
	switch x := e.(type) {
	case VarRef:
		ref(x.Name, where)
	case AttrRef:
		ref(x.Var, where)
	case CallExpr:
		ref(x.Recv, where)
		for _, a := range x.Args {
			rv.walkExpr(a, where, ref)
		}
	case BinOp:
		rv.walkExpr(x.L, where, ref)
		rv.walkExpr(x.R, where, ref)
	case UnOp:
		rv.walkExpr(x.X, where, ref)
	}
}
