package fault

import (
	"fmt"
	"io"
	"os"
)

// File is the storage stack's file-handle abstraction. The pager and
// the write-ahead log perform all their I/O through it, so a test can
// substitute a ShadowFS and simulate crashes; production uses OS,
// which passes straight through to *os.File.
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.WriterAt
	io.Seeker
	io.Closer
	Truncate(size int64) error
	Sync() error
	// Size reports the current length of the file in bytes.
	Size() (int64, error)
}

// FS opens files for the storage stack.
type FS interface {
	// OpenFile opens path read-write, creating it if necessary.
	OpenFile(path string) (File, error)
	// ReadDir lists the names (not full paths) of the regular files
	// directly inside dir. A missing directory is an empty listing,
	// not an error, so a fresh store opens cleanly.
	ReadDir(dir string) ([]string, error)
	// Remove deletes path. Whether the deletion is durable before the
	// next crash is the implementation's business: ShadowFS models an
	// unsynced directory entry, so removed files can resurrect.
	Remove(path string) error
}

// OS is the passthrough FS over the real filesystem.
type OS struct{}

// OpenFile implements FS.
func (OS) OpenFile(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// ReadDir implements FS.
func (OS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// Remove implements FS.
func (OS) Remove(path string) error { return os.Remove(path) }

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("fault: stat %s: %w", f.Name(), err)
	}
	return st.Size(), nil
}
