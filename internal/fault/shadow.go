package fault

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
)

// ShadowFS is an in-memory filesystem that models crash consistency:
// every file keeps a volatile image (what the running process sees)
// and a durable image (what has been fsynced). Crash discards the
// volatile image, exactly like pulling the plug discards the page
// cache — bytes that were never synced are gone.
//
// CrashAfter schedules a crash at a write-operation boundary: after n
// successful write operations (Write, WriteAt, Truncate, Sync across
// all files), every subsequent operation fails with ErrCrashed. The
// crash-consistency harness sweeps n across a workload's full range
// of boundaries.
type ShadowFS struct {
	mu       sync.Mutex
	files    map[string]*shadowData
	gen      int // bumped by Crash; stale handles from the dead process go inert
	writeOps int
	crashAt  int    // write-op index at which the crash fires; -1 = never
	tornPath string // file whose crashing write tears (prefix reaches durable)
	crashed  bool
	handles  int
}

type shadowData struct {
	durable  []byte
	volatile []byte
	// removed marks an unlinked directory entry. The unlink itself is
	// never made durable (there is no directory fsync in this model),
	// so Crash resurrects the file with its durable image — the
	// adversarial case recovery must tolerate for pruned WAL segments.
	removed bool
}

// NewShadowFS returns an empty shadow filesystem.
func NewShadowFS() *ShadowFS {
	return &ShadowFS{files: map[string]*shadowData{}, crashAt: -1}
}

// OpenFile implements FS. Opening a file on a crashed filesystem
// fails; call Crash to complete the simulated reboot first.
func (fs *ShadowFS) OpenFile(path string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, fmt.Errorf("fault: open %s: %w", path, ErrCrashed)
	}
	d, ok := fs.files[path]
	if !ok {
		d = &shadowData{}
		fs.files[path] = d
	}
	if d.removed {
		// Re-creating a removed name starts from empty volatile
		// contents, but the old durable image stays: the unlink was
		// never durable, so a crash can still bring it back.
		d.removed = false
		d.volatile = nil
	}
	fs.handles++
	return &ShadowFile{fs: fs, d: d, path: path, gen: fs.gen}, nil
}

// ReadDir implements FS: the names of live files directly inside dir.
func (fs *ShadowFS) ReadDir(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, fmt.Errorf("fault: readdir %s: %w", dir, ErrCrashed)
	}
	prefix := dir + "/"
	var names []string
	for path, d := range fs.files {
		if d.removed || !strings.HasPrefix(path, prefix) {
			continue
		}
		name := path[len(prefix):]
		if name == "" || strings.Contains(name, "/") {
			continue
		}
		names = append(names, name)
	}
	return names, nil
}

// Remove implements FS. The deletion charges a write boundary and only
// touches the volatile namespace: the durable image survives, so Crash
// resurrects the file (an unlink with no directory fsync).
func (fs *ShadowFS) Remove(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, ok := fs.files[path]
	if !ok || d.removed {
		if fs.crashed {
			return fmt.Errorf("fault: remove %s: %w", path, ErrCrashed)
		}
		return fmt.Errorf("fault: remove %s: %w", path, os.ErrNotExist)
	}
	if _, err := fs.admitWriteLocked(path); err != nil {
		return err
	}
	d.removed = true
	d.volatile = nil
	return nil
}

// CrashAfter schedules the crash: the first n write operations
// succeed, and the (n+1)th — and everything after it — fails with
// ErrCrashed. If tornPath is non-empty and the crashing operation is
// a data write on that file, a prefix of the payload reaches the
// durable image (a torn write at power loss); otherwise the crashing
// operation has no effect. Pass n < 0 to cancel the schedule.
func (fs *ShadowFS) CrashAfter(n int, tornPath string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashAt = n
	fs.tornPath = tornPath
	fs.writeOps = 0
}

// Crash completes the simulated reboot: every file's volatile image
// is replaced by its durable image, outstanding handles of the dead
// process go inert, and the operation counter and crash schedule
// reset. The filesystem is usable again afterwards.
func (fs *ShadowFS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, d := range fs.files {
		d.volatile = append([]byte(nil), d.durable...)
		d.removed = false // unlinks were never made durable
	}
	fs.gen++
	fs.handles = 0
	fs.writeOps = 0
	fs.crashAt = -1
	fs.tornPath = ""
	fs.crashed = false
}

// Crashed reports whether the scheduled crash point has been reached.
func (fs *ShadowFS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// WriteOps reports the number of write operations admitted so far —
// the number of crash boundaries a completed workload exposes.
func (fs *ShadowFS) WriteOps() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.writeOps
}

// OpenHandles reports the number of live (unclosed, current-
// generation) file handles — the fd-leak check for Close paths.
func (fs *ShadowFS) OpenHandles() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.handles
}

// Clone returns an independent copy of the filesystem's contents with
// no crash scheduled, so one crash point can be recovered from twice
// (once cleanly, once with a second crash during recovery).
func (fs *ShadowFS) Clone() *ShadowFS {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := NewShadowFS()
	for path, d := range fs.files {
		out.files[path] = &shadowData{
			durable:  append([]byte(nil), d.durable...),
			volatile: append([]byte(nil), d.volatile...),
			removed:  d.removed,
		}
	}
	return out
}

// admitWrite charges one write operation against the crash schedule.
// It returns tear=true when this is the crashing operation and the
// caller's payload should reach the durable image as a torn prefix.
func (fs *ShadowFS) admitWriteLocked(path string) (tear bool, err error) {
	if fs.crashed {
		return false, ErrCrashed
	}
	if fs.crashAt >= 0 && fs.writeOps >= fs.crashAt {
		fs.crashed = true
		// Contains, not HasSuffix: WAL segment files are named
		// <base>.<seq>, so "wal.log" must match "db/wal.log.00000003".
		return fs.tornPath != "" && strings.Contains(path, fs.tornPath), ErrCrashed
	}
	fs.writeOps++
	return false, nil
}

// ShadowFile is a handle onto a ShadowFS file.
type ShadowFile struct {
	fs     *ShadowFS
	d      *shadowData
	path   string
	gen    int
	pos    int64
	closed bool
}

func (f *ShadowFile) stale() bool { return f.closed || f.gen != f.fs.gen }

func (f *ShadowFile) check() error {
	if f.stale() {
		return os.ErrClosed
	}
	if f.fs.crashed {
		return ErrCrashed
	}
	return nil
}

// ReadAt implements io.ReaderAt with os.File semantics: a short read
// at end of file returns io.EOF.
func (f *ShadowFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.check(); err != nil {
		return 0, err
	}
	if off >= int64(len(f.d.volatile)) {
		return 0, io.EOF
	}
	n := copy(p, f.d.volatile[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Read implements io.Reader at the handle's seek position.
func (f *ShadowFile) Read(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.check(); err != nil {
		return 0, err
	}
	if f.pos >= int64(len(f.d.volatile)) {
		return 0, io.EOF
	}
	n := copy(p, f.d.volatile[f.pos:])
	f.pos += int64(n)
	return n, nil
}

// writeLocked applies p at off to the volatile image, extending it
// with zeros if off lies past the current end.
func (d *shadowData) writeLocked(p []byte, off int64) {
	if need := off + int64(len(p)); need > int64(len(d.volatile)) {
		grown := make([]byte, need)
		copy(grown, d.volatile)
		d.volatile = grown
	}
	copy(d.volatile[off:], p)
}

// tornLocked applies a torn prefix of p at off to BOTH images: the
// device wrote part of the payload as power failed, so the fragment
// survives the reboot even though the write was never acknowledged.
func (d *shadowData) tornLocked(p []byte, off int64) {
	half := p[:len(p)/2]
	d.writeLocked(half, off)
	if need := off + int64(len(half)); need > int64(len(d.durable)) {
		grown := make([]byte, need)
		copy(grown, d.durable)
		d.durable = grown
	}
	copy(d.durable[off:], half)
}

// WriteAt implements io.WriterAt.
func (f *ShadowFile) WriteAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.stale() {
		return 0, os.ErrClosed
	}
	tear, err := f.fs.admitWriteLocked(f.path)
	if err != nil {
		if tear && len(p) > 0 {
			f.d.tornLocked(p, off)
		}
		return 0, err
	}
	f.d.writeLocked(p, off)
	return len(p), nil
}

// Write implements io.Writer at the handle's seek position.
func (f *ShadowFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.stale() {
		return 0, os.ErrClosed
	}
	tear, err := f.fs.admitWriteLocked(f.path)
	if err != nil {
		if tear && len(p) > 0 {
			f.d.tornLocked(p, f.pos)
		}
		return 0, err
	}
	f.d.writeLocked(p, f.pos)
	f.pos += int64(len(p))
	return len(p), nil
}

// Seek implements io.Seeker.
func (f *ShadowFile) Seek(offset int64, whence int) (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.check(); err != nil {
		return 0, err
	}
	switch whence {
	case io.SeekStart:
		f.pos = offset
	case io.SeekCurrent:
		f.pos += offset
	case io.SeekEnd:
		f.pos = int64(len(f.d.volatile)) + offset
	default:
		return 0, fmt.Errorf("fault: seek whence %d", whence)
	}
	if f.pos < 0 {
		f.pos = 0
		return 0, fmt.Errorf("fault: negative seek offset")
	}
	return f.pos, nil
}

// Truncate resizes the volatile image; the durable image changes only
// at the next Sync, so an unsynced truncation is undone by a crash.
func (f *ShadowFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.stale() {
		return os.ErrClosed
	}
	if _, err := f.fs.admitWriteLocked(f.path); err != nil {
		return err
	}
	switch {
	case size <= int64(len(f.d.volatile)):
		f.d.volatile = f.d.volatile[:size]
	default:
		grown := make([]byte, size)
		copy(grown, f.d.volatile)
		f.d.volatile = grown
	}
	return nil
}

// Sync makes the volatile image durable.
func (f *ShadowFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.stale() {
		return os.ErrClosed
	}
	if _, err := f.fs.admitWriteLocked(f.path); err != nil {
		return err
	}
	f.d.durable = append([]byte(nil), f.d.volatile...)
	return nil
}

// Size reports the volatile length.
func (f *ShadowFile) Size() (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.check(); err != nil {
		return 0, err
	}
	return int64(len(f.d.volatile)), nil
}

// Close releases the handle. Closing never syncs — matching POSIX,
// where close() provides no durability.
func (f *ShadowFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.stale() {
		return os.ErrClosed
	}
	f.closed = true
	f.fs.handles--
	return nil
}
