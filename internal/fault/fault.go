// Package fault is the failure-injection substrate for the storage
// stack: a registry of named failpoints threaded through the pager,
// the write-ahead log, and buffer-pool eviction, plus a shadow-file
// layer (ShadowFS) that simulates machine crashes by discarding bytes
// that were never fsynced.
//
// The design goal is that a disarmed failpoint is effectively free: a
// Hit on the hot path is a single atomic load of a process-wide armed
// count, and only when at least one site is armed does the call fall
// through to the locked slow path. Production binaries run with the
// package wired in; tests and the /failpoints admin surface arm
// policies at will.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic" //lint:allow rawatomics the disarmed fast-path gate is a control-flow flag, not a metric

	"repro/internal/obs"
)

// Failpoint site names threaded through the storage layer. Sites are
// plain strings so tests can register ad-hoc sites, but the storage
// stack only consults these.
const (
	SitePagerRead     = "pager.read"
	SitePagerWrite    = "pager.write"
	SitePagerSync     = "pager.sync"
	SitePagerAllocate = "pager.allocate"
	SiteWALAppend     = "wal.append"
	SiteWALFlush      = "wal.flush"
	SiteWALSync       = "wal.sync"
	SiteWALRotate     = "wal.rotate"
	SiteWALPrune      = "wal.prune"
	SiteCkptMaster    = "ckpt.master"
	SiteBufferEvict   = "buffer.evict"
)

// Sites lists the failpoint sites the storage stack consults, for the
// admin surface and documentation.
func Sites() []string {
	return []string{
		SitePagerRead, SitePagerWrite, SitePagerSync, SitePagerAllocate,
		SiteWALAppend, SiteWALFlush, SiteWALSync,
		SiteWALRotate, SiteWALPrune, SiteCkptMaster, SiteBufferEvict,
	}
}

// Errors injected by armed failpoints.
var (
	// ErrInjected is the base error of every fault the registry
	// injects (except simulated crashes).
	ErrInjected = errors.New("fault: injected failure")
	// ErrCrashed is the base error injected by the "crash" policy and
	// returned by a ShadowFS once its crash point has been reached: the
	// simulated machine is dead and every subsequent I/O fails.
	ErrCrashed = errors.New("fault: simulated crash")
)

// Outcome describes what an armed failpoint injects at a site.
type Outcome struct {
	// Err is the injected error; never nil on a non-nil Outcome.
	Err error
	// Torn is the number of payload bytes a write site should apply
	// before failing, simulating a torn write. Negative means the
	// write must not happen at all. Non-write sites ignore it.
	Torn int
}

type policyKind int

const (
	policyError      policyKind = iota + 1 // every hit fails
	policyErrorOnce                        // first hit fails, then disarms
	policyErrorEvery                       // every Nth hit fails
	policyTorn                             // first hit tears the write, then disarms
	policyCrash                            // every hit fails with ErrCrashed (sticky)
)

type failpoint struct {
	spec     string
	kind     policyKind
	every    uint64
	torn     int
	hits     uint64
	injected uint64
	counter  *obs.Counter
}

var (
	// armed counts armed sites; Hit's fast path loads it and bails
	// while zero, so a disarmed tree pays one atomic load per site.
	armed int32

	mu    sync.Mutex
	sites = map[string]*failpoint{}
	reg   *obs.Registry
)

// Instrument binds the registry's per-site injection counters into r
// as reach_fault_injected_total{site=...}. Sites armed before and
// after the call are both covered.
func Instrument(r *obs.Registry) {
	mu.Lock()
	defer mu.Unlock()
	reg = r
	for site, fp := range sites {
		fp.counter = counterForLocked(site)
	}
}

func counterForLocked(site string) *obs.Counter {
	if reg == nil {
		return new(obs.Counter)
	}
	return reg.Counter("reach_fault_injected_total",
		"Failpoint-injected failures by site.", "site", site)
}

// Arm installs a policy at site. Policy specs:
//
//	error           every hit fails
//	error-once      the first hit fails, then the site disarms
//	error-every=N   every Nth hit fails (N >= 1)
//	torn=N          the first write tears after N bytes, then disarms
//	crash           every hit fails with ErrCrashed (sticky)
//	off             disarm the site
func Arm(site, policy string) error {
	if site == "" {
		return errors.New("fault: empty site name")
	}
	fp := &failpoint{spec: policy, torn: -1}
	switch {
	case policy == "off":
		Disarm(site)
		return nil
	case policy == "error":
		fp.kind = policyError
	case policy == "error-once":
		fp.kind = policyErrorOnce
	case policy == "crash":
		fp.kind = policyCrash
	case strings.HasPrefix(policy, "error-every="):
		n, err := strconv.ParseUint(policy[len("error-every="):], 10, 32)
		if err != nil || n < 1 {
			return fmt.Errorf("fault: bad policy %q: want error-every=N with N >= 1", policy)
		}
		fp.kind = policyErrorEvery
		fp.every = n
	case strings.HasPrefix(policy, "torn="):
		n, err := strconv.ParseUint(policy[len("torn="):], 10, 31)
		if err != nil {
			return fmt.Errorf("fault: bad policy %q: want torn=N with N >= 0", policy)
		}
		fp.kind = policyTorn
		fp.torn = int(n)
	default:
		return fmt.Errorf("fault: unknown policy %q", policy)
	}
	mu.Lock()
	defer mu.Unlock()
	fp.counter = counterForLocked(site)
	if old, ok := sites[site]; ok {
		// Re-arming preserves the hit statistics of the old policy.
		fp.hits, fp.injected = old.hits, old.injected
	} else {
		atomic.AddInt32(&armed, 1)
	}
	sites[site] = fp
	return nil
}

// Disarm removes the policy at site, reporting whether one was armed.
func Disarm(site string) bool {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := sites[site]; !ok {
		return false
	}
	delete(sites, site)
	atomic.AddInt32(&armed, -1)
	return true
}

// DisarmAll removes every armed policy. Tests defer it.
func DisarmAll() {
	mu.Lock()
	defer mu.Unlock()
	for site := range sites {
		delete(sites, site)
		atomic.AddInt32(&armed, -1)
	}
}

// Status describes one armed failpoint for List and the admin surface.
type Status struct {
	Site     string `json:"site"`
	Policy   string `json:"policy"`
	Hits     uint64 `json:"hits"`
	Injected uint64 `json:"injected"`
}

// List reports the armed failpoints, sorted by site name.
func List() []Status {
	mu.Lock()
	defer mu.Unlock()
	out := make([]Status, 0, len(sites))
	for site, fp := range sites {
		out = append(out, Status{Site: site, Policy: fp.spec, Hits: fp.hits, Injected: fp.injected})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// Hit evaluates the failpoint at site and returns the outcome to
// inject, or nil to proceed normally. The disarmed fast path is a
// single atomic load.
func Hit(site string) *Outcome {
	if atomic.LoadInt32(&armed) == 0 {
		return nil
	}
	return hitSlow(site)
}

func hitSlow(site string) *Outcome {
	mu.Lock()
	defer mu.Unlock()
	fp, ok := sites[site]
	if !ok {
		return nil
	}
	fp.hits++
	inject := false
	base := ErrInjected
	torn := -1
	switch fp.kind {
	case policyError:
		inject = true
	case policyErrorOnce:
		inject = true
		delete(sites, site)
		atomic.AddInt32(&armed, -1)
	case policyErrorEvery:
		inject = fp.hits%fp.every == 0
	case policyTorn:
		inject = true
		torn = fp.torn
		delete(sites, site)
		atomic.AddInt32(&armed, -1)
	case policyCrash:
		inject = true
		base = ErrCrashed
	}
	if !inject {
		return nil
	}
	fp.injected++
	fp.counter.Inc()
	return &Outcome{Err: fmt.Errorf("%w (site %s, policy %s)", base, site, fp.spec), Torn: torn}
}
