package fault

import (
	"errors"
	"io"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestDisarmedHitIsNil(t *testing.T) {
	DisarmAll()
	if got := Hit(SitePagerWrite); got != nil {
		t.Fatalf("disarmed Hit = %+v, want nil", got)
	}
}

func TestErrorOncePolicy(t *testing.T) {
	defer DisarmAll()
	if err := Arm(SiteWALSync, "error-once"); err != nil {
		t.Fatal(err)
	}
	o := Hit(SiteWALSync)
	if o == nil || !errors.Is(o.Err, ErrInjected) {
		t.Fatalf("first hit = %+v, want ErrInjected", o)
	}
	if o := Hit(SiteWALSync); o != nil {
		t.Fatalf("second hit = %+v, want nil (once policy disarms)", o)
	}
	if len(List()) != 0 {
		t.Fatalf("List after once-fire = %v, want empty", List())
	}
}

func TestErrorEveryPolicy(t *testing.T) {
	defer DisarmAll()
	if err := Arm(SitePagerRead, "error-every=3"); err != nil {
		t.Fatal(err)
	}
	var fired []int
	for i := 1; i <= 9; i++ {
		if Hit(SitePagerRead) != nil {
			fired = append(fired, i)
		}
	}
	if len(fired) != 3 || fired[0] != 3 || fired[1] != 6 || fired[2] != 9 {
		t.Fatalf("error-every=3 fired at %v, want [3 6 9]", fired)
	}
	st := List()
	if len(st) != 1 || st[0].Hits != 9 || st[0].Injected != 3 {
		t.Fatalf("List = %+v, want hits=9 injected=3", st)
	}
}

func TestTornPolicy(t *testing.T) {
	defer DisarmAll()
	if err := Arm(SitePagerWrite, "torn=100"); err != nil {
		t.Fatal(err)
	}
	o := Hit(SitePagerWrite)
	if o == nil || o.Torn != 100 || !errors.Is(o.Err, ErrInjected) {
		t.Fatalf("torn hit = %+v, want Torn=100", o)
	}
	if Hit(SitePagerWrite) != nil {
		t.Fatal("torn policy did not disarm after firing")
	}
}

func TestCrashPolicySticky(t *testing.T) {
	defer DisarmAll()
	if err := Arm(SiteWALFlush, "crash"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		o := Hit(SiteWALFlush)
		if o == nil || !errors.Is(o.Err, ErrCrashed) {
			t.Fatalf("hit %d = %+v, want sticky ErrCrashed", i, o)
		}
	}
}

func TestArmRejectsBadPolicies(t *testing.T) {
	for _, bad := range []string{"", "eror", "error-every=0", "error-every=x", "torn=-1"} {
		if err := Arm(SitePagerSync, bad); err == nil {
			Disarm(SitePagerSync)
			t.Fatalf("Arm(%q) succeeded, want error", bad)
		}
	}
	if err := Arm("", "error"); err == nil {
		t.Fatal("Arm with empty site succeeded")
	}
}

func TestOffPolicyDisarms(t *testing.T) {
	defer DisarmAll()
	if err := Arm(SiteBufferEvict, "error"); err != nil {
		t.Fatal(err)
	}
	if err := Arm(SiteBufferEvict, "off"); err != nil {
		t.Fatal(err)
	}
	if Hit(SiteBufferEvict) != nil {
		t.Fatal("site still armed after policy off")
	}
}

func TestInstrumentCountsInjections(t *testing.T) {
	defer DisarmAll()
	defer Instrument(nil)
	reg := obs.NewRegistry()
	Instrument(reg)
	if err := Arm(SiteWALAppend, "error"); err != nil {
		t.Fatal(err)
	}
	Hit(SiteWALAppend)
	Hit(SiteWALAppend)
	c := reg.Counter("reach_fault_injected_total",
		"Failpoint-injected failures by site.", "site", SiteWALAppend)
	if c.Value() != 2 {
		t.Fatalf("reach_fault_injected_total = %d, want 2", c.Value())
	}
}

func TestFailpointsHandler(t *testing.T) {
	defer DisarmAll()
	h := Handler()

	post := func(site, policy string) *httptest.ResponseRecorder {
		form := url.Values{"site": {site}, "policy": {policy}}
		req := httptest.NewRequest("POST", "/failpoints", strings.NewReader(form.Encode()))
		req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}

	if rec := post(SiteWALSync, "error-once"); rec.Code != 200 {
		t.Fatalf("arm status = %d body=%s", rec.Code, rec.Body)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/failpoints", nil))
	body, _ := io.ReadAll(rec.Body)
	if !strings.Contains(string(body), SiteWALSync) || !strings.Contains(string(body), "error-once") {
		t.Fatalf("GET body %s does not list the armed site", body)
	}
	if rec := post(SiteWALSync, "bogus"); rec.Code != 400 {
		t.Fatalf("bad policy status = %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("DELETE", "/failpoints", nil))
	if rec.Code != 200 || len(List()) != 0 {
		t.Fatalf("DELETE all: status=%d armed=%v", rec.Code, List())
	}
}

// BenchmarkDisarmedHit documents the disarmed fast path: one atomic
// load, no allocation — the cost the storage stack pays per I/O when
// no failpoint is armed.
func BenchmarkDisarmedHit(b *testing.B) {
	DisarmAll()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Hit(SitePagerWrite) != nil {
			b.Fatal("armed?")
		}
	}
}
