package crash

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/storage"
)

// TestCrashMatrix is the crash-consistency matrix: every workload,
// crashed at every write/fsync boundary it generates (clean and
// WAL-torn), recovered once cleanly and once through a gauntlet of
// second crashes during recovery itself. See the package comment for
// the invariants.
func TestCrashMatrix(t *testing.T) {
	totalBoundaries, totalRecoveryCrashes := 0, 0
	for _, w := range Workloads() {
		for _, torn := range []bool{false, true} {
			name := w.Name + "/clean"
			if torn {
				name = w.Name + "/torn-wal"
			}
			w, torn := w, torn
			t.Run(name, func(t *testing.T) {
				st, err := RunMatrix(w, torn)
				if err != nil {
					t.Fatal(err)
				}
				if st.Boundaries < 10 {
					t.Fatalf("workload generated only %d write boundaries; the matrix is not exercising anything", st.Boundaries)
				}
				totalBoundaries += st.Boundaries
				totalRecoveryCrashes += st.RecoveryCrashes
				t.Logf("%s: %d crash boundaries, %d second crashes during recovery", name, st.Boundaries, st.RecoveryCrashes)
			})
		}
	}
	// Recovery is deliberately write-bounded (it appends and checkpoints
	// nothing), so individual workloads — especially small ones whose
	// pages fit the buffer pool — may recover with almost no writes to
	// crash in. Demand meaningful second-crash coverage across the whole
	// matrix rather than per workload.
	if totalRecoveryCrashes < 100 {
		t.Fatalf("only %d second crashes across %d boundaries; recovery idempotence barely exercised",
			totalRecoveryCrashes, totalBoundaries)
	}
}

// TestWorkloadsCompleteWithoutCrash pins the dry-run path: every
// scripted workload must run to completion on a healthy filesystem
// and leave exactly its committed records behind.
func TestWorkloadsCompleteWithoutCrash(t *testing.T) {
	for _, w := range Workloads() {
		fs := fault.NewShadowFS()
		res, err := run(fs, w)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if !res.completed {
			t.Fatalf("%s: did not complete", w.Name)
		}
		if res.inDoubt != nil {
			t.Fatalf("%s: in-doubt commit without a crash", w.Name)
		}
		if err := verify(fs, res); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
	}
}

// TestHarnessCatchesLostCommit is the harness's self-test: a store
// that loses a committed transaction must fail verification. We
// simulate the loss by committing, crashing without the WAL force
// (SyncOnCommit=false), and asserting verify rejects the result when
// told the commit succeeded.
func TestHarnessCatchesLostCommit(t *testing.T) {
	fs := fault.NewShadowFS()
	opts := storeOptions(fs)
	opts.SyncOnCommit = storage.Bool(false) // deliberately break durability
	st, err := storage.Open(storeDir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Begin(1); err != nil {
		t.Fatal(err)
	}
	v := val(0, 1)
	if _, err := st.Insert(1, []byte(v)); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(1); err != nil {
		t.Fatal(err)
	}
	// Crash before anything was forced; the "committed" record is gone.
	fs.Crash()
	res := &runResult{committed: map[int]string{0: v}}
	if err := verify(fs, res); err == nil {
		t.Fatal("verify accepted a lost committed transaction; the harness is toothless")
	}
}
