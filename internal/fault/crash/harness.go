// Package crash is the crash-consistency harness for the storage
// manager: it runs scripted workloads against a store opened on a
// fault.ShadowFS, simulates a machine crash at every write/fsync
// boundary the workload generates, reopens the store, and verifies
// the recovery invariants —
//
//  1. durability: every transaction whose Commit returned nil is
//     fully readable after recovery;
//  2. atomicity: no effect of an uncommitted transaction is visible,
//     and a transaction whose Commit was interrupted (in doubt) is
//     either fully present or fully absent;
//  3. idempotence: a second crash in the middle of recovery itself,
//     followed by another recovery, yields the same state.
//
// The harness is deliberately ignorant of the store's internals: it
// tracks the expected logical state purely from the return values of
// the operations it issued, and verifies by scanning records.
package crash

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/fault"
	"repro/internal/storage"
)

// StepKind enumerates workload operations.
type StepKind int

// Workload step kinds.
const (
	OpBegin StepKind = iota + 1
	OpInsert
	OpUpdate
	OpDelete
	OpCommit
	OpAbort
	OpCheckpoint
)

// Step is one scripted operation. Txn identifies the storage-level
// transaction; Key names a logical record (the harness tracks the
// record's RID and generates a unique payload per version).
type Step struct {
	Kind StepKind
	Txn  uint64
	Key  int
}

// Workload is a named, deterministic step script.
type Workload struct {
	Name  string
	Steps []Step
}

// payloadPad sizes records so a workload spans several pages and the
// small buffer pool the harness uses is forced to evict: ~1.2 KiB
// records put six to a page, so a dozen live records overflow the
// four-frame pool.
const payloadPad = 1200

// storeDir is the directory key the harness opens stores under on
// the shadow filesystem.
const storeDir = "crashdb"

// val builds the unique payload for version ver of logical record
// key. The key is parseable back out of the payload, so the harness
// can re-derive RIDs by scanning.
func val(key, ver int) string {
	return fmt.Sprintf("k%03d.v%03d.", key, ver) + strings.Repeat("x", payloadPad)
}

func keyOf(payload string) (int, bool) {
	var key, ver int
	if _, err := fmt.Sscanf(payload, "k%03d.v%03d.", &key, &ver); err != nil {
		return 0, false
	}
	return key, true
}

// runResult is what one (possibly crash-interrupted) execution of a
// workload promises about the post-recovery state.
type runResult struct {
	// committed maps key -> payload for every transaction whose
	// Commit returned nil.
	committed map[int]string
	// inDoubt, when non-nil, is the overlay (key -> payload, nil =
	// delete) of the one transaction whose Commit was interrupted:
	// recovery may surface either the base state or base+overlay.
	inDoubt map[int]*string
	// completed is true when every step ran without hitting the
	// scheduled crash.
	completed bool
}

// allowedStates returns the sorted payload multisets recovery may
// legally surface.
func (r *runResult) allowedStates() [][]string {
	base := make([]string, 0, len(r.committed))
	for _, v := range r.committed {
		base = append(base, v)
	}
	sort.Strings(base)
	out := [][]string{base}
	if r.inDoubt != nil {
		m := make(map[int]string, len(r.committed))
		for k, v := range r.committed {
			m[k] = v
		}
		for k, v := range r.inDoubt {
			if v == nil {
				delete(m, k)
			} else {
				m[k] = *v
			}
		}
		alt := make([]string, 0, len(m))
		for _, v := range m {
			alt = append(alt, v)
		}
		sort.Strings(alt)
		out = append(out, alt)
	}
	return out
}

// executor drives one run of a workload against a store on fs.
type executor struct {
	fs    *fault.ShadowFS
	store *storage.Store
	rids  map[int]storage.RID
	vers  map[int]int
	// overlays holds each active transaction's pending effects.
	overlays map[uint64]map[int]*string
	res      runResult
}

func storeOptions(fs *fault.ShadowFS) storage.Options {
	return storage.Options{
		FS:              fs,
		BufferPoolPages: 4, // tiny pool: every run exercises eviction writes
		SyncOnCommit:    storage.Bool(true),
		// Tiny segments: every workload rotates the log several times,
		// so the matrix crashes inside rotation and pruning too.
		WALSegmentBytes: 4096,
	}
}

// run executes w's steps against a fresh store on fs, stopping at the
// scheduled crash (if fs hits one). It reports what the run promises
// about post-recovery state, or an error for failures that are not
// the simulated crash.
func run(fs *fault.ShadowFS, w Workload) (*runResult, error) {
	ex := &executor{
		fs:       fs,
		rids:     make(map[int]storage.RID),
		vers:     make(map[int]int),
		overlays: make(map[uint64]map[int]*string),
	}
	ex.res.committed = make(map[int]string)
	st, err := storage.Open(storeDir, storeOptions(fs))
	if err != nil {
		if fs.Crashed() {
			return &ex.res, nil
		}
		return nil, fmt.Errorf("open: %w", err)
	}
	ex.store = st
	for i, step := range w.Steps {
		if err := ex.apply(step); err != nil {
			if fs.Crashed() {
				// The machine died mid-step; the store object is
				// abandoned, never closed — exactly like a real crash.
				return &ex.res, nil
			}
			return nil, fmt.Errorf("step %d (%+v): %w", i, step, err)
		}
	}
	ex.res.completed = true
	if fs.Crashed() {
		return &ex.res, nil
	}
	if err := st.Close(); err != nil {
		if fs.Crashed() {
			return &ex.res, nil
		}
		return nil, fmt.Errorf("close: %w", err)
	}
	return &ex.res, nil
}

func (ex *executor) overlay(txn uint64) map[int]*string {
	ov, ok := ex.overlays[txn]
	if !ok {
		ov = make(map[int]*string)
		ex.overlays[txn] = ov
	}
	return ov
}

func (ex *executor) apply(s Step) error {
	switch s.Kind {
	case OpBegin:
		return ex.store.Begin(s.Txn)
	case OpInsert:
		ex.vers[s.Key]++
		v := val(s.Key, ex.vers[s.Key])
		rid, err := ex.store.Insert(s.Txn, []byte(v))
		if err != nil {
			return err
		}
		ex.rids[s.Key] = rid
		ex.overlay(s.Txn)[s.Key] = &v
		return nil
	case OpUpdate:
		rid, ok := ex.rids[s.Key]
		if !ok {
			return fmt.Errorf("workload bug: update of unknown key %d", s.Key)
		}
		ex.vers[s.Key]++
		v := val(s.Key, ex.vers[s.Key])
		newRID, err := ex.store.Update(s.Txn, rid, []byte(v))
		if err != nil {
			return err
		}
		ex.rids[s.Key] = newRID
		ex.overlay(s.Txn)[s.Key] = &v
		return nil
	case OpDelete:
		rid, ok := ex.rids[s.Key]
		if !ok {
			return fmt.Errorf("workload bug: delete of unknown key %d", s.Key)
		}
		if err := ex.store.Delete(s.Txn, rid); err != nil {
			return err
		}
		delete(ex.rids, s.Key)
		ex.overlay(s.Txn)[s.Key] = nil
		return nil
	case OpCommit:
		err := ex.store.Commit(s.Txn)
		ov := ex.overlays[s.Txn]
		delete(ex.overlays, s.Txn)
		if err != nil {
			if ex.fs.Crashed() || errors.Is(err, storage.ErrInDoubt) {
				// The commit record was appended but never safely
				// forced: recovery may land either way.
				ex.res.inDoubt = ov
			}
			return err
		}
		for k, v := range ov {
			if v == nil {
				delete(ex.res.committed, k)
			} else {
				ex.res.committed[k] = *v
			}
		}
		return nil
	case OpAbort:
		_, err := ex.store.Abort(s.Txn)
		delete(ex.overlays, s.Txn)
		if err != nil {
			return err
		}
		// Aborted updates and deletes may have relocated records; the
		// returned old->new map only covers this abort, so re-derive
		// every key's RID from a scan of the live store.
		return ex.rescanRIDs()
	case OpCheckpoint:
		return ex.store.Checkpoint()
	}
	return fmt.Errorf("workload bug: unknown step kind %d", s.Kind)
}

func (ex *executor) rescanRIDs() error {
	rids := make(map[int]storage.RID)
	err := ex.store.Scan(func(rid storage.RID, data []byte) {
		if key, ok := keyOf(string(data)); ok {
			rids[key] = rid
		}
	})
	if err != nil {
		return err
	}
	ex.rids = rids
	return nil
}

// verify reopens the store on fs (running recovery) and checks the
// surviving records against the run's allowed states.
func verify(fs *fault.ShadowFS, res *runResult) error {
	st, err := storage.Open(storeDir, storeOptions(fs))
	if err != nil {
		return fmt.Errorf("recovery open: %w", err)
	}
	defer st.Close()
	var got []string
	if err := st.Scan(func(_ storage.RID, data []byte) {
		got = append(got, string(data))
	}); err != nil {
		return fmt.Errorf("post-recovery scan: %w", err)
	}
	sort.Strings(got)
	allowed := res.allowedStates()
	for _, want := range allowed {
		if equalStrings(got, want) {
			return nil
		}
	}
	return fmt.Errorf("post-recovery state (%d records) matches none of the %d allowed states:\n got:  %v\n want: %v",
		len(got), len(allowed), brief(got), brief(allowed[0]))
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// brief shortens payloads to their parseable key.version prefix for
// error messages.
func brief(vals []string) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		if len(v) > 10 {
			v = v[:10]
		}
		out[i] = v
	}
	return out
}

// maxRecoveryProbes bounds the second-crash sweep during recovery; a
// recovery that issues more write operations than this is a bug.
const maxRecoveryProbes = 10000

// Stats summarizes one workload's trip through the matrix.
type Stats struct {
	// Boundaries is the number of write/fsync boundaries the workload
	// generates — the number of crash points simulated.
	Boundaries int
	// RecoveryCrashes is the total number of second crashes injected
	// during recovery across all boundaries.
	RecoveryCrashes int
}

// RunMatrix runs w once to completion to count its write boundaries,
// then for every boundary i: replays w on a fresh shadow filesystem,
// crashes at boundary i, and checks the recovery invariants twice —
// once reopening cleanly, and once crashing repeatedly during
// recovery itself (a second crash at every recovery write boundary)
// before the final reopen. With torn=true the crashing write of the
// WAL additionally tears, leaving a half-written frame on disk for
// the CRC scan to reject.
func RunMatrix(w Workload, torn bool) (Stats, error) {
	var st Stats
	tornPath := ""
	if torn {
		tornPath = "wal.log"
	}

	// Dry run: count boundaries and sanity-check the script.
	fs := fault.NewShadowFS()
	res, err := run(fs, w)
	if err != nil {
		return st, fmt.Errorf("%s: dry run: %w", w.Name, err)
	}
	if !res.completed {
		return st, fmt.Errorf("%s: dry run did not complete", w.Name)
	}
	st.Boundaries = fs.WriteOps()

	for i := 0; i < st.Boundaries; i++ {
		fs := fault.NewShadowFS()
		fs.CrashAfter(i, tornPath)
		res, err := run(fs, w)
		if err != nil {
			return st, fmt.Errorf("%s: boundary %d: %w", w.Name, i, err)
		}
		fs.Crash()

		// Invariant check 1: plain crash, recover, verify.
		clean := fs.Clone()
		if err := verify(clean, res); err != nil {
			return st, fmt.Errorf("%s: boundary %d: %w", w.Name, i, err)
		}

		// Invariant check 2: recovery itself is interrupted by a
		// second crash at each of its own write boundaries; recovery
		// after recovery must converge to the same allowed states.
		for j := 0; ; j++ {
			if j > maxRecoveryProbes {
				return st, fmt.Errorf("%s: boundary %d: recovery never completed within %d probes", w.Name, i, maxRecoveryProbes)
			}
			fs.CrashAfter(j, tornPath)
			s2, err := storage.Open(storeDir, storeOptions(fs))
			if err == nil {
				// Recovery ran to completion without reaching the
				// scheduled crash; disarm it and verify.
				fs.CrashAfter(-1, "")
				if cerr := s2.Close(); cerr != nil {
					return st, fmt.Errorf("%s: boundary %d: close after recovery: %w", w.Name, i, cerr)
				}
				if err := verify(fs, res); err != nil {
					return st, fmt.Errorf("%s: boundary %d after %d recovery crashes: %w", w.Name, i, j, err)
				}
				break
			}
			if !fs.Crashed() {
				return st, fmt.Errorf("%s: boundary %d, recovery probe %d: %w", w.Name, i, j, err)
			}
			st.RecoveryCrashes++
			fs.Crash()
		}
	}
	return st, nil
}

// Workloads returns the harness's scripted workloads: serial commits
// with updates and deletes, interleaved transactions with an abort,
// and a churn script that checkpoints mid-stream and relocates
// records across pages.
func Workloads() []Workload {
	b := func(t uint64) Step { return Step{Kind: OpBegin, Txn: t} }
	ins := func(t uint64, k int) Step { return Step{Kind: OpInsert, Txn: t, Key: k} }
	upd := func(t uint64, k int) Step { return Step{Kind: OpUpdate, Txn: t, Key: k} }
	del := func(t uint64, k int) Step { return Step{Kind: OpDelete, Txn: t, Key: k} }
	commit := func(t uint64) Step { return Step{Kind: OpCommit, Txn: t} }
	abort := func(t uint64) Step { return Step{Kind: OpAbort, Txn: t} }
	ckpt := Step{Kind: OpCheckpoint}

	serial := Workload{Name: "serial-commits"}
	for t := uint64(1); t <= 3; t++ {
		serial.Steps = append(serial.Steps, b(t))
		base := int(t-1) * 8
		for k := base; k < base+8; k++ {
			serial.Steps = append(serial.Steps, ins(t, k))
		}
		serial.Steps = append(serial.Steps, upd(t, base), upd(t, base+1), del(t, base+2), commit(t))
	}
	serial.Steps = append(serial.Steps,
		b(4), upd(4, 0), upd(4, 8), del(4, 16), ins(4, 30), commit(4))

	interleaved := Workload{Name: "interleaved-abort", Steps: []Step{
		b(1), ins(1, 0), ins(1, 1),
		b(2), ins(2, 10), ins(2, 11),
		upd(1, 0), upd(2, 10),
		commit(1),
		b(3), ins(3, 20), upd(3, 1), del(3, 0),
		abort(2), // its keys 10, 11 must never surface
		commit(3),
		b(4), ins(4, 10), commit(4), // reuse an aborted key
	}}

	churn := Workload{Name: "checkpoint-churn"}
	churn.Steps = append(churn.Steps, b(1))
	for k := 0; k < 12; k++ {
		churn.Steps = append(churn.Steps, ins(1, k))
	}
	churn.Steps = append(churn.Steps, commit(1), ckpt, b(2))
	for k := 0; k < 12; k += 2 {
		churn.Steps = append(churn.Steps, upd(2, k))
	}
	churn.Steps = append(churn.Steps, del(2, 1), del(2, 3), commit(2),
		b(3), ins(3, 40), upd(3, 0), abort(3),
		ckpt,
		b(4), ins(4, 41), upd(4, 2), commit(4))

	// Fuzzy checkpoints with a transaction held open throughout: the
	// old checkpoint refused while any transaction was active, so this
	// script pins the starvation fix and the ATT/redoLSN bookkeeping —
	// txn 1's records span every checkpoint and its fate (commit near
	// the end) must survive crashes inside any of them.
	fuzzy := Workload{Name: "fuzzy-held-txn", Steps: []Step{
		b(1), ins(1, 0), ins(1, 1), ins(1, 2),
		b(2), ins(2, 10), commit(2),
		ckpt, // txn 1 active
		upd(1, 0),
		b(3), ins(3, 11), upd(3, 10), commit(3),
		ckpt, // txn 1 still active, spanning two checkpoints
		del(1, 1), commit(1),
		ckpt,
		b(4), ins(4, 20), commit(4),
	}}

	return []Workload{serial, interleaved, churn, fuzzy}
}
