package crash

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/internal/storage"
)

// runGroupCommit races n committers against a store on fs, each
// inserting one record and committing. It returns the payloads of
// every transaction whose Commit returned nil — the durability
// promises recovery must honor no matter where the crash landed,
// including between a group-commit leader's fsync and the release of
// its followers.
func runGroupCommit(fs *fault.ShadowFS, n int) ([]string, error) {
	st, err := storage.Open(storeDir, storeOptions(fs))
	if err != nil {
		if fs.Crashed() {
			return nil, nil
		}
		return nil, fmt.Errorf("open: %w", err)
	}
	var mu sync.Mutex
	var committed []string
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			txn := uint64(i + 1)
			if st.Begin(txn) != nil {
				return // store poisoned by an earlier crash-hit commit
			}
			v := val(100+i, 1)
			if _, err := st.Insert(txn, []byte(v)); err != nil {
				return
			}
			if st.Commit(txn) == nil {
				mu.Lock()
				committed = append(committed, v)
				mu.Unlock()
			}
		}()
	}
	close(start)
	wg.Wait()
	if !fs.Crashed() {
		_ = st.Close()
	}
	return committed, nil
}

// TestGroupCommitCrashDurability sweeps a crash across every write
// boundary of a concurrent group-committed workload and asserts the
// core promise batching must not weaken: a Commit that reported
// success survives recovery. A follower released by a leader's fsync
// has its record on disk by definition — this test is the proof.
func TestGroupCommitCrashDurability(t *testing.T) {
	const committers = 6

	// Dry run to size the boundary sweep.
	dry := fault.NewShadowFS()
	if _, err := runGroupCommit(dry, committers); err != nil {
		t.Fatalf("dry run: %v", err)
	}
	boundaries := dry.WriteOps()
	if boundaries == 0 {
		t.Fatal("dry run produced no write boundaries")
	}

	for i := 0; i < boundaries; i++ {
		fs := fault.NewShadowFS()
		fs.CrashAfter(i, "")
		committed, err := runGroupCommit(fs, committers)
		if err != nil {
			t.Fatalf("boundary %d: %v", i, err)
		}
		fs.Crash() // drop everything never fsynced

		clean := fs.Clone()
		st, err := storage.Open(storeDir, storeOptions(clean))
		if err != nil {
			t.Fatalf("boundary %d: recovery open: %v", i, err)
		}
		survived := make(map[string]bool)
		if err := st.Scan(func(_ storage.RID, data []byte) {
			survived[string(data)] = true
		}); err != nil {
			t.Fatalf("boundary %d: post-recovery scan: %v", i, err)
		}
		st.Close()
		for _, v := range committed {
			if !survived[v] {
				t.Fatalf("boundary %d: commit reported durable but recovery lost it (%s); %d/%d commits returned nil",
					i, v[:10], len(committed), committers)
			}
		}
	}
}
