package fault

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestShadowCrashDiscardsUnsyncedBytes(t *testing.T) {
	fs := NewShadowFS()
	f, err := fs.OpenFile("wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("synced.")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("lost")); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	f2, err := fs.OpenFile("wal.log")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(f2)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "synced." {
		t.Fatalf("after crash: %q, want only the synced prefix", got)
	}
}

func TestShadowCrashAfterBoundary(t *testing.T) {
	fs := NewShadowFS()
	f, _ := fs.OpenFile("data.db")
	fs.CrashAfter(2, "")
	if _, err := f.WriteAt([]byte("a"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("b"), 1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("third write err = %v, want ErrCrashed", err)
	}
	if !fs.Crashed() {
		t.Fatal("fs not crashed after boundary")
	}
	// Everything fails now, including reads and opens.
	if _, err := f.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read err = %v, want ErrCrashed", err)
	}
	if _, err := fs.OpenFile("data.db"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash open err = %v, want ErrCrashed", err)
	}
	fs.Crash()
	f3, err := fs.OpenFile("data.db")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(f3)
	if string(got) != "a" {
		t.Fatalf("durable image = %q, want %q", got, "a")
	}
}

func TestShadowTornWriteReachesDurable(t *testing.T) {
	fs := NewShadowFS()
	f, _ := fs.OpenFile("dir/wal.log")
	if _, err := f.Write([]byte("head")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.CrashAfter(0, "wal.log")
	if _, err := f.Write([]byte("12345678")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("torn write err = %v, want ErrCrashed", err)
	}
	fs.Crash()
	f2, _ := fs.OpenFile("dir/wal.log")
	got, _ := io.ReadAll(f2)
	if string(got) != "head1234" {
		t.Fatalf("after torn crash: %q, want synced head + half the torn payload", got)
	}
}

func TestShadowTruncateIsVolatileUntilSync(t *testing.T) {
	fs := NewShadowFS()
	f, _ := fs.OpenFile("wal.log")
	if _, err := f.Write(bytes.Repeat([]byte("x"), 10)); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(3); err != nil {
		t.Fatal(err)
	}
	if sz, _ := f.Size(); sz != 3 {
		t.Fatalf("post-truncate size = %d, want 3", sz)
	}
	fs.Crash()
	f2, _ := fs.OpenFile("wal.log")
	if sz, _ := f2.Size(); sz != 10 {
		t.Fatalf("unsynced truncate survived crash: size = %d, want 10", sz)
	}
}

func TestShadowStaleHandlesAfterCrash(t *testing.T) {
	fs := NewShadowFS()
	f, _ := fs.OpenFile("data.db")
	fs.Crash()
	if _, err := f.Write([]byte("zombie")); err == nil {
		t.Fatal("stale handle write succeeded after crash")
	}
	if fs.OpenHandles() != 0 {
		t.Fatalf("OpenHandles = %d after crash, want 0", fs.OpenHandles())
	}
}

func TestShadowHandleAccounting(t *testing.T) {
	fs := NewShadowFS()
	a, _ := fs.OpenFile("a")
	b, _ := fs.OpenFile("b")
	if fs.OpenHandles() != 2 {
		t.Fatalf("OpenHandles = %d, want 2", fs.OpenHandles())
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err == nil {
		t.Fatal("double close succeeded")
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if fs.OpenHandles() != 0 {
		t.Fatalf("OpenHandles = %d after closes, want 0", fs.OpenHandles())
	}
}

func TestShadowSeekAndReadAtSemantics(t *testing.T) {
	fs := NewShadowFS()
	f, _ := fs.OpenFile("x")
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if pos, err := f.Seek(1, io.SeekStart); err != nil || pos != 1 {
		t.Fatalf("Seek = %d, %v", pos, err)
	}
	buf := make([]byte, 2)
	if n, err := f.Read(buf); err != nil || string(buf[:n]) != "el" {
		t.Fatalf("Read = %q, %v", buf[:n], err)
	}
	// Short ReadAt at EOF behaves like os.File.
	n, err := f.ReadAt(make([]byte, 10), 3)
	if n != 2 || err != io.EOF {
		t.Fatalf("short ReadAt = %d, %v; want 2, io.EOF", n, err)
	}
}
