package fault

import (
	"encoding/json"
	"net/http"
)

// Handler returns the /failpoints admin handler:
//
//	GET              list armed failpoints (JSON)
//	POST ?site=S&policy=P   arm S with policy P ("off" disarms)
//	DELETE ?site=S   disarm S; without site, disarm everything
//
// Policies are the Arm specs: error, error-once, error-every=N,
// torn=N, crash, off.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			writeJSON(w, http.StatusOK, List())
		case http.MethodPost, http.MethodPut:
			site := r.FormValue("site")
			policy := r.FormValue("policy")
			if site == "" || policy == "" {
				http.Error(w, "need site= and policy= parameters", http.StatusBadRequest)
				return
			}
			if err := Arm(site, policy); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			writeJSON(w, http.StatusOK, List())
		case http.MethodDelete:
			if site := r.URL.Query().Get("site"); site != "" {
				Disarm(site)
			} else {
				DisarmAll()
			}
			writeJSON(w, http.StatusOK, List())
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // response-writer errors are the client's problem
}
