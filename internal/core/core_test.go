package core

import (
	"strings"
	"testing"

	"repro/internal/oodb"
)

// newTankSystem opens an in-memory system with a monitored Tank class
// whose fill/drain methods give rule sets something real to trigger
// on, so the closed-world analysis sees them in the dictionary.
func newTankSystem(t *testing.T, opts Options) *System {
	t.Helper()
	sys, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sys.Close() })
	tank := oodb.NewClass("Tank", oodb.Attr{Name: "level", Type: oodb.TInt})
	tank.Monitored = true
	for _, m := range []string{"fill", "drain"} {
		tank.Method(m, func(ctx *oodb.Ctx, self *oodb.Object, args []any) (any, error) {
			return nil, nil
		})
	}
	if err := sys.RegisterClass(tank); err != nil {
		t.Fatal(err)
	}
	return sys
}

const cycleSrc = `
rule PingA {
    prio 5;
    decl Tank *t;
    event after t->fill();
    action imm t->drain();
};

rule PongB {
    prio 4;
    decl Tank *t;
    event before t->drain();
    action imm t->fill();
};
`

// TestStrictRulesRejectsCycle: under Options.StrictRules a load whose
// addition forms an immediate-coupling cycle is refused wholesale —
// nothing registers — while the same set with a justified lint:allow
// loads.
func TestStrictRulesRejectsCycle(t *testing.T) {
	sys := newTankSystem(t, Options{StrictRules: true})

	_, err := sys.LoadRules(cycleSrc)
	if err == nil {
		t.Fatal("strict load of a rule cycle succeeded")
	}
	for _, want := range []string{"rule-set analysis rejects load", "rule cycle PingA -> PongB -> PingA"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error missing %q:\n%v", want, err)
		}
	}

	// The refusal must have registered nothing: re-loading the same
	// rule names with a justification attached succeeds (a leftover
	// PingA would collide).
	suppressed := "# lint:allow termination the plant interlock bounds this loop\n" + strings.TrimLeft(cycleSrc, "\n")
	loaded, err := sys.LoadRules(suppressed)
	if err != nil {
		t.Fatalf("suppressed cycle refused: %v", err)
	}
	if len(loaded.Rules) != 2 {
		t.Errorf("loaded %d rules, want 2", len(loaded.Rules))
	}
}

// TestStrictRulesRejectsUnknownMethod: the closed world built from the
// data dictionary turns a trigger on an unregistered method into a
// reachability error.
func TestStrictRulesRejectsUnknownMethod(t *testing.T) {
	sys := newTankSystem(t, Options{StrictRules: true})
	_, err := sys.LoadRules(`
rule Ghost {
    prio 1;
    decl Tank *t;
    event after t->nosuch();
    action imm abort "never";
};
`)
	if err == nil || !strings.Contains(err.Error(), "not registered in the data dictionary") {
		t.Fatalf("unknown method not rejected, err = %v", err)
	}
}

// TestLoadRulesMaintainsCascadeBound: an acyclic set installs its
// static depth bound on the engine; a later load that closes a cycle
// clears it, leaving only the configured ceiling.
func TestLoadRulesMaintainsCascadeBound(t *testing.T) {
	sys := newTankSystem(t, Options{})
	_, err := sys.LoadRules(`
rule ChainA {
    prio 5;
    decl Tank *t;
    event after t->fill();
    action imm t->drain();
};

rule ChainB {
    prio 4;
    decl Tank *t;
    event after t->drain();
    action imm abort "stop";
};
`)
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Engine.CascadeBound(); got != 2 {
		t.Errorf("CascadeBound() = %d after 2-rule chain, want 2", got)
	}

	if _, err := sys.LoadRules(`
rule CycleC {
    prio 3;
    decl Tank *t;
    event before t->drain();
    action imm t->fill();
};
`); err != nil {
		t.Fatal(err)
	}
	if got := sys.Engine.CascadeBound(); got != 0 {
		t.Errorf("CascadeBound() = %d after cycle load, want 0 (cleared)", got)
	}

	res := sys.RuleAnalysis()
	if len(res.Cycles) != 1 {
		t.Fatalf("RuleAnalysis found %d cycles, want 1", len(res.Cycles))
	}
	if !res.HasErrors() {
		t.Error("immediate cycle did not surface as an error")
	}
	// Cross-load edges: ChainA (load 1) triggers CycleC (load 2).
	if n := res.Graph.Node("ChainA"); n == nil || !n.InCycle {
		t.Error("ChainA not marked in-cycle across loads")
	}
}
