package core

import (
	"context"
	"errors"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/eca"
	"repro/internal/fault"
	"repro/internal/governor"
)

// soakDuration scales the overload soak to how it was invoked: 5s
// under -short (the CI soak), REACH_SOAK (e.g. 60s via `make soak`)
// when set, and a 2s sanity pass in a plain `go test ./...` so the
// tier-1 suite stays fast.
func soakDuration() time.Duration {
	if testing.Short() {
		return 5 * time.Second
	}
	if s := os.Getenv("REACH_SOAK"); s != "" {
		if d, err := time.ParseDuration(s); err == nil && d > 0 {
			return d
		}
		return 60 * time.Second
	}
	return 2 * time.Second
}

// TestOverloadSoak runs a persistent system under sustained overload
// with faults armed and released in waves: writers hammer a slow
// detached rule while a chaos loop repeatedly breaks the checkpointer
// (fault.SiteCkptMaster) — storage backpressure the governor must
// translate into degradation — and periodically escalates a synthetic
// resource to Shedding. The soak asserts the system neither wedges
// nor leaks: writes keep committing (or being refused cleanly) in
// every wave, reads always work, the heap stays bounded, and after
// the faults stop the governor recovers to healthy, a checkpoint
// succeeds, and the graceful shutdown sequence completes cleanly.
func TestOverloadSoak(t *testing.T) {
	dur := soakDuration()
	dir := t.TempDir()
	sys, err := Open(Options{
		Dir: dir,
		Governor: governor.Options{
			Hysteresis:    100 * time.Millisecond,
			AdmitDeadline: 5 * time.Millisecond,
			Interval:      time.Millisecond,
		},
		Engine: eca.Options{Workers: 2, Queue: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	t.Cleanup(func() {
		fault.DisarmAll()
		if !closed {
			_ = sys.Close()
		}
	})
	registerTank(t, sys, 2*time.Millisecond)
	obj := mkTank(t, sys)
	var esc atomic.Int64
	sys.Governor.Register("test-escalation", esc.Load, governor.Levels{Degraded: 1, Shedding: 2})

	var committed, refused, reads atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch err := fire(sys, obj); {
				case err == nil:
					committed.Add(1)
				case errors.Is(err, governor.ErrOverloaded):
					refused.Add(1)
				default:
					t.Errorf("soak writer: %v", err)
					return
				}
			}
		}()
	}
	// A reader: never admission-controlled, must work at every rung.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tx := sys.Begin()
			if _, err := sys.DB.Get(tx, obj, "level"); err != nil {
				t.Errorf("soak reader: %v", err)
				_ = tx.Abort() // secondary to the reported error
				return
			}
			if err := tx.Commit(); err != nil {
				t.Errorf("soak reader commit: %v", err)
				return
			}
			reads.Add(1)
			time.Sleep(time.Millisecond)
		}
	}()

	// Chaos waves: break the checkpointer for a third of each wave
	// (three failed checkpoints flip the degraded flag the governor
	// watches), escalate to Shedding for another third, then lift
	// everything and let the system walk back down.
	wave := dur / 4
	if wave < 200*time.Millisecond {
		wave = 200 * time.Millisecond
	}
	sawDegraded, sawShedding := false, false
	var ms runtime.MemStats
	deadline := time.Now().Add(dur)
	for time.Now().Before(deadline) {
		if err := fault.Arm(fault.SiteCkptMaster, "error"); err != nil {
			t.Fatal(err)
		}
		// Each attempt commits a write first so the WAL has grown and
		// the checkpoint cannot take the idle short-circuit before the
		// fault site. A plain Begin bypasses admission control, so the
		// poke lands at every rung of the ladder. One nil is tolerated:
		// a background checkpoint already past the fault site when the
		// policy armed can complete and briefly make an attempt idle.
		failed := 0
		for i := 0; i < 4; i++ {
			tx := sys.Begin()
			if err := sys.DB.Set(tx, obj, "level", time.Now().UnixNano()); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			if err := sys.DB.Checkpoint(); err != nil {
				failed++
			}
		}
		if failed < 3 {
			t.Errorf("only %d/4 checkpoints failed with ckpt.master armed", failed)
		}
		spin(t, sys, wave/3, &sawDegraded, &sawShedding)
		esc.Store(2)
		spin(t, sys, wave/3, &sawDegraded, &sawShedding)
		esc.Store(0)
		fault.Disarm(fault.SiteCkptMaster)
		spin(t, sys, wave/3, &sawDegraded, &sawShedding)
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > 512<<20 {
			t.Fatalf("heap grew to %d MiB mid-soak", ms.HeapAlloc>>20)
		}
	}
	close(stop)
	wg.Wait()

	if !sawDegraded || !sawShedding {
		t.Errorf("soak never exercised the ladder: degraded=%v shedding=%v", sawDegraded, sawShedding)
	}
	if committed.Load() == 0 || reads.Load() == 0 {
		t.Fatalf("no forward progress: committed=%d reads=%d", committed.Load(), reads.Load())
	}
	// The faults are gone: a checkpoint succeeds (clearing the
	// degraded flag) and the governor recovers to healthy.
	if err := sys.DB.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after disarm: %v", err)
	}
	waitFor(t, "recovery to healthy", func() bool {
		return sys.Governor.State() == governor.Healthy
	})
	t.Logf("soak %v: committed=%d refused=%d reads=%d sheds=%v",
		dur, committed.Load(), refused.Load(), reads.Load(), sys.Governor.Sheds())

	// Graceful shutdown: admissions refused, executor drained, final
	// checkpoint taken, store closed — and the directory reopens.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sys.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown after soak: %v", err)
	}
	closed = true
	reopened, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen after soak shutdown: %v", err)
	}
	if err := reopened.Close(); err != nil {
		t.Fatal(err)
	}
}

// spin samples the governor while the chaos wave holds, recording
// which rungs of the ladder the soak visited.
func spin(t *testing.T, sys *System, d time.Duration, sawDegraded, sawShedding *bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		switch st := sys.Governor.State(); {
		case st >= governor.Shedding:
			*sawShedding = true
		case st >= governor.Degraded:
			*sawDegraded = true
		}
		time.Sleep(time.Millisecond)
	}
}
