package core

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/eca"
	"repro/internal/governor"
	"repro/internal/oodb"
)

// overloadRules triggers one rule per coupling mode off the same
// monitored method, so a single fill() exercises every rung of the
// governor's shed ladder at once.
const overloadRules = `
rule ImmTick {
    prio 5;
    decl Tank *t;
    event after t->fill();
    action imm t->noop();
};

rule DefTick {
    prio 4;
    decl Tank *t;
    event after t->fill();
    action deferred t->noop();
};

rule DetTick {
    prio 3;
    decl Tank *t;
    event after t->fill();
    action detached t->slow();
};
`

// newOverloadSystem opens an in-memory system at test-scale governor
// timings with a Tank class whose slow() method simulates expensive
// detached rule work (slowBy per call).
func newOverloadSystem(t *testing.T, slowBy time.Duration, govOpts governor.Options, engineOpts eca.Options) *System {
	t.Helper()
	sys, err := Open(Options{Engine: engineOpts, Governor: govOpts})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sys.Close() })
	registerTank(t, sys, slowBy)
	return sys
}

// registerTank installs the monitored Tank class and the one-rule-per-
// coupling-mode set on an already-open system.
func registerTank(t *testing.T, sys *System, slowBy time.Duration) {
	t.Helper()
	tank := oodb.NewClass("Tank", oodb.Attr{Name: "level", Type: oodb.TInt})
	tank.Monitored = true
	// fill is a real write so commits append to the WAL — the soak's
	// checkpoint pressure depends on the log actually growing.
	var fills atomic.Int64
	tank.Method("fill", func(ctx *oodb.Ctx, self *oodb.Object, args []any) (any, error) {
		return nil, ctx.Set(self, "level", fills.Add(1))
	})
	tank.Method("noop", func(ctx *oodb.Ctx, self *oodb.Object, args []any) (any, error) {
		return nil, nil
	})
	tank.Method("slow", func(ctx *oodb.Ctx, self *oodb.Object, args []any) (any, error) {
		if slowBy > 0 {
			time.Sleep(slowBy)
		}
		return nil, nil
	})
	if err := sys.RegisterClass(tank); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.LoadRules(overloadRules); err != nil {
		t.Fatal(err)
	}
}

// mkTank creates one Tank object (bypassing admission — setup work).
func mkTank(t *testing.T, sys *System) *oodb.Object {
	t.Helper()
	tx := sys.Begin()
	obj, err := sys.DB.NewObject(tx, "Tank")
	if err != nil {
		t.Fatal(err)
	}
	// Rooted, so the tank is persistent: fill() commits then reach the
	// WAL, which the storage-backpressure assertions depend on — an
	// unrooted object's writes stay in memory and checkpoints are
	// idle no-ops.
	if err := sys.DB.SetRoot(tx, "tank", obj); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return obj
}

// fire raises one monitored fill() in its own admitted transaction —
// the workload unit of every overload test here.
func fire(sys *System, obj *oodb.Object) error {
	tx, err := sys.BeginTxn()
	if err != nil {
		return err
	}
	if _, err := sys.DB.Invoke(tx, obj, "fill"); err != nil {
		_ = tx.Abort() // secondary to the reported error
		return err
	}
	return tx.Commit()
}

// waitFor polls cond up to 5s; governor state transitions are driven
// by the real-clock evaluation loop, so tests wait rather than step.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestOverloadLadderShedsInPriorityOrder walks the governor through
// its states with a synthetic resource and verifies the enforcement
// ladder exactly: Degraded sheds only detached firings; Shedding also
// sheds deferred batches and times out new writers with ErrOverloaded;
// ReadOnly rejects writers outright while reads keep working; and
// immediate rules fire at every rung — they are never shed. After the
// pressure drops the system recovers to healthy and admits again.
func TestOverloadLadderShedsInPriorityOrder(t *testing.T) {
	sys := newOverloadSystem(t, 0, governor.Options{
		Hysteresis:    50 * time.Millisecond,
		AdmitDeadline: 10 * time.Millisecond,
		Interval:      2 * time.Millisecond,
	}, eca.Options{Workers: 2, Queue: 64})
	obj := mkTank(t, sys)
	var load atomic.Int64
	sys.Governor.Register("test-load", load.Load,
		governor.Levels{Degraded: 1, Shedding: 2, ReadOnly: 3})
	waitState := func(want governor.State) {
		waitFor(t, "state "+want.String(), func() bool { return sys.Governor.State() == want })
	}
	immFired := func() uint64 { return sys.Engine.Stats().ImmediateFired }

	// Healthy: all three coupling modes run, nothing sheds.
	for i := 0; i < 3; i++ {
		if err := fire(sys, obj); err != nil {
			t.Fatalf("healthy fire: %v", err)
		}
	}
	waitFor(t, "detached drain", func() bool { return sys.Engine.DetachedBacklog() == 0 })
	if s := sys.Governor.Sheds(); s != [3]uint64{} {
		t.Fatalf("sheds while healthy: %v", s)
	}
	if got := immFired(); got != 3 {
		t.Fatalf("ImmediateFired = %d after 3 fills, want 3", got)
	}

	// Degraded: detached firings shed (dead-lettered), deferred and
	// immediate still run, writers still admitted.
	load.Store(1)
	waitState(governor.Degraded)
	for i := 0; i < 3; i++ {
		if err := fire(sys, obj); err != nil {
			t.Fatalf("degraded fire refused: %v", err)
		}
	}
	s := sys.Governor.Sheds()
	if s[governor.ClassDetached] == 0 {
		t.Error("degraded: no detached sheds")
	}
	if s[governor.ClassDeferred] != 0 || s[governor.ClassWriter] != 0 {
		t.Errorf("degraded shed past the first rung: %v", s)
	}
	if got := immFired(); got != 6 {
		t.Errorf("ImmediateFired = %d after 6 fills, want 6 (immediate is never shed)", got)
	}

	// Shedding: a transaction admitted earlier has its deferred batch
	// shed at commit; new writers park, then fail with ErrOverloaded.
	tx, err := sys.BeginTxn()
	if err != nil {
		t.Fatalf("degraded admission refused: %v", err)
	}
	if _, err := sys.DB.Invoke(tx, obj, "fill"); err != nil {
		t.Fatal(err)
	}
	load.Store(2)
	waitState(governor.Shedding)
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit under shedding: %v", err)
	}
	s = sys.Governor.Sheds()
	if s[governor.ClassDeferred] == 0 {
		t.Error("shedding: deferred batch not shed at commit")
	}
	if _, err := sys.BeginTxn(); !errors.Is(err, governor.ErrOverloaded) {
		t.Fatalf("BeginTxn under shedding = %v, want ErrOverloaded", err)
	}
	if s = sys.Governor.Sheds(); s[governor.ClassWriter] == 0 {
		t.Error("shedding: refused writer not counted")
	}
	if got := immFired(); got != 7 {
		t.Errorf("ImmediateFired = %d after 7 fills, want 7", got)
	}

	// ReadOnly: writers rejected outright; reads keep working.
	load.Store(3)
	waitState(governor.ReadOnly)
	if _, err := sys.BeginTxn(); !errors.Is(err, governor.ErrOverloaded) {
		t.Fatalf("BeginTxn under read-only = %v, want ErrOverloaded", err)
	}
	rtx := sys.Begin()
	if _, err := sys.DB.NewObject(rtx, "Tank"); err != nil {
		t.Fatalf("internal txn blocked under read-only: %v", err)
	}
	if err := rtx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Recovery: drop the pressure; within the hysteresis window the
	// state walks back to healthy and admissions resume.
	load.Store(0)
	waitState(governor.Healthy)
	tx, err = sys.BeginTxn()
	if err != nil {
		t.Fatalf("admission after recovery: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// The sheds were recorded on the governor-shed dead-letter path,
	// visible to operators.
	found := false
	for _, dl := range sys.Engine.DeadLetters() {
		if dl.Reason == "governor-shed" && dl.Rule == "DetTick" {
			found = true
		}
	}
	if !found {
		t.Error("no governor-shed dead letter for DetTick")
	}
}

// TestOverloadHammer runs 8 writers flat out against a 2-worker
// executor whose detached rule is slow — offered load far beyond 2x
// what the pool sustains — and asserts the governor's contract under
// real concurrency. Phase 1 (pool saturation): the governor degrades
// and sheds detached firings — and nothing else; writers keep
// committing. Phase 2 (an escalating resource pushes to Shedding
// while the hammer still runs): deferred batches and then new writers
// are shed too, strictly after detached sheds existed. Throughout:
// the detached backlog and heap stay bounded, immediate rules fire
// for every admitted write (never shed), and once pressure drops the
// system returns to healthy within the hysteresis window.
func TestOverloadHammer(t *testing.T) {
	phase1 := time.Second
	if testing.Short() {
		phase1 = 200 * time.Millisecond
	}
	const (
		hammerers = 8
		workers   = 2
		queue     = 4
	)
	sys := newOverloadSystem(t, 3*time.Millisecond, governor.Options{
		Hysteresis:    100 * time.Millisecond,
		AdmitDeadline: 5 * time.Millisecond,
		Interval:      250 * time.Microsecond,
	}, eca.Options{Workers: workers, Queue: queue})
	obj := mkTank(t, sys)
	// Retune the backlog watermarks so saturation dwells in Degraded:
	// the first rung engages (detached sheds) and self-limits the
	// backlog, so the Shedding rung is never reached from this
	// resource alone — writers stay admitted at 2x+ offered load.
	if !sys.Governor.SetLevels("detached-backlog", governor.Levels{Degraded: 2, Shedding: 30}) {
		t.Fatal("detached-backlog resource not registered")
	}
	// The escalation lever for phase 2: a resource (standing in for
	// WAL lag or a failing checkpointer) that outruns what shedding
	// detached work can relieve.
	var esc atomic.Int64
	sys.Governor.Register("test-escalation", esc.Load, governor.Levels{Degraded: 1, Shedding: 2})

	var committed, refused atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < hammerers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch err := fire(sys, obj); {
				case err == nil:
					committed.Add(1)
				case errors.Is(err, governor.ErrOverloaded):
					refused.Add(1)
				default:
					t.Errorf("fire: %v", err)
					return
				}
			}
		}()
	}

	// Phase 1: sample the invariants while only the pool is saturated.
	var maxBacklog int64
	sawDegraded := false
	deadline := time.Now().Add(phase1)
	for time.Now().Before(deadline) {
		s := sys.Governor.Sheds()
		if s[governor.ClassDeferred] != 0 || s[governor.ClassWriter] != 0 {
			t.Fatalf("shed past the detached rung without escalation: %v", s)
		}
		if b := sys.Engine.DetachedBacklog(); b > maxBacklog {
			maxBacklog = b
		}
		if sys.Governor.State() >= governor.Degraded {
			sawDegraded = true
		}
		time.Sleep(time.Millisecond)
	}
	if !sawDegraded {
		t.Fatal("sustained 2x+ load never drove the governor past healthy")
	}
	s := sys.Governor.Sheds()
	if s[governor.ClassDetached] == 0 {
		t.Fatal("pool saturation produced no detached sheds")
	}
	if committed.Load() == 0 {
		t.Fatal("no writes admitted while degraded: goodput collapsed")
	}

	// Phase 2: escalate to Shedding while the hammer still runs. A
	// transaction admitted beforehand has its deferred batch shed at
	// commit; the hammer's new writers park and are refused.
	tx, err := sys.BeginTxn()
	if err != nil {
		t.Fatalf("admission while degraded: %v", err)
	}
	if _, err := sys.DB.Invoke(tx, obj, "fill"); err != nil {
		t.Fatal(err)
	}
	esc.Store(2)
	waitFor(t, "shedding", func() bool { return sys.Governor.State() >= governor.Shedding })
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit under shedding: %v", err)
	}
	waitFor(t, "deferred and writer sheds", func() bool {
		s := sys.Governor.Sheds()
		return s[governor.ClassDeferred] > 0 && s[governor.ClassWriter] > 0
	})

	// Wind down: drop the pressure, stop the hammer.
	esc.Store(0)
	close(stop)
	wg.Wait()
	s = sys.Governor.Sheds()

	// Bounded backlog: queued work + running workers + parked
	// submitters is the ceiling the governor enforces; without it the
	// backlog tracks offered load and grows without bound.
	if limit := int64(queue + workers + hammerers); maxBacklog > limit {
		t.Errorf("detached backlog reached %d, governor bound is %d", maxBacklog, limit)
	}
	// Zero immediate sheds: every admitted fill fired its immediate
	// rule. (>= because refused transactions never got far enough to
	// fire, and the phase-2 probe transaction adds one.)
	if got, want := sys.Engine.Stats().ImmediateFired, uint64(committed.Load()); got < want {
		t.Errorf("ImmediateFired = %d < %d committed writes: immediate work was shed", got, want)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > 512<<20 {
		t.Errorf("heap grew to %d MiB under overload", ms.HeapAlloc>>20)
	}

	// Recovery: the backlog drains in tens of milliseconds; healthy
	// requires the raw state to hold for the 100ms hysteresis window.
	waitFor(t, "recovery to healthy", func() bool {
		return sys.Governor.State() == governor.Healthy
	})
	tx, err = sys.BeginTxn()
	if err != nil {
		t.Fatalf("admission after recovery: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	t.Logf("committed=%d refused=%d sheds=%v maxBacklog=%d",
		committed.Load(), refused.Load(), s, maxBacklog)
}

// TestErrOverloadedRetryPath exercises the client contract: a writer
// refused with ErrOverloaded retries with backoff and succeeds once
// the governor recovers; the error is matched with errors.Is.
func TestErrOverloadedRetryPath(t *testing.T) {
	sys := newOverloadSystem(t, 0, governor.Options{
		Hysteresis:    20 * time.Millisecond,
		AdmitDeadline: 5 * time.Millisecond,
		Interval:      2 * time.Millisecond,
	}, eca.Options{Workers: 1, Queue: 4})
	var load atomic.Int64
	sys.Governor.Register("test-load", load.Load, governor.Levels{Shedding: 1})

	load.Store(1)
	waitFor(t, "shedding", func() bool { return sys.Governor.State() == governor.Shedding })
	_, err := sys.BeginTxn()
	if !errors.Is(err, governor.ErrOverloaded) {
		t.Fatalf("BeginTxn = %v, want ErrOverloaded", err)
	}

	// The retry loop a well-behaved client runs: back off, retry,
	// succeed after the governor recovers.
	load.Store(0)
	var tx interface{ Commit() error }
	waitFor(t, "retry to succeed", func() bool {
		got, err := sys.BeginTxn()
		if errors.Is(err, governor.ErrOverloaded) {
			return false
		}
		if err != nil {
			t.Fatalf("retry failed with non-overload error: %v", err)
		}
		tx = got
		return true
	})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownRefusesNewAdmissions covers the drain ordering contract:
// once shutdown begins the governor turns writers away with
// ErrShutdown (not ErrOverloaded — this refusal is permanent, retrying
// is pointless) while internal transactions still run, so the drain
// and final checkpoint proceed unobstructed.
func TestShutdownRefusesNewAdmissions(t *testing.T) {
	sys := newOverloadSystem(t, 0, governor.Options{}, eca.Options{})
	sys.Governor.BeginShutdown()
	_, err := sys.BeginTxn()
	if !errors.Is(err, governor.ErrShutdown) {
		t.Fatalf("BeginTxn after BeginShutdown = %v, want ErrShutdown", err)
	}
	if errors.Is(err, governor.ErrOverloaded) {
		t.Fatal("shutdown refusal must not read as retryable overload")
	}
	tx := sys.Begin() // internal work keeps running during the drain
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}
