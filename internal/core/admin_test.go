package core

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/eca"
	"repro/internal/event"
	"repro/internal/oodb"
)

// newFailingSystem opens an in-memory system with a monitored class
// and one permanently failing detached rule, fires it past its
// breaker threshold, and returns the system plus the admin mux.
func newFailingSystem(t *testing.T) (*System, *http.ServeMux, *oodb.Object) {
	t.Helper()
	sys, err := Open(Options{Engine: eca.Options{BreakerThreshold: 2}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sys.Close() })
	probe := oodb.NewClass("Probe", oodb.Attr{Name: "n", Type: oodb.TInt})
	probe.Monitored = true
	probe.Method("poke", func(ctx *oodb.Ctx, self *oodb.Object, args []any) (any, error) {
		return nil, nil
	})
	if err := sys.RegisterClass(probe); err != nil {
		t.Fatal(err)
	}
	tx := sys.Begin()
	obj, err := sys.DB.NewObject(tx, "Probe")
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Engine.AddRule(&eca.Rule{
		Name:       "failing",
		EventKey:   event.MethodSpec{Class: "Probe", Method: "poke", When: event.After}.Key(),
		ActionMode: eca.Detached,
		Action:     func(rc *eca.RuleCtx) error { return errors.New("always fails") },
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		tx := sys.Begin()
		if _, err := sys.DB.Invoke(tx, obj, "poke"); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	sys.Engine.WaitDetached()
	return sys, sys.Admin().Mux(), obj
}

// TestAdminRuleRobustnessEndpoints drives the executor's admin
// surface end to end: breakers listed and re-armable, dead letters
// listed and clearable, and the executor metric families present in
// the Prometheus exposition at /metrics.
func TestAdminRuleRobustnessEndpoints(t *testing.T) {
	_, mux, _ := newFailingSystem(t)

	get := func(path string) *httptest.ResponseRecorder {
		t.Helper()
		w := httptest.NewRecorder()
		mux.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
		if w.Code != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", path, w.Code, w.Body)
		}
		return w
	}
	post := func(path string, wantCode int) *httptest.ResponseRecorder {
		t.Helper()
		w := httptest.NewRecorder()
		mux.ServeHTTP(w, httptest.NewRequest(http.MethodPost, path, nil))
		if w.Code != wantCode {
			t.Fatalf("POST %s = %d, want %d: %s", path, w.Code, wantCode, w.Body)
		}
		return w
	}

	var breakers struct {
		Breakers []eca.BreakerState `json:"breakers"`
	}
	if err := json.Unmarshal(get("/rules/breakers").Body.Bytes(), &breakers); err != nil {
		t.Fatal(err)
	}
	if len(breakers.Breakers) != 1 || !breakers.Breakers[0].Open || breakers.Breakers[0].Rule != "failing" {
		t.Fatalf("breakers = %+v, want rule 'failing' open", breakers.Breakers)
	}

	var dead struct {
		DeadLetter []eca.DeadLetter `json:"deadletter"`
	}
	if err := json.Unmarshal(get("/rules/deadletter").Body.Bytes(), &dead); err != nil {
		t.Fatal(err)
	}
	if len(dead.DeadLetter) != 2 || dead.DeadLetter[0].Rule != "failing" {
		t.Fatalf("deadletter = %+v, want two entries for 'failing'", dead.DeadLetter)
	}

	metrics := get("/metrics").Body.String()
	for _, name := range []string{
		"reach_rule_retries_total",
		"reach_rule_breaker_trips_total",
		"reach_rule_breaker_open",
		"reach_rule_deadletter_total",
		"reach_rule_rejected_total",
		"reach_executor_queue_depth",
	} {
		if !strings.Contains(metrics, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}

	post("/rules/breakers?rearm=nope", http.StatusNotFound)
	post("/rules/breakers?rearm=failing", http.StatusOK)
	if err := json.Unmarshal(get("/rules/breakers").Body.Bytes(), &breakers); err != nil {
		t.Fatal(err)
	}
	if breakers.Breakers[0].Open {
		t.Fatalf("breaker still open after rearm: %+v", breakers.Breakers)
	}

	post("/rules/deadletter", http.StatusBadRequest)
	var cleared struct {
		Cleared int `json:"cleared"`
	}
	if err := json.Unmarshal(post("/rules/deadletter?action=clear", http.StatusOK).Body.Bytes(), &cleared); err != nil {
		t.Fatal(err)
	}
	if cleared.Cleared != 2 {
		t.Fatalf("cleared = %d, want 2", cleared.Cleared)
	}
	if err := json.Unmarshal(get("/rules/deadletter").Body.Bytes(), &dead); err != nil {
		t.Fatal(err)
	}
	if len(dead.DeadLetter) != 0 {
		t.Fatalf("deadletter not empty after clear: %+v", dead.DeadLetter)
	}
}

// TestAdminCheckpointEndpoint drives the durability admin surface on
// a persistent system: GET reports health, POST takes a checkpoint,
// and the checkpoint metric families appear at /metrics.
func TestAdminCheckpointEndpoint(t *testing.T) {
	sys, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sys.Close() })
	probe := oodb.NewClass("Probe", oodb.Attr{Name: "n", Type: oodb.TInt})
	if err := sys.RegisterClass(probe); err != nil {
		t.Fatal(err)
	}
	tx := sys.Begin()
	obj, err := sys.DB.NewObject(tx, "Probe")
	if err != nil {
		t.Fatal(err)
	}
	// Rooted, so the object is persistent and the commit reaches the
	// WAL — otherwise the checkpoint below would be an idle no-op.
	if err := sys.DB.SetRoot(tx, "probe", obj); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	mux := sys.Admin().Mux()

	w := httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/checkpoint", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("POST /checkpoint = %d: %s", w.Code, w.Body)
	}
	var posted struct {
		Checkpointed bool `json:"checkpointed"`
		Checkpoint   struct {
			Checkpoints uint64 `json:"checkpoints"`
			Degraded    bool   `json:"degraded"`
		} `json:"checkpoint"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &posted); err != nil {
		t.Fatal(err)
	}
	if !posted.Checkpointed || posted.Checkpoint.Checkpoints == 0 || posted.Checkpoint.Degraded {
		t.Fatalf("POST /checkpoint body = %+v", posted)
	}

	w = httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/checkpoint", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("GET /checkpoint = %d: %s", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), "\"checkpoints\"") {
		t.Fatalf("GET /checkpoint body missing health: %s", w.Body)
	}

	w = httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	for _, name := range []string{
		"reach_checkpoint_total", "reach_checkpoint_degraded",
		"reach_wal_segments", "reach_wal_segment_rotations_total",
	} {
		if !strings.Contains(w.Body.String(), name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
}
