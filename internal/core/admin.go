package core

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/eca"
	"repro/internal/oodb"
)

// deadLetterHandler serves the executor's dead-letter queue:
//
//	GET  /rules/deadletter              list entries, oldest first
//	POST /rules/deadletter?action=clear empty the queue
func deadLetterHandler(e *eca.Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			_, deadEvicted := e.EvictedCounts()
			writeAdminJSON(w, map[string]any{
				"deadletter": e.DeadLetters(),
				"evicted":    deadEvicted,
			})
		case http.MethodPost:
			if r.FormValue("action") != "clear" {
				http.Error(w, "unsupported action (want action=clear)", http.StatusBadRequest)
				return
			}
			n := e.ClearDeadLetters()
			writeAdminJSON(w, map[string]any{"cleared": n})
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}

// breakerHandler serves the per-rule circuit breakers:
//
//	GET  /rules/breakers              snapshot every breaker
//	POST /rules/breakers?rearm=NAME   close NAME's breaker
func breakerHandler(e *eca.Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			breakerEvicted, _ := e.EvictedCounts()
			writeAdminJSON(w, map[string]any{
				"breakers": e.Breakers(),
				"evicted":  breakerEvicted,
			})
		case http.MethodPost:
			name := r.FormValue("rearm")
			if name == "" {
				http.Error(w, "missing rearm=<rule> parameter", http.StatusBadRequest)
				return
			}
			if !e.RearmRule(name) {
				http.Error(w, fmt.Sprintf("rule %q has no breaker record", name), http.StatusNotFound)
				return
			}
			writeAdminJSON(w, map[string]any{"rearmed": name})
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}

// checkpointHandler serves the durability surface:
//
//	GET  /checkpoint   checkpoint health (totals, degraded flag, last error)
//	POST /checkpoint   take a fuzzy checkpoint now
func checkpointHandler(db *oodb.DB) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			writeAdminJSON(w, map[string]any{"checkpoint": db.CheckpointHealth()})
		case http.MethodPost:
			if err := db.Checkpoint(); err != nil {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusInternalServerError)
				_ = json.NewEncoder(w).Encode(map[string]any{
					"error":      err.Error(),
					"checkpoint": db.CheckpointHealth(),
				})
				return
			}
			writeAdminJSON(w, map[string]any{
				"checkpointed": true,
				"checkpoint":   db.CheckpointHealth(),
			})
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}

func writeAdminJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
