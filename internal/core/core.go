// Package core assembles the REACH system: the object database, the
// rule engine wired through the sentry dispatcher, and the query
// processor — the integrated architecture of the paper, in which the
// active capabilities are built into the OODBMS rather than layered
// on top of it.
package core

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/clock"
	"repro/internal/eca"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/oodb"
	"repro/internal/query"
	"repro/internal/rules"
	"repro/internal/rules/analysis"
	"repro/internal/txn"
)

// Options configure a System.
type Options struct {
	// Dir is the storage directory; empty means in-memory.
	Dir string
	// Clock is the time source (default: real time).
	Clock clock.Clock
	// DB tunes the object database.
	DB oodb.Options
	// Engine tunes the rule engine.
	Engine eca.Options
	// StrictRules gates LoadRules on the whole-ruleset interaction
	// analysis: a source whose addition would leave the accumulated
	// rule set with unsuppressed termination, confluence-error, or
	// reachability errors is refused before anything registers.
	StrictRules bool
}

// System is a running REACH instance.
type System struct {
	DB     *oodb.DB
	Engine *eca.Engine
	Query  *query.Processor
	// Metrics is the registry every subsystem (sentry, engine,
	// transaction manager, storage) binds its counters into.
	Metrics *obs.Registry
	// Tracer retains recent event-lifecycle traces.
	Tracer *obs.Tracer
	// Build identifies the running binary (also exposed as the
	// reach_build_info gauge).
	Build obs.BuildInfo

	strictRules bool

	// Loaded rule sources accumulate so the whole-ruleset analysis
	// sees every LoadRules call as one interacting set.
	ruleMu    sync.Mutex
	ruleSrcs  []ruleSource
	ruleLoads int
}

type ruleSource struct {
	name  string
	src   string
	decls []*rules.RuleDecl
}

// Open assembles and returns a System.
func Open(opts Options) (*System, error) {
	reg := opts.Engine.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	build := obs.RegisterBuildInfo(reg)
	fault.Instrument(reg)
	dbOpts := opts.DB
	if opts.Dir != "" {
		dbOpts.Dir = opts.Dir
	}
	if opts.Clock != nil {
		dbOpts.Clock = opts.Clock
	}
	dbOpts.Storage.Metrics = reg
	if opts.Dir != "" {
		// Persistent systems run the background checkpointer so the WAL
		// is reclaimed and restart stays fast without operator action.
		dbOpts.Storage.Checkpoint.Auto = true
		if opts.Clock != nil {
			dbOpts.Storage.Checkpoint.Clock = opts.Clock
		}
	}
	db, err := oodb.Open(dbOpts)
	if err != nil {
		return nil, err
	}
	engineOpts := opts.Engine
	engineOpts.Metrics = reg
	engine := eca.New(db, engineOpts)
	return &System{
		DB:          db,
		Engine:      engine,
		Query:       query.New(db, engine),
		Metrics:     reg,
		Tracer:      engine.Tracer(),
		Build:       build,
		strictRules: opts.StrictRules,
	}, nil
}

// Admin returns the HTTP observability surface over the system's
// registry and tracer, with a JSON system view contributed by the
// engine, sentry, and storage stats, plus the fault registry's
// /failpoints arming surface.
func (s *System) Admin() *obs.Admin {
	a := obs.NewAdmin(s.Metrics, s.Tracer, func() any {
		useful, useless, potential := s.Engine.Dispatcher().Stats()
		return map[string]any{
			"engine": s.Engine.Stats(),
			"sentry": map[string]uint64{
				"useful":    useful,
				"useless":   useless,
				"potential": potential,
			},
			"storage": s.DB.StorageStats(),
		}
	})
	a.Handle("/failpoints", fault.Handler())
	a.Handle("/rules/deadletter", deadLetterHandler(s.Engine))
	a.Handle("/rules/breakers", breakerHandler(s.Engine))
	a.Handle("/slowlog", s.Engine.SlowLog().Handler())
	a.Handle("/checkpoint", checkpointHandler(s.DB))
	return a
}

// Drain flips the rule engine into shutdown mode: new detached rule
// spawns are refused and the call waits (bounded by ctx) for every
// in-flight rule transaction. Close completes the shutdown.
func (s *System) Drain(ctx context.Context) error { return s.Engine.Drain(ctx) }

// Begin starts a top-level transaction.
func (s *System) Begin() *txn.Txn { return s.DB.Begin() }

// RegisterClass registers a class descriptor in the data dictionary.
func (s *System) RegisterClass(c *oodb.Class) error { return s.DB.Dictionary().Register(c) }

// LoadRules parses and registers a REACH rule-language source. Every
// load joins the accumulated rule set for whole-ruleset interaction
// analysis: under Options.StrictRules a load whose addition leaves
// the set with analysis errors is refused wholesale; otherwise the
// analysis only maintains the engine's static cascade-depth bound
// (cleared while the set has a termination cycle, so the configured
// ceiling alone bounds it).
func (s *System) LoadRules(src string) (*rules.Loaded, error) {
	decls, err := rules.Parse(src)
	if err != nil {
		return nil, err
	}
	// ruleMu guards only the source-list snapshot and commit; the
	// analysis, registration, and engine calls run outside it
	// (lockdiscipline: no cross-package call under a held mutex).
	s.ruleMu.Lock()
	s.ruleLoads++
	name := fmt.Sprintf("<load-%d>", s.ruleLoads)
	snapshot := append([]ruleSource(nil), s.ruleSrcs...)
	s.ruleMu.Unlock()
	next := ruleSource{name: name, src: src, decls: decls}
	res := s.analyze(append(snapshot, next))
	if s.strictRules && res.HasErrors() {
		var msgs []string
		for _, f := range res.Findings {
			if f.Severity == analysis.Error {
				msgs = append(msgs, f.String())
			}
		}
		return nil, fmt.Errorf("core: rule-set analysis rejects load:\n%s", strings.Join(msgs, "\n"))
	}
	loaded, err := rules.Load(s.Engine, src)
	if err != nil {
		return nil, err
	}
	s.ruleMu.Lock()
	s.ruleSrcs = append(s.ruleSrcs, next)
	s.ruleMu.Unlock()
	if len(res.Cycles) == 0 && res.DepthBound > 0 {
		s.Engine.SetCascadeBound(res.DepthBound)
	} else {
		s.Engine.SetCascadeBound(0)
	}
	return loaded, nil
}

// RuleAnalysis runs the whole-ruleset interaction analysis over every
// rule source loaded so far, against the live data dictionary (closed
// world): the triggering graph, termination cycles, confluence pairs,
// and unreachable rules.
func (s *System) RuleAnalysis() *analysis.Result {
	s.ruleMu.Lock()
	snapshot := append([]ruleSource(nil), s.ruleSrcs...)
	s.ruleMu.Unlock()
	return s.analyze(snapshot)
}

// analyze runs the interaction analysis over the given sources
// against the dictionary world.
func (s *System) analyze(srcs []ruleSource) *analysis.Result {
	az := analysis.New()
	for _, rs := range srcs {
		az.Add(rs.name, rs.src, rs.decls)
	}
	return az.Run(s.ruleWorld())
}

// ruleWorld closes the analysis world over the registered schema:
// every Class.method and Class.attr the dictionary knows.
func (s *System) ruleWorld() *analysis.World {
	w := &analysis.World{Methods: make(map[string]bool), Attrs: make(map[string]bool)}
	dict := s.DB.Dictionary()
	for _, name := range dict.Classes() {
		c, err := dict.Lookup(name)
		if err != nil {
			continue
		}
		for _, m := range c.MethodNames() {
			w.Methods[name+"."+m] = true
		}
		for _, a := range c.Attrs() {
			w.Attrs[name+"."+a.Name] = true
		}
	}
	return w
}

// Close shuts the engine's background goroutines down and closes the
// database.
func (s *System) Close() error {
	s.Engine.WaitDetached()
	s.Engine.Close()
	return s.DB.Close()
}
