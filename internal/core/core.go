// Package core assembles the REACH system: the object database, the
// rule engine wired through the sentry dispatcher, and the query
// processor — the integrated architecture of the paper, in which the
// active capabilities are built into the OODBMS rather than layered
// on top of it.
package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/clock"
	"repro/internal/eca"
	"repro/internal/fault"
	"repro/internal/governor"
	"repro/internal/obs"
	"repro/internal/oodb"
	"repro/internal/query"
	"repro/internal/rules"
	"repro/internal/rules/analysis"
	"repro/internal/txn"
)

// Options configure a System.
type Options struct {
	// Dir is the storage directory; empty means in-memory.
	Dir string
	// Clock is the time source (default: real time).
	Clock clock.Clock
	// DB tunes the object database.
	DB oodb.Options
	// Engine tunes the rule engine.
	Engine eca.Options
	// Governor tunes the overload governor (watermark hysteresis,
	// admission deadline, evaluation interval, or Disabled for the
	// ablation arm). Clock and Metrics are wired by Open.
	Governor governor.Options
	// StrictRules gates LoadRules on the whole-ruleset interaction
	// analysis: a source whose addition would leave the accumulated
	// rule set with unsuppressed termination, confluence-error, or
	// reachability errors is refused before anything registers.
	StrictRules bool
}

// System is a running REACH instance.
type System struct {
	DB     *oodb.DB
	Engine *eca.Engine
	Query  *query.Processor
	// Metrics is the registry every subsystem (sentry, engine,
	// transaction manager, storage) binds its counters into.
	Metrics *obs.Registry
	// Tracer retains recent event-lifecycle traces.
	Tracer *obs.Tracer
	// Build identifies the running binary (also exposed as the
	// reach_build_info gauge).
	Build obs.BuildInfo
	// Governor is the system-wide overload governor: every subsystem's
	// load gauges registered in one place, the health state machine
	// derived from them, and the admission gate new writers pass.
	Governor *governor.Governor

	strictRules bool

	// Loaded rule sources accumulate so the whole-ruleset analysis
	// sees every LoadRules call as one interacting set.
	ruleMu    sync.Mutex
	ruleSrcs  []ruleSource
	ruleLoads int
}

type ruleSource struct {
	name  string
	src   string
	decls []*rules.RuleDecl
}

// Open assembles and returns a System.
func Open(opts Options) (*System, error) {
	reg := opts.Engine.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	build := obs.RegisterBuildInfo(reg)
	fault.Instrument(reg)
	dbOpts := opts.DB
	if opts.Dir != "" {
		dbOpts.Dir = opts.Dir
	}
	if opts.Clock != nil {
		dbOpts.Clock = opts.Clock
	}
	dbOpts.Storage.Metrics = reg
	if opts.Dir != "" {
		// Persistent systems run the background checkpointer so the WAL
		// is reclaimed and restart stays fast without operator action.
		dbOpts.Storage.Checkpoint.Auto = true
		if opts.Clock != nil {
			dbOpts.Storage.Checkpoint.Clock = opts.Clock
		}
	}
	db, err := oodb.Open(dbOpts)
	if err != nil {
		return nil, err
	}
	engineOpts := opts.Engine
	engineOpts.Metrics = reg
	engine := eca.New(db, engineOpts)
	gov := newGovernor(opts, db, engine, reg)
	return &System{
		DB:          db,
		Engine:      engine,
		Query:       query.New(db, engine),
		Metrics:     reg,
		Tracer:      engine.Tracer(),
		Build:       build,
		Governor:    gov,
		strictRules: opts.StrictRules,
	}, nil
}

// newGovernor assembles the overload governor: each subsystem's load
// gauges registered with default watermarks, the enforcement hooks
// installed at the choke points (writer admission, detached spawn,
// deferred drain, trace minting), and the evaluation loop started.
// Watermarks are retunable live via Governor.SetLevels.
func newGovernor(opts Options, db *oodb.DB, engine *eca.Engine, reg *obs.Registry) *governor.Governor {
	govOpts := opts.Governor
	if govOpts.Clock == nil && opts.Clock != nil {
		govOpts.Clock = opts.Clock
	}
	govOpts.Metrics = reg
	gov := governor.New(govOpts)

	queue := int64(opts.Engine.Queue)
	if queue <= 0 {
		queue = 256 // the engine's Queue default
	}
	tm := db.TxnManager()
	// Visibility-only resources (zero watermarks): accounted in
	// /health but never driving the state. Dead-letter depth is
	// deliberately among them — the governor's own sheds are
	// dead-lettered, so watermarking the queue would create a
	// shed → dead-letter → degraded feedback loop that blocks
	// recovery to healthy after load drops.
	gov.Register("txn-active", tm.ActiveTopLevel, governor.Levels{})
	gov.Register("history-bytes", engine.HistoryBytes, governor.Levels{})
	gov.Register("deadletter-depth", engine.DeadLetterDepth, governor.Levels{})
	// The detached backlog degrades at one queue's worth of unfinished
	// work (the pool is saturated: shedding detached firings is
	// cheaper than queueing them into a convoy) and sheds at two.
	gov.Register("detached-backlog", engine.DetachedBacklog,
		governor.Levels{Degraded: queue, Shedding: 2 * queue})
	// Deferred work is bounded per transaction by MaxDeferredRounds
	// but not across transactions; watermark the aggregate.
	gov.Register("deferred-depth", engine.DeferredDepth,
		governor.Levels{Degraded: 4 * queue, Shedding: 16 * queue})
	if opts.Dir != "" {
		// Storage backpressure: a checkpointer falling behind the write
		// rate shows up as WAL bytes past the byte trigger. Degrading
		// before the WAL-growth bound trips gives the checkpointer CPU
		// and I/O back while admitted work still completes.
		if _, trigger := db.CheckpointLag(); trigger > 0 {
			gov.Register("wal-checkpoint-lag",
				func() int64 { lag, _ := db.CheckpointLag(); return lag },
				governor.Levels{Degraded: 4 * trigger, Shedding: 16 * trigger})
		}
		gov.Register("checkpointer-degraded", func() int64 {
			if db.CheckpointHealth().Degraded {
				return 1
			}
			return 0
		}, governor.Levels{Degraded: 1})
	}

	tm.SetAdmission(gov.AdmitTxn)
	engine.SetGovernor(gov)
	engine.Dispatcher().SetShedProbe(func() bool {
		return gov.State() >= governor.Degraded
	})
	gov.Start()
	return gov
}

// Admin returns the HTTP observability surface over the system's
// registry and tracer, with a JSON system view contributed by the
// engine, sentry, and storage stats, plus the fault registry's
// /failpoints arming surface.
func (s *System) Admin() *obs.Admin {
	a := obs.NewAdmin(s.Metrics, s.Tracer, func() any {
		useful, useless, potential := s.Engine.Dispatcher().Stats()
		return map[string]any{
			"engine": s.Engine.Stats(),
			"sentry": map[string]uint64{
				"useful":    useful,
				"useless":   useless,
				"potential": potential,
			},
			"storage": s.DB.StorageStats(),
		}
	})
	a.Handle("/failpoints", fault.Handler())
	a.Handle("/health", s.Governor.Handler())
	a.Handle("/rules/deadletter", deadLetterHandler(s.Engine))
	a.Handle("/rules/breakers", breakerHandler(s.Engine))
	a.Handle("/slowlog", s.Engine.SlowLog().Handler())
	a.Handle("/checkpoint", checkpointHandler(s.DB))
	return a
}

// Drain flips the rule engine into shutdown mode: new detached rule
// spawns are refused and the call waits (bounded by ctx) for every
// in-flight rule transaction. Close completes the shutdown.
func (s *System) Drain(ctx context.Context) error { return s.Engine.Drain(ctx) }

// Shutdown is the graceful-shutdown sequence, in dependency order:
// the governor refuses new admissions (so nothing races the drain),
// the supervised executor drains so in-flight detached rule work
// commits, a final checkpoint makes that work cheap to recover, and
// Close tears the system down. Every step runs even if an earlier one
// errs — a failed drain must not skip the checkpoint, and a failed
// checkpoint must not leak the engine's goroutines; the joined error
// reports whatever went wrong.
func (s *System) Shutdown(ctx context.Context) error {
	s.Governor.BeginShutdown()
	derr := s.Engine.Drain(ctx)
	cerr := s.DB.Checkpoint()
	return errors.Join(derr, cerr, s.Close())
}

// Begin starts a top-level transaction, bypassing admission control.
// Internal and read-only work uses it; client writers should go
// through BeginTxn.
func (s *System) Begin() *txn.Txn { return s.DB.Begin() }

// BeginTxn starts a top-level transaction through the governor's
// admission gate: under overload it blocks up to the admission
// deadline and then fails with governor.ErrOverloaded — the caller's
// signal to back off and retry.
func (s *System) BeginTxn() (*txn.Txn, error) { return s.DB.BeginAdmitted() }

// RegisterClass registers a class descriptor in the data dictionary.
func (s *System) RegisterClass(c *oodb.Class) error { return s.DB.Dictionary().Register(c) }

// LoadRules parses and registers a REACH rule-language source. Every
// load joins the accumulated rule set for whole-ruleset interaction
// analysis: under Options.StrictRules a load whose addition leaves
// the set with analysis errors is refused wholesale; otherwise the
// analysis only maintains the engine's static cascade-depth bound
// (cleared while the set has a termination cycle, so the configured
// ceiling alone bounds it).
func (s *System) LoadRules(src string) (*rules.Loaded, error) {
	decls, err := rules.Parse(src)
	if err != nil {
		return nil, err
	}
	// ruleMu guards only the source-list snapshot and commit; the
	// analysis, registration, and engine calls run outside it
	// (lockdiscipline: no cross-package call under a held mutex).
	s.ruleMu.Lock()
	s.ruleLoads++
	name := fmt.Sprintf("<load-%d>", s.ruleLoads)
	snapshot := append([]ruleSource(nil), s.ruleSrcs...)
	s.ruleMu.Unlock()
	next := ruleSource{name: name, src: src, decls: decls}
	res := s.analyze(append(snapshot, next))
	if s.strictRules && res.HasErrors() {
		var msgs []string
		for _, f := range res.Findings {
			if f.Severity == analysis.Error {
				msgs = append(msgs, f.String())
			}
		}
		return nil, fmt.Errorf("core: rule-set analysis rejects load:\n%s", strings.Join(msgs, "\n"))
	}
	loaded, err := rules.Load(s.Engine, src)
	if err != nil {
		return nil, err
	}
	s.ruleMu.Lock()
	s.ruleSrcs = append(s.ruleSrcs, next)
	s.ruleMu.Unlock()
	if len(res.Cycles) == 0 && res.DepthBound > 0 {
		s.Engine.SetCascadeBound(res.DepthBound)
	} else {
		s.Engine.SetCascadeBound(0)
	}
	return loaded, nil
}

// RuleAnalysis runs the whole-ruleset interaction analysis over every
// rule source loaded so far, against the live data dictionary (closed
// world): the triggering graph, termination cycles, confluence pairs,
// and unreachable rules.
func (s *System) RuleAnalysis() *analysis.Result {
	s.ruleMu.Lock()
	snapshot := append([]ruleSource(nil), s.ruleSrcs...)
	s.ruleMu.Unlock()
	return s.analyze(snapshot)
}

// analyze runs the interaction analysis over the given sources
// against the dictionary world.
func (s *System) analyze(srcs []ruleSource) *analysis.Result {
	az := analysis.New()
	for _, rs := range srcs {
		az.Add(rs.name, rs.src, rs.decls)
	}
	return az.Run(s.ruleWorld())
}

// ruleWorld closes the analysis world over the registered schema:
// every Class.method and Class.attr the dictionary knows.
func (s *System) ruleWorld() *analysis.World {
	w := &analysis.World{Methods: make(map[string]bool), Attrs: make(map[string]bool)}
	dict := s.DB.Dictionary()
	for _, name := range dict.Classes() {
		c, err := dict.Lookup(name)
		if err != nil {
			continue
		}
		for _, m := range c.MethodNames() {
			w.Methods[name+"."+m] = true
		}
		for _, a := range c.Attrs() {
			w.Attrs[name+"."+a.Name] = true
		}
	}
	return w
}

// Close shuts the engine's background goroutines down and closes the
// database.
func (s *System) Close() error {
	s.Engine.WaitDetached()
	s.Engine.Close()
	s.Governor.Stop()
	return s.DB.Close()
}
