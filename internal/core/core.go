// Package core assembles the REACH system: the object database, the
// rule engine wired through the sentry dispatcher, and the query
// processor — the integrated architecture of the paper, in which the
// active capabilities are built into the OODBMS rather than layered
// on top of it.
package core

import (
	"repro/internal/clock"
	"repro/internal/eca"
	"repro/internal/oodb"
	"repro/internal/query"
	"repro/internal/rules"
	"repro/internal/txn"
)

// Options configure a System.
type Options struct {
	// Dir is the storage directory; empty means in-memory.
	Dir string
	// Clock is the time source (default: real time).
	Clock clock.Clock
	// DB tunes the object database.
	DB oodb.Options
	// Engine tunes the rule engine.
	Engine eca.Options
}

// System is a running REACH instance.
type System struct {
	DB     *oodb.DB
	Engine *eca.Engine
	Query  *query.Processor
}

// Open assembles and returns a System.
func Open(opts Options) (*System, error) {
	dbOpts := opts.DB
	if opts.Dir != "" {
		dbOpts.Dir = opts.Dir
	}
	if opts.Clock != nil {
		dbOpts.Clock = opts.Clock
	}
	db, err := oodb.Open(dbOpts)
	if err != nil {
		return nil, err
	}
	engine := eca.New(db, opts.Engine)
	return &System{
		DB:     db,
		Engine: engine,
		Query:  query.New(db, engine),
	}, nil
}

// Begin starts a top-level transaction.
func (s *System) Begin() *txn.Txn { return s.DB.Begin() }

// RegisterClass registers a class descriptor in the data dictionary.
func (s *System) RegisterClass(c *oodb.Class) error { return s.DB.Dictionary().Register(c) }

// LoadRules parses and registers a REACH rule-language source.
func (s *System) LoadRules(src string) (*rules.Loaded, error) {
	return rules.Load(s.Engine, src)
}

// Close shuts the engine's background goroutines down and closes the
// database.
func (s *System) Close() error {
	s.Engine.WaitDetached()
	s.Engine.Close()
	return s.DB.Close()
}
