// Package core assembles the REACH system: the object database, the
// rule engine wired through the sentry dispatcher, and the query
// processor — the integrated architecture of the paper, in which the
// active capabilities are built into the OODBMS rather than layered
// on top of it.
package core

import (
	"context"

	"repro/internal/clock"
	"repro/internal/eca"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/oodb"
	"repro/internal/query"
	"repro/internal/rules"
	"repro/internal/txn"
)

// Options configure a System.
type Options struct {
	// Dir is the storage directory; empty means in-memory.
	Dir string
	// Clock is the time source (default: real time).
	Clock clock.Clock
	// DB tunes the object database.
	DB oodb.Options
	// Engine tunes the rule engine.
	Engine eca.Options
}

// System is a running REACH instance.
type System struct {
	DB     *oodb.DB
	Engine *eca.Engine
	Query  *query.Processor
	// Metrics is the registry every subsystem (sentry, engine,
	// transaction manager, storage) binds its counters into.
	Metrics *obs.Registry
	// Tracer retains recent event-lifecycle traces.
	Tracer *obs.Tracer
	// Build identifies the running binary (also exposed as the
	// reach_build_info gauge).
	Build obs.BuildInfo
}

// Open assembles and returns a System.
func Open(opts Options) (*System, error) {
	reg := opts.Engine.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	build := obs.RegisterBuildInfo(reg)
	fault.Instrument(reg)
	dbOpts := opts.DB
	if opts.Dir != "" {
		dbOpts.Dir = opts.Dir
	}
	if opts.Clock != nil {
		dbOpts.Clock = opts.Clock
	}
	dbOpts.Storage.Metrics = reg
	db, err := oodb.Open(dbOpts)
	if err != nil {
		return nil, err
	}
	engineOpts := opts.Engine
	engineOpts.Metrics = reg
	engine := eca.New(db, engineOpts)
	return &System{
		DB:      db,
		Engine:  engine,
		Query:   query.New(db, engine),
		Metrics: reg,
		Tracer:  engine.Tracer(),
		Build:   build,
	}, nil
}

// Admin returns the HTTP observability surface over the system's
// registry and tracer, with a JSON system view contributed by the
// engine, sentry, and storage stats, plus the fault registry's
// /failpoints arming surface.
func (s *System) Admin() *obs.Admin {
	a := obs.NewAdmin(s.Metrics, s.Tracer, func() any {
		useful, useless, potential := s.Engine.Dispatcher().Stats()
		return map[string]any{
			"engine": s.Engine.Stats(),
			"sentry": map[string]uint64{
				"useful":    useful,
				"useless":   useless,
				"potential": potential,
			},
			"storage": s.DB.StorageStats(),
		}
	})
	a.Handle("/failpoints", fault.Handler())
	a.Handle("/rules/deadletter", deadLetterHandler(s.Engine))
	a.Handle("/rules/breakers", breakerHandler(s.Engine))
	a.Handle("/slowlog", s.Engine.SlowLog().Handler())
	return a
}

// Drain flips the rule engine into shutdown mode: new detached rule
// spawns are refused and the call waits (bounded by ctx) for every
// in-flight rule transaction. Close completes the shutdown.
func (s *System) Drain(ctx context.Context) error { return s.Engine.Drain(ctx) }

// Begin starts a top-level transaction.
func (s *System) Begin() *txn.Txn { return s.DB.Begin() }

// RegisterClass registers a class descriptor in the data dictionary.
func (s *System) RegisterClass(c *oodb.Class) error { return s.DB.Dictionary().Register(c) }

// LoadRules parses and registers a REACH rule-language source.
func (s *System) LoadRules(src string) (*rules.Loaded, error) {
	return rules.Load(s.Engine, src)
}

// Close shuts the engine's background goroutines down and closes the
// database.
func (s *System) Close() error {
	s.Engine.WaitDetached()
	s.Engine.Close()
	return s.DB.Close()
}
