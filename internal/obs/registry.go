package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// metricKind discriminates registry families.
type metricKind int

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry is a process-wide collection of named metrics. A metric
// family is one name with one kind; within a family, series are
// distinguished by label pairs. Lookups are memoized: asking for the
// same (name, labels) twice returns the same handle, so subsystems
// resolve their handles once at wiring time and the hot path touches
// only atomics.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	name   string
	help   string
	kind   metricKind
	series map[string]*series // key: rendered label string
}

type series struct {
	labels string // `{k="v",...}` or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// renderLabels turns alternating key, value pairs into a canonical
// Prometheus label string. Pairs are sorted by key.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: labels must be alternating key, value pairs")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// seriesFor returns (creating if needed) the series of a family,
// enforcing kind consistency.
func (r *Registry) seriesFor(name, help string, kind metricKind, labels []string) *series {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, f.kind, kind))
	}
	if f.help == "" {
		f.help = help
	}
	s := f.series[key]
	if s == nil {
		s = &series{labels: key}
		switch kind {
		case kindCounter:
			s.c = new(Counter)
		case kindGauge:
			s.g = new(Gauge)
		case kindHistogram:
			s.h = new(Histogram)
		}
		f.series[key] = s
	}
	return s
}

// Counter returns the counter series for name and label pairs,
// creating it on first use.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return r.seriesFor(name, help, kindCounter, labels).c
}

// Gauge returns the gauge series for name and label pairs.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return r.seriesFor(name, help, kindGauge, labels).g
}

// Histogram returns the histogram series for name and label pairs.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	return r.seriesFor(name, help, kindHistogram, labels).h
}

// sortedFamilies snapshots the family list in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func (f *family) sortedSeries() []*series {
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].labels < out[j].labels })
	return out
}

// WritePrometheus writes the registry in the Prometheus text
// exposition format (version 0.0.4). Histogram buckets are emitted as
// cumulative counts with `le` bounds in seconds; empty leading and
// trailing buckets are elided.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.sortedSeries() {
			switch f.kind {
			case kindCounter:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.c.Value()); err != nil {
					return err
				}
			case kindGauge:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.g.Value()); err != nil {
					return err
				}
			case kindHistogram:
				if err := writePromHistogram(w, f.name, s.labels, s.h.Snapshot()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// writePromHistogram emits one histogram series: cumulative buckets,
// _sum (seconds) and _count.
func writePromHistogram(w io.Writer, name, labels string, snap HistogramSnapshot) error {
	// Find the occupied bucket range so the output stays readable.
	lo, hi := -1, -1
	for i, n := range snap.Buckets {
		if n > 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	var cum uint64
	if lo >= 0 {
		for i := lo; i <= hi; i++ {
			cum += snap.Buckets[i]
			_, upper := bucketBounds(i)
			if err := writeBucket(w, name, labels, upper/1e9, cum); err != nil {
				return err
			}
		}
	}
	if err := writeBucketInf(w, name, labels, snap.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels,
		formatFloat(float64(snap.Sum)/1e9)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, snap.Count)
	return err
}

func bucketLabels(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

func writeBucket(w io.Writer, name, labels string, le float64, cum uint64) error {
	_, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labels, formatFloat(le)), cum)
	return err
}

func writeBucketInf(w io.Writer, name, labels string, count uint64) error {
	_, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labels, "+Inf"), count)
	return err
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// SeriesSnapshot is one series rendered for the JSON surface.
type SeriesSnapshot struct {
	Labels string `json:"labels,omitempty"`
	// Counter / gauge value.
	Value *int64 `json:"value,omitempty"`
	// Histogram summary (nanoseconds).
	Count uint64  `json:"count,omitempty"`
	SumNS uint64  `json:"sum_ns,omitempty"`
	P50NS float64 `json:"p50_ns,omitempty"`
	P90NS float64 `json:"p90_ns,omitempty"`
	P95NS float64 `json:"p95_ns,omitempty"`
	P99NS float64 `json:"p99_ns,omitempty"`
}

// FamilySnapshot is one metric family rendered for the JSON surface.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Kind   string           `json:"kind"`
	Help   string           `json:"help,omitempty"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot renders every family, sorted by name, with histogram
// quantiles precomputed.
func (r *Registry) Snapshot() []FamilySnapshot {
	fams := r.sortedFamilies()
	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Kind: f.kind.String(), Help: f.help}
		for _, s := range f.sortedSeries() {
			ss := SeriesSnapshot{Labels: s.labels}
			switch f.kind {
			case kindCounter:
				v := int64(s.c.Value())
				ss.Value = &v
			case kindGauge:
				v := s.g.Value()
				ss.Value = &v
			case kindHistogram:
				snap := s.h.Snapshot()
				ss.Count = snap.Count
				ss.SumNS = snap.Sum
				ss.P50NS = snap.Quantile(0.50)
				ss.P90NS = snap.Quantile(0.90)
				ss.P95NS = snap.Quantile(0.95)
				ss.P99NS = snap.Quantile(0.99)
			}
			fs.Series = append(fs.Series, ss)
		}
		out = append(out, fs)
	}
	return out
}

// MarshalJSON renders the registry as its snapshot.
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}
