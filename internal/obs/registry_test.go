package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestRegistryMemoizes(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", "mode", "imm")
	b := r.Counter("x_total", "", "mode", "imm")
	if a != b {
		t.Fatal("same (name, labels) returned distinct handles")
	}
	c := r.Counter("x_total", "", "mode", "def")
	if a == c {
		t.Fatal("distinct labels shared a handle")
	}
	// Label order must not matter.
	d := r.Counter("y_total", "", "a", "1", "b", "2")
	e := r.Counter("y_total", "", "b", "2", "a", "1")
	if d != e {
		t.Fatal("label order changed the series identity")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("requesting a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestRegistryOddLabelsPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("odd label count did not panic")
		}
	}()
	r.Counter("m", "", "keyonly")
}

// TestWritePrometheusGolden pins the exact exposition-format output:
// sorted families, HELP/TYPE headers, cumulative le buckets in
// seconds, _sum and _count.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "total things", "mode", "imm").Add(3)
	r.Gauge("test_depth", "queue depth").Set(-2)
	h := r.Histogram("test_seconds", "latency")
	h.Observe(100 * time.Nanosecond)  // bucket 6: [64, 128)
	h.Observe(3000 * time.Nanosecond) // bucket 11: [2048, 4096)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_depth queue depth
# TYPE test_depth gauge
test_depth -2
# HELP test_seconds latency
# TYPE test_seconds histogram
test_seconds_bucket{le="1.28e-07"} 1
test_seconds_bucket{le="2.56e-07"} 1
test_seconds_bucket{le="5.12e-07"} 1
test_seconds_bucket{le="1.024e-06"} 1
test_seconds_bucket{le="2.048e-06"} 1
test_seconds_bucket{le="4.096e-06"} 2
test_seconds_bucket{le="+Inf"} 2
test_seconds_sum 3.1e-06
test_seconds_count 2
# HELP test_total total things
# TYPE test_total counter
test_total{mode="imm"} 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusLabeledHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat_seconds", "", "mode", "imm").Observe(100)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lat_seconds_bucket{mode="imm",le="+Inf"} 1`,
		`lat_seconds_count{mode="imm"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", "k", "a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{k="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped series %q not found in:\n%s", want, b.String())
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(7)
	h := r.Histogram("h_seconds", "")
	h.Observe(time.Microsecond)
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var fams []FamilySnapshot
	if err := json.Unmarshal(raw, &fams); err != nil {
		t.Fatal(err)
	}
	if len(fams) != 2 {
		t.Fatalf("families = %d, want 2", len(fams))
	}
	if fams[0].Name != "c_total" || fams[0].Kind != "counter" ||
		fams[0].Series[0].Value == nil || *fams[0].Series[0].Value != 7 {
		t.Fatalf("counter snapshot wrong: %+v", fams[0])
	}
	hs := fams[1].Series[0]
	if fams[1].Kind != "histogram" || hs.Count != 1 || hs.SumNS != 1000 || hs.P50NS <= 0 {
		t.Fatalf("histogram snapshot wrong: %+v", hs)
	}
}
