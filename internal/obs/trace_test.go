package obs

import (
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(1995, 3, 6, 0, 0, 0, 0, time.UTC)

func TestTracerBeginSpanGet(t *testing.T) {
	tr := NewTracer(8)
	id := tr.Begin("event:update", t0)
	if id == 0 {
		t.Fatal("Begin returned 0")
	}
	tr.Span(id, "detect", "event:update", t0, time.Millisecond)
	tr.Span(id, "condition-eval", "RuleA", t0.Add(time.Millisecond), 2*time.Millisecond)
	got, ok := tr.Get(id)
	if !ok {
		t.Fatal("trace not found")
	}
	if got.Root != "event:update" || len(got.Spans) != 2 {
		t.Fatalf("trace = %+v", got)
	}
	if got.Spans[1].Stage != "condition-eval" || got.Spans[1].Dur != 2*time.Millisecond {
		t.Fatalf("span = %+v", got.Spans[1])
	}
	// Get returns a copy: mutating it must not affect the ring.
	got.Spans[0].Stage = "mutated"
	again, _ := tr.Get(id)
	if again.Spans[0].Stage != "detect" {
		t.Fatal("Get returned a view into the live trace")
	}
}

func TestTracerSpanOnZeroAndUnknownID(t *testing.T) {
	tr := NewTracer(4)
	tr.Span(0, "detect", "", t0, 0)   // no-op
	tr.Span(999, "detect", "", t0, 0) // evicted/unknown: dropped
	if tr.Len() != 0 {
		t.Fatalf("len = %d, want 0", tr.Len())
	}
}

func TestTracerEviction(t *testing.T) {
	tr := NewTracer(4)
	ids := make([]uint64, 8)
	for i := range ids {
		ids[i] = tr.Begin("root", t0)
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want capacity 4", tr.Len())
	}
	if _, ok := tr.Get(ids[0]); ok {
		t.Fatal("evicted trace still retrievable")
	}
	if _, ok := tr.Get(ids[7]); !ok {
		t.Fatal("latest trace missing")
	}
	// A span for an evicted trace must not corrupt its slot's new owner.
	tr.Span(ids[0], "detect", "", t0, time.Second)
	if tc, _ := tr.Get(ids[4]); len(tc.Spans) != 0 {
		t.Fatalf("evicted-trace span leaked into slot reuse: %+v", tc.Spans)
	}
	recent := tr.Recent(10)
	if len(recent) != 4 {
		t.Fatalf("recent = %d traces, want 4", len(recent))
	}
	for i := 1; i < len(recent); i++ {
		if recent[i-1].ID <= recent[i].ID {
			t.Fatal("Recent not newest-first")
		}
	}
}

func TestTracerSpanCap(t *testing.T) {
	tr := NewTracer(2)
	id := tr.Begin("storm", t0)
	for i := 0; i < maxSpansPerTrace+5; i++ {
		tr.Span(id, "action-exec", "r", t0, 0)
	}
	got, _ := tr.Get(id)
	if len(got.Spans) != maxSpansPerTrace || got.Dropped != 5 {
		t.Fatalf("spans=%d dropped=%d, want %d/5", len(got.Spans), got.Dropped, maxSpansPerTrace)
	}
}

func TestRecentSortsSpansByStart(t *testing.T) {
	tr := NewTracer(2)
	id := tr.Begin("r", t0)
	tr.Span(id, "late", "", t0.Add(time.Second), 0)
	tr.Span(id, "early", "", t0, 0)
	rec := tr.Recent(1)
	if len(rec) != 1 || rec[0].Spans[0].Stage != "early" {
		t.Fatalf("recent spans not start-ordered: %+v", rec)
	}
}

// TestTracerConcurrent exercises mint/record/read races under the
// race detector.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(16)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := tr.Begin("root", t0)
				tr.Span(id, "detect", "k", t0, time.Duration(i))
				tr.Span(id, "commit", "k", t0, time.Duration(i))
				tr.Get(id)
				if i%50 == 0 {
					tr.Recent(8)
				}
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 16 {
		t.Fatalf("len = %d, want full ring of 16", tr.Len())
	}
}
