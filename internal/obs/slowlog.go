package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// SlowEntry is one promoted trace in the slow-transaction log: the
// trace itself plus its end-to-end duration (trace start to the end
// of its last-finishing span) at promotion time.
type SlowEntry struct {
	Trace Trace `json:"trace"`
	// TotalNS is the end-to-end duration in nanoseconds.
	TotalNS int64 `json:"total_ns"`
	// AttributedNS maps span stage -> summed span nanoseconds, the
	// per-phase latency attribution of the trace.
	AttributedNS map[string]int64 `json:"attributed_ns"`
	// CoveredNS is the union length (overlap counted once) of every
	// span interval, i.e. how much of TotalNS the spans explain.
	CoveredNS int64 `json:"covered_ns"`
}

// SlowLog retains traces whose end-to-end duration exceeded a
// configurable threshold. Traces normally live in the tracer's
// bounded eviction ring and are overwritten by newer traffic; a slow
// trace is promoted out of the ring into this log so it survives long
// enough to be looked at. The log is itself bounded: when full, the
// oldest promoted trace is dropped.
type SlowLog struct {
	threshold atomic.Int64 // nanoseconds; <= 0 disables promotion

	mu       sync.Mutex
	capacity int
	entries  []SlowEntry // promotion order, oldest first
	index    map[uint64]int

	// promotions/evictions/depth are standalone by default and
	// rebound by Instrument.
	promotions *Counter
	evictions  *Counter
	depth      *Gauge
}

// NewSlowLog returns a slow log retaining up to capacity promoted
// traces (default 64 when capacity <= 0). Promotion is disabled until
// a positive threshold is set.
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity <= 0 {
		capacity = 64
	}
	sl := &SlowLog{
		capacity:   capacity,
		index:      make(map[uint64]int),
		promotions: new(Counter),
		evictions:  new(Counter),
		depth:      new(Gauge),
	}
	sl.threshold.Store(int64(threshold))
	return sl
}

// Instrument rebinds the log's counters into reg.
func (sl *SlowLog) Instrument(reg *Registry) {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	sl.promotions = reg.Counter("reach_slowlog_promotions_total",
		"Traces promoted into the slow-transaction log.")
	sl.evictions = reg.Counter("reach_slowlog_evictions_total",
		"Promoted traces dropped because the slow log was full.")
	sl.depth = reg.Gauge("reach_slowlog_depth",
		"Traces currently retained in the slow-transaction log.")
}

// SetThreshold sets the promotion threshold; zero or negative
// disables promotion.
func (sl *SlowLog) SetThreshold(d time.Duration) { sl.threshold.Store(int64(d)) }

// Threshold reports the current promotion threshold.
func (sl *SlowLog) Threshold() time.Duration { return time.Duration(sl.threshold.Load()) }

// promote records t (a copy owned by the log) with the given
// end-to-end duration. A trace already promoted is updated in place —
// spans keep arriving after the threshold crossing — without counting
// as a second promotion.
func (sl *SlowLog) promote(t Trace, total time.Duration) {
	entry := SlowEntry{
		Trace:        t,
		TotalNS:      int64(total),
		AttributedNS: attributeSpans(t.Spans),
		CoveredNS:    int64(SpanCoverage(t.Spans)),
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if i, ok := sl.index[t.ID]; ok {
		sl.entries[i] = entry
		return
	}
	if len(sl.entries) >= sl.capacity {
		evicted := sl.entries[0]
		sl.entries = sl.entries[1:]
		delete(sl.index, evicted.Trace.ID)
		for id, i := range sl.index {
			sl.index[id] = i - 1
		}
		sl.evictions.Inc()
	}
	sl.index[t.ID] = len(sl.entries)
	sl.entries = append(sl.entries, entry)
	sl.promotions.Inc()
	sl.depth.Set(int64(len(sl.entries)))
}

// Snapshot returns the promoted traces, newest promotion first.
func (sl *SlowLog) Snapshot() []SlowEntry {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	out := make([]SlowEntry, 0, len(sl.entries))
	for i := len(sl.entries) - 1; i >= 0; i-- {
		e := sl.entries[i]
		e.Trace = e.Trace.copy()
		out = append(out, e)
	}
	return out
}

// Len reports the number of promoted traces currently retained.
func (sl *SlowLog) Len() int {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return len(sl.entries)
}

// Clear empties the log and returns how many entries were dropped.
func (sl *SlowLog) Clear() int {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	n := len(sl.entries)
	sl.entries = nil
	sl.index = make(map[uint64]int)
	sl.depth.Set(0)
	return n
}

// Handler serves the slow log over HTTP:
//
//	GET  /slowlog                    threshold + promoted traces, newest first
//	POST /slowlog?action=clear       empty the log
//	POST /slowlog?threshold=250ms    change the promotion threshold
func (sl *SlowLog) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			writeSlowJSON(w, map[string]any{
				"threshold_ns": int64(sl.Threshold()),
				"entries":      sl.Snapshot(),
			})
		case http.MethodPost:
			if th := r.FormValue("threshold"); th != "" {
				d, err := time.ParseDuration(th)
				if err != nil {
					http.Error(w, "bad threshold: "+err.Error(), http.StatusBadRequest)
					return
				}
				sl.SetThreshold(d)
				writeSlowJSON(w, map[string]any{"threshold_ns": int64(d)})
				return
			}
			if r.FormValue("action") != "clear" {
				http.Error(w, "unsupported action (want action=clear or threshold=<dur>)",
					http.StatusBadRequest)
				return
			}
			writeSlowJSON(w, map[string]any{"cleared": sl.Clear()})
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}

func writeSlowJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// attributeSpans sums span durations by stage.
func attributeSpans(spans []Span) map[string]int64 {
	out := make(map[string]int64, 8)
	for _, sp := range spans {
		out[sp.Stage] += int64(sp.Dur)
	}
	return out
}

// SpanCoverage returns the union length of the span intervals —
// overlapping spans (a commit span enclosing the wal-fsync it forces,
// a detect span enclosing immediate rule execution) are counted once.
// It is the honest answer to "how much of this trace's wall time do
// the recorded phases explain".
func SpanCoverage(spans []Span) time.Duration {
	if len(spans) == 0 {
		return 0
	}
	type iv struct{ s, e time.Time }
	ivs := make([]iv, 0, len(spans))
	for _, sp := range spans {
		ivs = append(ivs, iv{sp.Start, sp.Start.Add(sp.Dur)})
	}
	// Insertion sort by start; span counts are small (<= maxSpansPerTrace).
	for i := 1; i < len(ivs); i++ {
		for j := i; j > 0 && ivs[j].s.Before(ivs[j-1].s); j-- {
			ivs[j], ivs[j-1] = ivs[j-1], ivs[j]
		}
	}
	var total time.Duration
	cur := ivs[0]
	for _, v := range ivs[1:] {
		if !v.s.After(cur.e) {
			if v.e.After(cur.e) {
				cur.e = v.e
			}
			continue
		}
		total += cur.e.Sub(cur.s)
		cur = v
	}
	total += cur.e.Sub(cur.s)
	return total
}
