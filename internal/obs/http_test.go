package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func adminFixture() *Admin {
	reg := NewRegistry()
	reg.Counter("reach_events_total", "events consumed").Add(5)
	reg.Histogram("reach_rule_latency_seconds", "", "mode", "immediate").Observe(time.Millisecond)
	tr := NewTracer(8)
	id := tr.Begin("event:update", time.Date(1995, 3, 6, 0, 0, 0, 0, time.UTC))
	tr.Span(id, "detect", "event:update", time.Date(1995, 3, 6, 0, 0, 0, 0, time.UTC), time.Millisecond)
	return NewAdmin(reg, tr, func() any { return map[string]int{"objects": 3} })
}

func get(t *testing.T, mux *http.ServeMux, path string) (*httptest.ResponseRecorder, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s = %d", path, rec.Code)
	}
	return rec, rec.Body.String()
}

func TestAdminMetricsEndpoint(t *testing.T) {
	a := adminFixture()
	rec, body := get(t, a.Mux(), "/metrics")
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE reach_events_total counter",
		"reach_events_total 5",
		`reach_rule_latency_seconds_bucket{mode="immediate",le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestAdminStatsEndpoint(t *testing.T) {
	a := adminFixture()
	_, body := get(t, a.Mux(), "/stats")
	var out struct {
		Time    time.Time        `json:"time"`
		System  map[string]int   `json:"system"`
		Metrics []FamilySnapshot `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("/stats not JSON: %v\n%s", err, body)
	}
	if out.System["objects"] != 3 || len(out.Metrics) != 2 {
		t.Fatalf("stats = %+v", out)
	}
}

func TestAdminTracesEndpoint(t *testing.T) {
	a := adminFixture()
	_, body := get(t, a.Mux(), "/traces?n=5")
	var traces []Trace
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("/traces not JSON: %v\n%s", err, body)
	}
	if len(traces) != 1 || traces[0].Spans[0].Stage != "detect" {
		t.Fatalf("traces = %+v", traces)
	}
	// Empty ring still returns a JSON array, not null.
	empty := NewAdmin(NewRegistry(), NewTracer(2), nil)
	_, body = get(t, empty.Mux(), "/traces")
	if strings.TrimSpace(body) == "null" {
		t.Fatal("/traces rendered null for an empty ring")
	}
}

func TestAdminPprofWired(t *testing.T) {
	a := adminFixture()
	_, body := get(t, a.Mux(), "/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index missing: %s", body)
	}
}

func TestAdminServe(t *testing.T) {
	a := adminFixture()
	srv, addr, err := a.Serve("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || !strings.Contains(string(body), "reach_events_total") {
		t.Fatalf("served /metrics = %d: %s", resp.StatusCode, body)
	}
}
