package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

var slowBase = time.Date(1995, 3, 6, 0, 0, 0, 0, time.UTC)

// span is shorthand for a span starting at base+at lasting dur.
func span(tr *Tracer, id uint64, stage string, at, dur time.Duration) {
	tr.Span(id, stage, "k", slowBase.Add(at), dur)
}

func TestSlowLogPromotion(t *testing.T) {
	tr := NewTracer(8)
	sl := NewSlowLog(4, 10*time.Millisecond)
	tr.SetSlowLog(sl)

	fast := tr.Begin("fast", slowBase)
	span(tr, fast, "detect", 0, time.Millisecond)
	if sl.Len() != 0 {
		t.Fatalf("fast trace promoted: len=%d", sl.Len())
	}

	slow := tr.Begin("slow", slowBase)
	span(tr, slow, "detect", 0, time.Millisecond)
	span(tr, slow, "action-exec", time.Millisecond, 20*time.Millisecond)
	if sl.Len() != 1 {
		t.Fatalf("slow trace not promoted: len=%d", sl.Len())
	}
	entries := sl.Snapshot()
	e := entries[0]
	if e.Trace.ID != slow {
		t.Fatalf("promoted trace ID = %d, want %d", e.Trace.ID, slow)
	}
	if e.TotalNS != int64(21*time.Millisecond) {
		t.Fatalf("TotalNS = %d, want %d", e.TotalNS, 21*time.Millisecond)
	}
	if e.AttributedNS["action-exec"] != int64(20*time.Millisecond) {
		t.Fatalf("AttributedNS = %v", e.AttributedNS)
	}
	if e.CoveredNS != int64(21*time.Millisecond) {
		t.Fatalf("CoveredNS = %d", e.CoveredNS)
	}
}

func TestSlowLogInPlaceUpdate(t *testing.T) {
	tr := NewTracer(8)
	sl := NewSlowLog(4, 10*time.Millisecond)
	tr.SetSlowLog(sl)

	id := tr.Begin("slow", slowBase)
	span(tr, id, "condition-eval", 0, 15*time.Millisecond)
	span(tr, id, "action-exec", 15*time.Millisecond, 5*time.Millisecond)
	if sl.Len() != 1 {
		t.Fatalf("len = %d, want 1 (update in place)", sl.Len())
	}
	e := sl.Snapshot()[0]
	if len(e.Trace.Spans) != 2 {
		t.Fatalf("entry has %d spans, want the updated 2", len(e.Trace.Spans))
	}
	if e.TotalNS != int64(20*time.Millisecond) {
		t.Fatalf("TotalNS = %d after update", e.TotalNS)
	}
	if got := sl.promotions.Value(); got != 1 {
		t.Fatalf("promotions = %d, want 1", got)
	}
}

func TestSlowLogFIFOEviction(t *testing.T) {
	tr := NewTracer(64)
	sl := NewSlowLog(3, time.Millisecond)
	tr.SetSlowLog(sl)

	ids := make([]uint64, 5)
	for i := range ids {
		ids[i] = tr.Begin(fmt.Sprintf("t%d", i), slowBase)
		span(tr, ids[i], "action-exec", 0, 5*time.Millisecond)
	}
	if sl.Len() != 3 {
		t.Fatalf("len = %d, want capacity 3", sl.Len())
	}
	got := sl.Snapshot()
	// Newest first: ids[4], ids[3], ids[2]; ids[0] and ids[1] evicted.
	for i, want := range []uint64{ids[4], ids[3], ids[2]} {
		if got[i].Trace.ID != want {
			t.Fatalf("entry %d = trace %d, want %d", i, got[i].Trace.ID, want)
		}
	}
	if sl.evictions.Value() != 2 {
		t.Fatalf("evictions = %d, want 2", sl.evictions.Value())
	}
	// Evicted traces can be re-promoted (index consistency after shift).
	span(tr, ids[2], "commit", 5*time.Millisecond, 5*time.Millisecond)
	if sl.Len() != 3 {
		t.Fatalf("len = %d after in-place update of survivor", sl.Len())
	}
}

func TestSlowLogDisabledThreshold(t *testing.T) {
	tr := NewTracer(8)
	sl := NewSlowLog(4, 0)
	tr.SetSlowLog(sl)
	id := tr.Begin("t", slowBase)
	span(tr, id, "action-exec", 0, time.Hour)
	if sl.Len() != 0 {
		t.Fatal("threshold 0 must disable promotion")
	}
	sl.SetThreshold(time.Second)
	span(tr, id, "commit", time.Hour, time.Millisecond)
	if sl.Len() != 1 {
		t.Fatal("promotion after enabling threshold")
	}
}

func TestSlowLogClear(t *testing.T) {
	tr := NewTracer(8)
	sl := NewSlowLog(4, time.Millisecond)
	tr.SetSlowLog(sl)
	id := tr.Begin("t", slowBase)
	span(tr, id, "action-exec", 0, time.Second)
	if n := sl.Clear(); n != 1 {
		t.Fatalf("Clear = %d, want 1", n)
	}
	if sl.Len() != 0 {
		t.Fatal("log not empty after Clear")
	}
	// The same trace promotes again after a clear.
	span(tr, id, "commit", time.Second, time.Millisecond)
	if sl.Len() != 1 {
		t.Fatal("no re-promotion after Clear")
	}
}

func TestSlowLogConcurrent(t *testing.T) {
	tr := NewTracer(32)
	sl := NewSlowLog(16, time.Millisecond)
	sl.Instrument(NewRegistry())
	tr.SetSlowLog(sl)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := tr.Begin("t", slowBase)
				span(tr, id, "detect", 0, time.Millisecond)
				span(tr, id, "action-exec", time.Millisecond, 10*time.Millisecond)
				if i%17 == 0 {
					sl.Snapshot()
				}
				if i%31 == 0 {
					sl.Clear()
				}
			}
		}(g)
	}
	wg.Wait()
	if sl.Len() > 16 {
		t.Fatalf("len = %d exceeds capacity", sl.Len())
	}
	for _, e := range sl.Snapshot() {
		if e.TotalNS < int64(time.Millisecond) {
			t.Fatalf("promoted entry below threshold: %d", e.TotalNS)
		}
	}
}

func TestSlowLogHandler(t *testing.T) {
	tr := NewTracer(8)
	sl := NewSlowLog(4, 10*time.Millisecond)
	tr.SetSlowLog(sl)
	id := tr.Begin("slow", slowBase)
	span(tr, id, "action-exec", 0, 50*time.Millisecond)

	h := sl.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/slowlog", nil))
	if rec.Code != 200 {
		t.Fatalf("GET status %d", rec.Code)
	}
	var got struct {
		ThresholdNS int64       `json:"threshold_ns"`
		Entries     []SlowEntry `json:"entries"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if got.ThresholdNS != int64(10*time.Millisecond) || len(got.Entries) != 1 {
		t.Fatalf("GET = %+v", got)
	}
	if got.Entries[0].AttributedNS["action-exec"] != int64(50*time.Millisecond) {
		t.Fatalf("attribution lost in JSON: %v", got.Entries[0].AttributedNS)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/slowlog?threshold=250ms", nil))
	if rec.Code != 200 || sl.Threshold() != 250*time.Millisecond {
		t.Fatalf("POST threshold: status %d, threshold %v", rec.Code, sl.Threshold())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/slowlog?action=clear", nil))
	if rec.Code != 200 || sl.Len() != 0 {
		t.Fatalf("POST clear: status %d, len %d", rec.Code, sl.Len())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/slowlog?threshold=nonsense", nil))
	if rec.Code != 400 {
		t.Fatalf("bad threshold accepted: %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("DELETE", "/slowlog", nil))
	if rec.Code != 405 {
		t.Fatalf("DELETE status %d", rec.Code)
	}
}

func TestSpanCoverage(t *testing.T) {
	mk := func(at, dur time.Duration) Span {
		return Span{Start: slowBase.Add(at), Dur: dur}
	}
	cases := []struct {
		name  string
		spans []Span
		want  time.Duration
	}{
		{"empty", nil, 0},
		{"single", []Span{mk(0, 10)}, 10},
		{"disjoint", []Span{mk(0, 10), mk(20, 10)}, 20},
		{"overlap counted once", []Span{mk(0, 10), mk(5, 10)}, 15},
		{"nested", []Span{mk(0, 100), mk(10, 20)}, 100},
		{"unsorted input", []Span{mk(50, 10), mk(0, 10), mk(55, 20)}, 35},
		{"touching merge", []Span{mk(0, 10), mk(10, 10)}, 20},
	}
	for _, c := range cases {
		if got := SpanCoverage(c.spans); got != c.want {
			t.Errorf("%s: coverage = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestRegisterBuildInfo(t *testing.T) {
	reg := NewRegistry()
	bi := RegisterBuildInfo(reg)
	if bi.GoVersion == "" || bi.Module == "" {
		t.Fatalf("empty build info: %+v", bi)
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "reach_build_info{") {
		t.Fatalf("reach_build_info missing from exposition:\n%s", buf.String())
	}
}

func TestHistogramP95InSnapshot(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("x_seconds", "test")
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i+1) * time.Millisecond)
	}
	var fam FamilySnapshot
	for _, f := range reg.Snapshot() {
		if f.Name == "x_seconds" {
			fam = f
		}
	}
	s := fam.Series[0]
	if s.P95NS <= 0 || s.P95NS < s.P50NS || s.P95NS > s.P99NS {
		t.Fatalf("p95 out of order: p50=%v p95=%v p99=%v", s.P50NS, s.P95NS, s.P99NS)
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "p95_ns") {
		t.Fatalf("p95_ns missing from JSON: %s", b)
	}
}
