package obs

import (
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter // zero value usable
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d", c.Value())
	}
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("after reset = %d", c.Value())
	}
}

func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	g.SetMax(5)
	g.SetMax(3)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want high-water 5", g.Value())
	}
	g.Set(-7)
	if g.Value() != -7 {
		t.Fatalf("gauge = %d, want -7", g.Value())
	}
	g.Add(2)
	if g.Value() != -5 {
		t.Fatalf("gauge = %d, want -5", g.Value())
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3},
		{1023, 9}, {1024, 10}, {1 << 40, 40}, {1 << 62, 47},
	}
	for _, tc := range cases {
		if got := bucketOf(tc.ns); got != tc.want {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.ns, got, tc.want)
		}
	}
}

// TestHistogramQuantileAccuracy checks the log-bucketed estimator
// against a uniform distribution: an estimate must land within the
// power-of-two bucket containing the true quantile, i.e. within a
// factor of two.
func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	const n = 1 << 16
	for i := 1; i <= n; i++ {
		h.Observe(time.Duration(i))
	}
	s := h.Snapshot()
	if s.Count != n {
		t.Fatalf("count = %d, want %d", s.Count, n)
	}
	for _, tc := range []struct {
		q    float64
		true float64
	}{{0.50, n / 2}, {0.90, 0.9 * n}, {0.99, 0.99 * n}} {
		got := s.Quantile(tc.q)
		if got < tc.true/2 || got > tc.true*2 {
			t.Errorf("q%.0f = %.0f, want within factor 2 of %.0f", tc.q*100, got, tc.true)
		}
	}
	if mean := s.Mean(); mean < float64(n)/2-1 || mean > float64(n)/2+1 {
		t.Errorf("mean = %f, want ~%d", mean, n/2)
	}
}

func TestHistogramConstantValue(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(1000 * time.Nanosecond) // bucket 9: [512, 1024)
	}
	s := h.Snapshot()
	for _, q := range []float64{0.01, 0.5, 0.99} {
		got := s.Quantile(q)
		if got < 512 || got > 1024 {
			t.Errorf("quantile(%g) = %f, want within bucket [512,1024]", q, got)
		}
	}
	if got := s.Mean(); got != 1000 {
		t.Errorf("mean = %f, want 1000", got)
	}
}

func TestHistogramEmptyAndClamp(t *testing.T) {
	var h Histogram
	empty := h.Snapshot()
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %f", got)
	}
	h.Observe(-5) // clamped to 0
	if s := h.Snapshot(); s.Buckets[0] != 1 || s.Sum != 0 {
		t.Fatalf("negative observation: buckets[0]=%d sum=%d", s.Buckets[0], s.Sum)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(100)
	a.Observe(200)
	b.Observe(100_000)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 3 || sa.Sum != 100_300 {
		t.Fatalf("merged count=%d sum=%d, want 3 / 100300", sa.Count, sa.Sum)
	}
	var total uint64
	for _, n := range sa.Buckets {
		total += n
	}
	if total != 3 {
		t.Fatalf("merged bucket total = %d, want 3", total)
	}
}

// TestConcurrentMetrics hammers a counter, gauge and histogram from
// many goroutines; exactness of the totals (and the race detector)
// is the assertion.
func TestConcurrentMetrics(t *testing.T) {
	var c Counter
	var g Gauge
	var h Histogram
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.SetMax(int64(w*per + i))
				h.Observe(time.Duration(i))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per-1 {
		t.Fatalf("gauge high-water = %d, want %d", g.Value(), workers*per-1)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
}
