package obs

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies the running binary: the Go toolchain that
// built it, the main module path, and its version (VCS builds report
// "(devel)").
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module"`
	Version   string `json:"version"`
}

// ReadBuild reports the binary's build metadata.
func ReadBuild() BuildInfo {
	bi := BuildInfo{GoVersion: runtime.Version(), Module: "unknown", Version: "unknown"}
	if info, ok := debug.ReadBuildInfo(); ok {
		if info.Main.Path != "" {
			bi.Module = info.Main.Path
		}
		if info.Main.Version != "" {
			bi.Version = info.Main.Version
		}
	}
	return bi
}

// RegisterBuildInfo publishes the binary's build metadata as the
// constant-1 gauge reach_build_info{goversion,module,version} — the
// Prometheus idiom for exposing labels rather than a value — and
// returns the metadata for banners and logs.
func RegisterBuildInfo(reg *Registry) BuildInfo {
	bi := ReadBuild()
	reg.Gauge("reach_build_info",
		"Build metadata of the running binary (value is always 1).",
		"goversion", bi.GoVersion, "module", bi.Module, "version", bi.Version).Set(1)
	return bi
}
