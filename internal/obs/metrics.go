// Package obs is the observability layer of the reproduction: a
// dependency-free metrics registry (counters, gauges, log-bucketed
// latency histograms), an event-lifecycle tracer, and an HTTP admin
// surface exposing both.
//
// The paper's empirical claims — sentry overhead classes (§5),
// history-consolidation cost (§6.3), the latency price of each
// coupling mode (Table 1, §6.4) — are only testable against a running
// system if the pipeline can be measured end to end. Every subsystem
// (sentry, engine, transaction manager, storage) registers its
// counters here instead of keeping private atomics, so one snapshot
// is the whole story.
//
// All metric primitives are safe for concurrent use and their zero
// values are usable: a subsystem can allocate standalone handles with
// new and later have them replaced by registry-bound ones at wiring
// time.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. Reset exists only to
// preserve the ResetStats semantics of the pre-registry Stats APIs.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is an instantaneous signed value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// SetMax raises the gauge to v if v is larger — high-water-mark
// semantics.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Reset zeroes the gauge.
func (g *Gauge) Reset() { g.v.Store(0) }

// histBuckets is the number of power-of-two buckets. Bucket i counts
// observations v with 2^i <= v < 2^(i+1) (bucket 0 additionally takes
// v <= 1), in nanoseconds: bucket 0 is ~1ns, bucket 47 ~39 hours.
const histBuckets = 48

// Histogram is a log2-bucketed histogram of durations. Observations
// are lock-free atomic increments; snapshots are mergeable and
// support quantile estimation.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // total nanoseconds
	buckets [histBuckets]atomic.Uint64
}

// bucketOf maps a nanosecond value to its bucket index.
func bucketOf(ns int64) int {
	if ns <= 1 {
		return 0
	}
	b := bits.Len64(uint64(ns)) - 1
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(uint64(ns))
	h.buckets[bucketOf(ns)].Add(1)
}

// Time starts a wall-clock measurement and returns the function that
// stops it and records the elapsed time:
//
//	defer h.Time()()
//
// It exists so instrumented packages never touch the wall clock
// themselves — timing lives here, in the one package the clockusage
// analyzer exempts.
func (h *Histogram) Time() func() {
	start := time.Now()
	return func() { h.Observe(time.Since(start)) }
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot returns a point-in-time copy of the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.sum.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// HistogramSnapshot is a consistent-enough copy of a histogram,
// mergeable with others (e.g. across shards or processes).
type HistogramSnapshot struct {
	Count   uint64
	Sum     uint64 // nanoseconds
	Buckets [histBuckets]uint64
}

// Merge adds other into s.
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) {
	s.Count += other.Count
	s.Sum += other.Sum
	for i := range s.Buckets {
		s.Buckets[i] += other.Buckets[i]
	}
}

// bucketBounds returns the [lo, hi) nanosecond range of bucket i.
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 2
	}
	return float64(uint64(1) << uint(i)), float64(uint64(1) << uint(i+1))
}

// Quantile estimates the q-quantile (0 < q <= 1) in nanoseconds by
// linear interpolation within the containing bucket. It returns 0 for
// an empty histogram.
func (s *HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next {
			lo, hi := bucketBounds(i)
			frac := (rank - cum) / float64(n)
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	lo, hi := bucketBounds(histBuckets - 1)
	_ = lo
	return hi
}

// Mean returns the average observation in nanoseconds.
func (s *HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
