package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one recorded stage of an event's life: sentry detection,
// composition, deferred queuing, condition evaluation, action
// execution, commit/abort. Key names the thing the stage worked on
// (spec key, composite name, or rule name).
type Span struct {
	Stage string        `json:"stage"`
	Key   string        `json:"key,omitempty"`
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur_ns"`
}

// Trace is the end-to-end record of one event occurrence from sentry
// firing to rule-transaction resolution. Spans appear in completion
// order; sort by Start for the lifecycle view.
type Trace struct {
	ID      uint64    `json:"id"`
	Root    string    `json:"root"`
	Start   time.Time `json:"start"`
	Spans   []Span    `json:"spans"`
	Dropped int       `json:"dropped,omitempty"` // spans beyond the per-trace cap
}

// maxSpansPerTrace bounds the memory of one trace; a cascading rule
// storm records its first spans and counts the rest.
const maxSpansPerTrace = 128

// traceStripes is the number of lock stripes; a power of two.
const traceStripes = 16

// Tracer mints trace IDs and records spans into a bounded ring: slot
// i holds the most recent trace with ID ≡ i (mod capacity), so memory
// is fixed and old traces are overwritten by new ones. Stripes keep
// concurrent recorders off each other's locks.
type Tracer struct {
	next    atomic.Uint64
	cap     uint64
	stripes [traceStripes]sync.Mutex
	slots   []*Trace

	// slow, when set, receives traces whose end-to-end duration
	// crosses the slow log's threshold. Stored atomically so SetSlowLog
	// is safe even after the tracer has seen traffic.
	slow atomic.Pointer[SlowLog]
}

// NewTracer returns a tracer retaining up to capacity traces
// (default 256 when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	return &Tracer{cap: uint64(capacity), slots: make([]*Trace, capacity)}
}

func (tr *Tracer) lock(slot uint64) *sync.Mutex {
	return &tr.stripes[slot%traceStripes]
}

// Begin mints a new trace rooted at key and returns its ID (never 0).
func (tr *Tracer) Begin(root string, now time.Time) uint64 {
	id := tr.next.Add(1)
	slot := id % tr.cap
	mu := tr.lock(slot)
	mu.Lock()
	tr.slots[slot] = &Trace{ID: id, Root: root, Start: now}
	mu.Unlock()
	return id
}

// SetSlowLog installs the slow log that receives traces whose
// end-to-end duration crosses its threshold (nil detaches it).
func (tr *Tracer) SetSlowLog(sl *SlowLog) { tr.slow.Store(sl) }

// SlowLog returns the attached slow log, nil if none.
func (tr *Tracer) SlowLog() *SlowLog { return tr.slow.Load() }

// Span records one stage on trace id. Spans for traces already
// evicted from the ring are dropped silently. When the recorded span
// pushes the trace's end-to-end duration past the attached slow log's
// threshold, the trace is promoted out of the eviction ring into the
// slow log.
func (tr *Tracer) Span(id uint64, stage, key string, start time.Time, dur time.Duration) {
	if id == 0 {
		return
	}
	sl := tr.slow.Load()
	slot := id % tr.cap
	mu := tr.lock(slot)
	mu.Lock()
	t := tr.slots[slot]
	var promoted Trace
	var total time.Duration
	if t != nil && t.ID == id {
		if len(t.Spans) < maxSpansPerTrace {
			t.Spans = append(t.Spans, Span{Stage: stage, Key: key, Start: start, Dur: dur})
		} else {
			t.Dropped++
		}
		if sl != nil {
			if th := sl.Threshold(); th > 0 {
				if end := traceEnd(t); end >= th {
					promoted, total = t.copy(), end
				}
			}
		}
	}
	mu.Unlock()
	// The promotion itself runs outside the stripe lock: the slow log
	// has its own mutex and must not nest inside ours.
	if total > 0 {
		sl.promote(promoted, total)
	}
}

// traceEnd computes the end-to-end duration of a trace: its start to
// the end of its last-finishing span.
func traceEnd(t *Trace) time.Duration {
	var end time.Duration
	for _, sp := range t.Spans {
		if d := sp.Start.Add(sp.Dur).Sub(t.Start); d > end {
			end = d
		}
	}
	return end
}

// Get returns a copy of trace id, if it is still in the ring.
func (tr *Tracer) Get(id uint64) (Trace, bool) {
	if id == 0 {
		return Trace{}, false
	}
	slot := id % tr.cap
	mu := tr.lock(slot)
	mu.Lock()
	defer mu.Unlock()
	t := tr.slots[slot]
	if t == nil || t.ID != id {
		return Trace{}, false
	}
	return t.copy(), true
}

func (t *Trace) copy() Trace {
	cp := *t
	cp.Spans = append([]Span(nil), t.Spans...)
	return cp
}

// Recent returns up to n retained traces, newest first, each with its
// spans ordered by start time.
func (tr *Tracer) Recent(n int) []Trace {
	if n <= 0 {
		return nil
	}
	out := make([]Trace, 0, n)
	for i := range tr.slots {
		mu := tr.lock(uint64(i))
		mu.Lock()
		if t := tr.slots[i]; t != nil {
			out = append(out, t.copy())
		}
		mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID > out[j].ID })
	if len(out) > n {
		out = out[:n]
	}
	for i := range out {
		spans := out[i].Spans
		sort.SliceStable(spans, func(a, b int) bool { return spans[a].Start.Before(spans[b].Start) })
	}
	return out
}

// Len reports how many traces are currently retained.
func (tr *Tracer) Len() int {
	n := 0
	for i := range tr.slots {
		mu := tr.lock(uint64(i))
		mu.Lock()
		if tr.slots[i] != nil {
			n++
		}
		mu.Unlock()
	}
	return n
}
