package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Admin is the HTTP observability surface: Prometheus metrics, a JSON
// stats view, recent traces, and the stdlib profiler. It is opt-in —
// a system without an admin listener pays nothing for it.
type Admin struct {
	reg    *Registry
	tracer *Tracer
	// system, when set, contributes subsystem snapshots (engine
	// stats, storage stats, ...) to /stats.
	system func() any
	// extras are handlers other subsystems contribute via Handle
	// (e.g. the fault registry's /failpoints surface).
	extras map[string]http.Handler
}

// NewAdmin builds an admin surface over a registry and tracer; system
// may be nil.
func NewAdmin(reg *Registry, tracer *Tracer, system func() any) *Admin {
	return &Admin{reg: reg, tracer: tracer, system: system}
}

// Handle registers an extra handler at pattern, letting subsystems
// extend the admin surface without obs depending on them. Call it
// before Mux or Serve.
func (a *Admin) Handle(pattern string, h http.Handler) {
	if a.extras == nil {
		a.extras = make(map[string]http.Handler)
	}
	a.extras[pattern] = h
}

// Mux returns the admin handler:
//
//	/metrics        Prometheus text exposition
//	/stats          JSON metrics snapshot (+ system view)
//	/traces?n=20    recent event-lifecycle traces, newest first
//	/debug/pprof/   stdlib profiler
//
// plus any handlers registered with Handle.
func (a *Admin) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.handleMetrics)
	mux.HandleFunc("/stats", a.handleStats)
	mux.HandleFunc("/traces", a.handleTraces)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for pattern, h := range a.extras {
		mux.Handle(pattern, h)
	}
	return mux
}

func (a *Admin) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	a.reg.WritePrometheus(w)
}

func (a *Admin) handleStats(w http.ResponseWriter, _ *http.Request) {
	out := struct {
		Time    time.Time        `json:"time"`
		System  any              `json:"system,omitempty"`
		Metrics []FamilySnapshot `json:"metrics"`
	}{Time: time.Now(), Metrics: a.reg.Snapshot()}
	if a.system != nil {
		out.System = a.system()
	}
	writeJSON(w, out)
}

func (a *Admin) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := 20
	if s := r.URL.Query().Get("n"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	traces := a.tracer.Recent(n)
	if traces == nil {
		traces = []Trace{}
	}
	writeJSON(w, traces)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Serve starts the admin server on addr and returns it along with the
// bound address (useful with ":0"). The server runs until Close.
func (a *Admin) Serve(addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: a.Mux()}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
