// Package algebra implements the REACH event composition algebra:
// sequence, conjunction, disjunction, negation, closure and history
// operators (HiPAC and SAMOS heritage, paper §3.1), the SNOOP
// consumption policies recent/chronicle/continuous/cumulative (§3.4),
// validity intervals and the life-span rules of §3.3.
//
// One Composer is instantiated per composite event and scope — the
// paper's "many small compositors" (§6.3). A composer consumes
// primitive (or nested composite) occurrences via Feed and produces
// completed composite instances; Flush ends its life-span, emitting
// the operators that complete at end-of-interval (closure, negation)
// and discarding semi-composed state.
package algebra

import (
	"fmt"
	"strings"
)

// Expr is a node of a composite event expression.
type Expr interface {
	fmt.Stringer
	// collectKeys adds every primitive spec key in the expression.
	collectKeys(set map[string]bool)
	// build instantiates a detector for one composer.
	build() detector
}

// Prim matches occurrences of a primitive event spec key (or of a
// nested, separately-defined composite delivered to this composer).
type Prim struct {
	Key string
}

// String implements fmt.Stringer.
func (p Prim) String() string { return p.Key }

func (p Prim) collectKeys(set map[string]bool) { set[p.Key] = true }

// Seq matches its sub-events in occurrence order: (E1; E2; ...; En).
// A Neg element acts as a guard: the match is invalid if the negated
// event occurs between its neighbours (SAMOS-style negation within a
// sequence).
type Seq struct {
	Exprs []Expr
}

// String implements fmt.Stringer.
func (s Seq) String() string { return "(" + joinExprs(s.Exprs, "; ") + ")" }

func (s Seq) collectKeys(set map[string]bool) {
	for _, e := range s.Exprs {
		e.collectKeys(set)
	}
}

// Conj matches when all sub-events have occurred, in any order.
type Conj struct {
	Exprs []Expr
}

// String implements fmt.Stringer.
func (c Conj) String() string { return "(" + joinExprs(c.Exprs, " & ") + ")" }

func (c Conj) collectKeys(set map[string]bool) {
	for _, e := range c.Exprs {
		e.collectKeys(set)
	}
}

// Disj matches when any sub-event occurs.
type Disj struct {
	Exprs []Expr
}

// String implements fmt.Stringer.
func (d Disj) String() string { return "(" + joinExprs(d.Exprs, " | ") + ")" }

func (d Disj) collectKeys(set map[string]bool) {
	for _, e := range d.Exprs {
		e.collectKeys(set)
	}
}

// Neg is non-occurrence. Standalone, it completes at the end of the
// composer's life-span if the sub-event never occurred. Inside a Seq
// it is a guard between its neighbours.
type Neg struct {
	Of Expr
}

// String implements fmt.Stringer.
func (n Neg) String() string { return "!" + n.Of.String() }

func (n Neg) collectKeys(set map[string]bool) { n.Of.collectKeys(set) }

// Closure collapses any number of occurrences of the sub-event into
// one composite, signalled at the end of the composer's life-span
// (the HiPAC E* operator).
type Closure struct {
	Of Expr
}

// String implements fmt.Stringer.
func (c Closure) String() string { return c.Of.String() + "*" }

func (c Closure) collectKeys(set map[string]bool) { c.Of.collectKeys(set) }

// History matches when the sub-event has occurred Count times (the
// SAMOS TIMES operator); the composite carries all Count occurrences.
type History struct {
	Of    Expr
	Count int
}

// String implements fmt.Stringer.
func (h History) String() string { return fmt.Sprintf("times(%d, %s)", h.Count, h.Of) }

func (h History) collectKeys(set map[string]bool) { h.Of.collectKeys(set) }

// PrimitiveKeys returns the set of primitive spec keys an expression
// listens to; ECA managers use it to route events to composers.
func PrimitiveKeys(e Expr) []string {
	set := make(map[string]bool)
	e.collectKeys(set)
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	return out
}

// Validate rejects malformed expressions (empty operators, History
// with a non-positive count, Neg of Neg).
func Validate(e Expr) error {
	switch x := e.(type) {
	case Prim:
		if x.Key == "" {
			return fmt.Errorf("algebra: empty primitive key")
		}
		return nil
	case Seq:
		if len(x.Exprs) < 2 {
			return fmt.Errorf("algebra: sequence needs at least 2 sub-events")
		}
		nonGuard := 0
		for _, sub := range x.Exprs {
			if _, isNeg := sub.(Neg); !isNeg {
				nonGuard++
			}
			if err := Validate(sub); err != nil {
				return err
			}
		}
		if nonGuard < 2 {
			return fmt.Errorf("algebra: sequence needs at least 2 non-negated sub-events")
		}
		if _, isNeg := x.Exprs[0].(Neg); isNeg {
			return fmt.Errorf("algebra: sequence cannot start with a negation guard")
		}
		if _, isNeg := x.Exprs[len(x.Exprs)-1].(Neg); isNeg {
			return fmt.Errorf("algebra: sequence cannot end with a negation guard")
		}
		return nil
	case Conj:
		if len(x.Exprs) < 2 {
			return fmt.Errorf("algebra: conjunction needs at least 2 sub-events")
		}
		for _, sub := range x.Exprs {
			if err := Validate(sub); err != nil {
				return err
			}
		}
		return nil
	case Disj:
		if len(x.Exprs) < 2 {
			return fmt.Errorf("algebra: disjunction needs at least 2 sub-events")
		}
		for _, sub := range x.Exprs {
			if err := Validate(sub); err != nil {
				return err
			}
		}
		return nil
	case Neg:
		if _, dn := x.Of.(Neg); dn {
			return fmt.Errorf("algebra: double negation")
		}
		return Validate(x.Of)
	case Closure:
		return Validate(x.Of)
	case History:
		if x.Count < 1 {
			return fmt.Errorf("algebra: history count %d < 1", x.Count)
		}
		return Validate(x.Of)
	case nil:
		return fmt.Errorf("algebra: nil expression")
	}
	return fmt.Errorf("algebra: unknown expression type %T", e)
}

func joinExprs(exprs []Expr, sep string) string {
	parts := make([]string, len(exprs))
	for i, e := range exprs {
		parts[i] = e.String()
	}
	return strings.Join(parts, sep)
}
