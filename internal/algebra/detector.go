package algebra

import (
	"time"

	"repro/internal/event"
)

// Policy is the event consumption policy applied when multiple
// instances of a constituent are available (SNOOP contexts, §3.4).
type Policy int

// Consumption policies.
const (
	// Recent keeps only the most recent occurrence of each
	// constituent — typical for sensor monitoring.
	Recent Policy = iota + 1
	// Chronicle consumes occurrences in chronological order — typical
	// for workflow applications.
	Chronicle
	// Continuous opens a new window per initiator; a terminator
	// completes every open window — useful for trend monitoring.
	Continuous
	// Cumulative accumulates all occurrences until the composite is
	// raised, which carries all of them.
	Cumulative
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Recent:
		return "recent"
	case Chronicle:
		return "chronicle"
	case Continuous:
		return "continuous"
	case Cumulative:
		return "cumulative"
	}
	return "policy(?)"
}

// detector is one node of an instantiated composition graph.
type detector interface {
	// feed delivers an occurrence; the return value lists completions
	// of this node caused by it.
	feed(in *event.Instance) []*event.Instance
	// flush ends the life-span: operators that complete at
	// end-of-interval (closure, standalone negation) emit here.
	flush(now time.Time) []*event.Instance
	// reset discards all semi-composed state.
	reset()
	// pending counts buffered semi-composed occurrences.
	pending() int
	// expire drops buffered occurrences older than cutoff, returning
	// how many were garbage collected.
	expire(cutoff time.Time) int
}

// compose builds an intermediate (anonymous) composite instance from
// constituent occurrences.
func compose(parts []*event.Instance) *event.Instance {
	out := &event.Instance{Kind: event.KindComposite, Parts: parts}
	for _, p := range parts {
		if p.Seq > out.Seq {
			out.Seq = p.Seq
		}
		if p.Time.After(out.Time) {
			out.Time = p.Time
		}
	}
	return out
}

// ---- primitive ----

func (p Prim) build() detector { return &primDetector{key: p.Key} }

type primDetector struct{ key string }

func (d *primDetector) feed(in *event.Instance) []*event.Instance {
	if in.SpecKey == d.key {
		return []*event.Instance{in}
	}
	return nil
}
func (d *primDetector) flush(time.Time) []*event.Instance { return nil }
func (d *primDetector) reset()                            {}
func (d *primDetector) pending() int                      { return 0 }
func (d *primDetector) expire(time.Time) int              { return 0 }

// ---- disjunction ----

func (x Disj) build() detector {
	subs := make([]detector, len(x.Exprs))
	for i, e := range x.Exprs {
		subs[i] = e.build()
	}
	return &disjDetector{subs: subs}
}

type disjDetector struct{ subs []detector }

func (d *disjDetector) feed(in *event.Instance) []*event.Instance {
	var out []*event.Instance
	for _, s := range d.subs {
		out = append(out, s.feed(in)...)
	}
	return out
}

func (d *disjDetector) flush(now time.Time) []*event.Instance {
	var out []*event.Instance
	for _, s := range d.subs {
		out = append(out, s.flush(now)...)
	}
	return out
}

func (d *disjDetector) reset() {
	for _, s := range d.subs {
		s.reset()
	}
}

func (d *disjDetector) pending() int {
	n := 0
	for _, s := range d.subs {
		n += s.pending()
	}
	return n
}

func (d *disjDetector) expire(cutoff time.Time) int {
	n := 0
	for _, s := range d.subs {
		n += s.expire(cutoff)
	}
	return n
}

// ---- sequence ----

func (x Seq) build() detector {
	d := &seqDetector{}
	for _, e := range x.Exprs {
		if neg, ok := e.(Neg); ok {
			// Guard between the previous and next non-guard position.
			d.guards = append(d.guards, &seqGuard{
				after: len(d.positions) - 1,
				det:   neg.Of.build(),
			})
			continue
		}
		d.positions = append(d.positions, &seqPosition{det: e.build()})
	}
	return d
}

type seqDetector struct {
	positions []*seqPosition
	guards    []*seqGuard
	policy    Policy // set by the composer; zero value treated as Chronicle
}

type seqPosition struct {
	det   detector
	queue []*event.Instance
}

// seqGuard invalidates pending occurrences at positions <= after when
// the guarded event occurs (A; !B; C — B kills pending As).
type seqGuard struct {
	after int
	det   detector
}

func (d *seqDetector) effPolicy() Policy {
	if d.policy == 0 {
		return Chronicle
	}
	return d.policy
}

func (d *seqDetector) feed(in *event.Instance) []*event.Instance {
	// Guards first: an occurrence of the guarded event poisons the
	// partial matches it protects against.
	for _, g := range d.guards {
		for range g.det.feed(in) {
			for i := 0; i <= g.after && i < len(d.positions); i++ {
				pos := d.positions[i]
				kept := pos.queue[:0]
				for _, o := range pos.queue {
					if o.Seq > in.Seq {
						kept = append(kept, o)
					}
				}
				pos.queue = kept
			}
		}
	}
	var fired []*event.Instance
	last := len(d.positions) - 1
	for i, pos := range d.positions {
		for _, c := range pos.det.feed(in) {
			if i == last {
				fired = append(fired, d.completeWith(c)...)
			} else {
				d.enqueue(i, c)
			}
		}
	}
	return fired
}

// enqueue stores an intermediate occurrence under the policy's
// retention rule.
func (d *seqDetector) enqueue(i int, c *event.Instance) {
	pos := d.positions[i]
	if d.effPolicy() == Recent {
		pos.queue = pos.queue[:0]
	}
	pos.queue = append(pos.queue, c)
}

// completeWith attempts matches ending at terminator term.
func (d *seqDetector) completeWith(term *event.Instance) []*event.Instance {
	n := len(d.positions)
	switch d.effPolicy() {
	case Recent:
		chain := d.pickChain(term, true)
		if chain == nil {
			return nil
		}
		// Recent keeps constituents for reuse by later terminators.
		return []*event.Instance{compose(append(chain, term))}
	case Chronicle:
		chain := d.pickChain(term, false)
		if chain == nil {
			return nil
		}
		d.consume(chain)
		return []*event.Instance{compose(append(chain, term))}
	case Continuous:
		// One completion per open initiator window. Only occurrences
		// strictly before the terminator participate or are consumed:
		// when the same event type both initiates and terminates (a
		// tick stream), the terminator's own just-opened window stays.
		var out []*event.Instance
		initiators := append([]*event.Instance(nil), d.positions[0].queue...)
		for _, init := range initiators {
			chain := d.pickChainFrom(init, term)
			if chain != nil {
				out = append(out, compose(append(chain, term)))
			}
		}
		if len(out) > 0 {
			for _, pos := range d.positions[:n-1] {
				kept := pos.queue[:0]
				for _, o := range pos.queue {
					if o.Seq >= term.Seq {
						kept = append(kept, o)
					}
				}
				pos.queue = kept
			}
		}
		return out
	case Cumulative:
		chain := d.pickChain(term, false)
		if chain == nil {
			return nil
		}
		// The composite carries everything accumulated before the
		// terminator.
		var all []*event.Instance
		for _, pos := range d.positions[:n-1] {
			kept := pos.queue[:0]
			for _, o := range pos.queue {
				if o.Seq < term.Seq {
					all = append(all, o)
				} else {
					kept = append(kept, o)
				}
			}
			pos.queue = kept
		}
		all = append(all, term)
		return []*event.Instance{compose(all)}
	}
	return nil
}

// pickChain selects one ascending occurrence chain ending at term:
// newest-first when recent is true, oldest-first otherwise. It
// returns nil when no chain exists.
func (d *seqDetector) pickChain(term *event.Instance, recent bool) []*event.Instance {
	n := len(d.positions)
	chain := make([]*event.Instance, n-1)
	if recent {
		upper := term.Seq
		for i := n - 2; i >= 0; i-- {
			var pick *event.Instance
			for _, o := range d.positions[i].queue {
				if o.Seq < upper && (pick == nil || o.Seq > pick.Seq) {
					pick = o
				}
			}
			if pick == nil {
				return nil
			}
			chain[i] = pick
			upper = pick.Seq
		}
		return chain
	}
	lower := uint64(0)
	for i := 0; i < n-1; i++ {
		var pick *event.Instance
		for _, o := range d.positions[i].queue {
			if o.Seq > lower && o.Seq < term.Seq && (pick == nil || o.Seq < pick.Seq) {
				pick = o
			}
		}
		if pick == nil {
			return nil
		}
		chain[i] = pick
		lower = pick.Seq
	}
	return chain
}

// pickChainFrom selects the oldest ascending chain that starts at a
// specific initiator.
func (d *seqDetector) pickChainFrom(init, term *event.Instance) []*event.Instance {
	n := len(d.positions)
	if init.Seq >= term.Seq {
		return nil
	}
	chain := make([]*event.Instance, n-1)
	chain[0] = init
	lower := init.Seq
	for i := 1; i < n-1; i++ {
		var pick *event.Instance
		for _, o := range d.positions[i].queue {
			if o.Seq > lower && o.Seq < term.Seq && (pick == nil || o.Seq < pick.Seq) {
				pick = o
			}
		}
		if pick == nil {
			return nil
		}
		chain[i] = pick
		lower = pick.Seq
	}
	return chain
}

// consume removes the chosen occurrences from their queues.
func (d *seqDetector) consume(chain []*event.Instance) {
	for i, used := range chain {
		pos := d.positions[i]
		for j, o := range pos.queue {
			if o == used {
				pos.queue = append(pos.queue[:j], pos.queue[j+1:]...)
				break
			}
		}
	}
}

func (d *seqDetector) flush(now time.Time) []*event.Instance {
	// Sub-detector flushes may complete end positions.
	var fired []*event.Instance
	last := len(d.positions) - 1
	for i, pos := range d.positions {
		for _, c := range pos.det.flush(now) {
			if i == last {
				fired = append(fired, d.completeWith(c)...)
			} else {
				d.enqueue(i, c)
			}
		}
	}
	return fired
}

func (d *seqDetector) reset() {
	for _, pos := range d.positions {
		pos.queue = nil
		pos.det.reset()
	}
	for _, g := range d.guards {
		g.det.reset()
	}
}

func (d *seqDetector) pending() int {
	n := 0
	for _, pos := range d.positions {
		n += len(pos.queue) + pos.det.pending()
	}
	for _, g := range d.guards {
		n += g.det.pending()
	}
	return n
}

func (d *seqDetector) expire(cutoff time.Time) int {
	n := 0
	for _, pos := range d.positions {
		kept := pos.queue[:0]
		for _, o := range pos.queue {
			if o.Time.Before(cutoff) {
				n++
			} else {
				kept = append(kept, o)
			}
		}
		pos.queue = kept
		n += pos.det.expire(cutoff)
	}
	for _, g := range d.guards {
		n += g.det.expire(cutoff)
	}
	return n
}

// ---- conjunction ----

func (x Conj) build() detector {
	d := &conjDetector{}
	for _, e := range x.Exprs {
		d.positions = append(d.positions, &seqPosition{det: e.build()})
	}
	return d
}

type conjDetector struct {
	positions []*seqPosition
	policy    Policy
}

func (d *conjDetector) effPolicy() Policy {
	if d.policy == 0 {
		return Chronicle
	}
	return d.policy
}

func (d *conjDetector) feed(in *event.Instance) []*event.Instance {
	var fired []*event.Instance
	for i, pos := range d.positions {
		for _, c := range pos.det.feed(in) {
			if d.effPolicy() == Recent {
				pos.queue = pos.queue[:0]
			}
			pos.queue = append(pos.queue, c)
			_ = i
		}
	}
	return append(fired, d.tryComplete()...)
}

func (d *conjDetector) tryComplete() []*event.Instance {
	for _, pos := range d.positions {
		if len(pos.queue) == 0 {
			return nil
		}
	}
	switch d.effPolicy() {
	case Cumulative:
		var all []*event.Instance
		for _, pos := range d.positions {
			all = append(all, pos.queue...)
			pos.queue = pos.queue[:0]
		}
		return []*event.Instance{compose(all)}
	default:
		// Recent and chronicle (and continuous, which for an unordered
		// conjunction degenerates to chronicle): one occurrence per
		// position — oldest for chronicle/continuous, the only one for
		// recent — consumed on firing.
		parts := make([]*event.Instance, len(d.positions))
		for i, pos := range d.positions {
			parts[i] = pos.queue[0]
			pos.queue = pos.queue[1:]
		}
		return []*event.Instance{compose(parts)}
	}
}

func (d *conjDetector) flush(now time.Time) []*event.Instance {
	for _, pos := range d.positions {
		for _, c := range pos.det.flush(now) {
			pos.queue = append(pos.queue, c)
		}
	}
	return d.tryComplete()
}

func (d *conjDetector) reset() {
	for _, pos := range d.positions {
		pos.queue = nil
		pos.det.reset()
	}
}

func (d *conjDetector) pending() int {
	n := 0
	for _, pos := range d.positions {
		n += len(pos.queue) + pos.det.pending()
	}
	return n
}

func (d *conjDetector) expire(cutoff time.Time) int {
	n := 0
	for _, pos := range d.positions {
		kept := pos.queue[:0]
		for _, o := range pos.queue {
			if o.Time.Before(cutoff) {
				n++
			} else {
				kept = append(kept, o)
			}
		}
		pos.queue = kept
		n += pos.det.expire(cutoff)
	}
	return n
}

// ---- negation (standalone) ----

func (x Neg) build() detector { return &negDetector{det: x.Of.build()} }

type negDetector struct {
	det      detector
	poisoned bool
}

func (d *negDetector) feed(in *event.Instance) []*event.Instance {
	if len(d.det.feed(in)) > 0 {
		d.poisoned = true
	}
	return nil
}

func (d *negDetector) flush(now time.Time) []*event.Instance {
	if d.poisoned {
		return nil
	}
	// Non-occurrence completes at the end of the interval; the
	// instance carries no parts — its meaning is the silence itself.
	return []*event.Instance{{Kind: event.KindComposite, Time: now}}
}

func (d *negDetector) reset() {
	d.poisoned = false
	d.det.reset()
}

func (d *negDetector) pending() int { return d.det.pending() }

func (d *negDetector) expire(cutoff time.Time) int { return d.det.expire(cutoff) }

// ---- closure ----

func (x Closure) build() detector { return &closureDetector{det: x.Of.build()} }

type closureDetector struct {
	det  detector
	seen []*event.Instance
}

func (d *closureDetector) feed(in *event.Instance) []*event.Instance {
	d.seen = append(d.seen, d.det.feed(in)...)
	return nil
}

func (d *closureDetector) flush(now time.Time) []*event.Instance {
	d.seen = append(d.seen, d.det.flush(now)...)
	if len(d.seen) == 0 {
		return nil
	}
	out := compose(d.seen)
	d.seen = nil
	return []*event.Instance{out}
}

func (d *closureDetector) reset() {
	d.seen = nil
	d.det.reset()
}

func (d *closureDetector) pending() int { return len(d.seen) + d.det.pending() }

func (d *closureDetector) expire(cutoff time.Time) int {
	n := 0
	kept := d.seen[:0]
	for _, o := range d.seen {
		if o.Time.Before(cutoff) {
			n++
		} else {
			kept = append(kept, o)
		}
	}
	d.seen = kept
	return n + d.det.expire(cutoff)
}

// ---- history ----

func (x History) build() detector {
	return &historyDetector{det: x.Of.build(), count: x.Count}
}

type historyDetector struct {
	det   detector
	count int
	seen  []*event.Instance
}

func (d *historyDetector) feed(in *event.Instance) []*event.Instance {
	var out []*event.Instance
	for _, c := range d.det.feed(in) {
		d.seen = append(d.seen, c)
		if len(d.seen) >= d.count {
			out = append(out, compose(d.seen))
			d.seen = nil
		}
	}
	return out
}

func (d *historyDetector) flush(time.Time) []*event.Instance { return nil }

func (d *historyDetector) reset() {
	d.seen = nil
	d.det.reset()
}

func (d *historyDetector) pending() int { return len(d.seen) + d.det.pending() }

func (d *historyDetector) expire(cutoff time.Time) int {
	n := 0
	kept := d.seen[:0]
	for _, o := range d.seen {
		if o.Time.Before(cutoff) {
			n++
		} else {
			kept = append(kept, o)
		}
	}
	d.seen = kept
	return n + d.det.expire(cutoff)
}

// setPolicy propagates the consumption policy through the graph.
func setPolicy(d detector, p Policy) {
	switch x := d.(type) {
	case *seqDetector:
		x.policy = p
		for _, pos := range x.positions {
			setPolicy(pos.det, p)
		}
		for _, g := range x.guards {
			setPolicy(g.det, p)
		}
	case *conjDetector:
		x.policy = p
		for _, pos := range x.positions {
			setPolicy(pos.det, p)
		}
	case *disjDetector:
		for _, s := range x.subs {
			setPolicy(s, p)
		}
	case *negDetector:
		setPolicy(x.det, p)
	case *closureDetector:
		setPolicy(x.det, p)
	case *historyDetector:
		setPolicy(x.det, p)
	}
}
