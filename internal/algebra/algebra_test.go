package algebra

import (
	"testing"
	"time"

	"repro/internal/event"
)

var base = time.Date(1995, 3, 6, 0, 0, 0, 0, time.UTC)

// ev builds a primitive occurrence with sequence number seq.
func ev(key string, seq uint64, txn uint64) *event.Instance {
	return &event.Instance{
		SpecKey: key,
		Kind:    event.KindMethod,
		Seq:     seq,
		Txn:     txn,
		Time:    base.Add(time.Duration(seq) * time.Second),
	}
}

func mustComposer(t *testing.T, c *Composite) *Composer {
	t.Helper()
	cp, err := NewComposer(c)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

func seq2(policy Policy) *Composite {
	return &Composite{
		Name:   "s",
		Expr:   Seq{Exprs: []Expr{Prim{Key: "E1"}, Prim{Key: "E2"}}},
		Policy: policy,
		Scope:  ScopeTransaction,
	}
}

func TestSeqBasicFiresInOrder(t *testing.T) {
	cp := mustComposer(t, seq2(Chronicle))
	if got := cp.Feed(ev("E1", 1, 1)); len(got) != 0 {
		t.Fatalf("fired on initiator: %v", got)
	}
	got := cp.Feed(ev("E2", 2, 1))
	if len(got) != 1 {
		t.Fatalf("fired %d, want 1", len(got))
	}
	in := got[0]
	if in.SpecKey != "composite:s" || in.Kind != event.KindComposite {
		t.Fatalf("completion identity wrong: %+v", in)
	}
	if len(in.Parts) != 2 || in.Parts[0].SpecKey != "E1" || in.Parts[1].SpecKey != "E2" {
		t.Fatalf("parts = %v", in.Parts)
	}
	if in.Txn != 1 {
		t.Fatalf("single-txn composite Txn = %d, want 1", in.Txn)
	}
}

func TestSeqOutOfOrderDoesNotFire(t *testing.T) {
	cp := mustComposer(t, seq2(Chronicle))
	if got := cp.Feed(ev("E2", 1, 1)); len(got) != 0 {
		t.Fatalf("E2 alone fired: %v", got)
	}
	if got := cp.Feed(ev("E1", 2, 1)); len(got) != 0 {
		t.Fatalf("E1 after E2 fired: %v", got)
	}
	// But a later E2 completes with the stored E1.
	if got := cp.Feed(ev("E2", 3, 1)); len(got) != 1 {
		t.Fatalf("E1;E2 did not fire: %v", got)
	}
}

// The paper's §3.4 example: e1, e1', e2 arrive; which e1 is used?
func TestConsumptionPolicyPaperExample(t *testing.T) {
	e1 := func(seq uint64) *event.Instance { return ev("E1", seq, 1) }
	e2 := ev("E2", 3, 1)

	t.Run("recent uses e1'", func(t *testing.T) {
		cp := mustComposer(t, seq2(Recent))
		cp.Feed(e1(1))
		cp.Feed(e1(2))
		got := cp.Feed(e2)
		if len(got) != 1 || got[0].Parts[0].Seq != 2 {
			t.Fatalf("recent picked seq %d, want 2 (the most recent)", got[0].Parts[0].Seq)
		}
	})
	t.Run("chronicle uses e1", func(t *testing.T) {
		cp := mustComposer(t, seq2(Chronicle))
		cp.Feed(e1(1))
		cp.Feed(e1(2))
		got := cp.Feed(e2)
		if len(got) != 1 || got[0].Parts[0].Seq != 1 {
			t.Fatalf("chronicle picked seq %d, want 1 (chronological)", got[0].Parts[0].Seq)
		}
	})
	t.Run("continuous fires one window per initiator", func(t *testing.T) {
		cp := mustComposer(t, seq2(Continuous))
		cp.Feed(e1(1))
		cp.Feed(e1(2))
		got := cp.Feed(e2)
		if len(got) != 2 {
			t.Fatalf("continuous fired %d, want 2", len(got))
		}
	})
	t.Run("cumulative carries both", func(t *testing.T) {
		cp := mustComposer(t, seq2(Cumulative))
		cp.Feed(e1(1))
		cp.Feed(e1(2))
		got := cp.Feed(e2)
		if len(got) != 1 || len(got[0].Parts) != 3 {
			t.Fatalf("cumulative parts = %d, want 3 (e1, e1', e2)", len(got[0].Parts))
		}
	})
}

func TestChronicleConsumesInOrder(t *testing.T) {
	cp := mustComposer(t, seq2(Chronicle))
	cp.Feed(ev("E1", 1, 1))
	cp.Feed(ev("E1", 2, 1))
	first := cp.Feed(ev("E2", 3, 1))
	second := cp.Feed(ev("E2", 4, 1))
	if first[0].Parts[0].Seq != 1 || second[0].Parts[0].Seq != 2 {
		t.Fatalf("chronicle order wrong: %d then %d", first[0].Parts[0].Seq, second[0].Parts[0].Seq)
	}
	if got := cp.Feed(ev("E2", 5, 1)); len(got) != 0 {
		t.Fatalf("fired with consumed initiators: %v", got)
	}
}

func TestRecentReusesInitiator(t *testing.T) {
	cp := mustComposer(t, seq2(Recent))
	cp.Feed(ev("E1", 1, 1))
	a := cp.Feed(ev("E2", 2, 1))
	b := cp.Feed(ev("E2", 3, 1))
	if len(a) != 1 || len(b) != 1 {
		t.Fatalf("recent should reuse the initiator: %d, %d", len(a), len(b))
	}
	if a[0].Parts[0].Seq != 1 || b[0].Parts[0].Seq != 1 {
		t.Fatal("reused initiator changed")
	}
}

func TestSeqThreeStage(t *testing.T) {
	c := &Composite{
		Name:   "s3",
		Expr:   Seq{Exprs: []Expr{Prim{Key: "A"}, Prim{Key: "B"}, Prim{Key: "C"}}},
		Policy: Chronicle,
		Scope:  ScopeTransaction,
	}
	cp := mustComposer(t, c)
	cp.Feed(ev("B", 1, 1)) // B before A must not count
	cp.Feed(ev("A", 2, 1))
	if got := cp.Feed(ev("C", 3, 1)); len(got) != 0 {
		t.Fatalf("A;B;C fired without B after A: %v", got)
	}
	cp.Feed(ev("B", 4, 1))
	got := cp.Feed(ev("C", 5, 1))
	if len(got) != 1 {
		t.Fatalf("A;B;C fired %d, want 1", len(got))
	}
	seqs := []uint64{got[0].Parts[0].Seq, got[0].Parts[1].Seq, got[0].Parts[2].Seq}
	if seqs[0] != 2 || seqs[1] != 4 || seqs[2] != 5 {
		t.Fatalf("chain = %v, want [2 4 5]", seqs)
	}
}

func TestConjAnyOrder(t *testing.T) {
	c := &Composite{
		Name:   "c",
		Expr:   Conj{Exprs: []Expr{Prim{Key: "A"}, Prim{Key: "B"}}},
		Policy: Chronicle,
		Scope:  ScopeTransaction,
	}
	cp := mustComposer(t, c)
	if got := cp.Feed(ev("B", 1, 1)); len(got) != 0 {
		t.Fatal("conj fired with one constituent")
	}
	if got := cp.Feed(ev("A", 2, 1)); len(got) != 1 {
		t.Fatalf("conj did not fire when completed: %v", got)
	}
}

func TestDisjEitherFires(t *testing.T) {
	c := &Composite{
		Name:   "d",
		Expr:   Disj{Exprs: []Expr{Prim{Key: "A"}, Prim{Key: "B"}}},
		Policy: Chronicle,
		Scope:  ScopeTransaction,
	}
	cp := mustComposer(t, c)
	if got := cp.Feed(ev("A", 1, 1)); len(got) != 1 {
		t.Fatal("disj did not fire on A")
	}
	if got := cp.Feed(ev("B", 2, 1)); len(got) != 1 {
		t.Fatal("disj did not fire on B")
	}
	if got := cp.Feed(ev("C", 3, 1)); len(got) != 0 {
		t.Fatal("disj fired on unrelated event")
	}
}

func TestSeqWithNegationGuard(t *testing.T) {
	// A; !B; C — fire on A..C without B in between.
	c := &Composite{
		Name:   "g",
		Expr:   Seq{Exprs: []Expr{Prim{Key: "A"}, Neg{Of: Prim{Key: "B"}}, Prim{Key: "C"}}},
		Policy: Chronicle,
		Scope:  ScopeTransaction,
	}
	cp := mustComposer(t, c)
	cp.Feed(ev("A", 1, 1))
	cp.Feed(ev("B", 2, 1)) // poisons the pending A
	if got := cp.Feed(ev("C", 3, 1)); len(got) != 0 {
		t.Fatalf("guarded sequence fired despite B: %v", got)
	}
	cp.Feed(ev("A", 4, 1))
	if got := cp.Feed(ev("C", 5, 1)); len(got) != 1 {
		t.Fatalf("guarded sequence did not fire without B: %v", got)
	}
}

func TestStandaloneNegationFiresAtFlush(t *testing.T) {
	c := &Composite{
		Name:   "n",
		Expr:   Neg{Of: Prim{Key: "heartbeat"}},
		Policy: Chronicle,
		Scope:  ScopeTransaction,
	}
	cp := mustComposer(t, c)
	if got := cp.Flush(base.Add(time.Minute)); len(got) != 1 {
		t.Fatalf("negation without occurrence did not fire at flush: %v", got)
	}
	// Second span: heartbeat arrives, no firing.
	cp.Feed(ev("heartbeat", 1, 1))
	if got := cp.Flush(base.Add(2 * time.Minute)); len(got) != 0 {
		t.Fatalf("negation fired despite occurrence: %v", got)
	}
	// Third span: poisoning was reset by the flush.
	if got := cp.Flush(base.Add(3 * time.Minute)); len(got) != 1 {
		t.Fatal("negation state not reset between life-spans")
	}
}

func TestClosureCollapsesAtFlush(t *testing.T) {
	c := &Composite{
		Name:   "cl",
		Expr:   Closure{Of: Prim{Key: "tick"}},
		Policy: Chronicle,
		Scope:  ScopeTransaction,
	}
	cp := mustComposer(t, c)
	for i := uint64(1); i <= 5; i++ {
		if got := cp.Feed(ev("tick", i, 1)); len(got) != 0 {
			t.Fatalf("closure fired before flush: %v", got)
		}
	}
	got := cp.Flush(base.Add(time.Minute))
	if len(got) != 1 || len(got[0].Parts) != 5 {
		t.Fatalf("closure flush = %v", got)
	}
	if got := cp.Flush(base.Add(2 * time.Minute)); len(got) != 0 {
		t.Fatal("empty closure fired")
	}
}

func TestHistoryCountFires(t *testing.T) {
	c := &Composite{
		Name:   "h",
		Expr:   History{Of: Prim{Key: "alarm"}, Count: 3},
		Policy: Chronicle,
		Scope:  ScopeTransaction,
	}
	cp := mustComposer(t, c)
	cp.Feed(ev("alarm", 1, 1))
	cp.Feed(ev("alarm", 2, 1))
	got := cp.Feed(ev("alarm", 3, 1))
	if len(got) != 1 || len(got[0].Parts) != 3 {
		t.Fatalf("history(3) = %v", got)
	}
	// Counter restarts.
	cp.Feed(ev("alarm", 4, 1))
	cp.Feed(ev("alarm", 5, 1))
	if got := cp.Feed(ev("alarm", 6, 1)); len(got) != 1 {
		t.Fatal("history did not restart")
	}
}

func TestNestedComposition(t *testing.T) {
	// (A & B); C
	c := &Composite{
		Name: "nested",
		Expr: Seq{Exprs: []Expr{
			Conj{Exprs: []Expr{Prim{Key: "A"}, Prim{Key: "B"}}},
			Prim{Key: "C"},
		}},
		Policy: Chronicle,
		Scope:  ScopeTransaction,
	}
	cp := mustComposer(t, c)
	cp.Feed(ev("B", 1, 1))
	if got := cp.Feed(ev("C", 2, 1)); len(got) != 0 {
		t.Fatal("fired before conjunction complete")
	}
	cp.Feed(ev("A", 3, 1))
	got := cp.Feed(ev("C", 4, 1))
	if len(got) != 1 {
		t.Fatalf("nested fired %d, want 1", len(got))
	}
	flat := got[0].Flatten()
	if len(flat) != 3 {
		t.Fatalf("nested flatten = %d parts, want 3", len(flat))
	}
}

func TestMultiTxnCompositeTxnZero(t *testing.T) {
	c := &Composite{
		Name:     "x",
		Expr:     Seq{Exprs: []Expr{Prim{Key: "E1"}, Prim{Key: "E2"}}},
		Policy:   Chronicle,
		Scope:    ScopeGlobal,
		Validity: time.Hour,
	}
	cp := mustComposer(t, c)
	cp.Feed(ev("E1", 1, 7))
	got := cp.Feed(ev("E2", 2, 8))
	if len(got) != 1 {
		t.Fatal("cross-txn composite did not fire")
	}
	if got[0].Txn != 0 {
		t.Fatalf("multi-txn composite Txn = %d, want 0", got[0].Txn)
	}
	txns := got[0].Transactions()
	if !txns[7] || !txns[8] {
		t.Fatalf("constituent txns = %v", txns)
	}
}

func TestFlushDiscardsSemiComposed(t *testing.T) {
	cp := mustComposer(t, seq2(Chronicle))
	cp.Feed(ev("E1", 1, 1))
	if cp.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", cp.Pending())
	}
	cp.Flush(base)
	if cp.Pending() != 0 {
		t.Fatalf("Pending after flush = %d, want 0", cp.Pending())
	}
	if got := cp.Feed(ev("E2", 2, 1)); len(got) != 0 {
		t.Fatal("stale initiator survived flush")
	}
}

func TestValidityExpiry(t *testing.T) {
	c := &Composite{
		Name:     "v",
		Expr:     Seq{Exprs: []Expr{Prim{Key: "E1"}, Prim{Key: "E2"}}},
		Policy:   Chronicle,
		Scope:    ScopeGlobal,
		Validity: 10 * time.Second,
	}
	cp := mustComposer(t, c)
	cp.Feed(ev("E1", 1, 1)) // at base+1s
	dropped := cp.Expire(base.Add(30 * time.Second))
	if dropped != 1 {
		t.Fatalf("Expire dropped %d, want 1", dropped)
	}
	if got := cp.Feed(ev("E2", 2, 2)); len(got) != 0 {
		t.Fatal("expired initiator completed a composite")
	}
	// Within validity nothing is dropped.
	cp.Feed(ev("E1", 40, 3))
	if dropped := cp.Expire(base.Add(45 * time.Second)); dropped != 0 {
		t.Fatalf("Expire dropped %d, want 0", dropped)
	}
}

func TestGlobalScopeRequiresValidity(t *testing.T) {
	c := &Composite{
		Name:   "bad",
		Expr:   Seq{Exprs: []Expr{Prim{Key: "E1"}, Prim{Key: "E2"}}},
		Policy: Chronicle,
		Scope:  ScopeGlobal,
	}
	if _, err := NewComposer(c); err == nil {
		t.Fatal("global composite without validity accepted")
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	bad := []Expr{
		nil,
		Prim{},
		Seq{Exprs: []Expr{Prim{Key: "A"}}},
		Seq{Exprs: []Expr{Neg{Of: Prim{Key: "A"}}, Prim{Key: "B"}}},
		Seq{Exprs: []Expr{Prim{Key: "A"}, Neg{Of: Prim{Key: "B"}}}},
		Seq{Exprs: []Expr{Prim{Key: "A"}, Neg{Of: Prim{Key: "B"}}, Neg{Of: Prim{Key: "C"}}}},
		Conj{Exprs: []Expr{Prim{Key: "A"}}},
		Disj{},
		Neg{Of: Neg{Of: Prim{Key: "A"}}},
		History{Of: Prim{Key: "A"}, Count: 0},
	}
	for i, e := range bad {
		if err := Validate(e); err == nil {
			t.Errorf("case %d: Validate(%v) accepted malformed expression", i, e)
		}
	}
	good := []Expr{
		Prim{Key: "A"},
		Seq{Exprs: []Expr{Prim{Key: "A"}, Prim{Key: "B"}}},
		Seq{Exprs: []Expr{Prim{Key: "A"}, Neg{Of: Prim{Key: "B"}}, Prim{Key: "C"}}},
		Closure{Of: Prim{Key: "A"}},
		History{Of: Prim{Key: "A"}, Count: 2},
		Neg{Of: Prim{Key: "A"}},
	}
	for i, e := range good {
		if err := Validate(e); err != nil {
			t.Errorf("case %d: Validate(%v) rejected valid expression: %v", i, e, err)
		}
	}
}

func TestPrimitiveKeys(t *testing.T) {
	e := Seq{Exprs: []Expr{
		Prim{Key: "A"},
		Neg{Of: Prim{Key: "B"}},
		Conj{Exprs: []Expr{Prim{Key: "C"}, Prim{Key: "A"}}},
	}}
	keys := PrimitiveKeys(e)
	if len(keys) != 3 {
		t.Fatalf("PrimitiveKeys = %v, want 3 distinct", keys)
	}
}

func TestExprStrings(t *testing.T) {
	e := Seq{Exprs: []Expr{
		Prim{Key: "A"},
		Neg{Of: Prim{Key: "B"}},
		Disj{Exprs: []Expr{Prim{Key: "C"}, History{Of: Prim{Key: "D"}, Count: 2}}},
		Closure{Of: Prim{Key: "E"}},
	}}
	s := e.String()
	if s == "" {
		t.Fatal("empty String")
	}
	for _, sub := range []string{"A", "!B", "C", "times(2, D)", "E*"} {
		if !contains(s, sub) {
			t.Errorf("String %q missing %q", s, sub)
		}
	}
	for _, p := range []Policy{Recent, Chronicle, Continuous, Cumulative} {
		if p.String() == "" {
			t.Errorf("Policy %d empty String", p)
		}
	}
	if ScopeTransaction.String() == ScopeGlobal.String() {
		t.Error("scope strings identical")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestListensAndKeys(t *testing.T) {
	cp := mustComposer(t, seq2(Chronicle))
	if !cp.Listens("E1") || !cp.Listens("E2") || cp.Listens("E3") {
		t.Fatal("Listens wrong")
	}
	if len(cp.Keys()) != 2 {
		t.Fatalf("Keys = %v", cp.Keys())
	}
}

func TestClosureOfSeq(t *testing.T) {
	// (A;B)* — collapse all A;B pairs in the life-span into one event.
	c := &Composite{
		Name:   "cs",
		Expr:   Closure{Of: Seq{Exprs: []Expr{Prim{Key: "A"}, Prim{Key: "B"}}}},
		Policy: Chronicle,
		Scope:  ScopeTransaction,
	}
	cp := mustComposer(t, c)
	cp.Feed(ev("A", 1, 1))
	cp.Feed(ev("B", 2, 1))
	cp.Feed(ev("A", 3, 1))
	cp.Feed(ev("B", 4, 1))
	got := cp.Flush(base.Add(time.Minute))
	if len(got) != 1 || len(got[0].Parts) != 2 {
		t.Fatalf("closure-of-seq flush: %d fired, parts=%d; want 1 fired with 2 pairs",
			len(got), len(got[0].Parts))
	}
}
