package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// Reference model for chronicle Seq(E1,E2): each E2 consumes the
// oldest unconsumed earlier E1.
func chronicleModel(stream []bool) int {
	pending, fired := 0, 0
	for _, isE1 := range stream {
		if isE1 {
			pending++
		} else if pending > 0 {
			pending--
			fired++
		}
	}
	return fired
}

func TestChronicleSeqMatchesModelProperty(t *testing.T) {
	f := func(pattern []bool) bool {
		cp, err := NewComposer(seq2(Chronicle))
		if err != nil {
			return false
		}
		fired := 0
		for i, isE1 := range pattern {
			key := "E2"
			if isE1 {
				key = "E1"
			}
			fired += len(cp.Feed(ev(key, uint64(i+1), 1)))
		}
		return fired == chronicleModel(pattern)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Reference model for recent Seq(E1,E2): an E2 fires iff at least one
// E1 has occurred before it (the most recent E1 is reused).
func recentModel(stream []bool) int {
	seenE1, fired := false, 0
	for _, isE1 := range stream {
		if isE1 {
			seenE1 = true
		} else if seenE1 {
			fired++
		}
	}
	return fired
}

func TestRecentSeqMatchesModelProperty(t *testing.T) {
	f := func(pattern []bool) bool {
		cp, err := NewComposer(seq2(Recent))
		if err != nil {
			return false
		}
		fired := 0
		for i, isE1 := range pattern {
			key := "E2"
			if isE1 {
				key = "E1"
			}
			fired += len(cp.Feed(ev(key, uint64(i+1), 1)))
		}
		return fired == recentModel(pattern)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Reference model for continuous Seq(E1,E2): each E2 completes every
// open E1 window and closes them all.
func continuousModel(stream []bool) int {
	open, fired := 0, 0
	for _, isE1 := range stream {
		if isE1 {
			open++
		} else {
			fired += open
			open = 0
		}
	}
	return fired
}

func TestContinuousSeqMatchesModelProperty(t *testing.T) {
	f := func(pattern []bool) bool {
		cp, err := NewComposer(seq2(Continuous))
		if err != nil {
			return false
		}
		fired := 0
		for i, isE1 := range pattern {
			key := "E2"
			if isE1 {
				key = "E1"
			}
			fired += len(cp.Feed(ev(key, uint64(i+1), 1)))
		}
		return fired == continuousModel(pattern)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: every completion of any Seq policy is internally ordered
// (constituent Seq numbers strictly ascending for recent/chronicle).
func TestSeqCompletionsOrderedProperty(t *testing.T) {
	policies := []Policy{Recent, Chronicle}
	f := func(pattern []bool, pIdx uint8) bool {
		policy := policies[int(pIdx)%len(policies)]
		cp, err := NewComposer(seq2(policy))
		if err != nil {
			return false
		}
		for i, isE1 := range pattern {
			key := "E2"
			if isE1 {
				key = "E1"
			}
			for _, fired := range cp.Feed(ev(key, uint64(i+1), 1)) {
				prev := uint64(0)
				for _, p := range fired.Parts {
					if p.Seq <= prev {
						return false
					}
					prev = p.Seq
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Flush always empties semi-composed state, regardless of
// operator and stream.
func TestFlushAlwaysEmptiesProperty(t *testing.T) {
	exprs := []Expr{
		Seq{Exprs: []Expr{Prim{Key: "A"}, Prim{Key: "B"}, Prim{Key: "C"}}},
		Conj{Exprs: []Expr{Prim{Key: "A"}, Prim{Key: "B"}}},
		Closure{Of: Prim{Key: "A"}},
		History{Of: Prim{Key: "A"}, Count: 5},
		Seq{Exprs: []Expr{Prim{Key: "A"}, Neg{Of: Prim{Key: "B"}}, Prim{Key: "C"}}},
	}
	keys := []string{"A", "B", "C"}
	f := func(seed int64, exprIdx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := &Composite{
			Name:   "p",
			Expr:   exprs[int(exprIdx)%len(exprs)],
			Policy: Chronicle,
			Scope:  ScopeTransaction,
		}
		cp, err := NewComposer(c)
		if err != nil {
			return false
		}
		for i := 0; i < 50; i++ {
			cp.Feed(ev(keys[rng.Intn(len(keys))], uint64(i+1), 1))
		}
		cp.Flush(base.Add(time.Hour))
		return cp.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Expire never leaves an occurrence older than the cutoff,
// and expiring with a zero validity does nothing.
func TestExpireProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := &Composite{
			Name:     "e",
			Expr:     Conj{Exprs: []Expr{Prim{Key: "A"}, Prim{Key: "B"}, Prim{Key: "Z"}}},
			Policy:   Cumulative,
			Scope:    ScopeGlobal,
			Validity: 10 * time.Second,
		}
		cp, err := NewComposer(c)
		if err != nil {
			return false
		}
		// Feed only A/B so nothing completes; occurrences accumulate.
		for i := 0; i < 30; i++ {
			key := "A"
			if rng.Intn(2) == 0 {
				key = "B"
			}
			cp.Feed(ev(key, uint64(i+1), 1))
		}
		before := cp.Pending()
		dropped := cp.Expire(base.Add(100 * time.Second))
		return before == 30 && dropped+cp.Pending() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
