package algebra

import (
	"fmt"
	"time"

	"repro/internal/event"
)

// Scope says which life-span rule governs a composite event (§3.3).
type Scope int

// Composite event scopes.
const (
	// ScopeTransaction composes only events originating in a single
	// transaction; semi-composed state is discarded at EOT.
	ScopeTransaction Scope = iota + 1
	// ScopeGlobal composes events across transactions; a validity
	// interval is mandatory ("composite events without an explicit or
	// implicit validity interval are illegal").
	ScopeGlobal
)

// String implements fmt.Stringer.
func (s Scope) String() string {
	if s == ScopeTransaction {
		return "transaction"
	}
	return "global"
}

// Composite declares a composite event: a named algebra expression
// with a consumption policy, a scope, and (for global scope) a
// validity interval.
type Composite struct {
	Name     string
	Expr     Expr
	Policy   Policy
	Scope    Scope
	Validity time.Duration
}

// Key returns the spec key composite instances are raised under.
func (c *Composite) Key() string { return event.CompositeSpec{Name: c.Name}.Key() }

// Validate checks the declaration against the paper's rules.
func (c *Composite) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("algebra: composite needs a name")
	}
	if err := Validate(c.Expr); err != nil {
		return fmt.Errorf("algebra: composite %q: %w", c.Name, err)
	}
	switch c.Scope {
	case ScopeTransaction:
		// Life-span is the transaction; an additional validity
		// interval is permitted but not required.
	case ScopeGlobal:
		if c.Validity <= 0 {
			return fmt.Errorf("algebra: composite %q spans transactions but has no validity interval", c.Name)
		}
	default:
		return fmt.Errorf("algebra: composite %q has no scope", c.Name)
	}
	switch c.Policy {
	case Recent, Chronicle, Continuous, Cumulative:
	default:
		return fmt.Errorf("algebra: composite %q has invalid consumption policy", c.Name)
	}
	return nil
}

// Composer is one instantiated composition graph for a composite
// event — one of the paper's "many small compositors" (§6.3). It is
// not safe for concurrent use; the ECA layer runs each composer on
// its own goroutine.
type Composer struct {
	comp *Composite
	root detector
	keys map[string]bool
}

// NewComposer instantiates the composition graph for c.
func NewComposer(c *Composite) (*Composer, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	root := c.Expr.build()
	setPolicy(root, c.Policy)
	keys := make(map[string]bool)
	c.Expr.collectKeys(keys)
	return &Composer{comp: c, root: root, keys: keys}, nil
}

// Composite returns the declaration this composer detects.
func (cp *Composer) Composite() *Composite { return cp.comp }

// Listens reports whether the composer consumes the given spec key.
func (cp *Composer) Listens(specKey string) bool { return cp.keys[specKey] }

// Keys returns the primitive spec keys the composer listens to.
func (cp *Composer) Keys() []string {
	out := make([]string, 0, len(cp.keys))
	for k := range cp.keys {
		out = append(out, k)
	}
	return out
}

// Feed delivers one occurrence and returns any completed composite
// instances, stamped with the composite's spec key.
func (cp *Composer) Feed(in *event.Instance) []*event.Instance {
	return cp.finish(cp.root.feed(in))
}

// Flush ends the composer's life-span: end-of-interval operators
// complete, everything else is discarded.
func (cp *Composer) Flush(now time.Time) []*event.Instance {
	out := cp.finish(cp.root.flush(now))
	cp.root.reset()
	return out
}

// Reset discards all semi-composed state without completing anything.
func (cp *Composer) Reset() { cp.root.reset() }

// Pending reports the number of buffered semi-composed occurrences.
func (cp *Composer) Pending() int { return cp.root.pending() }

// Expire garbage-collects semi-composed occurrences whose validity
// interval has lapsed, returning how many were dropped.
func (cp *Composer) Expire(now time.Time) int {
	if cp.comp.Validity <= 0 {
		return 0
	}
	return cp.root.expire(now.Add(-cp.comp.Validity))
}

// finish stamps raw completions with the composite identity and
// deduces the originating transaction (single-transaction composites
// carry it; multi-transaction ones carry zero).
func (cp *Composer) finish(raw []*event.Instance) []*event.Instance {
	for _, in := range raw {
		in.SpecKey = cp.comp.Key()
		in.Kind = event.KindComposite
		txns := in.Transactions()
		if len(txns) == 1 {
			for t := range txns {
				in.Txn = t
			}
		} else {
			in.Txn = 0
		}
	}
	return raw
}
