package algebra

import (
	"testing"
	"time"

	"repro/internal/event"
)

func conj2(policy Policy) *Composite {
	return &Composite{
		Name:   "c",
		Expr:   Conj{Exprs: []Expr{Prim{Key: "A"}, Prim{Key: "B"}}},
		Policy: policy,
		Scope:  ScopeTransaction,
	}
}

func TestConjRecentKeepsLatestOnly(t *testing.T) {
	cp := mustComposer(t, conj2(Recent))
	cp.Feed(ev("A", 1, 1))
	cp.Feed(ev("A", 2, 1)) // replaces seq 1
	got := cp.Feed(ev("B", 3, 1))
	if len(got) != 1 {
		t.Fatalf("fired %d, want 1", len(got))
	}
	var aSeq uint64
	for _, p := range got[0].Parts {
		if p.SpecKey == "A" {
			aSeq = p.Seq
		}
	}
	if aSeq != 2 {
		t.Fatalf("recent conj used A#%d, want 2", aSeq)
	}
}

func TestConjChronicleConsumesOldest(t *testing.T) {
	cp := mustComposer(t, conj2(Chronicle))
	cp.Feed(ev("A", 1, 1))
	cp.Feed(ev("A", 2, 1))
	first := cp.Feed(ev("B", 3, 1))
	if len(first) != 1 || first[0].Parts[0].Seq != 1 {
		t.Fatalf("first conj = %v", first)
	}
	second := cp.Feed(ev("B", 4, 1))
	if len(second) != 1 || second[0].Parts[0].Seq != 2 {
		t.Fatalf("second conj = %v", second)
	}
	if got := cp.Feed(ev("B", 5, 1)); len(got) != 0 {
		t.Fatal("conj fired without unconsumed A")
	}
}

func TestConjCumulativeCarriesAll(t *testing.T) {
	cp := mustComposer(t, conj2(Cumulative))
	cp.Feed(ev("A", 1, 1))
	cp.Feed(ev("A", 2, 1))
	cp.Feed(ev("A", 3, 1))
	got := cp.Feed(ev("B", 4, 1))
	if len(got) != 1 || len(got[0].Parts) != 4 {
		t.Fatalf("cumulative conj parts = %d, want 4", len(got[0].Parts))
	}
	if cp.Pending() != 0 {
		t.Fatalf("cumulative left %d pending", cp.Pending())
	}
}

func TestConjThreeWay(t *testing.T) {
	c := &Composite{
		Name:   "c3",
		Expr:   Conj{Exprs: []Expr{Prim{Key: "A"}, Prim{Key: "B"}, Prim{Key: "C"}}},
		Policy: Chronicle,
		Scope:  ScopeTransaction,
	}
	cp := mustComposer(t, c)
	cp.Feed(ev("C", 1, 1))
	cp.Feed(ev("A", 2, 1))
	if got := cp.Feed(ev("A", 3, 1)); len(got) != 0 {
		t.Fatal("fired without B")
	}
	got := cp.Feed(ev("B", 4, 1))
	if len(got) != 1 {
		t.Fatalf("3-way conj fired %d, want 1", len(got))
	}
}

func TestNegInsideConj(t *testing.T) {
	// A & !B over a life-span: fires at flush when A occurred and B
	// did not.
	c := &Composite{
		Name:   "an",
		Expr:   Conj{Exprs: []Expr{Prim{Key: "A"}, Neg{Of: Prim{Key: "B"}}}},
		Policy: Chronicle,
		Scope:  ScopeTransaction,
	}
	cp := mustComposer(t, c)
	cp.Feed(ev("A", 1, 1))
	got := cp.Flush(base.Add(time.Minute))
	if len(got) != 1 {
		t.Fatalf("A & !B did not fire at flush: %v", got)
	}
	// Second span: both occur — no firing.
	cp.Feed(ev("A", 2, 1))
	cp.Feed(ev("B", 3, 1))
	if got := cp.Flush(base.Add(2 * time.Minute)); len(got) != 0 {
		t.Fatalf("A & !B fired despite B: %v", got)
	}
}

func TestDisjOfSeqs(t *testing.T) {
	c := &Composite{
		Name: "dos",
		Expr: Disj{Exprs: []Expr{
			Seq{Exprs: []Expr{Prim{Key: "A"}, Prim{Key: "B"}}},
			Seq{Exprs: []Expr{Prim{Key: "C"}, Prim{Key: "D"}}},
		}},
		Policy: Chronicle,
		Scope:  ScopeTransaction,
	}
	cp := mustComposer(t, c)
	cp.Feed(ev("A", 1, 1))
	cp.Feed(ev("C", 2, 1))
	if got := cp.Feed(ev("D", 3, 1)); len(got) != 1 {
		t.Fatalf("C;D branch fired %d, want 1", len(got))
	}
	if got := cp.Feed(ev("B", 4, 1)); len(got) != 1 {
		t.Fatalf("A;B branch fired %d, want 1", len(got))
	}
}

func TestHistoryOfConj(t *testing.T) {
	// times(2, A & B): two completed conjunctions.
	c := &Composite{
		Name:   "hc",
		Expr:   History{Of: Conj{Exprs: []Expr{Prim{Key: "A"}, Prim{Key: "B"}}}, Count: 2},
		Policy: Chronicle,
		Scope:  ScopeTransaction,
	}
	cp := mustComposer(t, c)
	cp.Feed(ev("A", 1, 1))
	if got := cp.Feed(ev("B", 2, 1)); len(got) != 0 {
		t.Fatal("history fired after one conjunction")
	}
	cp.Feed(ev("B", 3, 1))
	got := cp.Feed(ev("A", 4, 1))
	if len(got) != 1 {
		t.Fatalf("times(2, A&B) fired %d, want 1", len(got))
	}
	flat := got[0].Flatten()
	if len(flat) != 4 {
		t.Fatalf("flattened constituents = %d, want 4", len(flat))
	}
}

func TestSeqGuardOnlyKillsProtectedPrefix(t *testing.T) {
	// A; !X; B; C — X kills pending As and Bs? No: the guard sits
	// between A and B, so X invalidates only pending As.
	c := &Composite{
		Name: "gp",
		Expr: Seq{Exprs: []Expr{
			Prim{Key: "A"}, Neg{Of: Prim{Key: "X"}}, Prim{Key: "B"}, Prim{Key: "C"},
		}},
		Policy: Chronicle,
		Scope:  ScopeTransaction,
	}
	cp := mustComposer(t, c)
	cp.Feed(ev("A", 1, 1))
	cp.Feed(ev("B", 2, 1)) // chain A(1) < B(2) already established
	cp.Feed(ev("X", 3, 1)) // kills pending As, but B remains queued
	if got := cp.Feed(ev("C", 4, 1)); len(got) != 0 {
		// The A was consumed from position 0? No: chronicle consumes
		// at completion only. A was killed, so no full chain exists.
		t.Fatalf("guarded seq fired after X: %v", got)
	}
	// A fresh A after X plus the old B cannot chain (A.seq > B.seq);
	// a new B and C complete it.
	cp.Feed(ev("A", 5, 1))
	cp.Feed(ev("B", 6, 1))
	if got := cp.Feed(ev("C", 7, 1)); len(got) != 1 {
		t.Fatalf("guarded seq did not fire on clean run: %v", got)
	}
}

func TestCompositeKeyAndValidation(t *testing.T) {
	c := conj2(Chronicle)
	if want := (event.CompositeSpec{Name: "c"}).Key(); c.Key() != want {
		t.Fatalf("Key = %q, want %q", c.Key(), want)
	}
	if err := (&Composite{Name: "", Expr: Prim{Key: "A"}, Policy: Chronicle, Scope: ScopeTransaction}).Validate(); err == nil {
		t.Fatal("nameless composite validated")
	}
	if err := (&Composite{Name: "x", Expr: Prim{Key: "A"}, Policy: Chronicle}).Validate(); err == nil {
		t.Fatal("scopeless composite validated")
	}
	if err := (&Composite{Name: "x", Expr: Prim{Key: "A"}, Scope: ScopeTransaction}).Validate(); err == nil {
		t.Fatal("policyless composite validated")
	}
}
