package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureFindings loads the fixture module under testdata/src and runs
// the full suite over it.
func fixtureFindings(t *testing.T) (string, []Finding) {
	t.Helper()
	root, err := filepath.Abs("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		for _, e := range p.TypeErrs {
			t.Errorf("fixture %s: type error: %v", p.Path, e)
		}
	}
	return root, Run(pkgs, Suite())
}

// TestSuiteGolden pins the suite's findings on the seeded fixture
// module — one deliberate violation per analyzer, plus the
// suppression pseudo-analyzer's own diagnostics.
func TestSuiteGolden(t *testing.T) {
	root, findings := fixtureFindings(t)
	var buf strings.Builder
	for _, f := range findings {
		rel, err := filepath.Rel(root, f.Pos.Filename)
		if err != nil {
			rel = f.Pos.Filename
		}
		fmt.Fprintf(&buf, "%s:%d: [%s] %s\n", filepath.ToSlash(rel), f.Pos.Line, f.Analyzer, f.Msg)
	}
	got := buf.String()
	golden := filepath.Join("testdata", "findings.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("findings diverge from golden\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestEveryAnalyzerFires guards the seeding itself: each analyzer in
// the suite must catch at least one fixture violation, so a regression
// that silences an analyzer fails here rather than vanishing from the
// golden file unnoticed.
func TestEveryAnalyzerFires(t *testing.T) {
	_, findings := fixtureFindings(t)
	fired := make(map[string]int)
	for _, f := range findings {
		fired[f.Analyzer]++
	}
	for _, a := range Suite() {
		if fired[a.Name] == 0 {
			t.Errorf("analyzer %s reported nothing on the seeded fixture", a.Name)
		}
	}
	if fired["suppression"] == 0 {
		t.Errorf("suppression diagnostics missing on the seeded fixture")
	}
}

// TestSuppressionWithJustification verifies a reviewed //lint:allow
// with a reason removes the finding it covers: the fixture's okClock
// sleep must not surface.
func TestSuppressionWithJustification(t *testing.T) {
	_, findings := fixtureFindings(t)
	for _, f := range findings {
		if f.Analyzer == "clockusage" && strings.Contains(f.Msg, "time.Sleep") {
			t.Errorf("suppressed finding leaked: %s", f)
		}
	}
}

// TestExemptPackages verifies the ownership carve-outs: internal/obs
// may use time and sync/atomic freely.
func TestExemptPackages(t *testing.T) {
	_, findings := fixtureFindings(t)
	for _, f := range findings {
		if strings.Contains(filepath.ToSlash(f.Pos.Filename), "internal/obs/") {
			t.Errorf("finding in exempt package: %s", f)
		}
	}
}
