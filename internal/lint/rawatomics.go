package lint

import (
	"strings"
)

// RawAtomics keeps ad-hoc sync/atomic counters out of the tree: the
// PR-1 observability migration routed every metric through the
// internal/obs registry, and this analyzer makes that permanent. Only
// internal/obs — whose counters, gauges, and histograms are built on
// atomics — may import sync/atomic.
var RawAtomics = &Analyzer{
	Name: "rawatomics",
	Doc:  "direct sync/atomic use outside internal/obs; counters belong in the obs registry",
	Run:  runRawAtomics,
}

func runRawAtomics(p *Pass) {
	if p.InPackage("internal/obs") {
		return
	}
	for _, file := range p.Pkg.Files {
		for _, imp := range file.Imports {
			if strings.Trim(imp.Path.Value, `"`) != "sync/atomic" {
				continue
			}
			p.Reportf(imp.Pos(),
				"sync/atomic imported outside internal/obs; route counters through the obs registry")
		}
	}
}
