package lint

import (
	"go/token"
	"strings"
)

// suppression is one parsed //lint:allow comment.
type suppression struct {
	analyzers []string
	reason    string
	pos       token.Position
	used      bool
}

// collectSuppressions parses every //lint:allow comment in the
// package. A suppression applies to findings on its own line and on
// the line directly below (for standalone comments above the code).
func collectSuppressions(pkg *Package) []*suppression {
	var out []*suppression
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				s := &suppression{pos: pkg.Fset.Position(c.Pos())}
				if len(fields) > 0 {
					s.analyzers = strings.Split(fields[0], ",")
					s.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, s)
			}
		}
	}
	return out
}

// matches reports whether the suppression covers a finding by the
// given analyzer at the given position.
func (s *suppression) matches(f Finding) bool {
	if f.Pos.Filename != s.pos.Filename {
		return false
	}
	if f.Pos.Line != s.pos.Line && f.Pos.Line != s.pos.Line+1 {
		return false
	}
	for _, a := range s.analyzers {
		if a == f.Analyzer {
			return true
		}
	}
	return false
}

// applySuppressions filters findings through the packages'
// //lint:allow comments. Suppressions must carry a justification and
// must match at least one finding; violations of either rule are
// reported as findings of the "suppression" pseudo-analyzer.
func applySuppressions(pkgs []*Package, findings []Finding) []Finding {
	var sups []*suppression
	for _, pkg := range pkgs {
		sups = append(sups, collectSuppressions(pkg)...)
	}
	var out []Finding
	for _, f := range findings {
		suppressed := false
		for _, s := range sups {
			if s.matches(f) {
				s.used = true
				if s.reason != "" {
					suppressed = true
				}
			}
		}
		if !suppressed {
			out = append(out, f)
		}
	}
	for _, s := range sups {
		switch {
		case len(s.analyzers) == 0:
			out = append(out, Finding{Analyzer: "suppression", Pos: s.pos,
				Msg: "//lint:allow needs an analyzer name and a justification"})
		case s.reason == "":
			out = append(out, Finding{Analyzer: "suppression", Pos: s.pos,
				Msg: "//lint:allow " + strings.Join(s.analyzers, ",") + " needs a justification"})
		case !s.used:
			out = append(out, Finding{Analyzer: "suppression", Pos: s.pos,
				Msg: "//lint:allow " + strings.Join(s.analyzers, ",") + " suppresses nothing (stale?)"})
		}
	}
	return out
}
