package lint

import (
	"go/ast"
	"strings"
)

// ErrSink flags discarded error returns at durability-critical call
// sites: any call into repro/internal/storage (store, pager, WAL) or
// repro/internal/txn whose error result silently falls on the floor —
// a bare expression statement or a go statement. Two discards are
// deliberate and exempt: `defer t.Abort()` (best-effort rollback on
// the cleanup path) and `_ = call()` (an explicit, reviewed discard,
// following errcheck convention). internal/bench is exempt wholesale:
// the measurement harness drives hot loops whose failures surface in
// the reported numbers, not in error plumbing.
var ErrSink = &Analyzer{
	Name: "errsink",
	Doc:  "unchecked error returns on storage/wal/txn call sites",
	Run:  runErrSink,
}

// errSinkPkgs are the callee package-path suffixes whose errors must
// not be ignored.
var errSinkPkgs = []string{"internal/storage", "internal/txn"}

func runErrSink(p *Pass) {
	if p.InPackage("internal/bench") {
		return
	}
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = st.X.(*ast.CallExpr)
			case *ast.GoStmt:
				call = st.Call
			default:
				return true
			}
			if call == nil {
				return true
			}
			fn := calleeFunc(p.Pkg, call)
			if fn == nil || fn.Pkg() == nil || !returnsError(fn) {
				return true
			}
			path := fn.Pkg().Path()
			for _, suffix := range errSinkPkgs {
				if strings.HasSuffix(path, suffix) {
					p.Reportf(call.Pos(), "error returned by %s is discarded", fn.FullName())
					break
				}
			}
			return true
		})
	}
}
