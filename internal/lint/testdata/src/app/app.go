// Package app seeds exactly the violations the analyzer tests expect;
// line positions here are pinned by findings.golden.
package app

import (
	"sync"
	"sync/atomic"
	"time"

	"fixture/internal/eca"
	"fixture/internal/storage"
)

var counter atomic.Uint64

// badClock reads the wall clock directly (clockusage).
func badClock() time.Time {
	return time.Now()
}

// okClock is suppressed with a justification and must not be reported.
func okClock() {
	time.Sleep(time.Millisecond) //lint:allow clockusage fixture pacing, reviewed
}

// badRules pairs couplings Table 1 rejects (couplingtable).
func badRules() []eca.Rule {
	return []eca.Rule{
		{Name: "t", EventKey: "time:tick", CondMode: eca.Immediate, ActionMode: eca.Deferred},
		{Name: "c", EventKey: "composite:burst", CondMode: eca.Detached, ActionMode: eca.Immediate},
		{Name: "ok", EventKey: "method:Account.deposit", CondMode: eca.Immediate, ActionMode: eca.Immediate},
	}
}

// badSink drops durability errors on the floor (errsink).
func badSink(s *storage.Store) {
	s.Flush()
	storage.Sync()
	_ = s.Flush() // an explicit discard is a reviewed decision, not a finding
}

// badLock holds a mutex across a channel send and a cross-package
// call (lockdiscipline).
func badLock(mu *sync.Mutex, ch chan int) error {
	mu.Lock()
	ch <- 1
	err := storage.Sync()
	mu.Unlock()
	return err
}

// okLock releases before blocking and must not be reported.
func okLock(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	counter.Add(1)
	mu.Unlock()
	ch <- 1
}

// The suppression below names no analyzer (suppression finding), and
// the one after it suppresses nothing (stale).
func badSuppressions() {
	//lint:allow
	_ = counter.Load() //lint:allow errsink nothing is discarded here
}
