// Package eca is a fixture mirror of the engine's rule types, just
// enough for the couplingtable analyzer to resolve Rule literals and
// for the nakedgo analyzer to see goroutine launches in its home
// package.
package eca

import "sync"

type Coupling int

const (
	Immediate Coupling = iota + 1
	Deferred
	Detached
	DetachedParallelCausal
	DetachedSequentialCausal
	DetachedExclusiveCausal
)

type Rule struct {
	Name       string
	EventKey   string
	CondMode   Coupling
	ActionMode Coupling
}

type engine struct{}

func (e *engine) worker() {}

// fanOut exercises the nakedgo analyzer: one WaitGroup-registered
// literal (allowed), one method goroutine (allowed), one naked
// literal (flagged).
func fanOut(work []func()) {
	var wg sync.WaitGroup
	for _, fn := range work {
		wg.Add(1)
		go func(fn func()) {
			defer wg.Done()
			fn()
		}(fn)
	}
	wg.Wait()

	e := &engine{}
	go e.worker()

	go func() {
		for _, fn := range work {
			fn()
		}
	}()
}
