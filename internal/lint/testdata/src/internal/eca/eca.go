// Package eca is a fixture mirror of the engine's rule types, just
// enough for the couplingtable analyzer to resolve Rule literals.
package eca

type Coupling int

const (
	Immediate Coupling = iota + 1
	Deferred
	Detached
	DetachedParallelCausal
	DetachedSequentialCausal
	DetachedExclusiveCausal
)

type Rule struct {
	Name       string
	EventKey   string
	CondMode   Coupling
	ActionMode Coupling
}
