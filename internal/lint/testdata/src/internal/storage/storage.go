// Package storage is a fixture durability layer whose errors the
// errsink analyzer insists are handled.
package storage

type Store struct{}

func (s *Store) Flush() error { return nil }

func Sync() error { return nil }
