// Package obs is exempt from clockusage and rawatomics: telemetry
// owns timestamps and atomics by design. Nothing here may be flagged.
package obs

import (
	"sync/atomic"
	"time"
)

type Counter struct{ n atomic.Uint64 }

func (c *Counter) Inc() { c.n.Add(1) }

func Stamp() time.Time { return time.Now() }
