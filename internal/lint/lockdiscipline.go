package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// LockDiscipline flags the deadlock shape that has bitten the
// composer/engine boundary before: a sync.Mutex or sync.RWMutex held
// across a potentially blocking operation — a channel send or
// receive, a select, a Wait call, or a call into another package of
// this module (which may take its own locks and call back).
//
// The tracking is a linear, branch-cloning walk of each function
// body, not a CFG: precise enough for the repository's lock idioms,
// and anything it over-reports carries a reviewed //lint:allow.
// Leaf packages that never call back into the engine (obs, event,
// clock) are exempt as callees, as are deferred calls, which run
// after the critical section unwinds.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "sync mutex held across a channel operation, Wait, or cross-package call",
	Run:  runLockDiscipline,
}

// lockLeafPkgs are callee packages safe to invoke under a lock: they
// are lock-leaf by design and never re-enter engine code. algebra is
// on the list because composition is pure computation — the composer
// state machines own no locks, channels, or I/O. fault is on the
// list because the storage stack consults failpoints and performs
// file I/O through fault.File inside its critical sections; the
// fault package only ever takes its own registry/shadow-fs mutex and
// calls into obs, never back into storage or the engine.
var lockLeafPkgs = []string{"internal/obs", "internal/event", "internal/clock", "internal/algebra", "internal/fault"}

// lockSafeCallees are individual cross-package functions verified to
// be lock-free pure accessors, matched by FullName suffix.
var lockSafeCallees = []string{
	"txn.Txn).ID",        // returns an immutable field
	"storage.RID).Valid", // value-receiver predicate on two ints
}

func runLockDiscipline(p *Pass) {
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					w := &lockWalker{pass: p, held: map[string]token.Pos{}}
					w.block(fn.Body)
				}
			case *ast.FuncLit:
				w := &lockWalker{pass: p, held: map[string]token.Pos{}}
				w.block(fn.Body)
			}
			return true
		})
	}
}

type lockWalker struct {
	pass *Pass
	held map[string]token.Pos // mutex expr -> Lock() position
}

// clone copies the walker for a conditional branch so unlocks on an
// early-return path do not leak into the straight-line view.
func (w *lockWalker) clone() *lockWalker {
	c := &lockWalker{pass: w.pass, held: make(map[string]token.Pos, len(w.held))}
	for k, v := range w.held {
		c.held[k] = v
	}
	return c
}

func (w *lockWalker) block(b *ast.BlockStmt) {
	for _, st := range b.List {
		w.stmt(st)
	}
}

func (w *lockWalker) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if recv, op, ok := syncLockCall(w.pass.Pkg, call); ok {
				switch op {
				case "Lock", "RLock":
					w.held[recv] = call.Pos()
				case "Unlock", "RUnlock":
					delete(w.held, recv)
				}
				return
			}
		}
		w.scan(st.X)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the mutex held to function end; any
		// other deferred call runs outside the critical section.
		if recv, op, ok := syncLockCall(w.pass.Pkg, st.Call); ok && (op == "Unlock" || op == "RUnlock") {
			_ = recv // stays in held: the remainder of the function is the critical section
		}
	case *ast.SendStmt:
		w.offense(st.Pos(), "channel send")
		w.scan(st.Value)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			w.scan(e)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.scan(e)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.scan(e)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		w.scan(st.Cond)
		w.clone().block(st.Body)
		if st.Else != nil {
			w.clone().stmt(st.Else)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		if st.Cond != nil {
			w.scan(st.Cond)
		}
		w.clone().block(st.Body)
	case *ast.RangeStmt:
		w.scan(st.X)
		w.clone().block(st.Body)
	case *ast.SwitchStmt:
		if st.Tag != nil {
			w.scan(st.Tag)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				cw := w.clone()
				for _, cs := range cc.Body {
					cw.stmt(cs)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				cw := w.clone()
				for _, cs := range cc.Body {
					cw.stmt(cs)
				}
			}
		}
	case *ast.SelectStmt:
		w.offense(st.Pos(), "select")
	case *ast.BlockStmt:
		w.clone().block(st)
	case *ast.LabeledStmt:
		w.stmt(st.Stmt)
	}
}

// scan looks for blocking operations in an expression evaluated while
// locks are held. Function literals are skipped: their bodies run
// later, under whatever locks hold then, and are analyzed separately.
func (w *lockWalker) scan(e ast.Expr) {
	if len(w.held) == 0 || e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				w.offense(x.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			w.checkCall(x)
		}
		return true
	})
}

// checkCall flags Wait calls and cross-package module calls made
// under a held lock.
func (w *lockWalker) checkCall(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if sel.Sel.Name == "Wait" {
		w.offense(call.Pos(), "call to "+exprString(sel))
		return
	}
	fn := calleeFunc(w.pass.Pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	if path == w.pass.Pkg.Path || !strings.HasPrefix(path, w.pass.Pkg.Mod+"/") {
		return
	}
	for _, leaf := range lockLeafPkgs {
		if strings.HasSuffix(path, leaf) {
			return
		}
	}
	for _, safe := range lockSafeCallees {
		if strings.HasSuffix(fn.FullName(), safe) {
			return
		}
	}
	w.offense(call.Pos(), "cross-package call to "+fn.FullName())
}

// offense reports every held mutex at a blocking operation.
func (w *lockWalker) offense(pos token.Pos, what string) {
	for recv := range w.held {
		w.pass.Reportf(pos, "mutex %s held across %s", recv, what)
	}
}

// syncLockCall recognizes X.Lock/RLock/Unlock/RUnlock calls that
// resolve to the sync package (embedding included); when type
// information is missing it falls back to the method name alone.
func syncLockCall(pkg *Package, call *ast.CallExpr) (recv, op string, ok bool) {
	sel, selOk := call.Fun.(*ast.SelectorExpr)
	if !selOk {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	if fn := calleeFunc(pkg, call); fn != nil {
		if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return "", "", false // a lock manager or similar, not a sync primitive
		}
	}
	return exprString(sel.X), sel.Sel.Name, true
}
