package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and (best-effort) type-checked package of the
// module under analysis.
type Package struct {
	// Path is the import path ("repro/internal/eca").
	Path string
	// Mod is the module path the package belongs to ("repro").
	Mod string
	// Dir is the absolute directory the sources live in.
	Dir string
	// Fset is the file set shared by every package of one Loader.
	Fset *token.FileSet
	// Files holds the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types is the checked package object (possibly incomplete if
	// TypeErrs is non-empty).
	Types *types.Package
	// Info carries identifier resolution for the analyzers.
	Info *types.Info
	// TypeErrs collects soft type-checking errors; analyzers degrade
	// to syntactic checks when resolution is missing.
	TypeErrs []error
}

// Loader parses and type-checks module packages using nothing but the
// standard library: module-internal import paths are resolved against
// the module root, everything else (the standard library) through the
// source importer, which compiles from $GOROOT/src and therefore
// needs no pre-built export data.
type Loader struct {
	// ModRoot is the absolute path of the module root (where go.mod
	// lives).
	ModRoot string
	// ModPath is the module path declared in go.mod.
	ModPath string

	Fset *token.FileSet

	std  types.ImporterFrom
	pkgs map[string]*Package // by import path; nil entry = in progress
}

// NewLoader builds a Loader for the module rooted at dir (or any
// directory inside it — the root is found by walking up to go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod at or above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModRoot: root,
		ModPath: modPath,
		Fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    make(map[string]*Package),
	}, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s", gomod)
}

// Import implements types.Importer so the Loader can hand itself to
// the type checker: module-internal paths load recursively, all
// others fall through to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		p, err := l.LoadPath(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// dirFor maps a module-internal import path onto its directory.
func (l *Loader) dirFor(path string) string {
	if path == l.ModPath {
		return l.ModRoot
	}
	rel := strings.TrimPrefix(path, l.ModPath+"/")
	return filepath.Join(l.ModRoot, filepath.FromSlash(rel))
}

// pathFor maps a directory inside the module onto its import path.
func (l *Loader) pathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModPath, nil
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// LoadPath loads the package with the given module-internal import
// path, memoized across the Loader.
func (l *Loader) LoadPath(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		return p, nil
	}
	l.pkgs[path] = nil // cycle guard
	p, err := l.load(path, l.dirFor(path))
	if err != nil {
		delete(l.pkgs, path)
		return nil, err
	}
	l.pkgs[path] = p
	return p, nil
}

// LoadDir loads the package in the given directory (which must be
// inside the module).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.pathFor(abs)
	if err != nil {
		return nil, err
	}
	return l.LoadPath(path)
}

// load parses and type-checks one package directory. Test files are
// excluded: the analyzers guard production code, and tests routinely
// construct deliberately invalid rules or use raw primitives.
func (l *Loader) load(path, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go source in %s", dir)
	}
	sort.Strings(names)
	p := &Package{Path: path, Mod: l.ModPath, Dir: dir, Fset: l.Fset}
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		p.Files = append(p.Files, f)
	}
	p.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { p.TypeErrs = append(p.TypeErrs, err) },
	}
	// Check never fails hard: analyzers fall back to syntax where
	// resolution is incomplete.
	p.Types, _ = conf.Check(path, l.Fset, p.Files, p.Info)
	return p, nil
}

// LoadAll walks the module tree and loads every package, skipping
// testdata, hidden directories, and vendor.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			n := d.Name()
			if path != l.ModRoot && (strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") ||
				n == "testdata" || n == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		p, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
