package lint

import (
	"go/ast"
)

// clockFuncs are the time-package entry points that read or block on
// the wall clock. Using them directly makes temporal behavior
// untestable; engine code must go through an injected clock.Clock.
var clockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// ClockUsage enforces the determinism guard: no direct wall-clock
// reads outside the packages that own time. internal/clock is the
// abstraction itself, internal/obs timestamps telemetry, and
// internal/bench measures wall time by definition.
var ClockUsage = &Analyzer{
	Name: "clockusage",
	Doc:  "wall-clock calls (time.Now, time.Sleep, ...) outside internal/clock, internal/obs, internal/bench",
	Run:  runClockUsage,
}

func runClockUsage(p *Pass) {
	if p.InPackage("internal/clock", "internal/obs", "internal/bench") {
		return
	}
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !clockFuncs[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || pkgNameOf(p.Pkg, file, id) != "time" {
				return true
			}
			p.Reportf(call.Pos(),
				"time.%s bypasses the injected clock; take a clock.Clock (determinism guard)",
				sel.Sel.Name)
			return true
		})
	}
}
