package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/eca"
)

// CouplingTable statically mirrors the runtime Table 1 admission
// check of eca.AddRule: every eca.Rule (or reach.Rule — an alias)
// composite literal with a constant EventKey must pair that event's
// category with coupling modes the paper's Table 1 admits. Composite
// events have statically unknown scope, so only modes invalid under
// every scope (immediate) are flagged for them.
var CouplingTable = &Analyzer{
	Name: "couplingtable",
	Doc:  "eca.Rule literals whose (event category × coupling mode) pair Table 1 rejects",
	Run:  runCouplingTable,
}

// couplingByName maps the eca constant identifiers onto their values
// so the analyzer can evaluate Table 1 without executing code.
var couplingByName = map[string]eca.Coupling{
	"Immediate":                eca.Immediate,
	"Deferred":                 eca.Deferred,
	"Detached":                 eca.Detached,
	"DetachedParallelCausal":   eca.DetachedParallelCausal,
	"DetachedSequentialCausal": eca.DetachedSequentialCausal,
	"DetachedExclusiveCausal":  eca.DetachedExclusiveCausal,
}

func runCouplingTable(p *Pass) {
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || !isRuleLit(p.Pkg, file, lit) {
				return true
			}
			checkRuleLit(p, lit)
			return true
		})
	}
}

// isRuleLit reports whether the composite literal constructs an
// eca.Rule, preferring type information and falling back to the
// written type when the checker could not resolve it.
func isRuleLit(pkg *Package, file *ast.File, lit *ast.CompositeLit) bool {
	if tv, ok := pkg.Info.Types[lit]; ok && tv.Type != nil {
		if named, ok := tv.Type.(*types.Named); ok {
			obj := named.Obj()
			return obj.Name() == "Rule" && obj.Pkg() != nil &&
				strings.HasSuffix(obj.Pkg().Path(), "internal/eca")
		}
		return false
	}
	sel, ok := lit.Type.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Rule" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	path := pkgNameOf(pkg, file, id)
	return strings.HasSuffix(path, "internal/eca") || path == "repro"
}

// checkRuleLit extracts EventKey/CondMode/ActionMode from the literal
// and applies the Table 1 predicate to whatever is statically known.
func checkRuleLit(p *Pass, lit *ast.CompositeLit) {
	var key string
	var haveKey bool
	modes := map[string]eca.Coupling{}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		name, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch name.Name {
		case "EventKey":
			if bl, ok := ast.Unparen(kv.Value).(*ast.BasicLit); ok {
				if s, err := strconv.Unquote(bl.Value); err == nil {
					key, haveKey = s, true
				}
			}
		case "CondMode", "ActionMode":
			if sel, ok := ast.Unparen(kv.Value).(*ast.SelectorExpr); ok {
				if c, ok := couplingByName[sel.Sel.Name]; ok {
					modes[name.Name] = c
				}
			}
		}
	}
	if !haveKey || len(modes) == 0 {
		return // dynamic key or modes: runtime check owns it
	}
	for _, field := range []string{"CondMode", "ActionMode"} {
		mode, ok := modes[field]
		if !ok {
			continue
		}
		switch {
		case strings.HasPrefix(key, "time:"):
			if !eca.Supported(eca.PurelyTemporal, mode) {
				p.Reportf(lit.Pos(),
					"%s %v on temporal event %q: Table 1 admits only detached for purely temporal events",
					field, mode, key)
			}
		case strings.HasPrefix(key, "composite:"):
			// Scope is a runtime property of the composite; flag only
			// modes invalid for both single- and multi-transaction
			// composites.
			if !eca.Supported(eca.CompositeSingleTxn, mode) &&
				!eca.Supported(eca.CompositeMultiTxn, mode) {
				p.Reportf(lit.Pos(),
					"%s %v on composite event %q: Table 1 rejects immediate coupling for composite events",
					field, mode, key)
			}
		}
	}
}
