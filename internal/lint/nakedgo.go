package lint

import (
	"go/ast"
)

// NakedGo enforces the supervised-execution guard in the engine's
// concurrency-bearing packages: a bare `go func(){...}()` there is a
// goroutine nobody waits for, drains, or recovers — exactly the shape
// the supervised executor exists to eliminate. Rule work must go
// through the executor; ad-hoc fan-out must register with a
// sync.WaitGroup (a deferred .Done() in the literal body) so Close
// and Drain can observe it. Named-method goroutines (`go x.worker()`)
// are allowed: they belong to a struct whose lifecycle owns them.
var NakedGo = &Analyzer{
	Name: "nakedgo",
	Doc:  "unsupervised `go func` literals in internal/eca, internal/event (use the executor or a WaitGroup)",
	Run:  runNakedGo,
}

func runNakedGo(p *Pass) {
	if !p.InPackage("internal/eca", "internal/event") {
		return
	}
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true // go x.method(): lifecycle owned by x
			}
			if deferredDone(lit.Body) {
				return true
			}
			p.Reportf(g.Pos(),
				"naked `go func` literal: route rule work through the supervised executor or register with a sync.WaitGroup (defer wg.Done())")
			return true
		})
	}
}

// deferredDone reports whether the function body defers a .Done()
// call — the syntactic signature of WaitGroup-registered work. The
// check is deliberately shallow: a Done deferred inside a nested
// literal does not cover the outer goroutine.
func deferredDone(body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		d, ok := stmt.(*ast.DeferStmt)
		if !ok {
			continue
		}
		if sel, ok := d.Call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return true
		}
	}
	return false
}
