// Package lint is a zero-dependency static-analysis framework for the
// REACH codebase, built on go/ast, go/parser, and go/types only. Each
// Analyzer encodes one project invariant — determinism (clockusage),
// deadlock discipline (lockdiscipline), metrics routing (rawatomics),
// the paper's Table 1 admission matrix (couplingtable), and durability
// error handling (errsink) — and reports findings with file:line
// positions. Findings can be suppressed per line with a reviewed
//
//	//lint:allow <analyzer> <justification>
//
// comment; a suppression without a justification is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a package.
type Analyzer struct {
	// Name identifies the analyzer in reports and suppressions.
	Name string
	// Doc is a one-line description of the invariant enforced.
	Doc string
	// Run inspects the package and reports findings on the pass.
	Run func(p *Pass)
}

// Finding is one diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Msg      string
}

// String formats the finding as file:line:col: [analyzer] message.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Msg)
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Msg:      fmt.Sprintf(format, args...),
	})
}

// InPackage reports whether the pass's package path ends in one of
// the given module-relative suffixes ("internal/clock", ...).
func (p *Pass) InPackage(suffixes ...string) bool {
	for _, s := range suffixes {
		if p.Pkg.Path == s || strings.HasSuffix(p.Pkg.Path, "/"+s) {
			return true
		}
	}
	return false
}

// Suite returns the full REACH analyzer suite in stable order.
func Suite() []*Analyzer {
	return []*Analyzer{
		ClockUsage,
		LockDiscipline,
		RawAtomics,
		CouplingTable,
		ErrSink,
		NakedGo,
	}
}

// Run applies the analyzers to the packages and returns surviving
// findings sorted by position, with line-level suppressions applied
// and unjustified or stale suppressions reported.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var all []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, findings: &all}
			a.Run(pass)
		}
	}
	all = applySuppressions(pkgs, all)
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return all
}

// --- shared type/AST helpers used by the analyzers ---

// pkgNameOf resolves an identifier to the import path of the package
// it names, or "" if it is not a package name. Falls back to the
// file's import table when type information is incomplete.
func pkgNameOf(pkg *Package, file *ast.File, id *ast.Ident) string {
	if obj, ok := pkg.Info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path()
		}
		return "" // resolved to something that is not a package
	}
	// Unresolved: match against the file's imports by local name.
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == id.Name {
			return path
		}
	}
	return ""
}

// calleeFunc resolves the called function or method of a call
// expression, or nil when resolution is unavailable.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	if obj, ok := pkg.Info.Uses[id]; ok {
		if fn, ok := obj.(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// returnsError reports whether any result of the function is error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if named, ok := sig.Results().At(i).Type().(*types.Named); ok {
			if named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
				return true
			}
		}
	}
	return false
}

// exprString renders a small expression (a mutex receiver, a selector
// chain) for diagnostics; it is not a general printer.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	}
	return "?"
}
