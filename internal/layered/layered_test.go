package layered

import (
	"errors"
	"testing"

	"repro/internal/event"
	"repro/internal/oodb"
)

func newLayer(t *testing.T) (*Layer, *ClosedOODB) {
	t.Helper()
	closed, err := NewClosed(oodb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sensor := oodb.NewClass("Sensor",
		oodb.Attr{Name: "val", Type: oodb.TInt},
		oodb.Attr{Name: "alarms", Type: oodb.TInt},
	)
	sensor.Method("ping", func(ctx *oodb.Ctx, self *oodb.Object, args []any) (any, error) {
		return nil, ctx.Set(self, "val", args[0])
	})
	if err := closed.Dictionary().Register(sensor); err != nil {
		t.Fatal(err)
	}
	return NewLayer(closed), closed
}

func pingAfter() string {
	return event.MethodSpec{Class: "Sensor", Method: "ping", When: event.After}.Key()
}

func TestWrapperInvokeFiresRules(t *testing.T) {
	l, closed := newLayer(t)
	fired := 0
	l.AddRule(&Rule{
		Name: "r", EventKey: pingAfter(),
		Action: func(rc *RuleCtx) error { fired++; return nil },
	})
	ft := closed.Begin()
	obj, _ := closed.NewObject(ft, "Sensor")
	if _, err := l.Invoke(ft, obj, "ping", int64(1)); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	ft.Commit()
}

func TestDirectInvokeBypassesLayer(t *testing.T) {
	// §4: "each single method-body must be modified... or the
	// application must announce events" — a direct call misses rules.
	l, closed := newLayer(t)
	fired := 0
	l.AddRule(&Rule{
		Name: "r", EventKey: pingAfter(),
		Action: func(rc *RuleCtx) error { fired++; return nil },
	})
	ft := closed.Begin()
	obj, _ := closed.NewObject(ft, "Sensor")
	closed.Invoke(ft, obj, "ping", int64(1)) // bypass
	ft.Commit()
	if fired != 0 {
		t.Fatal("rule fired despite bypassing the wrapper: layered should miss it")
	}
}

func TestAnnouncedEvents(t *testing.T) {
	l, closed := newLayer(t)
	fired := 0
	l.AddRule(&Rule{
		Name: "r", EventKey: "app:custom",
		Action: func(rc *RuleCtx) error { fired++; return nil },
	})
	ft := closed.Begin()
	if err := l.Announce(ft, &event.Instance{SpecKey: "app:custom"}); err != nil {
		t.Fatal(err)
	}
	ft.Commit()
	if fired != 1 || l.Announced != 1 {
		t.Fatalf("fired=%d announced=%d", fired, l.Announced)
	}
}

func TestPollingDetectsStateChanges(t *testing.T) {
	l, closed := newLayer(t)
	var changes [][2]any
	key := event.StateSpec{Class: "Sensor", Attr: "val"}.Key()
	l.AddRule(&Rule{
		Name: "watch", EventKey: key,
		Action: func(rc *RuleCtx) error {
			changes = append(changes, [2]any{rc.Trigger.Args[0], rc.Trigger.Args[1]})
			return nil
		},
	})
	ft := closed.Begin()
	obj, _ := closed.NewObject(ft, "Sensor")
	if err := l.Track(ft, obj); err != nil {
		t.Fatal(err)
	}
	// Change invisible to the layer until a poll.
	closed.Set(ft, obj, "val", 7)
	if len(changes) != 0 {
		t.Fatal("state change detected without polling (impossible in a closed system)")
	}
	if err := l.Poll(ft); err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 || changes[0][1] != int64(7) {
		t.Fatalf("changes = %v", changes)
	}
	// Two changes between polls collapse into one detected transition
	// — polling loses intermediate states.
	closed.Set(ft, obj, "val", 8)
	closed.Set(ft, obj, "val", 9)
	l.Poll(ft)
	if len(changes) != 2 {
		t.Fatalf("changes = %v, want 2 (intermediate state lost)", changes)
	}
	if changes[1][0] != int64(7) || changes[1][1] != int64(9) {
		t.Fatalf("second change = %v, want 7->9 (8 lost)", changes[1])
	}
	// Polls cost reads even when nothing changed.
	before := l.PollReads
	l.Poll(ft)
	if l.PollReads == before {
		t.Fatal("idle poll was free — it must pay per-attribute reads")
	}
	ft.Commit()
}

func TestRuleFailureLeavesPartialEffects(t *testing.T) {
	// Without nested transactions a failing rule cannot be contained:
	// its earlier writes stay unless the whole transaction aborts.
	l, closed := newLayer(t)
	l.AddRule(&Rule{
		Name: "half", EventKey: pingAfter(),
		Action: func(rc *RuleCtx) error {
			obj, _ := rc.Layer.Closed().Root(rc.Txn, "target")
			rc.Layer.Closed().Set(rc.Txn, obj, "alarms", 1)
			return errors.New("second half failed")
		},
	})
	ft := closed.Begin()
	obj, _ := closed.NewObject(ft, "Sensor")
	closed.SetRoot(ft, "target", obj)
	if _, err := l.Invoke(ft, obj, "ping", int64(1)); err == nil {
		t.Fatal("rule failure not surfaced")
	}
	// The partial effect is visible inside the same transaction.
	if v, _ := closed.Get(ft, obj, "alarms"); v != int64(1) {
		t.Fatalf("alarms = %v; the flat-transaction layer cannot undo partial rule effects", v)
	}
	ft.Abort() // only recourse: throw everything away
}

func TestManualDeferredRequiresDiscipline(t *testing.T) {
	l, closed := newLayer(t)
	ran := 0
	ft := closed.Begin()
	l.AtCommit(ft, func() error { ran++; return nil })
	// Forgetting RunDeferred: commit succeeds, rule silently skipped.
	if err := ft.Commit(); err != nil {
		t.Fatal(err)
	}
	if ran != 0 {
		t.Fatal("deferred work ran without RunDeferred (closed system has no hook)")
	}
	// Disciplined application:
	ft2 := closed.Begin()
	l.AtCommit(ft2, func() error { ran++; return nil })
	if err := l.RunDeferred(ft2); err != nil {
		t.Fatal(err)
	}
	ft2.Commit()
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
}

func TestConditionFiltering(t *testing.T) {
	l, closed := newLayer(t)
	fired := 0
	l.AddRule(&Rule{
		Name: "r", EventKey: pingAfter(),
		Cond: func(rc *RuleCtx) (bool, error) {
			return rc.Trigger.Args[0].(int64) > 10, nil
		},
		Action: func(rc *RuleCtx) error { fired++; return nil },
	})
	ft := closed.Begin()
	obj, _ := closed.NewObject(ft, "Sensor")
	l.Invoke(ft, obj, "ping", int64(5))
	l.Invoke(ft, obj, "ping", int64(50))
	ft.Commit()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestAddRuleValidation(t *testing.T) {
	l, _ := newLayer(t)
	if err := l.AddRule(&Rule{Name: "", EventKey: "k", Action: func(*RuleCtx) error { return nil }}); err == nil {
		t.Fatal("nameless rule accepted")
	}
	if err := l.AddRule(&Rule{Name: "n", EventKey: "", Action: func(*RuleCtx) error { return nil }}); err == nil {
		t.Fatal("eventless rule accepted")
	}
	if err := l.AddRule(&Rule{Name: "n", EventKey: "k"}); err == nil {
		t.Fatal("actionless rule accepted")
	}
}
