// Package layered reproduces the architecture the REACH group tried
// first and abandoned (paper §4): active capabilities layered on top
// of a closed commercial OODBMS.
//
// ClosedOODB is the stand-in for O2/ObjectStore: a facade over our own
// database that withholds exactly what the paper says the closed
// systems withheld — no method trapping (no sentries), no state-change
// detection, flat transactions only, no access to transaction-manager
// internals (no commit/abort hooks, no subtransactions, no commit
// dependencies).
//
// Layer is the active layer built on top. It can only:
//
//   - trap method calls when the application routes them through the
//     layer's wrapper (the "parallel class hierarchy of active
//     classes" that must be maintained by the application programmer);
//   - detect state changes by polling snapshots of registered objects;
//   - run rules immediately, in the same flat transaction (a rule
//     failure leaves partial effects unless the whole transaction is
//     thrown away);
//   - approximate deferred coupling by requiring the application to
//     call AtCommit manually before committing.
//
// Events announced directly to the layer ("forcing applications to
// announce the events") are also supported. The benchmark suite uses
// this package as the baseline for the layered-vs-integrated
// comparison (E2).
package layered

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/event"
	"repro/internal/oodb"
	"repro/internal/txn"
)

// ClosedOODB is the closed commercial system: no sentries, no nested
// transactions, no transaction-manager access.
type ClosedOODB struct {
	db *oodb.DB
}

// NewClosed opens a closed database over opts. Any sink the caller
// might set on the inner database is ignored — classes behave as
// unmonitored because a closed system gives no trapping points.
func NewClosed(opts oodb.Options) (*ClosedOODB, error) {
	db, err := oodb.Open(opts)
	if err != nil {
		return nil, err
	}
	return &ClosedOODB{db: db}, nil
}

// Dictionary exposes class registration (schema definition is, of
// course, available even in closed systems).
func (c *ClosedOODB) Dictionary() *oodb.Dictionary { return c.db.Dictionary() }

// FlatTxn is the only transaction shape the closed system offers.
type FlatTxn struct {
	t *txn.Txn
}

// Begin starts a flat transaction.
func (c *ClosedOODB) Begin() *FlatTxn { return &FlatTxn{t: c.db.Begin()} }

// Commit commits the flat transaction.
func (ft *FlatTxn) Commit() error { return ft.t.Commit() }

// Abort rolls the flat transaction back.
func (ft *FlatTxn) Abort() error { return ft.t.Abort() }

// ID returns the transaction identifier — the closed systems did not
// even expose this (§4); it exists here only so tests can assert on
// isolation, and the Layer never uses it.
func (ft *FlatTxn) ID() uint64 { return ft.t.ID() }

// NewObject, Get, Set, Invoke, Root, SetRoot, Delete: the ordinary
// closed-system data interface. None of them raises events.

// NewObject creates an object.
func (c *ClosedOODB) NewObject(ft *FlatTxn, class string) (*oodb.Object, error) {
	return c.db.NewObject(ft.t, class)
}

// Get reads an attribute.
func (c *ClosedOODB) Get(ft *FlatTxn, obj *oodb.Object, attr string) (any, error) {
	return c.db.Get(ft.t, obj, attr)
}

// Set writes an attribute. The write is invisible to the active
// layer: value changes go through low-level system functions the
// layer cannot modify (§4).
func (c *ClosedOODB) Set(ft *FlatTxn, obj *oodb.Object, attr string, v any) error {
	return c.db.Set(ft.t, obj, attr, v)
}

// Invoke calls a method directly on the closed system — bypassing any
// active layer wrapper, which is precisely the hazard of the layered
// architecture.
func (c *ClosedOODB) Invoke(ft *FlatTxn, obj *oodb.Object, method string, args ...any) (any, error) {
	return c.db.Invoke(ft.t, obj, method, args...)
}

// SetRoot names an object.
func (c *ClosedOODB) SetRoot(ft *FlatTxn, name string, obj *oodb.Object) error {
	return c.db.SetRoot(ft.t, name, obj)
}

// Root fetches a named object.
func (c *ClosedOODB) Root(ft *FlatTxn, name string) (*oodb.Object, error) {
	return c.db.Root(ft.t, name)
}

// Delete removes an object. In a system with persistence by
// reachability there is no explicit delete to trap (§4); the layer
// never sees this happen.
func (c *ClosedOODB) Delete(ft *FlatTxn, obj *oodb.Object) error {
	return c.db.Delete(ft.t, obj)
}

// Close closes the underlying database.
func (c *ClosedOODB) Close() error { return c.db.Close() }

// Rule is an active-layer rule: condition and action run immediately,
// inside the triggering flat transaction.
type Rule struct {
	Name     string
	EventKey string
	Cond     func(rc *RuleCtx) (bool, error)
	Action   func(rc *RuleCtx) error
}

// RuleCtx is passed to layer rules.
type RuleCtx struct {
	Layer   *Layer
	Txn     *FlatTxn
	Trigger *event.Instance
}

// Layer is the active layer.
type Layer struct {
	closed *ClosedOODB

	mu       sync.Mutex
	rules    map[string][]*Rule
	tracked  map[*oodb.Object][]any // polling snapshots
	deferred map[*FlatTxn][]func() error

	// Announced counts events the application had to announce itself.
	Announced uint64
	// Polls counts polling sweeps; PollReads counts attribute reads
	// they cost.
	Polls     uint64
	PollReads uint64
}

// NewLayer builds an active layer over the closed system.
func NewLayer(closed *ClosedOODB) *Layer {
	return &Layer{
		closed:   closed,
		rules:    make(map[string][]*Rule),
		tracked:  make(map[*oodb.Object][]any),
		deferred: make(map[*FlatTxn][]func() error),
	}
}

// Closed returns the underlying closed system.
func (l *Layer) Closed() *ClosedOODB { return l.closed }

// AddRule registers a rule. Only immediate execution exists: without
// nested transactions only serial execution of triggered rules is
// possible, and without commit hooks deferred coupling cannot be
// implemented faithfully (§4).
func (l *Layer) AddRule(r *Rule) error {
	if r.Name == "" || r.EventKey == "" || r.Action == nil {
		return errors.New("layered: rule needs name, event and action")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.rules[r.EventKey] = append(l.rules[r.EventKey], r)
	return nil
}

// Invoke is the wrapper-class path: the application must remember to
// call the wrapper instead of the closed system for events to fire.
func (l *Layer) Invoke(ft *FlatTxn, obj *oodb.Object, method string, args ...any) (any, error) {
	before := event.MethodSpec{Class: obj.Class().Name, Method: method, When: event.Before}.Key()
	if err := l.fire(ft, &event.Instance{
		SpecKey: before, Kind: event.KindMethod,
		OID: uint64(obj.OID()), Class: obj.Class().Name, Method: method, Args: args,
	}); err != nil {
		return nil, err
	}
	res, err := l.closed.Invoke(ft, obj, method, args...)
	if err != nil {
		return nil, err
	}
	after := event.MethodSpec{Class: obj.Class().Name, Method: method, When: event.After}.Key()
	if err := l.fire(ft, &event.Instance{
		SpecKey: after, Kind: event.KindMethod,
		OID: uint64(obj.OID()), Class: obj.Class().Name, Method: method, Args: args, Result: res,
	}); err != nil {
		return res, err
	}
	return res, nil
}

// Announce delivers an event the application detected itself — the
// alternative §4 rejects because it "forces applications to announce
// the events".
func (l *Layer) Announce(ft *FlatTxn, in *event.Instance) error {
	l.mu.Lock()
	l.Announced++
	l.mu.Unlock()
	return l.fire(ft, in)
}

// Track registers an object for state-change polling.
func (l *Layer) Track(ft *FlatTxn, obj *oodb.Object) error {
	snap := make([]any, 0, len(obj.Class().Attrs()))
	for _, a := range obj.Class().Attrs() {
		v, err := l.closed.Get(ft, obj, a.Name)
		if err != nil {
			return err
		}
		snap = append(snap, v)
	}
	l.mu.Lock()
	l.tracked[obj] = snap
	l.mu.Unlock()
	return nil
}

// Poll sweeps every tracked object, diffing attribute values against
// the last snapshot and firing state-change rules for differences.
// This is the only way the layer can see value changes, and its cost
// is proportional to tracked-objects × attributes per sweep, whether
// or not anything changed.
func (l *Layer) Poll(ft *FlatTxn) error {
	l.mu.Lock()
	objs := make([]*oodb.Object, 0, len(l.tracked))
	for obj := range l.tracked {
		objs = append(objs, obj)
	}
	l.Polls++
	l.mu.Unlock()
	for _, obj := range objs {
		attrs := obj.Class().Attrs()
		fresh := make([]any, len(attrs))
		for i, a := range attrs {
			v, err := l.closed.Get(ft, obj, a.Name)
			if err != nil {
				return err
			}
			fresh[i] = v
			l.mu.Lock()
			l.PollReads++
			l.mu.Unlock()
		}
		l.mu.Lock()
		old := l.tracked[obj]
		l.tracked[obj] = fresh
		l.mu.Unlock()
		for i, a := range attrs {
			if i < len(old) && old[i] != fresh[i] {
				key := event.StateSpec{Class: obj.Class().Name, Attr: a.Name}.Key()
				if err := l.fire(ft, &event.Instance{
					SpecKey: key, Kind: event.KindState,
					OID: uint64(obj.OID()), Class: obj.Class().Name,
					Args: []any{old[i], fresh[i]},
				}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// AtCommit registers work to run when the application calls
// RunDeferred — the manual approximation of deferred coupling. If the
// application forgets to call RunDeferred before Commit, the rules
// silently never run; nothing in the closed system can enforce it.
func (l *Layer) AtCommit(ft *FlatTxn, fn func() error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.deferred[ft] = append(l.deferred[ft], fn)
}

// RunDeferred runs the work registered with AtCommit. The application
// must call it itself, immediately before Commit.
func (l *Layer) RunDeferred(ft *FlatTxn) error {
	l.mu.Lock()
	fns := l.deferred[ft]
	delete(l.deferred, ft)
	l.mu.Unlock()
	for _, fn := range fns {
		if err := fn(); err != nil {
			return err
		}
	}
	return nil
}

// fire runs matching rules serially, in the triggering flat
// transaction. There is no subtransaction to contain a rule failure:
// an error surfaces to the caller with any partial rule effects
// already applied.
func (l *Layer) fire(ft *FlatTxn, in *event.Instance) error {
	l.mu.Lock()
	matching := append([]*Rule(nil), l.rules[in.SpecKey]...)
	l.mu.Unlock()
	for _, r := range matching {
		rc := &RuleCtx{Layer: l, Txn: ft, Trigger: in}
		if r.Cond != nil {
			ok, err := r.Cond(rc)
			if err != nil {
				return fmt.Errorf("layered: rule %s condition: %w", r.Name, err)
			}
			if !ok {
				continue
			}
		}
		if err := r.Action(rc); err != nil {
			return fmt.Errorf("layered: rule %s action: %w", r.Name, err)
		}
	}
	return nil
}
