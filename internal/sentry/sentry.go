// Package sentry implements the Open OODB sentry dispatcher: the
// low-level event trapping mechanism that sits between the database's
// operation paths and the ECA managers (paper §5, §6.2).
//
// A sentry in Open OODB is an in-line wrapper inserted by a language
// preprocessor; in this Go reproduction the database calls the
// dispatcher on every operation of a monitored class. The dispatcher's
// job is to keep the three overhead classes of [WSTR93] honest:
//
//   - useful overhead: the event has subscribers — build the event
//     object and invoke the consumer (the extension always triggers);
//   - useless overhead: the event has no subscribers — a single
//     map lookup, after which normal processing proceeds;
//   - potentially useful overhead: a subscription exists but is
//     currently disabled — the lookup plus a state check.
//
// Counters for each class feed the sentry-overhead experiment (E1).
package sentry

import (
	"sync"
	"sync/atomic" //lint:allow rawatomics copy-on-write subscription snapshot, not metrics
	"time"

	"repro/internal/event"
	"repro/internal/obs"
)

// Consumer receives events that pass the dispatcher's filter —
// normally the ECA engine. The call is synchronous: for Before events
// its return is the go-ahead signal.
type Consumer interface {
	Consume(in *event.Instance) error
}

// ConsumerFunc adapts a function to the Consumer interface.
type ConsumerFunc func(in *event.Instance) error

// Consume implements Consumer.
func (f ConsumerFunc) Consume(in *event.Instance) error { return f(in) }

// Dispatcher filters events by subscription and forwards the
// survivors to the consumer. It implements the database's Sink
// interface. The zero value is not usable; call New.
type Dispatcher struct {
	consumer Consumer

	// mu guards the writer-side subscription table. Readers never take
	// it: every mutation republishes snap, a copy-on-write map from
	// spec key to enabled, so Wants — called on every operation of
	// every monitored class, subscriber or not — is one atomic load
	// and one map read with no lock traffic between raisers.
	mu   sync.Mutex
	subs map[string]*subscription
	snap atomic.Pointer[map[string]bool]

	// Overhead-class counters. Standalone by default; Instrument
	// rebinds them into a shared registry so they are one source of
	// truth for Stats() and the /metrics surface alike.
	useful      *obs.Counter
	useless     *obs.Counter
	potentially *obs.Counter

	// tracer, when set, mints a lifecycle trace for every event
	// delivered through Emit.
	tracer *obs.Tracer
	now    func() time.Time

	// shedProbe, when set, is consulted before minting a trace; a true
	// report skips the mint (counted in tracesShed). Observability is
	// the first thing a degrading system gives up — before any work is.
	shedProbe  func() bool
	tracesShed *obs.Counter
}

type subscription struct {
	refs     int
	disabled bool
}

// New returns a dispatcher forwarding to consumer.
func New(consumer Consumer) *Dispatcher {
	return &Dispatcher{
		consumer:    consumer,
		subs:        make(map[string]*subscription),
		useful:      new(obs.Counter),
		useless:     new(obs.Counter),
		potentially: new(obs.Counter),
		tracesShed:  new(obs.Counter),
	}
}

// Instrument binds the dispatcher's overhead counters into reg (as
// reach_sentry_checks_total{class=...}) and installs tracer so Emit
// mints a lifecycle trace per delivered event. Call it before the
// dispatcher sees traffic; it is not synchronized against Wants/Emit.
func (d *Dispatcher) Instrument(reg *obs.Registry, tracer *obs.Tracer, now func() time.Time) {
	if reg != nil {
		const name, help = "reach_sentry_checks_total", "Sentry firings by overhead class (WSTR93)."
		d.useful = reg.Counter(name, help, "class", "useful")
		d.useless = reg.Counter(name, help, "class", "useless")
		d.potentially = reg.Counter(name, help, "class", "potential")
		d.tracesShed = reg.Counter("reach_sentry_traces_shed_total",
			"Lifecycle traces skipped because the overload governor reported degradation.")
	}
	if tracer != nil {
		d.tracer = tracer
		d.now = now
		if d.now == nil {
			d.now = time.Now
		}
	}
}

// refreshLocked republishes the read-side snapshot; the caller holds
// d.mu.
func (d *Dispatcher) refreshLocked() {
	snap := make(map[string]bool, len(d.subs))
	for k, s := range d.subs {
		snap[k] = !s.disabled
	}
	d.snap.Store(&snap)
}

// Subscribe registers interest in the spec key (reference counted).
func (d *Dispatcher) Subscribe(specKey string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.subs[specKey]
	if s == nil {
		s = &subscription{}
		d.subs[specKey] = s
	}
	s.refs++
	d.refreshLocked()
}

// Unsubscribe drops one reference to the spec key.
func (d *Dispatcher) Unsubscribe(specKey string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.subs[specKey]
	if s == nil {
		return
	}
	s.refs--
	if s.refs <= 0 {
		delete(d.subs, specKey)
	}
	d.refreshLocked()
}

// SetEnabled toggles delivery for an existing subscription without
// dropping it. A disabled subscription is the "potentially useful"
// overhead class: the sentry still checks, nothing fires.
func (d *Dispatcher) SetEnabled(specKey string, enabled bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if s := d.subs[specKey]; s != nil {
		s.disabled = !enabled
	}
	d.refreshLocked()
}

// Wants implements the database Sink pre-check. It is the sentry's
// fast path and must stay cheap: one snapshot load, no locks.
func (d *Dispatcher) Wants(specKey string) bool {
	snap := d.snap.Load()
	if snap == nil {
		d.useless.Inc()
		return false
	}
	enabled, ok := (*snap)[specKey]
	switch {
	case !ok:
		d.useless.Inc()
		return false
	case !enabled:
		d.potentially.Inc()
		return false
	}
	d.useful.Inc()
	return true
}

// SetShedProbe installs the overload probe consulted before trace
// minting (nil removes it). Call it at wiring time, before traffic.
func (d *Dispatcher) SetShedProbe(p func() bool) { d.shedProbe = p }

// TracesShed reports how many lifecycle traces the shed probe skipped.
func (d *Dispatcher) TracesShed() uint64 { return d.tracesShed.Value() }

// Emit implements the database Sink delivery path. It is the origin
// of the event's lifecycle trace: every occurrence entering the
// system through a sentry gets its trace ID minted here. Under
// overload (shed probe reports true) the mint is skipped — event
// delivery itself is never shed here; that is the engine's decision,
// per coupling mode.
func (d *Dispatcher) Emit(in *event.Instance) error {
	if d.tracer != nil && in.Trace == 0 {
		if p := d.shedProbe; p != nil && p() {
			d.tracesShed.Inc()
		} else {
			in.Trace = d.tracer.Begin(in.SpecKey, d.now())
		}
	}
	return d.consumer.Consume(in)
}

// Stats reports how many sentry firings fell into each overhead class.
func (d *Dispatcher) Stats() (useful, useless, potentially uint64) {
	return d.useful.Value(), d.useless.Value(), d.potentially.Value()
}

// ResetStats zeroes the overhead counters.
func (d *Dispatcher) ResetStats() {
	d.useful.Reset()
	d.useless.Reset()
	d.potentially.Reset()
}

// Subscriptions reports the number of live subscription keys.
func (d *Dispatcher) Subscriptions() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.subs)
}
