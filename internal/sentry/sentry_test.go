package sentry

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/event"
)

func TestWantsUnsubscribedIsUseless(t *testing.T) {
	d := New(ConsumerFunc(func(*event.Instance) error { return nil }))
	if d.Wants("method:A.m:after") {
		t.Fatal("Wants true with no subscription")
	}
	useful, useless, pot := d.Stats()
	if useful != 0 || useless != 1 || pot != 0 {
		t.Fatalf("stats = %d/%d/%d, want 0/1/0", useful, useless, pot)
	}
}

func TestWantsSubscribedIsUseful(t *testing.T) {
	d := New(ConsumerFunc(func(*event.Instance) error { return nil }))
	d.Subscribe("k")
	if !d.Wants("k") {
		t.Fatal("Wants false with subscription")
	}
	useful, _, _ := d.Stats()
	if useful != 1 {
		t.Fatalf("useful = %d, want 1", useful)
	}
}

func TestWantsDisabledIsPotentiallyUseful(t *testing.T) {
	d := New(ConsumerFunc(func(*event.Instance) error { return nil }))
	d.Subscribe("k")
	d.SetEnabled("k", false)
	if d.Wants("k") {
		t.Fatal("Wants true while disabled")
	}
	_, _, pot := d.Stats()
	if pot != 1 {
		t.Fatalf("potentially = %d, want 1", pot)
	}
	d.SetEnabled("k", true)
	if !d.Wants("k") {
		t.Fatal("Wants false after re-enable")
	}
}

func TestSubscribeRefCounting(t *testing.T) {
	d := New(ConsumerFunc(func(*event.Instance) error { return nil }))
	d.Subscribe("k")
	d.Subscribe("k")
	d.Unsubscribe("k")
	if !d.Wants("k") {
		t.Fatal("subscription dropped while references remain")
	}
	d.Unsubscribe("k")
	if d.Wants("k") {
		t.Fatal("subscription survived final unsubscribe")
	}
	d.Unsubscribe("nonexistent") // must not panic
	if d.Subscriptions() != 0 {
		t.Fatalf("Subscriptions = %d, want 0", d.Subscriptions())
	}
}

func TestEmitForwardsToConsumer(t *testing.T) {
	var got *event.Instance
	d := New(ConsumerFunc(func(in *event.Instance) error { got = in; return nil }))
	in := &event.Instance{SpecKey: "k"}
	if err := d.Emit(in); err != nil {
		t.Fatal(err)
	}
	if got != in {
		t.Fatal("consumer did not receive the instance")
	}
}

func TestEmitPropagatesConsumerError(t *testing.T) {
	want := errors.New("veto")
	d := New(ConsumerFunc(func(*event.Instance) error { return want }))
	if err := d.Emit(&event.Instance{}); !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
}

func TestResetStats(t *testing.T) {
	d := New(ConsumerFunc(func(*event.Instance) error { return nil }))
	d.Subscribe("k")
	d.Wants("k")
	d.Wants("other")
	d.ResetStats()
	u, ul, p := d.Stats()
	if u != 0 || ul != 0 || p != 0 {
		t.Fatalf("stats after reset = %d/%d/%d", u, ul, p)
	}
}

func TestConcurrentWants(t *testing.T) {
	d := New(ConsumerFunc(func(*event.Instance) error { return nil }))
	d.Subscribe("hot")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				d.Wants("hot")
				d.Wants("cold")
			}
		}()
	}
	wg.Wait()
	useful, useless, _ := d.Stats()
	if useful != 8000 || useless != 8000 {
		t.Fatalf("stats = %d/%d, want 8000/8000", useful, useless)
	}
}
