package txn

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBeginCommitTopLevel(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	if !tx.IsTop() || tx.Depth() != 0 || tx.Parent() != nil {
		t.Fatal("top-level shape wrong")
	}
	if tx.Status() != Active {
		t.Fatalf("Status = %v, want Active", tx.Status())
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if tx.Status() != Committed {
		t.Fatalf("Status = %v, want Committed", tx.Status())
	}
	select {
	case <-tx.Done():
	default:
		t.Fatal("Done not closed after commit")
	}
}

func TestCommitTwiceFails(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	tx.Commit()
	if err := tx.Commit(); !errors.Is(err, ErrNotActive) {
		t.Fatalf("second Commit err = %v, want ErrNotActive", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrNotActive) {
		t.Fatalf("Abort after Commit err = %v, want ErrNotActive", err)
	}
}

func TestIDsMonotone(t *testing.T) {
	m := NewManager()
	a := m.Begin()
	b := m.Begin()
	c, _ := a.BeginChild()
	if !(a.ID() < b.ID() && b.ID() < c.ID()) {
		t.Fatalf("IDs not monotone: %d %d %d", a.ID(), b.ID(), c.ID())
	}
}

func TestNestedCommitAndTop(t *testing.T) {
	m := NewManager()
	top := m.Begin()
	child, err := top.BeginChild()
	if err != nil {
		t.Fatal(err)
	}
	grand, err := child.BeginChild()
	if err != nil {
		t.Fatal(err)
	}
	if grand.Top() != top || grand.Depth() != 2 {
		t.Fatal("Top/Depth wrong")
	}
	if err := top.Commit(); !errors.Is(err, ErrChildrenActive) {
		t.Fatalf("Commit with active children err = %v, want ErrChildrenActive", err)
	}
	if err := grand.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := child.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := top.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestBeginChildOfResolvedFails(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	tx.Commit()
	if _, err := tx.BeginChild(); !errors.Is(err, ErrNotActive) {
		t.Fatalf("BeginChild err = %v, want ErrNotActive", err)
	}
}

func TestAbortCascadesToChildren(t *testing.T) {
	m := NewManager()
	top := m.Begin()
	c1, _ := top.BeginChild()
	c2, _ := top.BeginChild()
	g, _ := c1.BeginChild()
	if err := top.Abort(); err != nil {
		t.Fatal(err)
	}
	for _, tx := range []*Txn{top, c1, c2, g} {
		if tx.Status() != Aborted {
			t.Fatalf("txn %d status = %v, want Aborted", tx.ID(), tx.Status())
		}
	}
	if g.Err() == nil {
		t.Fatal("cascaded child has nil Err")
	}
}

func TestChildAbortDoesNotAbortParent(t *testing.T) {
	m := NewManager()
	top := m.Begin()
	child, _ := top.BeginChild()
	child.Abort()
	if top.Status() != Active {
		t.Fatalf("parent status = %v, want Active", top.Status())
	}
	if err := top.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestOnAbortLIFO(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	var order []int
	tx.OnAbort(func() { order = append(order, 1) })
	tx.OnAbort(func() { order = append(order, 2) })
	tx.AbortWith(errors.New("boom"))
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("undo order = %v, want [2 1]", order)
	}
	if tx.Err() == nil || tx.Err().Error() != "boom" {
		t.Fatalf("Err = %v, want boom", tx.Err())
	}
}

func TestOnAbortNotRunOnCommit(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	ran := false
	tx.OnAbort(func() { ran = true })
	tx.Commit()
	if ran {
		t.Fatal("undo ran on commit")
	}
}

type recordingListener struct {
	mu     sync.Mutex
	events []string
	eotErr error
}

func (l *recordingListener) record(s string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, s)
}
func (l *recordingListener) AfterBegin(t *Txn)         { l.record("begin") }
func (l *recordingListener) BeforeCommit(t *Txn) error { l.record("eot"); return l.eotErr }
func (l *recordingListener) AfterCommit(t *Txn)        { l.record("commit") }
func (l *recordingListener) AfterAbort(t *Txn)         { l.record("abort") }

func TestListenerSequence(t *testing.T) {
	m := NewManager()
	l := &recordingListener{}
	m.SetListener(l)
	tx := m.Begin()
	tx.Commit()
	want := []string{"begin", "eot", "commit"}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.events) != 3 {
		t.Fatalf("events = %v, want %v", l.events, want)
	}
	for i := range want {
		if l.events[i] != want[i] {
			t.Fatalf("events = %v, want %v", l.events, want)
		}
	}
}

func TestEOTErrorAborts(t *testing.T) {
	m := NewManager()
	l := &recordingListener{eotErr: errors.New("deferred rule failed")}
	m.SetListener(l)
	tx := m.Begin()
	if err := tx.Commit(); err == nil {
		t.Fatal("Commit succeeded despite EOT error")
	}
	if tx.Status() != Aborted {
		t.Fatalf("Status = %v, want Aborted", tx.Status())
	}
}

func TestEOTNotCalledForSubtransactions(t *testing.T) {
	m := NewManager()
	l := &recordingListener{}
	m.SetListener(l)
	top := m.Begin()
	child, _ := top.BeginChild()
	child.Commit()
	l.mu.Lock()
	for _, e := range l.events {
		if e == "eot" {
			t.Fatal("EOT fired for subtransaction commit")
		}
	}
	l.mu.Unlock()
	top.Commit()
}

func TestDurabilityCallbacks(t *testing.T) {
	m := NewManager()
	var commits, aborts atomic.Int32
	m.SetDurability(
		func(*Txn) error { commits.Add(1); return nil },
		func(*Txn) error { aborts.Add(1); return nil },
	)
	tx := m.Begin()
	child, _ := tx.BeginChild()
	child.Commit() // must NOT hit durability
	tx.Commit()
	if commits.Load() != 1 {
		t.Fatalf("commitFunc called %d times, want 1", commits.Load())
	}
	tx2 := m.Begin()
	tx2.Abort()
	if aborts.Load() != 1 {
		t.Fatalf("abortFunc called %d times, want 1", aborts.Load())
	}
}

func TestDurableCommitFailureAborts(t *testing.T) {
	m := NewManager()
	m.SetDurability(func(*Txn) error { return errors.New("disk full") }, nil)
	tx := m.Begin()
	if err := tx.Commit(); err == nil {
		t.Fatal("Commit succeeded despite durability failure")
	}
	if tx.Status() != Aborted {
		t.Fatalf("Status = %v, want Aborted", tx.Status())
	}
}

func TestRequireCommitSatisfied(t *testing.T) {
	m := NewManager()
	trigger := m.Begin()
	rule := m.Begin()
	rule.RequireCommit(trigger)
	done := make(chan error, 1)
	go func() { done <- rule.Commit() }()
	select {
	case <-done:
		t.Fatal("dependent committed before trigger resolved")
	case <-time.After(20 * time.Millisecond):
	}
	trigger.Commit()
	if err := <-done; err != nil {
		t.Fatalf("dependent commit: %v", err)
	}
}

func TestRequireCommitViolated(t *testing.T) {
	m := NewManager()
	trigger := m.Begin()
	rule := m.Begin()
	rule.RequireCommit(trigger)
	trigger.Abort()
	err := rule.Commit()
	if !errors.Is(err, ErrDependencyFailed) {
		t.Fatalf("err = %v, want ErrDependencyFailed", err)
	}
	if rule.Status() != Aborted {
		t.Fatalf("dependent status = %v, want Aborted", rule.Status())
	}
}

func TestRequireAbortExclusiveMode(t *testing.T) {
	m := NewManager()
	// Contingency commits only if the trigger aborts.
	trigger := m.Begin()
	contingency := m.Begin()
	contingency.RequireAbort(trigger)
	trigger.Abort()
	if err := contingency.Commit(); err != nil {
		t.Fatalf("contingency commit after trigger abort: %v", err)
	}

	trigger2 := m.Begin()
	contingency2 := m.Begin()
	contingency2.RequireAbort(trigger2)
	trigger2.Commit()
	if err := contingency2.Commit(); !errors.Is(err, ErrDependencyFailed) {
		t.Fatalf("err = %v, want ErrDependencyFailed", err)
	}
}

func TestWaitReturnsOutcome(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	go func() {
		time.Sleep(5 * time.Millisecond)
		tx.Commit()
	}()
	if got := tx.Wait(); got != Committed {
		t.Fatalf("Wait = %v, want Committed", got)
	}
}

func TestTxnValues(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	type key struct{}
	if tx.Value(key{}) != nil {
		t.Fatal("unset value not nil")
	}
	tx.SetValue(key{}, 42)
	if got := tx.Value(key{}); got != 42 {
		t.Fatalf("Value = %v, want 42", got)
	}
}

func TestStatusStrings(t *testing.T) {
	for _, s := range []Status{Active, Committed, Aborted} {
		if s.String() == "" {
			t.Errorf("Status %d empty String", s)
		}
	}
	if LockShared.String() != "S" || LockExclusive.String() != "X" {
		t.Error("LockMode strings wrong")
	}
}

func TestParentAbortUndoesCommittedChildEffects(t *testing.T) {
	m := NewManager()
	top := m.Begin()
	child, _ := top.BeginChild()
	var undone []string
	child.OnAbort(func() { undone = append(undone, "child") })
	if err := child.Commit(); err != nil {
		t.Fatal(err)
	}
	top.OnAbort(func() { undone = append(undone, "top") })
	top.Abort()
	// LIFO across the inherited boundary: top's own (later) undo runs
	// first, then the child's inherited compensation.
	if len(undone) != 2 || undone[0] != "top" || undone[1] != "child" {
		t.Fatalf("undo order = %v, want [top child]", undone)
	}
}

func TestCommittedTopDropsUndo(t *testing.T) {
	m := NewManager()
	top := m.Begin()
	child, _ := top.BeginChild()
	ran := false
	child.OnAbort(func() { ran = true })
	child.Commit()
	top.Commit()
	if ran {
		t.Fatal("inherited undo ran despite top-level commit")
	}
}
