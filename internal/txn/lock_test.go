package txn

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLockSharedCompatible(t *testing.T) {
	m := NewManager()
	a := m.Begin()
	b := m.Begin()
	if err := a.Lock(1, LockShared); err != nil {
		t.Fatal(err)
	}
	if err := b.Lock(1, LockShared); err != nil {
		t.Fatal(err)
	}
	a.Commit()
	b.Commit()
}

func TestLockExclusiveBlocks(t *testing.T) {
	m := NewManager()
	a := m.Begin()
	b := m.Begin()
	if err := a.Lock(1, LockExclusive); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	go func() { acquired <- b.Lock(1, LockExclusive) }()
	select {
	case <-acquired:
		t.Fatal("X lock granted while conflicting X held")
	case <-time.After(20 * time.Millisecond):
	}
	a.Commit() // releases
	if err := <-acquired; err != nil {
		t.Fatal(err)
	}
	b.Commit()
}

func TestLockReentrant(t *testing.T) {
	m := NewManager()
	a := m.Begin()
	if err := a.Lock(1, LockExclusive); err != nil {
		t.Fatal(err)
	}
	if err := a.Lock(1, LockExclusive); err != nil {
		t.Fatal(err)
	}
	if err := a.Lock(1, LockShared); err != nil {
		t.Fatal(err) // weaker re-request is a no-op
	}
	a.Commit()
}

func TestLockUpgrade(t *testing.T) {
	m := NewManager()
	a := m.Begin()
	b := m.Begin()
	a.Lock(1, LockShared)
	b.Lock(1, LockShared)
	upgraded := make(chan error, 1)
	go func() { upgraded <- a.Lock(1, LockExclusive) }()
	select {
	case <-upgraded:
		t.Fatal("upgrade granted while another S holder present")
	case <-time.After(20 * time.Millisecond):
	}
	b.Commit()
	if err := <-upgraded; err != nil {
		t.Fatal(err)
	}
	if a.Held()[1] != LockExclusive {
		t.Fatalf("held mode = %v, want X", a.Held()[1])
	}
	a.Commit()
}

func TestDeadlockDetected(t *testing.T) {
	m := NewManager()
	a := m.Begin()
	b := m.Begin()
	a.Lock(1, LockExclusive)
	b.Lock(2, LockExclusive)

	ch := make(chan error, 2)
	go func() { ch <- a.Lock(2, LockExclusive) }()
	time.Sleep(10 * time.Millisecond) // let a block first
	err := b.Lock(1, LockExclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("second edge err = %v, want ErrDeadlock", err)
	}
	b.Abort() // victim aborts, releasing lock 2
	if err := <-ch; err != nil {
		t.Fatalf("survivor lock err = %v", err)
	}
	a.Commit()
}

// TestUpgradeDeadlockDetected drives the classic S→X upgrade deadlock:
// two transactions both hold shared locks on the same resource and
// both request exclusive. Neither can proceed until the other releases,
// so the second requester must receive ErrDeadlock — not hang.
func TestUpgradeDeadlockDetected(t *testing.T) {
	m := NewManager()
	a := m.Begin()
	b := m.Begin()
	if err := a.Lock(1, LockShared); err != nil {
		t.Fatal(err)
	}
	if err := b.Lock(1, LockShared); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- a.Lock(1, LockExclusive) }()
	time.Sleep(10 * time.Millisecond) // let a's upgrade park
	err := b.Lock(1, LockExclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("second upgrade err = %v, want ErrDeadlock", err)
	}
	b.Abort() // victim's S lock goes; survivor's upgrade becomes grantable
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("survivor upgrade err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("survivor's upgrade never granted after victim aborted")
	}
	if a.Held()[1] != LockExclusive {
		t.Fatalf("held mode = %v, want X", a.Held()[1])
	}
	a.Commit()
}

// TestCrossStripeDeadlockHammer races opposing lock orders on resource
// pairs that hash to different stripes, so every cycle spans stripes
// and detection must come from the global waits-for graph — no single
// stripe ever sees both edges. The assertion is progress: each cycle
// loses one edge to ErrDeadlock, so every worker terminates.
func TestCrossStripeDeadlockHammer(t *testing.T) {
	m := NewManager()
	const workers = 12
	const rounds = 40
	var detected atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				r1 := uint64(i % 4)
				r2 := r1 + 100
				for m.locks.stripe(r1) == m.locks.stripe(r2) {
					r2++
				}
				first, second := r1, r2
				if w%2 == 1 {
					first, second = r2, r1 // opposing order manufactures cycles
				}
				tx := m.Begin()
				if err := tx.Lock(first, LockExclusive); err != nil {
					detected.Add(1)
					tx.Abort()
					continue
				}
				// Hold the first lock long enough for an opposing worker
				// to take the other resource — without the window the
				// rounds serialize and no cycle ever forms.
				time.Sleep(50 * time.Microsecond)
				if err := tx.Lock(second, LockExclusive); err != nil {
					detected.Add(1)
					tx.Abort()
					continue
				}
				tx.Commit()
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cross-stripe deadlock went undetected (workers hung)")
	}
	t.Logf("cross-stripe deadlocks detected: %d", detected.Load())
}

func TestChildMayAcquireAncestorLock(t *testing.T) {
	m := NewManager()
	top := m.Begin()
	if err := top.Lock(1, LockExclusive); err != nil {
		t.Fatal(err)
	}
	child, _ := top.BeginChild()
	if err := child.Lock(1, LockExclusive); err != nil {
		t.Fatalf("child blocked on ancestor-held lock: %v", err)
	}
	child.Commit()
	top.Commit()
}

func TestSiblingSubtransactionsConflict(t *testing.T) {
	m := NewManager()
	top := m.Begin()
	c1, _ := top.BeginChild()
	c2, _ := top.BeginChild()
	if err := c1.Lock(1, LockExclusive); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- c2.Lock(1, LockExclusive) }()
	select {
	case <-got:
		t.Fatal("sibling acquired conflicting lock")
	case <-time.After(20 * time.Millisecond):
	}
	// When c1 commits, its locks are inherited by top — an ancestor of
	// c2 — so c2's request becomes grantable.
	c1.Commit()
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	c2.Commit()
	top.Commit()
}

func TestLockInheritanceOnChildCommit(t *testing.T) {
	m := NewManager()
	top := m.Begin()
	child, _ := top.BeginChild()
	child.Lock(7, LockExclusive)
	child.Commit()
	if top.Held()[7] != LockExclusive {
		t.Fatalf("parent did not inherit child's X lock: %v", top.Held())
	}
	// An outsider must still conflict.
	out := m.Begin()
	got := make(chan error, 1)
	go func() { got <- out.Lock(7, LockShared) }()
	select {
	case <-got:
		t.Fatal("outsider acquired inherited lock while top active")
	case <-time.After(20 * time.Millisecond):
	}
	top.Commit()
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	out.Commit()
}

func TestChildAbortReleasesItsLocks(t *testing.T) {
	m := NewManager()
	top := m.Begin()
	child, _ := top.BeginChild()
	child.Lock(9, LockExclusive)
	child.Abort()
	out := m.Begin()
	if err := out.Lock(9, LockExclusive); err != nil {
		t.Fatalf("lock held by aborted child not released: %v", err)
	}
	out.Commit()
	top.Commit()
}

func TestAbortWhileWaitingFailsRequest(t *testing.T) {
	m := NewManager()
	holder := m.Begin()
	holder.Lock(1, LockExclusive)
	waiter := m.Begin()
	got := make(chan error, 1)
	go func() { got <- waiter.Lock(1, LockShared) }()
	time.Sleep(10 * time.Millisecond)
	waiter.Abort() // resolved by another goroutine while queued
	select {
	case err := <-got:
		if !errors.Is(err, ErrNotActive) {
			t.Fatalf("err = %v, want ErrNotActive", err)
		}
	case <-time.After(time.Second):
		t.Fatal("queued request of aborted txn never failed")
	}
	holder.Commit()
}

func TestLockAfterResolveFails(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	tx.Commit()
	if err := tx.Lock(1, LockShared); !errors.Is(err, ErrNotActive) {
		t.Fatalf("err = %v, want ErrNotActive", err)
	}
}

func TestLockFIFOFairness(t *testing.T) {
	m := NewManager()
	holder := m.Begin()
	holder.Lock(1, LockExclusive)
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	txs := make([]*Txn, 3)
	for i := 0; i < 3; i++ {
		txs[i] = m.Begin()
	}
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := txs[i].Lock(1, LockExclusive); err != nil {
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			txs[i].Commit()
		}()
		time.Sleep(10 * time.Millisecond) // deterministic queue order
	}
	holder.Commit()
	wg.Wait()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("grant order = %v, want [0 1 2]", order)
	}
}

// TestLockStress exercises many goroutines transferring "funds" between
// locked accounts; the invariant is conservation of the total.
func TestLockStress(t *testing.T) {
	m := NewManager()
	const accounts = 8
	const workers = 16
	const transfers = 50
	balances := make([]int64, accounts)
	for i := range balances {
		balances[i] = 1000
	}
	var deadlocks atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < transfers; i++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					continue
				}
				tx := m.Begin()
				if err := tx.Lock(uint64(from), LockExclusive); err != nil {
					deadlocks.Add(1)
					tx.Abort()
					continue
				}
				if err := tx.Lock(uint64(to), LockExclusive); err != nil {
					deadlocks.Add(1)
					tx.Abort()
					continue
				}
				balances[from] -= 10
				balances[to] += 10
				tx.Commit()
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("lock stress timed out (undetected deadlock)")
	}
	var total int64
	for _, b := range balances {
		total += b
	}
	if total != accounts*1000 {
		t.Fatalf("total = %d, want %d (lost updates)", total, accounts*1000)
	}
	t.Logf("deadlocks detected and recovered: %d", deadlocks.Load())
}
