package txn

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestIsRetriable pins the transient-failure classification the
// supervised rule executor consults before retrying a rule attempt.
func TestIsRetriable(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{ErrDeadlock, true},
		{ErrWaitCancelled, true},
		{fmt.Errorf("rule x: %w", ErrDeadlock), true},
		{fmt.Errorf("rule x: %w", ErrWaitCancelled), true},
		{ErrNotActive, false},
		{ErrDependencyFailed, false},
		{errors.New("permanent"), false},
		{nil, false},
	}
	for _, c := range cases {
		if got := IsRetriable(c.err); got != c.want {
			t.Errorf("IsRetriable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// TestWaitCancelledWrapsNotActive keeps the backward-compatible error
// chain: code that checked errors.Is(err, ErrNotActive) before the
// typed cancellation error existed must keep matching.
func TestWaitCancelledWrapsNotActive(t *testing.T) {
	if !errors.Is(ErrWaitCancelled, ErrNotActive) {
		t.Fatal("ErrWaitCancelled does not wrap ErrNotActive")
	}
}

// TestCancelledLockWaitIsRetriable resolves a transaction while it is
// parked in a lock wait and verifies the waiter comes back with the
// typed, retriable cancellation error.
func TestCancelledLockWaitIsRetriable(t *testing.T) {
	m := NewManager()
	holder := m.Begin()
	if err := holder.Lock(1, LockExclusive); err != nil {
		t.Fatal(err)
	}
	waiter := m.Begin()
	got := make(chan error, 1)
	go func() { got <- waiter.Lock(1, LockExclusive) }()

	// Let the waiter park, then resolve it out from under the wait.
	time.Sleep(10 * time.Millisecond)
	if err := waiter.Abort(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		if !errors.Is(err, ErrWaitCancelled) {
			t.Fatalf("cancelled wait returned %v, want ErrWaitCancelled", err)
		}
		if !IsRetriable(err) {
			t.Fatalf("cancelled wait %v not classified retriable", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter never woke")
	}
	if err := holder.Commit(); err != nil {
		t.Fatal(err)
	}
}
