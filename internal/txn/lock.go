package txn

import (
	"fmt"
	"sync"

	"repro/internal/obs"
)

// LockMode is the strength of a lock request.
type LockMode int

// Lock modes.
const (
	LockShared LockMode = iota + 1
	LockExclusive
)

// String implements fmt.Stringer.
func (m LockMode) String() string {
	if m == LockShared {
		return "S"
	}
	return "X"
}

// lockStripes is the number of independent lock-table partitions. A
// power of two so the stripe index is a shift of the mixed hash.
const lockStripes = 64

// lockTable is a strict two-phase lock manager with Moss-style rules
// for nested transactions: a subtransaction may acquire a lock whose
// conflicting holders are all its ancestors, and on subtransaction
// commit its locks are inherited by the parent.
//
// The table is striped: resources hash across lockStripes partitions,
// each with its own mutex, so grants and releases on unrelated
// resources never serialize. Deadlock detection stays global — blocked
// requests record edges in one waits-for graph guarded by wfMu, and
// the cycle check (DFS) runs under wfMu alone, so grant/release on
// other stripes never queue behind it. The requester that would close
// a cycle receives ErrDeadlock.
//
// Lock order: a stripe mutex may be held when wfMu is taken; wfMu is
// never held while a stripe mutex is taken, and no two stripe mutexes
// are ever held together.
type lockTable struct {
	stripes [lockStripes]lockStripe

	// wfMu guards the global waits-for graph and the queued-on index.
	wfMu sync.Mutex
	// waitsFor maps a blocked transaction to the holders it waits on.
	waitsFor map[*Txn]map[*Txn]bool
	// waitingOn maps a blocked transaction to the resources it is
	// queued on, so releaseAll purges exactly those stripes instead of
	// scanning the whole table.
	waitingOn map[*Txn]map[uint64]bool

	// contention counts stripe-mutex acquisitions that found the stripe
	// already locked. Standalone by default; rebound by Instrument.
	contention *obs.Counter
}

type lockStripe struct {
	mu    sync.Mutex
	locks map[uint64]*lockState
}

type lockState struct {
	holders map[*Txn]LockMode
	queue   []*lockWaiter
}

type lockWaiter struct {
	t     *Txn
	mode  LockMode
	grant chan error
}

func newLockTable() *lockTable {
	lt := &lockTable{
		waitsFor:   make(map[*Txn]map[*Txn]bool),
		waitingOn:  make(map[*Txn]map[uint64]bool),
		contention: new(obs.Counter),
	}
	for i := range lt.stripes {
		lt.stripes[i].locks = make(map[uint64]*lockState)
	}
	return lt
}

// stripe selects the partition owning res. Fibonacci mixing spreads
// sequential OIDs (the common allocation pattern) across stripes.
func (lt *lockTable) stripe(res uint64) *lockStripe {
	return &lt.stripes[(res*0x9E3779B97F4A7C15)>>(64-6)]
}

// lockStripe locks st, counting the acquisitions that contended.
func (lt *lockTable) lockStripe(st *lockStripe) {
	if st.mu.TryLock() {
		return
	}
	lt.contention.Inc()
	st.mu.Lock()
}

// compatible reports whether t may be granted mode on ls.
func (ls *lockState) compatible(t *Txn, mode LockMode) bool {
	for h, hm := range ls.holders {
		if h == t {
			continue // upgrade handled by caller
		}
		if mode == LockShared && hm == LockShared {
			continue
		}
		// Conflict unless the holder is an ancestor (closed nesting).
		if !h.isAncestorOf(t) {
			return false
		}
	}
	return true
}

// heldByAncestor reports whether an ancestor of t holds the lock.
func (ls *lockState) heldByAncestor(t *Txn) bool {
	for h := range ls.holders {
		if h.isAncestorOf(t) {
			return true
		}
	}
	return false
}

func (lt *lockTable) acquire(t *Txn, res uint64, mode LockMode) error {
	st := lt.stripe(res)
	lt.lockStripe(st)
	ls := st.locks[res]
	if ls == nil {
		ls = &lockState{holders: make(map[*Txn]LockMode)}
		st.locks[res] = ls
	}
	// Already held at sufficient strength?
	if hm, ok := ls.holders[t]; ok {
		if hm == LockExclusive || mode == LockShared {
			st.mu.Unlock()
			return nil
		}
		// Upgrade S→X: must wait for other non-ancestor holders to go.
	}
	// Grant immediately when compatible, unless a queue has formed —
	// then join it for fairness. Two exceptions skip the queue: t
	// already holds the lock (re-entry), and an ancestor of t holds it
	// (closed nesting). The ancestor bypass is load-bearing: a rule
	// subtransaction reading state its top-level wrote must not be
	// fair-queued behind strangers who are themselves blocked on that
	// top-level's lock — the top won't release until the child
	// finishes, a cycle invisible to the waits-for graph because the
	// top is waiting in code, not in the lock table.
	if ls.compatible(t, mode) &&
		(len(ls.queue) == 0 || ls.holders[t] != 0 || ls.heldByAncestor(t)) {
		lt.grantLocked(ls, t, res, mode)
		st.mu.Unlock()
		return nil
	}
	// Must wait: record waits-for edges in the global graph and check
	// for a cycle, all before the stripe is released so the blockers
	// cannot dissolve between the decision to wait and the edges
	// becoming visible to other requesters' cycle checks.
	blockers := make(map[*Txn]bool)
	for h := range ls.holders {
		if h != t && !h.isAncestorOf(t) {
			blockers[h] = true
		}
	}
	for _, w := range ls.queue {
		if w.t != t {
			blockers[w.t] = true
		}
	}
	lt.wfMu.Lock()
	lt.waitsFor[t] = blockers
	if lt.cycleFromLocked(t) {
		delete(lt.waitsFor, t)
		lt.wfMu.Unlock()
		st.mu.Unlock()
		return fmt.Errorf("%w: txn %d requesting %v on %d", ErrDeadlock, t.id, mode, res)
	}
	qr := lt.waitingOn[t]
	if qr == nil {
		qr = make(map[uint64]bool)
		lt.waitingOn[t] = qr
	}
	qr[res] = true
	lt.wfMu.Unlock()
	w := &lockWaiter{t: t, mode: mode, grant: make(chan error, 1)}
	ls.queue = append(ls.queue, w)
	st.mu.Unlock()

	// Blocked: measure the wait and attribute it to the requester's
	// trace. The granted-immediately fast path above records nothing.
	start := t.m.clk.Now()
	err := <-w.grant
	wait := t.m.clk.Now().Sub(start)
	t.m.observeLockWait(mode, wait)
	t.m.span(t, "lock-wait", mode.String(), start, wait)
	return err
}

// grantLocked adds the grant to the state and bookkeeping. The
// caller holds the stripe owning res.
func (lt *lockTable) grantLocked(ls *lockState, t *Txn, res uint64, mode LockMode) {
	if cur, ok := ls.holders[t]; !ok || mode > cur {
		ls.holders[t] = mode
	}
	t.heldMu.Lock()
	if t.held == nil {
		t.held = make(map[uint64]LockMode)
	}
	if cur, ok := t.held[res]; !ok || mode > cur {
		t.held[res] = mode
	}
	t.heldMu.Unlock()
	lt.clearWait(t, res)
}

// clearWait removes t's waits-for edges and queued-on entry for res.
func (lt *lockTable) clearWait(t *Txn, res uint64) {
	lt.wfMu.Lock()
	delete(lt.waitsFor, t)
	if qr := lt.waitingOn[t]; qr != nil {
		delete(qr, res)
		if len(qr) == 0 {
			delete(lt.waitingOn, t)
		}
	}
	lt.wfMu.Unlock()
}

// cycleFromLocked reports whether the waits-for graph reaches back to
// start from start's blockers. The caller holds wfMu.
func (lt *lockTable) cycleFromLocked(start *Txn) bool {
	seen := make(map[*Txn]bool)
	var dfs func(t *Txn) bool
	dfs = func(t *Txn) bool {
		if t == start {
			return true
		}
		if seen[t] {
			return false
		}
		seen[t] = true
		for next := range lt.waitsFor[t] {
			if dfs(next) {
				return true
			}
		}
		return false
	}
	for b := range lt.waitsFor[start] {
		if dfs(b) {
			return true
		}
	}
	return false
}

// releaseAll drops every lock held by t, fails t's queued requests,
// and wakes compatible waiters.
func (lt *lockTable) releaseAll(t *Txn) {
	// Remove t from every wait queue it is parked on: a transaction
	// resolved by another goroutine must not be granted locks later.
	// The queued-on index names the stripes to visit.
	lt.wfMu.Lock()
	var queued []uint64
	for res := range lt.waitingOn[t] {
		queued = append(queued, res)
	}
	lt.wfMu.Unlock()
	for _, res := range queued {
		st := lt.stripe(res)
		lt.lockStripe(st)
		ls := st.locks[res]
		if ls == nil {
			st.mu.Unlock()
			continue
		}
		for i := 0; i < len(ls.queue); {
			if ls.queue[i].t == t {
				w := ls.queue[i]
				ls.queue = append(ls.queue[:i], ls.queue[i+1:]...)
				w.grant <- ErrWaitCancelled
			} else {
				i++
			}
		}
		lt.wakeLocked(st, ls, res)
		st.mu.Unlock()
	}

	t.heldMu.Lock()
	held := t.held
	t.held = nil
	t.heldMu.Unlock()
	for res := range held {
		st := lt.stripe(res)
		lt.lockStripe(st)
		ls := st.locks[res]
		if ls == nil {
			st.mu.Unlock()
			continue
		}
		delete(ls.holders, t)
		lt.wakeLocked(st, ls, res)
		if len(ls.holders) == 0 && len(ls.queue) == 0 {
			delete(st.locks, res)
		}
		st.mu.Unlock()
	}
	lt.wfMu.Lock()
	delete(lt.waitsFor, t)
	delete(lt.waitingOn, t)
	lt.wfMu.Unlock()
}

// inherit transfers all locks held by child to parent (Moss rule on
// subtransaction commit).
func (lt *lockTable) inherit(child, parent *Txn) {
	child.heldMu.Lock()
	held := child.held
	child.held = nil
	child.heldMu.Unlock()
	for res, mode := range held {
		st := lt.stripe(res)
		lt.lockStripe(st)
		ls := st.locks[res]
		if ls == nil {
			st.mu.Unlock()
			continue
		}
		delete(ls.holders, child)
		if cur, ok := ls.holders[parent]; !ok || mode > cur {
			ls.holders[parent] = mode
		}
		parent.heldMu.Lock()
		if parent.held == nil {
			parent.held = make(map[uint64]LockMode)
		}
		if cur, ok := parent.held[res]; !ok || mode > cur {
			parent.held[res] = mode
		}
		parent.heldMu.Unlock()
		lt.wakeLocked(st, ls, res)
		st.mu.Unlock()
	}
	lt.wfMu.Lock()
	delete(lt.waitsFor, child)
	delete(lt.waitingOn, child)
	lt.wfMu.Unlock()
}

// wakeLocked grants queued requests that are now compatible, in FIFO
// order, stopping at the first incompatible one. The caller holds st.
func (lt *lockTable) wakeLocked(st *lockStripe, ls *lockState, res uint64) {
	for len(ls.queue) > 0 {
		w := ls.queue[0]
		if w.t.Status() != Active {
			ls.queue = ls.queue[1:]
			lt.clearWait(w.t, res)
			w.grant <- ErrWaitCancelled
			continue
		}
		if !ls.compatible(w.t, w.mode) {
			return
		}
		ls.queue = ls.queue[1:]
		lt.grantLocked(ls, w.t, res, w.mode)
		w.grant <- nil
	}
}

// heldModes reports the locks t currently holds (for tests and stats).
func (lt *lockTable) heldModes(t *Txn) map[uint64]LockMode {
	t.heldMu.Lock()
	defer t.heldMu.Unlock()
	out := make(map[uint64]LockMode, len(t.held))
	for r, m := range t.held {
		out[r] = m
	}
	return out
}

// Held reports the resources and modes t currently holds.
func (t *Txn) Held() map[uint64]LockMode { return t.m.locks.heldModes(t) }
