package txn

import (
	"fmt"
	"sync"
)

// LockMode is the strength of a lock request.
type LockMode int

// Lock modes.
const (
	LockShared LockMode = iota + 1
	LockExclusive
)

// String implements fmt.Stringer.
func (m LockMode) String() string {
	if m == LockShared {
		return "S"
	}
	return "X"
}

// lockTable is a strict two-phase lock manager with Moss-style rules
// for nested transactions: a subtransaction may acquire a lock whose
// conflicting holders are all its ancestors, and on subtransaction
// commit its locks are inherited by the parent. Deadlocks are detected
// eagerly on the waits-for graph; the requester that would close a
// cycle receives ErrDeadlock.
type lockTable struct {
	mu    sync.Mutex
	locks map[uint64]*lockState
	// waitsFor maps a blocked transaction to the holders it waits on.
	waitsFor map[*Txn]map[*Txn]bool
	// held maps a transaction to the resources it holds.
	held map[*Txn]map[uint64]LockMode
}

type lockState struct {
	holders map[*Txn]LockMode
	queue   []*lockWaiter
}

type lockWaiter struct {
	t     *Txn
	mode  LockMode
	grant chan error
}

func newLockTable() *lockTable {
	return &lockTable{
		locks:    make(map[uint64]*lockState),
		waitsFor: make(map[*Txn]map[*Txn]bool),
		held:     make(map[*Txn]map[uint64]LockMode),
	}
}

// compatible reports whether t may be granted mode on ls.
func (ls *lockState) compatible(t *Txn, mode LockMode) bool {
	for h, hm := range ls.holders {
		if h == t {
			continue // upgrade handled by caller
		}
		if mode == LockShared && hm == LockShared {
			continue
		}
		// Conflict unless the holder is an ancestor (closed nesting).
		if !h.isAncestorOf(t) {
			return false
		}
	}
	return true
}

func (lt *lockTable) acquire(t *Txn, res uint64, mode LockMode) error {
	lt.mu.Lock()
	ls := lt.locks[res]
	if ls == nil {
		ls = &lockState{holders: make(map[*Txn]LockMode)}
		lt.locks[res] = ls
	}
	// Already held at sufficient strength?
	if hm, ok := ls.holders[t]; ok {
		if hm == LockExclusive || mode == LockShared {
			lt.mu.Unlock()
			return nil
		}
		// Upgrade S→X: must wait for other non-ancestor holders to go.
	}
	if ls.compatible(t, mode) && (len(ls.queue) == 0 || ls.holders[t] != 0) {
		lt.grantLocked(ls, t, res, mode)
		lt.mu.Unlock()
		return nil
	}
	// Must wait: record waits-for edges and check for a cycle.
	blockers := make(map[*Txn]bool)
	for h := range ls.holders {
		if h != t && !h.isAncestorOf(t) {
			blockers[h] = true
		}
	}
	for _, w := range ls.queue {
		if w.t != t {
			blockers[w.t] = true
		}
	}
	lt.waitsFor[t] = blockers
	if lt.cycleFromLocked(t) {
		delete(lt.waitsFor, t)
		lt.mu.Unlock()
		return fmt.Errorf("%w: txn %d requesting %v on %d", ErrDeadlock, t.id, mode, res)
	}
	w := &lockWaiter{t: t, mode: mode, grant: make(chan error, 1)}
	ls.queue = append(ls.queue, w)
	lt.mu.Unlock()

	// Blocked: measure the wait and attribute it to the requester's
	// trace. The granted-immediately fast path above records nothing.
	start := t.m.clk.Now()
	err := <-w.grant
	wait := t.m.clk.Now().Sub(start)
	t.m.observeLockWait(mode, wait)
	t.m.span(t, "lock-wait", mode.String(), start, wait)
	return err
}

// grantLocked adds the grant to the state and bookkeeping.
func (lt *lockTable) grantLocked(ls *lockState, t *Txn, res uint64, mode LockMode) {
	if cur, ok := ls.holders[t]; !ok || mode > cur {
		ls.holders[t] = mode
	}
	hr := lt.held[t]
	if hr == nil {
		hr = make(map[uint64]LockMode)
		lt.held[t] = hr
	}
	if cur, ok := hr[res]; !ok || mode > cur {
		hr[res] = mode
	}
	delete(lt.waitsFor, t)
}

// cycleFromLocked reports whether the waits-for graph reaches back to
// start from start's blockers.
func (lt *lockTable) cycleFromLocked(start *Txn) bool {
	seen := make(map[*Txn]bool)
	var dfs func(t *Txn) bool
	dfs = func(t *Txn) bool {
		if t == start {
			return true
		}
		if seen[t] {
			return false
		}
		seen[t] = true
		for next := range lt.waitsFor[t] {
			if dfs(next) {
				return true
			}
		}
		return false
	}
	for b := range lt.waitsFor[start] {
		if dfs(b) {
			return true
		}
	}
	return false
}

// releaseAll drops every lock held by t, fails t's queued requests,
// and wakes compatible waiters.
func (lt *lockTable) releaseAll(t *Txn) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	// Remove t from every wait queue: a transaction resolved by
	// another goroutine must not be granted locks later.
	for res, ls := range lt.locks {
		for i := 0; i < len(ls.queue); {
			if ls.queue[i].t == t {
				w := ls.queue[i]
				ls.queue = append(ls.queue[:i], ls.queue[i+1:]...)
				w.grant <- ErrWaitCancelled //lint:allow lockdiscipline grant channels are buffered (cap 1); the send cannot block
			} else {
				i++
			}
		}
		lt.wakeLocked(ls, res)
	}
	for res := range lt.held[t] {
		ls := lt.locks[res]
		if ls == nil {
			continue
		}
		delete(ls.holders, t)
		lt.wakeLocked(ls, res)
		if len(ls.holders) == 0 && len(ls.queue) == 0 {
			delete(lt.locks, res)
		}
	}
	delete(lt.held, t)
	delete(lt.waitsFor, t)
}

// inherit transfers all locks held by child to parent (Moss rule on
// subtransaction commit).
func (lt *lockTable) inherit(child, parent *Txn) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	for res, mode := range lt.held[child] {
		ls := lt.locks[res]
		if ls == nil {
			continue
		}
		delete(ls.holders, child)
		if cur, ok := ls.holders[parent]; !ok || mode > cur {
			ls.holders[parent] = mode
		}
		hr := lt.held[parent]
		if hr == nil {
			hr = make(map[uint64]LockMode)
			lt.held[parent] = hr
		}
		if cur, ok := hr[res]; !ok || mode > cur {
			hr[res] = mode
		}
		lt.wakeLocked(ls, res)
	}
	delete(lt.held, child)
	delete(lt.waitsFor, child)
}

// wakeLocked grants queued requests that are now compatible, in FIFO
// order, stopping at the first incompatible one.
func (lt *lockTable) wakeLocked(ls *lockState, res uint64) {
	for len(ls.queue) > 0 {
		w := ls.queue[0]
		if w.t.Status() != Active {
			ls.queue = ls.queue[1:]
			delete(lt.waitsFor, w.t)
			w.grant <- ErrWaitCancelled
			continue
		}
		if !ls.compatible(w.t, w.mode) {
			return
		}
		ls.queue = ls.queue[1:]
		lt.grantLocked(ls, w.t, res, w.mode)
		w.grant <- nil
	}
}

// heldModes reports the locks t currently holds (for tests and stats).
func (lt *lockTable) heldModes(t *Txn) map[uint64]LockMode {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	out := make(map[uint64]LockMode, len(lt.held[t]))
	for r, m := range lt.held[t] {
		out[r] = m
	}
	return out
}

// Held reports the resources and modes t currently holds.
func (t *Txn) Held() map[uint64]LockMode { return t.m.locks.heldModes(t) }
