// Package txn implements the REACH transaction manager: flat and
// closed nested transactions, a strict two-phase lock manager with
// deadlock detection, and the commit/abort dependencies required by
// the detached causally dependent coupling modes (paper §3.2, §4).
//
// The commercial systems the REACH group tried first exposed neither
// transaction identifiers nor commit/abort control (§4); this manager
// exposes exactly those hooks: listeners on BOT/EOT/commit/abort,
// dependency edges between transactions, and nested subtransactions
// for parallel rule execution.
package txn

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
)

// Status is the lifecycle state of a transaction.
type Status int

// Transaction states.
const (
	Active Status = iota + 1
	Committed
	Aborted
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Active:
		return "active"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Errors returned by transaction operations.
var (
	ErrNotActive        = errors.New("txn: transaction not active")
	ErrChildrenActive   = errors.New("txn: subtransactions still active")
	ErrDeadlock         = errors.New("txn: deadlock detected")
	ErrDependencyFailed = errors.New("txn: commit dependency not satisfied")
	// ErrWaitCancelled fails a pending lock request whose transaction
	// was resolved by another goroutine while it waited. It wraps
	// ErrNotActive so existing errors.Is checks keep matching.
	ErrWaitCancelled = fmt.Errorf("txn: lock wait cancelled: %w", ErrNotActive)
)

// IsRetriable reports whether err is a transient scheduling failure a
// fresh transaction attempt may not hit again: a detected deadlock
// (this transaction was chosen to break the cycle) or a cancelled
// lock wait. Permanent failures — constraint violations, dependency
// outcomes, storage errors — are not retriable. The rule executor
// consults this to decide between backoff-retry and the circuit
// breaker.
func IsRetriable(err error) bool {
	return errors.Is(err, ErrDeadlock) || errors.Is(err, ErrWaitCancelled)
}

// Listener observes transaction lifecycle events. The rule engine
// registers one to raise flow-control events and to run deferred
// rules at EOT.
type Listener interface {
	// AfterBegin is called when a transaction becomes active.
	AfterBegin(t *Txn)
	// BeforeCommit is called for top-level transactions after their
	// work completes but before the commit decision (the paper's EOT).
	// Returning an error aborts the transaction.
	BeforeCommit(t *Txn) error
	// AfterCommit is called once a transaction has committed.
	AfterCommit(t *Txn)
	// AfterAbort is called once a transaction has aborted.
	AfterAbort(t *Txn)
}

// Manager creates and tracks transactions.
type Manager struct {
	mu       sync.Mutex
	nextID   uint64
	locks    *lockTable
	listener Listener

	// admission, when installed, gates BeginAdmitted: the overload
	// governor's writer choke point. Plain Begin bypasses it — rule
	// transactions and internal work are never admission-controlled
	// (shedding them is the engine's job, at its own choke points).
	admission func() error

	// commitFunc/abortFunc are installed by the database layer to make
	// top-level outcomes durable.
	commitFunc func(t *Txn) error
	abortFunc  func(t *Txn) error

	// Top-level outcome counters and lifetime histogram. Standalone
	// by default; Instrument rebinds them into a shared registry.
	commits *obs.Counter
	aborts  *obs.Counter
	durs    *obs.Histogram

	// activeTop counts live top-level transactions — the governor's
	// cheapest load signal.
	activeTop *obs.Gauge

	// Latency attribution: time blocked on lock grants (by requested
	// mode) and time inside the durability callback at commit.
	lockWaitS  *obs.Histogram
	lockWaitX  *obs.Histogram
	durableDur *obs.Histogram

	// tracer, when set, receives lock-wait and wal-fsync spans for
	// transactions tagged with a trace ID (SetTrace).
	tracer *obs.Tracer

	// clk stamps transaction begin times and measures lifetimes.
	// Real by default; SetClock injects a virtual clock in tests.
	clk clock.Clock
}

// NewManager returns a transaction manager.
func NewManager() *Manager {
	m := &Manager{
		nextID:     1,
		commits:    new(obs.Counter),
		aborts:     new(obs.Counter),
		durs:       new(obs.Histogram),
		activeTop:  new(obs.Gauge),
		lockWaitS:  new(obs.Histogram),
		lockWaitX:  new(obs.Histogram),
		durableDur: new(obs.Histogram),
		clk:        clock.NewReal(),
	}
	m.locks = newLockTable()
	return m
}

// SetClock replaces the manager's time source. Call it before the
// first Begin; transaction timestamps and lifetime metrics then come
// from c, which makes them deterministic under a virtual clock.
func (m *Manager) SetClock(c clock.Clock) { m.clk = c }

// Instrument binds the manager's counters into reg. Call it before
// the first Begin.
func (m *Manager) Instrument(reg *obs.Registry) {
	const name, help = "reach_txn_total", "Top-level transaction outcomes."
	m.commits = reg.Counter(name, help, "outcome", "commit")
	m.aborts = reg.Counter(name, help, "outcome", "abort")
	m.durs = reg.Histogram("reach_txn_duration_seconds",
		"Top-level transaction lifetime, begin to resolution.")
	m.activeTop = reg.Gauge("reach_txn_active",
		"Live (unresolved) top-level transactions.")
	const lwName, lwHelp = "reach_lock_wait_seconds",
		"Time blocked waiting for a lock grant, by requested mode."
	m.lockWaitS = reg.Histogram(lwName, lwHelp, "mode", "S")
	m.lockWaitX = reg.Histogram(lwName, lwHelp, "mode", "X")
	m.durableDur = reg.Histogram("reach_txn_durable_commit_seconds",
		"Durability callback latency (WAL append + fsync) at top-level commit.")
	m.locks.contention = reg.Counter("reach_lock_stripe_contention_total",
		"Lock-table stripe acquisitions that found the stripe already locked.")
}

// SetTracer installs the tracer that receives lock-wait and wal-fsync
// spans for transactions carrying a trace ID. Call it before the
// first Begin.
func (m *Manager) SetTracer(tr *obs.Tracer) { m.tracer = tr }

// observeLockWait records time spent blocked on a lock grant.
func (m *Manager) observeLockWait(mode LockMode, d time.Duration) {
	if mode == LockShared {
		m.lockWaitS.Observe(d)
	} else {
		m.lockWaitX.Observe(d)
	}
}

// span records a stage on the nearest trace in t's ancestry, if any
// and a tracer is installed. Callers must not hold any mu on the
// ancestry chain.
func (m *Manager) span(t *Txn, stage, key string, start time.Time, dur time.Duration) {
	if m.tracer == nil {
		return
	}
	if id := t.traceUp(); id != 0 {
		m.tracer.Span(id, stage, key, start, dur)
	}
}

// traceUp returns the trace ID of t or its nearest traced ancestor:
// a rule subtransaction carries the trace while its user-submitted
// top-level parent does not.
func (t *Txn) traceUp() uint64 {
	for ; t != nil; t = t.parent {
		if id := t.TraceID(); id != 0 {
			return id
		}
	}
	return 0
}

// SetListener installs the lifecycle listener (nil allowed).
func (m *Manager) SetListener(l Listener) { m.listener = l }

// SetDurability installs the callbacks invoked to make a top-level
// commit or abort durable (typically wired to the storage layer).
func (m *Manager) SetDurability(commit, abort func(t *Txn) error) {
	m.commitFunc = commit
	m.abortFunc = abort
}

// Txn is a transaction: top-level when Parent is nil, otherwise a
// closed nested subtransaction whose effects become permanent only if
// every ancestor commits.
type Txn struct {
	m       *Manager
	id      uint64
	parent  *Txn
	started time.Time

	mu       sync.Mutex
	status   Status
	children map[*Txn]bool
	undo     []func() // LIFO compensations run on abort
	done     chan struct{}
	err      error

	// deps are commit-time dependencies: this transaction may commit
	// only once each dep.on reaches the outcome dep.want.
	deps []dependency

	// trace is the event-trace ID this transaction's lock-wait and
	// commit latency attribute to (0 when untraced).
	trace uint64

	// Values attached by higher layers (e.g. the object cache).
	vals map[any]any

	// held maps resources to the strongest lock mode this transaction
	// holds, guarded by heldMu — its own mutex, not mu, because the
	// lock table updates it while holding a stripe and must never
	// entangle stripe order with transaction-state order. heldMu is a
	// leaf: nothing is acquired while it is held.
	heldMu sync.Mutex
	held   map[uint64]LockMode
}

type dependency struct {
	on   *Txn
	want Status
}

// SetAdmission installs the admission gate consulted by
// BeginAdmitted (nil removes it). Call it before the first Begin.
func (m *Manager) SetAdmission(f func() error) { m.admission = f }

// ActiveTopLevel reports the number of live top-level transactions.
func (m *Manager) ActiveTopLevel() int64 { return m.activeTop.Value() }

// Begin starts a new top-level transaction.
func (m *Manager) Begin() *Txn { return m.BeginTagged(nil, nil) }

// BeginAdmitted starts a top-level transaction after consulting the
// admission gate: under overload it blocks up to the governor's
// admission deadline and then fails with the gate's typed error
// (governor.ErrOverloaded — retry with backoff) without consuming a
// transaction ID. With no gate installed it is Begin.
func (m *Manager) BeginAdmitted() (*Txn, error) {
	if f := m.admission; f != nil {
		if err := f(); err != nil {
			return nil, err
		}
	}
	return m.Begin(), nil
}

// BeginTagged starts a top-level transaction with a value attached
// before lifecycle listeners observe it. The rule engine uses it to
// distinguish rule transactions from user-submitted ones.
func (m *Manager) BeginTagged(key, val any) *Txn {
	m.mu.Lock()
	id := m.nextID
	m.nextID++
	m.mu.Unlock()
	t := &Txn{
		m:        m,
		id:       id,
		started:  m.clk.Now(),
		status:   Active,
		children: make(map[*Txn]bool),
		done:     make(chan struct{}),
	}
	if key != nil {
		t.vals = map[any]any{key: val}
	}
	m.activeTop.Add(1)
	if m.listener != nil {
		m.listener.AfterBegin(t)
	}
	return t
}

// BeginChild starts a nested subtransaction of t.
func (t *Txn) BeginChild() (*Txn, error) {
	t.mu.Lock()
	if t.status != Active {
		t.mu.Unlock()
		return nil, ErrNotActive
	}
	t.m.mu.Lock()
	id := t.m.nextID
	t.m.nextID++
	t.m.mu.Unlock()
	c := &Txn{
		m:        t.m,
		id:       id,
		parent:   t,
		started:  t.m.clk.Now(),
		status:   Active,
		children: make(map[*Txn]bool),
		done:     make(chan struct{}),
	}
	t.children[c] = true
	t.mu.Unlock()
	if t.m.listener != nil {
		t.m.listener.AfterBegin(c)
	}
	return c, nil
}

// ID returns the transaction identifier.
func (t *Txn) ID() uint64 { return t.id }

// Parent returns the enclosing transaction, nil for top-level.
func (t *Txn) Parent() *Txn { return t.parent }

// IsTop reports whether t is a top-level transaction.
func (t *Txn) IsTop() bool { return t.parent == nil }

// Top returns the top-level ancestor of t (t itself when top-level).
func (t *Txn) Top() *Txn {
	for t.parent != nil {
		t = t.parent
	}
	return t
}

// Depth reports the nesting depth (0 for top-level).
func (t *Txn) Depth() int {
	d := 0
	for p := t.parent; p != nil; p = p.parent {
		d++
	}
	return d
}

// Status reports the current lifecycle state.
func (t *Txn) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status
}

// Done returns a channel closed when the transaction resolves.
func (t *Txn) Done() <-chan struct{} { return t.done }

// Err reports why the transaction aborted, nil otherwise.
func (t *Txn) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Wait blocks until the transaction resolves and returns its outcome.
func (t *Txn) Wait() Status {
	<-t.done
	return t.Status()
}

// OnAbort registers a compensation run (LIFO) if the transaction
// aborts. Higher layers use it to undo in-memory object state.
func (t *Txn) OnAbort(fn func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.undo = append(t.undo, fn)
}

// SetValue attaches a value to the transaction under key.
func (t *Txn) SetValue(key, val any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.vals == nil {
		t.vals = make(map[any]any)
	}
	t.vals[key] = val
}

// Value retrieves a value attached with SetValue.
func (t *Txn) Value(key any) any {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.vals[key]
}

// SetTrace associates an event-trace ID with this transaction; the
// manager then attributes lock waits and durable-commit latency to
// that trace as spans. The rule engine tags rule transactions with the
// triggering event's trace.
func (t *Txn) SetTrace(id uint64) {
	t.mu.Lock()
	t.trace = id
	t.mu.Unlock()
}

// TraceID reports the associated event-trace ID, 0 when untraced.
func (t *Txn) TraceID() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.trace
}

// isAncestorOf reports whether t is a proper ancestor of other.
func (t *Txn) isAncestorOf(other *Txn) bool {
	for p := other.parent; p != nil; p = p.parent {
		if p == t {
			return true
		}
	}
	return false
}

// RequireCommit records that t may commit only if on commits
// (parallel and sequential detached causally dependent modes).
func (t *Txn) RequireCommit(on *Txn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.deps = append(t.deps, dependency{on: on, want: Committed})
}

// RequireAbort records that t may commit only if on aborts (exclusive
// detached causally dependent mode: the contingency commits only when
// the triggering transaction fails).
func (t *Txn) RequireAbort(on *Txn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.deps = append(t.deps, dependency{on: on, want: Aborted})
}

// Lock acquires a lock on resource res in the given mode, blocking
// until granted. It returns ErrDeadlock when granting would create a
// wait cycle; the caller should abort.
func (t *Txn) Lock(res uint64, mode LockMode) error {
	if t.Status() != Active {
		return ErrNotActive
	}
	return t.m.locks.acquire(t, res, mode)
}

// Commit completes the transaction successfully.
//
// For a top-level transaction the order is: EOT listener (deferred
// rules), active-children check, commit-dependency wait, durability
// callback, state change, lock release, commit listener. For a
// subtransaction: state change and lock inheritance by the parent.
func (t *Txn) Commit() error {
	t.mu.Lock()
	if t.status != Active {
		t.mu.Unlock()
		return ErrNotActive
	}
	t.mu.Unlock()

	if t.parent == nil {
		if l := t.m.listener; l != nil {
			if err := l.BeforeCommit(t); err != nil {
				_ = t.Abort() // secondary to the EOT error returned below
				return fmt.Errorf("txn %d: EOT processing: %w", t.id, err)
			}
		}
	}

	t.mu.Lock()
	if t.status != Active { // aborted during EOT processing
		st := t.status
		t.mu.Unlock()
		if st == Aborted {
			return ErrNotActive
		}
		return nil
	}
	for c := range t.children {
		if c.Status() == Active {
			t.mu.Unlock()
			return ErrChildrenActive
		}
	}
	deps := append([]dependency(nil), t.deps...)
	t.mu.Unlock()

	// Wait for causal dependencies (outside t.mu: the trigger may take
	// arbitrarily long to resolve).
	for _, d := range deps {
		if got := d.on.Wait(); got != d.want {
			err := fmt.Errorf("%w: txn %d requires txn %d %v, got %v",
				ErrDependencyFailed, t.id, d.on.id, d.want, got)
			_ = t.Abort() // secondary to the dependency error returned below
			return err
		}
	}

	if t.parent == nil {
		if cf := t.m.commitFunc; cf != nil {
			start := t.m.clk.Now()
			err := cf(t)
			dur := t.m.clk.Now().Sub(start)
			t.m.durableDur.Observe(dur)
			t.m.span(t, "wal-fsync", "", start, dur)
			if err != nil {
				_ = t.Abort() // secondary to the durable-commit error returned below
				return fmt.Errorf("txn %d: durable commit: %w", t.id, err)
			}
		}
	}

	t.mu.Lock()
	if t.status != Active {
		t.mu.Unlock()
		return ErrNotActive
	}
	t.status = Committed
	undo := t.undo
	t.undo = nil
	close(t.done)
	t.mu.Unlock()

	if t.parent == nil {
		t.m.commits.Inc()
		t.m.activeTop.Add(-1)
		t.m.durs.Observe(t.m.clk.Now().Sub(t.started))
		t.m.locks.releaseAll(t)
	} else {
		// Closed nesting: the parent inherits the child's locks and
		// its undo obligations — the child's effects become permanent
		// only if every ancestor commits.
		t.m.locks.inherit(t, t.parent)
		if len(undo) > 0 {
			t.parent.mu.Lock()
			t.parent.undo = append(t.parent.undo, undo...)
			t.parent.mu.Unlock()
		}
	}
	if l := t.m.listener; l != nil {
		l.AfterCommit(t)
	}
	return nil
}

// Abort rolls the transaction back: active children are aborted
// first, compensations run LIFO, the durability callback undoes
// storage effects (top-level), locks are released.
func (t *Txn) Abort() error {
	return t.abort(nil)
}

// AbortWith aborts recording cause as the transaction error.
func (t *Txn) AbortWith(cause error) error {
	return t.abort(cause)
}

func (t *Txn) abort(cause error) error {
	t.mu.Lock()
	if t.status != Active {
		t.mu.Unlock()
		return ErrNotActive
	}
	children := make([]*Txn, 0, len(t.children))
	for c := range t.children {
		children = append(children, c)
	}
	t.mu.Unlock()

	for _, c := range children {
		if c.Status() == Active {
			_ = c.abort(fmt.Errorf("txn: parent %d aborted", t.id)) // cascade: child may already be resolved
		}
	}

	t.mu.Lock()
	undo := t.undo
	t.undo = nil
	t.mu.Unlock()
	for i := len(undo) - 1; i >= 0; i-- {
		undo[i]()
	}

	if t.parent == nil {
		if af := t.m.abortFunc; af != nil {
			if err := af(t); err != nil {
				// Storage-level abort failed; surface it but still mark
				// the transaction aborted so waiters resolve.
				cause = errors.Join(cause, err)
			}
		}
	}

	t.mu.Lock()
	t.status = Aborted
	t.err = cause
	close(t.done)
	t.mu.Unlock()

	if t.parent == nil {
		t.m.aborts.Inc()
		t.m.activeTop.Add(-1)
		t.m.durs.Observe(t.m.clk.Now().Sub(t.started))
	}
	t.m.locks.releaseAll(t)
	if l := t.m.listener; l != nil {
		l.AfterAbort(t)
	}
	return nil
}
