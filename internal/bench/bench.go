// Package bench builds the workloads and fixtures for the experiment
// suite in DESIGN.md (T1, F1, F2, E1–E12). The same setups back both
// the testing.B benchmarks in the repository root and the
// cmd/reachbench harness that regenerates every table and figure.
package bench

import (
	"fmt"
	"time"

	"repro/internal/algebra"
	"repro/internal/clock"
	"repro/internal/eca"
	"repro/internal/event"
	"repro/internal/layered"
	"repro/internal/oodb"
)

// Epoch is the fixed start instant of every virtual clock.
var Epoch = time.Date(1995, 3, 6, 0, 0, 0, 0, time.UTC)

// Fixture is a ready-to-drive REACH instance with the benchmark
// schema registered.
type Fixture struct {
	DB     *oodb.DB
	Engine *eca.Engine
	Clock  *clock.Virtual
	Sensor *oodb.Object
}

// SensorPingAfter is the spec key of the workhorse method event.
func SensorPingAfter() string {
	return event.MethodSpec{Class: "Sensor", Method: "ping", When: event.After}.Key()
}

// SensorResetAfter is the second primitive used in composites.
func SensorResetAfter() string {
	return event.MethodSpec{Class: "Sensor", Method: "reset", When: event.After}.Key()
}

// sensorClass builds the benchmark class; monitored selects whether
// the sentry traps it.
func sensorClass(monitored bool) *oodb.Class {
	c := oodb.NewClass("Sensor",
		oodb.Attr{Name: "val", Type: oodb.TInt},
		oodb.Attr{Name: "hits", Type: oodb.TInt},
	)
	c.Monitored = monitored
	c.Method("ping", func(ctx *oodb.Ctx, self *oodb.Object, args []any) (any, error) {
		return nil, ctx.Set(self, "val", args[0])
	})
	c.Method("reset", func(ctx *oodb.Ctx, self *oodb.Object, args []any) (any, error) {
		return nil, ctx.Set(self, "val", int64(0))
	})
	return c
}

// NewFixture builds an in-memory REACH instance with a (monitored or
// unmonitored) Sensor class and one instance.
func NewFixture(monitored bool, opts eca.Options) *Fixture {
	vc := clock.NewVirtual(Epoch)
	db, err := oodb.Open(oodb.Options{Clock: vc})
	if err != nil {
		panic(err)
	}
	if err := db.Dictionary().Register(sensorClass(monitored)); err != nil {
		panic(err)
	}
	engine := eca.New(db, opts)
	tx := db.Begin()
	obj, err := db.NewObject(tx, "Sensor")
	if err != nil {
		panic(err)
	}
	if err := tx.Commit(); err != nil {
		panic(err)
	}
	return &Fixture{DB: db, Engine: engine, Clock: vc, Sensor: obj}
}

// Close shuts the fixture down.
func (f *Fixture) Close() {
	f.Engine.WaitDetached()
	f.Engine.Close()
	f.DB.Close()
}

// Ping drives one monitored method invocation in its own transaction.
func (f *Fixture) Ping(v int64) error {
	tx := f.DB.Begin()
	if _, err := f.DB.Invoke(tx, f.Sensor, "ping", v); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// PingN drives n invocations inside one transaction.
func (f *Fixture) PingN(n int) error {
	tx := f.DB.Begin()
	for i := 0; i < n; i++ {
		if _, err := f.DB.Invoke(tx, f.Sensor, "ping", int64(i)); err != nil {
			tx.Abort()
			return err
		}
	}
	return tx.Commit()
}

// AddNoopRules registers n no-op immediate rules on ping.
func (f *Fixture) AddNoopRules(n int, mode eca.Coupling) error {
	for i := 0; i < n; i++ {
		if err := f.Engine.AddRule(&eca.Rule{
			Name:       fmt.Sprintf("noop-%d-%v", i, mode),
			EventKey:   SensorPingAfter(),
			ActionMode: mode,
			Action:     func(*eca.RuleCtx) error { return nil },
		}); err != nil {
			return err
		}
	}
	return nil
}

// AddBusyRules registers n immediate rules whose action spins for
// roughly cost (virtualized as object work: attribute increments).
func (f *Fixture) AddBusyRules(n int, work int) error {
	obj := f.Sensor
	for i := 0; i < n; i++ {
		if err := f.Engine.AddRule(&eca.Rule{
			Name:       fmt.Sprintf("busy-%d", i),
			EventKey:   SensorPingAfter(),
			ActionMode: eca.Immediate,
			Action: func(rc *eca.RuleCtx) error {
				c := rc.Ctx()
				for w := 0; w < work; w++ {
					h, err := c.GetInt(obj, "hits")
					if err != nil {
						return err
					}
					if err := c.Set(obj, "hits", h+1); err != nil {
						return err
					}
				}
				return nil
			},
		}); err != nil {
			return err
		}
	}
	return nil
}

// DefineSeqComposites defines k two-step composites over ping→reset.
func (f *Fixture) DefineSeqComposites(k int, scope algebra.Scope) error {
	for i := 0; i < k; i++ {
		comp := &algebra.Composite{
			Name: fmt.Sprintf("pair-%d", i),
			Expr: algebra.Seq{Exprs: []algebra.Expr{
				algebra.Prim{Key: SensorPingAfter()},
				algebra.Prim{Key: SensorResetAfter()},
			}},
			Policy: algebra.Chronicle,
			Scope:  scope,
		}
		if scope == algebra.ScopeGlobal {
			comp.Validity = time.Hour
		}
		if err := f.Engine.DefineComposite(comp); err != nil {
			return err
		}
	}
	return nil
}

// DefineDeepComposites defines k composites whose expression is a
// long same-key sequence: every occurrence updates several positions
// and triggers chain matching, making each feed genuinely expensive —
// the regime in which asynchronous composition pays off.
func (f *Fixture) DefineDeepComposites(k, depth int) error {
	for i := 0; i < k; i++ {
		exprs := make([]algebra.Expr, depth)
		for d := range exprs {
			exprs[d] = algebra.Prim{Key: SensorPingAfter()}
		}
		comp := &algebra.Composite{
			Name:     fmt.Sprintf("deep-%d", i),
			Expr:     algebra.Seq{Exprs: exprs},
			Policy:   algebra.Chronicle,
			Scope:    algebra.ScopeGlobal,
			Validity: time.Hour,
		}
		if err := f.Engine.DefineComposite(comp); err != nil {
			return err
		}
	}
	return nil
}

// LayeredFixture is the §4 baseline: the same schema behind a closed
// OODB with an active layer on top.
type LayeredFixture struct {
	Closed *layered.ClosedOODB
	Layer  *layered.Layer
	Sensor *oodb.Object
}

// NewLayeredFixture builds the layered baseline.
func NewLayeredFixture() *LayeredFixture {
	closed, err := layered.NewClosed(oodb.Options{Clock: clock.NewVirtual(Epoch)})
	if err != nil {
		panic(err)
	}
	// The closed system's classes are never monitored: there is no
	// sentry to deliver to.
	if err := closed.Dictionary().Register(sensorClass(false)); err != nil {
		panic(err)
	}
	ft := closed.Begin()
	obj, err := closed.NewObject(ft, "Sensor")
	if err != nil {
		panic(err)
	}
	if err := ft.Commit(); err != nil {
		panic(err)
	}
	return &LayeredFixture{Closed: closed, Layer: layered.NewLayer(closed), Sensor: obj}
}

// Close shuts the baseline down.
func (lf *LayeredFixture) Close() { lf.Closed.Close() }

// Ping drives one wrapped invocation in its own flat transaction.
func (lf *LayeredFixture) Ping(v int64) error {
	ft := lf.Closed.Begin()
	if _, err := lf.Layer.Invoke(ft, lf.Sensor, "ping", v); err != nil {
		ft.Abort()
		return err
	}
	return ft.Commit()
}

// Table1Rows regenerates the paper's Table 1 from the engine's
// admission predicate, formatted exactly like the paper's rows.
func Table1Rows() [][]string {
	header := []string{"", "Single Method", "Purely Temporal", "Composite 1 TX", "Composite n TXs"}
	names := map[eca.Coupling]string{
		eca.Immediate:                "Immediate",
		eca.Deferred:                 "Deferred",
		eca.Detached:                 "Detached",
		eca.DetachedParallelCausal:   "Par.caus.dep.",
		eca.DetachedSequentialCausal: "Seq.caus.dep.",
		eca.DetachedExclusiveCausal:  "Exc.caus.dep.",
	}
	rows := [][]string{header}
	for _, mode := range eca.Couplings() {
		row := []string{names[mode]}
		for _, cat := range eca.Categories() {
			cell := "N"
			if eca.Supported(cat, mode) {
				cell = "Y"
			}
			// The paper marks composite-1TX immediate "(N)": correct
			// semantically, rejected for performance.
			if mode == eca.Immediate && cat == eca.CompositeSingleTxn {
				cell = "(N)"
			}
			switch {
			case mode == eca.DetachedParallelCausal && cat == eca.CompositeMultiTxn:
				cell += " (all commit)"
			case mode == eca.DetachedSequentialCausal && cat == eca.CompositeMultiTxn:
				cell += " (all commit)"
			case mode == eca.DetachedExclusiveCausal && cat == eca.CompositeMultiTxn:
				cell += " (all abort)"
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	return rows
}

// PaperTable1 is the expected matrix, cell for cell, for verification.
var PaperTable1 = map[eca.Coupling][4]bool{
	eca.Immediate:                {true, false, false, false},
	eca.Deferred:                 {true, false, true, false},
	eca.Detached:                 {true, true, true, true},
	eca.DetachedParallelCausal:   {true, false, true, true},
	eca.DetachedSequentialCausal: {true, false, true, true},
	eca.DetachedExclusiveCausal:  {true, false, true, true},
}

// VerifyTable1 checks the engine's admission predicate against the
// paper's matrix and returns the mismatching cells (empty = exact
// reproduction).
func VerifyTable1() []string {
	var bad []string
	for mode, row := range PaperTable1 {
		for i, cat := range eca.Categories() {
			if eca.Supported(cat, mode) != row[i] {
				bad = append(bad, fmt.Sprintf("%v/%v", mode, cat))
			}
		}
	}
	return bad
}

// Figure2Trace drives the water-level scenario and returns the
// message flow of Figure 2 as observed: method call → sentry →
// method ECA-manager → rule firing and propagation to the composite
// ECA-manager → event objects.
func Figure2Trace() ([]string, error) {
	f := NewFixture(true, eca.Options{})
	defer f.Close()
	var traceLines []string
	trace := func(format string, args ...any) {
		traceLines = append(traceLines, fmt.Sprintf(format, args...))
	}
	comp := &algebra.Composite{
		Name: "ping-reset",
		Expr: algebra.Seq{Exprs: []algebra.Expr{
			algebra.Prim{Key: SensorPingAfter()},
			algebra.Prim{Key: SensorResetAfter()},
		}},
		Policy: algebra.Chronicle,
		Scope:  algebra.ScopeTransaction,
	}
	if err := f.Engine.DefineComposite(comp); err != nil {
		return nil, err
	}
	if err := f.Engine.AddRule(&eca.Rule{
		Name: "immediateRule", EventKey: SensorPingAfter(), ActionMode: eca.Immediate,
		Action: func(rc *eca.RuleCtx) error {
			trace("  method ECA-manager fires rule %q immediately (txn %d, subtransaction %d)",
				"immediateRule", rc.Trigger.Txn, rc.Txn.ID())
			return nil
		},
	}); err != nil {
		return nil, err
	}
	if err := f.Engine.AddRule(&eca.Rule{
		Name: "compositeRule", EventKey: comp.Key(), ActionMode: eca.Deferred,
		Action: func(rc *eca.RuleCtx) error {
			trace("  composite ECA-manager fires rule %q deferred at EOT with %d constituents",
				"compositeRule", len(rc.Trigger.Flatten()))
			return nil
		},
	}); err != nil {
		return nil, err
	}
	tx := f.DB.Begin()
	trace("BOT txn %d", tx.ID())
	trace("method call Sensor.ping -> sentry traps -> event object created")
	if _, err := f.DB.Invoke(tx, f.Sensor, "ping", int64(1)); err != nil {
		return nil, err
	}
	trace("go-ahead returned to application (no pending immediate composite)")
	trace("method call Sensor.reset -> sentry traps -> propagate to composite ECA-manager")
	if _, err := f.DB.Invoke(tx, f.Sensor, "reset"); err != nil {
		return nil, err
	}
	trace("EOT: drain composers, flush txn-scoped compositions, run deferred queue")
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	trace("commit txn %d", tx.ID())
	st := f.Engine.Stats()
	trace("stats: %d events, %d immediate, %d deferred, %d composites",
		st.Events, st.ImmediateFired, st.DeferredFired, st.CompositesDetected)
	return traceLines, nil
}

// Figure1Trace exercises the Open OODB architecture of Figure 1: the
// sentry (dispatcher) routing to policy managers — persistence
// (flush at commit), transactions (EOT processing), indexing (an ECA-
// maintained index) — over one workload, reporting which modules ran.
func Figure1Trace(dir string) ([]string, error) {
	vc := clock.NewVirtual(Epoch)
	db, err := oodb.Open(oodb.Options{Dir: dir, Clock: vc})
	if err != nil {
		return nil, err
	}
	engine := eca.New(db, eca.Options{})
	defer engine.Close()
	defer db.Close()
	if err := db.Dictionary().Register(sensorClass(true)); err != nil {
		return nil, err
	}
	var lines []string
	add := func(format string, args ...any) { lines = append(lines, fmt.Sprintf(format, args...)) }

	add("application programming interface: begin transaction")
	tx := db.Begin()
	obj, err := db.NewObject(tx, "Sensor")
	if err != nil {
		return nil, err
	}
	add("meta-architecture: sentry traps Sensor.__create__ (useful overhead)")
	if err := db.SetRoot(tx, "s1", obj); err != nil {
		return nil, err
	}
	add("persistence PM: object registered as root %q", "s1")
	if _, err := db.Invoke(tx, obj, "ping", int64(7)); err != nil {
		return nil, err
	}
	add("sentry: method event Sensor.ping dispatched to ECA-managers")
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	add("transaction PM: EOT processing, then durable commit (WAL force)")
	st := db.StorageStats()
	add("address space manager (EXODUS stand-in): %d pages, %d WAL syncs", st.Pages, st.WALSyncs)
	useful, useless, _ := engine.Dispatcher().Stats()
	add("sentry overhead counters: useful=%d useless=%d", useful, useless)
	return lines, nil
}
