package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleFile() *File {
	return &File{
		Meta: NewMeta(5000),
		Results: []Row{
			{Experiment: "E1-sentry", Config: "unmonitored", Ops: 5000,
				NsPerOp: 120, AllocsPerOp: 2, BytesPerOp: 64},
			{Experiment: "E1-sentry", Config: "useful (rule fires)", Ops: 5000,
				NsPerOp: 900, AllocsPerOp: 12, BytesPerOp: 512, Extra: "useless-hits=0"},
			{Experiment: "E7-lifespan", Config: "global, after validity GC", Ops: 50},
		},
	}
}

func TestBenchJSONRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	f := sampleFile()
	if err := WriteJSON(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaVersion {
		t.Fatalf("schema = %d, want %d", got.Schema, SchemaVersion)
	}
	if got.Meta != f.Meta {
		t.Fatalf("meta round-trip: got %+v, want %+v", got.Meta, f.Meta)
	}
	if len(got.Results) != len(f.Results) {
		t.Fatalf("results len = %d, want %d", len(got.Results), len(f.Results))
	}
	for i := range got.Results {
		if got.Results[i] != f.Results[i] {
			t.Fatalf("row %d: got %+v, want %+v", i, got.Results[i], f.Results[i])
		}
	}
}

func TestBenchJSONRejectsUnknownSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "future.json")
	if err := os.WriteFile(path, []byte(`{"schema": 999, "results": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJSON(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("want schema error, got %v", err)
	}
}

func TestDiffSelfIsClean(t *testing.T) {
	f := sampleFile()
	if regs := Diff(f, f, 0); len(regs) != 0 {
		t.Fatalf("self-diff found regressions: %v", regs)
	}
}

func TestDiffToleranceAndRegression(t *testing.T) {
	old := sampleFile()
	cur := sampleFile()

	// 20% slower passes a 25% tolerance and fails a 10% one.
	cur.Results[0].NsPerOp = old.Results[0].NsPerOp * 1.2
	if regs := Diff(old, cur, 0.25); len(regs) != 0 {
		t.Fatalf("within tolerance yet flagged: %v", regs)
	}
	regs := Diff(old, cur, 0.10)
	if len(regs) != 1 {
		t.Fatalf("want 1 regression, got %v", regs)
	}
	r := regs[0]
	if r.Experiment != "E1-sentry" || r.Config != "unmonitored" || r.Missing {
		t.Fatalf("wrong regression: %+v", r)
	}
	if r.Ratio < 1.19 || r.Ratio > 1.21 {
		t.Fatalf("ratio = %v, want ~1.2", r.Ratio)
	}
	if !strings.Contains(r.String(), "E1-sentry / unmonitored") {
		t.Fatalf("String() = %q", r.String())
	}

	// Improvements never flag.
	cur.Results[0].NsPerOp = old.Results[0].NsPerOp / 2
	if regs := Diff(old, cur, 0); len(regs) != 0 {
		t.Fatalf("improvement flagged: %v", regs)
	}
}

func TestDiffMissingRow(t *testing.T) {
	old := sampleFile()
	cur := sampleFile()
	cur.Results = cur.Results[1:] // drop the first timed row
	regs := Diff(old, cur, 0.25)
	if len(regs) != 1 || !regs[0].Missing {
		t.Fatalf("want one missing-row regression, got %v", regs)
	}
	if !strings.Contains(regs[0].String(), "missing") {
		t.Fatalf("String() = %q", regs[0].String())
	}
}

func TestDiffSkipsUntimedRows(t *testing.T) {
	// Count-only rows (NsPerOp 0, like E7's GC row) are not gated even
	// when missing from the new results.
	old := sampleFile()
	cur := sampleFile()
	cur.Results = cur.Results[:2] // drop the untimed E7 row
	if regs := Diff(old, cur, 0); len(regs) != 0 {
		t.Fatalf("untimed row gated: %v", regs)
	}
}

func TestDiffIgnoresNewRows(t *testing.T) {
	old := sampleFile()
	cur := sampleFile()
	cur.Results = append(cur.Results, Row{Experiment: "E99", Config: "new", NsPerOp: 1e9})
	if regs := Diff(old, cur, 0); len(regs) != 0 {
		t.Fatalf("new row flagged: %v", regs)
	}
}

func TestMeasureRecordsAllocs(t *testing.T) {
	row := measure("alloc-test", "cfg", 100, func() {
		sink := make([][]byte, 100)
		for i := range sink {
			sink[i] = make([]byte, 1024)
		}
		_ = sink
	})
	if row.AllocsPerOp < 1 {
		t.Fatalf("AllocsPerOp = %v, want >= 1", row.AllocsPerOp)
	}
	if row.BytesPerOp < 1024 {
		t.Fatalf("BytesPerOp = %v, want >= 1024", row.BytesPerOp)
	}
}
