package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"
)

// SchemaVersion is the BENCH_*.json schema version. Bump it when the
// file shape changes incompatibly; Read rejects files from a newer
// schema rather than mis-reading them.
const SchemaVersion = 1

// Meta is the run metadata recorded alongside the results so a
// baseline can be judged for comparability before diffing against it.
type Meta struct {
	GoVersion       string `json:"go_version"`
	GOOS            string `json:"goos"`
	GOARCH          string `json:"goarch"`
	NumCPU          int    `json:"num_cpu"`
	EventsPerConfig int    `json:"events_per_config"`
	Timestamp       string `json:"timestamp"`
}

// NewMeta captures the current run environment. eventsPerConfig is the
// -n the experiments ran with.
func NewMeta(eventsPerConfig int) Meta {
	return Meta{
		GoVersion:       runtime.Version(),
		GOOS:            runtime.GOOS,
		GOARCH:          runtime.GOARCH,
		NumCPU:          runtime.NumCPU(),
		EventsPerConfig: eventsPerConfig,
		Timestamp:       time.Now().UTC().Format(time.RFC3339),
	}
}

// File is the versioned on-disk perf-trajectory record: one
// BENCH_<n>.json per PR, diffable against its predecessor.
type File struct {
	Schema  int   `json:"schema"`
	Meta    Meta  `json:"meta"`
	Results []Row `json:"results"`
}

// WriteJSON writes f to path, stamping the schema version.
func WriteJSON(path string, f *File) error {
	f.Schema = SchemaVersion
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadJSON reads a perf-trajectory file, rejecting unknown schemas.
func ReadJSON(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if f.Schema < 1 || f.Schema > SchemaVersion {
		return nil, fmt.Errorf("bench: %s: schema %d not supported (this build reads <= %d)",
			path, f.Schema, SchemaVersion)
	}
	return &f, nil
}

// Regression is one (experiment, config) pair that got slower than the
// baseline allows, or that vanished from the new results.
type Regression struct {
	Experiment string
	Config     string
	OldNsPerOp float64
	NewNsPerOp float64
	// Ratio is new/old; 1.30 means 30% slower.
	Ratio float64
	// Missing marks a baseline row absent from the new results.
	Missing bool
}

func (r Regression) String() string {
	if r.Missing {
		return fmt.Sprintf("%s / %s: present in baseline, missing from new results",
			r.Experiment, r.Config)
	}
	return fmt.Sprintf("%s / %s: %.0f -> %.0f ns/op (%.2fx)",
		r.Experiment, r.Config, r.OldNsPerOp, r.NewNsPerOp, r.Ratio)
}

// Diff compares cur against the old baseline and returns the rows
// whose ns/op regressed beyond tolerance (0.25 allows 25% slowdown),
// plus baseline rows missing from cur. Rows are matched by
// (experiment, config); baseline rows without a timing (NsPerOp 0,
// e.g. count-only results) are not gated. New rows absent from the
// baseline are ignored — they have nothing to regress against.
func Diff(old, cur *File, tolerance float64) []Regression {
	type key struct{ exp, cfg string }
	curRows := make(map[key]Row, len(cur.Results))
	for _, r := range cur.Results {
		curRows[key{r.Experiment, r.Config}] = r
	}
	var regs []Regression
	for _, o := range old.Results {
		if o.NsPerOp <= 0 {
			continue
		}
		n, ok := curRows[key{o.Experiment, o.Config}]
		if !ok {
			regs = append(regs, Regression{
				Experiment: o.Experiment, Config: o.Config,
				OldNsPerOp: o.NsPerOp, Missing: true,
			})
			continue
		}
		if n.NsPerOp > o.NsPerOp*(1+tolerance) {
			regs = append(regs, Regression{
				Experiment: o.Experiment, Config: o.Config,
				OldNsPerOp: o.NsPerOp, NewNsPerOp: n.NsPerOp,
				Ratio: n.NsPerOp / o.NsPerOp,
			})
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Experiment != regs[j].Experiment {
			return regs[i].Experiment < regs[j].Experiment
		}
		return regs[i].Config < regs[j].Config
	})
	return regs
}
