package bench

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic" //lint:allow rawatomics E14's per-run load counters are local measurement accumulators, not metrics
	"time"

	"repro/internal/algebra"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/eca"
	"repro/internal/event"
	"repro/internal/governor"
	"repro/internal/layered"
	"repro/internal/oodb"
	"repro/internal/storage"
)

// Row is one measured configuration of one experiment. The JSON tags
// are the BENCH_*.json perf-trajectory schema (see benchjson.go).
type Row struct {
	Experiment  string  `json:"experiment"`
	Config      string  `json:"config"`
	Ops         int     `json:"ops"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	Extra       string  `json:"extra,omitempty"`
}

func measure(experiment, config string, ops int, fn func()) Row {
	// Settle the heap first: a garbage-heavy predecessor (E5 buffers
	// hundreds of semi-composed occurrences) otherwise leaves its GC
	// debt to be paid inside this measurement window, making rows
	// depend on experiment order.
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	fn()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return Row{
		Experiment:  experiment,
		Config:      config,
		Ops:         ops,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(ops),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(ops),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(ops),
	}
}

// RunE1 measures the sentry overhead classes of §6.2/[WSTR93]:
// unmonitored execution, useless overhead (monitored, no subscriber),
// potentially-useful overhead (subscriber disabled), and useful
// overhead (a rule fires).
func RunE1(n int) []Row {
	var rows []Row

	unmon := NewFixture(false, eca.Options{})
	rows = append(rows, measure("E1-sentry", "unmonitored", n, func() {
		unmon.PingN(n)
	}))
	unmon.Close()

	useless := NewFixture(true, eca.Options{})
	rows = append(rows, measure("E1-sentry", "useless (no subscriber)", n, func() {
		useless.PingN(n)
	}))
	_, ul, _ := useless.Engine.Dispatcher().Stats()
	rows[len(rows)-1].Extra = fmt.Sprintf("useless-hits=%d", ul)
	useless.Close()

	pot := NewFixture(true, eca.Options{})
	pot.AddNoopRules(1, eca.Immediate)
	pot.Engine.Dispatcher().SetEnabled(SensorPingAfter(), false)
	rows = append(rows, measure("E1-sentry", "potentially useful (disabled)", n, func() {
		pot.PingN(n)
	}))
	pot.Close()

	useful := NewFixture(true, eca.Options{})
	useful.AddNoopRules(1, eca.Immediate)
	rows = append(rows, measure("E1-sentry", "useful (rule fires)", n, func() {
		useful.PingN(n)
	}))
	useful.Close()
	return rows
}

// RunE2 compares the integrated architecture against the §4 layered
// baseline. Method events: the sentry path (with subtransaction
// isolation per rule firing) against the wrapper path (no isolation —
// partial rule effects on failure). State changes: the integrated
// system pays per actual change, while the layered system must poll —
// a sweep proportional to the monitored state size, whatever the
// change rate, because "changes of state could not be detected as
// events" in a closed system.
func RunE2(n int) []Row {
	var rows []Row

	integrated := NewFixture(true, eca.Options{})
	integrated.AddNoopRules(1, eca.Immediate)
	r := measure("E2-architecture", "method events, integrated (sentry)", n, func() {
		integrated.PingN(n)
	})
	r.Extra = "per-firing subtransaction isolation"
	rows = append(rows, r)
	integrated.Close()

	lf := NewLayeredFixture()
	lf.Layer.AddRule(&layered.Rule{
		Name: "r", EventKey: SensorPingAfter(),
		Action: func(*layered.RuleCtx) error { return nil },
	})
	ft := lf.Closed.Begin()
	r = measure("E2-architecture", "method events, layered (wrapper)", n, func() {
		for i := 0; i < n; i++ {
			lf.Layer.Invoke(ft, lf.Sensor, "ping", int64(i))
		}
	})
	r.Extra = "no isolation; misses direct calls"
	rows = append(rows, r)
	ft.Commit()
	lf.Close()

	// State-change detection with a growing monitored population.
	// Each iteration updates one object and requires detection; the
	// layered system sweeps everything it tracks.
	for _, tracked := range []int{10, 100, 1000} {
		updates := n / 10

		vc := clock.NewVirtual(Epoch)
		db, _ := oodb.Open(oodb.Options{Clock: vc})
		db.Dictionary().Register(sensorClass(true))
		engine := eca.New(db, eca.Options{})
		engine.AddRule(&eca.Rule{
			Name:       "watch",
			EventKey:   event.StateSpec{Class: "Sensor", Attr: "val"}.Key(),
			ActionMode: eca.Immediate,
			Action:     func(*eca.RuleCtx) error { return nil },
		})
		setup := db.Begin()
		objs := make([]*oodb.Object, tracked)
		for i := range objs {
			objs[i], _ = db.NewObject(setup, "Sensor")
		}
		setup.Commit()
		cfg := fmt.Sprintf("state change, %d monitored objects, integrated", tracked)
		rows = append(rows, measure("E2-architecture", cfg, updates, func() {
			tx := db.Begin()
			for i := 0; i < updates; i++ {
				db.Set(tx, objs[i%tracked], "val", int64(i))
			}
			tx.Commit()
		}))
		engine.Close()
		db.Close()

		lf2 := NewLayeredFixture()
		lf2.Layer.AddRule(&layered.Rule{
			Name: "watch", EventKey: event.StateSpec{Class: "Sensor", Attr: "val"}.Key(),
			Action: func(*layered.RuleCtx) error { return nil },
		})
		ft2 := lf2.Closed.Begin()
		lobjs := make([]*oodb.Object, tracked)
		for i := range lobjs {
			lobjs[i], _ = lf2.Closed.NewObject(ft2, "Sensor")
			lf2.Layer.Track(ft2, lobjs[i])
		}
		cfg = fmt.Sprintf("state change, %d monitored objects, layered poll", tracked)
		r := measure("E2-architecture", cfg, updates, func() {
			for i := 0; i < updates; i++ {
				lf2.Closed.Set(ft2, lobjs[i%tracked], "val", int64(i))
				lf2.Layer.Poll(ft2) // sweep everything to find one change
			}
		})
		r.Extra = fmt.Sprintf("poll-reads=%d", lf2.Layer.PollReads)
		rows = append(rows, r)
		ft2.Commit()
		lf2.Close()
	}
	return rows
}

// RunE3 compares sequential (ring-sequence) and parallel (sibling
// subtransaction) execution of k rules per event, across action costs
// — the measurement the paper planned once nested transactions landed
// (§6.4). The crossover appears as action cost grows.
func RunE3(ruleCounts []int, works []int, events int) []Row {
	var rows []Row
	for _, k := range ruleCounts {
		for _, work := range works {
			for _, strategy := range []eca.ExecStrategy{eca.SequentialExec, eca.ParallelExec} {
				name := "sequential"
				if strategy == eca.ParallelExec {
					name = "parallel"
				}
				f := NewFixture(true, eca.Options{Exec: strategy})
				f.AddBusyRules(k, work)
				cfg := fmt.Sprintf("%d rules × work %d, %s", k, work, name)
				rows = append(rows, measure("E3-rule-exec", cfg, events, func() {
					for i := 0; i < events; i++ {
						f.Ping(int64(i))
					}
				}))
				f.Close()
			}
		}
	}
	return rows
}

// RunE4 compares synchronous and asynchronous event composition: the
// paper requires that "the event composition process should be
// executed asynchronously with normal processing to avoid unnecessary
// delays" (§2). Measured is the application-visible latency of the
// detecting transaction; the time to finish composition afterwards is
// reported alongside.
func RunE4(composites []int, events int) []Row {
	var rows []Row
	for _, k := range composites {
		for _, syncMode := range []bool{false, true} {
			name := "async (REACH)"
			if syncMode {
				name = "sync (inline)"
			}
			f := NewFixture(true, eca.Options{SyncComposition: syncMode, ComposerBuffer: events + 16})
			f.DefineDeepComposites(k, 8)
			cfg := fmt.Sprintf("%d deep composites, %s", k, name)
			row := measure("E4-composition", cfg, events, func() {
				f.PingN(events) // application path only
			})
			drainStart := time.Now()
			f.Engine.DrainComposers()
			row.Extra = fmt.Sprintf("composition drained in %v", time.Since(drainStart).Round(time.Microsecond))
			rows = append(rows, row)
			f.Close()
		}
	}
	return rows
}

// RunE5 measures the immediate-composite stall: the per-event cost of
// admitting immediate rules on composite events (unsafe mode), which
// forces every primitive event to wait for composer acknowledgement —
// the "(N)" of Table 1 — against the REACH design where composite
// rules are deferred.
func RunE5(composites []int, events int) []Row {
	var rows []Row
	for _, k := range composites {
		// REACH design: deferred composite rules, async composition.
		f := NewFixture(true, eca.Options{})
		f.DefineSeqComposites(k, algebra.ScopeTransaction)
		for i := 0; i < k; i++ {
			f.Engine.AddRule(&eca.Rule{
				Name:       fmt.Sprintf("def-%d", i),
				EventKey:   event.CompositeSpec{Name: fmt.Sprintf("pair-%d", i)}.Key(),
				ActionMode: eca.Deferred,
				Action:     func(*eca.RuleCtx) error { return nil },
			})
		}
		cfg := fmt.Sprintf("%d composites, deferred (REACH)", k)
		rows = append(rows, measure("E5-imm-composite", cfg, events, func() {
			f.PingN(events)
		}))
		f.Close()

		// Rejected design: immediate composite rules; every event
		// stalls for the negative acknowledgement.
		g := NewFixture(true, eca.Options{AllowUnsafeImmediateComposite: true})
		g.DefineSeqComposites(k, algebra.ScopeTransaction)
		for i := 0; i < k; i++ {
			g.Engine.AddRule(&eca.Rule{
				Name:       fmt.Sprintf("imm-%d", i),
				EventKey:   event.CompositeSpec{Name: fmt.Sprintf("pair-%d", i)}.Key(),
				ActionMode: eca.Immediate,
				Action:     func(*eca.RuleCtx) error { return nil },
			})
		}
		cfg = fmt.Sprintf("%d composites, immediate (stall)", k)
		rows = append(rows, measure("E5-imm-composite", cfg, events, func() {
			g.PingN(events)
		}))
		g.Close()
	}
	return rows
}

// RunE6 compares the four consumption policies on the paper's §3.4
// stream shape (bursts of initiators followed by terminators),
// reporting both cost and the number of composites each policy
// detects.
func RunE6(events int) []Row {
	var rows []Row
	for _, pol := range []algebra.Policy{algebra.Recent, algebra.Chronicle, algebra.Continuous, algebra.Cumulative} {
		comp := &algebra.Composite{
			Name:   "pair",
			Expr:   algebra.Seq{Exprs: []algebra.Expr{algebra.Prim{Key: "E1"}, algebra.Prim{Key: "E2"}}},
			Policy: pol,
			Scope:  algebra.ScopeGlobal, Validity: time.Hour,
		}
		cp, err := algebra.NewComposer(comp)
		if err != nil {
			panic(err)
		}
		detected := 0
		row := measure("E6-consumption", pol.String(), events, func() {
			seq := uint64(0)
			for i := 0; i < events; i++ {
				seq++
				key := "E1"
				if i%3 == 2 { // two initiators, then a terminator
					key = "E2"
				}
				in := &event.Instance{SpecKey: key, Seq: seq, Txn: 1, Time: Epoch.Add(time.Duration(seq))}
				detected += len(cp.Feed(in))
			}
		})
		row.Extra = fmt.Sprintf("detected=%d pending=%d", detected, cp.Pending())
		rows = append(rows, row)
	}
	return rows
}

// RunE7 demonstrates the life-span rules of §3.3: without them,
// semi-composed events accumulate without bound; with transaction
// life-spans and validity-interval GC the system stays clean.
func RunE7(txns, eventsPer int) []Row {
	var rows []Row

	// Transaction-scoped: flushed at EOT, nothing accumulates.
	f := NewFixture(true, eca.Options{})
	f.DefineSeqComposites(1, algebra.ScopeTransaction)
	row := measure("E7-lifespan", "txn-scoped (flushed at EOT)", txns*eventsPer, func() {
		for t := 0; t < txns; t++ {
			f.PingN(eventsPer) // pings never complete ping→reset pairs
		}
		f.Engine.DrainComposers()
	})
	row.Extra = fmt.Sprintf("semi-composed=%d", f.Engine.SemiComposed())
	rows = append(rows, row)
	f.Close()

	// Global without GC: initiators pile up for the validity window.
	g := NewFixture(true, eca.Options{})
	g.DefineSeqComposites(1, algebra.ScopeGlobal)
	row = measure("E7-lifespan", "global, no GC yet", txns*eventsPer, func() {
		for t := 0; t < txns; t++ {
			g.PingN(eventsPer)
		}
		g.Engine.DrainComposers()
	})
	row.Extra = fmt.Sprintf("semi-composed=%d", g.Engine.SemiComposed())
	rows = append(rows, row)

	// …until the validity interval lapses and GC collects them.
	g.Clock.Advance(2 * time.Hour)
	collected := g.Engine.GCExpired()
	rows = append(rows, Row{
		Experiment: "E7-lifespan",
		Config:     "global, after validity GC",
		Ops:        collected,
		Extra:      fmt.Sprintf("collected=%d semi-composed=%d", collected, g.Engine.SemiComposed()),
	})
	g.Close()
	return rows
}

// RunE8 compares composer topologies (§6.3): many small composers on
// parallel goroutines versus one monolithic composer embedding every
// composite in a single graph.
func RunE8(k, events int) []Row {
	var rows []Row

	many := NewFixture(true, eca.Options{})
	many.DefineSeqComposites(k, algebra.ScopeGlobal)
	rows = append(rows, measure("E8-topology", fmt.Sprintf("%d small composers", k), events, func() {
		many.PingN(events)
		many.Engine.DrainComposers()
	}))
	many.Close()

	// Monolithic: a single composite whose expression is the
	// disjunction of all k pair-sequences — one graph, one goroutine.
	mono := NewFixture(true, eca.Options{})
	subs := make([]algebra.Expr, k)
	for i := range subs {
		subs[i] = algebra.Seq{Exprs: []algebra.Expr{
			algebra.Prim{Key: SensorPingAfter()},
			algebra.Prim{Key: SensorResetAfter()},
		}}
	}
	comp := &algebra.Composite{
		Name:   "monolith",
		Expr:   algebra.Disj{Exprs: subs},
		Policy: algebra.Chronicle,
		Scope:  algebra.ScopeGlobal, Validity: time.Hour,
	}
	if err := mono.Engine.DefineComposite(comp); err != nil {
		panic(err)
	}
	rows = append(rows, measure("E8-topology", fmt.Sprintf("1 monolithic graph (%d branches)", k), events, func() {
		mono.PingN(events)
		mono.Engine.DrainComposers()
	}))
	mono.Close()
	return rows
}

// RunE9 compares the distributed per-manager histories against a
// central log under concurrent event streams (§6.3's bottleneck
// argument).
func RunE9(workers, eventsPer int) []Row {
	var rows []Row
	for _, mode := range []eca.HistoryMode{eca.DistributedHistory, eca.CentralHistory} {
		name := "distributed (REACH)"
		if mode == eca.CentralHistory {
			name = "central log"
		}
		vc := clock.NewVirtual(Epoch)
		db, _ := oodb.Open(oodb.Options{Clock: vc})
		db.Dictionary().Register(sensorClass(true))
		engine := eca.New(db, eca.Options{History: mode})
		// One manager per worker: distinct method events.
		var sensors []*oodb.Object
		setup := db.Begin()
		for w := 0; w < workers; w++ {
			obj, _ := db.NewObject(setup, "Sensor")
			sensors = append(sensors, obj)
		}
		setup.Commit()
		engine.AddRule(&eca.Rule{
			Name: "touch", EventKey: SensorPingAfter(), ActionMode: eca.Immediate,
			Action: func(*eca.RuleCtx) error { return nil },
		})
		rows = append(rows, measure("E9-history", name, workers*eventsPer, func() {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					tx := db.Begin()
					for i := 0; i < eventsPer; i++ {
						db.Invoke(tx, sensors[w], "ping", int64(i))
					}
					tx.Commit()
				}()
			}
			wg.Wait()
		}))
		engine.Close()
		db.Close()
	}
	return rows
}

// RunE10 measures rule dispatch: the REACH design (per-event-type ECA
// managers, the firing set found by one map lookup) against a
// global-rule-list design where every rule hangs off one key and
// filters by condition (§6.4: "minimize the search for the rule that
// is to be fired").
func RunE10(ruleCounts []int, events int) []Row {
	var rows []Row
	for _, n := range ruleCounts {
		// Selective: n rules on n distinct events; the fired event has
		// exactly one rule.
		sel := NewFixture(true, eca.Options{})
		for i := 0; i < n-1; i++ {
			sel.Engine.AddRule(&eca.Rule{
				Name:       fmt.Sprintf("other-%d", i),
				EventKey:   fmt.Sprintf("method:Other%d.m:after", i),
				ActionMode: eca.Immediate,
				Action:     func(*eca.RuleCtx) error { return nil },
			})
		}
		sel.AddNoopRules(1, eca.Immediate)
		rows = append(rows, measure("E10-dispatch", fmt.Sprintf("%d rules, ECA-managers", n), events, func() {
			sel.PingN(events)
		}))
		sel.Close()

		// Scan: all n rules on the same event, n-1 filtered out by
		// condition — the recognize-act-style scan.
		scan := NewFixture(true, eca.Options{})
		for i := 0; i < n-1; i++ {
			scan.Engine.AddRule(&eca.Rule{
				Name:       fmt.Sprintf("filtered-%d", i),
				EventKey:   SensorPingAfter(),
				ActionMode: eca.Immediate,
				Cond:       func(*eca.RuleCtx) (bool, error) { return false, nil },
				Action:     func(*eca.RuleCtx) error { return nil },
			})
		}
		scan.AddNoopRules(1, eca.Immediate)
		rows = append(rows, measure("E10-dispatch", fmt.Sprintf("%d rules, global scan", n), events, func() {
			scan.PingN(events)
		}))
		scan.Close()
	}
	return rows
}

// RunE11 measures nested-transaction overhead: n operations run flat,
// versus each operation in its own committed subtransaction — the
// set-up cost the paper wanted to quantify against parallel gains.
func RunE11(ops int) []Row {
	var rows []Row
	f := NewFixture(false, eca.Options{})
	rows = append(rows, measure("E11-nested", "flat transaction", ops, func() {
		tx := f.DB.Begin()
		for i := 0; i < ops; i++ {
			f.DB.Invoke(tx, f.Sensor, "ping", int64(i))
		}
		tx.Commit()
	}))
	rows = append(rows, measure("E11-nested", "one subtransaction per op", ops, func() {
		tx := f.DB.Begin()
		for i := 0; i < ops; i++ {
			child, _ := tx.BeginChild()
			f.DB.Invoke(child, f.Sensor, "ping", int64(i))
			child.Commit()
		}
		tx.Commit()
	}))
	f.Close()
	return rows
}

// RunE12 measures the storage substrate: insert throughput, the cost
// of forcing the log at commit, recovery time, and buffer-pool
// behaviour.
func RunE12(records int) []Row {
	var rows []Row
	dir, err := os.MkdirTemp("", "reach-bench-storage")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	st, err := storage.Open(dir, storage.Options{})
	if err != nil {
		panic(err)
	}
	payload := make([]byte, 128)
	rows = append(rows, measure("E12-storage", "insert (1 txn, force at commit)", records, func() {
		st.Begin(1)
		for i := 0; i < records; i++ {
			st.Insert(1, payload)
		}
		st.Commit(1)
	}))

	rows = append(rows, measure("E12-storage", "commit per record (fsync each)", records/10, func() {
		for i := 0; i < records/10; i++ {
			tid := uint64(100 + i)
			st.Begin(tid)
			st.Insert(tid, payload)
			st.Commit(tid)
		}
	}))
	stats := st.Stats()
	rows[len(rows)-1].Extra = fmt.Sprintf("wal-syncs=%d", stats.WALSyncs)

	// Crash recovery: commit more records, then abandon the store
	// without closing it (a simulated crash — dirty pages were never
	// flushed; the reopened store must redo from the log).
	st.Begin(2)
	for i := 0; i < records; i++ {
		st.Insert(2, payload)
	}
	st.Commit(2)
	start := time.Now()
	st2, err := storage.Open(dir, storage.Options{})
	if err != nil {
		panic(err)
	}
	elapsed := time.Since(start)
	live := 0
	st2.Scan(func(storage.RID, []byte) { live++ })
	rows = append(rows, Row{
		Experiment: "E12-storage",
		Config:     "recovery (redo replay)",
		Ops:        live,
		NsPerOp:    float64(elapsed.Nanoseconds()) / float64(max(live, 1)),
		Extra:      fmt.Sprintf("recovered-records=%d in %v", live, elapsed),
	})
	st2.Close()
	return rows
}

// RunE13 measures the contended raise→dispatch→commit path at g
// concurrent goroutines — the convoys this repo's group-commit WAL,
// striped lock table, and sharded histories exist to dissolve. Each
// pair of configs is a within-run ablation: the same workload with
// group commit on versus every committer forcing its own fsync.
func RunE13(g, commits int) []Row {
	var rows []Row
	per := commits / g
	if per < 1 {
		per = 1
	}

	// Contended storage commits: g committers, one record each per
	// transaction, durable at commit.
	contended := func(disable bool) Row {
		dir, err := os.MkdirTemp("", "reach-bench-e13")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dir)
		st, err := storage.Open(dir, storage.Options{DisableGroupCommit: disable})
		if err != nil {
			panic(err)
		}
		defer st.Close()
		payload := make([]byte, 128)
		label := "group commit"
		if disable {
			label = "fsync per commit (ablated)"
		}
		row := measure("E13-contention", fmt.Sprintf("contended commit, %d goroutines, %s", g, label), g*per, func() {
			var wg sync.WaitGroup
			for w := 0; w < g; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						tid := uint64(1 + w*per + i)
						st.Begin(tid)
						st.Insert(tid, payload)
						st.Commit(tid)
					}
				}()
			}
			wg.Wait()
		})
		row.Extra = fmt.Sprintf("wal-syncs=%d", st.Stats().WALSyncs)
		return row
	}
	rows = append(rows, contended(false), contended(true))

	// Figure-2 flow under concurrency: the full raise→dispatch→commit
	// round trip — monitored method events through the sentry, an
	// immediate rule, a deferred rule drained at EOT, and a durable
	// commit — with one sensor per goroutine so the lock table sees
	// disjoint hot resources across stripes.
	flow := func(disable bool) Row {
		dir, err := os.MkdirTemp("", "reach-bench-e13-flow")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dir)
		vc := clock.NewVirtual(Epoch)
		db, err := oodb.Open(oodb.Options{
			Dir: dir, Clock: vc,
			Storage: storage.Options{DisableGroupCommit: disable},
		})
		if err != nil {
			panic(err)
		}
		if err := db.Dictionary().Register(sensorClass(true)); err != nil {
			panic(err)
		}
		engine := eca.New(db, eca.Options{})
		defer db.Close()
		defer engine.Close()
		if err := engine.AddRule(&eca.Rule{
			Name: "flow-imm", EventKey: SensorPingAfter(), ActionMode: eca.Immediate,
			Action: func(*eca.RuleCtx) error { return nil },
		}); err != nil {
			panic(err)
		}
		if err := engine.AddRule(&eca.Rule{
			Name: "flow-def", EventKey: SensorPingAfter(), ActionMode: eca.Deferred,
			Action: func(*eca.RuleCtx) error { return nil },
		}); err != nil {
			panic(err)
		}
		sensors := make([]*oodb.Object, g)
		setup := db.Begin()
		for i := range sensors {
			obj, err := db.NewObject(setup, "Sensor")
			if err != nil {
				panic(err)
			}
			if err := db.Persist(setup, obj); err != nil {
				panic(err)
			}
			sensors[i] = obj
		}
		if err := setup.Commit(); err != nil {
			panic(err)
		}
		label := "group commit"
		if disable {
			label = "fsync per commit (ablated)"
		}
		row := measure("E13-contention", fmt.Sprintf("figure-2 flow, %d goroutines, %s", g, label), g*per, func() {
			var wg sync.WaitGroup
			for w := 0; w < g; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						tx := db.Begin()
						if _, err := db.Invoke(tx, sensors[w], "ping", int64(i)); err != nil {
							tx.Abort()
							continue
						}
						tx.Commit()
					}
				}()
			}
			wg.Wait()
		})
		row.Extra = fmt.Sprintf("wal-syncs=%d", db.StorageStats().WALSyncs)
		return row
	}
	rows = append(rows, flow(false), flow(true))
	return rows
}

// RunE14 measures goodput and tail latency under offered load at 1x,
// 2x, and 4x the detached-pool capacity, with the overload governor
// on and ablated off. Each client drives admitted transactions whose
// monitored method triggers one rule per coupling mode — the detached
// one slow enough that the pool, not the lock table, is the
// bottleneck. With the governor on, excess load is refused at
// admission or shed from the detached pool and goodput holds near
// capacity; ablated off, raisers park on the full pool queue while
// holding their write locks and the system wedges until drained.
//
// Rows report goodput, refusals, sheds, and commit p99 in Extra and
// carry NsPerOp 0: an overload experiment measures refusal policy
// under saturation, not a per-op time the trajectory gate should pin.
func RunE14(baseClients int, window time.Duration) []Row {
	run := func(disabled bool, mult int) Row {
		sys, err := core.Open(core.Options{
			Governor: governor.Options{
				Disabled:      disabled,
				Hysteresis:    50 * time.Millisecond,
				AdmitDeadline: 10 * time.Millisecond,
				Interval:      2 * time.Millisecond,
			},
			Engine: eca.Options{Workers: 2, Queue: 16},
		})
		if err != nil {
			panic(err)
		}
		defer sys.Close()
		tank := oodb.NewClass("Tank", oodb.Attr{Name: "level", Type: oodb.TInt})
		tank.Monitored = true
		var fills atomic.Int64
		tank.Method("fill", func(ctx *oodb.Ctx, self *oodb.Object, args []any) (any, error) {
			return nil, ctx.Set(self, "level", fills.Add(1))
		})
		tank.Method("noop", func(*oodb.Ctx, *oodb.Object, []any) (any, error) {
			return nil, nil
		})
		tank.Method("slow", func(*oodb.Ctx, *oodb.Object, []any) (any, error) {
			time.Sleep(time.Millisecond)
			return nil, nil
		})
		if err := sys.RegisterClass(tank); err != nil {
			panic(err)
		}
		if _, err := sys.LoadRules(`
rule E14Imm { prio 5; decl Tank *t; event after t->fill(); action imm t->noop(); };
rule E14Def { prio 4; decl Tank *t; event after t->fill(); action deferred t->noop(); };
rule E14Det { prio 3; decl Tank *t; event after t->fill(); action detached t->slow(); };
`); err != nil {
			panic(err)
		}
		clients := baseClients * mult
		// The detached pool absorbs workers/slow() fills per second;
		// pace each client so the offered fill rate is mult times
		// that. The loop is closed (pacing starts after the previous
		// attempt returns), so admission-deadline waits under overload
		// throttle the offered load the way a real client's would.
		capacity := 2 * int(time.Second/time.Millisecond)
		pace := time.Duration(clients) * time.Second / time.Duration(mult*capacity)
		tanks := make([]*oodb.Object, clients)
		setup := sys.Begin()
		for i := range tanks {
			obj, err := sys.DB.NewObject(setup, "Tank")
			if err != nil {
				panic(err)
			}
			tanks[i] = obj
		}
		if err := setup.Commit(); err != nil {
			panic(err)
		}

		var committed, refused, attempts atomic.Int64
		lats := make([][]time.Duration, clients)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < clients; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					attempts.Add(1)
					t0 := time.Now()
					tx, err := sys.BeginTxn()
					if err != nil {
						// ErrOverloaded (admission refused) or
						// ErrShutdown once the drain below begins.
						refused.Add(1)
						continue
					}
					if _, err := sys.DB.Invoke(tx, tanks[w], "fill"); err != nil {
						// Detached spawn refused mid-drain; abort and
						// let the stop check above end the loop.
						_ = tx.Abort()
						continue
					}
					if err := tx.Commit(); err != nil {
						continue
					}
					committed.Add(1)
					lats[w] = append(lats[w], time.Since(t0))
					time.Sleep(pace)
				}
			}()
		}
		time.Sleep(window)
		close(stop)
		elapsed := time.Since(start)
		// Drain before joining: with the governor ablated, clients can
		// be parked on the full detached queue while holding their
		// write locks — the wedge this experiment exists to show — and
		// only the drain signal unparks them.
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_ = sys.Drain(dctx)
		cancel()
		wg.Wait()

		var all []time.Duration
		for _, l := range lats {
			all = append(all, l...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		p99 := time.Duration(0)
		if len(all) > 0 {
			p99 = all[len(all)*99/100]
		}
		sheds := sys.Governor.Sheds()
		label := "governor on"
		if disabled {
			label = "governor off (ablated)"
		}
		row := Row{
			Experiment: "E14-overload",
			Config:     fmt.Sprintf("offered %dx capacity, %d clients, %s", mult, clients, label),
			Ops:        int(attempts.Load()),
		}
		row.Extra = fmt.Sprintf(
			"goodput=%d/s p99=%s committed=%d refused=%d sheds=detached:%d,deferred:%d,writer:%d",
			int64(float64(committed.Load())/elapsed.Seconds()), p99.Round(10*time.Microsecond),
			committed.Load(), refused.Load(), sheds[0], sheds[1], sheds[2])
		return row
	}
	var rows []Row
	for _, disabled := range []bool{false, true} {
		for _, mult := range []int{1, 2, 4} {
			rows = append(rows, run(disabled, mult))
		}
	}
	return rows
}
