package clock

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

var epoch = time.Date(1995, 3, 6, 0, 0, 0, 0, time.UTC) // ICDE'95 week

func TestVirtualNowAdvances(t *testing.T) {
	v := NewVirtual(epoch)
	if got := v.Now(); !got.Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", got, epoch)
	}
	v.Advance(90 * time.Second)
	if got, want := v.Now(), epoch.Add(90*time.Second); !got.Equal(want) {
		t.Fatalf("Now() after Advance = %v, want %v", got, want)
	}
}

func TestVirtualAdvanceToBackwardIsNoop(t *testing.T) {
	v := NewVirtual(epoch)
	v.Advance(time.Hour)
	v.AdvanceTo(epoch) // in the past
	if got, want := v.Now(), epoch.Add(time.Hour); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestVirtualAfterFuncFiresInOrder(t *testing.T) {
	v := NewVirtual(epoch)
	var mu sync.Mutex
	var order []int
	v.AfterFunc(3*time.Second, func() { mu.Lock(); order = append(order, 3); mu.Unlock() })
	v.AfterFunc(1*time.Second, func() { mu.Lock(); order = append(order, 1); mu.Unlock() })
	v.AfterFunc(2*time.Second, func() { mu.Lock(); order = append(order, 2); mu.Unlock() })
	v.Advance(5 * time.Second)
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", order)
	}
}

func TestVirtualAfterFuncSameInstantFIFO(t *testing.T) {
	v := NewVirtual(epoch)
	var mu sync.Mutex
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		v.AfterFunc(time.Second, func() { mu.Lock(); order = append(order, i); mu.Unlock() })
	}
	v.Advance(time.Second)
	mu.Lock()
	defer mu.Unlock()
	for i, got := range order {
		if got != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
}

func TestVirtualTimerStop(t *testing.T) {
	v := NewVirtual(epoch)
	var fired atomic.Bool
	tm := v.AfterFunc(time.Second, func() { fired.Store(true) })
	if !tm.Stop() {
		t.Fatal("first Stop() = false, want true")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true, want false")
	}
	v.Advance(2 * time.Second)
	if fired.Load() {
		t.Fatal("stopped timer fired")
	}
}

func TestVirtualStopAfterFire(t *testing.T) {
	v := NewVirtual(epoch)
	tm := v.AfterFunc(time.Second, func() {})
	v.Advance(2 * time.Second)
	if tm.Stop() {
		t.Fatal("Stop() after fire = true, want false")
	}
}

func TestVirtualAfterChannel(t *testing.T) {
	v := NewVirtual(epoch)
	ch := v.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired before Advance")
	default:
	}
	v.Advance(10 * time.Second)
	select {
	case at := <-ch:
		if !at.Equal(epoch.Add(10 * time.Second)) {
			t.Fatalf("After delivered %v, want %v", at, epoch.Add(10*time.Second))
		}
	case <-time.After(time.Second):
		t.Fatal("After did not fire after Advance")
	}
}

func TestVirtualPendingTimers(t *testing.T) {
	v := NewVirtual(epoch)
	t1 := v.AfterFunc(time.Second, func() {})
	v.AfterFunc(2*time.Second, func() {})
	if got := v.PendingTimers(); got != 2 {
		t.Fatalf("PendingTimers() = %d, want 2", got)
	}
	t1.Stop()
	if got := v.PendingTimers(); got != 1 {
		t.Fatalf("PendingTimers() after Stop = %d, want 1", got)
	}
	v.Advance(3 * time.Second)
	if got := v.PendingTimers(); got != 0 {
		t.Fatalf("PendingTimers() after Advance = %d, want 0", got)
	}
}

func TestVirtualTimerFiresAtItsInstant(t *testing.T) {
	v := NewVirtual(epoch)
	var at time.Time
	v.AfterFunc(7*time.Second, func() { at = v.Now() })
	v.Advance(time.Minute)
	if want := epoch.Add(7 * time.Second); !at.Equal(want) {
		t.Fatalf("callback saw Now()=%v, want %v", at, want)
	}
}

func TestVirtualNestedSchedule(t *testing.T) {
	v := NewVirtual(epoch)
	var fired []time.Time
	v.AfterFunc(time.Second, func() {
		fired = append(fired, v.Now())
		v.AfterFunc(time.Second, func() {
			fired = append(fired, v.Now())
		})
	})
	v.Advance(5 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired %d times, want 2 (nested AfterFunc must run in same Advance)", len(fired))
	}
	if want := epoch.Add(2 * time.Second); !fired[1].Equal(want) {
		t.Fatalf("nested timer fired at %v, want %v", fired[1], want)
	}
}

func TestRealClockBasics(t *testing.T) {
	r := NewReal()
	before := time.Now()
	got := r.Now()
	if got.Before(before.Add(-time.Minute)) {
		t.Fatalf("Real.Now() = %v, far before wall clock", got)
	}
	var fired atomic.Bool
	tm := r.AfterFunc(time.Millisecond, func() { fired.Store(true) })
	defer tm.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for !fired.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !fired.Load() {
		t.Fatal("Real.AfterFunc never fired")
	}
}

func TestRealAfterFuncStop(t *testing.T) {
	r := NewReal()
	var fired atomic.Bool
	tm := r.AfterFunc(time.Hour, func() { fired.Store(true) })
	if !tm.Stop() {
		t.Fatal("Stop() = false, want true")
	}
	if fired.Load() {
		t.Fatal("stopped real timer fired")
	}
}

// Property: for any sequence of positive advances, Now is the sum of
// advances and never moves backwards.
func TestVirtualMonotonicProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		v := NewVirtual(epoch)
		var total time.Duration
		prev := v.Now()
		for _, s := range steps {
			d := time.Duration(s) * time.Millisecond
			v.Advance(d)
			total += d
			now := v.Now()
			if now.Before(prev) {
				return false
			}
			prev = now
		}
		return v.Now().Equal(epoch.Add(total))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every scheduled timer fires exactly once, regardless of
// how the advance is split into steps.
func TestVirtualAllTimersFireOnceProperty(t *testing.T) {
	f := func(delays []uint8, split uint8) bool {
		v := NewVirtual(epoch)
		var fired atomic.Int64
		var max time.Duration
		for _, d := range delays {
			dd := time.Duration(d) * time.Millisecond
			if dd > max {
				max = dd
			}
			v.AfterFunc(dd, func() { fired.Add(1) })
		}
		steps := int(split%7) + 1
		for i := 0; i < steps; i++ {
			v.Advance(max/time.Duration(steps) + time.Millisecond)
		}
		return fired.Load() == int64(len(delays))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
