// Package clock provides the time source used by REACH for temporal
// events, milestones, and validity intervals.
//
// The engine never calls time.Now directly; it is handed a Clock. A
// Real clock delegates to the runtime, while Virtual is a fully
// deterministic clock driven by Advance, which makes temporal-event
// tests and benchmarks reproducible.
package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the time source for the REACH engine.
type Clock interface {
	// Now reports the current time.
	Now() time.Time
	// After returns a channel that delivers the clock's time once that
	// time is at or past d from now.
	After(d time.Duration) <-chan time.Time
	// AfterFunc schedules f to run once the clock passes d from now.
	// The returned Timer can cancel the call.
	AfterFunc(d time.Duration, f func()) *Timer
}

// Timer is a cancellable pending call scheduled by AfterFunc.
type Timer struct {
	mu      sync.Mutex
	stopped bool
	stop    func()
}

// Stop cancels the timer. It reports whether the call was prevented
// from running (false when it already ran or was stopped before).
func (t *Timer) Stop() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped {
		return false
	}
	t.stopped = true
	if t.stop != nil {
		t.stop()
	}
	return true
}

func (t *Timer) markFired() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped {
		return false
	}
	t.stopped = true
	return true
}

// Real is a Clock backed by the Go runtime.
type Real struct{}

// NewReal returns a Clock backed by the runtime.
func NewReal() *Real { return &Real{} }

// Now implements Clock.
func (*Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (*Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// AfterFunc implements Clock.
func (*Real) AfterFunc(d time.Duration, f func()) *Timer {
	t := &Timer{}
	rt := time.AfterFunc(d, func() {
		if t.markFired() {
			f()
		}
	})
	t.stop = func() { rt.Stop() }
	return t
}

// Virtual is a deterministic Clock advanced explicitly by tests and
// benchmarks. The zero value is not usable; call NewVirtual.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	pending pendingQueue
	seq     int64
}

// NewVirtual returns a Virtual clock starting at the given instant.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// After implements Clock.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	v.AfterFunc(d, func() {
		v.mu.Lock()
		now := v.now
		v.mu.Unlock()
		ch <- now
	})
	return ch
}

// AfterFunc implements Clock.
func (v *Virtual) AfterFunc(d time.Duration, f func()) *Timer {
	v.mu.Lock()
	defer v.mu.Unlock()
	t := &Timer{}
	v.seq++
	p := &pendingCall{at: v.now.Add(d), seq: v.seq, f: f, timer: t}
	heap.Push(&v.pending, p)
	// Virtual timers are removed lazily: Stop marks the Timer and the
	// queue skips fired/stopped entries when the clock advances.
	return t
}

// Advance moves the clock forward by d, running every call scheduled
// at or before the new time in schedule order.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	target := v.now.Add(d)
	for {
		if v.pending.Len() == 0 || v.pending[0].at.After(target) {
			break
		}
		p := heap.Pop(&v.pending).(*pendingCall)
		if p.at.After(v.now) {
			v.now = p.at
		}
		v.mu.Unlock()
		if p.timer.markFired() {
			p.f()
		}
		v.mu.Lock()
	}
	if target.After(v.now) {
		v.now = target
	}
	v.mu.Unlock()
}

// AdvanceTo moves the clock forward to the given instant; it is a
// no-op when t is not after the current time.
func (v *Virtual) AdvanceTo(t time.Time) {
	now := v.Now()
	if t.After(now) {
		v.Advance(t.Sub(now))
	}
}

// PendingTimers reports the number of scheduled, not-yet-fired calls.
func (v *Virtual) PendingTimers() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := 0
	for _, p := range v.pending {
		p.timer.mu.Lock()
		if !p.timer.stopped {
			n++
		}
		p.timer.mu.Unlock()
	}
	return n
}

type pendingCall struct {
	at    time.Time
	seq   int64
	f     func()
	timer *Timer
}

type pendingQueue []*pendingCall

func (q pendingQueue) Len() int { return len(q) }

func (q pendingQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}

func (q pendingQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *pendingQueue) Push(x any) { *q = append(*q, x.(*pendingCall)) }

func (q *pendingQueue) Pop() any {
	old := *q
	n := len(old)
	p := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return p
}
