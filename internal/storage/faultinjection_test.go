package storage

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/fault"
)

// TestCommitInDoubtPoisonsStore drives the in-doubt commit protocol:
// the commit record is appended but the fsync fails, so Commit must
// return ErrInDoubt, the store must refuse all further mutation and
// checkpointing, and Close must neither checkpoint nor leak handles.
// Reopening replays the log that actually reached stable storage and
// resolves the doubt.
func TestCommitInDoubtPoisonsStore(t *testing.T) {
	defer fault.DisarmAll()
	fs := fault.NewShadowFS()
	s, err := Open("db", Options{FS: fs, BufferPoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Begin(1); err != nil {
		t.Fatal(err)
	}
	rid, err := s.Insert(1, []byte("survivor"))
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.Arm(fault.SiteWALSync, "error-once"); err != nil {
		t.Fatal(err)
	}
	err = s.Commit(1)
	if !errors.Is(err, ErrInDoubt) {
		t.Fatalf("Commit with failing fsync = %v, want ErrInDoubt", err)
	}
	// The store is poisoned: every mutating entry point fails the same way.
	if err := s.Begin(2); !errors.Is(err, ErrInDoubt) {
		t.Fatalf("Begin on poisoned store = %v, want ErrInDoubt", err)
	}
	if _, err := s.Insert(2, []byte("x")); !errors.Is(err, ErrInDoubt) {
		t.Fatalf("Insert on poisoned store = %v, want ErrInDoubt", err)
	}
	if err := s.Checkpoint(); !errors.Is(err, ErrInDoubt) {
		t.Fatalf("Checkpoint on poisoned store = %v, want ErrInDoubt", err)
	}
	// Reads still work: the doubt is about durability, not the cache.
	if got, err := s.Get(rid); err != nil || string(got) != "survivor" {
		t.Fatalf("Get on poisoned store = %q, %v", got, err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close on poisoned store: %v", err)
	}
	if n := fs.OpenHandles(); n != 0 {
		t.Fatalf("%d file handles leaked by Close on a poisoned store", n)
	}
	// Close's final WAL flush succeeded (the failpoint was one-shot), so
	// the late force resolved the in-doubt transaction to committed.
	s2, err := Open("db", Options{FS: fs, BufferPoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	found := 0
	if err := s2.Scan(func(_ RID, data []byte) {
		if string(data) == "survivor" {
			found++
		}
	}); err != nil {
		t.Fatal(err)
	}
	if found != 1 {
		t.Fatalf("after reopen found %d copies of the committed record, want 1", found)
	}
}

// TestCloseClosesHandlesWhenCheckpointFails is the fd-leak
// regression: Close used to return the checkpoint error without
// closing the WAL and pager handles. The shadow filesystem counts
// handles, so the leak is directly observable.
func TestCloseClosesHandlesWhenCheckpointFails(t *testing.T) {
	defer fault.DisarmAll()
	fs := fault.NewShadowFS()
	s, err := Open("db", Options{FS: fs, BufferPoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Begin(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(1, []byte("keep")); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(1); err != nil {
		t.Fatal(err)
	}
	if err := fault.Arm(fault.SitePagerSync, "error-once"); err != nil {
		t.Fatal(err)
	}
	err = s.Close()
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Close with failing checkpoint = %v, want the injected sync error", err)
	}
	if n := fs.OpenHandles(); n != 0 {
		t.Fatalf("%d file handles leaked by Close when Checkpoint failed", n)
	}
	// The checkpoint failed before the WAL was truncated, so recovery
	// still has the full log and loses nothing.
	s2, err := Open("db", Options{FS: fs, BufferPoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	found := 0
	if err := s2.Scan(func(_ RID, data []byte) {
		if string(data) == "keep" {
			found++
		}
	}); err != nil {
		t.Fatal(err)
	}
	if found != 1 {
		t.Fatalf("after failed-checkpoint Close found %d copies, want 1", found)
	}
}

// TestCloseWithActiveTxnSyncsAndCloses pins the other half of the
// Close contract: with a transaction still in flight Close must not
// return ErrTxnActive (the old race made that possible even when the
// caller had committed everything), must force the log, and must
// close both handles.
func TestCloseWithActiveTxnSyncsAndCloses(t *testing.T) {
	fs := fault.NewShadowFS()
	s, err := Open("db", Options{FS: fs, BufferPoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Begin(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(1, []byte("uncommitted")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close with active txn = %v, want nil (sync, no checkpoint)", err)
	}
	if n := fs.OpenHandles(); n != 0 {
		t.Fatalf("%d file handles leaked by Close with an active transaction", n)
	}
	s2, err := Open("db", Options{FS: fs, BufferPoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.Scan(func(_ RID, data []byte) {
		t.Fatalf("uncommitted record %q survived Close + recovery", data)
	}); err != nil {
		t.Fatal(err)
	}
}

// TestCloseConcurrentWithMutators is the race smoke test for the
// single-critical-section Close: transactions beginning and committing
// concurrently with Close must never produce a spurious ErrTxnActive,
// a panic, or (under -race) a data race.
func TestCloseConcurrentWithMutators(t *testing.T) {
	for round := 0; round < 8; round++ {
		s, err := Open(t.TempDir(), Options{BufferPoolPages: 8})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for i := 0; ; i++ {
					txn := uint64(1 + g*1000 + i)
					if err := s.Begin(txn); err != nil {
						return
					}
					if _, err := s.Insert(txn, []byte("race")); err != nil {
						return
					}
					if err := s.Commit(txn); err != nil {
						return
					}
				}
			}(g)
		}
		close(start)
		if err := s.Close(); errors.Is(err, ErrTxnActive) {
			t.Fatalf("round %d: Close returned ErrTxnActive; the close decision raced the mutators", round)
		}
		wg.Wait()
	}
}

// TestEvictionFailpointSurfaces checks the buffer-pool eviction site:
// with a tiny pool and an armed evict failpoint, filling the pool must
// surface the injected error instead of silently losing the dirty page.
func TestEvictionFailpointSurfaces(t *testing.T) {
	defer fault.DisarmAll()
	fs := fault.NewShadowFS()
	s, err := Open("db", Options{FS: fs, BufferPoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.Arm(fault.SiteBufferEvict, "error"); err != nil {
		t.Fatal(err)
	}
	// Each transaction dirties fresh pages and commits, clearing the
	// no-steal protection but leaving the frames dirty; once the pool
	// is over capacity the next insert must evict one of them.
	payload := make([]byte, 3000) // ~2 records per page; 4 frames fill fast
	var evictErr error
	for txn := uint64(1); txn <= 32 && evictErr == nil; txn++ {
		if err := s.Begin(txn); err != nil {
			evictErr = err
			break
		}
		for i := 0; i < 2; i++ {
			if _, err := s.Insert(txn, payload); err != nil {
				evictErr = err
				break
			}
		}
		if evictErr == nil {
			if err := s.Commit(txn); err != nil {
				evictErr = err
			}
		}
	}
	if !errors.Is(evictErr, fault.ErrInjected) {
		t.Fatalf("filling a 4-frame pool under an armed evict failpoint = %v, want the injected error", evictErr)
	}
	fault.DisarmAll()
	_ = s.Close() // the pool still holds the dirty page; Close flushes it normally
	if n := fs.OpenHandles(); n != 0 {
		t.Fatalf("%d file handles leaked", n)
	}
}

// TestPagerReadFailpoint checks the read site end to end: an armed
// pager.read policy must surface through the buffer pool to Get.
func TestPagerReadFailpoint(t *testing.T) {
	defer fault.DisarmAll()
	fs := fault.NewShadowFS()
	s0, err := Open("db", Options{FS: fs, BufferPoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s0.Begin(1); err != nil {
		t.Fatal(err)
	}
	rid, err := s0.Insert(1, []byte("cached"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s0.Commit(1); err != nil {
		t.Fatal(err)
	}
	if err := s0.Close(); err != nil {
		t.Fatal(err)
	}
	// A fresh store has a cold buffer pool, so the Get must hit the pager.
	s, err := Open("db", Options{FS: fs, BufferPoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := fault.Arm(fault.SitePagerRead, "error-once"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(rid); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Get with armed pager.read = %v, want the injected error", err)
	}
	// One-shot: the retry succeeds.
	if got, err := s.Get(rid); err != nil || string(got) != "cached" {
		t.Fatalf("Get after failpoint disarmed = %q, %v", got, err)
	}
}
