package storage

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
)

// slowSyncFS models a disk whose fsync has real latency, so committers
// overlap the leader's round instead of racing through a free fsync —
// on a test tmpfs the sync is too fast for batches to ever form.
type slowSyncFS struct {
	fault.FS
	delay time.Duration
}

func (s slowSyncFS) OpenFile(path string) (fault.File, error) {
	f, err := s.FS.OpenFile(path)
	if err != nil {
		return nil, err
	}
	return slowSyncFile{f, s.delay}, nil
}

type slowSyncFile struct {
	fault.File
	delay time.Duration
}

func (f slowSyncFile) Sync() error {
	time.Sleep(f.delay)
	return f.File.Sync()
}

// TestGroupCommitSubLinearFsyncs releases N committers at once and
// asserts the WAL issued far fewer than N fsyncs: followers that
// arrive while the leader's fsync is in flight share its (or the next
// round's) barrier instead of forcing their own.
func TestGroupCommitSubLinearFsyncs(t *testing.T) {
	s, _ := openTestStore(t, Options{FS: slowSyncFS{fault.OS{}, 2 * time.Millisecond}})
	defer s.Close()
	const n = 64
	base := s.Stats().WALSyncs
	start := make(chan struct{})
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		txn := uint64(i + 1)
		if err := s.Begin(txn); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Insert(txn, []byte(fmt.Sprintf("r%03d", i))); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			errs[i] = s.Commit(txn)
		}()
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	syncs := s.Stats().WALSyncs - base
	if syncs == 0 {
		t.Fatal("no fsyncs recorded for durable commits")
	}
	if syncs > n/2 {
		t.Fatalf("WAL syncs = %d for %d concurrent commits; group commit should batch (want <= %d)", syncs, n, n/2)
	}
	t.Logf("%d concurrent commits -> %d fsyncs", n, syncs)
}

// TestAbortNoFsyncWhenAsync pins the bugfix: with SyncOnCommit off,
// an abort-heavy workload must not force the WAL at all — the abort
// path used to fsync unconditionally.
func TestAbortNoFsyncWhenAsync(t *testing.T) {
	s, _ := openTestStore(t, Options{SyncOnCommit: Bool(false)})
	defer s.Close()
	base := s.Stats().WALSyncs
	for i := 0; i < 20; i++ {
		txn := uint64(i + 1)
		if err := s.Begin(txn); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Insert(txn, []byte("doomed")); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Abort(txn); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().WALSyncs - base; got != 0 {
		t.Fatalf("abort-heavy workload issued %d fsyncs with SyncOnCommit=false, want 0", got)
	}
}

// TestAbortStillSyncsWhenSyncOnCommit is the counterpart guard: with
// durable commits on, an abort that wrote CLRs must still be forced so
// recovery sees the compensation records.
func TestAbortStillSyncsWhenSyncOnCommit(t *testing.T) {
	s, _ := openTestStore(t, Options{SyncOnCommit: Bool(true)})
	defer s.Close()
	base := s.Stats().WALSyncs
	if err := s.Begin(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(1, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Abort(1); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().WALSyncs - base; got == 0 {
		t.Fatal("abort with SyncOnCommit=true issued no fsync")
	}
}
