package storage

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"

	"repro/internal/fault"
	"repro/internal/obs"
)

// Options configure a Store.
type Options struct {
	// BufferPoolPages is the nominal buffer-pool capacity in pages.
	// Zero selects a default of 256 pages (2 MiB).
	BufferPoolPages int
	// SyncOnCommit forces the WAL to stable storage on every commit.
	// It defaults to true; benchmarks disable it to isolate fsync cost.
	SyncOnCommit *bool
	// Metrics, when set, binds the store's counters (buffer hits and
	// misses, WAL syncs, WAL append latency) into a shared registry.
	Metrics *obs.Registry
	// FS is the filesystem the store's data file and write-ahead log
	// are opened through. Nil selects the real filesystem; the
	// crash-consistency harness substitutes a fault.ShadowFS.
	FS fault.FS
	// DisableGroupCommit makes every committer force its own fsync
	// instead of batching behind a group-commit leader. It exists as
	// the ablation switch for the contention experiments (E13); leave
	// it false everywhere else.
	DisableGroupCommit bool
}

func (o Options) withDefaults() Options {
	if o.BufferPoolPages == 0 {
		o.BufferPoolPages = 256
	}
	if o.SyncOnCommit == nil {
		t := true
		o.SyncOnCommit = &t
	}
	return o
}

// Bool is a convenience for building Options literals.
func Bool(v bool) *bool { return &v }

// Store is a durable record store: uninterpreted byte records addressed
// by RID, with transactional insert/update/delete under write-ahead
// logging (no-steal, no-force) and redo-based crash recovery.
//
// The Store does not assign transaction identifiers; the transaction
// manager above passes them in. Concurrency control is likewise the
// caller's job (the lock manager serializes conflicting object
// access); the Store only guarantees its own internal consistency.
type Store struct {
	pager *Pager
	pool  *BufferPool
	wal   *WAL
	opts  Options

	mu         sync.Mutex
	active     map[uint64]*txnState
	insertHint PageID // last page that accepted an insert
	// poison is set when a commit's durability is in doubt: the commit
	// record was appended but forcing it to stable storage failed, so
	// neither outcome can be asserted. A poisoned store refuses all
	// further mutation and checkpointing; only crash recovery on the
	// next Open, which replays what actually reached the disk, can
	// resolve the transaction's fate.
	poison error
}

type txnState struct {
	ops   []undoOp
	pages map[PageID]bool
}

type undoOp struct {
	kind   LogKind
	rid    RID
	before []byte
}

// Errors returned by Store operations.
var (
	ErrTxnActive   = errors.New("storage: transactions still active")
	ErrUnknownTxn  = errors.New("storage: unknown transaction")
	ErrStoreClosed = errors.New("storage: store closed")
	// ErrInDoubt is returned by Commit when the commit record could
	// not be forced to stable storage: the transaction may or may not
	// be durable, and every later mutating operation fails with the
	// same error until the store is reopened and recovery resolves
	// the outcome from the log that actually hit the disk.
	ErrInDoubt = errors.New("storage: commit outcome in doubt")
)

// Open opens (creating if necessary) the store in dir, running crash
// recovery against the write-ahead log before returning.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	fs := opts.FS
	if fs == nil {
		fs = fault.OS{}
	}
	pager, err := OpenPagerFS(fs, filepath.Join(dir, "data.db"))
	if err != nil {
		return nil, err
	}
	wal, err := OpenWALFS(fs, filepath.Join(dir, "wal.log"))
	if err != nil {
		_ = pager.Close() // opening the WAL failed; the close is best-effort cleanup
		return nil, err
	}
	s := &Store{
		pager:      pager,
		pool:       NewBufferPool(pager, opts.BufferPoolPages),
		wal:        wal,
		opts:       opts,
		active:     make(map[uint64]*txnState),
		insertHint: InvalidPageID,
	}
	if opts.Metrics != nil {
		s.pool.Instrument(opts.Metrics)
		wal.Instrument(opts.Metrics)
	}
	if err := s.recover(); err != nil {
		_ = wal.Close()   // recovery failed; the closes are best-effort cleanup
		_ = pager.Close() // recovery failed; the closes are best-effort cleanup
		return nil, err
	}
	return s, nil
}

// Begin registers a storage-level transaction. It is idempotent.
// Transaction id 0 is reserved for system records.
func (s *Store) Begin(txn uint64) error {
	if txn == sysTxn {
		return fmt.Errorf("storage: transaction id %d is reserved", sysTxn)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.poison != nil {
		return s.poison
	}
	if _, ok := s.active[txn]; ok {
		return nil
	}
	s.active[txn] = &txnState{pages: make(map[PageID]bool)}
	if _, err := s.wal.Append(&LogRecord{Txn: txn, Kind: LogBegin, RID: InvalidRID}); err != nil {
		return err
	}
	return nil
}

func (s *Store) txnState(txn uint64) (*txnState, error) {
	if s.poison != nil {
		return nil, s.poison
	}
	st, ok := s.active[txn]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownTxn, txn)
	}
	return st, nil
}

// Insert stores data as a new record under txn and returns its RID.
func (s *Store) Insert(txn uint64, data []byte) (RID, error) {
	if len(data) > MaxRecordSize {
		return InvalidRID, ErrRecordTooLarge
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st, err := s.txnState(txn)
	if err != nil {
		return InvalidRID, err
	}
	rid, err := s.placeLocked(data)
	if err != nil {
		return InvalidRID, err
	}
	lsn, err := s.wal.Append(&LogRecord{Txn: txn, Kind: LogInsert, RID: rid, After: data})
	if err != nil {
		return InvalidRID, err
	}
	s.stampLocked(rid.Page, lsn)
	st.ops = append(st.ops, undoOp{kind: LogInsert, rid: rid})
	st.pages[rid.Page] = true
	return rid, nil
}

// placeLocked finds a page with room and inserts data.
func (s *Store) placeLocked(data []byte) (RID, error) {
	try := func(id PageID) (RID, bool, error) {
		p, err := s.pool.Pin(id)
		if err != nil {
			return InvalidRID, false, err
		}
		slot, err := p.Insert(data)
		if err != nil {
			s.pool.Unpin(id, false, false)
			if errors.Is(err, ErrPageFull) {
				return InvalidRID, false, nil
			}
			return InvalidRID, false, err
		}
		s.pool.Unpin(id, true, true)
		return RID{Page: id, Slot: slot}, true, nil
	}
	if s.insertHint != InvalidPageID && s.insertHint < s.pager.NumPages() {
		rid, ok, err := try(s.insertHint)
		if err != nil {
			return InvalidRID, err
		}
		if ok {
			return rid, nil
		}
	}
	id, p, err := s.pool.PinNew()
	if err != nil {
		return InvalidRID, err
	}
	slot, err := p.Insert(data)
	if err != nil {
		s.pool.Unpin(id, false, false)
		return InvalidRID, err
	}
	s.pool.Unpin(id, true, true)
	s.insertHint = id
	return RID{Page: id, Slot: slot}, nil
}

// stampLocked records lsn as the page LSN of page id.
func (s *Store) stampLocked(id PageID, lsn uint64) {
	p, err := s.pool.Pin(id)
	if err != nil {
		return
	}
	p.SetLSN(lsn)
	s.pool.Unpin(id, true, true)
}

// Get returns a copy of the record at rid.
func (s *Store) Get(rid RID) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, err := s.pool.Pin(rid.Page)
	if err != nil {
		return nil, err
	}
	defer s.pool.Unpin(rid.Page, false, false)
	return p.Get(rid.Slot)
}

// Update replaces the record at rid with data under txn. When the
// record no longer fits its page it is relocated; the (possibly new)
// RID is returned and the caller must update its references.
func (s *Store) Update(txn uint64, rid RID, data []byte) (RID, error) {
	if len(data) > MaxRecordSize {
		return InvalidRID, ErrRecordTooLarge
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st, err := s.txnState(txn)
	if err != nil {
		return InvalidRID, err
	}
	p, err := s.pool.Pin(rid.Page)
	if err != nil {
		return InvalidRID, err
	}
	before, err := p.Get(rid.Slot)
	if err != nil {
		s.pool.Unpin(rid.Page, false, false)
		return InvalidRID, err
	}
	err = p.Update(rid.Slot, data)
	if err == nil {
		s.pool.Unpin(rid.Page, true, true)
		lsn, werr := s.wal.Append(&LogRecord{Txn: txn, Kind: LogUpdate, RID: rid, Before: before, After: data})
		if werr != nil {
			return InvalidRID, werr
		}
		s.stampLocked(rid.Page, lsn)
		st.ops = append(st.ops, undoOp{kind: LogUpdate, rid: rid, before: before})
		st.pages[rid.Page] = true
		return rid, nil
	}
	s.pool.Unpin(rid.Page, false, false)
	if !errors.Is(err, ErrPageFull) {
		return InvalidRID, err
	}
	// Relocate: delete here, insert elsewhere.
	if err := s.deleteLocked(st, txn, rid, before); err != nil {
		return InvalidRID, err
	}
	newRID, err := s.placeLocked(data)
	if err != nil {
		return InvalidRID, err
	}
	lsn, err := s.wal.Append(&LogRecord{Txn: txn, Kind: LogInsert, RID: newRID, After: data})
	if err != nil {
		return InvalidRID, err
	}
	s.stampLocked(newRID.Page, lsn)
	st.ops = append(st.ops, undoOp{kind: LogInsert, rid: newRID})
	st.pages[newRID.Page] = true
	return newRID, nil
}

// Delete removes the record at rid under txn.
func (s *Store) Delete(txn uint64, rid RID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, err := s.txnState(txn)
	if err != nil {
		return err
	}
	p, err := s.pool.Pin(rid.Page)
	if err != nil {
		return err
	}
	before, err := p.Get(rid.Slot)
	if err != nil {
		s.pool.Unpin(rid.Page, false, false)
		return err
	}
	s.pool.Unpin(rid.Page, false, false)
	return s.deleteLocked(st, txn, rid, before)
}

func (s *Store) deleteLocked(st *txnState, txn uint64, rid RID, before []byte) error {
	p, err := s.pool.Pin(rid.Page)
	if err != nil {
		return err
	}
	if err := p.Delete(rid.Slot); err != nil {
		s.pool.Unpin(rid.Page, false, false)
		return err
	}
	s.pool.Unpin(rid.Page, true, true)
	lsn, err := s.wal.Append(&LogRecord{Txn: txn, Kind: LogDelete, RID: rid, Before: before})
	if err != nil {
		return err
	}
	s.stampLocked(rid.Page, lsn)
	st.ops = append(st.ops, undoOp{kind: LogDelete, rid: rid, before: before})
	st.pages[rid.Page] = true
	return nil
}

// Commit makes txn's effects durable: a commit record is appended and
// (by default) the log is forced to stable storage.
//
// When the force fails, the commit record may or may not have reached
// the disk: Commit returns ErrInDoubt and poisons the store — every
// later mutating operation fails the same way, and Close will neither
// checkpoint nor truncate the log, so the next Open's recovery can
// resolve the transaction from what stable storage actually holds.
func (s *Store) Commit(txn uint64) error {
	s.mu.Lock()
	st, err := s.txnState(txn)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	lsn, err := s.wal.Append(&LogRecord{Txn: txn, Kind: LogCommit, RID: InvalidRID})
	if err != nil {
		// Nothing was forced yet; the transaction stays active and the
		// caller may abort it.
		s.mu.Unlock()
		return err
	}
	delete(s.active, txn)
	pages := st.pages
	s.releaseStealLocked(pages)
	sync := *s.opts.SyncOnCommit
	s.mu.Unlock()
	if !sync {
		return nil
	}
	// Group commit: the force targets this commit record's LSN, so
	// concurrent committers share one leader's fsync instead of queueing
	// one fsync each behind wal.mu.
	force := s.wal.SyncTo
	if s.opts.DisableGroupCommit {
		force = func(uint64) error { return s.wal.Sync() }
	}
	if err := force(lsn); err != nil {
		s.mu.Lock()
		if s.poison == nil {
			s.poison = fmt.Errorf("%w: txn %d: %v", ErrInDoubt, txn, err)
		}
		perr := s.poison
		s.mu.Unlock()
		return perr
	}
	return nil
}

// Abort rolls back txn's effects in memory. When a deleted or updated
// record could not be restored in place it is relocated; the returned
// map gives old→new RIDs the caller must re-point.
func (s *Store) Abort(txn uint64) (map[RID]RID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, err := s.txnState(txn)
	if err != nil {
		return nil, err
	}
	reloc := make(map[RID]RID)
	for i := len(st.ops) - 1; i >= 0; i-- {
		op := st.ops[i]
		rid := op.rid
		if nr, ok := reloc[rid]; ok {
			rid = nr
		}
		switch op.kind {
		case LogInsert:
			p, err := s.pool.Pin(rid.Page)
			if err != nil {
				return reloc, err
			}
			perr := p.Delete(rid.Slot)
			s.pool.Unpin(rid.Page, perr == nil, perr == nil)
			if perr != nil {
				return reloc, perr
			}
			if err := s.logSysLocked(LogDelete, rid, nil); err != nil {
				return reloc, err
			}
		case LogUpdate:
			if err := s.restoreLocked(rid, op.rid, op.before, reloc, true); err != nil {
				return reloc, err
			}
		case LogDelete:
			if err := s.restoreLocked(rid, op.rid, op.before, reloc, false); err != nil {
				return reloc, err
			}
		}
	}
	if _, err := s.wal.Append(&LogRecord{Txn: txn, Kind: LogAbort, RID: InvalidRID}); err != nil {
		return reloc, err
	}
	delete(s.active, txn)
	s.releaseStealLocked(st.pages)
	if len(st.ops) > 0 && *s.opts.SyncOnCommit {
		// The undo was logged as system records; make them durable so
		// the post-abort state (including any relocated committed
		// records callers were handed) survives a crash. When the store
		// runs without commit forcing, aborts must not fsync either:
		// recovery replays the system records from whatever prefix of
		// the log reached the disk, so the force is a durability
		// preference, not a correctness requirement.
		if err := s.wal.Sync(); err != nil {
			return reloc, err
		}
	}
	return reloc, nil
}

// logSysLocked appends a system (compensation) record describing an
// undo action and stamps the affected page. Recovery always replays
// system records, tolerantly, so the on-disk replay converges to the
// in-memory post-abort state.
func (s *Store) logSysLocked(kind LogKind, rid RID, after []byte) error {
	lsn, err := s.wal.Append(&LogRecord{Txn: sysTxn, Kind: kind, RID: rid, After: after})
	if err != nil {
		return err
	}
	s.stampLocked(rid.Page, lsn)
	return nil
}

// sysTxn is the reserved transaction id for system-generated log
// records. Recovery always replays them: they describe abort-time
// relocations of committed record images, which must survive a crash
// because callers have already been handed the new RIDs.
const sysTxn = 0

// restoreLocked puts before back at rid; update=true means the slot is
// live and should be overwritten, false means the slot is dead and
// should be re-populated. On space exhaustion the record is relocated,
// the move recorded in reloc keyed by the original RID, and — because
// the moved image belongs to committed history — logged under sysTxn
// so redo reproduces the relocation after a crash.
func (s *Store) restoreLocked(rid, origRID RID, before []byte, reloc map[RID]RID, update bool) error {
	p, err := s.pool.Pin(rid.Page)
	if err != nil {
		return err
	}
	if update {
		err = p.Update(rid.Slot, before)
	} else {
		err = p.InsertAt(rid.Slot, before)
	}
	if err == nil {
		s.pool.Unpin(rid.Page, true, true)
		kind := LogInsert
		if update {
			kind = LogUpdate
		}
		return s.logSysLocked(kind, rid, before)
	}
	s.pool.Unpin(rid.Page, false, false)
	if !errors.Is(err, ErrPageFull) {
		return err
	}
	if update {
		// Free the stale image before relocating.
		p, err := s.pool.Pin(rid.Page)
		if err != nil {
			return err
		}
		perr := p.Delete(rid.Slot)
		s.pool.Unpin(rid.Page, perr == nil, perr == nil)
		if perr != nil {
			return perr
		}
	}
	newRID, err := s.placeLocked(before)
	if err != nil {
		return err
	}
	// Log the relocation: the committed image leaves rid and lands at
	// newRID.
	if err := s.logSysLocked(LogDelete, rid, nil); err != nil {
		return err
	}
	if err := s.logSysLocked(LogInsert, newRID, before); err != nil {
		return err
	}
	reloc[origRID] = newRID
	return nil
}

func (s *Store) releaseStealLocked(pages map[PageID]bool) {
	for id := range pages {
		still := false
		for _, other := range s.active {
			if other.pages[id] {
				still = true
				break
			}
		}
		if !still {
			s.pool.ReleaseSteal(id)
		}
	}
}

// Scan calls fn for every live record in the store. It must not be
// called with transactions in flight whose effects should be hidden;
// the layers above arrange isolation.
func (s *Store) Scan(fn func(rid RID, data []byte)) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.pager.NumPages()
	for id := PageID(0); id < n; id++ {
		p, err := s.pool.Pin(id)
		if err != nil {
			return err
		}
		p.Slots(func(slot uint16, data []byte) {
			cp := append([]byte(nil), data...)
			fn(RID{Page: id, Slot: slot}, cp)
		})
		s.pool.Unpin(id, false, false)
	}
	return nil
}

// Checkpoint flushes all committed effects to the data file and
// truncates the write-ahead log. It fails with ErrTxnActive while
// transactions are in flight and with ErrInDoubt on a poisoned store
// (truncating the log would destroy the evidence recovery needs).
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpointLocked()
}

func (s *Store) checkpointLocked() error {
	if s.poison != nil {
		return s.poison
	}
	if len(s.active) > 0 {
		return ErrTxnActive
	}
	if err := s.pool.FlushAll(); err != nil {
		return err
	}
	if err := s.pager.Sync(); err != nil {
		return err
	}
	return s.wal.Reset(s.wal.NextLSN())
}

// Close checkpoints if possible and closes the store's files. The
// checkpoint decision and the checkpoint itself run under one
// critical section, so a transaction beginning concurrently cannot
// turn Close into a spurious ErrTxnActive; and the WAL and pager
// handles are closed even when the checkpoint fails, so Close never
// leaks file descriptors. On a poisoned store Close never checkpoints
// or truncates the log — recovery on the next Open must see exactly
// what stable storage holds to resolve the in-doubt commit. (The
// final wal.Close still re-attempts the flush; forcing the in-doubt
// commit record late only narrows the doubt, never widens it.)
func (s *Store) Close() error {
	s.mu.Lock()
	var cerr error
	switch {
	case s.poison != nil:
		// No checkpoint, no WAL truncation.
	case len(s.active) == 0:
		cerr = s.checkpointLocked()
	default:
		// Active transactions: no checkpoint, but force what is
		// committed so far to stable storage.
		cerr = s.wal.Sync()
	}
	s.mu.Unlock()
	werr := s.wal.Close()
	perr := s.pager.Close()
	if cerr != nil {
		return cerr
	}
	if werr != nil {
		return werr
	}
	return perr
}

// Stats reports storage counters.
type Stats struct {
	Pages       PageID
	BufferHits  uint64
	BufferMiss  uint64
	WALSyncs    uint64
	WALNextLSN  uint64
	ActiveTxns  int
	FramesAlive int
	// Group-commit effectiveness: how many commit forces were
	// requested (requests/WALSyncs is the amortization factor), how
	// many follower batches a leader released, and the largest such
	// batch. Uncontended forces never park a follower, so the batch
	// counters stay zero on a serial workload.
	GroupCommitRequests uint64
	GroupCommitBatches  uint64
	GroupBatchHighwater int64
}

// Stats returns a snapshot of storage counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	active := len(s.active)
	s.mu.Unlock()
	hits, misses := s.pool.Stats()
	reqs, batches, high := s.wal.GroupCommitStats()
	return Stats{
		Pages:               s.pager.NumPages(),
		BufferHits:          hits,
		BufferMiss:          misses,
		WALSyncs:            s.wal.Syncs(),
		WALNextLSN:          s.wal.NextLSN(),
		ActiveTxns:          active,
		FramesAlive:         s.pool.Len(),
		GroupCommitRequests: reqs,
		GroupCommitBatches:  batches,
		GroupBatchHighwater: high,
	}
}

// recover replays the write-ahead log: effects of committed
// transactions are redone against the data file; uncommitted effects
// never reached it (no-steal) and are simply discarded. The log is
// then truncated.
func (s *Store) recover() error {
	committed := map[uint64]bool{sysTxn: true} // system records always replay
	if err := s.wal.Records(func(rec LogRecord) {
		if rec.Kind == LogCommit {
			committed[rec.Txn] = true
		}
	}); err != nil {
		return err
	}
	var maxLSN uint64
	var applyErr error
	err := s.wal.Records(func(rec LogRecord) {
		if applyErr != nil || !committed[rec.Txn] {
			return
		}
		if rec.LSN > maxLSN {
			maxLSN = rec.LSN
		}
		switch rec.Kind {
		case LogInsert, LogUpdate, LogDelete:
			applyErr = s.redo(rec)
		}
	})
	if err != nil {
		return err
	}
	if applyErr != nil {
		return applyErr
	}
	if err := s.pool.FlushAll(); err != nil {
		return err
	}
	if err := s.pager.Sync(); err != nil {
		return err
	}
	return s.wal.Reset(maxLSN)
}

func (s *Store) redo(rec LogRecord) error {
	if err := s.pager.EnsureAllocated(rec.RID.Page); err != nil {
		return err
	}
	p, err := s.pool.Pin(rec.RID.Page)
	if err != nil {
		return err
	}
	defer func() { s.pool.Unpin(rec.RID.Page, true, false) }()
	if p.LSN() >= rec.LSN {
		return nil // page already reflects this record
	}
	if rec.Txn == sysTxn {
		// System (compensation) records describe the post-abort state
		// of a slot; the pre-state at replay time may or may not carry
		// the aborted transaction's (never-replayed) effects, so they
		// apply tolerantly: delete-if-present, upsert otherwise.
		switch rec.Kind {
		case LogDelete:
			if err := p.Delete(rec.RID.Slot); err != nil && !errors.Is(err, ErrNoSuchRecord) {
				return fmt.Errorf("storage: redo sys delete %v lsn=%d: %w", rec.RID, rec.LSN, err)
			}
		case LogInsert, LogUpdate:
			if err := p.Update(rec.RID.Slot, rec.After); err != nil {
				if !errors.Is(err, ErrNoSuchRecord) {
					return fmt.Errorf("storage: redo sys upsert %v lsn=%d: %w", rec.RID, rec.LSN, err)
				}
				if err := p.InsertAt(rec.RID.Slot, rec.After); err != nil {
					return fmt.Errorf("storage: redo sys insert %v lsn=%d: %w", rec.RID, rec.LSN, err)
				}
			}
		}
		p.SetLSN(rec.LSN)
		return nil
	}
	switch rec.Kind {
	case LogInsert:
		if err := p.InsertAt(rec.RID.Slot, rec.After); err != nil {
			return fmt.Errorf("storage: redo insert %v lsn=%d: %w", rec.RID, rec.LSN, err)
		}
	case LogUpdate:
		if err := p.Update(rec.RID.Slot, rec.After); err != nil {
			return fmt.Errorf("storage: redo update %v lsn=%d: %w", rec.RID, rec.LSN, err)
		}
	case LogDelete:
		if err := p.Delete(rec.RID.Slot); err != nil {
			return fmt.Errorf("storage: redo delete %v lsn=%d: %w", rec.RID, rec.LSN, err)
		}
	}
	p.SetLSN(rec.LSN)
	return nil
}
