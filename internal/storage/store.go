package storage

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"

	"repro/internal/fault"
	"repro/internal/obs"
)

// Options configure a Store.
type Options struct {
	// BufferPoolPages is the nominal buffer-pool capacity in pages.
	// Zero selects a default of 256 pages (2 MiB).
	BufferPoolPages int
	// SyncOnCommit forces the WAL to stable storage on every commit.
	// It defaults to true; benchmarks disable it to isolate fsync cost.
	SyncOnCommit *bool
	// Metrics, when set, binds the store's counters (buffer hits and
	// misses, WAL syncs, WAL append latency) into a shared registry.
	Metrics *obs.Registry
	// FS is the filesystem the store's data file and write-ahead log
	// are opened through. Nil selects the real filesystem; the
	// crash-consistency harness substitutes a fault.ShadowFS.
	FS fault.FS
	// DisableGroupCommit makes every committer force its own fsync
	// instead of batching behind a group-commit leader. It exists as
	// the ablation switch for the contention experiments (E13); leave
	// it false everywhere else.
	DisableGroupCommit bool
	// WALSegmentBytes caps a WAL segment before rotation. Zero selects
	// DefaultSegmentBytes.
	WALSegmentBytes int64
	// Checkpoint configures fuzzy checkpointing and the background
	// checkpointer; the zero value leaves the background goroutine off
	// so tests that count fsyncs stay deterministic.
	Checkpoint CheckpointOptions
}

func (o Options) withDefaults() Options {
	if o.BufferPoolPages == 0 {
		o.BufferPoolPages = 256
	}
	if o.SyncOnCommit == nil {
		t := true
		o.SyncOnCommit = &t
	}
	return o
}

// Bool is a convenience for building Options literals.
func Bool(v bool) *bool { return &v }

// Store is a durable record store: uninterpreted byte records addressed
// by RID, with transactional insert/update/delete under write-ahead
// logging (no-steal, no-force) and redo-based crash recovery.
//
// The Store does not assign transaction identifiers; the transaction
// manager above passes them in. Concurrency control is likewise the
// caller's job (the lock manager serializes conflicting object
// access); the Store only guarantees its own internal consistency.
type Store struct {
	pager *Pager
	pool  *BufferPool
	wal   *WAL
	opts  Options

	mu     sync.Mutex
	active map[uint64]*txnState
	// forcing holds transactions whose commit record is appended but
	// not yet known durable: their pages stay steal-protected so no
	// flush (checkpoint or eviction) publishes effects whose commit a
	// crash might lose.
	forcing    map[uint64]*txnState
	insertHint PageID // last page that accepted an insert
	// poison is set when a commit's durability is in doubt: the commit
	// record was appended but forcing it to stable storage failed, so
	// neither outcome can be asserted. A poisoned store refuses all
	// further mutation and checkpointing; only crash recovery on the
	// next Open, which replays what actually reached the disk, can
	// resolve the transaction's fate.
	poison error

	// Fuzzy-checkpoint state. ckptMu serializes whole checkpoints
	// (manual, background, Close) and is always taken before s.mu.
	ckptMu        sync.Mutex
	copts         CheckpointOptions
	ckptLastNext  uint64 // wal.NextLSN after the last completed checkpoint (idle skip)
	ckptBaseBytes uint64 // wal.AppendedBytes at the last completed checkpoint (byte trigger)
	lastCkpt      CheckpointInfo

	// Health: consecutive failures flip the degraded flag; any success
	// clears it. Guarded by s.mu.
	ckptConsecFails  int
	ckptDegradedFlag bool
	ckptLastErr      string

	// Background checkpointer plumbing; nil channels when Auto is off.
	ckptNotify   chan struct{}
	ckptStop     chan struct{}
	ckptDone     chan struct{}
	ckptStopOnce sync.Once

	// Checkpoint/recovery metrics, standalone by default and rebound
	// into the registry when Options.Metrics is set.
	ckptOK       *obs.Counter
	ckptErr      *obs.Counter
	ckptDegraded *obs.Gauge
	ckptDur      *obs.Histogram
	recoverDur   *obs.Histogram

	// Recovery-window accounting from the last Open, for Stats.
	recSegsScanned int
	recSegsSkipped int
	recRecords     int
	recReplayed    int
}

type txnState struct {
	ops      []undoOp
	pages    map[PageID]bool
	firstLSN uint64 // LSN of the BEGIN record; pins a fuzzy checkpoint's redoLSN
}

type undoOp struct {
	kind   LogKind
	rid    RID
	before []byte
}

// Errors returned by Store operations.
var (
	// ErrTxnActive is retained for callers that still match on it; the
	// fuzzy checkpoint no longer refuses to run while transactions are
	// in flight, so Checkpoint never returns it anymore.
	ErrTxnActive   = errors.New("storage: transactions still active")
	ErrUnknownTxn  = errors.New("storage: unknown transaction")
	ErrStoreClosed = errors.New("storage: store closed")
	// ErrInDoubt is returned by Commit when the commit record could
	// not be forced to stable storage: the transaction may or may not
	// be durable, and every later mutating operation fails with the
	// same error until the store is reopened and recovery resolves
	// the outcome from the log that actually hit the disk.
	ErrInDoubt = errors.New("storage: commit outcome in doubt")
)

// Open opens (creating if necessary) the store in dir, running crash
// recovery against the write-ahead log before returning.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	fs := opts.FS
	if fs == nil {
		fs = fault.OS{}
	}
	pager, err := OpenPagerFS(fs, filepath.Join(dir, "data.db"))
	if err != nil {
		return nil, err
	}
	wal, err := OpenWALSegmented(fs, filepath.Join(dir, "wal.log"), opts.WALSegmentBytes)
	if err != nil {
		_ = pager.Close() // opening the WAL failed; the close is best-effort cleanup
		return nil, err
	}
	s := &Store{
		pager:        pager,
		pool:         NewBufferPool(pager, opts.BufferPoolPages),
		wal:          wal,
		opts:         opts,
		copts:        opts.Checkpoint.withDefaults(),
		active:       make(map[uint64]*txnState),
		forcing:      make(map[uint64]*txnState),
		insertHint:   InvalidPageID,
		ckptOK:       new(obs.Counter),
		ckptErr:      new(obs.Counter),
		ckptDegraded: new(obs.Gauge),
		ckptDur:      new(obs.Histogram),
		recoverDur:   new(obs.Histogram),
	}
	// Frames capture the upcoming record's LSN when they go dirty; the
	// fuzzy checkpoint folds the minimum over dirty frames into redoLSN.
	s.pool.SetRecLSNSource(wal.NextLSN)
	if opts.Metrics != nil {
		s.pool.Instrument(opts.Metrics)
		wal.Instrument(opts.Metrics)
		s.instrument(opts.Metrics)
	}
	stopRecover := s.recoverDur.Time()
	err = s.recover()
	stopRecover()
	if err != nil {
		_ = wal.Close()   // recovery failed; the closes are best-effort cleanup
		_ = pager.Close() // recovery failed; the closes are best-effort cleanup
		return nil, err
	}
	if s.copts.Auto {
		s.ckptNotify = make(chan struct{}, 1)
		s.ckptStop = make(chan struct{})
		s.ckptDone = make(chan struct{})
		go s.checkpointLoop()
	}
	return s, nil
}

// instrument rebinds the store-level checkpoint/recovery metrics into
// reg.
func (s *Store) instrument(reg *obs.Registry) {
	const name, help = "reach_checkpoint_total", "Fuzzy checkpoint attempts by result."
	s.ckptOK = reg.Counter(name, help, "result", "ok")
	s.ckptErr = reg.Counter(name, help, "result", "error")
	s.ckptDegraded = reg.Gauge("reach_checkpoint_degraded",
		"1 while repeated checkpoint failures have the store in degraded mode.")
	s.ckptDur = reg.Histogram("reach_checkpoint_seconds", "Fuzzy checkpoint duration.")
	s.recoverDur = reg.Histogram("reach_recovery_seconds",
		"Crash-recovery duration at store open (bounded by the last checkpoint).")
}

// Begin registers a storage-level transaction. It is idempotent.
// Transaction id 0 is reserved for system records.
func (s *Store) Begin(txn uint64) error {
	if txn == sysTxn {
		return fmt.Errorf("storage: transaction id %d is reserved", sysTxn)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.poison != nil {
		return s.poison
	}
	if _, ok := s.active[txn]; ok {
		return nil
	}
	lsn, err := s.wal.Append(&LogRecord{Txn: txn, Kind: LogBegin, RID: InvalidRID})
	if err != nil {
		return err
	}
	s.active[txn] = &txnState{pages: make(map[PageID]bool), firstLSN: lsn}
	return nil
}

func (s *Store) txnState(txn uint64) (*txnState, error) {
	if s.poison != nil {
		return nil, s.poison
	}
	st, ok := s.active[txn]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownTxn, txn)
	}
	return st, nil
}

// Insert stores data as a new record under txn and returns its RID.
func (s *Store) Insert(txn uint64, data []byte) (RID, error) {
	if len(data) > MaxRecordSize {
		return InvalidRID, ErrRecordTooLarge
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st, err := s.txnState(txn)
	if err != nil {
		return InvalidRID, err
	}
	rid, err := s.placeLocked(data)
	if err != nil {
		return InvalidRID, err
	}
	lsn, err := s.wal.Append(&LogRecord{Txn: txn, Kind: LogInsert, RID: rid, After: data})
	if err != nil {
		return InvalidRID, err
	}
	s.stampLocked(rid.Page, lsn)
	st.ops = append(st.ops, undoOp{kind: LogInsert, rid: rid})
	st.pages[rid.Page] = true
	return rid, nil
}

// placeLocked finds a page with room and inserts data.
func (s *Store) placeLocked(data []byte) (RID, error) {
	try := func(id PageID) (RID, bool, error) {
		p, err := s.pool.Pin(id)
		if err != nil {
			return InvalidRID, false, err
		}
		slot, err := p.Insert(data)
		if err != nil {
			s.pool.Unpin(id, false, false)
			if errors.Is(err, ErrPageFull) {
				return InvalidRID, false, nil
			}
			return InvalidRID, false, err
		}
		s.pool.Unpin(id, true, true)
		return RID{Page: id, Slot: slot}, true, nil
	}
	if s.insertHint != InvalidPageID && s.insertHint < s.pager.NumPages() {
		rid, ok, err := try(s.insertHint)
		if err != nil {
			return InvalidRID, err
		}
		if ok {
			return rid, nil
		}
	}
	id, p, err := s.pool.PinNew()
	if err != nil {
		return InvalidRID, err
	}
	slot, err := p.Insert(data)
	if err != nil {
		s.pool.Unpin(id, false, false)
		return InvalidRID, err
	}
	s.pool.Unpin(id, true, true)
	s.insertHint = id
	return RID{Page: id, Slot: slot}, nil
}

// stampLocked records lsn as the page LSN of page id.
func (s *Store) stampLocked(id PageID, lsn uint64) {
	p, err := s.pool.Pin(id)
	if err != nil {
		return
	}
	p.SetLSN(lsn)
	s.pool.Unpin(id, true, true)
}

// Get returns a copy of the record at rid.
func (s *Store) Get(rid RID) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, err := s.pool.Pin(rid.Page)
	if err != nil {
		return nil, err
	}
	defer s.pool.Unpin(rid.Page, false, false)
	return p.Get(rid.Slot)
}

// Update replaces the record at rid with data under txn. When the
// record no longer fits its page it is relocated; the (possibly new)
// RID is returned and the caller must update its references.
func (s *Store) Update(txn uint64, rid RID, data []byte) (RID, error) {
	if len(data) > MaxRecordSize {
		return InvalidRID, ErrRecordTooLarge
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st, err := s.txnState(txn)
	if err != nil {
		return InvalidRID, err
	}
	p, err := s.pool.Pin(rid.Page)
	if err != nil {
		return InvalidRID, err
	}
	before, err := p.Get(rid.Slot)
	if err != nil {
		s.pool.Unpin(rid.Page, false, false)
		return InvalidRID, err
	}
	err = p.Update(rid.Slot, data)
	if err == nil {
		s.pool.Unpin(rid.Page, true, true)
		lsn, werr := s.wal.Append(&LogRecord{Txn: txn, Kind: LogUpdate, RID: rid, Before: before, After: data})
		if werr != nil {
			return InvalidRID, werr
		}
		s.stampLocked(rid.Page, lsn)
		st.ops = append(st.ops, undoOp{kind: LogUpdate, rid: rid, before: before})
		st.pages[rid.Page] = true
		return rid, nil
	}
	s.pool.Unpin(rid.Page, false, false)
	if !errors.Is(err, ErrPageFull) {
		return InvalidRID, err
	}
	// Relocate: delete here, insert elsewhere.
	if err := s.deleteLocked(st, txn, rid, before); err != nil {
		return InvalidRID, err
	}
	newRID, err := s.placeLocked(data)
	if err != nil {
		return InvalidRID, err
	}
	lsn, err := s.wal.Append(&LogRecord{Txn: txn, Kind: LogInsert, RID: newRID, After: data})
	if err != nil {
		return InvalidRID, err
	}
	s.stampLocked(newRID.Page, lsn)
	st.ops = append(st.ops, undoOp{kind: LogInsert, rid: newRID})
	st.pages[newRID.Page] = true
	return newRID, nil
}

// Delete removes the record at rid under txn.
func (s *Store) Delete(txn uint64, rid RID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, err := s.txnState(txn)
	if err != nil {
		return err
	}
	p, err := s.pool.Pin(rid.Page)
	if err != nil {
		return err
	}
	before, err := p.Get(rid.Slot)
	if err != nil {
		s.pool.Unpin(rid.Page, false, false)
		return err
	}
	s.pool.Unpin(rid.Page, false, false)
	return s.deleteLocked(st, txn, rid, before)
}

func (s *Store) deleteLocked(st *txnState, txn uint64, rid RID, before []byte) error {
	p, err := s.pool.Pin(rid.Page)
	if err != nil {
		return err
	}
	if err := p.Delete(rid.Slot); err != nil {
		s.pool.Unpin(rid.Page, false, false)
		return err
	}
	s.pool.Unpin(rid.Page, true, true)
	lsn, err := s.wal.Append(&LogRecord{Txn: txn, Kind: LogDelete, RID: rid, Before: before})
	if err != nil {
		return err
	}
	s.stampLocked(rid.Page, lsn)
	st.ops = append(st.ops, undoOp{kind: LogDelete, rid: rid, before: before})
	st.pages[rid.Page] = true
	return nil
}

// Commit makes txn's effects durable: a commit record is appended and
// (by default) the log is forced to stable storage.
//
// When the force fails, the commit record may or may not have reached
// the disk: Commit returns ErrInDoubt and poisons the store — every
// later mutating operation fails the same way, and Close will neither
// checkpoint nor truncate the log, so the next Open's recovery can
// resolve the transaction from what stable storage actually holds.
func (s *Store) Commit(txn uint64) error {
	s.mu.Lock()
	st, err := s.txnState(txn)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	lsn, err := s.wal.Append(&LogRecord{Txn: txn, Kind: LogCommit, RID: InvalidRID})
	if err != nil {
		// Nothing was forced yet; the transaction stays active and the
		// caller may abort it.
		s.mu.Unlock()
		return err
	}
	delete(s.active, txn)
	sync := *s.opts.SyncOnCommit
	if !sync {
		s.releaseStealLocked(st.pages)
		s.mu.Unlock()
		s.maybeTriggerCheckpoint()
		return nil
	}
	// The pages stay steal-protected until the commit record is known
	// durable: a fuzzy checkpoint or eviction flushing them during the
	// force could otherwise publish effects whose commit record a crash
	// then loses — uncommitted data on disk under redo-only recovery.
	s.forcing[txn] = st
	s.mu.Unlock()
	// Group commit: the force targets this commit record's LSN, so
	// concurrent committers share one leader's fsync instead of queueing
	// one fsync each behind wal.mu.
	force := s.wal.SyncTo
	if s.opts.DisableGroupCommit {
		force = func(uint64) error { return s.wal.Sync() }
	}
	ferr := force(lsn)
	s.mu.Lock()
	delete(s.forcing, txn)
	if ferr != nil {
		// Keep the steal protection: the store is poisoned and its
		// pages must not reach the data file with an undecided commit.
		if s.poison == nil {
			s.poison = fmt.Errorf("%w: txn %d: %v", ErrInDoubt, txn, ferr)
		}
		perr := s.poison
		s.mu.Unlock()
		return perr
	}
	s.releaseStealLocked(st.pages)
	s.mu.Unlock()
	s.maybeTriggerCheckpoint()
	return nil
}

// Abort rolls back txn's effects in memory. When a deleted or updated
// record could not be restored in place it is relocated; the returned
// map gives old→new RIDs the caller must re-point.
func (s *Store) Abort(txn uint64) (map[RID]RID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, err := s.txnState(txn)
	if err != nil {
		return nil, err
	}
	reloc := make(map[RID]RID)
	for i := len(st.ops) - 1; i >= 0; i-- {
		op := st.ops[i]
		rid := op.rid
		if nr, ok := reloc[rid]; ok {
			rid = nr
		}
		switch op.kind {
		case LogInsert:
			p, err := s.pool.Pin(rid.Page)
			if err != nil {
				return reloc, err
			}
			perr := p.Delete(rid.Slot)
			s.pool.Unpin(rid.Page, perr == nil, perr == nil)
			if perr != nil {
				return reloc, perr
			}
			if err := s.logSysLocked(LogDelete, rid, nil); err != nil {
				return reloc, err
			}
		case LogUpdate:
			if err := s.restoreLocked(rid, op.rid, op.before, reloc, true); err != nil {
				return reloc, err
			}
		case LogDelete:
			if err := s.restoreLocked(rid, op.rid, op.before, reloc, false); err != nil {
				return reloc, err
			}
		}
	}
	if _, err := s.wal.Append(&LogRecord{Txn: txn, Kind: LogAbort, RID: InvalidRID}); err != nil {
		return reloc, err
	}
	delete(s.active, txn)
	s.releaseStealLocked(st.pages)
	if len(st.ops) > 0 && *s.opts.SyncOnCommit {
		// The undo was logged as system records; make them durable so
		// the post-abort state (including any relocated committed
		// records callers were handed) survives a crash. When the store
		// runs without commit forcing, aborts must not fsync either:
		// recovery replays the system records from whatever prefix of
		// the log reached the disk, so the force is a durability
		// preference, not a correctness requirement.
		if err := s.wal.Sync(); err != nil {
			return reloc, err
		}
	}
	return reloc, nil
}

// logSysLocked appends a system (compensation) record describing an
// undo action and stamps the affected page. Recovery always replays
// system records, tolerantly, so the on-disk replay converges to the
// in-memory post-abort state.
func (s *Store) logSysLocked(kind LogKind, rid RID, after []byte) error {
	lsn, err := s.wal.Append(&LogRecord{Txn: sysTxn, Kind: kind, RID: rid, After: after})
	if err != nil {
		return err
	}
	s.stampLocked(rid.Page, lsn)
	return nil
}

// sysTxn is the reserved transaction id for system-generated log
// records. Recovery always replays them: they describe abort-time
// relocations of committed record images, which must survive a crash
// because callers have already been handed the new RIDs.
const sysTxn = 0

// restoreLocked puts before back at rid; update=true means the slot is
// live and should be overwritten, false means the slot is dead and
// should be re-populated. On space exhaustion the record is relocated,
// the move recorded in reloc keyed by the original RID, and — because
// the moved image belongs to committed history — logged under sysTxn
// so redo reproduces the relocation after a crash.
func (s *Store) restoreLocked(rid, origRID RID, before []byte, reloc map[RID]RID, update bool) error {
	p, err := s.pool.Pin(rid.Page)
	if err != nil {
		return err
	}
	if update {
		err = p.Update(rid.Slot, before)
	} else {
		err = p.InsertAt(rid.Slot, before)
	}
	if err == nil {
		s.pool.Unpin(rid.Page, true, true)
		kind := LogInsert
		if update {
			kind = LogUpdate
		}
		return s.logSysLocked(kind, rid, before)
	}
	s.pool.Unpin(rid.Page, false, false)
	if !errors.Is(err, ErrPageFull) {
		return err
	}
	if update {
		// Free the stale image before relocating.
		p, err := s.pool.Pin(rid.Page)
		if err != nil {
			return err
		}
		perr := p.Delete(rid.Slot)
		s.pool.Unpin(rid.Page, perr == nil, perr == nil)
		if perr != nil {
			return perr
		}
	}
	newRID, err := s.placeLocked(before)
	if err != nil {
		return err
	}
	// Log the relocation: the committed image leaves rid and lands at
	// newRID.
	if err := s.logSysLocked(LogDelete, rid, nil); err != nil {
		return err
	}
	if err := s.logSysLocked(LogInsert, newRID, before); err != nil {
		return err
	}
	reloc[origRID] = newRID
	return nil
}

func (s *Store) releaseStealLocked(pages map[PageID]bool) {
	for id := range pages {
		still := false
		for _, other := range s.active {
			if other.pages[id] {
				still = true
				break
			}
		}
		if !still {
			for _, other := range s.forcing {
				if other.pages[id] {
					still = true
					break
				}
			}
		}
		if !still {
			s.pool.ReleaseSteal(id)
		}
	}
}

// Scan calls fn for every live record in the store. It must not be
// called with transactions in flight whose effects should be hidden;
// the layers above arrange isolation.
func (s *Store) Scan(fn func(rid RID, data []byte)) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.pager.NumPages()
	for id := PageID(0); id < n; id++ {
		p, err := s.pool.Pin(id)
		if err != nil {
			return err
		}
		p.Slots(func(slot uint16, data []byte) {
			cp := append([]byte(nil), data...)
			fn(RID{Page: id, Slot: slot}, cp)
		})
		s.pool.Unpin(id, false, false)
	}
	return nil
}

// Close stops the background checkpointer, takes a final fuzzy
// checkpoint (online, so transactions still in flight do not block
// it), and closes the store's files. The WAL and pager handles are
// closed even when the checkpoint fails, so Close never leaks file
// descriptors. On a poisoned store the checkpoint refuses to run and
// Close reports success without it — recovery on the next Open must
// see exactly what stable storage holds to resolve the in-doubt
// commit. (The final wal.Close still re-attempts the flush; forcing
// the in-doubt commit record late only narrows the doubt, never
// widens it.)
func (s *Store) Close() error {
	s.stopCheckpointer()
	cerr := s.Checkpoint()
	if errors.Is(cerr, ErrInDoubt) {
		// Poisoned: preserving the log evidence IS the close contract.
		cerr = nil
	}
	werr := s.wal.Close()
	perr := s.pager.Close()
	if cerr != nil {
		return cerr
	}
	if werr != nil {
		return werr
	}
	return perr
}

// Stats reports storage counters.
type Stats struct {
	Pages       PageID
	BufferHits  uint64
	BufferMiss  uint64
	WALSyncs    uint64
	WALNextLSN  uint64
	ActiveTxns  int
	FramesAlive int
	// Group-commit effectiveness: how many commit forces were
	// requested (requests/WALSyncs is the amortization factor), how
	// many follower batches a leader released, and the largest such
	// batch. Uncontended forces never park a follower, so the batch
	// counters stay zero on a serial workload.
	GroupCommitRequests uint64
	GroupCommitBatches  uint64
	GroupBatchHighwater int64
	// Segmented-WAL shape: live segment files, their total bytes, and
	// the cumulative rotation/prune counts.
	WALSegments     int
	WALSegmentBytes int64
	WALRotations    uint64
	WALPrunes       uint64
	// WALCheckpointLag is bytes appended since the last completed
	// checkpoint — the checkpointer-backpressure signal the overload
	// governor watches.
	WALCheckpointLag int64
	// Checkpoint health (see CheckpointHealth for the full surface).
	Checkpoints         uint64
	CheckpointFailures  uint64
	CheckpointDegraded  bool
	LastCheckpointError string
	LastRedoLSN         uint64
	// Recovery window of the last Open: segments the scan read vs
	// skipped thanks to the master record, and records scanned vs
	// actually replayed past redoLSN.
	RecoverySegmentsScanned int
	RecoverySegmentsSkipped int
	RecoveryRecordsScanned  int
	RecoveryRecordsReplayed int
}

// Stats returns a snapshot of storage counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	active := len(s.active) + len(s.forcing)
	health := CheckpointHealth{
		Checkpoints:         s.ckptOK.Value(),
		Failures:            s.ckptErr.Value(),
		ConsecutiveFailures: s.ckptConsecFails,
		Degraded:            s.ckptDegradedFlag,
		LastError:           s.ckptLastErr,
		LastRedoLSN:         s.lastCkpt.RedoLSN,
	}
	recSegs, recSkipped := s.recSegsScanned, s.recSegsSkipped
	recRecords, recReplayed := s.recRecords, s.recReplayed
	ckptLag := int64(s.wal.AppendedBytes() - s.ckptBaseBytes)
	s.mu.Unlock()
	hits, misses := s.pool.Stats()
	reqs, batches, high := s.wal.GroupCommitStats()
	segs, segBytes, rotations, prunes := s.wal.SegmentStats()
	return Stats{
		Pages:                   s.pager.NumPages(),
		BufferHits:              hits,
		BufferMiss:              misses,
		WALSyncs:                s.wal.Syncs(),
		WALNextLSN:              s.wal.NextLSN(),
		ActiveTxns:              active,
		FramesAlive:             s.pool.Len(),
		GroupCommitRequests:     reqs,
		GroupCommitBatches:      batches,
		GroupBatchHighwater:     high,
		WALSegments:             segs,
		WALSegmentBytes:         segBytes,
		WALRotations:            rotations,
		WALPrunes:               prunes,
		WALCheckpointLag:        ckptLag,
		Checkpoints:             health.Checkpoints,
		CheckpointFailures:      health.Failures,
		CheckpointDegraded:      health.Degraded,
		LastCheckpointError:     health.LastError,
		LastRedoLSN:             health.LastRedoLSN,
		RecoverySegmentsScanned: recSegs,
		RecoverySegmentsSkipped: recSkipped,
		RecoveryRecordsScanned:  recRecords,
		RecoveryRecordsReplayed: recReplayed,
	}
}

// recover replays the write-ahead log: effects of committed
// transactions are redone against the data file; uncommitted effects
// never reached it (no-steal) and are simply discarded. The scan is
// bounded: the WAL open already skipped every segment the master
// record covers, and redo skips records below the last completed
// checkpoint's redoLSN (their effects are certified durable).
//
// Recovery deliberately appends nothing and takes no checkpoint: its
// write cost must stay constant so that a crash during recovery,
// repeated any number of times, always converges (each attempt leaves
// no new durable debris for the next one to clean up). The first
// regular checkpoint after open — background, manual, or the one
// Close takes — seals the replayed window instead.
func (s *Store) recover() error {
	info, haveCkpt := s.wal.LastCheckpoint()
	committed := map[uint64]bool{sysTxn: true} // system records always replay
	scanned := 0
	if err := s.wal.Records(func(rec LogRecord) {
		scanned++
		if rec.Kind == LogCommit {
			committed[rec.Txn] = true
		}
	}); err != nil {
		return err
	}
	replayed := 0
	var applyErr error
	err := s.wal.Records(func(rec LogRecord) {
		if applyErr != nil || !committed[rec.Txn] {
			return
		}
		if haveCkpt && rec.LSN < info.RedoLSN {
			return // durably applied before the checkpoint completed
		}
		switch rec.Kind {
		case LogInsert, LogUpdate, LogDelete:
			replayed++
			applyErr = s.redo(rec)
		}
	})
	if err != nil {
		return err
	}
	if applyErr != nil {
		return applyErr
	}
	s.recSegsScanned, s.recSegsSkipped = s.wal.RecoveryWindow()
	s.recRecords, s.recReplayed = scanned, replayed
	if scanned == 0 {
		// Fresh (or fully checkpointed empty) log: nothing to seal, so
		// the first checkpoint can report idle instead of running.
		s.ckptLastNext = s.wal.NextLSN()
	}
	return nil
}

func (s *Store) redo(rec LogRecord) error {
	if err := s.pager.EnsureAllocated(rec.RID.Page); err != nil {
		return err
	}
	p, err := s.pool.Pin(rec.RID.Page)
	if err != nil {
		return err
	}
	defer func() { s.pool.Unpin(rec.RID.Page, true, false) }()
	if p.LSN() >= rec.LSN {
		return nil // page already reflects this record
	}
	if rec.Txn == sysTxn {
		// System (compensation) records describe the post-abort state
		// of a slot; the pre-state at replay time may or may not carry
		// the aborted transaction's (never-replayed) effects, so they
		// apply tolerantly: delete-if-present, upsert otherwise.
		switch rec.Kind {
		case LogDelete:
			if err := p.Delete(rec.RID.Slot); err != nil && !errors.Is(err, ErrNoSuchRecord) {
				return fmt.Errorf("storage: redo sys delete %v lsn=%d: %w", rec.RID, rec.LSN, err)
			}
		case LogInsert, LogUpdate:
			if err := p.Update(rec.RID.Slot, rec.After); err != nil {
				if !errors.Is(err, ErrNoSuchRecord) {
					return fmt.Errorf("storage: redo sys upsert %v lsn=%d: %w", rec.RID, rec.LSN, err)
				}
				if err := p.InsertAt(rec.RID.Slot, rec.After); err != nil {
					return fmt.Errorf("storage: redo sys insert %v lsn=%d: %w", rec.RID, rec.LSN, err)
				}
			}
		}
		p.SetLSN(rec.LSN)
		return nil
	}
	switch rec.Kind {
	case LogInsert:
		if err := p.InsertAt(rec.RID.Slot, rec.After); err != nil {
			return fmt.Errorf("storage: redo insert %v lsn=%d: %w", rec.RID, rec.LSN, err)
		}
	case LogUpdate:
		if err := p.Update(rec.RID.Slot, rec.After); err != nil {
			return fmt.Errorf("storage: redo update %v lsn=%d: %w", rec.RID, rec.LSN, err)
		}
	case LogDelete:
		if err := p.Delete(rec.RID.Slot); err != nil {
			return fmt.Errorf("storage: redo delete %v lsn=%d: %w", rec.RID, rec.LSN, err)
		}
	}
	p.SetLSN(rec.LSN)
	return nil
}
