package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"

	"repro/internal/fault"
)

// walFrame builds a CRC-framed record with an arbitrary payload — the
// attacker's (or the crashed disk's) view of the codec: the CRC is
// always valid, so only the structural checks stand between the scan
// and a slice-bounds panic.
func walFrame(payload []byte) []byte {
	out := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	copy(out[8:], payload)
	return out
}

// payloadFor encodes the fixed record header plus explicit image
// length fields, letting tests lie about the lengths.
func payloadFor(beforeLen, afterLen uint32, before, after []byte) []byte {
	p := make([]byte, 0, recMinPayload+len(before)+len(after))
	p = binary.LittleEndian.AppendUint64(p, 7)  // lsn
	p = binary.LittleEndian.AppendUint64(p, 42) // txn
	p = append(p, byte(LogInsert))
	p = binary.LittleEndian.AppendUint32(p, 3) // page
	p = binary.LittleEndian.AppendUint16(p, 1) // slot
	p = binary.LittleEndian.AppendUint32(p, beforeLen)
	p = append(p, before...)
	p = binary.LittleEndian.AppendUint32(p, afterLen)
	p = append(p, after...)
	return p
}

// TestReadRecordRejectsStructuralCorruption pins the crash-frontier
// behavior for every malformed-but-CRC-valid shape that used to panic
// the recovery scan: short payloads, image lengths overrunning the
// payload, and an all-zero frame (the empty payload checksums to the
// zero CRC, so a zero-filled region of a torn log parses as a valid
// frame header).
func TestReadRecordRejectsStructuralCorruption(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"zero-frame", make([]byte, 64)},
		{"empty-payload", walFrame(nil)},
		{"payload-below-fixed-header", walFrame(make([]byte, recFixedLen-1))},
		{"payload-at-fixed-header-no-lengths", walFrame(make([]byte, recFixedLen))},
		{"payload-one-short-of-minimum", walFrame(make([]byte, recMinPayload-1))},
		{"before-length-overruns", walFrame(payloadFor(1<<30, 0, nil, nil))},
		{"before-length-4gib-overflow", walFrame(payloadFor(0xFFFFFFFF, 0, nil, nil))},
		{"after-length-overruns", walFrame(payloadFor(0, 9999, nil, []byte("short")))},
		{"lengths-disagree-with-payload", walFrame(payloadFor(2, 2, []byte("ab"), []byte("cdEXTRA")))},
		{"truncated-header", []byte{0xde, 0xad, 0xbe}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := readRecord(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("readRecord accepted structurally corrupt frame")
			}
			if !errors.Is(err, errBadChecksum) && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("err = %v; want errBadChecksum or EOF so the scan treats it as the crash frontier", err)
			}
		})
	}
}

// TestWALCorruptTailRecoversCleanly is the end-to-end regression: a
// log whose tail is structurally corrupt (not just torn) must open,
// surface exactly the valid prefix, and accept new appends.
func TestWALCorruptTailRecoversCleanly(t *testing.T) {
	tails := map[string][]byte{
		"zero-fill":       make([]byte, 128),
		"short-payload":   walFrame(make([]byte, 5)),
		"overlong-before": walFrame(payloadFor(1<<31, 0, nil, nil)),
		"overlong-after":  walFrame(payloadFor(0, 1<<31, nil, nil)),
		"truncated-frame": walFrame(payloadFor(3, 0, []byte("abc"), nil))[:12],
		"bad-crc":         func() []byte { f := walFrame(payloadFor(0, 3, nil, []byte("xyz"))); f[10] ^= 0xFF; return f }(),
		"garbage":         {0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04, 0x05},
	}
	for name, tail := range tails {
		t.Run(name, func(t *testing.T) {
			fs := fault.NewShadowFS()
			w, err := OpenWALFS(fs, "wal.log")
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 4; i++ {
				if _, err := w.Append(&LogRecord{Txn: 1, Kind: LogInsert, RID: RID{Page: 0, Slot: uint16(i)}, After: []byte("abc")}); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			// Append the corrupt tail directly to the file.
			f, err := fs.OpenFile("wal.log")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Seek(0, io.SeekEnd); err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tail); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}

			w2, err := OpenWALFS(fs, "wal.log")
			if err != nil {
				t.Fatalf("reopen with %s tail: %v", name, err)
			}
			defer w2.Close()
			n := 0
			if err := w2.Records(func(LogRecord) { n++ }); err != nil {
				t.Fatal(err)
			}
			if n != 4 {
				t.Fatalf("recovered %d records, want the 4-record valid prefix", n)
			}
			if _, err := w2.Append(&LogRecord{Txn: 2, Kind: LogCommit, RID: InvalidRID}); err != nil {
				t.Fatalf("append past truncated corruption: %v", err)
			}
			if err := w2.Sync(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// FuzzReadRecord fuzzes the WAL record codec: arbitrary bytes must
// never panic the reader, and every frame the reader accepts must
// re-encode to the bytes it was decoded from (the codec is its own
// round-trip oracle).
func FuzzReadRecord(f *testing.F) {
	// Seed with valid frames of each kind and the structural edge
	// cases the matrix cannot synthesize.
	for _, rec := range []*LogRecord{
		{LSN: 1, Txn: 1, Kind: LogBegin, RID: InvalidRID},
		{LSN: 2, Txn: 1, Kind: LogInsert, RID: RID{Page: 0, Slot: 0}, After: []byte("payload")},
		{LSN: 3, Txn: 1, Kind: LogUpdate, RID: RID{Page: 9, Slot: 4}, Before: []byte("old"), After: []byte("new")},
		{LSN: 4, Txn: 1, Kind: LogDelete, RID: RID{Page: 2, Slot: 7}, Before: []byte("gone")},
		{LSN: 5, Txn: 1, Kind: LogCommit, RID: InvalidRID},
	} {
		f.Add(encodeRecord(rec))
	}
	f.Add(make([]byte, 64))
	f.Add(walFrame(payloadFor(0xFFFFFFFF, 0xFFFFFFFF, nil, nil)))
	f.Add(walFrame(make([]byte, recMinPayload-1)))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := readRecord(bytes.NewReader(data))
		if err != nil {
			return
		}
		if n < 8+recMinPayload || n > int64(len(data)) {
			t.Fatalf("accepted frame length %d out of bounds (input %d)", n, len(data))
		}
		re := encodeRecord(&rec)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("round trip mismatch:\n in:  %x\n out: %x", data[:n], re)
		}
	})
}
