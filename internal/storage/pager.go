package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// Pager performs page-granular I/O against the store's data file and
// tracks the high-water mark of allocated pages.
type Pager struct {
	mu       sync.Mutex
	f        *os.File
	numPages PageID
}

// OpenPager opens (creating if necessary) the data file at path.
func OpenPager(path string) (*Pager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open data file: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat data file: %w", err)
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: data file size %d not a multiple of page size", st.Size())
	}
	return &Pager{f: f, numPages: PageID(st.Size() / PageSize)}, nil
}

// NumPages reports the number of allocated pages.
func (pg *Pager) NumPages() PageID {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	return pg.numPages
}

// Allocate extends the file by one formatted page and returns its ID.
func (pg *Pager) Allocate() (PageID, error) {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	id := pg.numPages
	var p Page
	p.InitPage()
	if _, err := pg.f.WriteAt(p.Bytes(), int64(id)*PageSize); err != nil {
		return InvalidPageID, fmt.Errorf("storage: allocate page %d: %w", id, err)
	}
	pg.numPages++
	return id, nil
}

// EnsureAllocated extends the file so that page id exists. Redo uses
// it to recreate pages allocated after the last flush.
func (pg *Pager) EnsureAllocated(id PageID) error {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	for pg.numPages <= id {
		var p Page
		p.InitPage()
		if _, err := pg.f.WriteAt(p.Bytes(), int64(pg.numPages)*PageSize); err != nil {
			return fmt.Errorf("storage: extend to page %d: %w", id, err)
		}
		pg.numPages++
	}
	return nil
}

// Read fills p with the on-disk image of page id.
func (pg *Pager) Read(id PageID, p *Page) error {
	pg.mu.Lock()
	n := pg.numPages
	pg.mu.Unlock()
	if id >= n {
		return fmt.Errorf("storage: read page %d of %d: %w", id, n, errPageOutOfRange)
	}
	if _, err := pg.f.ReadAt(p.Bytes(), int64(id)*PageSize); err != nil && err != io.EOF {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	return nil
}

// Write stores p as the on-disk image of page id.
func (pg *Pager) Write(id PageID, p *Page) error {
	if _, err := pg.f.WriteAt(p.Bytes(), int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	return nil
}

// Sync flushes the data file to stable storage.
func (pg *Pager) Sync() error { return pg.f.Sync() }

// Close syncs and closes the data file.
func (pg *Pager) Close() error {
	if err := pg.f.Sync(); err != nil {
		pg.f.Close()
		return err
	}
	return pg.f.Close()
}

var errPageOutOfRange = errors.New("storage: page out of range")
