package storage

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/fault"
)

// Pager performs page-granular I/O against the store's data file and
// tracks the high-water mark of allocated pages. All file access goes
// through a fault.File so tests can inject failures and simulate
// crashes; every I/O method consults its fault.Site* failpoint first.
type Pager struct {
	mu       sync.Mutex
	f        fault.File
	numPages PageID
}

// OpenPager opens (creating if necessary) the data file at path on
// the real filesystem.
func OpenPager(path string) (*Pager, error) {
	return OpenPagerFS(fault.OS{}, path)
}

// OpenPagerFS opens the data file at path through fs.
func OpenPagerFS(fs fault.FS, path string) (*Pager, error) {
	f, err := fs.OpenFile(path)
	if err != nil {
		return nil, fmt.Errorf("storage: open data file: %w", err)
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat data file: %w", err)
	}
	if size%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: data file size %d not a multiple of page size", size)
	}
	return &Pager{f: f, numPages: PageID(size / PageSize)}, nil
}

// NumPages reports the number of allocated pages.
func (pg *Pager) NumPages() PageID {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	return pg.numPages
}

// Allocate extends the file by one formatted page and returns its ID.
func (pg *Pager) Allocate() (PageID, error) {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	id := pg.numPages
	if fp := fault.Hit(fault.SitePagerAllocate); fp != nil {
		return InvalidPageID, fmt.Errorf("storage: allocate page %d: %w", id, fp.Err)
	}
	var p Page
	p.InitPage()
	if _, err := pg.f.WriteAt(p.Bytes(), int64(id)*PageSize); err != nil {
		return InvalidPageID, fmt.Errorf("storage: allocate page %d: %w", id, err)
	}
	pg.numPages++
	return id, nil
}

// EnsureAllocated extends the file so that page id exists. Redo uses
// it to recreate pages allocated after the last flush.
func (pg *Pager) EnsureAllocated(id PageID) error {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	for pg.numPages <= id {
		if fp := fault.Hit(fault.SitePagerAllocate); fp != nil {
			return fmt.Errorf("storage: extend to page %d: %w", id, fp.Err)
		}
		var p Page
		p.InitPage()
		if _, err := pg.f.WriteAt(p.Bytes(), int64(pg.numPages)*PageSize); err != nil {
			return fmt.Errorf("storage: extend to page %d: %w", id, err)
		}
		pg.numPages++
	}
	return nil
}

// Read fills p with the on-disk image of page id.
func (pg *Pager) Read(id PageID, p *Page) error {
	pg.mu.Lock()
	n := pg.numPages
	pg.mu.Unlock()
	if id >= n {
		return fmt.Errorf("storage: read page %d of %d: %w", id, n, errPageOutOfRange)
	}
	if fp := fault.Hit(fault.SitePagerRead); fp != nil {
		return fmt.Errorf("storage: read page %d: %w", id, fp.Err)
	}
	if _, err := pg.f.ReadAt(p.Bytes(), int64(id)*PageSize); err != nil && err != io.EOF {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	return nil
}

// Write stores p as the on-disk image of page id.
func (pg *Pager) Write(id PageID, p *Page) error {
	b := p.Bytes()
	if fp := fault.Hit(fault.SitePagerWrite); fp != nil {
		if fp.Torn >= 0 && fp.Torn < len(b) {
			// Torn write: a prefix of the page reaches the file, then
			// the device "fails". The write error below still reports
			// the injected fault; the partial image is the point.
			_, _ = pg.f.WriteAt(b[:fp.Torn], int64(id)*PageSize)
		}
		return fmt.Errorf("storage: write page %d: %w", id, fp.Err)
	}
	if _, err := pg.f.WriteAt(b, int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	return nil
}

// Sync flushes the data file to stable storage.
func (pg *Pager) Sync() error {
	if fp := fault.Hit(fault.SitePagerSync); fp != nil {
		return fmt.Errorf("storage: sync data file: %w", fp.Err)
	}
	return pg.f.Sync()
}

// Close syncs and closes the data file. The file handle is closed
// even when the sync fails, so Close never leaks a descriptor.
func (pg *Pager) Close() error {
	serr := pg.f.Sync()
	cerr := pg.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

var errPageOutOfRange = errors.New("storage: page out of range")
