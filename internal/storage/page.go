// Package storage implements the REACH storage manager, the stand-in
// for the EXODUS storage manager used by Open OODB: slotted pages, a
// pinning buffer pool with LRU eviction, a write-ahead log, and
// redo-based crash recovery under a no-steal/no-force policy.
//
// The unit of storage is an uninterpreted record addressed by a RID
// (page, slot). The object layer above encodes object identity and
// class inside the record payload.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// PageSize is the fixed size of every page, in bytes.
const PageSize = 8192

// PageID identifies a page within a store file. Pages are numbered
// from zero in allocation order.
type PageID uint32

// InvalidPageID is a PageID that never addresses a real page.
const InvalidPageID = PageID(0xFFFFFFFF)

// RID addresses a record: a page and a slot within it.
type RID struct {
	Page PageID
	Slot uint16
}

// InvalidRID is an RID that never addresses a real record.
var InvalidRID = RID{Page: InvalidPageID, Slot: 0xFFFF}

// Valid reports whether the RID could address a record.
func (r RID) Valid() bool { return r.Page != InvalidPageID }

// String implements fmt.Stringer.
func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }

// Page layout:
//
//	[0:8)   pageLSN  uint64 — LSN of the last log record applied
//	[8:10)  numSlots uint16 — number of slot entries (incl. dead ones)
//	[10:12) freeLow  uint16 — offset of the first free byte after slots
//	[12:14) freeHigh uint16 — offset of the first used byte of record data
//	[14:...)          slot array, 4 bytes per slot: offset,length uint16
//	...record data packed from the end of the page downward...
//
// A slot with offset 0xFFFF is dead (deleted); dead slots are reused
// by inserts so RIDs of live records remain stable.
const (
	pageHeaderSize = 14
	slotSize       = 4
	deadSlotOffset = 0xFFFF
)

// Errors returned by page operations.
var (
	ErrPageFull       = errors.New("storage: page full")
	ErrNoSuchRecord   = errors.New("storage: no such record")
	ErrRecordTooLarge = errors.New("storage: record exceeds page capacity")
)

// MaxRecordSize is the largest record that fits in a fresh page.
const MaxRecordSize = PageSize - pageHeaderSize - slotSize

// Page is an in-memory image of one slotted page.
type Page struct {
	buf [PageSize]byte
}

// InitPage formats p as an empty slotted page.
func (p *Page) InitPage() {
	for i := range p.buf {
		p.buf[i] = 0
	}
	p.setNumSlots(0)
	p.setFreeLow(pageHeaderSize)
	p.setFreeHigh(PageSize)
}

// Bytes exposes the raw page image (for the pager).
func (p *Page) Bytes() []byte { return p.buf[:] }

// LSN reports the page LSN, the LSN of the last log record whose
// effect the page reflects.
func (p *Page) LSN() uint64 { return binary.LittleEndian.Uint64(p.buf[0:8]) }

// SetLSN records the LSN of the last log record applied to the page.
func (p *Page) SetLSN(lsn uint64) { binary.LittleEndian.PutUint64(p.buf[0:8], lsn) }

func (p *Page) numSlots() uint16     { return binary.LittleEndian.Uint16(p.buf[8:10]) }
func (p *Page) setNumSlots(n uint16) { binary.LittleEndian.PutUint16(p.buf[8:10], n) }
func (p *Page) freeLow() uint16      { return binary.LittleEndian.Uint16(p.buf[10:12]) }
func (p *Page) setFreeLow(v uint16)  { binary.LittleEndian.PutUint16(p.buf[10:12], v) }
func (p *Page) freeHigh() uint16     { return binary.LittleEndian.Uint16(p.buf[12:14]) }
func (p *Page) setFreeHigh(v uint16) { binary.LittleEndian.PutUint16(p.buf[12:14], v) }

func (p *Page) slot(i uint16) (off, length uint16) {
	base := pageHeaderSize + int(i)*slotSize
	return binary.LittleEndian.Uint16(p.buf[base : base+2]),
		binary.LittleEndian.Uint16(p.buf[base+2 : base+4])
}

func (p *Page) setSlot(i, off, length uint16) {
	base := pageHeaderSize + int(i)*slotSize
	binary.LittleEndian.PutUint16(p.buf[base:base+2], off)
	binary.LittleEndian.PutUint16(p.buf[base+2:base+4], length)
}

// FreeSpace reports the bytes available for a new record, accounting
// for the slot entry it would need.
func (p *Page) FreeSpace() int {
	gap := int(p.freeHigh()) - int(p.freeLow()) - slotSize
	if gap < 0 {
		return 0
	}
	return gap
}

// Insert places data in the page and returns its slot. Slot numbers
// are monotone within a page: dead slots are never reused for fresh
// inserts (their data bytes are reclaimed by compaction, their 4-byte
// slot entries linger). This keeps RIDs unambiguous across crash
// recovery — a committed insert can never land on a slot another
// record occupied, so physical redo never collides with the effects
// of transactions that were still in flight at the crash.
func (p *Page) Insert(data []byte) (uint16, error) {
	if len(data) > MaxRecordSize {
		return 0, ErrRecordTooLarge
	}
	need := len(data) + slotSize
	if int(p.freeHigh())-int(p.freeLow()) < need {
		if p.compact() && int(p.freeHigh())-int(p.freeLow()) >= need {
			return p.Insert(data)
		}
		return 0, ErrPageFull
	}
	slot := p.numSlots()
	p.setNumSlots(slot + 1)
	p.setFreeLow(p.freeLow() + slotSize)
	off := p.freeHigh() - uint16(len(data))
	copy(p.buf[off:], data)
	p.setFreeHigh(off)
	p.setSlot(slot, off, uint16(len(data)))
	return slot, nil
}

// InsertAt places data at a specific slot, growing the slot array if
// needed. It is used by physical redo so that RIDs replay exactly.
func (p *Page) InsertAt(slot uint16, data []byte) error {
	if len(data) > MaxRecordSize {
		return ErrRecordTooLarge
	}
	n := p.numSlots()
	grow := 0
	if slot >= n {
		grow = int(slot-n+1) * slotSize
	} else if off, _ := p.slot(slot); off != deadSlotOffset {
		return fmt.Errorf("storage: InsertAt slot %d occupied", slot)
	}
	if int(p.freeHigh())-int(p.freeLow()) < len(data)+grow {
		if !p.compact() || int(p.freeHigh())-int(p.freeLow()) < len(data)+grow {
			return ErrPageFull
		}
	}
	if slot >= n {
		for i := n; i <= slot; i++ {
			p.setSlot(i, deadSlotOffset, 0)
		}
		p.setNumSlots(slot + 1)
		p.setFreeLow(p.freeLow() + uint16(grow))
	}
	off := p.freeHigh() - uint16(len(data))
	copy(p.buf[off:], data)
	p.setFreeHigh(off)
	p.setSlot(slot, off, uint16(len(data)))
	return nil
}

// Get returns a copy of the record in the given slot.
func (p *Page) Get(slot uint16) ([]byte, error) {
	if slot >= p.numSlots() {
		return nil, ErrNoSuchRecord
	}
	off, length := p.slot(slot)
	if off == deadSlotOffset {
		return nil, ErrNoSuchRecord
	}
	out := make([]byte, length)
	copy(out, p.buf[off:off+length])
	return out, nil
}

// Update replaces the record in slot with data, in place when it
// fits the page, reporting ErrPageFull when the page cannot hold the
// new image even after compaction.
func (p *Page) Update(slot uint16, data []byte) error {
	if slot >= p.numSlots() {
		return ErrNoSuchRecord
	}
	off, length := p.slot(slot)
	if off == deadSlotOffset {
		return ErrNoSuchRecord
	}
	if len(data) > MaxRecordSize {
		return ErrRecordTooLarge
	}
	if len(data) <= int(length) {
		copy(p.buf[off:], data)
		p.setSlot(slot, off, uint16(len(data)))
		return nil
	}
	// Mark dead, then try to place the larger image.
	p.setSlot(slot, deadSlotOffset, 0)
	if int(p.freeHigh())-int(p.freeLow()) < len(data) {
		if !p.compact() || int(p.freeHigh())-int(p.freeLow()) < len(data) {
			// Restore the old record so the caller can relocate it.
			p.setSlot(slot, off, length)
			return ErrPageFull
		}
	}
	newOff := p.freeHigh() - uint16(len(data))
	copy(p.buf[newOff:], data)
	p.setFreeHigh(newOff)
	p.setSlot(slot, newOff, uint16(len(data)))
	return nil
}

// Delete removes the record in slot. The slot becomes dead and its
// index may be reused by a later insert.
func (p *Page) Delete(slot uint16) error {
	if slot >= p.numSlots() {
		return ErrNoSuchRecord
	}
	off, _ := p.slot(slot)
	if off == deadSlotOffset {
		return ErrNoSuchRecord
	}
	p.setSlot(slot, deadSlotOffset, 0)
	return nil
}

// NumRecords reports the number of live records in the page.
func (p *Page) NumRecords() int {
	n := 0
	for i := uint16(0); i < p.numSlots(); i++ {
		if off, _ := p.slot(i); off != deadSlotOffset {
			n++
		}
	}
	return n
}

// Slots calls fn for every live record in the page.
func (p *Page) Slots(fn func(slot uint16, data []byte)) {
	for i := uint16(0); i < p.numSlots(); i++ {
		off, length := p.slot(i)
		if off == deadSlotOffset {
			continue
		}
		fn(i, p.buf[off:off+length])
	}
}

// compact repacks live records to the end of the page, reclaiming the
// holes left by deletes and in-place shrinks. It reports whether any
// byte was reclaimed.
func (p *Page) compact() bool {
	type rec struct {
		slot uint16
		data []byte
	}
	var live []rec
	for i := uint16(0); i < p.numSlots(); i++ {
		off, length := p.slot(i)
		if off == deadSlotOffset {
			continue
		}
		d := make([]byte, length)
		copy(d, p.buf[off:off+length])
		live = append(live, rec{i, d})
	}
	before := p.freeHigh()
	high := uint16(PageSize)
	for _, r := range live {
		high -= uint16(len(r.data))
		copy(p.buf[high:], r.data)
		p.setSlot(r.slot, high, uint16(len(r.data)))
	}
	p.setFreeHigh(high)
	return high > before
}
