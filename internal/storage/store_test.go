package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func openTestStore(t testing.TB, opts Options) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, dir
}

func TestStoreInsertGet(t *testing.T) {
	s, _ := openTestStore(t, Options{})
	defer s.Close()
	if err := s.Begin(1); err != nil {
		t.Fatal(err)
	}
	rid, err := s.Insert(1, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(rid)
	if err != nil || !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := s.Commit(1); err != nil {
		t.Fatal(err)
	}
}

func TestStoreUnknownTxn(t *testing.T) {
	s, _ := openTestStore(t, Options{})
	defer s.Close()
	if _, err := s.Insert(99, []byte("x")); err == nil {
		t.Fatal("Insert with unknown txn succeeded")
	}
	if err := s.Commit(99); err == nil {
		t.Fatal("Commit of unknown txn succeeded")
	}
}

func TestStoreUpdateDeleteVisible(t *testing.T) {
	s, _ := openTestStore(t, Options{})
	defer s.Close()
	s.Begin(1)
	rid, _ := s.Insert(1, []byte("v1"))
	rid2, err := s.Update(1, rid, []byte("v2"))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get(rid2)
	if !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("after update: %q", got)
	}
	if err := s.Delete(1, rid2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(rid2); err == nil {
		t.Fatal("Get after delete succeeded")
	}
	s.Commit(1)
}

func TestStoreAbortRollsBack(t *testing.T) {
	s, _ := openTestStore(t, Options{})
	defer s.Close()
	s.Begin(1)
	keep, _ := s.Insert(1, []byte("keep"))
	s.Commit(1)

	s.Begin(2)
	gone, _ := s.Insert(2, []byte("gone"))
	if _, err := s.Update(2, keep, []byte("KEEP-MUTATED")); err != nil {
		t.Fatal(err)
	}
	reloc, err := s.Abort(2)
	if err != nil {
		t.Fatal(err)
	}
	if nr, ok := reloc[keep]; ok {
		keep = nr
	}
	if _, err := s.Get(gone); err == nil {
		t.Fatal("aborted insert still visible")
	}
	got, err := s.Get(keep)
	if err != nil || !bytes.Equal(got, []byte("keep")) {
		t.Fatalf("after abort Get(keep) = %q, %v; want keep", got, err)
	}
}

func TestStoreAbortRestoresDelete(t *testing.T) {
	s, _ := openTestStore(t, Options{})
	defer s.Close()
	s.Begin(1)
	rid, _ := s.Insert(1, []byte("precious"))
	s.Commit(1)

	s.Begin(2)
	if err := s.Delete(2, rid); err != nil {
		t.Fatal(err)
	}
	reloc, err := s.Abort(2)
	if err != nil {
		t.Fatal(err)
	}
	if nr, ok := reloc[rid]; ok {
		rid = nr
	}
	got, err := s.Get(rid)
	if err != nil || !bytes.Equal(got, []byte("precious")) {
		t.Fatalf("after abort of delete: %q, %v", got, err)
	}
}

func TestStoreRecoveryCommittedSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Begin(1)
	var rids []RID
	for i := 0; i < 100; i++ {
		rid, err := s.Insert(1, []byte(fmt.Sprintf("rec-%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := s.Commit(1); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: close WAL file descriptors without
	// checkpointing (dirty pages are NOT flushed).
	s.wal.Close()
	s.pager.f.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i, rid := range rids {
		got, err := s2.Get(rid)
		if err != nil {
			t.Fatalf("after recovery Get(%v): %v", rid, err)
		}
		if want := fmt.Sprintf("rec-%03d", i); string(got) != want {
			t.Fatalf("after recovery Get(%v) = %q, want %q", rid, got, want)
		}
	}
}

func TestStoreRecoveryUncommittedDiscarded(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Begin(1)
	committed, _ := s.Insert(1, []byte("committed"))
	s.Commit(1)
	s.Begin(2)
	uncommitted, _ := s.Insert(2, []byte("uncommitted"))
	s.wal.Sync() // ops are on the log, but no commit record
	// Crash.
	s.wal.Close()
	s.pager.f.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, err := s2.Get(committed); err != nil || !bytes.Equal(got, []byte("committed")) {
		t.Fatalf("committed record lost: %q, %v", got, err)
	}
	if _, err := s2.Get(uncommitted); err == nil {
		t.Fatal("uncommitted record survived recovery")
	}
}

func TestStoreRecoveryInterleavedTxns(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Begin(1)
	s.Begin(2)
	a, _ := s.Insert(1, []byte("a1"))
	b, _ := s.Insert(2, []byte("b1")) // same page, uncommitted txn
	c, _ := s.Insert(1, []byte("c1"))
	s.Commit(1)
	_ = b
	s.wal.Sync()
	s.wal.Close()
	s.pager.f.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, err := s2.Get(a); err != nil || !bytes.Equal(got, []byte("a1")) {
		t.Fatalf("Get(a) = %q, %v", got, err)
	}
	if got, err := s2.Get(c); err != nil || !bytes.Equal(got, []byte("c1")) {
		t.Fatalf("Get(c) = %q, %v", got, err)
	}
	if _, err := s2.Get(b); err == nil {
		t.Fatal("uncommitted interleaved record survived")
	}
}

func TestStoreCheckpointBoundsReplayWindow(t *testing.T) {
	s, _ := openTestStore(t, Options{})
	defer s.Close()
	s.Begin(1)
	for i := 0; i < 50; i++ {
		s.Insert(1, make([]byte, 100))
	}
	s.Commit(1)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Everything before the checkpoint is covered: the replay window
	// holds only the checkpoint protocol records themselves.
	n := 0
	s.wal.Records(func(r LogRecord) {
		n++
		if r.Kind != LogCkptBegin && r.Kind != LogCkptEnd {
			t.Fatalf("replay window still holds %v record (LSN %d)", r.Kind, r.LSN)
		}
	})
	if n != 2 {
		t.Fatalf("WAL has %d records after checkpoint, want 2 (begin+end)", n)
	}
	info, ok := s.wal.LastCheckpoint()
	if !ok || info.RedoLSN == 0 || info.EndLSN <= info.BeginLSN {
		t.Fatalf("LastCheckpoint = %+v/%v", info, ok)
	}
}

// TestStoreCheckpointWithActiveTxn is the starvation regression: a
// transaction held open across several checkpoints must not block or
// fail them (the old checkpoint refused with ErrTxnActive, so one
// long-lived writer starved log reclamation forever), and recovery
// after a crash must still deliver exactly the committed data.
func TestStoreCheckpointWithActiveTxn(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{WALSegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	s.Begin(1)
	held, _ := s.Insert(1, []byte("held-open")) // txn 1 stays open throughout
	var committed []RID
	for i := 0; i < 3; i++ {
		txn := uint64(10 + i)
		s.Begin(txn)
		rid, _ := s.Insert(txn, []byte(fmt.Sprintf("committed-%d", i)))
		committed = append(committed, rid)
		if err := s.Commit(txn); err != nil {
			t.Fatal(err)
		}
		if err := s.Checkpoint(); err != nil {
			t.Fatalf("checkpoint %d with txn 1 active: %v", i, err)
		}
		// The held-open transaction pins redo: recovery must still see
		// its records to decide its fate.
		info, ok := s.wal.LastCheckpoint()
		if !ok || info.RedoLSN > s.active[1].firstLSN {
			t.Fatalf("checkpoint %d: redoLSN %d past active txn firstLSN %d",
				i, info.RedoLSN, s.active[1].firstLSN)
		}
	}
	h := s.CheckpointHealth()
	if h.Checkpoints < 3 || h.Failures != 0 || h.Degraded {
		t.Fatalf("health after 3 checkpoints = %+v", h)
	}
	// Crash with txn 1 still open: its insert must not survive.
	s.wal.Sync()
	s.wal.Close()
	s.pager.f.Close()

	s2, err := Open(dir, Options{WALSegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i, rid := range committed {
		if got, err := s2.Get(rid); err != nil || !bytes.Equal(got, []byte(fmt.Sprintf("committed-%d", i))) {
			t.Fatalf("Get(committed[%d]) = %q, %v", i, got, err)
		}
	}
	if _, err := s2.Get(held); err == nil {
		t.Fatal("record of transaction open at crash survived recovery")
	}
}

func TestStoreScan(t *testing.T) {
	s, _ := openTestStore(t, Options{})
	defer s.Close()
	s.Begin(1)
	want := map[RID]string{}
	for i := 0; i < 20; i++ {
		data := fmt.Sprintf("record-%d", i)
		rid, _ := s.Insert(1, []byte(data))
		want[rid] = data
	}
	s.Commit(1)
	got := map[RID]string{}
	if err := s.Scan(func(rid RID, data []byte) { got[rid] = string(data) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("Scan found %d records, want %d", len(got), len(want))
	}
	for rid, v := range want {
		if got[rid] != v {
			t.Fatalf("Scan[%v] = %q, want %q", rid, got[rid], v)
		}
	}
}

func TestStoreLargeRecordRelocation(t *testing.T) {
	s, _ := openTestStore(t, Options{})
	defer s.Close()
	s.Begin(1)
	// Fill a page almost completely, then grow one record so it must move.
	small, _ := s.Insert(1, make([]byte, 100))
	filler, _ := s.Insert(1, make([]byte, 7800))
	_ = filler
	big := make([]byte, 3000)
	for i := range big {
		big[i] = 0x5A
	}
	newRID, err := s.Update(1, small, big)
	if err != nil {
		t.Fatal(err)
	}
	if newRID == small {
		t.Fatal("expected relocation to a new RID")
	}
	got, err := s.Get(newRID)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("relocated record wrong: len=%d err=%v", len(got), err)
	}
	if _, err := s.Get(small); err == nil {
		t.Fatal("old RID still live after relocation")
	}
	s.Commit(1)
}

func TestStoreBufferPoolEviction(t *testing.T) {
	s, _ := openTestStore(t, Options{BufferPoolPages: 4})
	defer s.Close()
	s.Begin(1)
	var rids []RID
	for i := 0; i < 40; i++ { // ~40 pages of 8K records
		rid, err := s.Insert(1, make([]byte, 7000))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	s.Commit(1)
	// After commit the first batch is evictable; a second batch of
	// inserts churns it out of the 4-frame pool.
	s.Begin(2)
	for i := 0; i < 40; i++ {
		if _, err := s.Insert(2, make([]byte, 7000)); err != nil {
			t.Fatal(err)
		}
	}
	s.Commit(2)
	for _, rid := range rids {
		if _, err := s.Get(rid); err != nil {
			t.Fatalf("Get(%v) after eviction churn: %v", rid, err)
		}
	}
	st := s.Stats()
	if st.BufferMiss == 0 {
		t.Fatal("expected buffer misses with a 4-page pool")
	}
	if s.pool.Len() > 45 {
		t.Fatalf("pool grew unboundedly: %d frames", s.pool.Len())
	}
}

func TestStoreStats(t *testing.T) {
	s, _ := openTestStore(t, Options{})
	defer s.Close()
	s.Begin(1)
	s.Insert(1, []byte("x"))
	st := s.Stats()
	if st.ActiveTxns != 1 {
		t.Fatalf("ActiveTxns = %d, want 1", st.ActiveTxns)
	}
	s.Commit(1)
	st = s.Stats()
	if st.ActiveTxns != 0 {
		t.Fatalf("ActiveTxns after commit = %d, want 0", st.ActiveTxns)
	}
	if st.Pages == 0 {
		t.Fatal("Pages = 0 after an insert")
	}
}

// TestStoreRandomCrashRecovery drives random committed/aborted/crashed
// transactions and verifies the recovered store matches the model.
func TestStoreRandomCrashRecovery(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			s, err := Open(dir, Options{BufferPoolPages: 8})
			if err != nil {
				t.Fatal(err)
			}
			model := map[RID][]byte{} // expected post-recovery contents
			// busy marks records touched by transactions left in
			// flight: the store requires the caller (normally the lock
			// manager) to keep conflicting transactions off them.
			busy := map[RID]bool{}
			txn := uint64(0)
			for round := 0; round < 30; round++ {
				txn++
				s.Begin(txn)
				pending := map[RID][]byte{}
				tombstone := map[RID]bool{}
				for op := 0; op < 10; op++ {
					data := make([]byte, 10+rng.Intn(300))
					rng.Read(data)
					rid, err := s.Insert(txn, data)
					if err != nil {
						t.Fatal(err)
					}
					pending[rid] = data
				}
				// Occasionally mutate a committed record.
				for rid := range model {
					if busy[rid] {
						continue
					}
					if rng.Intn(4) == 0 {
						data := make([]byte, 10+rng.Intn(300))
						rng.Read(data)
						nr, err := s.Update(txn, rid, data)
						if err != nil {
							t.Fatal(err)
						}
						tombstone[rid] = true
						pending[nr] = data
					}
					break
				}
				switch rng.Intn(3) {
				case 0: // commit
					if err := s.Commit(txn); err != nil {
						t.Fatal(err)
					}
					for rid := range tombstone {
						delete(model, rid)
					}
					for rid, d := range pending {
						model[rid] = d
					}
				case 1: // abort
					reloc, err := s.Abort(txn)
					if err != nil {
						t.Fatal(err)
					}
					remapped := map[RID][]byte{}
					for rid, d := range model {
						if nr, ok := reloc[rid]; ok {
							remapped[nr] = d
						} else {
							remapped[rid] = d
						}
					}
					model = remapped
				case 2: // leave in flight (lost at crash)
					s.wal.Sync()
					for rid := range tombstone {
						busy[rid] = true
					}
				}
			}
			// Crash.
			s.wal.Close()
			s.pager.f.Close()

			s2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			for rid, want := range model {
				got, err := s2.Get(rid)
				if err != nil {
					t.Fatalf("Get(%v): %v", rid, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("Get(%v) mismatch after recovery", rid)
				}
			}
			// And nothing extra beyond in-flight leftovers: count live records.
			live := 0
			s2.Scan(func(rid RID, data []byte) {
				if want, ok := model[rid]; ok && bytes.Equal(want, data) {
					live++
				} else {
					t.Fatalf("unexpected surviving record at %v", rid)
				}
			})
			if live != len(model) {
				t.Fatalf("recovered %d records, want %d", live, len(model))
			}
		})
	}
}
