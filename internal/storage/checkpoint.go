package storage

import (
	"errors"
	"time"

	"repro/internal/clock"
)

// CheckpointOptions configure fuzzy checkpointing and the background
// checkpointer. The zero value leaves the background goroutine off;
// Checkpoint can always be called manually.
type CheckpointOptions struct {
	// Auto starts the background checkpointer goroutine.
	Auto bool
	// Interval is the age trigger: a checkpoint runs when this long has
	// passed since the last one, even if the byte trigger never fired.
	// Zero selects 30s.
	Interval time.Duration
	// WALBytes is the byte trigger: once this many bytes have been
	// appended to the log since the last checkpoint, one is scheduled.
	// Zero selects 8 MiB.
	WALBytes int64
	// DegradedAfter is how many consecutive checkpoint failures flip
	// the store's health to degraded. Zero selects 3.
	DegradedAfter int
	// Backoff is the base retry delay after a failed checkpoint; it
	// doubles per consecutive failure up to 8x. Zero selects 1s.
	Backoff time.Duration
	// Clock paces the background checkpointer; nil selects the real
	// clock. Tests inject a virtual clock.
	Clock clock.Clock
}

func (o CheckpointOptions) withDefaults() CheckpointOptions {
	if o.Interval <= 0 {
		o.Interval = 30 * time.Second
	}
	if o.WALBytes <= 0 {
		o.WALBytes = 8 << 20
	}
	if o.DegradedAfter <= 0 {
		o.DegradedAfter = 3
	}
	if o.Backoff <= 0 {
		o.Backoff = time.Second
	}
	if o.Clock == nil {
		o.Clock = clock.NewReal()
	}
	return o
}

// errCkptIdle is the internal "nothing to do" outcome: the log has not
// grown since the last completed checkpoint. It never escapes
// Checkpoint and never touches the health state.
var errCkptIdle = errors.New("storage: checkpoint idle")

// Checkpoint takes a fuzzy (ARIES-style) checkpoint: it runs online,
// with transactions in flight, and never blocks on them.
//
//	rotate     seal the active WAL segment so prior records are prunable
//	begin      log CKPT-BEGIN carrying the active-transaction table
//	flush      write back every dirty, steal-safe page concurrently with
//	           mutators (log-ahead: each page's records are forced first)
//	end        log CKPT-END carrying redoLSN = min(beginLSN, first LSN of
//	           each active txn, recLSN of each still-dirty page); force it
//	master     point the side master record at the segment holding
//	           redoLSN; prune fully covered segments
//
// On success recovery redo starts at redoLSN and reads only segments
// from the master's start, bounding restart work. A failure at any
// step leaves the log intact — the checkpoint reports failed, health
// accounting runs (repeated failures surface as a degraded store in
// Stats), and the next attempt simply retries. Checkpoint failures
// never poison a healthy store.
func (s *Store) Checkpoint() error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	stop := s.ckptDur.Time()
	err := s.checkpointOnce()
	stop()
	if errors.Is(err, errCkptIdle) {
		return nil
	}
	s.noteCheckpoint(err)
	return err
}

// checkpointOnce runs one checkpoint attempt; the caller holds ckptMu.
func (s *Store) checkpointOnce() error {
	s.mu.Lock()
	if s.poison != nil {
		s.mu.Unlock()
		return s.poison
	}
	if s.wal.NextLSN() == s.ckptLastNext {
		s.mu.Unlock()
		return errCkptIdle
	}
	// Seal the active segment first: everything logged before this
	// checkpoint then sits in sealed segments, which become prunable
	// the moment redoLSN passes them.
	if err := s.wal.Rotate(); err != nil {
		s.mu.Unlock()
		return err
	}
	att := make(map[uint64]uint64, len(s.active)+len(s.forcing))
	for id, st := range s.active {
		att[id] = st.firstLSN
	}
	for id, st := range s.forcing {
		// A forcing transaction's commit record is not yet known
		// durable; treat it as active so redo can still decide its fate.
		att[id] = st.firstLSN
	}
	beginLSN, err := s.wal.Append(&LogRecord{
		Txn: sysTxn, Kind: LogCkptBegin, RID: InvalidRID, After: encodeATT(att),
	})
	s.mu.Unlock()
	if err != nil {
		return err
	}
	flushed, err := s.flushDirtyFuzzy()
	if err != nil {
		return err
	}
	if err := s.pager.Sync(); err != nil {
		flushed(false)
		return err
	}
	flushed(true)
	redo := beginLSN
	for _, first := range att {
		if first != 0 && first < redo {
			redo = first
		}
	}
	// Pages still dirty (redirtied during the flush, or whose write
	// failed to stick) pin redo down to their earliest unflushed record.
	if m := s.pool.MinDirtyRecLSN(); m != 0 && m < redo {
		redo = m
	}
	s.mu.Lock()
	if s.poison != nil {
		s.mu.Unlock()
		return s.poison
	}
	info := CheckpointInfo{RedoLSN: redo, BeginLSN: beginLSN}
	endLSN, err := s.wal.Append(&LogRecord{
		Txn: sysTxn, Kind: LogCkptEnd, RID: InvalidRID, After: encodeCkptEnd(info),
	})
	s.mu.Unlock()
	if err != nil {
		return err
	}
	// The end record must be durable before the master may point at it:
	// a CKPT-END found on disk certifies that every page flush above
	// completed (they happened strictly before this force).
	if err := s.wal.Sync(); err != nil {
		return err
	}
	info.EndLSN = endLSN
	if err := s.wal.CompleteCheckpoint(info); err != nil {
		return err
	}
	s.mu.Lock()
	s.ckptLastNext = s.wal.NextLSN()
	s.ckptBaseBytes = s.wal.AppendedBytes()
	s.lastCkpt = info
	s.mu.Unlock()
	return nil
}

// flushDirtyFuzzy writes every dirty, steal-safe page back to the data
// file while mutators keep running. Per page: snapshot the bytes under
// the store mutex (a consistent image), force the log past every
// record the image reflects (WAL-ahead-of-data — required when commits
// run without fsync), then write the copy off-lock. On success it
// returns a finish callback the caller invokes after the pager fsync:
// finish(true) clears the dirty flag of every written frame iff nobody
// redirtied it meanwhile; finish(false) keeps them all dirty for the
// next attempt.
func (s *Store) flushDirtyFuzzy() (func(written bool), error) {
	ids := s.pool.DirtyIDs()
	type flushedFrame struct {
		id  PageID
		ver uint64
	}
	done := make([]flushedFrame, 0, len(ids))
	finish := func(written bool) {
		for _, fl := range done {
			s.pool.EndFlush(fl.id, fl.ver, written)
		}
	}
	var buf Page
	for _, id := range ids {
		s.mu.Lock()
		ver, ok := s.pool.SnapshotFrame(id, &buf)
		frontier := s.wal.NextLSN() - 1
		s.mu.Unlock()
		if !ok {
			continue // evicted, cleaned, or re-protected since the snapshot
		}
		if err := s.wal.SyncTo(frontier); err != nil {
			s.pool.EndFlush(id, ver, false)
			finish(false)
			return nil, err
		}
		if err := s.pager.Write(id, &buf); err != nil {
			s.pool.EndFlush(id, ver, false)
			finish(false)
			return nil, err
		}
		done = append(done, flushedFrame{id, ver})
	}
	return finish, nil
}

// noteCheckpoint folds one attempt's outcome into the health state.
func (s *Store) noteCheckpoint(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err == nil {
		s.ckptOK.Inc()
		s.ckptConsecFails = 0
		s.ckptLastErr = ""
		if s.ckptDegradedFlag {
			s.ckptDegradedFlag = false
			s.ckptDegraded.Set(0)
		}
		return
	}
	s.ckptErr.Inc()
	s.ckptConsecFails++
	s.ckptLastErr = err.Error()
	if s.ckptConsecFails >= s.copts.DegradedAfter && !s.ckptDegradedFlag {
		s.ckptDegradedFlag = true
		s.ckptDegraded.Set(1)
	}
}

// CheckpointLag reports how many WAL bytes have accumulated since the
// last completed checkpoint, alongside the configured byte trigger.
// Lag well past the trigger means the checkpointer is falling behind
// the write rate — the storage backpressure signal the overload
// governor turns into a degraded health state before the WAL-growth
// bound trips.
func (s *Store) CheckpointLag() (lag, trigger int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(s.wal.AppendedBytes() - s.ckptBaseBytes), s.copts.WALBytes
}

// maybeTriggerCheckpoint nudges the background checkpointer when the
// log has grown past the byte trigger since the last checkpoint. The
// send never blocks: a full notify channel means a run is already due.
func (s *Store) maybeTriggerCheckpoint() {
	if s.ckptNotify == nil {
		return
	}
	s.mu.Lock()
	due := s.wal.AppendedBytes()-s.ckptBaseBytes >= uint64(s.copts.WALBytes)
	s.mu.Unlock()
	if !due {
		return
	}
	select {
	case s.ckptNotify <- struct{}{}:
	default:
	}
}

// checkpointLoop is the background checkpointer: it fires on the byte
// trigger (via maybeTriggerCheckpoint), on the age interval, and backs
// off exponentially while checkpoints fail so a sick disk is not
// hammered. Close stops it before closing any file.
func (s *Store) checkpointLoop() {
	defer close(s.ckptDone)
	var backoff time.Duration
	for {
		wait := s.copts.Interval
		if backoff > 0 {
			wait = backoff
		}
		select {
		case <-s.ckptStop:
			return
		case <-s.ckptNotify:
		case <-s.copts.Clock.After(wait):
		}
		err := s.Checkpoint()
		switch {
		case err == nil:
			backoff = 0
		case errors.Is(err, ErrInDoubt):
			// The store is poisoned; only reopening can fix it. Hold at
			// the maximum backoff instead of spinning.
			backoff = 8 * s.copts.Backoff
		case backoff == 0:
			backoff = s.copts.Backoff
		case backoff < 8*s.copts.Backoff:
			backoff *= 2
		}
	}
}

// stopCheckpointer halts the background checkpointer and waits for it
// to exit. Idempotent; a no-op when the checkpointer never started.
func (s *Store) stopCheckpointer() {
	if s.ckptStop == nil {
		return
	}
	s.ckptStopOnce.Do(func() {
		close(s.ckptStop)
		<-s.ckptDone
	})
}

// CheckpointHealth is the durability health surface: totals, the
// consecutive-failure streak, and the degraded flag that flips after
// CheckpointOptions.DegradedAfter straight failures.
type CheckpointHealth struct {
	Checkpoints         uint64 `json:"checkpoints"`
	Failures            uint64 `json:"failures"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Degraded            bool   `json:"degraded"`
	LastError           string `json:"last_error,omitempty"`
	LastRedoLSN         uint64 `json:"last_redo_lsn"`
	LastEndLSN          uint64 `json:"last_end_lsn"`
}

// CheckpointHealth reports the checkpoint health snapshot.
func (s *Store) CheckpointHealth() CheckpointHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	return CheckpointHealth{
		Checkpoints:         s.ckptOK.Value(),
		Failures:            s.ckptErr.Value(),
		ConsecutiveFailures: s.ckptConsecFails,
		Degraded:            s.ckptDegradedFlag,
		LastError:           s.ckptLastErr,
		LastRedoLSN:         s.lastCkpt.RedoLSN,
		LastEndLSN:          s.lastCkpt.EndLSN,
	}
}
