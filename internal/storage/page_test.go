package storage

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPageInsertGet(t *testing.T) {
	var p Page
	p.InitPage()
	slot, err := p.Insert([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Get(slot)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("Get = %q, want hello", got)
	}
}

func TestPageGetMissing(t *testing.T) {
	var p Page
	p.InitPage()
	if _, err := p.Get(0); err != ErrNoSuchRecord {
		t.Fatalf("Get(0) err = %v, want ErrNoSuchRecord", err)
	}
	slot, _ := p.Insert([]byte("x"))
	if err := p.Delete(slot); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(slot); err != ErrNoSuchRecord {
		t.Fatalf("Get(deleted) err = %v, want ErrNoSuchRecord", err)
	}
	if err := p.Delete(slot); err != ErrNoSuchRecord {
		t.Fatalf("double Delete err = %v, want ErrNoSuchRecord", err)
	}
}

func TestPageDeleteDoesNotReuseSlot(t *testing.T) {
	// Slot numbers are monotone: a freed slot is never handed to a
	// fresh insert, so RIDs stay unambiguous across crash recovery.
	var p Page
	p.InitPage()
	s0, _ := p.Insert([]byte("aaa"))
	s1, _ := p.Insert([]byte("bbb"))
	if err := p.Delete(s0); err != nil {
		t.Fatal(err)
	}
	s2, err := p.Insert([]byte("ccc"))
	if err != nil {
		t.Fatal(err)
	}
	if s2 == s0 {
		t.Fatalf("fresh insert reused dead slot %d", s0)
	}
	if s2 != s1+1 {
		t.Fatalf("slot = %d, want monotone %d", s2, s1+1)
	}
	got, _ := p.Get(s1)
	if !bytes.Equal(got, []byte("bbb")) {
		t.Fatalf("neighbor record corrupted: %q", got)
	}
	// InsertAt (redo/undo path) may still repopulate the dead slot.
	if err := p.InsertAt(s0, []byte("restored")); err != nil {
		t.Fatal(err)
	}
	got, _ = p.Get(s0)
	if !bytes.Equal(got, []byte("restored")) {
		t.Fatalf("InsertAt on dead slot: %q", got)
	}
}

func TestPageUpdateInPlace(t *testing.T) {
	var p Page
	p.InitPage()
	slot, _ := p.Insert([]byte("abcdef"))
	if err := p.Update(slot, []byte("xy")); err != nil {
		t.Fatal(err)
	}
	got, _ := p.Get(slot)
	if !bytes.Equal(got, []byte("xy")) {
		t.Fatalf("after shrink update: %q", got)
	}
	if err := p.Update(slot, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	got, _ = p.Get(slot)
	if !bytes.Equal(got, []byte("0123456789")) {
		t.Fatalf("after grow update: %q", got)
	}
}

func TestPageFull(t *testing.T) {
	var p Page
	p.InitPage()
	rec := make([]byte, 1000)
	n := 0
	for {
		if _, err := p.Insert(rec); err != nil {
			if err != ErrPageFull {
				t.Fatalf("err = %v, want ErrPageFull", err)
			}
			break
		}
		n++
	}
	if n != 8 { // 8*1000 records + 8*4 slots fit in 8192-14
		t.Fatalf("fit %d x 1000-byte records, want 8", n)
	}
}

func TestPageRecordTooLarge(t *testing.T) {
	var p Page
	p.InitPage()
	if _, err := p.Insert(make([]byte, MaxRecordSize+1)); err != ErrRecordTooLarge {
		t.Fatalf("err = %v, want ErrRecordTooLarge", err)
	}
	if _, err := p.Insert(make([]byte, MaxRecordSize)); err != nil {
		t.Fatalf("max-size insert failed: %v", err)
	}
}

func TestPageCompactionReclaimsSpace(t *testing.T) {
	var p Page
	p.InitPage()
	rec := make([]byte, 1000)
	var slots []uint16
	for i := 0; i < 8; i++ {
		s, err := p.Insert(rec)
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	// Free two middle records, then insert one 1900-byte record that
	// only fits if the page compacts the two 1000-byte holes together.
	p.Delete(slots[2])
	p.Delete(slots[5])
	big := make([]byte, 1900)
	for i := range big {
		big[i] = byte(i)
	}
	s, err := p.Insert(big)
	if err != nil {
		t.Fatalf("insert after frees: %v", err)
	}
	got, _ := p.Get(s)
	if !bytes.Equal(got, big) {
		t.Fatal("compaction corrupted inserted record")
	}
	for _, keep := range []uint16{slots[0], slots[1], slots[3], slots[4], slots[6], slots[7]} {
		if _, err := p.Get(keep); err != nil {
			t.Fatalf("compaction lost record in slot %d: %v", keep, err)
		}
	}
}

func TestPageInsertAtExactSlot(t *testing.T) {
	var p Page
	p.InitPage()
	if err := p.InsertAt(3, []byte("redo")); err != nil {
		t.Fatal(err)
	}
	got, err := p.Get(3)
	if err != nil || !bytes.Equal(got, []byte("redo")) {
		t.Fatalf("Get(3) = %q, %v", got, err)
	}
	// Slots 0..2 must exist but be dead.
	for s := uint16(0); s < 3; s++ {
		if _, err := p.Get(s); err != ErrNoSuchRecord {
			t.Fatalf("Get(%d) err = %v, want ErrNoSuchRecord", s, err)
		}
	}
	if err := p.InsertAt(3, []byte("again")); err == nil {
		t.Fatal("InsertAt occupied slot succeeded")
	}
	if err := p.InsertAt(1, []byte("fill")); err != nil {
		t.Fatalf("InsertAt dead slot: %v", err)
	}
}

func TestPageLSN(t *testing.T) {
	var p Page
	p.InitPage()
	if p.LSN() != 0 {
		t.Fatalf("fresh page LSN = %d, want 0", p.LSN())
	}
	p.SetLSN(42)
	if p.LSN() != 42 {
		t.Fatalf("LSN = %d, want 42", p.LSN())
	}
	// LSN must survive record operations.
	s, _ := p.Insert([]byte("x"))
	p.Delete(s)
	if p.LSN() != 42 {
		t.Fatalf("LSN after ops = %d, want 42", p.LSN())
	}
}

// Property: a random interleaving of inserts, deletes and updates
// never corrupts surviving records.
func TestPageRandomOpsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var p Page
		p.InitPage()
		live := make(map[uint16][]byte)
		for op := 0; op < 300; op++ {
			switch rng.Intn(3) {
			case 0: // insert
				data := make([]byte, 1+rng.Intn(200))
				rng.Read(data)
				slot, err := p.Insert(data)
				if err == ErrPageFull {
					continue
				}
				if err != nil {
					return false
				}
				live[slot] = data
			case 1: // delete
				for slot := range live {
					if err := p.Delete(slot); err != nil {
						return false
					}
					delete(live, slot)
					break
				}
			case 2: // update
				for slot := range live {
					data := make([]byte, 1+rng.Intn(200))
					rng.Read(data)
					err := p.Update(slot, data)
					if err == ErrPageFull {
						break
					}
					if err != nil {
						return false
					}
					live[slot] = data
					break
				}
			}
			// Verify all live records.
			for slot, want := range live {
				got, err := p.Get(slot)
				if err != nil || !bytes.Equal(got, want) {
					return false
				}
			}
			if p.NumRecords() != len(live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPageSlotsIteration(t *testing.T) {
	var p Page
	p.InitPage()
	want := map[uint16]string{}
	for i := 0; i < 5; i++ {
		s, _ := p.Insert([]byte{byte('a' + i)})
		want[s] = string([]byte{byte('a' + i)})
	}
	p.Delete(2)
	delete(want, 2)
	got := map[uint16]string{}
	p.Slots(func(slot uint16, data []byte) { got[slot] = string(data) })
	if len(got) != len(want) {
		t.Fatalf("Slots visited %d records, want %d", len(got), len(want))
	}
	for s, v := range want {
		if got[s] != v {
			t.Fatalf("slot %d = %q, want %q", s, got[s], v)
		}
	}
}
