package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
)

func openTestWAL(t *testing.T) (*WAL, string) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	return w, path
}

func TestWALAppendAssignsMonotoneLSNs(t *testing.T) {
	w, _ := openTestWAL(t)
	defer w.Close()
	var prev uint64
	for i := 0; i < 10; i++ {
		lsn, err := w.Append(&LogRecord{Txn: 1, Kind: LogInsert, RID: RID{Page: 0, Slot: uint16(i)}, After: []byte("x")})
		if err != nil {
			t.Fatal(err)
		}
		if lsn <= prev {
			t.Fatalf("LSN %d not > previous %d", lsn, prev)
		}
		prev = lsn
	}
}

func TestWALRoundTrip(t *testing.T) {
	w, path := openTestWAL(t)
	recs := []LogRecord{
		{Txn: 7, Kind: LogBegin, RID: InvalidRID},
		{Txn: 7, Kind: LogInsert, RID: RID{Page: 3, Slot: 1}, After: []byte("after-image")},
		{Txn: 7, Kind: LogUpdate, RID: RID{Page: 3, Slot: 1}, Before: []byte("after-image"), After: []byte("newer")},
		{Txn: 7, Kind: LogDelete, RID: RID{Page: 3, Slot: 1}, Before: []byte("newer")},
		{Txn: 7, Kind: LogCommit, RID: InvalidRID},
	}
	for i := range recs {
		if _, err := w.Append(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	var got []LogRecord
	if err := w2.Records(func(r LogRecord) { got = append(got, r) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		want := recs[i]
		if r.Txn != want.Txn || r.Kind != want.Kind || r.RID != want.RID ||
			!bytes.Equal(r.Before, want.Before) || !bytes.Equal(r.After, want.After) {
			t.Fatalf("record %d = %+v, want %+v", i, r, want)
		}
	}
	if w2.NextLSN() != got[len(got)-1].LSN+1 {
		t.Fatalf("NextLSN = %d, want %d", w2.NextLSN(), got[len(got)-1].LSN+1)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	w, path := openTestWAL(t)
	for i := 0; i < 5; i++ {
		if _, err := w.Append(&LogRecord{Txn: 1, Kind: LogInsert, RID: RID{Page: 0, Slot: uint16(i)}, After: []byte("abc")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the active segment by appending garbage (a torn final
	// write).
	f, err := os.OpenFile(segPath(path, 1), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xde, 0xad, 0xbe})
	f.Close()

	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	n := 0
	if err := w2.Records(func(LogRecord) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("after torn tail: %d records, want 5", n)
	}
	// Appending must still work after truncation of the tail.
	if _, err := w2.Append(&LogRecord{Txn: 2, Kind: LogCommit, RID: InvalidRID}); err != nil {
		t.Fatal(err)
	}
	if err := w2.Sync(); err != nil {
		t.Fatal(err)
	}
	n = 0
	if err := w2.Records(func(LogRecord) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("after append past torn tail: %d records, want 6", n)
	}
}

func TestWALCorruptMiddleStopsScan(t *testing.T) {
	w, path := openTestWAL(t)
	for i := 0; i < 3; i++ {
		if _, err := w.Append(&LogRecord{Txn: 1, Kind: LogInsert, RID: RID{Page: 0, Slot: uint16(i)}, After: []byte("abc")}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	// Flip a byte inside the second record's payload.
	data, err := os.ReadFile(segPath(path, 1))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(segPath(path, 1), data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	n := 0
	w2.Records(func(LogRecord) { n++ })
	if n >= 3 {
		t.Fatalf("scan read %d records past corruption, want < 3", n)
	}
}

func TestWALSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	// Tiny segments: every record is ~40 bytes, so a 128-byte cap
	// rotates every few appends.
	w, err := OpenWALSegmented(fault.OS{}, path, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var last uint64
	for i := 0; i < 40; i++ {
		last, err = w.Append(&LogRecord{Txn: 1, Kind: LogInsert, RID: InvalidRID, After: []byte("payload-payload")})
		if err != nil {
			t.Fatal(err)
		}
	}
	segs, _, rotations, _ := w.SegmentStats()
	if segs < 3 || rotations == 0 {
		t.Fatalf("expected rotation: segs=%d rotations=%d", segs, rotations)
	}
	n := 0
	var lastSeen uint64
	if err := w.Records(func(r LogRecord) { n++; lastSeen = r.LSN }); err != nil {
		t.Fatal(err)
	}
	if n != 40 || lastSeen != last {
		t.Fatalf("scan across segments: n=%d lastSeen=%d want 40/%d", n, lastSeen, last)
	}
}

func TestWALCompleteCheckpointPrunesSegments(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, err := OpenWALSegmented(fault.OS{}, path, 128)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := w.Append(&LogRecord{Txn: 1, Kind: LogInsert, RID: InvalidRID, After: []byte("payload-payload")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	// Checkpoint covering everything so far: only post-rotation
	// segments survive.
	redo, err := w.Append(&LogRecord{Txn: sysTxn, Kind: LogCkptBegin, RID: InvalidRID, After: encodeATT(nil)})
	if err != nil {
		t.Fatal(err)
	}
	end, err := w.Append(&LogRecord{Txn: sysTxn, Kind: LogCkptEnd, RID: InvalidRID,
		After: encodeCkptEnd(CheckpointInfo{RedoLSN: redo, BeginLSN: redo})})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	before, _, _, _ := w.SegmentStats()
	if err := w.CompleteCheckpoint(CheckpointInfo{RedoLSN: redo, BeginLSN: redo, EndLSN: end}); err != nil {
		t.Fatal(err)
	}
	after, _, _, prunes := w.SegmentStats()
	if after >= before || prunes == 0 {
		t.Fatalf("prune did not shrink the chain: before=%d after=%d prunes=%d", before, after, prunes)
	}
	last := w.NextLSN() - 1
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: the master bounds the scan, LSNs stay monotone, and the
	// checkpoint is rediscovered.
	w2, err := OpenWALSegmented(fault.OS{}, path, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.NextLSN() != last+1 {
		t.Fatalf("NextLSN after reopen = %d, want %d", w2.NextLSN(), last+1)
	}
	info, ok := w2.LastCheckpoint()
	if !ok || info.RedoLSN != redo || info.EndLSN != end {
		t.Fatalf("LastCheckpoint = %+v/%v, want redo=%d end=%d", info, ok, redo, end)
	}
	n := 0
	minLSN := uint64(0)
	if err := w2.Records(func(r LogRecord) {
		n++
		if minLSN == 0 || r.LSN < minLSN {
			minLSN = r.LSN
		}
	}); err != nil {
		t.Fatal(err)
	}
	if n == 0 || minLSN < redo {
		t.Fatalf("replay window not bounded: n=%d minLSN=%d redo=%d", n, minLSN, redo)
	}
	lsn, err := w2.Append(&LogRecord{Txn: 2, Kind: LogBegin, RID: InvalidRID})
	if err != nil {
		t.Fatal(err)
	}
	if lsn <= last {
		t.Fatalf("post-reopen LSN %d not > %d", lsn, last)
	}
}

func TestLogKindString(t *testing.T) {
	kinds := []LogKind{LogBegin, LogInsert, LogUpdate, LogDelete, LogCommit, LogAbort, LogCheckpoint, LogCkptBegin, LogCkptEnd}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("LogKind %d String() = %q (empty or duplicate)", k, s)
		}
		seen[s] = true
	}
	if LogKind(99).String() == "" {
		t.Fatal("unknown LogKind has empty String()")
	}
}
