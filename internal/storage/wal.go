package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"repro/internal/obs"
)

// LogKind discriminates write-ahead-log records.
type LogKind uint8

// Log record kinds.
const (
	LogBegin LogKind = iota + 1
	LogInsert
	LogUpdate
	LogDelete
	LogCommit
	LogAbort
	LogCheckpoint
)

// String implements fmt.Stringer.
func (k LogKind) String() string {
	switch k {
	case LogBegin:
		return "BEGIN"
	case LogInsert:
		return "INSERT"
	case LogUpdate:
		return "UPDATE"
	case LogDelete:
		return "DELETE"
	case LogCommit:
		return "COMMIT"
	case LogAbort:
		return "ABORT"
	case LogCheckpoint:
		return "CHECKPOINT"
	}
	return fmt.Sprintf("LogKind(%d)", uint8(k))
}

// LogRecord is one entry in the write-ahead log.
//
// Insert carries After; Delete carries Before; Update carries both.
// Commit/Abort/Begin/Checkpoint carry no images.
type LogRecord struct {
	LSN    uint64
	Txn    uint64
	Kind   LogKind
	RID    RID
	Before []byte
	After  []byte
}

// WAL is an append-only write-ahead log with CRC-protected records.
type WAL struct {
	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	nextLSN uint64
	path    string

	// syncs counts fsyncs so Stats can report the effect of group
	// commit; appendDur is the append (serialize + buffer) latency.
	// Both are standalone by default and rebound by Instrument.
	syncs     *obs.Counter
	appendDur *obs.Histogram
}

// OpenWAL opens (creating if necessary) the log file at path and
// positions the next LSN after the last valid record.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	w := &WAL{f: f, path: path, nextLSN: 1, syncs: new(obs.Counter), appendDur: new(obs.Histogram)}
	// Scan to find the end of the valid prefix; truncate any torn tail.
	validEnd := int64(0)
	err = w.scan(func(rec LogRecord, end int64) {
		w.nextLSN = rec.LSN + 1
		validEnd = end
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(validEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: truncate torn wal tail: %w", err)
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	w.w = bufio.NewWriterSize(f, 1<<16)
	return w, nil
}

// Instrument rebinds the log's counters into reg. Call it before the
// log sees traffic.
func (w *WAL) Instrument(reg *obs.Registry) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.syncs = reg.Counter("reach_wal_syncs_total", "WAL fsyncs issued.")
	w.appendDur = reg.Histogram("reach_wal_append_seconds", "WAL record append latency.")
}

// Append writes rec to the log, assigning and returning its LSN. The
// record is buffered; call Sync to force it to stable storage.
func (w *WAL) Append(rec *LogRecord) (uint64, error) {
	defer w.appendDur.Time()()
	w.mu.Lock()
	defer w.mu.Unlock()
	rec.LSN = w.nextLSN
	w.nextLSN++
	if err := writeRecord(w.w, rec); err != nil {
		return 0, fmt.Errorf("storage: wal append: %w", err)
	}
	return rec.LSN, nil
}

// Sync flushes buffered records and forces the log to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.syncs.Inc()
	return nil
}

// Syncs reports the number of fsyncs issued, for the group-commit
// benchmarks.
func (w *WAL) Syncs() uint64 {
	return w.syncs.Value()
}

// NextLSN reports the LSN the next appended record will receive.
func (w *WAL) NextLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN
}

// Records calls fn for every valid record in the log, in LSN order.
func (w *WAL) Records(fn func(LogRecord)) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.w != nil {
		if err := w.w.Flush(); err != nil {
			return err
		}
	}
	return w.scan(func(rec LogRecord, _ int64) { fn(rec) })
}

// Reset truncates the log after a checkpoint has made all effects
// durable in the data file. The next LSN continues from keepLSN so
// page LSNs remain monotone.
func (w *WAL) Reset(keepLSN uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.w.Flush(); err != nil {
		return err
	}
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("storage: wal reset: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	w.w.Reset(w.f)
	if keepLSN >= w.nextLSN {
		w.nextLSN = keepLSN + 1
	}
	return w.f.Sync()
}

// Close flushes and closes the log.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.syncLocked(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// scan reads records from the start of the file, invoking fn with each
// valid record and the file offset just past it. A torn or corrupt
// record ends the scan without error (it is the crash frontier).
func (w *WAL) scan(fn func(rec LogRecord, end int64)) error {
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	r := bufio.NewReaderSize(w.f, 1<<16)
	var off int64
	for {
		rec, n, err := readRecord(r)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, errBadChecksum) {
				return nil
			}
			return err
		}
		off += n
		fn(rec, off)
	}
}

var errBadChecksum = errors.New("storage: wal record checksum mismatch")

// On-disk record framing:
//
//	u32 payloadLen | u32 crc32(payload) | payload
//
// payload: u64 lsn | u64 txn | u8 kind | u32 page | u16 slot |
//
//	u32 beforeLen | before | u32 afterLen | after
func writeRecord(w io.Writer, rec *LogRecord) error {
	payload := make([]byte, 0, 31+len(rec.Before)+len(rec.After))
	payload = binary.LittleEndian.AppendUint64(payload, rec.LSN)
	payload = binary.LittleEndian.AppendUint64(payload, rec.Txn)
	payload = append(payload, byte(rec.Kind))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(rec.RID.Page))
	payload = binary.LittleEndian.AppendUint16(payload, rec.RID.Slot)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(rec.Before)))
	payload = append(payload, rec.Before...)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(rec.After)))
	payload = append(payload, rec.After...)

	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readRecord(r io.Reader) (LogRecord, int64, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return LogRecord{}, 0, err
	}
	payloadLen := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if payloadLen > 16*PageSize {
		return LogRecord{}, 0, errBadChecksum
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return LogRecord{}, 0, err
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return LogRecord{}, 0, errBadChecksum
	}
	var rec LogRecord
	p := payload
	rec.LSN = binary.LittleEndian.Uint64(p[0:8])
	rec.Txn = binary.LittleEndian.Uint64(p[8:16])
	rec.Kind = LogKind(p[16])
	rec.RID.Page = PageID(binary.LittleEndian.Uint32(p[17:21]))
	rec.RID.Slot = binary.LittleEndian.Uint16(p[21:23])
	p = p[23:]
	bl := binary.LittleEndian.Uint32(p[0:4])
	p = p[4:]
	if bl > 0 {
		rec.Before = append([]byte(nil), p[:bl]...)
	}
	p = p[bl:]
	al := binary.LittleEndian.Uint32(p[0:4])
	p = p[4:]
	if al > 0 {
		rec.After = append([]byte(nil), p[:al]...)
	}
	return rec, int64(8 + payloadLen), nil
}
