package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"runtime"
	"sync"

	"repro/internal/fault"
	"repro/internal/obs"
)

// LogKind discriminates write-ahead-log records.
type LogKind uint8

// Log record kinds.
const (
	LogBegin LogKind = iota + 1
	LogInsert
	LogUpdate
	LogDelete
	LogCommit
	LogAbort
	LogCheckpoint
)

// String implements fmt.Stringer.
func (k LogKind) String() string {
	switch k {
	case LogBegin:
		return "BEGIN"
	case LogInsert:
		return "INSERT"
	case LogUpdate:
		return "UPDATE"
	case LogDelete:
		return "DELETE"
	case LogCommit:
		return "COMMIT"
	case LogAbort:
		return "ABORT"
	case LogCheckpoint:
		return "CHECKPOINT"
	}
	return fmt.Sprintf("LogKind(%d)", uint8(k))
}

// LogRecord is one entry in the write-ahead log.
//
// Insert carries After; Delete carries Before; Update carries both.
// Commit/Abort/Begin/Checkpoint carry no images.
type LogRecord struct {
	LSN    uint64
	Txn    uint64
	Kind   LogKind
	RID    RID
	Before []byte
	After  []byte
}

// WAL is an append-only write-ahead log with CRC-protected records.
type WAL struct {
	mu      sync.Mutex
	f       fault.File
	w       *bufio.Writer
	nextLSN uint64
	path    string

	// ioErr latches the first append failure. A failed record write
	// leaves an undefined prefix in the buffered stream, so appending
	// anything after it could interleave a fresh frame with the torn
	// one; the log refuses further traffic instead.
	ioErr error

	// Group-commit state, guarded by gmu — a separate mutex so joining
	// a batch never waits behind the leader's I/O. Lock order: gmu is
	// released before w.mu is taken (SyncTo), and w.mu holders may take
	// gmu (Sync, Reset) because nobody waits for w.mu while holding gmu.
	gmu     sync.Mutex
	durable uint64     // highest LSN known forced to stable storage
	leading bool       // a SyncTo leader is performing fsync rounds
	pending *syncBatch // followers parked for the leader's next round

	// syncs counts fsyncs so Stats can report the effect of group
	// commit; appendDur is the append (serialize + buffer) latency;
	// flushDur/fsyncDur split a Sync into its buffered-flush and
	// stable-storage halves. All standalone by default and rebound by
	// Instrument.
	syncs     *obs.Counter
	appendDur *obs.Histogram
	flushDur  *obs.Histogram
	fsyncDur  *obs.Histogram

	// Group-commit accounting: requests satisfied, follower batches
	// released, and the largest batch seen (average batch size is
	// groupReqs/syncs).
	groupReqs    *obs.Counter
	groupBatches *obs.Counter
	batchHigh    *obs.Gauge
}

// syncBatch parks SyncTo followers while a leader runs fsync rounds.
// done is closed when the batch's fate is known; err is the batch
// outcome and must only be read after done is closed.
type syncBatch struct {
	done   chan struct{}
	err    error
	maxLSN uint64
	n      int64
}

// OpenWAL opens (creating if necessary) the log file at path on the
// real filesystem and positions the next LSN after the last valid
// record.
func OpenWAL(path string) (*WAL, error) {
	return OpenWALFS(fault.OS{}, path)
}

// OpenWALFS opens the log file at path through fs.
func OpenWALFS(fs fault.FS, path string) (*WAL, error) {
	f, err := fs.OpenFile(path)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	w := &WAL{
		f: f, path: path, nextLSN: 1,
		syncs:        new(obs.Counter),
		appendDur:    new(obs.Histogram),
		flushDur:     new(obs.Histogram),
		fsyncDur:     new(obs.Histogram),
		groupReqs:    new(obs.Counter),
		groupBatches: new(obs.Counter),
		batchHigh:    new(obs.Gauge),
	}
	// Scan to find the end of the valid prefix; truncate any torn tail.
	validEnd := int64(0)
	err = w.scan(func(rec LogRecord, end int64) {
		w.nextLSN = rec.LSN + 1
		validEnd = end
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(validEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: truncate torn wal tail: %w", err)
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	w.w = bufio.NewWriterSize(f, 1<<16)
	w.durable = w.nextLSN - 1 // everything scanned from disk is stable
	return w, nil
}

// Instrument rebinds the log's counters into reg. Call it before the
// log sees traffic.
func (w *WAL) Instrument(reg *obs.Registry) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.syncs = reg.Counter("reach_wal_syncs_total", "WAL fsyncs issued.")
	w.appendDur = reg.Histogram("reach_wal_append_seconds", "WAL record append latency.")
	w.flushDur = reg.Histogram("reach_wal_flush_seconds",
		"WAL buffered-writer flush latency during Sync.")
	w.fsyncDur = reg.Histogram("reach_wal_fsync_seconds",
		"WAL fsync (force to stable storage) latency during Sync.")
	w.groupReqs = reg.Counter("reach_wal_group_commit_requests_total",
		"SyncTo requests satisfied (group-commit committers; divide by reach_wal_syncs_total for the mean batch size).")
	w.groupBatches = reg.Counter("reach_wal_group_commit_batches_total",
		"Follower batches released by a group-commit leader.")
	w.batchHigh = reg.Gauge("reach_wal_group_commit_batch_highwater",
		"Largest follower batch released by one group-commit round.")
}

// Append writes rec to the log, assigning and returning its LSN. The
// record is buffered; call Sync to force it to stable storage.
func (w *WAL) Append(rec *LogRecord) (uint64, error) {
	defer w.appendDur.Time()()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.ioErr != nil {
		return 0, fmt.Errorf("storage: wal damaged by earlier append failure: %w", w.ioErr)
	}
	rec.LSN = w.nextLSN
	w.nextLSN++
	frame := encodeRecord(rec)
	if fp := fault.Hit(fault.SiteWALAppend); fp != nil {
		if fp.Torn >= 0 && fp.Torn < len(frame) {
			// A torn append leaves a partial frame in the stream; the
			// log is damaged from here on.
			_, _ = w.w.Write(frame[:fp.Torn])
		}
		w.ioErr = fp.Err
		return 0, fmt.Errorf("storage: wal append: %w", fp.Err)
	}
	if _, err := w.w.Write(frame); err != nil {
		w.ioErr = err
		return 0, fmt.Errorf("storage: wal append: %w", err)
	}
	return rec.LSN, nil
}

// Sync flushes buffered records and forces the log to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	covered := w.nextLSN - 1
	err := w.syncLocked()
	w.mu.Unlock()
	if err == nil {
		w.advanceDurable(covered)
	}
	return err
}

// advanceDurable raises the durable frontier to covered (monotone).
func (w *WAL) advanceDurable(covered uint64) {
	w.gmu.Lock()
	if covered > w.durable {
		w.durable = covered
	}
	w.gmu.Unlock()
}

// SyncTo forces the log through at least lsn to stable storage. It is
// the group-commit entry point: concurrent callers elect one leader
// that performs the buffered flush + fsync and releases every caller
// whose LSN the round covered, amortizing one fsync across the batch.
// Callers that arrive while a round is in flight park on a pending
// batch served by the leader's next round. An error from a round is
// returned to every caller it might have covered: the batch cannot
// tell whose records reached stable storage, so all of them must treat
// the outcome as in-doubt — exactly the contract Store.Commit needs.
func (w *WAL) SyncTo(lsn uint64) error {
	defer w.groupReqs.Inc()
	w.gmu.Lock()
	if lsn <= w.durable {
		// A previous round already forced this LSN; free ride.
		w.gmu.Unlock()
		return nil
	}
	if w.leading {
		// A leader is mid-round: join (or form) the pending batch and
		// park until a round covers us.
		b := w.pending
		if b == nil {
			b = &syncBatch{done: make(chan struct{})}
			w.pending = b
		}
		if lsn > b.maxLSN {
			b.maxLSN = lsn
		}
		b.n++
		w.gmu.Unlock()
		<-b.done
		return b.err
	}
	w.leading = true
	var firstErr error
	for first := true; ; first = false {
		w.gmu.Unlock()
		// Let runnable committers append their records and park in the
		// pending batch before this round captures its frontier: without
		// the yield a fresh leader fsyncs alone while the previous
		// round's followers are still waiting for the scheduler, and the
		// batch size collapses to 1-2 under a single-CPU convoy. On an
		// uncontended log this is one scheduler call.
		runtime.Gosched()
		w.mu.Lock()
		covered := w.nextLSN - 1
		err := w.flushLocked()
		w.mu.Unlock()
		if err == nil {
			// The fsync runs off w.mu: committers keep appending (and
			// joining the pending batch) while the disk works, which is
			// what lets one round absorb a whole convoy.
			err = w.fsync()
		}
		w.gmu.Lock()
		if err == nil && covered > w.durable {
			w.durable = covered
		}
		if first {
			// The first round always covers the leader's own LSN (its
			// record was appended before the call); later rounds run on
			// behalf of followers and do not change the leader's fate.
			firstErr = err
		}
		if b := w.pending; b != nil {
			switch {
			case b.maxLSN <= w.durable:
				// The round (or an earlier one) covered the whole batch.
				w.pending = nil
				w.groupBatches.Inc()
				w.batchHigh.SetMax(b.n)
				close(b.done)
			case err != nil:
				// The round failed with follower records possibly in the
				// failed flush: every follower goes in-doubt with it.
				w.pending = nil
				w.groupBatches.Inc()
				w.batchHigh.SetMax(b.n)
				b.err = err
				close(b.done)
			}
			// Otherwise followers joined after covered was captured; run
			// another round for them.
		}
		if w.pending == nil {
			w.leading = false
			w.gmu.Unlock()
			return firstErr
		}
	}
}

func (w *WAL) syncLocked() error {
	if err := w.flushLocked(); err != nil {
		return err
	}
	return w.fsync()
}

// flushLocked drains the buffered writer into the file; the caller
// holds w.mu.
func (w *WAL) flushLocked() error {
	if w.ioErr != nil {
		return fmt.Errorf("storage: wal damaged by earlier append failure: %w", w.ioErr)
	}
	if fp := fault.Hit(fault.SiteWALFlush); fp != nil {
		return fmt.Errorf("storage: wal flush: %w", fp.Err)
	}
	stopFlush := w.flushDur.Time()
	err := w.w.Flush()
	stopFlush()
	return err
}

// fsync forces the file to stable storage. It needs no lock: the
// caller must already have flushed the records it cares about, and the
// file handle tolerates a concurrent flush — any extra bytes the sync
// happens to cover become durable early, which is harmless.
func (w *WAL) fsync() error {
	if fp := fault.Hit(fault.SiteWALSync); fp != nil {
		return fmt.Errorf("storage: wal fsync: %w", fp.Err)
	}
	stopSync := w.fsyncDur.Time()
	err := w.f.Sync()
	stopSync()
	if err != nil {
		return err
	}
	w.syncs.Inc()
	return nil
}

// Syncs reports the number of fsyncs issued, for the group-commit
// benchmarks.
func (w *WAL) Syncs() uint64 {
	return w.syncs.Value()
}

// GroupCommitStats reports the group-commit counters: force
// requests, follower batches released by a leader, and the largest
// such batch. requests divided by Syncs() is the amortization factor.
func (w *WAL) GroupCommitStats() (requests, batches uint64, highwater int64) {
	return w.groupReqs.Value(), w.groupBatches.Value(), w.batchHigh.Value()
}

// NextLSN reports the LSN the next appended record will receive.
func (w *WAL) NextLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN
}

// Records calls fn for every valid record in the log, in LSN order.
func (w *WAL) Records(fn func(LogRecord)) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.w != nil {
		if err := w.w.Flush(); err != nil {
			return err
		}
	}
	return w.scan(func(rec LogRecord, _ int64) { fn(rec) })
}

// Reset truncates the log after a checkpoint has made all effects
// durable in the data file. The next LSN continues from keepLSN so
// page LSNs remain monotone.
func (w *WAL) Reset(keepLSN uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.w.Flush(); err != nil {
		return err
	}
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("storage: wal reset: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	w.w.Reset(w.f)
	w.ioErr = nil // the damaged region, if any, was discarded
	if keepLSN >= w.nextLSN {
		w.nextLSN = keepLSN + 1
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	// The truncated log holds nothing, and the checkpoint that
	// triggered the reset made every earlier LSN stable in the data
	// file: the durable frontier jumps to the end.
	w.advanceDurable(w.nextLSN - 1)
	return nil
}

// Close flushes and closes the log. The file handle is closed even
// when the final flush or fsync fails, so Close never leaks a
// descriptor.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	serr := w.syncLocked()
	cerr := w.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// scan reads records from the start of the file, invoking fn with each
// valid record and the file offset just past it. A torn or corrupt
// record ends the scan without error (it is the crash frontier).
func (w *WAL) scan(fn func(rec LogRecord, end int64)) error {
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	r := bufio.NewReaderSize(w.f, 1<<16)
	var off int64
	for {
		rec, n, err := readRecord(r)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, errBadChecksum) {
				return nil
			}
			return err
		}
		off += n
		fn(rec, off)
	}
}

var errBadChecksum = errors.New("storage: wal record checksum mismatch")

// recFixedLen is the fixed part of a record payload: u64 lsn, u64
// txn, u8 kind, u32 page, u16 slot. The minimum structurally valid
// payload adds the two u32 image lengths.
const (
	recFixedLen   = 23
	recMinPayload = recFixedLen + 4 + 4
)

// On-disk record framing:
//
//	u32 payloadLen | u32 crc32(payload) | payload
//
// payload: u64 lsn | u64 txn | u8 kind | u32 page | u16 slot |
//
//	u32 beforeLen | before | u32 afterLen | after
func encodeRecord(rec *LogRecord) []byte {
	frame := make([]byte, 8, 8+recMinPayload+len(rec.Before)+len(rec.After))
	frame = binary.LittleEndian.AppendUint64(frame, rec.LSN)
	frame = binary.LittleEndian.AppendUint64(frame, rec.Txn)
	frame = append(frame, byte(rec.Kind))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(rec.RID.Page))
	frame = binary.LittleEndian.AppendUint16(frame, rec.RID.Slot)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(rec.Before)))
	frame = append(frame, rec.Before...)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(rec.After)))
	frame = append(frame, rec.After...)
	payload := frame[8:]
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	return frame
}

// readRecord decodes one frame. Structural corruption — a payload too
// short for the fixed header, or image lengths overrunning the
// payload — is reported as errBadChecksum so the scan treats it as
// the crash frontier rather than panicking on a slice bound.
func readRecord(r io.Reader) (LogRecord, int64, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return LogRecord{}, 0, err
	}
	payloadLen := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if payloadLen > 16*PageSize || payloadLen < recMinPayload {
		return LogRecord{}, 0, errBadChecksum
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return LogRecord{}, 0, err
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return LogRecord{}, 0, errBadChecksum
	}
	// Validate the image lengths before slicing; uint64 arithmetic
	// keeps a 4 GiB length field from overflowing the bounds checks.
	n := uint64(payloadLen)
	bl := uint64(binary.LittleEndian.Uint32(payload[recFixedLen : recFixedLen+4]))
	if recMinPayload+bl > n {
		return LogRecord{}, 0, errBadChecksum
	}
	al := uint64(binary.LittleEndian.Uint32(payload[recFixedLen+4+bl : recFixedLen+8+bl]))
	if recMinPayload+bl+al != n {
		return LogRecord{}, 0, errBadChecksum
	}
	var rec LogRecord
	rec.LSN = binary.LittleEndian.Uint64(payload[0:8])
	rec.Txn = binary.LittleEndian.Uint64(payload[8:16])
	rec.Kind = LogKind(payload[16])
	rec.RID.Page = PageID(binary.LittleEndian.Uint32(payload[17:21]))
	rec.RID.Slot = binary.LittleEndian.Uint16(payload[21:23])
	if bl > 0 {
		rec.Before = append([]byte(nil), payload[recFixedLen+4:recFixedLen+4+bl]...)
	}
	if al > 0 {
		rec.After = append([]byte(nil), payload[recFixedLen+8+bl:]...)
	}
	return rec, int64(8 + payloadLen), nil
}
