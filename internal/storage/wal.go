package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/fault"
	"repro/internal/obs"
)

// LogKind discriminates write-ahead-log records.
type LogKind uint8

// Log record kinds.
const (
	LogBegin LogKind = iota + 1
	LogInsert
	LogUpdate
	LogDelete
	LogCommit
	LogAbort
	LogCheckpoint
	LogCkptBegin
	LogCkptEnd
)

// String implements fmt.Stringer.
func (k LogKind) String() string {
	switch k {
	case LogBegin:
		return "BEGIN"
	case LogInsert:
		return "INSERT"
	case LogUpdate:
		return "UPDATE"
	case LogDelete:
		return "DELETE"
	case LogCommit:
		return "COMMIT"
	case LogAbort:
		return "ABORT"
	case LogCheckpoint:
		return "CHECKPOINT"
	case LogCkptBegin:
		return "CKPT-BEGIN"
	case LogCkptEnd:
		return "CKPT-END"
	}
	return fmt.Sprintf("LogKind(%d)", uint8(k))
}

// LogRecord is one entry in the write-ahead log.
//
// Insert carries After; Delete carries Before; Update carries both.
// Commit/Abort/Begin carry no images. CkptBegin carries the active-
// transaction table in After; CkptEnd carries redoLSN+beginLSN in
// After.
type LogRecord struct {
	LSN    uint64
	Txn    uint64
	Kind   LogKind
	RID    RID
	Before []byte
	After  []byte
}

// CheckpointInfo identifies a completed fuzzy checkpoint: recovery
// redo may start at RedoLSN, and every segment whose records all
// precede it is garbage.
type CheckpointInfo struct {
	RedoLSN  uint64
	BeginLSN uint64
	EndLSN   uint64
}

// DefaultSegmentBytes is the segment-rotation threshold when the
// caller does not choose one.
const DefaultSegmentBytes int64 = 4 << 20

// walSegment is one size-capped file of the log. The last element of
// WAL.segs is the active (append) segment; earlier ones are sealed
// and fully fsynced (rotation seals before switching).
type walSegment struct {
	seq      uint64
	path     string
	f        fault.File
	firstLSN uint64 // 0 while the segment holds no records
	lastLSN  uint64
	size     int64 // bytes of valid records (buffered bytes included for the active segment)
}

// WAL is an append-only write-ahead log with CRC-protected records,
// split across ordered size-capped segment files <path>.<seq>. A
// side master file <path>.ckpt points recovery at the last completed
// checkpoint so the scan skips fully covered segments.
type WAL struct {
	mu       sync.Mutex
	fs       fault.FS
	path     string // base path; segments live beside it
	segBytes int64
	segs     []*walSegment // ascending seq; last is active
	w        *bufio.Writer // over the active segment

	// replayFrom is the index into segs where Records starts: segments
	// before it are fully covered by the last completed checkpoint
	// (per the master record) and awaiting pruning.
	replayFrom int
	// stale holds paths of covered segments discovered at open that
	// were never handed a live handle (resurrected after a crash lost
	// their unlink); the next completed checkpoint removes them.
	stale []string

	lastCkpt CheckpointInfo
	haveCkpt bool
	appended uint64 // total record bytes appended since open (monotone)

	// Recovery-window accounting captured at open, for Stats.
	openScanned int
	openSkipped int

	// ioErr latches the first append failure. A failed record write
	// leaves an undefined prefix in the buffered stream, so appending
	// anything after it could interleave a fresh frame with the torn
	// one; the log refuses further traffic instead.
	ioErr error

	// Group-commit state, guarded by gmu — a separate mutex so joining
	// a batch never waits behind the leader's I/O. Lock order: gmu is
	// released before w.mu is taken (SyncTo), and w.mu holders may take
	// gmu (Sync, rotation) because nobody waits for w.mu while holding
	// gmu.
	gmu     sync.Mutex
	nextLSN uint64 // LSN the next append will assign; under gmu so
	// NextLSN works from Records callbacks that already hold w.mu
	// (recovery redo consults it as the buffer pool's recLSN source)
	durable uint64     // highest LSN known forced to stable storage
	leading bool       // a SyncTo leader is performing fsync rounds
	pending *syncBatch // followers parked for the leader's next round

	// syncs counts fsyncs so Stats can report the effect of group
	// commit; appendDur is the append (serialize + buffer) latency;
	// flushDur/fsyncDur split a Sync into its buffered-flush and
	// stable-storage halves. All standalone by default and rebound by
	// Instrument.
	syncs     *obs.Counter
	appendDur *obs.Histogram
	flushDur  *obs.Histogram
	fsyncDur  *obs.Histogram

	// Group-commit accounting: requests satisfied, follower batches
	// released, and the largest batch seen (average batch size is
	// groupReqs/syncs).
	groupReqs    *obs.Counter
	groupBatches *obs.Counter
	batchHigh    *obs.Gauge

	// Segment accounting.
	rotations *obs.Counter
	prunes    *obs.Counter
	segGauge  *obs.Gauge
	sizeGauge *obs.Gauge
}

// syncBatch parks SyncTo followers while a leader runs fsync rounds.
// done is closed when the batch's fate is known; err is the batch
// outcome and must only be read after done is closed.
type syncBatch struct {
	done   chan struct{}
	err    error
	maxLSN uint64
	n      int64
}

// OpenWAL opens (creating if necessary) the log at path on the real
// filesystem and positions the next LSN after the last valid record.
func OpenWAL(path string) (*WAL, error) {
	return OpenWALFS(fault.OS{}, path)
}

// OpenWALFS opens the log at path through fs with the default segment
// size.
func OpenWALFS(fs fault.FS, path string) (*WAL, error) {
	return OpenWALSegmented(fs, path, DefaultSegmentBytes)
}

// segPath names segment seq of the log at base.
func segPath(base string, seq uint64) string {
	return fmt.Sprintf("%s.%08d", base, seq)
}

// masterPath names the checkpoint master record beside the log.
func masterPath(base string) string { return base + ".ckpt" }

// listSegments returns the (seq, path) pairs of log segments beside
// base, ascending by seq.
func listSegments(fs fault.FS, base string) ([]uint64, error) {
	dir := filepath.Dir(base)
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: list wal segments: %w", err)
	}
	prefix := filepath.Base(base) + "."
	var seqs []uint64
	for _, name := range names {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		seq, err := strconv.ParseUint(name[len(prefix):], 10, 64)
		if err != nil || seq == 0 {
			continue // .ckpt master or unrelated file
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// OpenWALSegmented opens the segmented log at base path through fs,
// rotating the active segment once it exceeds segBytes. Recovery
// reads the master record first: segments fully covered by the last
// completed checkpoint are skipped (and removed by the next
// checkpoint), bounding the scan.
func OpenWALSegmented(fs fault.FS, path string, segBytes int64) (*WAL, error) {
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	w := &WAL{
		fs: fs, path: path, segBytes: segBytes,
		syncs:        new(obs.Counter),
		appendDur:    new(obs.Histogram),
		flushDur:     new(obs.Histogram),
		fsyncDur:     new(obs.Histogram),
		groupReqs:    new(obs.Counter),
		groupBatches: new(obs.Counter),
		batchHigh:    new(obs.Gauge),
		rotations:    new(obs.Counter),
		prunes:       new(obs.Counter),
		segGauge:     new(obs.Gauge),
		sizeGauge:    new(obs.Gauge),
	}
	w.nextLSN = 1
	seqs, err := listSegments(fs, path)
	if err != nil {
		return nil, err
	}
	master, haveMaster := readMaster(fs, masterPath(path))
	// The master only helps if the segment it points at still exists;
	// otherwise fall back to a full scan (always correct, page LSNs
	// make redo idempotent).
	if haveMaster {
		found := false
		for _, seq := range seqs {
			if seq == master.startSeq {
				found = true
				break
			}
		}
		if !found {
			haveMaster = false
		}
	}
	if len(seqs) == 0 {
		seqs = []uint64{1}
	}
	fail := func(err error) (*WAL, error) {
		for _, s := range w.segs {
			s.f.Close()
		}
		return nil, err
	}
	for _, seq := range seqs {
		p := segPath(path, seq)
		if haveMaster && seq < master.startSeq {
			// Fully covered by the checkpoint: do not scan, do not hold
			// a handle; the next completed checkpoint unlinks it.
			w.stale = append(w.stale, p)
			w.openSkipped++
			continue
		}
		f, err := fs.OpenFile(p)
		if err != nil {
			return fail(fmt.Errorf("storage: open wal segment: %w", err))
		}
		w.segs = append(w.segs, &walSegment{seq: seq, path: p, f: f})
	}
	// Scan the retained chain in order. A torn or corrupt record is the
	// crash frontier: everything after it (in this segment and any
	// later one) was never acknowledged and is discarded.
	for i := 0; i < len(w.segs); i++ {
		s := w.segs[i]
		validEnd := int64(0)
		err := scanFile(s.f, func(rec LogRecord, end int64) {
			if s.firstLSN == 0 {
				s.firstLSN = rec.LSN
			}
			s.lastLSN = rec.LSN
			validEnd = end
			w.nextLSN = rec.LSN + 1
			if rec.Kind == LogCkptEnd {
				if info, ok := decodeCkptEnd(rec.After); ok {
					info.EndLSN = rec.LSN
					w.lastCkpt, w.haveCkpt = info, true
				}
			}
		})
		if err != nil {
			return fail(err)
		}
		s.size = validEnd
		w.openScanned++
		if sz, err := s.f.Size(); err == nil && validEnd < sz {
			if err := s.f.Truncate(validEnd); err != nil {
				return fail(fmt.Errorf("storage: truncate torn wal tail: %w", err))
			}
			// Segments past the frontier are unreachable in normal
			// operation (rotation seals before creating a successor),
			// but a resurrected pruned file could sit there; drop them.
			for _, t := range w.segs[i+1:] {
				t.f.Close()
				w.stale = append(w.stale, t.path)
			}
			w.segs = w.segs[:i+1]
			break
		}
	}
	if haveMaster && master.endLSN >= w.nextLSN {
		// Insurance against LSN reuse if the scan saw less than the
		// master promises durable.
		w.nextLSN = master.endLSN + 1
	}
	act := w.active()
	if _, err := act.f.Seek(act.size, io.SeekStart); err != nil {
		return fail(err)
	}
	w.w = bufio.NewWriterSize(act.f, 1<<16)
	w.durable = w.nextLSN - 1 // everything scanned from disk is stable
	w.updateSegMetricsLocked()
	return w, nil
}

// active returns the append segment; the caller holds w.mu (or has
// exclusive access during open).
func (w *WAL) active() *walSegment { return w.segs[len(w.segs)-1] }

// Instrument rebinds the log's counters into reg. Call it before the
// log sees traffic.
func (w *WAL) Instrument(reg *obs.Registry) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.syncs = reg.Counter("reach_wal_syncs_total", "WAL fsyncs issued.")
	w.appendDur = reg.Histogram("reach_wal_append_seconds", "WAL record append latency.")
	w.flushDur = reg.Histogram("reach_wal_flush_seconds",
		"WAL buffered-writer flush latency during Sync.")
	w.fsyncDur = reg.Histogram("reach_wal_fsync_seconds",
		"WAL fsync (force to stable storage) latency during Sync.")
	w.groupReqs = reg.Counter("reach_wal_group_commit_requests_total",
		"SyncTo requests satisfied (group-commit committers; divide by reach_wal_syncs_total for the mean batch size).")
	w.groupBatches = reg.Counter("reach_wal_group_commit_batches_total",
		"Follower batches released by a group-commit leader.")
	w.batchHigh = reg.Gauge("reach_wal_group_commit_batch_highwater",
		"Largest follower batch released by one group-commit round.")
	w.rotations = reg.Counter("reach_wal_segment_rotations_total",
		"WAL segment rotations (active segment sealed, successor created).")
	w.prunes = reg.Counter("reach_wal_segment_prunes_total",
		"WAL segments deleted because a completed checkpoint covered them.")
	w.segGauge = reg.Gauge("reach_wal_segments", "Live WAL segment files.")
	w.sizeGauge = reg.Gauge("reach_wal_segment_bytes", "Total bytes across live WAL segments.")
	w.updateSegMetricsLocked()
}

func (w *WAL) updateSegMetricsLocked() {
	w.segGauge.Set(int64(len(w.segs)))
	var total int64
	for _, s := range w.segs {
		total += s.size
	}
	w.sizeGauge.Set(total)
}

// Append writes rec to the log, assigning and returning its LSN. The
// record is buffered; call Sync to force it to stable storage. When
// the active segment is over the rotation threshold it is sealed
// (flushed + fsynced) and a successor created before the append.
func (w *WAL) Append(rec *LogRecord) (uint64, error) {
	defer w.appendDur.Time()()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.ioErr != nil {
		return 0, fmt.Errorf("storage: wal damaged by earlier append failure: %w", w.ioErr)
	}
	if act := w.active(); act.size >= w.segBytes && act.firstLSN != 0 {
		if err := w.rotateLocked(); err != nil {
			return 0, fmt.Errorf("storage: wal rotate: %w", err)
		}
	}
	w.gmu.Lock()
	rec.LSN = w.nextLSN
	w.nextLSN++
	w.gmu.Unlock()
	frame := encodeRecord(rec)
	if fp := fault.Hit(fault.SiteWALAppend); fp != nil {
		if fp.Torn >= 0 && fp.Torn < len(frame) {
			// A torn append leaves a partial frame in the stream; the
			// log is damaged from here on.
			_, _ = w.w.Write(frame[:fp.Torn])
		}
		w.ioErr = fp.Err
		return 0, fmt.Errorf("storage: wal append: %w", fp.Err)
	}
	if _, err := w.w.Write(frame); err != nil {
		w.ioErr = err
		return 0, fmt.Errorf("storage: wal append: %w", err)
	}
	act := w.active()
	if act.firstLSN == 0 {
		act.firstLSN = rec.LSN
	}
	act.lastLSN = rec.LSN
	act.size += int64(len(frame))
	w.appended += uint64(len(frame))
	return rec.LSN, nil
}

// Rotate seals the active segment and installs an empty successor; a
// no-op when the active segment holds no records yet. The fuzzy
// checkpoint rotates first so everything logged before it sits in
// sealed, prunable segments.
func (w *WAL) Rotate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.ioErr != nil {
		return fmt.Errorf("storage: wal damaged by earlier append failure: %w", w.ioErr)
	}
	if w.active().firstLSN == 0 {
		return nil
	}
	return w.rotateLocked()
}

// rotateLocked seals the active segment (flush + fsync, so every
// sealed segment is fully durable and torn tails can only be in the
// last segment) and installs an empty successor. A failure leaves the
// old segment active and the log undamaged — the append that
// triggered the rotation fails without consuming an LSN.
func (w *WAL) rotateLocked() error {
	if err := w.flushLocked(); err != nil {
		return err
	}
	act := w.active()
	if err := w.fsync(act.f); err != nil {
		return err
	}
	w.advanceDurable(act.lastLSN)
	if fp := fault.Hit(fault.SiteWALRotate); fp != nil {
		return fp.Err
	}
	seq := act.seq + 1
	p := segPath(w.path, seq)
	f, err := w.fs.OpenFile(p)
	if err != nil {
		return err
	}
	// A resurrected pruned file could leave stale bytes under this
	// name; start the segment empty.
	if err := f.Truncate(0); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	w.segs = append(w.segs, &walSegment{seq: seq, path: p, f: f})
	w.w.Reset(f)
	w.rotations.Inc()
	w.updateSegMetricsLocked()
	return nil
}

// Sync flushes buffered records and forces the log to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	covered := w.NextLSN() - 1
	err := w.syncLocked()
	w.mu.Unlock()
	if err == nil {
		w.advanceDurable(covered)
	}
	return err
}

// advanceDurable raises the durable frontier to covered (monotone).
func (w *WAL) advanceDurable(covered uint64) {
	w.gmu.Lock()
	if covered > w.durable {
		w.durable = covered
	}
	w.gmu.Unlock()
}

// SyncTo forces the log through at least lsn to stable storage. It is
// the group-commit entry point: concurrent callers elect one leader
// that performs the buffered flush + fsync and releases every caller
// whose LSN the round covered, amortizing one fsync across the batch.
// Callers that arrive while a round is in flight park on a pending
// batch served by the leader's next round. An error from a round is
// returned to every caller it might have covered: the batch cannot
// tell whose records reached stable storage, so all of them must treat
// the outcome as in-doubt — exactly the contract Store.Commit needs.
func (w *WAL) SyncTo(lsn uint64) error {
	defer w.groupReqs.Inc()
	w.gmu.Lock()
	if lsn <= w.durable {
		// A previous round already forced this LSN; free ride.
		w.gmu.Unlock()
		return nil
	}
	if w.leading {
		// A leader is mid-round: join (or form) the pending batch and
		// park until a round covers us.
		b := w.pending
		if b == nil {
			b = &syncBatch{done: make(chan struct{})}
			w.pending = b
		}
		if lsn > b.maxLSN {
			b.maxLSN = lsn
		}
		b.n++
		w.gmu.Unlock()
		<-b.done
		return b.err
	}
	w.leading = true
	var firstErr error
	for first := true; ; first = false {
		w.gmu.Unlock()
		// Let runnable committers append their records and park in the
		// pending batch before this round captures its frontier: without
		// the yield a fresh leader fsyncs alone while the previous
		// round's followers are still waiting for the scheduler, and the
		// batch size collapses to 1-2 under a single-CPU convoy. On an
		// uncontended log this is one scheduler call.
		runtime.Gosched()
		w.mu.Lock()
		covered := w.NextLSN() - 1
		err := w.flushLocked()
		// Capture the active handle under w.mu: a rotation after the
		// flush would retarget w.w, but the flushed records are in this
		// handle (and rotation fsyncs it before switching anyway).
		f := w.active().f
		w.mu.Unlock()
		if err == nil {
			// The fsync runs off w.mu: committers keep appending (and
			// joining the pending batch) while the disk works, which is
			// what lets one round absorb a whole convoy.
			err = w.fsync(f)
		}
		w.gmu.Lock()
		if err == nil && covered > w.durable {
			w.durable = covered
		}
		if first {
			// The first round always covers the leader's own LSN (its
			// record was appended before the call); later rounds run on
			// behalf of followers and do not change the leader's fate.
			firstErr = err
		}
		if b := w.pending; b != nil {
			switch {
			case b.maxLSN <= w.durable:
				// The round (or an earlier one) covered the whole batch.
				w.pending = nil
				w.groupBatches.Inc()
				w.batchHigh.SetMax(b.n)
				close(b.done)
			case err != nil:
				// The round failed with follower records possibly in the
				// failed flush: every follower goes in-doubt with it.
				w.pending = nil
				w.groupBatches.Inc()
				w.batchHigh.SetMax(b.n)
				b.err = err
				close(b.done)
			}
			// Otherwise followers joined after covered was captured; run
			// another round for them.
		}
		if w.pending == nil {
			w.leading = false
			w.gmu.Unlock()
			return firstErr
		}
	}
}

func (w *WAL) syncLocked() error {
	if err := w.flushLocked(); err != nil {
		return err
	}
	return w.fsync(w.active().f)
}

// flushLocked drains the buffered writer into the active segment; the
// caller holds w.mu.
func (w *WAL) flushLocked() error {
	if w.ioErr != nil {
		return fmt.Errorf("storage: wal damaged by earlier append failure: %w", w.ioErr)
	}
	if fp := fault.Hit(fault.SiteWALFlush); fp != nil {
		return fmt.Errorf("storage: wal flush: %w", fp.Err)
	}
	stopFlush := w.flushDur.Time()
	err := w.w.Flush()
	stopFlush()
	return err
}

// fsync forces f to stable storage. It needs no lock: the caller must
// already have flushed the records it cares about, and the file handle
// tolerates a concurrent flush — any extra bytes the sync happens to
// cover become durable early, which is harmless.
func (w *WAL) fsync(f fault.File) error {
	if fp := fault.Hit(fault.SiteWALSync); fp != nil {
		return fmt.Errorf("storage: wal fsync: %w", fp.Err)
	}
	stopSync := w.fsyncDur.Time()
	err := f.Sync()
	stopSync()
	if err != nil {
		return err
	}
	w.syncs.Inc()
	return nil
}

// Syncs reports the number of fsyncs issued, for the group-commit
// benchmarks.
func (w *WAL) Syncs() uint64 {
	return w.syncs.Value()
}

// GroupCommitStats reports the group-commit counters: force
// requests, follower batches released by a leader, and the largest
// such batch. requests divided by Syncs() is the amortization factor.
func (w *WAL) GroupCommitStats() (requests, batches uint64, highwater int64) {
	return w.groupReqs.Value(), w.groupBatches.Value(), w.batchHigh.Value()
}

// NextLSN reports the LSN the next appended record will receive. It
// takes only gmu, never w.mu: the buffer pool consults it as the
// recLSN source from paths that already hold w.mu (recovery redo
// inside a Records scan).
func (w *WAL) NextLSN() uint64 {
	w.gmu.Lock()
	defer w.gmu.Unlock()
	return w.nextLSN
}

// AppendedBytes reports the total record bytes appended since open —
// the background checkpointer's byte trigger.
func (w *WAL) AppendedBytes() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appended
}

// LastCheckpoint reports the most recent completed checkpoint, from
// either the recovery scan or a CompleteCheckpoint this session.
func (w *WAL) LastCheckpoint() (CheckpointInfo, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastCkpt, w.haveCkpt
}

// SegmentStats reports live segment count, their total bytes, and the
// rotation/prune counters.
func (w *WAL) SegmentStats() (segments int, bytes int64, rotations, prunes uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, s := range w.segs {
		bytes += s.size
	}
	return len(w.segs), bytes, w.rotations.Value(), w.prunes.Value()
}

// RecoveryWindow reports how many segments the opening scan read and
// how many the master record let it skip.
func (w *WAL) RecoveryWindow() (scanned, skipped int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.openScanned, w.openSkipped
}

// Records calls fn for every valid record in the replay window (the
// segments at or after the last completed checkpoint's start), in LSN
// order.
func (w *WAL) Records(fn func(LogRecord)) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.w != nil {
		if err := w.w.Flush(); err != nil {
			return err
		}
	}
	for i := w.replayFrom; i < len(w.segs); i++ {
		if err := scanFile(w.segs[i].f, func(rec LogRecord, _ int64) { fn(rec) }); err != nil {
			return err
		}
	}
	return nil
}

// CompleteCheckpoint finalizes a fuzzy checkpoint whose end record
// (info.EndLSN) is already durable: it writes the master record so
// recovery starts its scan at the segment containing RedoLSN, then
// unlinks every fully covered segment. A failure here never damages
// the log — the checkpoint merely reports failed and the next attempt
// re-prunes.
func (w *WAL) CompleteCheckpoint(info CheckpointInfo) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	start := len(w.segs) - 1
	for i, s := range w.segs {
		if s.lastLSN >= info.RedoLSN {
			start = i
			break
		}
	}
	if err := w.writeMasterLocked(info, w.segs[start].seq); err != nil {
		return err
	}
	w.lastCkpt, w.haveCkpt = info, true
	// The master is durable: recovery will skip segments before start
	// even if pruning fails or crashes partway.
	w.replayFrom = start
	for w.replayFrom > 0 {
		s := w.segs[0]
		if fp := fault.Hit(fault.SiteWALPrune); fp != nil {
			w.updateSegMetricsLocked()
			return fmt.Errorf("storage: wal prune %s: %w", s.path, fp.Err)
		}
		s.f.Close()
		if err := w.fs.Remove(s.path); err != nil && !errors.Is(err, os.ErrNotExist) {
			// The handle is gone but the chain must stay consistent:
			// drop the segment to the stale list for the next attempt.
			w.stale = append(w.stale, s.path)
			w.segs = w.segs[1:]
			w.replayFrom--
			w.updateSegMetricsLocked()
			return fmt.Errorf("storage: wal prune %s: %w", s.path, err)
		}
		w.segs = w.segs[1:]
		w.replayFrom--
		w.prunes.Inc()
	}
	for len(w.stale) > 0 {
		p := w.stale[0]
		if fp := fault.Hit(fault.SiteWALPrune); fp != nil {
			w.updateSegMetricsLocked()
			return fmt.Errorf("storage: wal prune %s: %w", p, fp.Err)
		}
		if err := w.fs.Remove(p); err != nil && !errors.Is(err, os.ErrNotExist) {
			w.updateSegMetricsLocked()
			return fmt.Errorf("storage: wal prune %s: %w", p, err)
		}
		w.stale = w.stale[1:]
		w.prunes.Inc()
	}
	w.updateSegMetricsLocked()
	return nil
}

// Master record framing: "RWCK" | u64 redo | u64 begin | u64 end |
// u64 startSeq | u32 crc32 of the preceding 36 bytes.
const masterLen = 4 + 8*4 + 4

type masterRecord struct {
	redoLSN  uint64
	beginLSN uint64
	endLSN   uint64
	startSeq uint64
}

func (w *WAL) writeMasterLocked(info CheckpointInfo, startSeq uint64) error {
	frame := make([]byte, 0, masterLen)
	frame = append(frame, 'R', 'W', 'C', 'K')
	frame = binary.LittleEndian.AppendUint64(frame, info.RedoLSN)
	frame = binary.LittleEndian.AppendUint64(frame, info.BeginLSN)
	frame = binary.LittleEndian.AppendUint64(frame, info.EndLSN)
	frame = binary.LittleEndian.AppendUint64(frame, startSeq)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(frame))
	if fp := fault.Hit(fault.SiteCkptMaster); fp != nil {
		if fp.Torn >= 0 && fp.Torn < len(frame) {
			if f, err := w.fs.OpenFile(masterPath(w.path)); err == nil {
				_, _ = f.WriteAt(frame[:fp.Torn], 0)
				f.Close()
			}
		}
		return fmt.Errorf("storage: checkpoint master: %w", fp.Err)
	}
	f, err := w.fs.OpenFile(masterPath(w.path))
	if err != nil {
		return fmt.Errorf("storage: checkpoint master: %w", err)
	}
	defer f.Close()
	if _, err := f.WriteAt(frame, 0); err != nil {
		return fmt.Errorf("storage: checkpoint master: %w", err)
	}
	if err := f.Truncate(int64(len(frame))); err != nil {
		return fmt.Errorf("storage: checkpoint master: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("storage: checkpoint master: %w", err)
	}
	return nil
}

// readMaster loads and validates the master record; any damage (torn
// write at the crash, missing file) just disables the scan shortcut.
func readMaster(fs fault.FS, path string) (masterRecord, bool) {
	f, err := fs.OpenFile(path)
	if err != nil {
		return masterRecord{}, false
	}
	defer f.Close()
	var frame [masterLen]byte
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, masterLen), frame[:]); err != nil {
		return masterRecord{}, false
	}
	if string(frame[:4]) != "RWCK" {
		return masterRecord{}, false
	}
	if crc32.ChecksumIEEE(frame[:masterLen-4]) != binary.LittleEndian.Uint32(frame[masterLen-4:]) {
		return masterRecord{}, false
	}
	return masterRecord{
		redoLSN:  binary.LittleEndian.Uint64(frame[4:12]),
		beginLSN: binary.LittleEndian.Uint64(frame[12:20]),
		endLSN:   binary.LittleEndian.Uint64(frame[20:28]),
		startSeq: binary.LittleEndian.Uint64(frame[28:36]),
	}, true
}

// Close flushes and closes the log. Every segment handle is closed
// even when the final flush or fsync fails, so Close never leaks a
// descriptor.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	serr := w.syncLocked()
	var cerr error
	for _, s := range w.segs {
		if err := s.f.Close(); err != nil && cerr == nil {
			cerr = err
		}
	}
	if serr != nil {
		return serr
	}
	return cerr
}

// scanFile reads records from the start of f, invoking fn with each
// valid record and the offset just past it. A torn or corrupt record
// ends the scan without error (it is the crash frontier). The scan
// reads through ReadAt so the handle's write position is untouched.
func scanFile(f fault.File, fn func(rec LogRecord, end int64)) error {
	r := bufio.NewReaderSize(io.NewSectionReader(f, 0, 1<<62), 1<<16)
	var off int64
	for {
		rec, n, err := readRecord(r)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, errBadChecksum) {
				return nil
			}
			return err
		}
		off += n
		fn(rec, off)
	}
}

var errBadChecksum = errors.New("storage: wal record checksum mismatch")

// Checkpoint payload codecs. The begin record's After bytes carry the
// active-transaction table (txn id -> first LSN), sorted by id for
// deterministic framing; the end record's After bytes carry the
// redoLSN and the matching begin record's LSN.

func encodeATT(att map[uint64]uint64) []byte {
	ids := make([]uint64, 0, len(att))
	for id := range att {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := binary.LittleEndian.AppendUint32(nil, uint32(len(ids)))
	for _, id := range ids {
		out = binary.LittleEndian.AppendUint64(out, id)
		out = binary.LittleEndian.AppendUint64(out, att[id])
	}
	return out
}

func decodeATT(b []byte) (map[uint64]uint64, bool) {
	if len(b) < 4 {
		return nil, false
	}
	n := binary.LittleEndian.Uint32(b[:4])
	if uint64(len(b)) != 4+uint64(n)*16 {
		return nil, false
	}
	att := make(map[uint64]uint64, n)
	for i := uint32(0); i < n; i++ {
		off := 4 + i*16
		att[binary.LittleEndian.Uint64(b[off:off+8])] = binary.LittleEndian.Uint64(b[off+8 : off+16])
	}
	return att, true
}

func encodeCkptEnd(info CheckpointInfo) []byte {
	out := binary.LittleEndian.AppendUint64(nil, info.RedoLSN)
	return binary.LittleEndian.AppendUint64(out, info.BeginLSN)
}

func decodeCkptEnd(b []byte) (CheckpointInfo, bool) {
	if len(b) != 16 {
		return CheckpointInfo{}, false
	}
	return CheckpointInfo{
		RedoLSN:  binary.LittleEndian.Uint64(b[:8]),
		BeginLSN: binary.LittleEndian.Uint64(b[8:16]),
	}, true
}

// recFixedLen is the fixed part of a record payload: u64 lsn, u64
// txn, u8 kind, u32 page, u16 slot. The minimum structurally valid
// payload adds the two u32 image lengths.
const (
	recFixedLen   = 23
	recMinPayload = recFixedLen + 4 + 4
)

// On-disk record framing:
//
//	u32 payloadLen | u32 crc32(payload) | payload
//
// payload: u64 lsn | u64 txn | u8 kind | u32 page | u16 slot |
//
//	u32 beforeLen | before | u32 afterLen | after
func encodeRecord(rec *LogRecord) []byte {
	frame := make([]byte, 8, 8+recMinPayload+len(rec.Before)+len(rec.After))
	frame = binary.LittleEndian.AppendUint64(frame, rec.LSN)
	frame = binary.LittleEndian.AppendUint64(frame, rec.Txn)
	frame = append(frame, byte(rec.Kind))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(rec.RID.Page))
	frame = binary.LittleEndian.AppendUint16(frame, rec.RID.Slot)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(rec.Before)))
	frame = append(frame, rec.Before...)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(rec.After)))
	frame = append(frame, rec.After...)
	payload := frame[8:]
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	return frame
}

// readRecord decodes one frame. Structural corruption — a payload too
// short for the fixed header, or image lengths overrunning the
// payload — is reported as errBadChecksum so the scan treats it as
// the crash frontier rather than panicking on a slice bound.
func readRecord(r io.Reader) (LogRecord, int64, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return LogRecord{}, 0, err
	}
	payloadLen := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if payloadLen > 16*PageSize || payloadLen < recMinPayload {
		return LogRecord{}, 0, errBadChecksum
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return LogRecord{}, 0, err
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return LogRecord{}, 0, errBadChecksum
	}
	// Validate the image lengths before slicing; uint64 arithmetic
	// keeps a 4 GiB length field from overflowing the bounds checks.
	n := uint64(payloadLen)
	bl := uint64(binary.LittleEndian.Uint32(payload[recFixedLen : recFixedLen+4]))
	if recMinPayload+bl > n {
		return LogRecord{}, 0, errBadChecksum
	}
	al := uint64(binary.LittleEndian.Uint32(payload[recFixedLen+4+bl : recFixedLen+8+bl]))
	if recMinPayload+bl+al != n {
		return LogRecord{}, 0, errBadChecksum
	}
	var rec LogRecord
	rec.LSN = binary.LittleEndian.Uint64(payload[0:8])
	rec.Txn = binary.LittleEndian.Uint64(payload[8:16])
	rec.Kind = LogKind(payload[16])
	rec.RID.Page = PageID(binary.LittleEndian.Uint32(payload[17:21]))
	rec.RID.Slot = binary.LittleEndian.Uint16(payload[21:23])
	if bl > 0 {
		rec.Before = append([]byte(nil), payload[recFixedLen+4:recFixedLen+4+bl]...)
	}
	if al > 0 {
		rec.After = append([]byte(nil), payload[recFixedLen+8+bl:]...)
	}
	return rec, int64(8 + payloadLen), nil
}
