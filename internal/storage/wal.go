package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"repro/internal/fault"
	"repro/internal/obs"
)

// LogKind discriminates write-ahead-log records.
type LogKind uint8

// Log record kinds.
const (
	LogBegin LogKind = iota + 1
	LogInsert
	LogUpdate
	LogDelete
	LogCommit
	LogAbort
	LogCheckpoint
)

// String implements fmt.Stringer.
func (k LogKind) String() string {
	switch k {
	case LogBegin:
		return "BEGIN"
	case LogInsert:
		return "INSERT"
	case LogUpdate:
		return "UPDATE"
	case LogDelete:
		return "DELETE"
	case LogCommit:
		return "COMMIT"
	case LogAbort:
		return "ABORT"
	case LogCheckpoint:
		return "CHECKPOINT"
	}
	return fmt.Sprintf("LogKind(%d)", uint8(k))
}

// LogRecord is one entry in the write-ahead log.
//
// Insert carries After; Delete carries Before; Update carries both.
// Commit/Abort/Begin/Checkpoint carry no images.
type LogRecord struct {
	LSN    uint64
	Txn    uint64
	Kind   LogKind
	RID    RID
	Before []byte
	After  []byte
}

// WAL is an append-only write-ahead log with CRC-protected records.
type WAL struct {
	mu      sync.Mutex
	f       fault.File
	w       *bufio.Writer
	nextLSN uint64
	path    string

	// ioErr latches the first append failure. A failed record write
	// leaves an undefined prefix in the buffered stream, so appending
	// anything after it could interleave a fresh frame with the torn
	// one; the log refuses further traffic instead.
	ioErr error

	// syncs counts fsyncs so Stats can report the effect of group
	// commit; appendDur is the append (serialize + buffer) latency;
	// flushDur/fsyncDur split a Sync into its buffered-flush and
	// stable-storage halves. All standalone by default and rebound by
	// Instrument.
	syncs     *obs.Counter
	appendDur *obs.Histogram
	flushDur  *obs.Histogram
	fsyncDur  *obs.Histogram
}

// OpenWAL opens (creating if necessary) the log file at path on the
// real filesystem and positions the next LSN after the last valid
// record.
func OpenWAL(path string) (*WAL, error) {
	return OpenWALFS(fault.OS{}, path)
}

// OpenWALFS opens the log file at path through fs.
func OpenWALFS(fs fault.FS, path string) (*WAL, error) {
	f, err := fs.OpenFile(path)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	w := &WAL{
		f: f, path: path, nextLSN: 1,
		syncs:     new(obs.Counter),
		appendDur: new(obs.Histogram),
		flushDur:  new(obs.Histogram),
		fsyncDur:  new(obs.Histogram),
	}
	// Scan to find the end of the valid prefix; truncate any torn tail.
	validEnd := int64(0)
	err = w.scan(func(rec LogRecord, end int64) {
		w.nextLSN = rec.LSN + 1
		validEnd = end
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(validEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: truncate torn wal tail: %w", err)
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	w.w = bufio.NewWriterSize(f, 1<<16)
	return w, nil
}

// Instrument rebinds the log's counters into reg. Call it before the
// log sees traffic.
func (w *WAL) Instrument(reg *obs.Registry) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.syncs = reg.Counter("reach_wal_syncs_total", "WAL fsyncs issued.")
	w.appendDur = reg.Histogram("reach_wal_append_seconds", "WAL record append latency.")
	w.flushDur = reg.Histogram("reach_wal_flush_seconds",
		"WAL buffered-writer flush latency during Sync.")
	w.fsyncDur = reg.Histogram("reach_wal_fsync_seconds",
		"WAL fsync (force to stable storage) latency during Sync.")
}

// Append writes rec to the log, assigning and returning its LSN. The
// record is buffered; call Sync to force it to stable storage.
func (w *WAL) Append(rec *LogRecord) (uint64, error) {
	defer w.appendDur.Time()()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.ioErr != nil {
		return 0, fmt.Errorf("storage: wal damaged by earlier append failure: %w", w.ioErr)
	}
	rec.LSN = w.nextLSN
	w.nextLSN++
	frame := encodeRecord(rec)
	if fp := fault.Hit(fault.SiteWALAppend); fp != nil {
		if fp.Torn >= 0 && fp.Torn < len(frame) {
			// A torn append leaves a partial frame in the stream; the
			// log is damaged from here on.
			_, _ = w.w.Write(frame[:fp.Torn])
		}
		w.ioErr = fp.Err
		return 0, fmt.Errorf("storage: wal append: %w", fp.Err)
	}
	if _, err := w.w.Write(frame); err != nil {
		w.ioErr = err
		return 0, fmt.Errorf("storage: wal append: %w", err)
	}
	return rec.LSN, nil
}

// Sync flushes buffered records and forces the log to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	if w.ioErr != nil {
		return fmt.Errorf("storage: wal damaged by earlier append failure: %w", w.ioErr)
	}
	if fp := fault.Hit(fault.SiteWALFlush); fp != nil {
		return fmt.Errorf("storage: wal flush: %w", fp.Err)
	}
	stopFlush := w.flushDur.Time()
	err := w.w.Flush()
	stopFlush()
	if err != nil {
		return err
	}
	if fp := fault.Hit(fault.SiteWALSync); fp != nil {
		return fmt.Errorf("storage: wal fsync: %w", fp.Err)
	}
	stopSync := w.fsyncDur.Time()
	err = w.f.Sync()
	stopSync()
	if err != nil {
		return err
	}
	w.syncs.Inc()
	return nil
}

// Syncs reports the number of fsyncs issued, for the group-commit
// benchmarks.
func (w *WAL) Syncs() uint64 {
	return w.syncs.Value()
}

// NextLSN reports the LSN the next appended record will receive.
func (w *WAL) NextLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN
}

// Records calls fn for every valid record in the log, in LSN order.
func (w *WAL) Records(fn func(LogRecord)) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.w != nil {
		if err := w.w.Flush(); err != nil {
			return err
		}
	}
	return w.scan(func(rec LogRecord, _ int64) { fn(rec) })
}

// Reset truncates the log after a checkpoint has made all effects
// durable in the data file. The next LSN continues from keepLSN so
// page LSNs remain monotone.
func (w *WAL) Reset(keepLSN uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.w.Flush(); err != nil {
		return err
	}
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("storage: wal reset: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	w.w.Reset(w.f)
	w.ioErr = nil // the damaged region, if any, was discarded
	if keepLSN >= w.nextLSN {
		w.nextLSN = keepLSN + 1
	}
	return w.f.Sync()
}

// Close flushes and closes the log. The file handle is closed even
// when the final flush or fsync fails, so Close never leaks a
// descriptor.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	serr := w.syncLocked()
	cerr := w.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// scan reads records from the start of the file, invoking fn with each
// valid record and the file offset just past it. A torn or corrupt
// record ends the scan without error (it is the crash frontier).
func (w *WAL) scan(fn func(rec LogRecord, end int64)) error {
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	r := bufio.NewReaderSize(w.f, 1<<16)
	var off int64
	for {
		rec, n, err := readRecord(r)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, errBadChecksum) {
				return nil
			}
			return err
		}
		off += n
		fn(rec, off)
	}
}

var errBadChecksum = errors.New("storage: wal record checksum mismatch")

// recFixedLen is the fixed part of a record payload: u64 lsn, u64
// txn, u8 kind, u32 page, u16 slot. The minimum structurally valid
// payload adds the two u32 image lengths.
const (
	recFixedLen   = 23
	recMinPayload = recFixedLen + 4 + 4
)

// On-disk record framing:
//
//	u32 payloadLen | u32 crc32(payload) | payload
//
// payload: u64 lsn | u64 txn | u8 kind | u32 page | u16 slot |
//
//	u32 beforeLen | before | u32 afterLen | after
func encodeRecord(rec *LogRecord) []byte {
	frame := make([]byte, 8, 8+recMinPayload+len(rec.Before)+len(rec.After))
	frame = binary.LittleEndian.AppendUint64(frame, rec.LSN)
	frame = binary.LittleEndian.AppendUint64(frame, rec.Txn)
	frame = append(frame, byte(rec.Kind))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(rec.RID.Page))
	frame = binary.LittleEndian.AppendUint16(frame, rec.RID.Slot)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(rec.Before)))
	frame = append(frame, rec.Before...)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(rec.After)))
	frame = append(frame, rec.After...)
	payload := frame[8:]
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	return frame
}

// readRecord decodes one frame. Structural corruption — a payload too
// short for the fixed header, or image lengths overrunning the
// payload — is reported as errBadChecksum so the scan treats it as
// the crash frontier rather than panicking on a slice bound.
func readRecord(r io.Reader) (LogRecord, int64, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return LogRecord{}, 0, err
	}
	payloadLen := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if payloadLen > 16*PageSize || payloadLen < recMinPayload {
		return LogRecord{}, 0, errBadChecksum
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return LogRecord{}, 0, err
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return LogRecord{}, 0, errBadChecksum
	}
	// Validate the image lengths before slicing; uint64 arithmetic
	// keeps a 4 GiB length field from overflowing the bounds checks.
	n := uint64(payloadLen)
	bl := uint64(binary.LittleEndian.Uint32(payload[recFixedLen : recFixedLen+4]))
	if recMinPayload+bl > n {
		return LogRecord{}, 0, errBadChecksum
	}
	al := uint64(binary.LittleEndian.Uint32(payload[recFixedLen+4+bl : recFixedLen+8+bl]))
	if recMinPayload+bl+al != n {
		return LogRecord{}, 0, errBadChecksum
	}
	var rec LogRecord
	rec.LSN = binary.LittleEndian.Uint64(payload[0:8])
	rec.Txn = binary.LittleEndian.Uint64(payload[8:16])
	rec.Kind = LogKind(payload[16])
	rec.RID.Page = PageID(binary.LittleEndian.Uint32(payload[17:21]))
	rec.RID.Slot = binary.LittleEndian.Uint16(payload[21:23])
	if bl > 0 {
		rec.Before = append([]byte(nil), payload[recFixedLen+4:recFixedLen+4+bl]...)
	}
	if al > 0 {
		rec.After = append([]byte(nil), payload[recFixedLen+8+bl:]...)
	}
	return rec, int64(8 + payloadLen), nil
}
