package storage

import (
	"bytes"
	"path/filepath"
	"testing"
	"testing/quick"
)

// Property: WAL records of arbitrary content round-trip through the
// on-disk framing.
func TestWALRecordRoundTripProperty(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	type spec struct {
		Txn    uint64
		Kind   uint8
		Page   uint32
		Slot   uint16
		Before []byte
		After  []byte
	}
	var want []spec
	f := func(s spec) bool {
		s.Kind = s.Kind%7 + 1
		rec := LogRecord{
			Txn:    s.Txn,
			Kind:   LogKind(s.Kind),
			RID:    RID{Page: PageID(s.Page), Slot: s.Slot},
			Before: s.Before,
			After:  s.After,
		}
		if _, err := w.Append(&rec); err != nil {
			return false
		}
		want = append(want, s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	var got []LogRecord
	if err := w.Records(func(r LogRecord) { got = append(got, r) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i, g := range got {
		s := want[i]
		if g.Txn != s.Txn || g.Kind != LogKind(s.Kind) ||
			g.RID.Page != PageID(s.Page) || g.RID.Slot != s.Slot ||
			!bytes.Equal(g.Before, s.Before) || !bytes.Equal(g.After, s.After) {
			t.Fatalf("record %d mismatch: got %+v want %+v", i, g, s)
		}
	}
}

// Property: a store filled with arbitrary records returns exactly
// those records after close and reopen.
func TestStoreDurabilityProperty(t *testing.T) {
	f := func(payloads [][]byte) bool {
		dir := t.TempDir()
		s, err := Open(dir, Options{})
		if err != nil {
			return false
		}
		s.Begin(1)
		type entry struct {
			rid  RID
			data []byte
		}
		var entries []entry
		for _, p := range payloads {
			if len(p) > MaxRecordSize {
				p = p[:MaxRecordSize]
			}
			rid, err := s.Insert(1, p)
			if err != nil {
				return false
			}
			entries = append(entries, entry{rid, append([]byte(nil), p...)})
		}
		if err := s.Commit(1); err != nil {
			return false
		}
		if err := s.Close(); err != nil {
			return false
		}
		s2, err := Open(dir, Options{})
		if err != nil {
			return false
		}
		defer s2.Close()
		for _, e := range entries {
			got, err := s2.Get(e.rid)
			if err != nil || !bytes.Equal(got, e.data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: the page never reports more records than inserts minus
// deletes, and FreeSpace never goes negative.
func TestPageAccountingProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		var p Page
		p.InitPage()
		live := 0
		for _, sz := range sizes {
			n := int(sz%512) + 1
			if _, err := p.Insert(make([]byte, n)); err == nil {
				live++
			}
			if p.FreeSpace() < 0 {
				return false
			}
			if p.NumRecords() != live {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
