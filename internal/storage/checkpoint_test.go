package storage

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/fault"
)

// commitOne runs a single-insert transaction and returns its RID.
func commitOne(t *testing.T, s *Store, txn uint64, payload string) RID {
	t.Helper()
	if err := s.Begin(txn); err != nil {
		t.Fatal(err)
	}
	rid, err := s.Insert(txn, []byte(payload))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(txn); err != nil {
		t.Fatal(err)
	}
	return rid
}

// TestCheckpointFailureSitesRecoverable injects an I/O failure at
// every write boundary the checkpoint protocol owns — segment
// rotation, the WAL fsync, the data-file fsync, the master record
// write, and segment pruning. At each site the checkpoint must fail
// without poisoning the store, a retry must succeed, and a crash
// after the whole dance must still recover every committed record.
func TestCheckpointFailureSitesRecoverable(t *testing.T) {
	sites := []string{
		fault.SiteWALRotate,
		fault.SiteWALSync,
		fault.SitePagerSync,
		fault.SiteCkptMaster,
		fault.SiteWALPrune,
	}
	for _, site := range sites {
		t.Run(site, func(t *testing.T) {
			defer fault.DisarmAll()
			fs := fault.NewShadowFS()
			s, err := Open("db", Options{FS: fs, BufferPoolPages: 4, WALSegmentBytes: 512})
			if err != nil {
				t.Fatal(err)
			}
			var rids []RID
			var vals []string
			for i := 0; i < 4; i++ {
				v := fmt.Sprintf("pre-%s-%d", site, i)
				rids = append(rids, commitOne(t, s, uint64(i+1), v))
				vals = append(vals, v)
			}
			if err := fault.Arm(site, "error-once"); err != nil {
				t.Fatal(err)
			}
			if err := s.Checkpoint(); !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("Checkpoint with %s failing = %v, want injected error", site, err)
			}
			if h := s.CheckpointHealth(); h.Failures != 1 || h.Degraded {
				t.Fatalf("health after one failure = %+v", h)
			}
			// A checkpoint failure never poisons: normal traffic and the
			// retry both proceed.
			v := "post-" + site
			rids = append(rids, commitOne(t, s, 100, v))
			vals = append(vals, v)
			if err := s.Checkpoint(); err != nil {
				t.Fatalf("Checkpoint retry after %s failure: %v", site, err)
			}
			if h := s.CheckpointHealth(); h.Checkpoints == 0 || h.ConsecutiveFailures != 0 {
				t.Fatalf("health after successful retry = %+v", h)
			}
			// Crash and recover: every committed record survives.
			fs.Crash()
			s2, err := Open("db", Options{FS: fs, BufferPoolPages: 4, WALSegmentBytes: 512})
			if err != nil {
				t.Fatalf("recovery open after %s failure run: %v", site, err)
			}
			defer s2.Close()
			for i, rid := range rids {
				got, err := s2.Get(rid)
				if err != nil || !bytes.Equal(got, []byte(vals[i])) {
					t.Fatalf("Get(%d) after recovery = %q, %v; want %q", i, got, err, vals[i])
				}
			}
		})
	}
}

// TestCheckpointRepeatedFailureDegrades pins the health protocol:
// DegradedAfter consecutive failures flip the store to degraded, and
// one success clears the streak and the flag.
func TestCheckpointRepeatedFailureDegrades(t *testing.T) {
	defer fault.DisarmAll()
	fs := fault.NewShadowFS()
	s, err := Open("db", Options{
		FS: fs, BufferPoolPages: 4,
		Checkpoint: CheckpointOptions{DegradedAfter: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	commitOne(t, s, 1, "payload")
	if err := fault.Arm(fault.SiteCkptMaster, "error"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := s.Checkpoint(); !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("Checkpoint %d = %v, want injected error", i, err)
		}
	}
	h := s.CheckpointHealth()
	if !h.Degraded || h.ConsecutiveFailures != 2 || h.LastError == "" {
		t.Fatalf("health after 2 failures = %+v, want degraded", h)
	}
	if st := s.Stats(); !st.CheckpointDegraded {
		t.Fatal("Stats does not surface degraded checkpointing")
	}
	fault.DisarmAll()
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	h = s.CheckpointHealth()
	if h.Degraded || h.ConsecutiveFailures != 0 || h.LastError != "" {
		t.Fatalf("health after recovery checkpoint = %+v, want healthy", h)
	}
}

// TestWALGrowthBoundedUnderCheckpoints is the log-reclamation bound:
// with regular checkpoints the segment chain must stay at a small
// constant length no matter how much history flows through it.
func TestWALGrowthBoundedUnderCheckpoints(t *testing.T) {
	fs := fault.NewShadowFS()
	s, err := Open("db", Options{FS: fs, BufferPoolPages: 4, WALSegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	maxSegs := 0
	for round := 0; round < 30; round++ {
		txn := uint64(round + 1)
		if err := s.Begin(txn); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 4; j++ {
			if _, err := s.Insert(txn, bytes.Repeat([]byte{'x'}, 200)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Commit(txn); err != nil {
			t.Fatal(err)
		}
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if n := s.Stats().WALSegments; n > maxSegs {
			maxSegs = n
		}
	}
	st := s.Stats()
	if st.WALRotations < 10 || st.WALPrunes < 10 {
		t.Fatalf("rotation/pruning barely exercised: %d rotations, %d prunes", st.WALRotations, st.WALPrunes)
	}
	// Each checkpoint prunes everything before its redoLSN, so the
	// chain never holds more than the current window plus the sealed
	// predecessor or two.
	if maxSegs > 4 {
		t.Fatalf("segment chain grew to %d segments despite per-round checkpoints", maxSegs)
	}
	if st.WALSegmentBytes > 8*1024 {
		t.Fatalf("WAL holds %d bytes despite per-round checkpoints", st.WALSegmentBytes)
	}
}

// waitForCheckpoints polls until the store has taken at least n
// checkpoints, advancing the virtual clock each round so age-based
// wakeups fire regardless of when the background loop armed its timer.
func waitForCheckpoints(t *testing.T, s *Store, vc *clock.Virtual, advance time.Duration, n uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.CheckpointHealth().Checkpoints >= n {
			return
		}
		if vc != nil {
			vc.Advance(advance)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("background checkpointer took %d checkpoints, want >= %d",
		s.CheckpointHealth().Checkpoints, n)
}

// TestBackgroundCheckpointerByteTrigger: once the log grows past
// WALBytes since the last checkpoint, the background goroutine runs
// one without any clock movement.
func TestBackgroundCheckpointerByteTrigger(t *testing.T) {
	vc := clock.NewVirtual(time.Date(1995, 3, 6, 0, 0, 0, 0, time.UTC))
	fs := fault.NewShadowFS()
	s, err := Open("db", Options{
		FS: fs, BufferPoolPages: 4, WALSegmentBytes: 1024,
		Checkpoint: CheckpointOptions{
			Auto: true, WALBytes: 2048, Interval: time.Hour, Clock: vc,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 8; i++ {
		if err := s.Begin(uint64(i + 1)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Insert(uint64(i+1), bytes.Repeat([]byte{'b'}, 400)); err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(uint64(i + 1)); err != nil {
			t.Fatal(err)
		}
	}
	waitForCheckpoints(t, s, nil, 0, 1)
}

// TestBackgroundCheckpointerAgeTrigger: with the byte trigger out of
// reach, advancing the virtual clock past Interval still produces a
// checkpoint.
func TestBackgroundCheckpointerAgeTrigger(t *testing.T) {
	vc := clock.NewVirtual(time.Date(1995, 3, 6, 0, 0, 0, 0, time.UTC))
	fs := fault.NewShadowFS()
	s, err := Open("db", Options{
		FS: fs, BufferPoolPages: 4,
		Checkpoint: CheckpointOptions{
			Auto: true, WALBytes: 1 << 30, Interval: 30 * time.Second, Clock: vc,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	commitOne(t, s, 1, "aged")
	waitForCheckpoints(t, s, vc, 31*time.Second, 1)
}

// TestRecoveryWindowBounded verifies restart cost tracks the distance
// to the last completed checkpoint, not total history: after a long
// committed prefix and a checkpoint, a crash replays only the tail.
func TestRecoveryWindowBounded(t *testing.T) {
	fs := fault.NewShadowFS()
	s, err := Open("db", Options{FS: fs, BufferPoolPages: 4, WALSegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	var rids []RID
	for i := 0; i < 40; i++ {
		rids = append(rids, commitOne(t, s, uint64(i+1), fmt.Sprintf("bulk-%02d", i)))
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rids = append(rids, commitOne(t, s, uint64(100+i), fmt.Sprintf("tail-%d", i)))
	}
	fs.Crash()

	s2, err := Open("db", Options{FS: fs, BufferPoolPages: 4, WALSegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Stats()
	// 40 bulk transactions are ~120 records; the bounded scan reads
	// only the checkpoint pair plus the 3-transaction tail.
	if st.RecoveryRecordsScanned == 0 || st.RecoveryRecordsScanned > 20 {
		t.Fatalf("recovery scanned %d records; want a small post-checkpoint tail", st.RecoveryRecordsScanned)
	}
	if st.RecoveryRecordsReplayed > st.RecoveryRecordsScanned {
		t.Fatalf("replayed %d > scanned %d", st.RecoveryRecordsReplayed, st.RecoveryRecordsScanned)
	}
	for i, rid := range rids {
		if _, err := s2.Get(rid); err != nil {
			t.Fatalf("record %d lost after bounded recovery: %v", i, err)
		}
	}
}
