package storage

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/fault"
	"repro/internal/obs"
)

// BufferPool caches page frames with pin counts and LRU eviction.
//
// The pool enforces the store's no-steal policy: a frame dirtied by a
// transaction that has not yet committed is never written back or
// evicted. When every frame is pinned or steal-protected, the pool
// grows past its nominal capacity rather than failing, and shrinks
// back as frames become evictable.
type BufferPool struct {
	pager    *Pager
	capacity int

	mu     sync.Mutex
	frames map[PageID]*frame
	lru    *list.List // of PageID; front = most recently used

	// lsnSrc reports the LSN the next WAL record will get; a frame
	// crossing clean->dirty captures it as its recLSN (the earliest log
	// record whose effect might not be on disk). The fuzzy checkpoint
	// takes the min over dirty frames as a redoLSN bound.
	lsnSrc func() uint64

	// hits/misses are standalone by default and rebound into the
	// shared registry when the store is opened with Metrics.
	hits   *obs.Counter
	misses *obs.Counter

	// evictions counts frames evicted; evictStall is the time a Pin
	// or PinNew stalled writing a dirty victim back to the pager.
	evictions  *obs.Counter
	evictStall *obs.Histogram
}

type frame struct {
	page    Page
	pins    int
	dirty   bool
	noSteal bool // dirtied by an in-flight transaction
	// flushing marks a frame whose snapshot a fuzzy checkpoint is
	// writing back off-lock; eviction must not write a newer version
	// underneath it (the checkpoint's stale copy would then clobber
	// the newer image on disk).
	flushing bool
	recLSN   uint64 // first LSN that dirtied the frame since it was last clean
	version  uint64 // bumped on every dirtying Unpin; detects redirty during flush
	lruElem  *list.Element
}

// SetRecLSNSource installs the next-LSN callback consulted when a
// frame goes dirty. Call before the pool sees traffic.
func (bp *BufferPool) SetRecLSNSource(fn func() uint64) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.lsnSrc = fn
}

// NewBufferPool returns a pool of the given nominal capacity over the
// pager. Capacity must be at least 1.
func NewBufferPool(pager *Pager, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		pager:      pager,
		capacity:   capacity,
		frames:     make(map[PageID]*frame),
		lru:        list.New(),
		hits:       new(obs.Counter),
		misses:     new(obs.Counter),
		evictions:  new(obs.Counter),
		evictStall: new(obs.Histogram),
	}
}

// Instrument rebinds the pool's hit/miss counters into reg. Call it
// before the pool sees traffic.
func (bp *BufferPool) Instrument(reg *obs.Registry) {
	const name, help = "reach_buffer_lookups_total", "Buffer-pool page lookups by result."
	bp.hits = reg.Counter(name, help, "result", "hit")
	bp.misses = reg.Counter(name, help, "result", "miss")
	bp.evictions = reg.Counter("reach_buffer_evictions_total",
		"Buffer-pool frames evicted to make room.")
	bp.evictStall = reg.Histogram("reach_buffer_evict_stall_seconds",
		"Time a page fetch stalled writing a dirty eviction victim back.")
}

// Stats reports cumulative hit and miss counts.
func (bp *BufferPool) Stats() (hits, misses uint64) {
	return bp.hits.Value(), bp.misses.Value()
}

// Pin fetches page id into the pool and pins it. The caller must call
// Unpin when done with the returned Page.
func (bp *BufferPool) Pin(id PageID) (*Page, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if fr, ok := bp.frames[id]; ok {
		bp.hits.Inc()
		fr.pins++
		bp.lru.MoveToFront(fr.lruElem)
		return &fr.page, nil
	}
	bp.misses.Inc()
	if err := bp.evictLocked(); err != nil {
		return nil, err
	}
	fr := &frame{pins: 1}
	if err := bp.pager.Read(id, &fr.page); err != nil {
		return nil, err
	}
	fr.lruElem = bp.lru.PushFront(id)
	bp.frames[id] = fr
	return &fr.page, nil
}

// PinNew allocates a fresh page, pins it, and returns its ID.
func (bp *BufferPool) PinNew() (PageID, *Page, error) {
	id, err := bp.pager.Allocate()
	if err != nil {
		return InvalidPageID, nil, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if err := bp.evictLocked(); err != nil {
		return InvalidPageID, nil, err
	}
	fr := &frame{pins: 1}
	fr.page.InitPage()
	fr.lruElem = bp.lru.PushFront(id)
	bp.frames[id] = fr
	return id, &fr.page, nil
}

// Unpin releases one pin on page id. dirty marks the frame modified;
// noSteal additionally marks it modified by an in-flight transaction.
func (bp *BufferPool) Unpin(id PageID, dirty, noSteal bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fr, ok := bp.frames[id]
	if !ok || fr.pins == 0 {
		panic(fmt.Sprintf("storage: Unpin(%d) without pin", id))
	}
	fr.pins--
	if dirty {
		if !fr.dirty {
			fr.dirty = true
			if bp.lsnSrc != nil {
				fr.recLSN = bp.lsnSrc()
			}
		}
		fr.version++
	}
	if noSteal {
		fr.noSteal = true
	}
}

// ReleaseSteal clears the no-steal mark on page id, making the frame
// writable and evictable again. The store calls it when the last
// transaction that dirtied the page commits or aborts.
func (bp *BufferPool) ReleaseSteal(id PageID) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if fr, ok := bp.frames[id]; ok {
		fr.noSteal = false
	}
}

// evictLocked makes room for one more frame if the pool is at or over
// capacity. Pinned and no-steal frames are skipped; if none is
// evictable the pool simply grows.
func (bp *BufferPool) evictLocked() error {
	if len(bp.frames) < bp.capacity {
		return nil
	}
	for e := bp.lru.Back(); e != nil; e = e.Prev() {
		id := e.Value.(PageID)
		fr := bp.frames[id]
		if fr.pins > 0 || fr.noSteal || fr.flushing {
			continue
		}
		if fr.dirty {
			if fp := fault.Hit(fault.SiteBufferEvict); fp != nil {
				return fmt.Errorf("storage: evict page %d: %w", id, fp.Err)
			}
			stop := bp.evictStall.Time()
			err := bp.pager.Write(id, &fr.page)
			stop()
			if err != nil {
				return err
			}
		}
		bp.lru.Remove(e)
		delete(bp.frames, id)
		bp.evictions.Inc()
		return nil
	}
	return nil // everything pinned or protected: grow
}

// FlushAll writes every dirty, steal-safe frame back to the pager.
// Frames still protected by in-flight transactions are skipped.
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for id, fr := range bp.frames {
		if fr.dirty && !fr.noSteal {
			if err := bp.pager.Write(id, &fr.page); err != nil {
				return err
			}
			fr.dirty = false
			fr.recLSN = 0
		}
	}
	return nil
}

// DirtyIDs snapshots the IDs of dirty, steal-safe frames — the fuzzy
// checkpoint's working set.
func (bp *BufferPool) DirtyIDs() []PageID {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	var ids []PageID
	for id, fr := range bp.frames {
		if fr.dirty && !fr.noSteal {
			ids = append(ids, id)
		}
	}
	return ids
}

// SnapshotFrame copies page id's bytes into dst and marks the frame
// flushing, returning the frame version the copy reflects. It reports
// false when the frame is gone, clean, steal-protected, or already
// being flushed. The caller must also hold the store mutex so the copy
// cannot catch a record mutation mid-write, and must pair a true
// return with EndFlush.
func (bp *BufferPool) SnapshotFrame(id PageID, dst *Page) (uint64, bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fr, ok := bp.frames[id]
	if !ok || !fr.dirty || fr.noSteal || fr.flushing {
		return 0, false
	}
	*dst = fr.page
	fr.flushing = true
	return fr.version, true
}

// EndFlush ends a SnapshotFrame window. When the write-back (and its
// fsync) succeeded and nobody redirtied the frame meanwhile, the frame
// becomes clean; otherwise it stays dirty and a later checkpoint
// retries.
func (bp *BufferPool) EndFlush(id PageID, version uint64, written bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fr, ok := bp.frames[id]
	if !ok {
		return
	}
	fr.flushing = false
	if written && fr.version == version {
		fr.dirty = false
		fr.recLSN = 0
	}
}

// MinDirtyRecLSN reports the smallest recLSN over dirty frames, or 0
// when no dirty frame carries one — the dirty-page contribution to a
// fuzzy checkpoint's redoLSN.
func (bp *BufferPool) MinDirtyRecLSN() uint64 {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	var minLSN uint64
	for _, fr := range bp.frames {
		if fr.dirty && fr.recLSN != 0 && (minLSN == 0 || fr.recLSN < minLSN) {
			minLSN = fr.recLSN
		}
	}
	return minLSN
}

// Len reports the number of resident frames.
func (bp *BufferPool) Len() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return len(bp.frames)
}
