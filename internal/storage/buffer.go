package storage

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/fault"
	"repro/internal/obs"
)

// BufferPool caches page frames with pin counts and LRU eviction.
//
// The pool enforces the store's no-steal policy: a frame dirtied by a
// transaction that has not yet committed is never written back or
// evicted. When every frame is pinned or steal-protected, the pool
// grows past its nominal capacity rather than failing, and shrinks
// back as frames become evictable.
type BufferPool struct {
	pager    *Pager
	capacity int

	mu     sync.Mutex
	frames map[PageID]*frame
	lru    *list.List // of PageID; front = most recently used

	// hits/misses are standalone by default and rebound into the
	// shared registry when the store is opened with Metrics.
	hits   *obs.Counter
	misses *obs.Counter

	// evictions counts frames evicted; evictStall is the time a Pin
	// or PinNew stalled writing a dirty victim back to the pager.
	evictions  *obs.Counter
	evictStall *obs.Histogram
}

type frame struct {
	page    Page
	pins    int
	dirty   bool
	noSteal bool // dirtied by an in-flight transaction
	lruElem *list.Element
}

// NewBufferPool returns a pool of the given nominal capacity over the
// pager. Capacity must be at least 1.
func NewBufferPool(pager *Pager, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		pager:      pager,
		capacity:   capacity,
		frames:     make(map[PageID]*frame),
		lru:        list.New(),
		hits:       new(obs.Counter),
		misses:     new(obs.Counter),
		evictions:  new(obs.Counter),
		evictStall: new(obs.Histogram),
	}
}

// Instrument rebinds the pool's hit/miss counters into reg. Call it
// before the pool sees traffic.
func (bp *BufferPool) Instrument(reg *obs.Registry) {
	const name, help = "reach_buffer_lookups_total", "Buffer-pool page lookups by result."
	bp.hits = reg.Counter(name, help, "result", "hit")
	bp.misses = reg.Counter(name, help, "result", "miss")
	bp.evictions = reg.Counter("reach_buffer_evictions_total",
		"Buffer-pool frames evicted to make room.")
	bp.evictStall = reg.Histogram("reach_buffer_evict_stall_seconds",
		"Time a page fetch stalled writing a dirty eviction victim back.")
}

// Stats reports cumulative hit and miss counts.
func (bp *BufferPool) Stats() (hits, misses uint64) {
	return bp.hits.Value(), bp.misses.Value()
}

// Pin fetches page id into the pool and pins it. The caller must call
// Unpin when done with the returned Page.
func (bp *BufferPool) Pin(id PageID) (*Page, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if fr, ok := bp.frames[id]; ok {
		bp.hits.Inc()
		fr.pins++
		bp.lru.MoveToFront(fr.lruElem)
		return &fr.page, nil
	}
	bp.misses.Inc()
	if err := bp.evictLocked(); err != nil {
		return nil, err
	}
	fr := &frame{pins: 1}
	if err := bp.pager.Read(id, &fr.page); err != nil {
		return nil, err
	}
	fr.lruElem = bp.lru.PushFront(id)
	bp.frames[id] = fr
	return &fr.page, nil
}

// PinNew allocates a fresh page, pins it, and returns its ID.
func (bp *BufferPool) PinNew() (PageID, *Page, error) {
	id, err := bp.pager.Allocate()
	if err != nil {
		return InvalidPageID, nil, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if err := bp.evictLocked(); err != nil {
		return InvalidPageID, nil, err
	}
	fr := &frame{pins: 1}
	fr.page.InitPage()
	fr.lruElem = bp.lru.PushFront(id)
	bp.frames[id] = fr
	return id, &fr.page, nil
}

// Unpin releases one pin on page id. dirty marks the frame modified;
// noSteal additionally marks it modified by an in-flight transaction.
func (bp *BufferPool) Unpin(id PageID, dirty, noSteal bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fr, ok := bp.frames[id]
	if !ok || fr.pins == 0 {
		panic(fmt.Sprintf("storage: Unpin(%d) without pin", id))
	}
	fr.pins--
	if dirty {
		fr.dirty = true
	}
	if noSteal {
		fr.noSteal = true
	}
}

// ReleaseSteal clears the no-steal mark on page id, making the frame
// writable and evictable again. The store calls it when the last
// transaction that dirtied the page commits or aborts.
func (bp *BufferPool) ReleaseSteal(id PageID) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if fr, ok := bp.frames[id]; ok {
		fr.noSteal = false
	}
}

// evictLocked makes room for one more frame if the pool is at or over
// capacity. Pinned and no-steal frames are skipped; if none is
// evictable the pool simply grows.
func (bp *BufferPool) evictLocked() error {
	if len(bp.frames) < bp.capacity {
		return nil
	}
	for e := bp.lru.Back(); e != nil; e = e.Prev() {
		id := e.Value.(PageID)
		fr := bp.frames[id]
		if fr.pins > 0 || fr.noSteal {
			continue
		}
		if fr.dirty {
			if fp := fault.Hit(fault.SiteBufferEvict); fp != nil {
				return fmt.Errorf("storage: evict page %d: %w", id, fp.Err)
			}
			stop := bp.evictStall.Time()
			err := bp.pager.Write(id, &fr.page)
			stop()
			if err != nil {
				return err
			}
		}
		bp.lru.Remove(e)
		delete(bp.frames, id)
		bp.evictions.Inc()
		return nil
	}
	return nil // everything pinned or protected: grow
}

// FlushAll writes every dirty, steal-safe frame back to the pager.
// Frames still protected by in-flight transactions are skipped.
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for id, fr := range bp.frames {
		if fr.dirty && !fr.noSteal {
			if err := bp.pager.Write(id, &fr.page); err != nil {
				return err
			}
			fr.dirty = false
		}
	}
	return nil
}

// Len reports the number of resident frames.
func (bp *BufferPool) Len() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return len(bp.frames)
}
