package query

import (
	"fmt"
	"testing"

	"repro/internal/eca"
	"repro/internal/oodb"
)

func newQP(t *testing.T) (*Processor, *oodb.DB, *eca.Engine) {
	t.Helper()
	db, err := oodb.Open(oodb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sensor := oodb.NewClass("Sensor",
		oodb.Attr{Name: "name", Type: oodb.TString},
		oodb.Attr{Name: "val", Type: oodb.TInt},
		oodb.Attr{Name: "zone", Type: oodb.TString},
	)
	sensor.Monitored = true
	if err := db.Dictionary().Register(sensor); err != nil {
		t.Fatal(err)
	}
	thermo := oodb.NewClass("Thermometer", oodb.Attr{Name: "unit", Type: oodb.TString})
	thermo.Super = "Sensor"
	thermo.Monitored = true
	if err := db.Dictionary().Register(thermo); err != nil {
		t.Fatal(err)
	}
	e := eca.New(db, eca.Options{})
	t.Cleanup(e.Close)
	return New(db, e), db, e
}

func seed(t *testing.T, db *oodb.DB, n int) []*oodb.Object {
	t.Helper()
	tx := db.Begin()
	var objs []*oodb.Object
	for i := 0; i < n; i++ {
		obj, err := db.NewObject(tx, "Sensor")
		if err != nil {
			t.Fatal(err)
		}
		db.Set(tx, obj, "name", fmt.Sprintf("s%02d", i))
		db.Set(tx, obj, "val", int64(i%10))
		db.Set(tx, obj, "zone", []string{"north", "south"}[i%2])
		objs = append(objs, obj)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return objs
}

func TestSelectScanWithPredicates(t *testing.T) {
	p, db, _ := newQP(t)
	seed(t, db, 20)
	tx := db.Begin()
	defer tx.Commit()
	got, err := p.Select(tx, "Sensor", Pred{Attr: "val", Op: Eq, Value: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("val==3 matched %d, want 2", len(got))
	}
	got, err = p.Select(tx, "Sensor",
		Pred{Attr: "val", Op: Ge, Value: 5},
		Pred{Attr: "zone", Op: Eq, Value: "north"})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range got {
		v, _ := db.Get(tx, o, "val")
		z, _ := db.Get(tx, o, "zone")
		if v.(int64) < 5 || z != "north" {
			t.Fatalf("predicate violated: val=%v zone=%v", v, z)
		}
	}
	if len(got) != 5 { // vals 6,8 north? i%10>=5 and i%2==0 → i in {6,8,16,18} plus... compute: i=6,8,16,18 val 6,8,6,8 → 4? recount below
		// indices 0..19, zone north when i even; val = i%10 >= 5 → i%10 in 5..9.
		// even i with i%10 in {6,8}: 6, 8, 16, 18 → 4 matches.
		if len(got) != 4 {
			t.Fatalf("conjunctive query matched %d, want 4", len(got))
		}
	}
}

func TestSelectIncludesSubclasses(t *testing.T) {
	p, db, _ := newQP(t)
	tx := db.Begin()
	s, _ := db.NewObject(tx, "Sensor")
	db.Set(tx, s, "val", 1)
	th, _ := db.NewObject(tx, "Thermometer")
	db.Set(tx, th, "val", 1)
	tx.Commit()
	tx2 := db.Begin()
	defer tx2.Commit()
	got, err := p.Select(tx2, "Sensor", Pred{Attr: "val", Op: Eq, Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("superclass query matched %d, want 2 (incl. subclass)", len(got))
	}
	got, _ = p.Select(tx2, "Thermometer")
	if len(got) != 1 {
		t.Fatalf("subclass query matched %d, want 1", len(got))
	}
}

func TestIndexProbeEqualsScan(t *testing.T) {
	p, db, _ := newQP(t)
	seed(t, db, 50)
	tx := db.Begin()
	scan, err := p.Select(tx, "Sensor", Pred{Attr: "val", Op: Eq, Value: 7})
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	ix, err := p.CreateIndex("Sensor", "val")
	if err != nil {
		t.Fatal(err)
	}
	if ix.Size() != 50 {
		t.Fatalf("index size = %d, want 50", ix.Size())
	}
	tx2 := db.Begin()
	probed, err := p.Select(tx2, "Sensor", Pred{Attr: "val", Op: Eq, Value: 7})
	if err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
	if len(probed) != len(scan) {
		t.Fatalf("index probe %d results, scan %d", len(probed), len(scan))
	}
	for i := range probed {
		if probed[i].OID() != scan[i].OID() {
			t.Fatal("index probe and scan disagree")
		}
	}
}

func TestIndexMaintainedByRules(t *testing.T) {
	p, db, _ := newQP(t)
	objs := seed(t, db, 10)
	ix, err := p.CreateIndex("Sensor", "val")
	if err != nil {
		t.Fatal(err)
	}

	// Update moves the entry between buckets.
	tx := db.Begin()
	if err := db.Set(tx, objs[0], "val", 99); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	if got := ix.Lookup(int64(99)); len(got) != 1 || got[0] != objs[0].OID() {
		t.Fatalf("index after update: %v", got)
	}
	if got := ix.Lookup(int64(0)); len(got) != 0 {
		t.Fatalf("old bucket still has %v", got)
	}

	// Create adds, delete removes.
	tx2 := db.Begin()
	fresh, _ := db.NewObject(tx2, "Sensor")
	db.Set(tx2, fresh, "val", 99)
	db.Delete(tx2, objs[1])
	tx2.Commit()
	if got := ix.Lookup(int64(99)); len(got) != 2 {
		t.Fatalf("index after create: %v", got)
	}
	if got := ix.Lookup(int64(1)); len(got) != 0 {
		t.Fatalf("index after delete: %v", got)
	}
}

func TestIndexRolledBackOnAbort(t *testing.T) {
	p, db, _ := newQP(t)
	objs := seed(t, db, 5)
	ix, err := p.CreateIndex("Sensor", "val")
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	db.Set(tx, objs[0], "val", 77)
	created, _ := db.NewObject(tx, "Sensor")
	db.Set(tx, created, "val", 77)
	tx.Abort()
	if got := ix.Lookup(int64(77)); len(got) != 0 {
		t.Fatalf("index kept aborted entries: %v", got)
	}
	if got := ix.Lookup(int64(0)); len(got) != 1 || got[0] != objs[0].OID() {
		t.Fatalf("index lost the pre-abort entry: %v", got)
	}
}

func TestCreateIndexErrors(t *testing.T) {
	p, db, _ := newQP(t)
	if _, err := p.CreateIndex("NoSuchClass", "val"); err == nil {
		t.Fatal("index on unknown class created")
	}
	if _, err := p.CreateIndex("Sensor", "nope"); err == nil {
		t.Fatal("index on unknown attribute created")
	}
	unmonitored := oodb.NewClass("Plain", oodb.Attr{Name: "x", Type: oodb.TInt})
	db.Dictionary().Register(unmonitored)
	if _, err := p.CreateIndex("Plain", "x"); err == nil {
		t.Fatal("index on unmonitored class created")
	}
	if _, err := p.CreateIndex("Sensor", "val"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CreateIndex("Sensor", "val"); err == nil {
		t.Fatal("duplicate index created")
	}
	if !p.DropIndex("Sensor", "val") {
		t.Fatal("DropIndex = false")
	}
	if p.DropIndex("Sensor", "val") {
		t.Fatal("double DropIndex = true")
	}
}

func TestDropIndexStopsMaintenance(t *testing.T) {
	p, db, _ := newQP(t)
	objs := seed(t, db, 3)
	ix, _ := p.CreateIndex("Sensor", "val")
	p.DropIndex("Sensor", "val")
	tx := db.Begin()
	db.Set(tx, objs[0], "val", 42)
	tx.Commit()
	if got := ix.Lookup(int64(42)); len(got) != 0 {
		t.Fatal("dropped index still maintained")
	}
}

func TestOQLQueries(t *testing.T) {
	p, db, _ := newQP(t)
	seed(t, db, 20)
	tx := db.Begin()
	defer tx.Commit()
	cases := []struct {
		q    string
		want int
	}{
		{`select s from Sensor s`, 20},
		{`select s from Sensor s where s.val == 3`, 2},
		{`select s from Sensor s where s.val >= 8`, 4},
		{`select s from Sensor s where s.val < 2 and s.zone == "north"`, 2},
		{`select s from Sensor s where s.name == "s05"`, 1},
		{`select s from Sensor`, 20}, // binder defaults to select variable
	}
	for _, c := range cases {
		got, err := p.OQL(tx, c.q)
		if err != nil {
			t.Fatalf("%s: %v", c.q, err)
		}
		if len(got) != c.want {
			t.Errorf("%s matched %d, want %d", c.q, len(got), c.want)
		}
	}
}

func TestOQLErrors(t *testing.T) {
	p, db, _ := newQP(t)
	tx := db.Begin()
	defer tx.Commit()
	bad := []string{
		``,
		`choose s from Sensor s`,
		`select s from`,
		`select s from Sensor s where`,
		`select s from Sensor s where t.val == 1`,
		`select s from Sensor s where s.val ~~ 1`,
		`select s from Sensor s where s.val == abc`,
		`select s from Sensor s where s.val == 1 garbage`,
	}
	for _, q := range bad {
		if _, err := p.OQL(tx, q); err == nil {
			t.Errorf("OQL accepted %q", q)
		}
	}
}

func TestCount(t *testing.T) {
	p, db, _ := newQP(t)
	seed(t, db, 10)
	tx := db.Begin()
	defer tx.Commit()
	n, err := p.Count(tx, "Sensor", Pred{Attr: "zone", Op: Eq, Value: "south"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("Count = %d, want 5", n)
	}
}

func TestOpString(t *testing.T) {
	for _, op := range []Op{Eq, Ne, Lt, Le, Gt, Ge} {
		if op.String() == "?" {
			t.Errorf("Op %d has no String", op)
		}
	}
}
