// Package query implements an OQL-flavoured query processor over the
// object database: class-extent scans with conjunctive predicates,
// and hash indexes that are maintained by ECA rules — the paper's
// plan to "express other system properties such as index maintenance
// PMs with the active database paradigm" (§7).
package query

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/eca"
	"repro/internal/event"
	"repro/internal/oodb"
	"repro/internal/txn"
)

// Op is a comparison operator in a predicate.
type Op int

// Comparison operators.
const (
	Eq Op = iota + 1
	Ne
	Lt
	Le
	Gt
	Ge
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case Eq:
		return "=="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	}
	return "?"
}

// Pred is one comparison: attr <op> value.
type Pred struct {
	Attr  string
	Op    Op
	Value any
}

// Processor executes queries and owns the secondary indexes.
type Processor struct {
	db     *oodb.DB
	engine *eca.Engine

	mu      sync.RWMutex
	indexes map[string]*HashIndex // key: Class.attr
}

// New returns a query processor. engine may be nil, in which case
// CreateIndex refuses (index maintenance is rule-driven).
func New(db *oodb.DB, engine *eca.Engine) *Processor {
	return &Processor{db: db, engine: engine, indexes: make(map[string]*HashIndex)}
}

// HashIndex is an equality index on one attribute of one class.
type HashIndex struct {
	Class string
	Attr  string

	mu      sync.RWMutex
	buckets map[any][]oodb.OID
	size    int
	// probes/hits feed the index-vs-scan experiment.
	probes uint64
}

func newHashIndex(class, attr string) *HashIndex {
	return &HashIndex{Class: class, Attr: attr, buckets: make(map[any][]oodb.OID)}
}

func (ix *HashIndex) add(key any, oid oodb.OID) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, o := range ix.buckets[key] {
		if o == oid {
			return
		}
	}
	ix.buckets[key] = append(ix.buckets[key], oid)
	ix.size++
}

func (ix *HashIndex) remove(key any, oid oodb.OID) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	bucket := ix.buckets[key]
	for i, o := range bucket {
		if o == oid {
			ix.buckets[key] = append(bucket[:i], bucket[i+1:]...)
			ix.size--
			if len(ix.buckets[key]) == 0 {
				delete(ix.buckets, key)
			}
			return
		}
	}
}

// Lookup returns the OIDs indexed under key.
func (ix *HashIndex) Lookup(key any) []oodb.OID {
	ix.mu.Lock()
	ix.probes++
	out := append([]oodb.OID(nil), ix.buckets[key]...)
	ix.mu.Unlock()
	return out
}

// Size reports the number of indexed entries.
func (ix *HashIndex) Size() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.size
}

// CreateIndex builds a hash index on Class.attr and installs the ECA
// rules that keep it maintained: an immediate rule on the state-change
// event updates the index inside the mutating transaction (with an
// undo compensation so aborts roll the index back), and immediate
// rules on the create/delete lifecycle events insert and remove
// objects. The class must be monitored for the events to flow.
func (p *Processor) CreateIndex(class, attr string) (*HashIndex, error) {
	if p.engine == nil {
		return nil, fmt.Errorf("query: index maintenance needs a rule engine")
	}
	cls, err := p.db.Dictionary().Lookup(class)
	if err != nil {
		return nil, err
	}
	if cls.AttrIndex(attr) < 0 {
		return nil, fmt.Errorf("query: class %s has no attribute %s", class, attr)
	}
	if !cls.Monitored {
		return nil, fmt.Errorf("query: class %s is not monitored; index maintenance rules would not fire", class)
	}
	key := class + "." + attr
	p.mu.Lock()
	if _, dup := p.indexes[key]; dup {
		p.mu.Unlock()
		return nil, fmt.Errorf("query: index on %s already exists", key)
	}
	ix := newHashIndex(class, attr)
	p.indexes[key] = ix
	p.mu.Unlock()

	// Initial build from the extent.
	build := p.db.Begin()
	var buildErr error
	p.db.Extent(class, func(oid oodb.OID) {
		if buildErr != nil {
			return
		}
		obj, err := p.db.Load(build, oid)
		if err != nil {
			buildErr = err
			return
		}
		v, err := p.db.Get(build, obj, attr)
		if err != nil {
			buildErr = err
			return
		}
		ix.add(v, oid)
	})
	if buildErr != nil {
		_ = build.Abort() // buildErr is the failure being reported
		p.DropIndex(class, attr)
		return nil, buildErr
	}
	if err := build.Commit(); err != nil {
		return nil, err
	}

	// Maintenance rules (immediate coupling: the index mutates inside
	// the transaction; compensations undo on abort).
	stateKey := event.StateSpec{Class: class, Attr: attr}.Key()
	err = p.engine.AddRule(&eca.Rule{
		Name:       fmt.Sprintf("__index_%s_update", key),
		EventKey:   stateKey,
		Priority:   1 << 20, // index maintenance ahead of user rules
		ActionMode: eca.Immediate,
		Action: func(rc *eca.RuleCtx) error {
			oid := oodb.OID(rc.Trigger.OID)
			old, new := rc.Trigger.Args[0], rc.Trigger.Args[1]
			ix.remove(old, oid)
			ix.add(new, oid)
			rc.Txn.Top().OnAbort(func() {
				ix.remove(new, oid)
				ix.add(old, oid)
			})
			return nil
		},
	})
	if err != nil {
		p.DropIndex(class, attr)
		return nil, err
	}
	createKey := event.MethodSpec{Class: class, Method: oodb.MethodCreate, When: event.After}.Key()
	err = p.engine.AddRule(&eca.Rule{
		Name:       fmt.Sprintf("__index_%s_create", key),
		EventKey:   createKey,
		Priority:   1 << 20,
		ActionMode: eca.Immediate,
		Action: func(rc *eca.RuleCtx) error {
			oid := oodb.OID(rc.Trigger.OID)
			obj, err := rc.Ctx().Load(oid)
			if err != nil {
				return err
			}
			v, err := rc.Ctx().Get(obj, attr)
			if err != nil {
				return err
			}
			ix.add(v, oid)
			rc.Txn.Top().OnAbort(func() { ix.remove(v, oid) })
			return nil
		},
	})
	if err != nil {
		p.DropIndex(class, attr)
		return nil, err
	}
	deleteKey := event.MethodSpec{Class: class, Method: oodb.MethodDelete, When: event.Before}.Key()
	err = p.engine.AddRule(&eca.Rule{
		Name:       fmt.Sprintf("__index_%s_delete", key),
		EventKey:   deleteKey,
		Priority:   1 << 20,
		ActionMode: eca.Immediate,
		Action: func(rc *eca.RuleCtx) error {
			oid := oodb.OID(rc.Trigger.OID)
			obj, err := rc.Ctx().Load(oid)
			if err != nil {
				return err
			}
			v, err := rc.Ctx().Get(obj, attr)
			if err != nil {
				return err
			}
			ix.remove(v, oid)
			rc.Txn.Top().OnAbort(func() { ix.add(v, oid) })
			return nil
		},
	})
	if err != nil {
		p.DropIndex(class, attr)
		return nil, err
	}
	return ix, nil
}

// DropIndex removes an index and its maintenance rules.
func (p *Processor) DropIndex(class, attr string) bool {
	key := class + "." + attr
	p.mu.Lock()
	_, ok := p.indexes[key]
	delete(p.indexes, key)
	p.mu.Unlock()
	if !ok {
		return false
	}
	if p.engine != nil {
		stateKey := event.StateSpec{Class: class, Attr: attr}.Key()
		p.engine.RemoveRule(stateKey, fmt.Sprintf("__index_%s_update", key))
		createKey := event.MethodSpec{Class: class, Method: oodb.MethodCreate, When: event.After}.Key()
		p.engine.RemoveRule(createKey, fmt.Sprintf("__index_%s_create", key))
		deleteKey := event.MethodSpec{Class: class, Method: oodb.MethodDelete, When: event.Before}.Key()
		p.engine.RemoveRule(deleteKey, fmt.Sprintf("__index_%s_delete", key))
	}
	return true
}

// Index returns the index on Class.attr, or nil.
func (p *Processor) Index(class, attr string) *HashIndex {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.indexes[class+"."+attr]
}

// Select returns the objects of class (including subclasses) whose
// attributes satisfy every predicate, sorted by OID. An equality
// predicate with a matching index turns the scan into a probe.
func (p *Processor) Select(t *txn.Txn, class string, preds ...Pred) ([]*oodb.Object, error) {
	// Index selection: first Eq predicate with an index on the class.
	var probe *HashIndex
	var probeVal any
	for _, pr := range preds {
		if pr.Op != Eq {
			continue
		}
		if ix := p.Index(class, pr.Attr); ix != nil {
			probe = ix
			probeVal = normalize(pr.Value)
			break
		}
	}
	var candidates []oodb.OID
	if probe != nil {
		candidates = probe.Lookup(probeVal)
	} else {
		for _, cls := range p.db.Dictionary().Classes() {
			if !p.db.Dictionary().IsSubclassOf(cls, class) {
				continue
			}
			p.db.Extent(cls, func(oid oodb.OID) { candidates = append(candidates, oid) })
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	var out []*oodb.Object
	for _, oid := range candidates {
		obj, err := p.db.Load(t, oid)
		if err != nil {
			continue // deleted or rolled back concurrently
		}
		ok := true
		for _, pr := range preds {
			v, err := p.db.Get(t, obj, pr.Attr)
			if err != nil {
				ok = false
				break
			}
			match, err := compare(v, pr.Op, pr.Value)
			if err != nil {
				return nil, err
			}
			if !match {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, obj)
		}
	}
	return out, nil
}

// Count is Select without materializing the objects.
func (p *Processor) Count(t *txn.Txn, class string, preds ...Pred) (int, error) {
	objs, err := p.Select(t, class, preds...)
	return len(objs), err
}

// normalize coerces ints so map probes hit the canonical int64 form.
func normalize(v any) any {
	switch x := v.(type) {
	case int:
		return int64(x)
	case int32:
		return int64(x)
	case float32:
		return float64(x)
	}
	return v
}

// compare evaluates v <op> want with numeric coercion.
func compare(v any, op Op, want any) (bool, error) {
	v, want = normalize(v), normalize(want)
	if lf, ok := toFloat(v); ok {
		if rf, ok := toFloat(want); ok {
			switch op {
			case Eq:
				return lf == rf, nil
			case Ne:
				return lf != rf, nil
			case Lt:
				return lf < rf, nil
			case Le:
				return lf <= rf, nil
			case Gt:
				return lf > rf, nil
			case Ge:
				return lf >= rf, nil
			}
		}
	}
	if ls, ok := v.(string); ok {
		if rs, ok := want.(string); ok {
			switch op {
			case Eq:
				return ls == rs, nil
			case Ne:
				return ls != rs, nil
			case Lt:
				return ls < rs, nil
			case Le:
				return ls <= rs, nil
			case Gt:
				return ls > rs, nil
			case Ge:
				return ls >= rs, nil
			}
		}
	}
	if lb, ok := v.(bool); ok {
		if rb, ok := want.(bool); ok {
			switch op {
			case Eq:
				return lb == rb, nil
			case Ne:
				return lb != rb, nil
			}
		}
	}
	switch op {
	case Eq:
		return v == want, nil
	case Ne:
		return v != want, nil
	}
	return false, fmt.Errorf("query: cannot compare %T %v %T", v, op, want)
}

func toFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case int64:
		return float64(n), true
	case float64:
		return n, true
	}
	return 0, false
}
