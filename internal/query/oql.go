package query

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/oodb"
	"repro/internal/txn"
)

// OQL executes a textual query in the OQL[C++] spirit of the Open
// OODB query interface (§5, §7):
//
//	select s from Sensor s where s.val >= 5 and s.name != "broken"
//
// The where clause is a conjunction of attribute-versus-literal
// comparisons; it may be omitted.
func (p *Processor) OQL(t *txn.Txn, q string) ([]*oodb.Object, error) {
	class, preds, err := parseOQL(q)
	if err != nil {
		return nil, err
	}
	return p.Select(t, class, preds...)
}

func parseOQL(q string) (string, []Pred, error) {
	toks := tokenizeOQL(q)
	i := 0
	expect := func(word string) error {
		if i >= len(toks) || !strings.EqualFold(toks[i], word) {
			return fmt.Errorf("query: expected %q in %q", word, q)
		}
		i++
		return nil
	}
	if err := expect("select"); err != nil {
		return "", nil, err
	}
	if i >= len(toks) {
		return "", nil, fmt.Errorf("query: truncated query %q", q)
	}
	binder := toks[i]
	i++
	if err := expect("from"); err != nil {
		return "", nil, err
	}
	if i >= len(toks) {
		return "", nil, fmt.Errorf("query: missing class in %q", q)
	}
	class := toks[i]
	i++
	// Optional rebinding: "from Sensor s".
	if i < len(toks) && !strings.EqualFold(toks[i], "where") {
		binder = toks[i]
		i++
	}
	var preds []Pred
	if i < len(toks) {
		if err := expect("where"); err != nil {
			return "", nil, err
		}
		for {
			if i+2 >= len(toks) {
				return "", nil, fmt.Errorf("query: truncated predicate in %q", q)
			}
			ref, opTok, litTok := toks[i], toks[i+1], toks[i+2]
			i += 3
			attr, ok := strings.CutPrefix(ref, binder+".")
			if !ok {
				return "", nil, fmt.Errorf("query: predicate %q must reference %s.<attr>", ref, binder)
			}
			op, err := parseOp(opTok)
			if err != nil {
				return "", nil, err
			}
			val, err := parseLiteral(litTok)
			if err != nil {
				return "", nil, err
			}
			preds = append(preds, Pred{Attr: attr, Op: op, Value: val})
			if i < len(toks) && strings.EqualFold(toks[i], "and") {
				i++
				continue
			}
			break
		}
	}
	if i != len(toks) {
		return "", nil, fmt.Errorf("query: trailing tokens in %q", q)
	}
	return class, preds, nil
}

func parseOp(s string) (Op, error) {
	switch s {
	case "==", "=":
		return Eq, nil
	case "!=", "<>":
		return Ne, nil
	case "<":
		return Lt, nil
	case "<=":
		return Le, nil
	case ">":
		return Gt, nil
	case ">=":
		return Ge, nil
	}
	return 0, fmt.Errorf("query: unknown operator %q", s)
}

func parseLiteral(s string) (any, error) {
	switch {
	case len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"':
		return s[1 : len(s)-1], nil
	case s == "true":
		return true, nil
	case s == "false":
		return false, nil
	case strings.ContainsAny(s, "."):
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("query: bad literal %q", s)
		}
		return f, nil
	default:
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("query: bad literal %q", s)
		}
		return n, nil
	}
}

// tokenizeOQL splits on whitespace, keeping quoted strings intact.
func tokenizeOQL(q string) []string {
	var toks []string
	var cur strings.Builder
	inStr := false
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for _, r := range q {
		switch {
		case r == '"':
			inStr = !inStr
			cur.WriteRune(r)
		case !inStr && (r == ' ' || r == '\t' || r == '\n'):
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return toks
}
