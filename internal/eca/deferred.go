package eca

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/event"
	"repro/internal/governor"
	"repro/internal/txn"
)

// deferredKey keys the per-top-transaction deferred queue.
type deferredKey struct{}

type deferredQueue struct {
	mu      sync.Mutex
	entries []deferredEntry
}

type deferredEntry struct {
	rule       *Rule
	in         *event.Instance
	at         time.Time // enqueue time; the queue-wait span
	actionOnly bool      // condition already evaluated (imm/def split)
}

func (e *Engine) deferredQueue(top *txn.Txn) *deferredQueue {
	if q, ok := top.Value(deferredKey{}).(*deferredQueue); ok {
		return q
	}
	q := &deferredQueue{}
	top.SetValue(deferredKey{}, q)
	return q
}

// enqueueDeferred queues a whole rule for execution at the top-level
// transaction's EOT.
func (e *Engine) enqueueDeferred(top *txn.Txn, r *Rule, in *event.Instance) {
	in.Retain() // read again at EOT, after the raiser's Recycle
	q := e.deferredQueue(top)
	q.mu.Lock()
	q.entries = append(q.entries, deferredEntry{rule: r, in: in, at: e.clk.Now()})
	q.mu.Unlock()
	e.met.deferredDepth.Add(1)
}

// enqueueDeferredAction queues only the action part (the condition was
// evaluated immediately and held).
func (e *Engine) enqueueDeferredAction(top *txn.Txn, r *Rule, in *event.Instance) {
	in.Retain() // read again at EOT, after the raiser's Recycle
	q := e.deferredQueue(top)
	q.mu.Lock()
	q.entries = append(q.entries, deferredEntry{rule: r, in: in, at: e.clk.Now(), actionOnly: true})
	q.mu.Unlock()
	e.met.deferredDepth.Add(1)
}

// runDeferred drains the top-level transaction's deferred queue at
// EOT. Rules run as subtransactions in priority order; when the
// SimpleBeforeComplex policy is on, rules triggered by simple events
// fire ahead of rules triggered by composite events (§6.4). Rules may
// enqueue further deferred work; rounds are bounded.
func (e *Engine) runDeferred(top *txn.Txn) error {
	q, ok := top.Value(deferredKey{}).(*deferredQueue)
	if !ok {
		return nil
	}
	for round := 0; ; round++ {
		if round >= e.opts.MaxDeferredRounds {
			return fmt.Errorf("eca: deferred rule cascade exceeded %d rounds in txn %d",
				e.opts.MaxDeferredRounds, top.ID())
		}
		q.mu.Lock()
		batch := q.entries
		q.entries = nil
		q.mu.Unlock()
		if len(batch) == 0 {
			return nil
		}
		e.met.deferredDepth.Add(-int64(len(batch)))
		// The governor's second shed rung: from the shedding state on,
		// the whole batch is dead-lettered instead of executed and the
		// triggering transaction commits without it. Deferred rules run
		// in subtransactions of the trigger, so the only semantics lost
		// is the rule work itself — which is exactly what the record in
		// the dead-letter queue preserves for replay. Immediate rules
		// are untouched: they already ran inline, inside the trigger.
		if g := e.gov; g != nil && g.ShouldShed(governor.ClassDeferred) {
			for _, entry := range batch {
				g.NoteShed(governor.ClassDeferred)
				e.exec.addDeadLetter(entry.rule, entry.in, 0, governor.ErrOverloaded, "governor-shed")
			}
			continue
		}
		e.met.rounds.Inc()
		e.met.roundDepth.SetMax(int64(round + 1))
		e.orderDeferred(batch)
		if err := e.runDeferredBatch(top, batch); err != nil {
			return err
		}
	}
}

func (e *Engine) orderDeferred(batch []deferredEntry) {
	tb := e.opts.TieBreak
	sbc := e.opts.SimpleBeforeComplex
	sort.SliceStable(batch, func(i, j int) bool {
		a, b := batch[i], batch[j]
		if sbc {
			as := a.in.Kind != event.KindComposite
			bs := b.in.Kind != event.KindComposite
			if as != bs {
				return as
			}
		}
		return ruleLess(a.rule, b.rule, tb)
	})
}

func (e *Engine) runDeferredBatch(top *txn.Txn, batch []deferredEntry) error {
	run := func(entry deferredEntry) error {
		// The queue-wait span: enqueue (during the transaction) to
		// dequeue (EOT processing).
		e.met.deferredDwell.Observe(e.clk.Now().Sub(entry.at))
		e.span(entry.in.Trace, "enqueue-deferred", entry.rule.Name, entry.at)
		child, err := top.BeginChild()
		if err != nil {
			return fmt.Errorf("eca: deferred rule %s: %w", entry.rule.Name, err)
		}
		e.met.firedDeferred.Inc()
		start := e.clk.Now()
		defer func() { e.met.latDeferred.Observe(e.clk.Now().Sub(start)) }()
		if entry.actionOnly {
			return e.runActionOnly(child, entry.rule, entry.in)
		}
		return e.runRuleGuarded(context.Background(), child, entry.rule, entry.in)
	}
	if e.opts.Exec == ParallelExec && len(batch) > 1 {
		// The batch runs on its own bounded goroutine set, not the
		// detached pool: detached rules may block on locks held by the
		// very transaction whose EOT is running this batch, so sharing
		// the pool could deadlock the commit. Panics are recovered in
		// the batch worker and surface as that entry's error.
		fns := make([]func() error, len(batch))
		for i, entry := range batch {
			entry := entry
			fns[i] = func() error { return run(entry) }
		}
		return errors.Join(runBatch(fns)...)
	}
	for _, entry := range batch {
		if err := run(entry); err != nil {
			return err
		}
	}
	return nil
}

// dropDeferred discards an aborting transaction's queued deferred
// work — the firings die with their trigger — and releases the
// governor's depth accounting for them.
func (e *Engine) dropDeferred(top *txn.Txn) {
	q, ok := top.Value(deferredKey{}).(*deferredQueue)
	if !ok {
		return
	}
	q.mu.Lock()
	n := len(q.entries)
	q.entries = nil
	q.mu.Unlock()
	if n > 0 {
		e.met.deferredDepth.Add(-int64(n))
	}
}

// runActionOnly executes just the action part of a rule whose
// condition was already evaluated immediately (imm/def split), with
// the same panic containment as a full rule body.
func (e *Engine) runActionOnly(t *txn.Txn, r *Rule, in *event.Instance) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = e.recoverRulePanic(t, r, in, p)
		}
	}()
	t.SetTrace(in.Trace)
	t.SetValue(cascadeKey{}, in.Depth+1)
	rc := &RuleCtx{Engine: e, DB: e.db, Txn: t, Trigger: in, Context: context.Background()}
	as := e.clk.Now()
	aerr := r.Action(rc)
	e.met.phaseAction.Observe(e.clk.Now().Sub(as))
	e.span(in.Trace, "action-exec", r.Name, as)
	if aerr != nil {
		e.abortRuleTxn(t, r, in, aerr)
		return fmt.Errorf("eca: deferred rule %s action: %w", r.Name, aerr)
	}
	return e.commitRuleTxn(t, r, in)
}

// Detached firings are routed to the supervised executor; see
// spawnDetached in executor.go.
