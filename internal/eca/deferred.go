package eca

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/event"
	"repro/internal/txn"
)

// deferredKey keys the per-top-transaction deferred queue.
type deferredKey struct{}

type deferredQueue struct {
	mu      sync.Mutex
	entries []deferredEntry
}

type deferredEntry struct {
	rule       *Rule
	in         *event.Instance
	at         time.Time // enqueue time; the queue-wait span
	actionOnly bool      // condition already evaluated (imm/def split)
}

func (e *Engine) deferredQueue(top *txn.Txn) *deferredQueue {
	if q, ok := top.Value(deferredKey{}).(*deferredQueue); ok {
		return q
	}
	q := &deferredQueue{}
	top.SetValue(deferredKey{}, q)
	return q
}

// enqueueDeferred queues a whole rule for execution at the top-level
// transaction's EOT.
func (e *Engine) enqueueDeferred(top *txn.Txn, r *Rule, in *event.Instance) {
	q := e.deferredQueue(top)
	q.mu.Lock()
	q.entries = append(q.entries, deferredEntry{rule: r, in: in, at: e.clk.Now()})
	q.mu.Unlock()
}

// enqueueDeferredAction queues only the action part (the condition was
// evaluated immediately and held).
func (e *Engine) enqueueDeferredAction(top *txn.Txn, r *Rule, in *event.Instance) {
	q := e.deferredQueue(top)
	q.mu.Lock()
	q.entries = append(q.entries, deferredEntry{rule: r, in: in, at: e.clk.Now(), actionOnly: true})
	q.mu.Unlock()
}

// runDeferred drains the top-level transaction's deferred queue at
// EOT. Rules run as subtransactions in priority order; when the
// SimpleBeforeComplex policy is on, rules triggered by simple events
// fire ahead of rules triggered by composite events (§6.4). Rules may
// enqueue further deferred work; rounds are bounded.
func (e *Engine) runDeferred(top *txn.Txn) error {
	q, ok := top.Value(deferredKey{}).(*deferredQueue)
	if !ok {
		return nil
	}
	for round := 0; ; round++ {
		if round >= e.opts.MaxDeferredRounds {
			return fmt.Errorf("eca: deferred rule cascade exceeded %d rounds in txn %d",
				e.opts.MaxDeferredRounds, top.ID())
		}
		q.mu.Lock()
		batch := q.entries
		q.entries = nil
		q.mu.Unlock()
		if len(batch) == 0 {
			return nil
		}
		e.met.rounds.Inc()
		e.met.roundDepth.SetMax(int64(round + 1))
		e.orderDeferred(batch)
		if err := e.runDeferredBatch(top, batch); err != nil {
			return err
		}
	}
}

func (e *Engine) orderDeferred(batch []deferredEntry) {
	tb := e.opts.TieBreak
	sbc := e.opts.SimpleBeforeComplex
	sort.SliceStable(batch, func(i, j int) bool {
		a, b := batch[i], batch[j]
		if sbc {
			as := a.in.Kind != event.KindComposite
			bs := b.in.Kind != event.KindComposite
			if as != bs {
				return as
			}
		}
		return ruleLess(a.rule, b.rule, tb)
	})
}

func (e *Engine) runDeferredBatch(top *txn.Txn, batch []deferredEntry) error {
	run := func(entry deferredEntry) error {
		// The queue-wait span: enqueue (during the transaction) to
		// dequeue (EOT processing).
		e.span(entry.in.Trace, "enqueue-deferred", entry.rule.Name, entry.at)
		child, err := top.BeginChild()
		if err != nil {
			return fmt.Errorf("eca: deferred rule %s: %w", entry.rule.Name, err)
		}
		e.met.firedDeferred.Inc()
		start := e.clk.Now()
		defer func() { e.met.latDeferred.Observe(e.clk.Now().Sub(start)) }()
		if entry.actionOnly {
			rc := &RuleCtx{Engine: e, DB: e.db, Txn: child, Trigger: entry.in}
			as := e.clk.Now()
			err := entry.rule.Action(rc)
			e.span(entry.in.Trace, "action-exec", entry.rule.Name, as)
			if err != nil {
				e.abortRuleTxn(child, entry.rule, entry.in, err)
				return fmt.Errorf("eca: deferred rule %s action: %w", entry.rule.Name, err)
			}
			return e.commitRuleTxn(child, entry.rule, entry.in)
		}
		return e.runRuleIn(child, entry.rule, entry.in)
	}
	if e.opts.Exec == ParallelExec && len(batch) > 1 {
		errs := make([]error, len(batch))
		var wg sync.WaitGroup
		for i, entry := range batch {
			wg.Add(1)
			go func(i int, entry deferredEntry) {
				defer wg.Done()
				errs[i] = run(entry)
			}(i, entry)
		}
		wg.Wait()
		return errors.Join(errs...)
	}
	for _, entry := range batch {
		if err := run(entry); err != nil {
			return err
		}
	}
	return nil
}

// spawnDetached launches a rule in its own top-level transaction under
// one of the four detached modes, enforcing the commit/abort
// dependencies against every transaction the triggering event
// originated from (Table 1: "all commit" / "all abort").
//
// Parallel- and exclusive-causal rules "may begin in parallel" (§3.2):
// their transaction is created and its dependency edges registered
// synchronously at firing time, so the dependency holds no matter how
// the scheduler interleaves the trigger's resolution; only the rule
// body runs asynchronously. Sequential-causal rules may not even
// initiate until the trigger commits, so everything is asynchronous.
func (e *Engine) spawnDetached(r *Rule, in *event.Instance) {
	mode := r.condMode()
	txns := in.Transactions()
	ids := make([]uint64, 0, len(txns))
	for id := range txns {
		ids = append(ids, id)
	}
	e.met.firedDetached.Inc()

	var t *txn.Txn
	var abortErr error
	switch mode {
	case DetachedParallelCausal:
		t = e.beginRuleTxn()
		for _, id := range ids {
			live, st, known := e.txnOutcome(id)
			switch {
			case live != nil:
				t.RequireCommit(live)
			case known && st == txn.Aborted:
				abortErr = fmt.Errorf("eca: rule %s: trigger txn %d aborted", r.Name, id)
			}
		}
	case DetachedExclusiveCausal:
		t = e.beginRuleTxn()
		for _, id := range ids {
			live, st, known := e.txnOutcome(id)
			switch {
			case live != nil:
				t.RequireAbort(live)
			case known && st == txn.Committed:
				abortErr = fmt.Errorf("eca: rule %s: trigger txn %d committed", r.Name, id)
			}
		}
	case Detached:
		t = e.beginRuleTxn()
	}

	e.detachedWG.Add(1)
	go func() {
		defer e.detachedWG.Done()
		if abortErr != nil {
			_ = t.AbortWith(abortErr) // fresh rule txn, abort cannot meaningfully fail
			return
		}
		if mode == DetachedSequentialCausal {
			for _, id := range ids {
				live, st, known := e.txnOutcome(id)
				if live != nil {
					st = live.Wait()
				} else if !known {
					st = txn.Committed // evicted long ago; assume committed
				}
				if st != txn.Committed {
					return
				}
			}
			t = e.beginRuleTxn()
		}
		// Errors are recorded on the rule transaction; a detached rule
		// failure never affects the triggering transaction.
		start := e.clk.Now()
		e.runRuleIn(t, r, in)
		e.met.latDetached.Observe(e.clk.Now().Sub(start))
	}()
}

// WaitDetached blocks until every spawned detached rule execution has
// finished. Tests and the bench harness use it as a barrier.
func (e *Engine) WaitDetached() { e.detachedWG.Wait() }
