package eca

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic" //lint:allow rawatomics event sequence allocator and shutdown flag, not metrics
	"time"

	"repro/internal/algebra"
	"repro/internal/clock"
	"repro/internal/event"
	"repro/internal/governor"
	"repro/internal/obs"
	"repro/internal/oodb"
	"repro/internal/sentry"
	"repro/internal/txn"
)

// ExecStrategy selects how multiple rules fired together execute
// (§6.4): as an ordered ring-sequence or as parallel sibling
// subtransactions.
type ExecStrategy int

// Execution strategies.
const (
	// SequentialExec maps the rule set to an ordered firing sequence.
	SequentialExec ExecStrategy = iota
	// ParallelExec runs the rules as sibling subtransactions on
	// parallel goroutines.
	ParallelExec
)

// HistoryMode selects where event histories are kept (§6.3).
type HistoryMode int

// History modes.
const (
	// DistributedHistory keeps a local history per ECA-manager; a
	// background process consolidates the global history after the
	// transaction ends. This is the REACH design.
	DistributedHistory HistoryMode = iota
	// CentralHistory logs every occurrence into one global history at
	// detection time — the bottleneck the paper avoids; kept for the
	// comparison experiment.
	CentralHistory
)

// Options configure an Engine.
type Options struct {
	// SyncComposition feeds composers inline in the detecting call
	// instead of asynchronously on per-composite goroutines. The
	// default (false) is the paper's asynchronous design.
	SyncComposition bool
	// Exec selects sequential or parallel rule firing.
	Exec ExecStrategy
	// TieBreak orders equal-priority rules.
	TieBreak TieBreak
	// SimpleBeforeComplex additionally orders the deferred queue so
	// rules triggered by simple events fire before rules triggered by
	// composite events (the third deferred-ordering policy of §6.4).
	SimpleBeforeComplex bool
	// History selects distributed or central event histories.
	History HistoryMode
	// LocalHistorySize bounds each manager's local history ring
	// (default 256).
	LocalHistorySize int
	// GlobalHistorySize bounds the consolidated history (default 4096).
	GlobalHistorySize int
	// MaxDeferredRounds bounds cascading deferred rule execution at
	// EOT (default 32).
	MaxDeferredRounds int
	// MaxCascadeDepth is the hard ceiling on rule-cascade depth: an
	// event raised at this depth that would fire further rules trips
	// the cascade guard instead of recursing or spawning unboundedly.
	// 0 means the default of 64; negative disables the ceiling (a
	// static bound installed via SetCascadeBound still applies).
	MaxCascadeDepth int
	// ComposerBuffer is the channel capacity of asynchronous
	// composers (default 1024).
	ComposerBuffer int
	// AllowUnsafeImmediateComposite admits the combination Table 1
	// rejects — immediate rules on single-transaction composite events
	// — by stalling every primitive event until the composers have
	// acknowledged that no immediately-coupled composite completed.
	// It exists so the cost the paper refuses to pay can be measured.
	AllowUnsafeImmediateComposite bool
	// Workers bounds the detached-rule worker pool (default 8).
	Workers int
	// Queue bounds the pending detached-rule queue (default 256).
	Queue int
	// Overload selects what a full queue does to new detached work:
	// block the raising goroutine (default) or shed with ErrOverload.
	Overload OverloadPolicy
	// RuleTimeout bounds each detached rule attempt; the watchdog
	// aborts the rule transaction on expiry. 0 means no deadline.
	RuleTimeout time.Duration
	// RuleRetries is the default retry budget after a retriable abort
	// (deadlock, cancelled lock wait). 0 means the default of 3;
	// negative disables retries.
	RuleRetries int
	// RetryBackoff is the first retry's backoff (default 2ms); each
	// further retry doubles it up to RetryBackoffMax (default 250ms),
	// plus deterministic jitter.
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// BreakerThreshold trips a rule's circuit breaker after N
	// consecutive permanent failures, parking the rule until it is
	// re-armed. 0 means the default of 5; negative disables breakers.
	BreakerThreshold int
	// DeadLetterCapacity bounds the dead-letter ring (default 128).
	DeadLetterCapacity int
	// Metrics is the shared observability registry the engine binds
	// its counters into; nil creates a private registry.
	Metrics *obs.Registry
	// Tracer records event-lifecycle traces; nil creates a private
	// tracer retaining TraceCapacity traces.
	Tracer *obs.Tracer
	// TraceCapacity bounds the private tracer's ring (default 256).
	TraceCapacity int
	// SlowLogThreshold promotes traces whose end-to-end duration
	// crosses it out of the tracer's eviction ring into the slow log.
	// 0 disables promotion (it can be enabled later via the /slowlog
	// surface or the REPL).
	SlowLogThreshold time.Duration
	// SlowLogCapacity bounds the slow log (default 64).
	SlowLogCapacity int
}

func (o Options) withDefaults() Options {
	if o.LocalHistorySize == 0 {
		o.LocalHistorySize = 256
	}
	if o.GlobalHistorySize == 0 {
		o.GlobalHistorySize = 4096
	}
	if o.MaxDeferredRounds == 0 {
		o.MaxDeferredRounds = 32
	}
	if o.MaxCascadeDepth == 0 {
		o.MaxCascadeDepth = 64
	}
	if o.ComposerBuffer == 0 {
		o.ComposerBuffer = 1024
	}
	if o.Workers == 0 {
		o.Workers = 8
	}
	if o.Queue == 0 {
		o.Queue = 256
	}
	if o.RuleRetries == 0 {
		o.RuleRetries = 3
	}
	if o.RetryBackoff == 0 {
		o.RetryBackoff = 2 * time.Millisecond
	}
	if o.RetryBackoffMax == 0 {
		o.RetryBackoffMax = 250 * time.Millisecond
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 5
	}
	if o.DeadLetterCapacity <= 0 {
		o.DeadLetterCapacity = 128
	}
	return o
}

// Stats are cumulative engine counters. They are a view over the
// engine's metric registry — the same numbers /metrics exposes.
type Stats struct {
	Events             uint64
	ImmediateFired     uint64
	DeferredFired      uint64
	DetachedFired      uint64
	CompositesDetected uint64
	SemiComposedGCed   uint64
	DeferredRounds     uint64
}

// engineMetrics are the engine's registry-bound handles, resolved
// once at construction so the hot paths touch only atomics.
type engineMetrics struct {
	events       *obs.Counter
	composites   *obs.Counter
	gced         *obs.Counter
	rounds       *obs.Counter
	roundDepth   *obs.Gauge
	queueDepth   *obs.Gauge
	queueHigh    *obs.Gauge
	backpressure *obs.Counter

	firedImmediate *obs.Counter
	firedDeferred  *obs.Counter
	firedDetached  *obs.Counter
	latImmediate   *obs.Histogram
	latDeferred    *obs.Histogram
	latDetached    *obs.Histogram

	// Latency attribution: rule execution broken into its phases, and
	// how long deferred work sat queued before its EOT round.
	phaseCond     *obs.Histogram
	phaseAction   *obs.Histogram
	phaseCommit   *obs.Histogram
	phaseAbort    *obs.Histogram
	deferredDwell *obs.Histogram

	// cascade-depth guard series.
	cascadeTrips *obs.Counter
	cascadeHigh  *obs.Gauge

	// supervised-executor series.
	retries       *obs.Counter
	panics        *obs.Counter
	deadlines     *obs.Counter
	rejOverload   *obs.Counter
	rejDraining   *obs.Counter
	rejBreaker    *obs.Counter
	breakerTrips  *obs.Counter
	breakerOpen   *obs.Gauge
	deadLetters   *obs.Counter
	deadDepth     *obs.Gauge
	execQueue     *obs.Gauge
	execQueueHigh *obs.Gauge

	// overload-governor resource series: live accounting the governor
	// reads on its evaluation interval, plus the shed rejections.
	deferredDepth  *obs.Gauge
	execInflight   *obs.Gauge
	historyBytes   *obs.Gauge
	rejGovernor    *obs.Counter
	breakerEvicted *obs.Counter
	deadEvicted    *obs.Counter
}

func newEngineMetrics(reg *obs.Registry) engineMetrics {
	const fired = "reach_rules_fired_total"
	const firedHelp = "Rules fired, by coupling mode."
	const lat = "reach_rule_latency_seconds"
	const latHelp = "Rule execution latency (condition + action + commit), by coupling mode."
	const rejected = "reach_rule_rejected_total"
	const rejectedHelp = "Detached rule firings refused by the executor, by reason."
	const phase = "reach_rule_phase_seconds"
	const phaseHelp = "Rule transaction time by phase (condition, action, commit, abort)."
	return engineMetrics{
		events: reg.Counter("reach_events_total", "Event instances consumed by the engine."),
		composites: reg.Counter("reach_composites_detected_total",
			"Composite event completions."),
		gced: reg.Counter("reach_semicomposed_gced_total",
			"Semi-composed occurrences discarded on abort or validity expiry."),
		rounds: reg.Counter("reach_deferred_rounds_total",
			"Deferred execution rounds run at EOT."),
		roundDepth: reg.Gauge("reach_deferred_round_depth",
			"High-water mark of cascading deferred rounds in one EOT."),
		queueDepth: reg.Gauge("reach_composer_queue_depth",
			"Async composer channel depth at last delivery."),
		queueHigh: reg.Gauge("reach_composer_queue_highwater",
			"High-water mark of async composer channel depth."),
		backpressure: reg.Counter("reach_composer_backpressure_total",
			"Deliveries that found a composer channel full and stalled."),
		firedImmediate: reg.Counter(fired, firedHelp, "mode", "immediate"),
		firedDeferred:  reg.Counter(fired, firedHelp, "mode", "deferred"),
		firedDetached:  reg.Counter(fired, firedHelp, "mode", "detached"),
		latImmediate:   reg.Histogram(lat, latHelp, "mode", "immediate"),
		latDeferred:    reg.Histogram(lat, latHelp, "mode", "deferred"),
		latDetached:    reg.Histogram(lat, latHelp, "mode", "detached"),
		phaseCond:      reg.Histogram(phase, phaseHelp, "phase", "condition"),
		phaseAction:    reg.Histogram(phase, phaseHelp, "phase", "action"),
		phaseCommit:    reg.Histogram(phase, phaseHelp, "phase", "commit"),
		phaseAbort:     reg.Histogram(phase, phaseHelp, "phase", "abort"),
		deferredDwell: reg.Histogram("reach_deferred_dwell_seconds",
			"Time a deferred firing sat queued between detection and its EOT round."),
		cascadeTrips: reg.Counter("reach_rule_cascade_depth_trips_total",
			"Rule firings refused because the event's cascade depth reached the bound."),
		cascadeHigh: reg.Gauge("reach_rule_cascade_depth_highwater",
			"Deepest rule cascade that fired rules."),
		retries: reg.Counter("reach_rule_retries_total",
			"Detached rule attempts retried after a retriable abort."),
		panics: reg.Counter("reach_rule_panics_total",
			"Rule conditions/actions that panicked and were converted to aborts."),
		deadlines: reg.Counter("reach_rule_deadline_total",
			"Detached rule attempts aborted by the per-rule deadline."),
		rejOverload: reg.Counter(rejected, rejectedHelp, "reason", "overload"),
		rejDraining: reg.Counter(rejected, rejectedHelp, "reason", "draining"),
		rejBreaker:  reg.Counter(rejected, rejectedHelp, "reason", "breaker-open"),
		breakerTrips: reg.Counter("reach_rule_breaker_trips_total",
			"Circuit breakers tripped by consecutive permanent failures."),
		breakerOpen: reg.Gauge("reach_rule_breaker_open",
			"Rules currently parked behind an open circuit breaker."),
		deadLetters: reg.Counter("reach_rule_deadletter_total",
			"Detached firings recorded in the dead-letter queue."),
		deadDepth: reg.Gauge("reach_rule_deadletter_depth",
			"Current dead-letter queue depth."),
		execQueue: reg.Gauge("reach_executor_queue_depth",
			"Detached executor queue depth at last submit/dequeue."),
		execQueueHigh: reg.Gauge("reach_executor_queue_highwater",
			"High-water mark of the detached executor queue depth."),
		deferredDepth: reg.Gauge("reach_deferred_queue_depth",
			"Deferred firings queued across all live transactions."),
		execInflight: reg.Gauge("reach_executor_inflight",
			"Accepted detached firings not yet finished (queued or running)."),
		historyBytes: reg.Gauge("reach_event_history_bytes",
			"Approximate bytes held across all event-history shards (local and global)."),
		rejGovernor: reg.Counter(rejected, rejectedHelp, "reason", "governor-shed"),
		breakerEvicted: reg.Counter("reach_rule_breaker_evicted_total",
			"Circuit-breaker records garbage-collected when their rule was unloaded."),
		deadEvicted: reg.Counter("reach_rule_deadletter_evicted_total",
			"Dead-letter entries garbage-collected when their rule was unloaded."),
	}
}

// Engine is the REACH rule engine: a registry of ECA managers wired
// into the sentry dispatcher and the transaction manager.
type Engine struct {
	db   *oodb.DB
	disp *sentry.Dispatcher
	clk  clock.Clock
	opts Options

	mu         sync.RWMutex
	managers   map[string]*Manager
	composites map[string]*compositeMgr
	ruleSeq    uint64

	// mgrSnap is a copy-on-write snapshot of managers, republished
	// under e.mu on every registration, so the per-event lookup on the
	// raise path is one atomic load instead of an RLock.
	mgrSnap atomic.Pointer[map[string]*Manager]

	seq atomic.Uint64

	txnMu         sync.Mutex
	activeTxns    map[uint64]*txn.Txn
	resolvedTxns  map[uint64]txn.Status
	resolvedOrder []uint64

	cascadeMu    sync.Mutex
	cascadeBound int // static bound from rule-set analysis; 0 = none

	hist *shardedHistory

	exec   *executor
	closed atomic.Bool

	// gov, when installed, is the overload governor the shed points
	// (detached spawn, deferred drain) consult. Set once at wiring
	// time, before traffic, like the txn listener.
	gov *governor.Governor

	tempMu    sync.Mutex
	temporals map[*TemporalHandle]struct{}

	reg     *obs.Registry
	tracer  *obs.Tracer
	slowLog *obs.SlowLog
	met     engineMetrics
}

// New creates an engine over db, wires it as the database's event
// sink (through a sentry dispatcher) and as the transaction
// listener, and returns it.
func New(db *oodb.DB, opts Options) *Engine {
	opts = opts.withDefaults()
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	tracer := opts.Tracer
	if tracer == nil {
		tracer = obs.NewTracer(opts.TraceCapacity)
	}
	e := &Engine{
		db:           db,
		clk:          db.Clock(),
		opts:         opts,
		managers:     make(map[string]*Manager),
		composites:   make(map[string]*compositeMgr),
		activeTxns:   make(map[uint64]*txn.Txn),
		resolvedTxns: make(map[uint64]txn.Status),
		hist:         newShardedHistory(opts.GlobalHistorySize),
		temporals:    make(map[*TemporalHandle]struct{}),
		reg:          reg,
		tracer:       tracer,
		met:          newEngineMetrics(reg),
	}
	// Every history (global and per-manager local) shares one byte
	// gauge so the governor sees total history footprint in one read.
	e.hist.bytes = e.met.historyBytes
	e.slowLog = obs.NewSlowLog(opts.SlowLogCapacity, opts.SlowLogThreshold)
	e.slowLog.Instrument(reg)
	tracer.SetSlowLog(e.slowLog)
	e.exec = newExecutor(e)
	e.disp = sentry.New(sentry.ConsumerFunc(e.Consume))
	e.disp.Instrument(reg, tracer, e.clk.Now)
	db.TxnManager().Instrument(reg)
	db.TxnManager().SetTracer(tracer)
	db.SetSink(e.disp)
	db.TxnManager().SetListener((*txnListener)(e))
	return e
}

// Metrics exposes the engine's metric registry — the one shared with
// the sentry dispatcher and the transaction manager.
func (e *Engine) Metrics() *obs.Registry { return e.reg }

// SetGovernor installs the overload governor the engine's shed points
// consult: detached spawns are shed from the degraded state, deferred
// batches from shedding. Call it at wiring time, before traffic; nil
// (the default) sheds nothing. Immediate-coupled rules are never
// routed through the governor — they run inside the triggering
// transaction and abort with it (Table 1), so shedding them would
// silently change transaction semantics.
func (e *Engine) SetGovernor(g *governor.Governor) { e.gov = g }

// shedTraces reports whether trace minting is currently shed: the
// governor's lightest degradation, taken from the degraded state on.
func (e *Engine) shedTraces() bool {
	g := e.gov
	return g != nil && g.State() >= governor.Degraded
}

// DeferredDepth reports deferred firings queued across all live
// transactions — a governor resource.
func (e *Engine) DeferredDepth() int64 { return e.met.deferredDepth.Value() }

// DetachedBacklog reports accepted detached firings not yet finished
// (queued or running) — a governor resource.
func (e *Engine) DetachedBacklog() int64 { return e.met.execInflight.Value() }

// HistoryBytes reports the approximate byte footprint of every event
// history (global plus per-manager locals) — a governor resource.
func (e *Engine) HistoryBytes() int64 { return e.met.historyBytes.Value() }

// DeadLetterDepth reports the current dead-letter queue depth — a
// governor resource.
func (e *Engine) DeadLetterDepth() int64 { return e.met.deadDepth.Value() }

// EvictedCounts reports how many breaker records and dead-letter
// entries rule unload/replace garbage-collected (the /rules/* GC
// surface).
func (e *Engine) EvictedCounts() (breakers, deadLetters uint64) {
	return e.met.breakerEvicted.Value(), e.met.deadEvicted.Value()
}

// Tracer exposes the engine's event-lifecycle tracer.
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// SlowLog exposes the slow-transaction log attached to the tracer.
func (e *Engine) SlowLog() *obs.SlowLog { return e.slowLog }

// span records one lifecycle stage on a trace; a zero trace ID is a
// no-op so untraced paths stay free.
func (e *Engine) span(traceID uint64, stage, key string, start time.Time) {
	if traceID == 0 {
		return
	}
	e.tracer.Span(traceID, stage, key, start, e.clk.Now().Sub(start))
}

// Dispatcher exposes the sentry dispatcher (for overhead stats and
// enable/disable).
func (e *Engine) Dispatcher() *sentry.Dispatcher { return e.disp }

// DB returns the underlying database.
func (e *Engine) DB() *oodb.DB { return e.db }

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Events:             e.met.events.Value(),
		ImmediateFired:     e.met.firedImmediate.Value(),
		DeferredFired:      e.met.firedDeferred.Value(),
		DetachedFired:      e.met.firedDetached.Value(),
		CompositesDetected: e.met.composites.Value(),
		SemiComposedGCed:   e.met.gced.Value(),
		DeferredRounds:     e.met.rounds.Value(),
	}
}

// ResetStats zeroes the engine counters (the registry series backing
// Stats; histograms and gauges are left alone).
func (e *Engine) ResetStats() {
	e.met.events.Reset()
	e.met.firedImmediate.Reset()
	e.met.firedDeferred.Reset()
	e.met.firedDetached.Reset()
	e.met.composites.Reset()
	e.met.gced.Reset()
	e.met.rounds.Reset()
}

// Manager is an ECA-manager: it is dedicated to one event type, knows
// the set of rules fired by the event and the composite events the
// event participates in, and keeps a local history of occurrences
// (§6.3, Figure 2).
type Manager struct {
	key  string
	kind event.Kind

	mu        sync.Mutex
	rules     []*Rule
	composers []*compositeMgr
	local     *shardedHistory

	// fires is the pre-resolved firing partition: the enabled rules
	// split by coupling mode, rebuilt under mu whenever the rule list
	// or an enabled flag changes, so the per-event dispatch is one
	// atomic load with no copying. comps is the equivalent snapshot of
	// the composite managers this event propagates to.
	fires atomic.Pointer[ruleSet]
	comps atomic.Pointer[[]*compositeMgr]
}

// ruleSet is an immutable partition of a manager's enabled rules by
// condition-coupling mode, each slice in firing order.
type ruleSet struct {
	enabled   int
	immediate []*Rule
	deferred  []*Rule
	detached  []*Rule
}

// refreshFiresLocked rebuilds the pre-resolved firing partition; the
// caller holds m.mu.
func (m *Manager) refreshFiresLocked() {
	rs := &ruleSet{}
	for _, r := range m.rules {
		if r.Disabled {
			continue
		}
		rs.enabled++
		switch r.condMode() {
		case Immediate:
			rs.immediate = append(rs.immediate, r)
		case Deferred:
			rs.deferred = append(rs.deferred, r)
		default:
			rs.detached = append(rs.detached, r)
		}
	}
	m.fires.Store(rs)
}

// refreshComposersLocked republishes the composite-manager snapshot;
// the caller holds m.mu.
func (m *Manager) refreshComposersLocked() {
	snap := append([]*compositeMgr(nil), m.composers...)
	m.comps.Store(&snap)
}

// Key returns the spec key the manager is dedicated to.
func (m *Manager) Key() string { return m.key }

// Rules returns the manager's rules in firing order.
func (m *Manager) Rules() []*Rule {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*Rule(nil), m.rules...)
}

// LocalHistory returns the manager's local event history, oldest
// first. The sharded rings synchronize themselves.
func (m *Manager) LocalHistory() []HistoryEntry {
	return m.local.entries()
}

// managerLocked returns (creating if needed) the ECA-manager for a
// key; the caller holds e.mu. A new manager republishes the
// copy-on-write lookup snapshot.
func (e *Engine) managerLocked(key string, kind event.Kind) *Manager {
	if m, ok := e.managers[key]; ok {
		return m
	}
	m := &Manager{key: key, kind: kind, local: newShardedHistory(e.opts.LocalHistorySize)}
	m.local.bytes = e.met.historyBytes
	e.managers[key] = m
	snap := make(map[string]*Manager, len(e.managers))
	for k, v := range e.managers {
		snap[k] = v
	}
	e.mgrSnap.Store(&snap)
	return m
}

// lookupManager returns the manager for key, or nil. It reads the
// copy-on-write snapshot: one atomic load on the raise path.
func (e *Engine) lookupManager(key string) *Manager {
	snap := e.mgrSnap.Load()
	if snap == nil {
		return nil
	}
	return (*snap)[key]
}

// Managers reports the number of registered ECA-managers.
func (e *Engine) Managers() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.managers)
}

// kindOfKey derives the event kind from a spec key prefix.
func kindOfKey(key string) event.Kind {
	switch {
	case len(key) >= 7 && key[:7] == "method:":
		return event.KindMethod
	case len(key) >= 6 && key[:6] == "state:":
		return event.KindState
	case len(key) >= 4 && key[:4] == "txn:":
		return event.KindTxn
	case len(key) >= 5 && key[:5] == "time:":
		return event.KindTemporal
	case len(key) >= 10 && key[:10] == "composite:":
		return event.KindComposite
	}
	return event.KindMethod
}

// categoryOf resolves the admission category of a spec key, consulting
// the composite registry for scope.
func (e *Engine) categoryOf(key string) (Category, error) {
	kind := kindOfKey(key)
	if kind != event.KindComposite {
		return CategoryOfKey(kind, false), nil
	}
	e.mu.RLock()
	cm := e.composites[key]
	e.mu.RUnlock()
	if cm == nil {
		return 0, fmt.Errorf("eca: composite event %q not defined", key)
	}
	return CategoryOfKey(kind, cm.decl.Scope == algebra.ScopeGlobal), nil
}

// AddRule registers a rule after validating it against Table 1.
func (e *Engine) AddRule(r *Rule) error {
	if err := r.validate(); err != nil {
		return err
	}
	cat, err := e.categoryOf(r.EventKey)
	if err != nil {
		return err
	}
	for _, mode := range []Coupling{r.condMode(), r.ActionMode} {
		if Supported(cat, mode) {
			continue
		}
		if mode == Immediate && cat == CompositeSingleTxn && e.opts.AllowUnsafeImmediateComposite {
			continue // measured, not endorsed (E5)
		}
		return fmt.Errorf("eca: rule %s: coupling %v not supported for %v events (Table 1)",
			r.Name, mode, cat)
	}
	e.mu.Lock()
	e.ruleSeq++
	r.regSeq = e.ruleSeq
	r.regTime = e.clk.Now()
	m := e.managerLocked(r.EventKey, kindOfKey(r.EventKey))
	e.mu.Unlock()

	m.mu.Lock()
	m.rules = append(m.rules, r)
	tb := e.opts.TieBreak
	sort.SliceStable(m.rules, func(i, j int) bool { return ruleLess(m.rules[i], m.rules[j], tb) })
	m.refreshFiresLocked()
	m.mu.Unlock()

	// Subscribe the sentry so the database starts delivering.
	if k := kindOfKey(r.EventKey); k == event.KindMethod || k == event.KindState {
		e.disp.Subscribe(r.EventKey)
	} else if k == event.KindComposite {
		e.mu.RLock()
		cm := e.composites[r.EventKey]
		e.mu.RUnlock()
		if cm != nil {
			cm.refreshImmediateFlag()
		}
	}
	return nil
}

// RemoveRule unregisters a rule by name from its event's manager. The
// sentry unsubscription and the composite flag refresh run after the
// manager lock is released: both take other subsystems' locks and
// must not nest inside ours (lockdiscipline).
func (e *Engine) RemoveRule(eventKey, name string) bool {
	m := e.lookupManager(eventKey)
	if m == nil {
		return false
	}
	m.mu.Lock()
	found := false
	for i, r := range m.rules {
		if r.Name == name {
			m.rules = append(m.rules[:i], m.rules[i+1:]...)
			found = true
			break
		}
	}
	m.refreshFiresLocked()
	m.mu.Unlock()
	if !found {
		return false
	}
	// GC the executor state keyed by the rule's name: its breaker
	// record and dead letters would otherwise accumulate forever in a
	// long-lived process with rule churn — and a replacement rule
	// registered under the same name must not inherit its
	// predecessor's failure streak.
	e.exec.evictRule(name)
	switch kindOfKey(eventKey) {
	case event.KindMethod, event.KindState:
		e.disp.Unsubscribe(eventKey)
	case event.KindComposite:
		e.mu.RLock()
		cm := e.composites[eventKey]
		e.mu.RUnlock()
		if cm != nil {
			cm.refreshImmediateFlag()
		}
	}
	return true
}

// ErrCascadeDepth aborts an operation whose event reached the cascade
// depth bound while further rules were still primed to fire. Without
// the guard an unterminating rule set recurses (immediate coupling) or
// spawns transactions (detached) until the process dies.
var ErrCascadeDepth = errors.New("eca: rule cascade depth bound reached")

// cascadeKey tags rule transactions with the depth of events their
// bodies raise: the triggering event's depth plus one. Consume reads
// it back off the raising transaction.
type cascadeKey struct{}

// SetCascadeBound installs the static cascade-depth bound computed by
// whole-ruleset analysis: the longest rule chain a single external
// event can fire. The effective guard limit is the lower of this bound
// and Options.MaxCascadeDepth. n <= 0 clears the static bound, leaving
// only the configured ceiling.
func (e *Engine) SetCascadeBound(n int) {
	if n < 0 {
		n = 0
	}
	e.cascadeMu.Lock()
	e.cascadeBound = n
	e.cascadeMu.Unlock()
}

// CascadeBound returns the installed static bound (0 when none).
func (e *Engine) CascadeBound() int {
	e.cascadeMu.Lock()
	defer e.cascadeMu.Unlock()
	return e.cascadeBound
}

// cascadeLimit resolves the effective depth limit: the lower of the
// static bound and the configured ceiling; 0 disables the guard.
func (e *Engine) cascadeLimit() int {
	e.cascadeMu.Lock()
	bound := e.cascadeBound
	e.cascadeMu.Unlock()
	ceiling := e.opts.MaxCascadeDepth
	if ceiling < 0 {
		ceiling = 0
	}
	if bound > 0 && (ceiling == 0 || bound < ceiling) {
		return bound
	}
	return ceiling
}

// trigger resolves the live transaction an instance was raised in.
func (e *Engine) trigger(in *event.Instance) *txn.Txn {
	if t, ok := in.Origin.(*txn.Txn); ok {
		return t
	}
	if in.Txn == 0 {
		return nil
	}
	e.txnMu.Lock()
	defer e.txnMu.Unlock()
	return e.activeTxns[in.Txn]
}

// txnOutcome reports the state of a transaction by id: a live handle
// when it is still active, or its resolved status.
func (e *Engine) txnOutcome(id uint64) (live *txn.Txn, st txn.Status, known bool) {
	e.txnMu.Lock()
	defer e.txnMu.Unlock()
	if t, ok := e.activeTxns[id]; ok {
		return t, txn.Active, true
	}
	s, ok := e.resolvedTxns[id]
	return nil, s, ok
}

// Consume is the entry point from the sentry dispatcher: one primitive
// event instance arrives, rules fire per coupling mode, and the event
// is propagated to the composite ECA-managers (Figure 2). The return
// value is the go-ahead signal: an error from an immediate rule vetoes
// the operation.
func (e *Engine) Consume(in *event.Instance) error {
	e.met.events.Inc()
	if in.Seq == 0 {
		in.Seq = e.seq.Add(1)
	}
	if in.Time.IsZero() {
		in.Time = e.clk.Now()
	}
	m := e.lookupManager(in.SpecKey)
	if m == nil {
		return nil
	}
	if in.Trace == 0 && !e.shedTraces() {
		// Flow-control and temporal events enter here without passing
		// the sentry dispatcher; mint their trace at the engine door.
		// Under overload, minting is skipped — same policy as the
		// sentry's shed probe: observability is shed before work is.
		in.Trace = e.tracer.Begin(in.SpecKey, e.clk.Now())
	}
	start := e.clk.Now()
	e.record(m, in)
	trigger := e.trigger(in)
	if in.Depth == 0 && trigger != nil {
		// Events raised inside a rule transaction inherit the depth the
		// executing rule stamped on it; application events stay at 0.
		if d, ok := trigger.Value(cascadeKey{}).(int); ok {
			in.Depth = d
		}
	}
	err := e.fireRules(m, in, trigger)
	e.propagate(m, in)
	e.span(in.Trace, "detect", in.SpecKey, start)
	return err
}

// record appends the occurrence to the appropriate history (§6.3).
func (e *Engine) record(m *Manager, in *event.Instance) {
	entry := HistoryEntry{Seq: in.Seq, Txn: in.Txn, Key: in.SpecKey, Time: in.Time}
	if e.opts.History == CentralHistory {
		e.hist.append(entry)
		return
	}
	m.local.append(entry)
}

// fireRules runs the manager's rules for one occurrence, routing each
// to its coupling mode. Immediate rules run inline (the caller is
// stalled — this is exactly why composite events may not couple
// immediately); deferred rules are queued on the triggering top-level
// transaction; detached rules spawn.
func (e *Engine) fireRules(m *Manager, in *event.Instance, trigger *txn.Txn) error {
	rs := m.fires.Load()
	if rs == nil || rs.enabled == 0 {
		return nil
	}
	// The cascade-depth guard: an event this deep may not fire further
	// rules. It trips only when rules would actually fire, so deep but
	// inert events pass through, and it vetoes before any coupling mode
	// has enqueued or spawned work.
	if limit := e.cascadeLimit(); limit > 0 && in.Depth >= limit {
		e.met.cascadeTrips.Inc()
		e.span(in.Trace, "cascade-depth", in.SpecKey, e.clk.Now())
		return fmt.Errorf("eca: event %s at cascade depth %d would fire %d rule(s) past the bound %d: %w",
			in.SpecKey, in.Depth, rs.enabled, limit, ErrCascadeDepth)
	}
	e.met.cascadeHigh.SetMax(int64(in.Depth))
	for _, r := range rs.deferred {
		if trigger == nil {
			return fmt.Errorf("eca: rule %s: deferred coupling but no active transaction", r.Name)
		}
		e.enqueueDeferred(trigger.Top(), r, in)
	}
	for _, r := range rs.detached {
		e.spawnDetached(r, in)
	}
	if len(rs.immediate) == 0 {
		return nil
	}
	e.met.firedImmediate.Add(uint64(len(rs.immediate)))
	start := e.clk.Now()
	err := e.runRuleSet(rs.immediate, in, trigger)
	e.met.latImmediate.Observe(e.clk.Now().Sub(start))
	return err
}

// runRuleSet executes rules triggered by the same event, sequentially
// or as parallel sibling subtransactions (§6.4).
func (e *Engine) runRuleSet(rules []*Rule, in *event.Instance, trigger *txn.Txn) error {
	if e.opts.Exec == ParallelExec && len(rules) > 1 && trigger != nil {
		// Even conceptually-parallel rules need a lower-level ordering
		// for child creation (§6.4); they are started in firing order.
		// A panicking rule body is recovered in its batch worker and
		// surfaced as that entry's error.
		errs := make([]error, len(rules))
		fns := make([]func() error, len(rules))
		for i, r := range rules {
			child, err := trigger.BeginChild()
			if err != nil {
				errs[i] = err
				continue
			}
			r, child := r, child
			fns[i] = func() error {
				return e.runRuleGuarded(context.Background(), child, r, in)
			}
		}
		return errors.Join(append(errs, runBatch(fns)...)...)
	}
	for _, r := range rules {
		if err := e.runRuleAsChild(trigger, r, in); err != nil {
			return err
		}
	}
	return nil
}

// runRuleAsChild runs one rule as a subtransaction of trigger; with a
// nil trigger (e.g. rules on commit/abort events) it runs in a fresh
// top-level transaction.
func (e *Engine) runRuleAsChild(trigger *txn.Txn, r *Rule, in *event.Instance) error {
	var t *txn.Txn
	var err error
	if trigger != nil {
		t, err = trigger.BeginChild()
		if err != nil {
			return fmt.Errorf("eca: rule %s: %w", r.Name, err)
		}
	} else {
		t = e.beginRuleTxn()
	}
	return e.runRuleIn(t, r, in)
}

// ruleTxnKey tags transactions the engine itself creates to execute
// rules. They are full transactions, but they do not raise
// flow-control events — otherwise a rule on txn:commit would re-fire
// on its own rule transaction's commit, forever.
type ruleTxnKey struct{}

// beginRuleTxn starts a top-level transaction for detached rule
// execution.
func (e *Engine) beginRuleTxn() *txn.Txn {
	return e.db.TxnManager().BeginTagged(ruleTxnKey{}, true)
}

// isRuleTxn reports whether t was created by the engine.
func isRuleTxn(t *txn.Txn) bool { return t.Value(ruleTxnKey{}) != nil }

// runRuleIn evaluates the rule's condition and action inside t and
// commits or aborts it.
func (e *Engine) runRuleIn(t *txn.Txn, r *Rule, in *event.Instance) error {
	return e.runRuleCtx(context.Background(), t, r, in)
}

// runRuleCtx is runRuleIn with an execution context: the supervised
// executor threads its deadline cancellation through to the rule body
// via RuleCtx.Context.
func (e *Engine) runRuleCtx(ctx context.Context, t *txn.Txn, r *Rule, in *event.Instance) error {
	// Tag the rule transaction with the triggering event's trace so the
	// lock manager and commit path attribute their waits to it, and with
	// the cascade depth events raised by the rule body will carry.
	t.SetTrace(in.Trace)
	t.SetValue(cascadeKey{}, in.Depth+1)
	rc := &RuleCtx{Engine: e, DB: e.db, Txn: t, Trigger: in, Context: ctx}
	ok := true
	var err error
	if r.Cond != nil {
		cs := e.clk.Now()
		ok, err = r.Cond(rc)
		e.met.phaseCond.Observe(e.clk.Now().Sub(cs))
		e.span(in.Trace, "condition-eval", r.Name, cs)
		if err != nil {
			e.abortRuleTxn(t, r, in, err)
			return fmt.Errorf("eca: rule %s condition: %w", r.Name, err)
		}
	}
	if !ok {
		return e.commitRuleTxn(t, r, in) // condition false: nothing to do
	}
	if r.condMode() == Immediate && r.ActionMode == Deferred {
		// E-C immediate, C-A deferred: the action is queued for EOT.
		top := t.Top()
		if err := e.commitRuleTxn(t, r, in); err != nil {
			return err
		}
		e.enqueueDeferredAction(top, r, in)
		return nil
	}
	as := e.clk.Now()
	err = r.Action(rc)
	e.met.phaseAction.Observe(e.clk.Now().Sub(as))
	e.span(in.Trace, "action-exec", r.Name, as)
	if err != nil {
		e.abortRuleTxn(t, r, in, err)
		return fmt.Errorf("eca: rule %s action: %w", r.Name, err)
	}
	return e.commitRuleTxn(t, r, in)
}

// commitRuleTxn commits a rule transaction, recording the commit
// stage on the triggering event's trace.
func (e *Engine) commitRuleTxn(t *txn.Txn, r *Rule, in *event.Instance) error {
	start := e.clk.Now()
	err := t.Commit()
	e.met.phaseCommit.Observe(e.clk.Now().Sub(start))
	e.span(in.Trace, "commit", r.Name, start)
	return err
}

// abortRuleTxn aborts a rule transaction with cause, recording the
// abort stage on the triggering event's trace.
func (e *Engine) abortRuleTxn(t *txn.Txn, r *Rule, in *event.Instance, cause error) {
	start := e.clk.Now()
	_ = t.AbortWith(cause) // cause is already the reported failure
	e.met.phaseAbort.Observe(e.clk.Now().Sub(start))
	e.span(in.Trace, "abort", r.Name, start)
}
