package eca

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/clock"
	"repro/internal/event"
	"repro/internal/oodb"
	"repro/internal/txn"
)

var epoch = time.Date(1995, 3, 6, 0, 0, 0, 0, time.UTC)

// newTestEngine builds an engine over an in-memory database with a
// monitored Sensor class and a virtual clock.
func newTestEngine(t *testing.T, opts Options) (*Engine, *oodb.DB, *clock.Virtual) {
	t.Helper()
	vc := clock.NewVirtual(epoch)
	db, err := oodb.Open(oodb.Options{Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	sensor := oodb.NewClass("Sensor",
		oodb.Attr{Name: "val", Type: oodb.TInt},
		oodb.Attr{Name: "alarms", Type: oodb.TInt},
	)
	sensor.Monitored = true
	sensor.Method("ping", func(ctx *oodb.Ctx, self *oodb.Object, args []any) (any, error) {
		return nil, ctx.Set(self, "val", args[0])
	})
	sensor.Method("reset", func(ctx *oodb.Ctx, self *oodb.Object, args []any) (any, error) {
		return nil, ctx.Set(self, "val", int64(0))
	})
	if err := db.Dictionary().Register(sensor); err != nil {
		t.Fatal(err)
	}
	e := New(db, opts)
	t.Cleanup(e.Close)
	return e, db, vc
}

func pingKey() string {
	return event.MethodSpec{Class: "Sensor", Method: "ping", When: event.After}.Key()
}

func resetKey() string {
	return event.MethodSpec{Class: "Sensor", Method: "reset", When: event.After}.Key()
}

func newSensor(t *testing.T, db *oodb.DB) *oodb.Object {
	t.Helper()
	tx := db.Begin()
	obj, err := db.NewObject(tx, "Sensor")
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return obj
}

// --- Table 1 ---

func TestTable1MatchesPaper(t *testing.T) {
	// The paper's Table 1, row by row: Immediate, Deferred, Detached,
	// Par.caus.dep., Seq.caus.dep., Exc.caus.dep. × columns Single
	// Method, Purely Temporal, Composite 1 TX, Composite n TXs.
	want := map[Coupling][4]bool{
		Immediate:                {true, false, false, false},
		Deferred:                 {true, false, true, false},
		Detached:                 {true, true, true, true},
		DetachedParallelCausal:   {true, false, true, true},
		DetachedSequentialCausal: {true, false, true, true},
		DetachedExclusiveCausal:  {true, false, true, true},
	}
	cats := Categories()
	for mode, row := range want {
		for i, cat := range cats {
			if got := Supported(cat, mode); got != row[i] {
				t.Errorf("Supported(%v, %v) = %v, want %v", cat, mode, got, row[i])
			}
		}
	}
	if len(Couplings()) != 6 || len(cats) != 4 {
		t.Fatal("matrix dimensions wrong")
	}
}

func TestAdmissionRejectsPerTable1(t *testing.T) {
	e, _, _ := newTestEngine(t, Options{})
	// Purely temporal + immediate: rejected.
	spec := event.TemporalSpec{Name: "tick", Temporal: event.Periodic, Period: time.Second}
	err := e.AddRule(&Rule{
		Name: "r1", EventKey: spec.Key(), ActionMode: Immediate,
		Action: func(*RuleCtx) error { return nil },
	})
	if err == nil {
		t.Fatal("temporal+immediate admitted")
	}
	// Purely temporal + deferred: rejected.
	err = e.AddRule(&Rule{
		Name: "r2", EventKey: spec.Key(), ActionMode: Deferred,
		Action: func(*RuleCtx) error { return nil },
	})
	if err == nil {
		t.Fatal("temporal+deferred admitted")
	}
	// Purely temporal + detached: admitted.
	err = e.AddRule(&Rule{
		Name: "r3", EventKey: spec.Key(), ActionMode: Detached,
		Action: func(*RuleCtx) error { return nil },
	})
	if err != nil {
		t.Fatalf("temporal+detached rejected: %v", err)
	}

	// Composite single-txn + immediate: rejected (the "(N)" cell).
	comp := &algebra.Composite{
		Name:   "c1",
		Expr:   algebra.Seq{Exprs: []algebra.Expr{algebra.Prim{Key: pingKey()}, algebra.Prim{Key: resetKey()}}},
		Policy: algebra.Chronicle,
		Scope:  algebra.ScopeTransaction,
	}
	if err := e.DefineComposite(comp); err != nil {
		t.Fatal(err)
	}
	err = e.AddRule(&Rule{
		Name: "r4", EventKey: comp.Key(), ActionMode: Immediate,
		Action: func(*RuleCtx) error { return nil },
	})
	if err == nil {
		t.Fatal("composite-1tx+immediate admitted")
	}
	// Composite single-txn + deferred: admitted.
	err = e.AddRule(&Rule{
		Name: "r5", EventKey: comp.Key(), ActionMode: Deferred,
		Action: func(*RuleCtx) error { return nil },
	})
	if err != nil {
		t.Fatalf("composite-1tx+deferred rejected: %v", err)
	}

	// Composite multi-txn + deferred: rejected; + parallel causal: admitted.
	gcomp := &algebra.Composite{
		Name:     "c2",
		Expr:     algebra.Conj{Exprs: []algebra.Expr{algebra.Prim{Key: pingKey()}, algebra.Prim{Key: resetKey()}}},
		Policy:   algebra.Chronicle,
		Scope:    algebra.ScopeGlobal,
		Validity: time.Hour,
	}
	if err := e.DefineComposite(gcomp); err != nil {
		t.Fatal(err)
	}
	err = e.AddRule(&Rule{
		Name: "r6", EventKey: gcomp.Key(), ActionMode: Deferred,
		Action: func(*RuleCtx) error { return nil },
	})
	if err == nil {
		t.Fatal("composite-ntx+deferred admitted")
	}
	err = e.AddRule(&Rule{
		Name: "r7", EventKey: gcomp.Key(), ActionMode: DetachedParallelCausal,
		Action: func(*RuleCtx) error { return nil },
	})
	if err != nil {
		t.Fatalf("composite-ntx+parallel-causal rejected: %v", err)
	}

	// Rule on an undefined composite: rejected.
	err = e.AddRule(&Rule{
		Name: "r8", EventKey: "composite:undefined", ActionMode: Detached,
		Action: func(*RuleCtx) error { return nil },
	})
	if err == nil {
		t.Fatal("rule on undefined composite admitted")
	}
}

// --- immediate coupling ---

func TestImmediateRuleRunsInline(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{})
	obj := newSensor(t, db)
	var fired atomic.Int64
	err := e.AddRule(&Rule{
		Name: "imm", EventKey: pingKey(), ActionMode: Immediate,
		Cond: func(rc *RuleCtx) (bool, error) {
			v, err := rc.Ctx().GetInt(obj, "val")
			return v > 10, err
		},
		Action: func(rc *RuleCtx) error {
			fired.Add(1)
			a, _ := rc.Ctx().GetInt(obj, "alarms")
			return rc.Ctx().Set(obj, "alarms", a+1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if _, err := db.Invoke(tx, obj, "ping", int64(5)); err != nil {
		t.Fatal(err)
	}
	if fired.Load() != 0 {
		t.Fatal("rule fired although condition false")
	}
	if _, err := db.Invoke(tx, obj, "ping", int64(50)); err != nil {
		t.Fatal(err)
	}
	if fired.Load() != 1 {
		t.Fatalf("rule fired %d times, want 1 (inline)", fired.Load())
	}
	// The rule's subtransaction effect is visible inside the trigger.
	if v, _ := db.Get(tx, obj, "alarms"); v != int64(1) {
		t.Fatalf("alarms = %v, want 1", v)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestImmediateRuleEffectsUndoneOnTriggerAbort(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{})
	obj := newSensor(t, db)
	e.AddRule(&Rule{
		Name: "imm", EventKey: pingKey(), ActionMode: Immediate,
		Action: func(rc *RuleCtx) error { return rc.Ctx().Set(obj, "alarms", int64(99)) },
	})
	tx := db.Begin()
	db.Invoke(tx, obj, "ping", int64(1))
	tx.Abort()
	tx2 := db.Begin()
	if v, _ := db.Get(tx2, obj, "alarms"); v != int64(0) {
		t.Fatalf("rule subtransaction effect survived trigger abort: alarms = %v", v)
	}
	tx2.Commit()
}

func TestImmediateRuleErrorVetoesInvocation(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{})
	obj := newSensor(t, db)
	boom := errors.New("constraint violated")
	e.AddRule(&Rule{
		Name:       "guard",
		EventKey:   event.MethodSpec{Class: "Sensor", Method: "ping", When: event.Before}.Key(),
		ActionMode: Immediate,
		Action:     func(*RuleCtx) error { return boom },
	})
	tx := db.Begin()
	if _, err := db.Invoke(tx, obj, "ping", int64(1)); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want veto", err)
	}
	if v, _ := db.Get(tx, obj, "val"); v != int64(0) {
		t.Fatalf("vetoed method still ran: val = %v", v)
	}
	tx.Commit()
}

// --- deferred coupling ---

func TestDeferredRuleRunsAtEOT(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{})
	obj := newSensor(t, db)
	var order []string
	e.AddRule(&Rule{
		Name: "def", EventKey: pingKey(), ActionMode: Deferred,
		Action: func(rc *RuleCtx) error {
			order = append(order, "rule")
			return rc.Ctx().Set(obj, "alarms", int64(7))
		},
	})
	tx := db.Begin()
	db.Invoke(tx, obj, "ping", int64(1))
	order = append(order, "work")
	if len(order) != 1 {
		t.Fatal("deferred rule ran before EOT")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[1] != "rule" {
		t.Fatalf("order = %v, want [work rule]", order)
	}
	tx2 := db.Begin()
	if v, _ := db.Get(tx2, obj, "alarms"); v != int64(7) {
		t.Fatalf("deferred effect lost: %v", v)
	}
	tx2.Commit()
}

func TestDeferredRuleErrorAbortsTrigger(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{})
	obj := newSensor(t, db)
	e.AddRule(&Rule{
		Name: "def", EventKey: pingKey(), ActionMode: Deferred,
		Action: func(*RuleCtx) error { return errors.New("integrity violated") },
	})
	tx := db.Begin()
	db.Invoke(tx, obj, "ping", int64(42))
	if err := tx.Commit(); err == nil {
		t.Fatal("commit succeeded despite deferred rule failure")
	}
	if tx.Status() != txn.Aborted {
		t.Fatalf("trigger status = %v, want Aborted", tx.Status())
	}
	tx2 := db.Begin()
	if v, _ := db.Get(tx2, obj, "val"); v != int64(0) {
		t.Fatalf("trigger effects survived: val = %v", v)
	}
	tx2.Commit()
}

func TestDeferredCascadeBounded(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{MaxDeferredRounds: 4})
	obj := newSensor(t, db)
	// The rule re-pings, generating another deferred firing, forever.
	e.AddRule(&Rule{
		Name: "loop", EventKey: pingKey(), ActionMode: Deferred,
		Action: func(rc *RuleCtx) error {
			_, err := rc.Ctx().Invoke(obj, "ping", int64(1))
			return err
		},
	})
	tx := db.Begin()
	db.Invoke(tx, obj, "ping", int64(1))
	if err := tx.Commit(); err == nil {
		t.Fatal("non-terminating deferred cascade committed")
	}
}

func TestImmediateCondDeferredAction(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{})
	obj := newSensor(t, db)
	var condVals []int64
	var actions atomic.Int64
	e.AddRule(&Rule{
		Name: "split", EventKey: pingKey(),
		CondMode: Immediate, ActionMode: Deferred,
		Cond: func(rc *RuleCtx) (bool, error) {
			v, err := rc.Ctx().GetInt(obj, "val")
			condVals = append(condVals, v)
			return v > 5, err
		},
		Action: func(*RuleCtx) error { actions.Add(1); return nil },
	})
	tx := db.Begin()
	db.Invoke(tx, obj, "ping", int64(10)) // cond true -> action queued
	db.Invoke(tx, obj, "ping", int64(1))  // cond false -> nothing
	if actions.Load() != 0 {
		t.Fatal("deferred action ran before EOT")
	}
	tx.Commit()
	if len(condVals) != 2 {
		t.Fatalf("condition evaluated %d times immediately, want 2", len(condVals))
	}
	if actions.Load() != 1 {
		t.Fatalf("actions = %d, want 1", actions.Load())
	}
}

// --- detached couplings ---

func TestDetachedRuleIndependent(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{})
	obj := newSensor(t, db)
	done := make(chan uint64, 1)
	e.AddRule(&Rule{
		Name: "det", EventKey: pingKey(), ActionMode: Detached,
		Action: func(rc *RuleCtx) error {
			done <- rc.Txn.ID()
			return nil
		},
	})
	tx := db.Begin()
	db.Invoke(tx, obj, "ping", int64(1))
	tx.Abort() // detached rule is unaffected
	select {
	case id := <-done:
		if id == tx.ID() {
			t.Fatal("detached rule ran inside the trigger transaction")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("detached rule never ran")
	}
	e.WaitDetached()
}

func TestParallelCausalAbortsWithTrigger(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{})
	obj := newSensor(t, db)
	outcome := make(chan txn.Status, 1)
	e.AddRule(&Rule{
		Name: "pc", EventKey: pingKey(), ActionMode: DetachedParallelCausal,
		Action: func(rc *RuleCtx) error {
			go func() { outcome <- rc.Txn.Wait() }()
			return nil
		},
	})
	tx := db.Begin()
	db.Invoke(tx, obj, "ping", int64(1))
	tx.Abort()
	select {
	case st := <-outcome:
		if st != txn.Aborted {
			t.Fatalf("parallel-causal rule txn = %v, want Aborted (trigger aborted)", st)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parallel-causal rule txn never resolved")
	}
	e.WaitDetached()
}

func TestParallelCausalCommitsWithTrigger(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{})
	obj := newSensor(t, db)
	outcome := make(chan txn.Status, 1)
	e.AddRule(&Rule{
		Name: "pc", EventKey: pingKey(), ActionMode: DetachedParallelCausal,
		Action: func(rc *RuleCtx) error {
			go func() { outcome <- rc.Txn.Wait() }()
			return nil
		},
	})
	tx := db.Begin()
	db.Invoke(tx, obj, "ping", int64(1))
	tx.Commit()
	select {
	case st := <-outcome:
		if st != txn.Committed {
			t.Fatalf("parallel-causal rule txn = %v, want Committed", st)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parallel-causal rule txn never resolved")
	}
	e.WaitDetached()
}

func TestSequentialCausalStartsAfterTriggerCommit(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{})
	obj := newSensor(t, db)
	started := make(chan txn.Status, 1)
	trigDone := make(chan struct{})
	var trig *txn.Txn
	e.AddRule(&Rule{
		Name: "sc", EventKey: pingKey(), ActionMode: DetachedSequentialCausal,
		Action: func(rc *RuleCtx) error {
			<-trigDone // would deadlock if the rule started before commit returned
			started <- trig.Status()
			return nil
		},
	})
	trig = db.Begin()
	db.Invoke(trig, obj, "ping", int64(1))
	trig.Commit()
	close(trigDone)
	select {
	case st := <-started:
		if st != txn.Committed {
			t.Fatalf("sequential-causal rule saw trigger %v, want Committed", st)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("sequential-causal rule never started")
	}
	e.WaitDetached()
}

func TestSequentialCausalSkippedOnTriggerAbort(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{})
	obj := newSensor(t, db)
	var ran atomic.Bool
	e.AddRule(&Rule{
		Name: "sc", EventKey: pingKey(), ActionMode: DetachedSequentialCausal,
		Action: func(*RuleCtx) error { ran.Store(true); return nil },
	})
	tx := db.Begin()
	db.Invoke(tx, obj, "ping", int64(1))
	tx.Abort()
	e.WaitDetached()
	if ran.Load() {
		t.Fatal("sequential-causal rule ran although trigger aborted")
	}
}

func TestExclusiveCausalContingency(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{})
	obj := newSensor(t, db)
	outcome := make(chan txn.Status, 2)
	e.AddRule(&Rule{
		Name: "ec", EventKey: pingKey(), ActionMode: DetachedExclusiveCausal,
		Action: func(rc *RuleCtx) error {
			go func() { outcome <- rc.Txn.Wait() }()
			return nil
		},
	})
	// Trigger aborts: contingency commits.
	tx := db.Begin()
	db.Invoke(tx, obj, "ping", int64(1))
	tx.Abort()
	if st := <-outcome; st != txn.Committed {
		t.Fatalf("exclusive-causal after trigger abort = %v, want Committed", st)
	}
	// Trigger commits: contingency aborts.
	tx2 := db.Begin()
	db.Invoke(tx2, obj, "ping", int64(1))
	tx2.Commit()
	if st := <-outcome; st != txn.Aborted {
		t.Fatalf("exclusive-causal after trigger commit = %v, want Aborted", st)
	}
	e.WaitDetached()
}

// --- composite events ---

func seqComposite(name string, scope algebra.Scope) *algebra.Composite {
	c := &algebra.Composite{
		Name:   name,
		Expr:   algebra.Seq{Exprs: []algebra.Expr{algebra.Prim{Key: pingKey()}, algebra.Prim{Key: resetKey()}}},
		Policy: algebra.Chronicle,
		Scope:  scope,
	}
	if scope == algebra.ScopeGlobal {
		c.Validity = time.Hour
	}
	return c
}

func TestCompositeDeferredRuleFiresAtEOT(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{})
	obj := newSensor(t, db)
	comp := seqComposite("ping-reset", algebra.ScopeTransaction)
	if err := e.DefineComposite(comp); err != nil {
		t.Fatal(err)
	}
	var fired atomic.Int64
	var parts atomic.Int64
	e.AddRule(&Rule{
		Name: "onComp", EventKey: comp.Key(), ActionMode: Deferred,
		Action: func(rc *RuleCtx) error {
			fired.Add(1)
			parts.Store(int64(len(rc.Trigger.Flatten())))
			return nil
		},
	})
	tx := db.Begin()
	db.Invoke(tx, obj, "ping", int64(1))
	db.Invoke(tx, obj, "reset")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if fired.Load() != 1 {
		t.Fatalf("composite rule fired %d, want 1", fired.Load())
	}
	if parts.Load() != 2 {
		t.Fatalf("composite trigger had %d parts, want 2", parts.Load())
	}
}

func TestCompositeSemiComposedDiscardedOnAbort(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{})
	obj := newSensor(t, db)
	comp := seqComposite("pr", algebra.ScopeTransaction)
	e.DefineComposite(comp)
	var fired atomic.Int64
	e.AddRule(&Rule{
		Name: "onComp", EventKey: comp.Key(), ActionMode: Detached,
		Action: func(*RuleCtx) error { fired.Add(1); return nil },
	})
	tx := db.Begin()
	db.Invoke(tx, obj, "ping", int64(1)) // half the sequence
	tx.Abort()
	e.DrainComposers()
	if got := e.SemiComposed(); got != 0 {
		t.Fatalf("semi-composed after abort = %d, want 0", got)
	}
	// A reset in a NEW transaction must not pair with the aborted ping.
	tx2 := db.Begin()
	db.Invoke(tx2, obj, "reset")
	tx2.Commit()
	e.WaitDetached()
	if fired.Load() != 0 {
		t.Fatal("composite fired across transaction boundary in txn scope")
	}
}

func TestGlobalCompositeAcrossTxns(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{})
	obj := newSensor(t, db)
	comp := seqComposite("global-pr", algebra.ScopeGlobal)
	e.DefineComposite(comp)
	fired := make(chan *event.Instance, 1)
	e.AddRule(&Rule{
		Name: "onComp", EventKey: comp.Key(), ActionMode: Detached,
		Action: func(rc *RuleCtx) error {
			fired <- rc.Trigger
			return nil
		},
	})
	tx1 := db.Begin()
	db.Invoke(tx1, obj, "ping", int64(1))
	tx1.Commit()
	tx2 := db.Begin()
	db.Invoke(tx2, obj, "reset")
	tx2.Commit()
	e.DrainComposers()
	e.WaitDetached()
	select {
	case in := <-fired:
		txns := in.Transactions()
		if len(txns) != 2 {
			t.Fatalf("constituent txns = %v, want 2 distinct", txns)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cross-transaction composite never fired")
	}
}

func TestClosureCompositeFiresAtEOT(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{})
	obj := newSensor(t, db)
	comp := &algebra.Composite{
		Name:   "all-pings",
		Expr:   algebra.Closure{Of: algebra.Prim{Key: pingKey()}},
		Policy: algebra.Chronicle,
		Scope:  algebra.ScopeTransaction,
	}
	e.DefineComposite(comp)
	var count atomic.Int64
	e.AddRule(&Rule{
		Name: "onClosure", EventKey: comp.Key(), ActionMode: Deferred,
		Action: func(rc *RuleCtx) error {
			count.Store(int64(len(rc.Trigger.Parts)))
			return nil
		},
	})
	tx := db.Begin()
	for i := 0; i < 4; i++ {
		db.Invoke(tx, obj, "ping", int64(i))
	}
	tx.Commit()
	if count.Load() != 4 {
		t.Fatalf("closure collapsed %d pings, want 4", count.Load())
	}
}

// --- temporal events ---

func TestPeriodicTemporalFiresDetached(t *testing.T) {
	e, _, vc := newTestEngine(t, Options{})
	spec := event.TemporalSpec{Name: "tick", Temporal: event.Periodic, Period: 10 * time.Second}
	var fired atomic.Int64
	if err := e.AddRule(&Rule{
		Name: "onTick", EventKey: spec.Key(), ActionMode: Detached,
		Action: func(*RuleCtx) error { fired.Add(1); return nil },
	}); err != nil {
		t.Fatal(err)
	}
	h, err := e.ArmTemporal(spec)
	if err != nil {
		t.Fatal(err)
	}
	vc.Advance(35 * time.Second)
	e.WaitDetached()
	if fired.Load() != 3 {
		t.Fatalf("periodic fired %d, want 3", fired.Load())
	}
	h.Stop()
	vc.Advance(time.Minute)
	e.WaitDetached()
	if fired.Load() != 3 {
		t.Fatal("periodic kept firing after Stop")
	}
}

func TestAbsoluteTemporal(t *testing.T) {
	e, _, vc := newTestEngine(t, Options{})
	spec := event.TemporalSpec{Name: "deadline", Temporal: event.Absolute, At: epoch.Add(time.Hour)}
	var fired atomic.Int64
	e.AddRule(&Rule{
		Name: "onDeadline", EventKey: spec.Key(), ActionMode: Detached,
		Action: func(*RuleCtx) error { fired.Add(1); return nil },
	})
	if _, err := e.ArmTemporal(spec); err != nil {
		t.Fatal(err)
	}
	vc.Advance(59 * time.Minute)
	e.WaitDetached()
	if fired.Load() != 0 {
		t.Fatal("absolute temporal fired early")
	}
	vc.Advance(2 * time.Minute)
	e.WaitDetached()
	if fired.Load() != 1 {
		t.Fatalf("absolute temporal fired %d, want 1", fired.Load())
	}
	// Arming in the past is rejected.
	if _, err := e.ArmTemporal(event.TemporalSpec{Name: "past", Temporal: event.Absolute, At: epoch}); err == nil {
		t.Fatal("past absolute event armed")
	}
}

func TestMilestoneFiresWhenTxnLate(t *testing.T) {
	e, db, vc := newTestEngine(t, Options{})
	spec := event.TemporalSpec{Name: "m1", Temporal: event.MilestoneKind, Delay: 30 * time.Second}
	fired := make(chan uint64, 1)
	e.AddRule(&Rule{
		Name: "contingency", EventKey: spec.Key(), ActionMode: Detached,
		Action: func(rc *RuleCtx) error {
			fired <- rc.Trigger.Args[0].(uint64)
			return nil
		},
	})
	// Late transaction: milestone fires with its id.
	late := db.Begin()
	if _, err := e.ArmMilestone(late, spec); err != nil {
		t.Fatal(err)
	}
	vc.Advance(time.Minute)
	e.WaitDetached()
	select {
	case id := <-fired:
		if id != late.ID() {
			t.Fatalf("milestone carried txn %d, want %d", id, late.ID())
		}
	default:
		t.Fatal("milestone did not fire for late transaction")
	}
	late.Commit()

	// On-time transaction: milestone reached, handle stopped.
	fast := db.Begin()
	h, _ := e.ArmMilestone(fast, spec)
	fast.Commit()
	h.Stop()
	vc.Advance(time.Minute)
	e.WaitDetached()
	select {
	case <-fired:
		t.Fatal("milestone fired for on-time transaction")
	default:
	}
}

// --- priorities and ordering ---

func TestPriorityOrdering(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{})
	obj := newSensor(t, db)
	var order []string
	mk := func(name string, prio int) *Rule {
		return &Rule{
			Name: name, EventKey: pingKey(), Priority: prio, ActionMode: Immediate,
			Action: func(*RuleCtx) error { order = append(order, name); return nil },
		}
	}
	e.AddRule(mk("low", 1))
	e.AddRule(mk("high", 10))
	e.AddRule(mk("mid", 5))
	tx := db.Begin()
	db.Invoke(tx, obj, "ping", int64(1))
	tx.Commit()
	if len(order) != 3 || order[0] != "high" || order[1] != "mid" || order[2] != "low" {
		t.Fatalf("firing order = %v, want [high mid low]", order)
	}
}

func TestTieBreakOldestAndNewestFirst(t *testing.T) {
	run := func(tb TieBreak) []string {
		e, db, _ := newTestEngine(t, Options{TieBreak: tb})
		obj := newSensor(t, db)
		var order []string
		for _, name := range []string{"first", "second", "third"} {
			name := name
			e.AddRule(&Rule{
				Name: name, EventKey: pingKey(), Priority: 5, ActionMode: Immediate,
				Action: func(*RuleCtx) error { order = append(order, name); return nil },
			})
		}
		tx := db.Begin()
		db.Invoke(tx, obj, "ping", int64(1))
		tx.Commit()
		return order
	}
	oldest := run(OldestFirst)
	if oldest[0] != "first" || oldest[2] != "third" {
		t.Fatalf("oldest-first order = %v", oldest)
	}
	newest := run(NewestFirst)
	if newest[0] != "third" || newest[2] != "first" {
		t.Fatalf("newest-first order = %v", newest)
	}
}

func TestRemoveRule(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{})
	obj := newSensor(t, db)
	var fired atomic.Int64
	e.AddRule(&Rule{
		Name: "r", EventKey: pingKey(), ActionMode: Immediate,
		Action: func(*RuleCtx) error { fired.Add(1); return nil },
	})
	if !e.RemoveRule(pingKey(), "r") {
		t.Fatal("RemoveRule = false")
	}
	if e.RemoveRule(pingKey(), "r") {
		t.Fatal("double RemoveRule = true")
	}
	tx := db.Begin()
	db.Invoke(tx, obj, "ping", int64(1))
	tx.Commit()
	if fired.Load() != 0 {
		t.Fatal("removed rule fired")
	}
}

func TestDisabledRuleDoesNotFire(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{})
	obj := newSensor(t, db)
	var fired atomic.Int64
	e.AddRule(&Rule{
		Name: "r", EventKey: pingKey(), ActionMode: Immediate, Disabled: true,
		Action: func(*RuleCtx) error { fired.Add(1); return nil },
	})
	tx := db.Begin()
	db.Invoke(tx, obj, "ping", int64(1))
	tx.Commit()
	if fired.Load() != 0 {
		t.Fatal("disabled rule fired")
	}
}

// --- transaction events ---

func TestTxnEventsBOTCommitAbort(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{})
	var bot, commit, abort atomic.Int64
	e.AddRule(&Rule{
		Name: "onBOT", EventKey: event.TxnSpec{Phase: event.BOT}.Key(), ActionMode: Immediate,
		Action: func(*RuleCtx) error { bot.Add(1); return nil },
	})
	e.AddRule(&Rule{
		Name: "onCommit", EventKey: event.TxnSpec{Phase: event.Commit}.Key(), ActionMode: Detached,
		Action: func(*RuleCtx) error { commit.Add(1); return nil },
	})
	e.AddRule(&Rule{
		Name: "onAbort", EventKey: event.TxnSpec{Phase: event.Abort}.Key(), ActionMode: Detached,
		Action: func(*RuleCtx) error { abort.Add(1); return nil },
	})
	tx := db.Begin()
	tx.Commit()
	tx2 := db.Begin()
	tx2.Abort()
	e.WaitDetached()
	// The BOT immediate rule itself runs in a subtransaction whose
	// begin does not re-fire (children are not top-level).
	if bot.Load() < 2 {
		t.Fatalf("BOT fired %d, want >= 2", bot.Load())
	}
	if commit.Load() == 0 || abort.Load() == 0 {
		t.Fatalf("commit/abort rules fired %d/%d, want > 0", commit.Load(), abort.Load())
	}
}

// --- histories ---

func TestDistributedHistoryConsolidatedAfterCommit(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{History: DistributedHistory})
	obj := newSensor(t, db)
	e.AddRule(&Rule{
		Name: "r", EventKey: pingKey(), ActionMode: Immediate,
		Action: func(*RuleCtx) error { return nil },
	})
	tx := db.Begin()
	db.Invoke(tx, obj, "ping", int64(1))
	// Before commit: local history has it, global does not.
	m := e.lookupManager(pingKey())
	if len(m.LocalHistory()) != 1 {
		t.Fatalf("local history = %d entries, want 1", len(m.LocalHistory()))
	}
	if len(e.GlobalHistory()) != 0 {
		t.Fatalf("global history before commit = %d entries, want 0", len(e.GlobalHistory()))
	}
	tx.Commit()
	found := false
	for _, en := range e.GlobalHistory() {
		if en.Key == pingKey() && en.Txn == tx.ID() {
			found = true
		}
	}
	if !found {
		t.Fatal("global history missing consolidated entry after commit")
	}
}

func TestCentralHistoryImmediate(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{History: CentralHistory})
	obj := newSensor(t, db)
	e.AddRule(&Rule{
		Name: "r", EventKey: pingKey(), ActionMode: Immediate,
		Action: func(*RuleCtx) error { return nil },
	})
	tx := db.Begin()
	db.Invoke(tx, obj, "ping", int64(1))
	if len(e.GlobalHistory()) != 1 {
		t.Fatalf("central history = %d entries before commit, want 1", len(e.GlobalHistory()))
	}
	tx.Commit()
}

// --- unsafe immediate composite (E5) ---

func TestUnsafeImmediateCompositeStalls(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{AllowUnsafeImmediateComposite: true})
	obj := newSensor(t, db)
	comp := seqComposite("unsafe", algebra.ScopeTransaction)
	e.DefineComposite(comp)
	var fired atomic.Int64
	if err := e.AddRule(&Rule{
		Name: "immComp", EventKey: comp.Key(), ActionMode: Immediate,
		Action: func(*RuleCtx) error { fired.Add(1); return nil },
	}); err != nil {
		t.Fatalf("unsafe mode still rejected immediate composite: %v", err)
	}
	tx := db.Begin()
	db.Invoke(tx, obj, "ping", int64(1))
	db.Invoke(tx, obj, "reset")
	// Because delivery stalls for acknowledgement, the completion has
	// fired by the time Invoke returns.
	if fired.Load() != 1 {
		t.Fatalf("immediate composite rule fired %d, want 1 synchronously", fired.Load())
	}
	tx.Commit()
}

// --- sync vs async composition ---

func TestSyncCompositionMode(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{SyncComposition: true})
	obj := newSensor(t, db)
	comp := seqComposite("sync", algebra.ScopeTransaction)
	e.DefineComposite(comp)
	var fired atomic.Int64
	e.AddRule(&Rule{
		Name: "r", EventKey: comp.Key(), ActionMode: Deferred,
		Action: func(*RuleCtx) error { fired.Add(1); return nil },
	})
	tx := db.Begin()
	db.Invoke(tx, obj, "ping", int64(1))
	db.Invoke(tx, obj, "reset")
	tx.Commit()
	if fired.Load() != 1 {
		t.Fatalf("sync composition fired %d, want 1", fired.Load())
	}
}

// --- parallel rule execution ---

func TestParallelExecRunsSiblings(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{Exec: ParallelExec})
	obj := newSensor(t, db)
	const n = 4
	gate := make(chan struct{})
	var concurrent atomic.Int64
	var peak atomic.Int64
	for i := 0; i < n; i++ {
		e.AddRule(&Rule{
			Name: fmt.Sprintf("p%d", i), EventKey: pingKey(), ActionMode: Immediate,
			Action: func(*RuleCtx) error {
				c := concurrent.Add(1)
				for {
					p := peak.Load()
					if c <= p || peak.CompareAndSwap(p, c) {
						break
					}
				}
				<-gate
				concurrent.Add(-1)
				return nil
			},
		})
	}
	tx := db.Begin()
	done := make(chan error, 1)
	go func() {
		_, err := db.Invoke(tx, obj, "ping", int64(1))
		done <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for peak.Load() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if peak.Load() != n {
		t.Fatalf("peak concurrency = %d, want %d (sibling subtransactions)", peak.Load(), n)
	}
	tx.Commit()
}

func TestStatsCounters(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{})
	obj := newSensor(t, db)
	e.AddRule(&Rule{
		Name: "i", EventKey: pingKey(), ActionMode: Immediate,
		Action: func(*RuleCtx) error { return nil },
	})
	e.AddRule(&Rule{
		Name: "d", EventKey: pingKey(), ActionMode: Deferred,
		Action: func(*RuleCtx) error { return nil },
	})
	e.AddRule(&Rule{
		Name: "x", EventKey: pingKey(), ActionMode: Detached,
		Action: func(*RuleCtx) error { return nil },
	})
	tx := db.Begin()
	db.Invoke(tx, obj, "ping", int64(1))
	tx.Commit()
	e.WaitDetached()
	st := e.Stats()
	if st.ImmediateFired != 1 || st.DeferredFired != 1 || st.DetachedFired != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Events == 0 {
		t.Fatal("no events counted")
	}
}
