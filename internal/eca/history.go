package eca

import (
	"sort"
	"sync"
	"time"
)

// HistoryEntry is one recorded event occurrence.
type HistoryEntry struct {
	Seq  uint64
	Txn  uint64
	Key  string
	Time time.Time
}

// historyRing is a fixed-capacity ring buffer of occurrences — the
// local history each ECA-manager keeps so that logging does not
// funnel through a central bottleneck (§6.3).
type historyRing struct {
	buf   []HistoryEntry
	start int
	n     int
}

func newHistoryRing(capacity int) *historyRing {
	if capacity < 1 {
		capacity = 1
	}
	return &historyRing{buf: make([]HistoryEntry, capacity)}
}

func (r *historyRing) append(e HistoryEntry) {
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = e
		r.n++
		return
	}
	r.buf[r.start] = e
	r.start = (r.start + 1) % len(r.buf)
}

func (r *historyRing) entries() []HistoryEntry {
	out := make([]HistoryEntry, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.start+i)%len(r.buf)])
	}
	return out
}

// forTxn returns the ring's entries belonging to one transaction.
func (r *historyRing) forTxn(id uint64) []HistoryEntry {
	var out []HistoryEntry
	for i := 0; i < r.n; i++ {
		e := r.buf[(r.start+i)%len(r.buf)]
		if e.Txn == id {
			out = append(out, e)
		}
	}
	return out
}

// globalHistory is the consolidated history. In the REACH design it is
// maintained by a background process after a transaction has committed
// or aborted; in the central mode every occurrence is logged here
// synchronously (the bottleneck of §6.3).
type globalHistory struct {
	mu   sync.Mutex
	ring *historyRing
}

func newGlobalHistory(capacity int) *globalHistory {
	return &globalHistory{ring: newHistoryRing(capacity)}
}

func (g *globalHistory) append(e HistoryEntry) {
	g.mu.Lock()
	g.ring.append(e)
	g.mu.Unlock()
}

func (g *globalHistory) entries() []HistoryEntry {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ring.entries()
}

// GlobalHistory returns the consolidated event history, oldest first.
func (e *Engine) GlobalHistory() []HistoryEntry {
	return e.hist.entries()
}

// consolidateHistory moves a finished transaction's occurrences from
// the managers' local histories into the global history, in occurrence
// order. In distributed mode this runs after the transaction ends —
// off the detection fast path.
func (e *Engine) consolidateHistory(txnID uint64) {
	if e.opts.History == CentralHistory {
		return // already centralized at detection time
	}
	e.mu.RLock()
	managers := make([]*Manager, 0, len(e.managers))
	for _, m := range e.managers {
		managers = append(managers, m)
	}
	e.mu.RUnlock()
	var entries []HistoryEntry
	for _, m := range managers {
		m.mu.Lock()
		entries = append(entries, m.local.forTxn(txnID)...)
		m.mu.Unlock()
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Seq < entries[j].Seq })
	for _, en := range entries {
		e.hist.append(en)
	}
}
