package eca

import (
	"sort"
	"sync"
	"sync/atomic" //lint:allow rawatomics history shard round-robin counter, not metrics
	"time"

	"repro/internal/obs"
)

// HistoryEntry is one recorded event occurrence.
type HistoryEntry struct {
	Seq  uint64
	Txn  uint64
	Key  string
	Time time.Time
}

// historyRing is a fixed-capacity ring buffer of occurrences — the
// local history each ECA-manager keeps so that logging does not
// funnel through a central bottleneck (§6.3).
type historyRing struct {
	buf   []HistoryEntry
	start int
	n     int
}

func newHistoryRing(capacity int) *historyRing {
	if capacity < 1 {
		capacity = 1
	}
	return &historyRing{buf: make([]HistoryEntry, capacity)}
}

// historyEntryOverhead approximates the fixed in-memory cost of one
// HistoryEntry (struct fields plus string header); the key's bytes
// are added on top. Exactness does not matter — the governor needs a
// monotone footprint signal, not an allocator audit.
const historyEntryOverhead = 64

func entrySize(e HistoryEntry) int64 {
	return historyEntryOverhead + int64(len(e.Key))
}

// append records e and returns the ring's byte-footprint delta
// (negative contributions come from the entry an insert evicts).
func (r *historyRing) append(e HistoryEntry) int64 {
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = e
		r.n++
		return entrySize(e)
	}
	delta := entrySize(e) - entrySize(r.buf[r.start])
	r.buf[r.start] = e
	r.start = (r.start + 1) % len(r.buf)
	return delta
}

func (r *historyRing) entries() []HistoryEntry {
	out := make([]HistoryEntry, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.start+i)%len(r.buf)])
	}
	return out
}

// forTxn returns the ring's entries belonging to one transaction.
func (r *historyRing) forTxn(id uint64) []HistoryEntry {
	var out []HistoryEntry
	for i := 0; i < r.n; i++ {
		e := r.buf[(r.start+i)%len(r.buf)]
		if e.Txn == id {
			out = append(out, e)
		}
	}
	return out
}

// historyShards is the maximum number of partitions a sharded history
// splits into. A power of two so shard selection is a mask.
const historyShards = 8

// shardedHistory is a history split across up to historyShards ring
// shards, each behind its own mutex, so concurrent recorders on the
// raise path do not serialize on one history lock — the §6.3 argument
// against a central log, applied a second time inside each history.
// Appends distribute round-robin; the shard count is the largest
// power-of-two divisor of the capacity (≤ historyShards), which keeps
// the eviction contract exact: the union of the shards always holds
// precisely the most recent capacity appends. Readers consolidate by
// merging the shards and sorting by Seq — reads are the slow path.
type shardedHistory struct {
	ctr    atomic.Uint64
	mask   uint64
	shards []historyShard
	// bytes accumulates the rings' approximate footprint. The engine
	// points every history (global and per-manager local) at one
	// shared gauge so the governor reads total footprint in one load;
	// standalone histories get a private gauge.
	bytes *obs.Gauge
}

type historyShard struct {
	mu   sync.Mutex
	ring *historyRing
	// pad keeps neighbouring shards off one cache line so round-robin
	// writers do not false-share.
	_ [40]byte
}

func newShardedHistory(capacity int) *shardedHistory {
	if capacity < 1 {
		capacity = 1
	}
	n := historyShards
	for capacity%n != 0 {
		n /= 2
	}
	h := &shardedHistory{mask: uint64(n - 1), shards: make([]historyShard, n), bytes: new(obs.Gauge)}
	for i := range h.shards {
		h.shards[i].ring = newHistoryRing(capacity / n)
	}
	return h
}

func (h *shardedHistory) append(e HistoryEntry) {
	s := &h.shards[h.ctr.Add(1)&h.mask]
	s.mu.Lock()
	delta := s.ring.append(e)
	s.mu.Unlock()
	if delta != 0 {
		h.bytes.Add(delta)
	}
}

// entries consolidates the shards into one Seq-ordered slice.
func (h *shardedHistory) entries() []HistoryEntry {
	var out []HistoryEntry
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		out = append(out, s.ring.entries()...)
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// forTxn consolidates the shards' entries belonging to one
// transaction, Seq-ordered.
func (h *shardedHistory) forTxn(id uint64) []HistoryEntry {
	var out []HistoryEntry
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		out = append(out, s.ring.forTxn(id)...)
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// GlobalHistory returns the consolidated event history, oldest first.
func (e *Engine) GlobalHistory() []HistoryEntry {
	return e.hist.entries()
}

// consolidateHistory moves a finished transaction's occurrences from
// the managers' local histories into the global history, in occurrence
// order. In distributed mode this runs after the transaction ends —
// off the detection fast path.
func (e *Engine) consolidateHistory(txnID uint64) {
	if e.opts.History == CentralHistory {
		return // already centralized at detection time
	}
	e.mu.RLock()
	managers := make([]*Manager, 0, len(e.managers))
	for _, m := range e.managers {
		managers = append(managers, m)
	}
	e.mu.RUnlock()
	var entries []HistoryEntry
	for _, m := range managers {
		entries = append(entries, m.local.forTxn(txnID)...)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Seq < entries[j].Seq })
	for _, en := range entries {
		e.hist.append(en)
	}
}
