package eca

import (
	"context"
	"fmt"
	"time"

	"repro/internal/event"
	"repro/internal/oodb"
	"repro/internal/txn"
)

// RuleCtx is passed to rule conditions and actions. Txn is the
// transaction the rule part runs in (a subtransaction of the trigger
// for immediate/deferred coupling, an independent top-level
// transaction for the detached modes). Trigger is the event instance
// that fired the rule; for composite events its Parts carry the
// constituents and their parameters.
type RuleCtx struct {
	Engine  *Engine
	DB      *oodb.DB
	Txn     *txn.Txn
	Trigger *event.Instance
	// Context carries the supervised executor's cancellation signal:
	// it is cancelled when the rule's deadline expires, so long-running
	// actions can observe it and return early. Elsewhere it is
	// context.Background().
	Context context.Context
}

// Ctx returns an object-invocation context bound to the rule's
// transaction.
func (rc *RuleCtx) Ctx() *oodb.Ctx { return &oodb.Ctx{DB: rc.DB, Txn: rc.Txn} }

// CondFunc evaluates a rule condition.
type CondFunc func(rc *RuleCtx) (bool, error)

// ActionFunc executes a rule action.
type ActionFunc func(rc *RuleCtx) error

// Rule is an ECA rule. The separation of the triggering event from
// condition and action, each with its own coupling, follows HiPAC and
// the REACH rule system (§2, §3.2). Rules are mapped onto a rule
// object whose evalCond/execAction call the registered functions —
// the Go analogue of the shared-library C functions of §6.1.
type Rule struct {
	Name string
	// EventKey is the spec key of the triggering event (primitive or
	// composite:Name).
	EventKey string
	// Priority orders rules fired by the same event; higher fires
	// first.
	Priority int
	// CondMode couples condition evaluation to the trigger. Zero
	// defaults to ActionMode.
	CondMode Coupling
	// ActionMode couples action execution; it may not be "earlier"
	// than CondMode.
	ActionMode Coupling
	// Cond is the condition; nil means always true.
	Cond CondFunc
	// Action is the action; required.
	Action ActionFunc
	// Disabled rules stay registered but never fire.
	Disabled bool

	// Timeout bounds each detached attempt of this rule; 0 uses the
	// engine's RuleTimeout, negative disables the deadline.
	Timeout time.Duration
	// Retries is this rule's retry budget for retriable aborts; 0 uses
	// the engine's RuleRetries, negative disables retries.
	Retries int
	// Breaker is this rule's circuit-breaker threshold; 0 uses the
	// engine's BreakerThreshold, negative disables the breaker.
	Breaker int

	// registration metadata, for tie-breaking (§6.4).
	regSeq  uint64
	regTime time.Time
}

// String implements fmt.Stringer.
func (r *Rule) String() string {
	return fmt.Sprintf("rule %s on %s prio %d [%v/%v]",
		r.Name, r.EventKey, r.Priority, r.condMode(), r.ActionMode)
}

func (r *Rule) condMode() Coupling {
	if r.CondMode == 0 {
		return r.ActionMode
	}
	return r.CondMode
}

// couplingOrder ranks modes by how early they run, for the CondMode ≤
// ActionMode validation.
func couplingOrder(c Coupling) int {
	switch c {
	case Immediate:
		return 0
	case Deferred:
		return 1
	default:
		return 2
	}
}

// validate checks internal consistency (admission against Table 1 is
// done by the engine, which knows the event's category).
func (r *Rule) validate() error {
	if r.Name == "" {
		return fmt.Errorf("eca: rule needs a name")
	}
	if r.EventKey == "" {
		return fmt.Errorf("eca: rule %s needs a triggering event", r.Name)
	}
	if r.Action == nil {
		return fmt.Errorf("eca: rule %s needs an action", r.Name)
	}
	if r.ActionMode == 0 {
		return fmt.Errorf("eca: rule %s needs an action coupling mode", r.Name)
	}
	if couplingOrder(r.condMode()) > couplingOrder(r.ActionMode) {
		return fmt.Errorf("eca: rule %s: condition mode %v later than action mode %v",
			r.Name, r.condMode(), r.ActionMode)
	}
	if r.condMode().Detachedness() != r.ActionMode.Detachedness() &&
		couplingOrder(r.condMode()) >= 2 {
		return fmt.Errorf("eca: rule %s: detached condition with non-detached action", r.Name)
	}
	return nil
}

// TieBreak selects the ordering of equal-priority rules (§6.4).
type TieBreak int

// Tie-break policies.
const (
	// OldestFirst fires the rule defined earliest first (default).
	OldestFirst TieBreak = iota
	// NewestFirst fires the rule defined latest first.
	NewestFirst
)

// ruleLess orders rules: priority descending, then the tie-break.
func ruleLess(a, b *Rule, tb TieBreak) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	if tb == NewestFirst {
		return a.regSeq > b.regSeq
	}
	return a.regSeq < b.regSeq
}
