package eca

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/algebra"
)

func TestListRules(t *testing.T) {
	e, _, _ := newTestEngine(t, Options{})
	e.AddRule(&Rule{Name: "b", EventKey: pingKey(), Priority: 1, ActionMode: Immediate,
		Action: func(*RuleCtx) error { return nil }})
	e.AddRule(&Rule{Name: "a", EventKey: pingKey(), Priority: 9, ActionMode: Deferred,
		Action: func(*RuleCtx) error { return nil }})
	infos := e.ListRules()
	if len(infos) != 2 {
		t.Fatalf("ListRules = %d entries, want 2", len(infos))
	}
	if infos[0].Name != "a" || infos[0].Priority != 9 || infos[0].ActionMode != Deferred {
		t.Fatalf("first rule = %+v, want highest-priority 'a'", infos[0])
	}
	if infos[1].CondMode != Immediate {
		t.Fatalf("rule b cond mode = %v", infos[1].CondMode)
	}
}

func TestSetRuleEnabled(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{})
	obj := newSensor(t, db)
	var fired atomic.Int64
	e.AddRule(&Rule{Name: "r", EventKey: pingKey(), ActionMode: Immediate,
		Action: func(*RuleCtx) error { fired.Add(1); return nil }})
	if !e.SetRuleEnabled(pingKey(), "r", false) {
		t.Fatal("SetRuleEnabled = false for existing rule")
	}
	tx := db.Begin()
	db.Invoke(tx, obj, "ping", int64(1))
	tx.Commit()
	if fired.Load() != 0 {
		t.Fatal("disabled rule fired")
	}
	e.SetRuleEnabled(pingKey(), "r", true)
	tx2 := db.Begin()
	db.Invoke(tx2, obj, "ping", int64(1))
	tx2.Commit()
	if fired.Load() != 1 {
		t.Fatal("re-enabled rule did not fire")
	}
	if e.SetRuleEnabled("no:such", "r", true) {
		t.Fatal("SetRuleEnabled = true for missing manager")
	}
	if e.SetRuleEnabled(pingKey(), "missing", true) {
		t.Fatal("SetRuleEnabled = true for missing rule")
	}
}

func TestBackgroundGC(t *testing.T) {
	e, db, vc := newTestEngine(t, Options{})
	obj := newSensor(t, db)
	comp := &algebra.Composite{
		Name: "gc-pair",
		Expr: algebra.Seq{Exprs: []algebra.Expr{
			algebra.Prim{Key: pingKey()}, algebra.Prim{Key: resetKey()},
		}},
		Policy:   algebra.Chronicle,
		Scope:    algebra.ScopeGlobal,
		Validity: time.Minute,
	}
	if err := e.DefineComposite(comp); err != nil {
		t.Fatal(err)
	}
	h := e.StartGC(30 * time.Second)
	defer h.Stop()

	tx := db.Begin()
	db.Invoke(tx, obj, "ping", int64(1)) // half a pair
	tx.Commit()
	e.DrainComposers()
	if got := e.SemiComposed(); got != 1 {
		t.Fatalf("semi-composed = %d, want 1", got)
	}
	// Within validity: GC ticks but keeps it.
	vc.Advance(45 * time.Second)
	if got := e.SemiComposed(); got != 1 {
		t.Fatalf("semi-composed after early GC = %d, want 1", got)
	}
	// Past validity: the background collector removes it.
	vc.Advance(2 * time.Minute)
	if got := e.SemiComposed(); got != 0 {
		t.Fatalf("semi-composed after GC = %d, want 0", got)
	}
	if e.Stats().SemiComposedGCed == 0 {
		t.Fatal("GC counter not incremented")
	}
	// Stopping the collector halts further ticks (no panic on closed).
	h.Stop()
	vc.Advance(10 * time.Minute)
}
