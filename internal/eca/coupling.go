// Package eca implements the REACH ECA managers and rule engine: the
// event-category × coupling-mode admission matrix of Table 1, the six
// coupling modes, prioritized rule firing with tie-break policies,
// deferred execution at EOT, the detached executor with causal
// dependencies, asynchronous event composition on per-composite
// goroutines, and the local/global event histories of §6.3.
package eca

import (
	"fmt"

	"repro/internal/event"
)

// Coupling is the execution mode of a rule (or rule part) relative to
// the triggering user-submitted transaction (paper §3.2).
type Coupling int

// The six REACH coupling modes.
const (
	// Immediate runs the rule as a subtransaction at the point the
	// event is detected, inside the triggering transaction.
	Immediate Coupling = iota + 1
	// Deferred runs the rule as a subtransaction after the triggering
	// transaction completes its work but before it commits.
	Deferred
	// Detached runs the rule in an independent top-level transaction.
	Detached
	// DetachedParallelCausal runs the rule in a separate transaction
	// that may begin in parallel but may not commit unless the
	// triggering transaction commits.
	DetachedParallelCausal
	// DetachedSequentialCausal runs the rule in a separate transaction
	// that may initiate only after the triggering transaction has
	// committed.
	DetachedSequentialCausal
	// DetachedExclusiveCausal runs the rule in a separate transaction
	// that may commit only if the triggering transaction aborts.
	DetachedExclusiveCausal
)

// String implements fmt.Stringer.
func (c Coupling) String() string {
	switch c {
	case Immediate:
		return "immediate"
	case Deferred:
		return "deferred"
	case Detached:
		return "detached"
	case DetachedParallelCausal:
		return "parallel-causal"
	case DetachedSequentialCausal:
		return "sequential-causal"
	case DetachedExclusiveCausal:
		return "exclusive-causal"
	}
	return fmt.Sprintf("Coupling(%d)", int(c))
}

// Detachedness reports whether the mode runs in its own top-level
// transaction.
func (c Coupling) Detachedness() bool {
	switch c {
	case Detached, DetachedParallelCausal, DetachedSequentialCausal, DetachedExclusiveCausal:
		return true
	}
	return false
}

// Couplings lists all six modes in the paper's Table 1 row order.
func Couplings() []Coupling {
	return []Coupling{
		Immediate, Deferred, Detached,
		DetachedParallelCausal, DetachedSequentialCausal, DetachedExclusiveCausal,
	}
}

// Category classifies the triggering event for admission purposes
// (the columns of Table 1).
type Category int

// Event categories of §3.2.
const (
	// SingleMethod covers primitive database events: application
	// method invocations, state changes, and transaction-related
	// events — they can always be related to the transaction in which
	// they were raised.
	SingleMethod Category = iota + 1
	// PurelyTemporal covers simple temporal events, which occur
	// independently of any transaction.
	PurelyTemporal
	// CompositeSingleTxn covers composite events whose primitive
	// events all originate in a single transaction.
	CompositeSingleTxn
	// CompositeMultiTxn covers composite events whose primitive events
	// originate in different transactions.
	CompositeMultiTxn
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case SingleMethod:
		return "single-method"
	case PurelyTemporal:
		return "purely-temporal"
	case CompositeSingleTxn:
		return "composite-1tx"
	case CompositeMultiTxn:
		return "composite-ntx"
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// Categories lists the four categories in the paper's column order.
func Categories() []Category {
	return []Category{SingleMethod, PurelyTemporal, CompositeSingleTxn, CompositeMultiTxn}
}

// Supported reports whether a rule triggered by an event of the given
// category may execute under the given coupling mode — the admission
// predicate that IS the paper's Table 1.
//
// Rationale, per §3.2: single-method events relate to their raising
// transaction, so every mode works. Purely temporal events occur
// outside any transaction, so only fully detached execution is
// defined. Single-transaction composites could semantically couple
// immediately, but allowing it would stall normal processing on every
// method event until the composers report no completion — prohibitive
// — so the combination is rejected ("(N)" in the table). For
// multi-transaction composites, immediate and deferred are ambiguous
// (which transaction?) and the causal modes require the dependency to
// hold against all constituent transactions.
func Supported(cat Category, mode Coupling) bool {
	switch cat {
	case SingleMethod:
		return true
	case PurelyTemporal:
		return mode == Detached
	case CompositeSingleTxn:
		return mode != Immediate
	case CompositeMultiTxn:
		return mode.Detachedness()
	}
	return false
}

// CategoryOfKey derives the admission category from a spec key's
// kind, with composite scope resolved by the caller (the engine knows
// each composite's declaration).
func CategoryOfKey(kind event.Kind, compositeCrossTxn bool) Category {
	switch kind {
	case event.KindMethod, event.KindState, event.KindTxn:
		return SingleMethod
	case event.KindTemporal:
		return PurelyTemporal
	case event.KindComposite:
		if compositeCrossTxn {
			return CompositeMultiTxn
		}
		return CompositeSingleTxn
	}
	return SingleMethod
}
