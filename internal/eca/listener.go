package eca

import (
	"repro/internal/algebra"
	"repro/internal/event"
	"repro/internal/txn"
)

// txnListener adapts the engine to the transaction manager's
// lifecycle hooks. Flow-control events (BOT, EOT, commit, abort) are
// raised for top-level transactions; EOT additionally drives the
// deferred-rule machinery and the composite life-span rules.
type txnListener Engine

func (l *txnListener) engine() *Engine { return (*Engine)(l) }

// AfterBegin tracks the transaction and raises the BOT event.
func (l *txnListener) AfterBegin(t *txn.Txn) {
	e := l.engine()
	if !t.IsTop() {
		return
	}
	e.txnMu.Lock()
	e.activeTxns[t.ID()] = t
	e.txnMu.Unlock()
	e.emitTxnEvent(event.BOT, t)
}

// BeforeCommit is EOT: the point at which the transaction has
// completed its work but not committed. Order (§3.2, §6.4): raise the
// EOT event, drain the asynchronous composers, flush this
// transaction's per-transaction compositions (their life-span is the
// transaction), then run the deferred queue under the transaction
// policy manager's control.
func (l *txnListener) BeforeCommit(t *txn.Txn) error {
	e := l.engine()
	if err := e.emitTxnEvent(event.EOT, t); err != nil {
		return err
	}
	e.endTxnComposition(t.ID(), false)
	return e.runDeferred(t)
}

// AfterCommit resolves tracking, raises the commit event, and hands
// the transaction's occurrences to the background history
// consolidator (§6.3).
func (l *txnListener) AfterCommit(t *txn.Txn) {
	e := l.engine()
	if !t.IsTop() {
		return
	}
	e.resolveTxn(t, txn.Committed)
	e.emitTxnEvent(event.Commit, t)
	e.consolidateHistory(t.ID())
}

// AfterAbort discards the transaction's semi-composed events (their
// life-span ended without completion), resolves tracking, raises the
// abort event, and consolidates history.
func (l *txnListener) AfterAbort(t *txn.Txn) {
	e := l.engine()
	if !t.IsTop() {
		return
	}
	e.endTxnComposition(t.ID(), true)
	e.dropDeferred(t)
	e.resolveTxn(t, txn.Aborted)
	e.emitTxnEvent(event.Abort, t)
	e.consolidateHistory(t.ID())
}

// emitTxnEvent raises a flow-control event for t. Rule transactions
// are silent: they never raise flow-control events (termination).
func (e *Engine) emitTxnEvent(phase event.TxnPhase, t *txn.Txn) error {
	if isRuleTxn(t) {
		return nil
	}
	key := event.TxnSpec{Phase: phase}.Key()
	// Skip the whole path when nobody listens — same useless-overhead
	// discipline as the sentry.
	if e.lookupManager(key) == nil {
		return nil
	}
	in := &event.Instance{
		SpecKey: key,
		Kind:    event.KindTxn,
		Time:    e.clk.Now(),
		Txn:     t.ID(),
	}
	if phase == event.BOT || phase == event.EOT {
		in.Origin = t // still active: immediate/deferred rules may couple
	}
	return e.Consume(in)
}

// endTxnComposition ends the life-span of every per-transaction
// composition for the given transaction: completions fire on commit
// paths (flush), semi-composed state is discarded on abort. Only
// transaction-scoped composites participate — global composites have
// no per-transaction composer, and making EOT wait on their
// asynchronous queues would reintroduce exactly the stall the
// asynchronous design avoids.
func (e *Engine) endTxnComposition(id uint64, discard bool) {
	e.mu.RLock()
	cms := make([]*compositeMgr, 0, len(e.composites))
	for _, cm := range e.composites {
		if cm.decl.Scope == algebra.ScopeTransaction {
			cms = append(cms, cm)
		}
	}
	e.mu.RUnlock()
	for _, cm := range cms {
		cm.flushTxn(id, discard)
	}
}

// resolveTxn moves a transaction from the active set to the bounded
// resolved set used by the causal dependency checks.
const resolvedRetention = 8192

func (e *Engine) resolveTxn(t *txn.Txn, st txn.Status) {
	e.txnMu.Lock()
	defer e.txnMu.Unlock()
	delete(e.activeTxns, t.ID())
	e.resolvedTxns[t.ID()] = st
	e.resolvedOrder = append(e.resolvedOrder, t.ID())
	for len(e.resolvedOrder) > resolvedRetention {
		old := e.resolvedOrder[0]
		e.resolvedOrder = e.resolvedOrder[1:]
		delete(e.resolvedTxns, old)
	}
}
