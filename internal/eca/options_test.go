package eca

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/event"
)

// TestSimpleBeforeComplexOrdering checks the third deferred-queue
// ordering policy of §6.4: rules triggered by simple events fire ahead
// of rules triggered by composite events, priorities notwithstanding.
func TestSimpleBeforeComplexOrdering(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{SimpleBeforeComplex: true})
	obj := newSensor(t, db)
	comp := seqComposite("sbc", algebra.ScopeTransaction)
	if err := e.DefineComposite(comp); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []string
	e.AddRule(&Rule{
		Name: "complex", EventKey: comp.Key(), Priority: 100, ActionMode: Deferred,
		Action: func(*RuleCtx) error {
			mu.Lock()
			order = append(order, "complex")
			mu.Unlock()
			return nil
		},
	})
	e.AddRule(&Rule{
		Name: "simple", EventKey: resetKey(), Priority: 1, ActionMode: Deferred,
		Action: func(*RuleCtx) error {
			mu.Lock()
			order = append(order, "simple")
			mu.Unlock()
			return nil
		},
	})
	tx := db.Begin()
	db.Invoke(tx, obj, "ping", int64(1))
	db.Invoke(tx, obj, "reset")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "simple" || order[1] != "complex" {
		t.Fatalf("deferred order = %v, want [simple complex] despite priorities", order)
	}
}

// TestWithoutSimpleBeforeComplexPriorityWins is the control: with the
// policy off, the higher-priority composite rule fires first.
func TestWithoutSimpleBeforeComplexPriorityWins(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{})
	obj := newSensor(t, db)
	comp := seqComposite("nsbc", algebra.ScopeTransaction)
	e.DefineComposite(comp)
	var mu sync.Mutex
	var order []string
	e.AddRule(&Rule{
		Name: "complex", EventKey: comp.Key(), Priority: 100, ActionMode: Deferred,
		Action: func(*RuleCtx) error {
			mu.Lock()
			order = append(order, "complex")
			mu.Unlock()
			return nil
		},
	})
	e.AddRule(&Rule{
		Name: "simple", EventKey: resetKey(), Priority: 1, ActionMode: Deferred,
		Action: func(*RuleCtx) error {
			mu.Lock()
			order = append(order, "simple")
			mu.Unlock()
			return nil
		},
	})
	tx := db.Begin()
	db.Invoke(tx, obj, "ping", int64(1))
	db.Invoke(tx, obj, "reset")
	tx.Commit()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "complex" {
		t.Fatalf("deferred order = %v, want complex first by priority", order)
	}
}

// TestParallelDeferredExecution runs the deferred batch as parallel
// sibling subtransactions.
func TestParallelDeferredExecution(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{Exec: ParallelExec})
	obj := newSensor(t, db)
	const n = 4
	gate := make(chan struct{})
	var peak, cur atomic.Int64
	for i := 0; i < n; i++ {
		e.AddRule(&Rule{
			Name: string(rune('a' + i)), EventKey: pingKey(), ActionMode: Deferred,
			Action: func(*RuleCtx) error {
				c := cur.Add(1)
				for {
					p := peak.Load()
					if c <= p || peak.CompareAndSwap(p, c) {
						break
					}
				}
				<-gate
				cur.Add(-1)
				return nil
			},
		})
	}
	tx := db.Begin()
	db.Invoke(tx, obj, "ping", int64(1))
	done := make(chan error, 1)
	go func() { done <- tx.Commit() }()
	deadline := time.Now().Add(2 * time.Second)
	for peak.Load() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if peak.Load() != n {
		t.Fatalf("deferred peak concurrency = %d, want %d", peak.Load(), n)
	}
}

// TestUnsafeImmediateCompositeSync covers the unsafe combination in
// synchronous composition mode.
func TestUnsafeImmediateCompositeSync(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{
		AllowUnsafeImmediateComposite: true,
		SyncComposition:               true,
	})
	obj := newSensor(t, db)
	comp := seqComposite("usync", algebra.ScopeTransaction)
	e.DefineComposite(comp)
	var fired atomic.Int64
	if err := e.AddRule(&Rule{
		Name: "imm", EventKey: comp.Key(), ActionMode: Immediate,
		Action: func(*RuleCtx) error { fired.Add(1); return nil },
	}); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	db.Invoke(tx, obj, "ping", int64(1))
	db.Invoke(tx, obj, "reset")
	if fired.Load() != 1 {
		t.Fatalf("sync unsafe immediate fired %d, want 1", fired.Load())
	}
	tx.Commit()
}

// TestHistoryRingBounded verifies local history rings respect their
// capacity.
func TestHistoryRingBounded(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{LocalHistorySize: 8})
	obj := newSensor(t, db)
	e.AddRule(&Rule{
		Name: "r", EventKey: pingKey(), ActionMode: Immediate,
		Action: func(*RuleCtx) error { return nil },
	})
	tx := db.Begin()
	for i := 0; i < 30; i++ {
		db.Invoke(tx, obj, "ping", int64(i))
	}
	m := e.lookupManager(pingKey())
	hist := m.LocalHistory()
	if len(hist) != 8 {
		t.Fatalf("local history = %d entries, want 8 (ring capacity)", len(hist))
	}
	// Oldest retained entries are the most recent 8 occurrences.
	for i := 1; i < len(hist); i++ {
		if hist[i].Seq <= hist[i-1].Seq {
			t.Fatal("history not in occurrence order")
		}
	}
	tx.Commit()
}

// TestCompositeOfComposite nests a named composite inside another via
// propagation of completions.
func TestCompositeOfComposite(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{})
	obj := newSensor(t, db)
	inner := seqComposite("inner2", algebra.ScopeTransaction)
	if err := e.DefineComposite(inner); err != nil {
		t.Fatal(err)
	}
	outer := &algebra.Composite{
		Name:   "outer2",
		Expr:   algebra.History{Of: algebra.Prim{Key: inner.Key()}, Count: 2},
		Policy: algebra.Chronicle,
		Scope:  algebra.ScopeTransaction,
	}
	if err := e.DefineComposite(outer); err != nil {
		t.Fatal(err)
	}
	var fired atomic.Int64
	e.AddRule(&Rule{
		Name: "onOuter", EventKey: outer.Key(), ActionMode: Deferred,
		Action: func(rc *RuleCtx) error {
			fired.Add(1)
			if got := len(rc.Trigger.Flatten()); got != 4 {
				t.Errorf("outer composite flattened to %d primitives, want 4", got)
			}
			return nil
		},
	})
	tx := db.Begin()
	for i := 0; i < 2; i++ { // two inner pairs
		db.Invoke(tx, obj, "ping", int64(i))
		db.Invoke(tx, obj, "reset")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if fired.Load() != 1 {
		t.Fatalf("composite-of-composite fired %d, want 1", fired.Load())
	}
}

// TestEOTEventVisibleToRules ensures rules can trigger on the EOT
// flow-control event and still couple deferred.
func TestEOTEventVisibleToRules(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{})
	var fired atomic.Int64
	e.AddRule(&Rule{
		Name: "onEOT", EventKey: event.TxnSpec{Phase: event.EOT}.Key(), ActionMode: Immediate,
		Action: func(rc *RuleCtx) error { fired.Add(1); return nil },
	})
	tx := db.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if fired.Load() != 1 {
		t.Fatalf("EOT rule fired %d, want 1", fired.Load())
	}
	// Aborting transactions never reach EOT.
	tx2 := db.Begin()
	tx2.Abort()
	if fired.Load() != 1 {
		t.Fatal("EOT rule fired for aborted transaction")
	}
}
