// The supervised executor for detached rule work. The paper frames
// detached rules as independent top-level transactions whose failures
// must be contained and reported (§3.2, HiPAC); the naive reading —
// one unbounded goroutine per firing — spawns itself to death under
// load and silently drops deadlock aborts. This executor bounds the
// concurrency with a worker pool and a queue, retries retriable
// aborts with exponential backoff, converts panics into rule-txn
// aborts with the stack captured into the trace ring, enforces
// per-rule deadlines, and parks permanently failing rules behind a
// per-rule circuit breaker with a dead-letter queue for inspection.
package eca

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/event"
	"repro/internal/governor"
	"repro/internal/txn"
)

// OverloadPolicy selects what a full executor queue does to new
// detached work.
type OverloadPolicy int

// Overload policies.
const (
	// OverloadBlock stalls the raising goroutine until queue space
	// frees up (backpressure; the default).
	OverloadBlock OverloadPolicy = iota
	// OverloadShed rejects the spawn with ErrOverload and records it
	// in the dead-letter queue.
	OverloadShed
)

// String implements fmt.Stringer.
func (p OverloadPolicy) String() string {
	if p == OverloadShed {
		return "shed"
	}
	return "block"
}

// Typed executor errors.
var (
	// ErrOverload rejects a detached spawn when the queue is full and
	// the policy is OverloadShed.
	ErrOverload = errors.New("eca: executor overloaded")
	// ErrDraining rejects detached spawns after Drain or Close began.
	ErrDraining = errors.New("eca: executor draining")
	// ErrRuleDeadline aborts a rule transaction whose attempt exceeded
	// its deadline.
	ErrRuleDeadline = errors.New("eca: rule deadline exceeded")
	// ErrBreakerOpen rejects a spawn whose rule's circuit breaker is
	// open.
	ErrBreakerOpen = errors.New("eca: rule circuit breaker open")
)

// DeadLetter records one detached rule firing the executor gave up
// on: shed under overload, rejected at an open breaker, or failed
// after its retry budget.
type DeadLetter struct {
	Rule     string    `json:"rule"`
	EventKey string    `json:"event"`
	Seq      uint64    `json:"seq"`
	Time     time.Time `json:"time"`
	Err      string    `json:"error"`
	Attempts int       `json:"attempts"`
	Reason   string    `json:"reason"`
}

// BreakerState is an inspectable snapshot of one rule's circuit
// breaker.
type BreakerState struct {
	Rule        string    `json:"rule"`
	Open        bool      `json:"open"`
	Consecutive int       `json:"consecutive"`
	Since       time.Time `json:"since"`
	LastErr     string    `json:"last_error,omitempty"`
}

// breaker tracks consecutive permanent failures of one rule.
type breaker struct {
	consecutive int
	open        bool
	since       time.Time
	lastErr     string
}

// ruleJob is one detached firing queued for the worker pool. For the
// parallel- and exclusive-causal modes the rule transaction and its
// dependency edges were created synchronously at firing time (§3.2:
// the rule "may begin in parallel", so the dependency must hold no
// matter how the scheduler interleaves the trigger's resolution);
// retries recreate them from ids. Sequential-causal jobs carry no
// transaction: they may not even initiate until the trigger commits.
type ruleJob struct {
	rule *Rule
	in   *event.Instance
	mode Coupling
	ids  []uint64
	t    *txn.Txn // first-attempt transaction (nil for sequential-causal)
	veto error    // causal veto discovered at firing time
}

// executor is the bounded worker pool detached rule firings run on.
// All state is mutex-guarded (metrics live in obs; rawatomics keeps
// raw atomics out of engine code).
type executor struct {
	e     *Engine
	queue chan ruleJob
	// drainCh closes when draining begins, unblocking submitters
	// parked on a full queue and workers parked in a backoff sleep.
	drainCh chan struct{}
	workers sync.WaitGroup

	mu        sync.Mutex
	cond      *sync.Cond
	inflight  int // accepted jobs not yet finished (queued or running)
	draining  bool
	jitterSeq uint64
	breakers  map[string]*breaker
	dead      []DeadLetter
}

func newExecutor(e *Engine) *executor {
	x := &executor{
		e:        e,
		queue:    make(chan ruleJob, e.opts.Queue),
		drainCh:  make(chan struct{}),
		breakers: make(map[string]*breaker),
	}
	x.cond = sync.NewCond(&x.mu)
	x.workers.Add(e.opts.Workers)
	for i := 0; i < e.opts.Workers; i++ {
		go x.worker()
	}
	return x
}

// submit reserves an in-flight slot and enqueues the job. The
// reservation happens before the channel send so WaitDetached and
// Drain observe the job the moment the raising goroutine returns —
// no spawn can be lost between acceptance and execution.
func (x *executor) submit(job ruleJob) error {
	x.mu.Lock()
	if x.draining {
		x.mu.Unlock()
		return ErrDraining
	}
	x.inflight++
	x.mu.Unlock()
	x.e.met.execInflight.Add(1)
	if x.e.opts.Overload == OverloadShed {
		select {
		case x.queue <- job:
		default:
			x.jobDone()
			return ErrOverload
		}
	} else {
	enqueue:
		for {
			// The raiser may be parked here while holding its
			// transaction's locks — locks the queued detached rules may
			// need to run. The governor breaks that cycle: every state
			// transition wakes the park to re-check the shed ladder, so
			// once the backlog (which counts this parked reservation)
			// degrades the system, the spawn sheds instead of waiting.
			// Channel fetch precedes the ladder check so a transition
			// between the two cannot be missed. Without a governor
			// stateCh is nil and this is plain bounded backpressure.
			var stateCh <-chan struct{}
			if g := x.e.gov; g != nil {
				stateCh = g.StateChanged()
				if g.ShouldShed(governor.ClassDetached) {
					x.jobDone()
					return governor.ErrOverloaded
				}
			}
			select {
			case x.queue <- job:
				break enqueue
			case <-x.drainCh:
				x.jobDone()
				return ErrDraining
			case <-stateCh:
			}
		}
	}
	depth := int64(len(x.queue))
	x.e.met.execQueue.Set(depth)
	x.e.met.execQueueHigh.SetMax(depth)
	return nil
}

// jobDone releases an in-flight reservation and wakes waiters.
func (x *executor) jobDone() {
	x.mu.Lock()
	x.inflight--
	x.mu.Unlock()
	x.e.met.execInflight.Add(-1)
	x.cond.Broadcast()
}

func (x *executor) worker() {
	defer x.workers.Done()
	for job := range x.queue {
		x.e.met.execQueue.Set(int64(len(x.queue)))
		x.runJob(job)
		x.jobDone()
	}
}

// drain flips the executor into draining mode (idempotent) and wakes
// anything parked on the queue.
func (x *executor) drain() {
	x.mu.Lock()
	if !x.draining {
		x.draining = true
		close(x.drainCh)
	}
	x.mu.Unlock()
}

// awaitIdle blocks until every accepted job has finished or ctx
// expires.
func (x *executor) awaitIdle(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() {
		// Taking the mutex serializes with a waiter between its
		// ctx.Err check and its park, so the broadcast cannot be lost.
		x.mu.Lock()
		x.mu.Unlock()
		x.cond.Broadcast()
	})
	defer stop()
	x.mu.Lock()
	defer x.mu.Unlock()
	for x.inflight > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		x.cond.Wait() //lint:allow lockdiscipline sync.Cond.Wait atomically releases the mutex while parked
	}
	return nil
}

// shutdown stops the workers. The caller must have drained first so
// no submitter can race the queue close.
func (x *executor) shutdown() {
	close(x.queue)
	x.workers.Wait()
}

// breakerOpen reports whether the rule's circuit breaker is open.
func (x *executor) breakerOpen(rule string) bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	b := x.breakers[rule]
	return b != nil && b.open
}

// recordSuccess closes the failure streak on a successful attempt.
func (x *executor) recordSuccess(rule string) {
	x.mu.Lock()
	if b := x.breakers[rule]; b != nil {
		b.consecutive = 0
	}
	x.mu.Unlock()
}

// recordFailure counts a permanent failure against the rule's
// breaker, trips it at the threshold, and dead-letters the firing.
func (x *executor) recordFailure(r *Rule, in *event.Instance, attempts int, err error, reason string) {
	threshold := x.e.breakerThreshold(r)
	now := x.e.clk.Now()
	x.mu.Lock()
	b := x.breakers[r.Name]
	if b == nil {
		b = &breaker{}
		x.breakers[r.Name] = b
	}
	b.consecutive++
	b.lastErr = err.Error()
	tripped := false
	if threshold > 0 && !b.open && b.consecutive >= threshold {
		b.open = true
		b.since = now
		tripped = true
	}
	x.mu.Unlock()
	if tripped {
		x.e.met.breakerTrips.Inc()
		x.e.met.breakerOpen.Add(1)
	}
	x.addDeadLetter(r, in, attempts, err, reason)
}

// addDeadLetter appends to the bounded dead-letter ring.
func (x *executor) addDeadLetter(r *Rule, in *event.Instance, attempts int, err error, reason string) {
	dl := DeadLetter{
		Rule:     r.Name,
		EventKey: r.EventKey,
		Seq:      in.Seq,
		Time:     x.e.clk.Now(),
		Err:      err.Error(),
		Attempts: attempts,
		Reason:   reason,
	}
	x.mu.Lock()
	x.dead = append(x.dead, dl)
	if over := len(x.dead) - x.e.opts.DeadLetterCapacity; over > 0 {
		x.dead = append(x.dead[:0:0], x.dead[over:]...)
	}
	depth := len(x.dead)
	x.mu.Unlock()
	x.e.met.deadLetters.Inc()
	x.e.met.deadDepth.Set(int64(depth))
}

// evictRule garbage-collects executor state keyed by an unloaded
// rule's name: its breaker record and its dead-letter entries. A
// long-lived process with rule churn would otherwise leak breaker
// entries, and a replacement rule registered under the same name
// would inherit its predecessor's failure streak.
func (x *executor) evictRule(name string) {
	x.mu.Lock()
	b := x.breakers[name]
	hadBreaker := b != nil
	wasOpen := hadBreaker && b.open
	delete(x.breakers, name)
	kept := x.dead[:0]
	evicted := 0
	for _, dl := range x.dead {
		if dl.Rule == name {
			evicted++
			continue
		}
		kept = append(kept, dl)
	}
	x.dead = kept
	depth := len(x.dead)
	x.mu.Unlock()
	if wasOpen {
		x.e.met.breakerOpen.Add(-1)
	}
	if hadBreaker {
		x.e.met.breakerEvicted.Inc()
	}
	if evicted > 0 {
		x.e.met.deadEvicted.Add(uint64(evicted))
		x.e.met.deadDepth.Set(int64(depth))
	}
}

// runJob drives one detached firing through its attempt loop:
// (re-)establish the causal preconditions, run the attempt under
// deadline and panic supervision, classify the failure, and either
// back off and retry or feed the breaker and the dead-letter queue.
func (x *executor) runJob(job ruleJob) {
	e := x.e
	r := job.rule
	maxAttempts := 1 + e.ruleRetries(r)
	start := e.clk.Now()
	t, veto := job.t, job.veto
	var err error
	attempt := 0
	for {
		attempt++
		if job.mode == DetachedSequentialCausal {
			// Sequential-causal rules may not initiate until every
			// trigger transaction committed (§3.2); the outcome is
			// re-checked before each attempt.
			if !e.seqCausalReady(job.ids) {
				return
			}
			t = e.beginRuleTxn()
		} else if t == nil {
			// Retry: a fresh rule transaction with fresh dependency
			// edges against whatever the triggers have become.
			t, veto = e.detachedTxn(job.mode, job.ids, r.Name)
		}
		if veto != nil {
			// A trigger already resolved the wrong way. Not a failure
			// of the rule: abort silently, as Table 1 prescribes.
			_ = t.AbortWith(veto)
			return
		}
		err = x.runAttempt(t, r, job.in)
		t = nil
		if err == nil {
			e.met.latDetached.Observe(e.clk.Now().Sub(start))
			x.recordSuccess(r.Name)
			return
		}
		if errors.Is(err, txn.ErrDependencyFailed) {
			// Causal dependency resolved against the rule at commit:
			// normal §3.2 operation, not a rule failure.
			e.met.latDetached.Observe(e.clk.Now().Sub(start))
			return
		}
		if errors.Is(err, ErrRuleDeadline) {
			e.met.deadlines.Inc()
			break
		}
		if !txn.IsRetriable(err) || attempt >= maxAttempts {
			break
		}
		e.met.retries.Inc()
		if !x.backoff(attempt) {
			break // draining: give up the remaining budget
		}
	}
	e.met.latDetached.Observe(e.clk.Now().Sub(start))
	x.recordFailure(r, job.in, attempt, err, failReason(err))
}

// failReason buckets a permanent failure for the dead-letter record.
func failReason(err error) string {
	switch {
	case errors.Is(err, ErrRuleDeadline):
		return "deadline"
	case txn.IsRetriable(err):
		return "retries-exhausted"
	default:
		return "failed"
	}
}

// runAttempt executes one rule attempt on t with deadline and panic
// supervision. On deadline expiry the watchdog aborts the rule
// transaction (cancelling its lock waits) and cancels the context
// handed to the rule body via RuleCtx.Context.
func (x *executor) runAttempt(t *txn.Txn, r *Rule, in *event.Instance) error {
	e := x.e
	ctx := context.Background()
	d := e.ruleTimeout(r)
	var expired *deadlineFlag
	if d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
		f := &deadlineFlag{}
		expired = f
		timer := e.clk.AfterFunc(d, func() {
			f.set()
			cancel()
			_ = t.AbortWith(ErrRuleDeadline)
		})
		defer timer.Stop()
	}
	err := e.runRuleGuarded(ctx, t, r, in)
	if err != nil && expired != nil && expired.get() {
		// The watchdog abort surfaces as whatever operation the rule
		// body was in (ErrNotActive, a cancelled lock wait, ...);
		// reclassify it so the deadline is reported, not the symptom.
		return fmt.Errorf("eca: rule %s: %w", r.Name, ErrRuleDeadline)
	}
	return err
}

// deadlineFlag is a mutex-guarded bool shared between the watchdog
// timer and the worker.
type deadlineFlag struct {
	mu    sync.Mutex
	fired bool
}

func (f *deadlineFlag) set() {
	f.mu.Lock()
	f.fired = true
	f.mu.Unlock()
}

func (f *deadlineFlag) get() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}

// backoff sleeps exponentially (with deterministic jitter) before a
// retry; it returns false when draining began, telling the caller to
// abandon the retry budget.
func (x *executor) backoff(attempt int) bool {
	d := x.e.opts.RetryBackoff << uint(attempt-1)
	if max := x.e.opts.RetryBackoffMax; d > max {
		d = max
	}
	x.mu.Lock()
	x.jitterSeq++
	z := x.jitterSeq + 0x9e3779b97f4a7c15
	x.mu.Unlock()
	// splitmix64 finalizer: deterministic, dependency-free jitter.
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	if span := uint64(d / 4); span > 0 {
		d += time.Duration(z % span)
	}
	select {
	case <-x.e.clk.After(d):
		return true
	case <-x.drainCh:
		return false
	}
}

// --- engine-side API ---

// spawnDetached routes a detached firing onto the executor: breaker
// check, synchronous transaction + dependency setup for the modes
// that "may begin in parallel" (§3.2), then admission under the
// overload policy. Only accepted firings count as fired.
func (e *Engine) spawnDetached(r *Rule, in *event.Instance) {
	x := e.exec
	// The governor's first shed rung: from the degraded state on,
	// detached firings are dropped before any work is reserved. The
	// loss is recorded in the dead-letter queue — detached rules are
	// independent top-level transactions (Table 1), so dropping one
	// never changes the triggering transaction's outcome.
	if g := e.gov; g != nil && g.ShouldShed(governor.ClassDetached) {
		g.NoteShed(governor.ClassDetached)
		e.met.rejGovernor.Inc()
		x.addDeadLetter(r, in, 0, governor.ErrOverloaded, "governor-shed")
		return
	}
	in.Retain() // the detached worker reads it after the raiser returns
	if x.breakerOpen(r.Name) {
		e.met.rejBreaker.Inc()
		x.addDeadLetter(r, in, 0, ErrBreakerOpen, "breaker-open")
		return
	}
	mode := r.condMode()
	txns := in.Transactions()
	ids := make([]uint64, 0, len(txns))
	for id := range txns {
		ids = append(ids, id)
	}
	job := ruleJob{rule: r, in: in, mode: mode, ids: ids}
	if mode != DetachedSequentialCausal {
		job.t, job.veto = e.detachedTxn(mode, ids, r.Name)
	}
	if err := x.submit(job); err != nil {
		if job.t != nil {
			_ = job.t.AbortWith(err)
		}
		switch {
		case errors.Is(err, governor.ErrOverloaded):
			// Shed out of a blocked park: the system degraded while
			// this spawn waited for queue space.
			if g := e.gov; g != nil {
				g.NoteShed(governor.ClassDetached)
			}
			e.met.rejGovernor.Inc()
			x.addDeadLetter(r, in, 0, err, "governor-shed")
		case errors.Is(err, ErrOverload):
			e.met.rejOverload.Inc()
			x.addDeadLetter(r, in, 0, err, "overload")
		default:
			e.met.rejDraining.Inc()
		}
		return
	}
	e.met.firedDetached.Inc()
}

// detachedTxn begins a rule transaction and registers the causal
// dependency edges against every transaction the triggering event
// originated from (Table 1: "all commit" / "all abort").
func (e *Engine) detachedTxn(mode Coupling, ids []uint64, ruleName string) (*txn.Txn, error) {
	t := e.beginRuleTxn()
	var veto error
	switch mode {
	case DetachedParallelCausal:
		for _, id := range ids {
			live, st, known := e.txnOutcome(id)
			switch {
			case live != nil:
				t.RequireCommit(live)
			case known && st == txn.Aborted:
				veto = fmt.Errorf("eca: rule %s: trigger txn %d aborted", ruleName, id)
			}
		}
	case DetachedExclusiveCausal:
		for _, id := range ids {
			live, st, known := e.txnOutcome(id)
			switch {
			case live != nil:
				t.RequireAbort(live)
			case known && st == txn.Committed:
				veto = fmt.Errorf("eca: rule %s: trigger txn %d committed", ruleName, id)
			}
		}
	}
	return t, veto
}

// seqCausalReady blocks until every trigger transaction resolves and
// reports whether all of them committed.
func (e *Engine) seqCausalReady(ids []uint64) bool {
	for _, id := range ids {
		live, st, known := e.txnOutcome(id)
		if live != nil {
			st = live.Wait()
		} else if !known {
			st = txn.Committed // evicted long ago; assume committed
		}
		if st != txn.Committed {
			return false
		}
	}
	return true
}

// ruleTimeout resolves the attempt deadline for r: the rule's own
// Timeout, or the engine default; negative disables.
func (e *Engine) ruleTimeout(r *Rule) time.Duration {
	if r.Timeout != 0 {
		if r.Timeout < 0 {
			return 0
		}
		return r.Timeout
	}
	return e.opts.RuleTimeout
}

// ruleRetries resolves the retry budget for r; negative disables.
func (e *Engine) ruleRetries(r *Rule) int {
	n := e.opts.RuleRetries
	if r.Retries != 0 {
		n = r.Retries
	}
	if n < 0 {
		return 0
	}
	return n
}

// breakerThreshold resolves the breaker threshold for r; 0 after
// resolution means the breaker is disabled.
func (e *Engine) breakerThreshold(r *Rule) int {
	n := e.opts.BreakerThreshold
	if r.Breaker != 0 {
		n = r.Breaker
	}
	if n < 0 {
		return 0
	}
	return n
}

// WaitDetached blocks until every accepted detached rule execution
// has finished. Tests and the bench harness use it as a barrier.
func (e *Engine) WaitDetached() {
	x := e.exec
	x.mu.Lock()
	defer x.mu.Unlock()
	for x.inflight > 0 {
		x.cond.Wait() //lint:allow lockdiscipline sync.Cond.Wait atomically releases the mutex while parked
	}
}

// Drain flips the engine into shutdown mode: new detached spawns are
// refused with ErrDraining, and the call blocks until every accepted
// firing has finished or ctx expires. Draining is sticky; Close
// completes the shutdown.
func (e *Engine) Drain(ctx context.Context) error {
	e.exec.drain()
	return e.exec.awaitIdle(ctx)
}

// DeadLetters returns the dead-letter queue, oldest first.
func (e *Engine) DeadLetters() []DeadLetter {
	x := e.exec
	x.mu.Lock()
	defer x.mu.Unlock()
	return append([]DeadLetter(nil), x.dead...)
}

// ClearDeadLetters empties the dead-letter queue and reports how many
// entries were dropped.
func (e *Engine) ClearDeadLetters() int {
	x := e.exec
	x.mu.Lock()
	n := len(x.dead)
	x.dead = nil
	x.mu.Unlock()
	e.met.deadDepth.Set(0)
	return n
}

// Breakers snapshots every rule breaker, sorted by rule name.
func (e *Engine) Breakers() []BreakerState {
	x := e.exec
	x.mu.Lock()
	out := make([]BreakerState, 0, len(x.breakers))
	for name, b := range x.breakers {
		out = append(out, BreakerState{
			Rule:        name,
			Open:        b.open,
			Consecutive: b.consecutive,
			Since:       b.since,
			LastErr:     b.lastErr,
		})
	}
	x.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Rule < out[j].Rule })
	return out
}

// RearmRule closes the rule's circuit breaker and resets its failure
// streak so the rule fires again. It reports whether the rule had a
// breaker record.
func (e *Engine) RearmRule(name string) bool {
	x := e.exec
	x.mu.Lock()
	b := x.breakers[name]
	found := b != nil
	wasOpen := found && b.open
	if found {
		b.open = false
		b.consecutive = 0
	}
	x.mu.Unlock()
	if wasOpen {
		e.met.breakerOpen.Add(-1)
	}
	return found
}

// runRuleGuarded executes the rule body with panic containment: a
// panicking condition or action aborts the rule transaction, captures
// the stack into the trace ring, and surfaces as an error.
func (e *Engine) runRuleGuarded(ctx context.Context, t *txn.Txn, r *Rule, in *event.Instance) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = e.recoverRulePanic(t, r, in, p)
		}
	}()
	return e.runRuleCtx(ctx, t, r, in)
}

// recoverRulePanic converts a recovered rule-body panic into a
// rule-transaction abort, recording the stack on the trigger's trace.
func (e *Engine) recoverRulePanic(t *txn.Txn, r *Rule, in *event.Instance, p any) error {
	e.met.panics.Inc()
	cause := fmt.Errorf("eca: rule %s panicked: %v", r.Name, p)
	now := e.clk.Now()
	e.tracer.Span(in.Trace, "panic", r.Name+": "+stackSnippet(debug.Stack()), now, 0)
	if t != nil {
		_ = t.AbortWith(cause)
	}
	return cause
}

// stackSnippet truncates a panic stack to a trace-ring-friendly size.
func stackSnippet(stack []byte) string {
	const max = 640
	if len(stack) > max {
		stack = stack[:max]
	}
	return string(stack)
}

// runBatch runs the non-nil entries on parallel goroutines and
// returns their errors index-aligned. A panicking entry is recovered
// in its worker and surfaced as that entry's error, so errors.Join
// reports it instead of the process dying.
func runBatch(fns []func() error) []error {
	errs := make([]error, len(fns))
	var wg sync.WaitGroup
	for i, fn := range fns {
		if fn == nil {
			continue
		}
		wg.Add(1)
		go func(i int, fn func() error) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[i] = fmt.Errorf("eca: parallel rule batch entry panicked: %v\n%s",
						p, stackSnippet(debug.Stack()))
				}
			}()
			errs[i] = fn()
		}(i, fn)
	}
	wg.Wait()
	return errs
}
