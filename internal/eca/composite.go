package eca

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/algebra"
	"repro/internal/event"
)

// compositeMgr is a composite ECA-manager: it owns the composers for
// one composite event declaration — one per live transaction for
// transaction-scoped composites, one global instance for cross-
// transaction composites — and, in the default asynchronous mode, a
// goroutine that performs the composition off the critical path
// (§6.3: "keep event composition simple and execute it in parallel").
type compositeMgr struct {
	engine *Engine
	decl   *algebra.Composite
	mgr    *Manager // manager of composite:Name, holding the rules

	mu     sync.Mutex
	global *algebra.Composer
	perTxn map[uint64]*algebra.Composer

	in     chan compMsg
	closed chan struct{}

	// hasImmediate caches whether any (unsafe-mode) immediate rule is
	// attached; it forces synchronous acknowledgement — the stall the
	// paper's design avoids.
	hasImmediate bool
}

type compMsg struct {
	in *event.Instance
	// flushTxn > 0 ends the life-span of that transaction's composer.
	flushTxn uint64
	// discardTxn > 0 drops that transaction's composer without
	// completing anything (abort).
	discardTxn uint64
	// ack, when non-nil, is closed after the message is processed.
	ack chan struct{}
}

// DefineComposite registers a composite event declaration: a manager
// for its completions is created and its primitive constituents are
// subscribed so primitive ECA-managers propagate to it (Figure 2).
func (e *Engine) DefineComposite(decl *algebra.Composite) error {
	if err := decl.Validate(); err != nil {
		return err
	}
	key := decl.Key()
	e.mu.Lock()
	if _, dup := e.composites[key]; dup {
		e.mu.Unlock()
		return fmt.Errorf("eca: composite %q already defined", decl.Name)
	}
	cm := &compositeMgr{
		engine: e,
		decl:   decl,
		mgr:    e.managerLocked(key, event.KindComposite),
		perTxn: make(map[uint64]*algebra.Composer),
		closed: make(chan struct{}),
	}
	if decl.Scope == algebra.ScopeGlobal {
		cp, err := algebra.NewComposer(decl)
		if err != nil {
			e.mu.Unlock()
			return err
		}
		cm.global = cp
	}
	e.composites[key] = cm
	// Wire each constituent's manager to propagate to this composite.
	// Sentry subscriptions happen after e.mu is released: the
	// dispatcher takes its own lock and must never nest inside ours
	// (lockdiscipline).
	var subscribe []string
	for _, prim := range algebra.PrimitiveKeys(decl.Expr) {
		pm := e.managerLocked(prim, kindOfKey(prim))
		pm.mu.Lock()
		pm.composers = append(pm.composers, cm)
		pm.refreshComposersLocked()
		pm.mu.Unlock()
		if k := kindOfKey(prim); k == event.KindMethod || k == event.KindState {
			subscribe = append(subscribe, prim)
		}
	}
	e.mu.Unlock()
	for _, prim := range subscribe {
		e.disp.Subscribe(prim)
	}

	if !e.opts.SyncComposition {
		cm.in = make(chan compMsg, e.opts.ComposerBuffer)
		go cm.loop()
	}
	return nil
}

// Composites reports the number of defined composite events.
func (e *Engine) Composites() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.composites)
}

// refreshImmediateFlag recomputes whether unsafe immediate rules are
// attached to the composite.
func (cm *compositeMgr) refreshImmediateFlag() {
	has := false
	for _, r := range cm.mgr.Rules() {
		if !r.Disabled && r.condMode() == Immediate {
			has = true
			break
		}
	}
	cm.mu.Lock()
	cm.hasImmediate = has
	cm.mu.Unlock()
}

// propagate hands a primitive occurrence to every composite manager
// containing it. In asynchronous mode this is a channel send; the
// caller proceeds without waiting — unless a composite has an
// (unsafe) immediate rule, in which case the caller must stall for
// the acknowledgement, which is precisely the cost Table 1's "(N)"
// refuses.
func (e *Engine) propagate(m *Manager, in *event.Instance) {
	cs := m.comps.Load()
	if cs == nil || len(*cs) == 0 {
		return
	}
	// Composers may hold the instance past this call (channel delivery,
	// semi-composed state); pin it so a pooled instance is not recycled
	// under them.
	in.Retain()
	for _, cm := range *cs {
		cm.deliver(in)
	}
}

func (cm *compositeMgr) deliver(in *event.Instance) {
	if cm.in == nil { // synchronous composition
		cm.process(compMsg{in: in})
		return
	}
	cm.mu.Lock()
	stall := cm.hasImmediate
	cm.mu.Unlock()
	if stall {
		msg := compMsg{in: in, ack: make(chan struct{})}
		if cm.send(msg) {
			<-msg.ack
		}
		return
	}
	cm.send(compMsg{in: in})
}

// send enqueues one message on the composer channel, counting the
// stall when the channel is full (back pressure that was previously
// invisible) and sampling the queue depth. It reports false when the
// composer shut down instead of accepting the message.
func (cm *compositeMgr) send(msg compMsg) bool {
	met := &cm.engine.met
	select {
	case cm.in <- msg:
	default:
		met.backpressure.Inc()
		select {
		case cm.in <- msg:
		case <-cm.closed:
			return false
		}
	}
	depth := int64(len(cm.in))
	met.queueDepth.Set(depth)
	met.queueHigh.SetMax(depth)
	return true
}

// loop is the asynchronous composer goroutine.
func (cm *compositeMgr) loop() {
	for {
		select {
		case msg := <-cm.in:
			cm.process(msg)
		case <-cm.closed:
			return
		}
	}
}

// process runs one message against the composers and handles any
// completed composite instances.
func (cm *compositeMgr) process(msg compMsg) {
	if msg.ack != nil {
		defer close(msg.ack)
	}
	now := cm.engine.clk.Now()
	switch {
	case msg.in != nil:
		var completions []*event.Instance
		cm.mu.Lock()
		if cm.decl.Scope == algebra.ScopeTransaction {
			if msg.in.Txn != 0 {
				cp := cm.perTxn[msg.in.Txn]
				if cp == nil {
					var err error
					cp, err = algebra.NewComposer(cm.decl)
					if err == nil {
						cm.perTxn[msg.in.Txn] = cp
					}
				}
				if cp != nil {
					completions = cp.Feed(msg.in)
				}
			} else {
				// A transaction-less occurrence (temporal) is visible
				// to every live per-transaction composition.
				for _, cp := range cm.perTxn {
					completions = append(completions, cp.Feed(msg.in)...)
				}
			}
		} else {
			completions = cm.global.Feed(msg.in)
		}
		cm.mu.Unlock()
		cm.finish(completions, msg.in, now)

	case msg.flushTxn != 0:
		cm.mu.Lock()
		cp := cm.perTxn[msg.flushTxn]
		delete(cm.perTxn, msg.flushTxn)
		cm.mu.Unlock()
		if cp != nil {
			completions := cp.Flush(now)
			cm.finish(completions, nil, now)
		}

	case msg.discardTxn != 0:
		cm.mu.Lock()
		cp := cm.perTxn[msg.discardTxn]
		delete(cm.perTxn, msg.discardTxn)
		cm.mu.Unlock()
		if cp != nil {
			cm.engine.met.gced.Add(uint64(cp.Pending()))
			cp.Reset()
		}
	}
}

// finish stamps completed composite instances with the lifecycle
// trace they belong to — the completing constituent's trace — records
// the compose stage, and hands them to the engine.
func (cm *compositeMgr) finish(completions []*event.Instance, from *event.Instance, start time.Time) {
	if len(completions) == 0 {
		return
	}
	e := cm.engine
	for _, comp := range completions {
		if comp.Trace == 0 {
			if from != nil && from.Trace != 0 {
				comp.Trace = from.Trace
			} else {
				comp.Trace = inheritTrace(comp)
			}
		}
		// A composite is as deep in the cascade as its deepest
		// constituent: one rule-raised part makes the completion part of
		// that rule's cascade.
		if comp.Depth == 0 {
			for _, p := range comp.Flatten() {
				if p.Depth > comp.Depth {
					comp.Depth = p.Depth
				}
			}
		}
		e.span(comp.Trace, "compose", cm.decl.Name, start)
	}
	e.handleCompletions(cm, completions)
}

// inheritTrace returns the trace of the most recent traced
// constituent, so one trace follows the event from primitive
// detection through composition to rule execution.
func inheritTrace(comp *event.Instance) uint64 {
	prims := comp.Flatten()
	for i := len(prims) - 1; i >= 0; i-- {
		if prims[i].Trace != 0 {
			return prims[i].Trace
		}
	}
	return 0
}

// flushTxn ends (or discards) the per-transaction composition for a
// transaction, synchronously — the EOT barrier.
func (cm *compositeMgr) flushTxn(id uint64, discard bool) {
	msg := compMsg{ack: make(chan struct{})}
	if discard {
		msg.discardTxn = id
	} else {
		msg.flushTxn = id
	}
	if cm.in == nil {
		cm.process(msg)
		return
	}
	select {
	case cm.in <- msg:
		<-msg.ack
	case <-cm.closed:
	}
}

// handleCompletions routes detected composite occurrences: they are
// recorded in the composite manager's history, fire its rules, and
// propagate further into composites-of-composites.
func (e *Engine) handleCompletions(cm *compositeMgr, completions []*event.Instance) {
	for _, comp := range completions {
		e.met.composites.Inc()
		if comp.Seq == 0 {
			comp.Seq = e.seq.Add(1)
		}
		e.record(cm.mgr, comp)
		trigger := e.trigger(comp)
		// Errors from (unsafe) immediate composite rules have no
		// transaction to veto here; they surface on the rule txn.
		e.fireRules(cm.mgr, comp, trigger)
		e.propagate(cm.mgr, comp)
	}
}

// GCExpired garbage-collects semi-composed occurrences whose validity
// interval has lapsed across all global composers, returning the
// total dropped (§3.3, §6.3).
func (e *Engine) GCExpired() int {
	e.mu.RLock()
	cms := make([]*compositeMgr, 0, len(e.composites))
	for _, cm := range e.composites {
		cms = append(cms, cm)
	}
	e.mu.RUnlock()
	now := e.clk.Now()
	total := 0
	for _, cm := range cms {
		cm.mu.Lock()
		if cm.global != nil {
			total += cm.global.Expire(now)
		}
		cm.mu.Unlock()
	}
	e.met.gced.Add(uint64(total))
	return total
}

// SemiComposed reports the number of buffered semi-composed
// occurrences across all composers (for the life-span experiments).
func (e *Engine) SemiComposed() int {
	e.mu.RLock()
	cms := make([]*compositeMgr, 0, len(e.composites))
	for _, cm := range e.composites {
		cms = append(cms, cm)
	}
	e.mu.RUnlock()
	total := 0
	for _, cm := range cms {
		cm.mu.Lock()
		if cm.global != nil {
			total += cm.global.Pending()
		}
		for _, cp := range cm.perTxn {
			total += cp.Pending()
		}
		cm.mu.Unlock()
	}
	return total
}

// DrainComposers blocks until every asynchronous composer has
// processed all events delivered so far.
func (e *Engine) DrainComposers() {
	e.mu.RLock()
	cms := make([]*compositeMgr, 0, len(e.composites))
	for _, cm := range e.composites {
		cms = append(cms, cm)
	}
	e.mu.RUnlock()
	for _, cm := range cms {
		if cm.in == nil {
			continue
		}
		msg := compMsg{ack: make(chan struct{})}
		select {
		case cm.in <- msg:
			<-msg.ack
		case <-cm.closed:
		}
	}
}

// Close shuts down the engine: temporal sources are disarmed, the
// supervised executor drains (refusing new detached spawns, waiting
// for in-flight rule transactions) and stops its workers, and the
// composer goroutines exit. The engine must not be used afterwards.
func (e *Engine) Close() {
	if !e.closed.CompareAndSwap(false, true) {
		return
	}
	e.stopTemporals()
	_ = e.Drain(context.Background())
	e.exec.shutdown()
	e.mu.Lock()
	for _, cm := range e.composites {
		close(cm.closed)
	}
	e.mu.Unlock()
}
