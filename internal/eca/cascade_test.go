package eca

import (
	"errors"
	"testing"
)

// TestCascadeDepthGuardStopsRunaway drives the classic unterminating
// rule: ping's rule re-invokes ping. Without the guard the engine
// recurses until the stack dies; with it the transaction at the depth
// bound aborts with ErrCascadeDepth, the trip counter moves, and the
// abort unwinds the whole cascade.
func TestCascadeDepthGuardStopsRunaway(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{MaxCascadeDepth: 8})
	obj := newSensor(t, db)
	fired := 0
	err := e.AddRule(&Rule{
		Name:     "runaway",
		EventKey: pingKey(),
		CondMode: Immediate, ActionMode: Immediate,
		Action: func(rc *RuleCtx) error {
			fired++
			_, err := rc.DB.Invoke(rc.Txn, obj, "ping", int64(1))
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	tx := db.Begin()
	_, err = db.Invoke(tx, obj, "ping", int64(1))
	if !errors.Is(err, ErrCascadeDepth) {
		t.Fatalf("runaway cascade returned %v, want ErrCascadeDepth", err)
	}
	tx.Abort()

	if got := e.met.cascadeTrips.Value(); got != 1 {
		t.Errorf("cascade trip counter = %d, want 1", got)
	}
	// The guard let exactly limit generations fire: depths 0..7.
	if fired != 8 {
		t.Errorf("rule fired %d times, want 8 (depth 0..7)", fired)
	}
	if hw := e.met.cascadeHigh.Value(); hw != 7 {
		t.Errorf("cascade highwater = %d, want 7", hw)
	}
}

// TestStaticCascadeBoundTightensCeiling installs an analysis-computed
// bound below the configured ceiling and verifies the lower limit
// wins — and that clearing it restores the ceiling.
func TestStaticCascadeBoundTightensCeiling(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{MaxCascadeDepth: 64})
	obj := newSensor(t, db)
	err := e.AddRule(&Rule{
		Name:     "chain",
		EventKey: pingKey(),
		CondMode: Immediate, ActionMode: Immediate,
		Action: func(rc *RuleCtx) error {
			_, err := rc.DB.Invoke(rc.Txn, obj, "reset")
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = e.AddRule(&Rule{
		Name:     "leaf",
		EventKey: resetKey(),
		CondMode: Immediate, ActionMode: Immediate,
		Action: func(rc *RuleCtx) error {
			return rc.Ctx().Set(obj, "alarms", int64(1))
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The chain is two rules deep; a static bound of 2 admits it.
	e.SetCascadeBound(2)
	if got := e.CascadeBound(); got != 2 {
		t.Fatalf("CascadeBound = %d, want 2", got)
	}
	tx := db.Begin()
	if _, err := db.Invoke(tx, obj, "ping", int64(1)); err != nil {
		t.Fatalf("chain within bound failed: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// A bound of 1 says "no rule may fire a rule": the reset event at
	// depth 1 would fire leaf, so the guard trips.
	e.SetCascadeBound(1)
	tx = db.Begin()
	if _, err := db.Invoke(tx, obj, "ping", int64(1)); !errors.Is(err, ErrCascadeDepth) {
		t.Fatalf("chain past static bound returned %v, want ErrCascadeDepth", err)
	}
	tx.Abort()

	// Clearing the bound restores the (generous) ceiling.
	e.SetCascadeBound(0)
	tx = db.Begin()
	if _, err := db.Invoke(tx, obj, "ping", int64(1)); err != nil {
		t.Fatalf("chain after clearing bound failed: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestCascadeGuardIgnoresInertDeepEvents verifies the guard only trips
// when rules would fire: deep events routed to managers with only
// disabled rules pass through.
func TestCascadeGuardIgnoresInertDeepEvents(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{MaxCascadeDepth: 2})
	obj := newSensor(t, db)
	if err := e.AddRule(&Rule{
		Name:     "chain",
		EventKey: pingKey(),
		CondMode: Immediate, ActionMode: Immediate,
		Action: func(rc *RuleCtx) error {
			_, err := rc.DB.Invoke(rc.Txn, obj, "reset")
			return err
		},
	}); err != nil {
		t.Fatal(err)
	}
	disabled := &Rule{
		Name:     "parked",
		EventKey: resetKey(),
		CondMode: Immediate, ActionMode: Immediate,
		Disabled: true,
		Action:   func(rc *RuleCtx) error { return nil },
	}
	if err := e.AddRule(disabled); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if _, err := db.Invoke(tx, obj, "ping", int64(1)); err != nil {
		t.Fatalf("inert deep event tripped the guard: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := e.met.cascadeTrips.Value(); got != 0 {
		t.Errorf("trip counter = %d, want 0", got)
	}
}
