package eca

import (
	"fmt"
	"sync"

	"repro/internal/clock"
	"repro/internal/event"
	"repro/internal/txn"
)

// TemporalHandle controls an armed temporal event source. Handles
// are registered with their engine so Close disarms whatever the
// caller forgot to Stop — a periodic source must not keep re-arming
// its timer chain after shutdown.
type TemporalHandle struct {
	e       *Engine
	mu      sync.Mutex
	timer   *clock.Timer
	stopped bool
}

// Stop disarms the temporal event; periodic events stop re-arming.
func (h *TemporalHandle) Stop() {
	h.mu.Lock()
	h.stopped = true
	if h.timer != nil {
		h.timer.Stop()
	}
	h.mu.Unlock()
	if h.e != nil {
		h.e.dropTemporal(h)
	}
}

func (h *TemporalHandle) setTimer(t *clock.Timer) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.stopped {
		t.Stop()
		return false
	}
	h.timer = t
	return true
}

// ArmTemporal schedules a temporal event source (paper §3.1: absolute
// or relative, periodic or aperiodic). The returned handle disarms it.
// Rules on temporal events execute detached (Table 1); composers also
// receive the occurrences.
func (e *Engine) ArmTemporal(spec event.TemporalSpec) (*TemporalHandle, error) {
	h := e.newTemporalHandle()
	now := e.clk.Now()
	switch spec.Temporal {
	case event.Absolute:
		d := spec.At.Sub(now)
		if d < 0 {
			return nil, fmt.Errorf("eca: absolute temporal event %q lies in the past", spec.Name)
		}
		h.setTimer(e.clk.AfterFunc(d, func() { e.emitTemporal(spec, 0) }))
	case event.Relative:
		if spec.Delay <= 0 {
			return nil, fmt.Errorf("eca: relative temporal event %q needs a positive delay", spec.Name)
		}
		h.setTimer(e.clk.AfterFunc(spec.Delay, func() { e.emitTemporal(spec, 0) }))
	case event.Periodic:
		if spec.Period <= 0 {
			return nil, fmt.Errorf("eca: periodic temporal event %q needs a positive period", spec.Name)
		}
		var rearm func()
		rearm = func() {
			e.emitTemporal(spec, 0)
			h.mu.Lock()
			stopped := h.stopped
			h.mu.Unlock()
			if !stopped {
				h.setTimer(e.clk.AfterFunc(spec.Period, rearm))
			}
		}
		h.setTimer(e.clk.AfterFunc(spec.Period, rearm))
	default:
		return nil, fmt.Errorf("eca: ArmTemporal cannot arm %q (use ArmMilestone for milestones)", spec.Key())
	}
	return h, nil
}

// ArmMilestone arms a milestone for a transaction: if t has not
// resolved (reached its milestone) when the delay elapses, the
// milestone event fires so a contingency plan can be invoked before
// the deadline is missed (§3.1). Call Stop on the handle when the
// milestone is reached in time.
func (e *Engine) ArmMilestone(t *txn.Txn, spec event.TemporalSpec) (*TemporalHandle, error) {
	if spec.Temporal != event.MilestoneKind {
		return nil, fmt.Errorf("eca: ArmMilestone needs a milestone spec")
	}
	if spec.Delay <= 0 {
		return nil, fmt.Errorf("eca: milestone %q needs a positive delay", spec.Name)
	}
	h := e.newTemporalHandle()
	h.setTimer(e.clk.AfterFunc(spec.Delay, func() {
		if t.Status() == txn.Active {
			// The milestone was not reached in time: the probability of
			// missing the deadline is high — raise the event.
			e.emitTemporal(spec, t.ID())
		}
	}))
	return h, nil
}

// newTemporalHandle creates a handle registered for shutdown: Close
// stops every armed handle that was not stopped by its owner.
func (e *Engine) newTemporalHandle() *TemporalHandle {
	h := &TemporalHandle{e: e}
	e.tempMu.Lock()
	e.temporals[h] = struct{}{}
	e.tempMu.Unlock()
	return h
}

// dropTemporal deregisters a stopped handle so milestone-per-txn
// usage does not grow the registry without bound.
func (e *Engine) dropTemporal(h *TemporalHandle) {
	e.tempMu.Lock()
	delete(e.temporals, h)
	e.tempMu.Unlock()
}

// stopTemporals disarms every registered handle. Handles are
// collected first: Stop deregisters, which takes tempMu.
func (e *Engine) stopTemporals() {
	e.tempMu.Lock()
	hs := make([]*TemporalHandle, 0, len(e.temporals))
	for h := range e.temporals {
		hs = append(hs, h)
	}
	e.tempMu.Unlock()
	for _, h := range hs {
		h.Stop()
	}
}

// emitTemporal injects a temporal occurrence into the engine. The
// transaction id is carried for milestones so the contingency rule
// can identify the endangered transaction, but the event remains
// transaction-less for coupling purposes (detached only).
func (e *Engine) emitTemporal(spec event.TemporalSpec, txnID uint64) {
	if e.closed.Load() {
		return
	}
	in := &event.Instance{
		SpecKey: spec.Key(),
		Kind:    event.KindTemporal,
		Time:    e.clk.Now(),
		Args:    []any{txnID},
	}
	e.Consume(in)
}
