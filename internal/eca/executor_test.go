package eca

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/event"
	"repro/internal/fault"
	"repro/internal/oodb"
	"repro/internal/txn"
)

// newExecEngine builds an engine over an in-memory database with the
// monitored Sensor class and the given clock. Retry backoff sleeps on
// the engine clock, so tests that exercise retries use a real clock
// (a virtual clock would park the worker until an Advance nobody
// issues).
func newExecEngine(t *testing.T, opts Options, clk clock.Clock) (*Engine, *oodb.DB) {
	t.Helper()
	db, err := oodb.Open(oodb.Options{Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	registerSensor(t, db)
	e := New(db, opts)
	t.Cleanup(e.Close)
	return e, db
}

func registerSensor(t *testing.T, db *oodb.DB) {
	t.Helper()
	sensor := oodb.NewClass("Sensor",
		oodb.Attr{Name: "val", Type: oodb.TInt},
		oodb.Attr{Name: "alarms", Type: oodb.TInt},
	)
	sensor.Monitored = true
	sensor.Method("ping", func(ctx *oodb.Ctx, self *oodb.Object, args []any) (any, error) {
		return nil, ctx.Set(self, "val", args[0])
	})
	sensor.Method("reset", func(ctx *oodb.Ctx, self *oodb.Object, args []any) (any, error) {
		return nil, ctx.Set(self, "val", int64(0))
	})
	if err := db.Dictionary().Register(sensor); err != nil {
		t.Fatal(err)
	}
}

// fireOnce raises the Sensor ping event in its own committed
// transaction, spawning whatever detached rules listen on it.
func fireOnce(t *testing.T, db *oodb.DB, obj *oodb.Object) {
	t.Helper()
	tx := db.Begin()
	if _, err := db.Invoke(tx, obj, "ping", int64(1)); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit trigger: %v", err)
	}
}

// TestDetachedDeadlockRetry forces two detached rules into a genuine
// lock-order deadlock (A→B vs B→A, rendezvous after the first lock)
// and verifies the victim is retried with backoff until it succeeds:
// retries counted, no dead letters, breakers untouched.
func TestDetachedDeadlockRetry(t *testing.T) {
	e, db := newExecEngine(t, Options{
		RetryBackoff:    time.Millisecond,
		RetryBackoffMax: 5 * time.Millisecond,
	}, clock.NewReal())
	objA := newSensor(t, db)
	objB := newSensor(t, db)

	var gate sync.WaitGroup
	gate.Add(2)
	mk := func(name string, first, second *oodb.Object) *Rule {
		var attempts atomic.Int32
		return &Rule{
			Name: name, EventKey: pingKey(), ActionMode: Detached,
			Action: func(rc *RuleCtx) error {
				n := attempts.Add(1)
				if err := rc.Ctx().Set(first, "alarms", int64(1)); err != nil {
					return err
				}
				if n == 1 {
					// Both rules hold their first lock before either
					// requests its second: the cycle is inevitable.
					gate.Done()
					gate.Wait()
				}
				return rc.Ctx().Set(second, "alarms", int64(2))
			},
		}
	}
	if err := e.AddRule(mk("lockAB", objA, objB)); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRule(mk("lockBA", objB, objA)); err != nil {
		t.Fatal(err)
	}

	fireOnce(t, db, objA)
	e.WaitDetached()

	if got := e.met.retries.Value(); got < 1 {
		t.Fatalf("reach_rule_retries_total = %d, want >= 1", got)
	}
	if dl := e.DeadLetters(); len(dl) != 0 {
		t.Fatalf("deadlock victim dead-lettered instead of retried: %+v", dl)
	}
	for _, b := range e.Breakers() {
		if b.Open || b.Consecutive != 0 {
			t.Fatalf("breaker fed by a retriable abort: %+v", b)
		}
	}
}

// TestDetachedRetriesExhausted drains the retry budget on a rule that
// always aborts as a deadlock victim and verifies the dead-letter
// record: reason, attempt count, retry metric.
func TestDetachedRetriesExhausted(t *testing.T) {
	e, db := newExecEngine(t, Options{
		RuleRetries:  2,
		RetryBackoff: time.Millisecond,
	}, clock.NewReal())
	obj := newSensor(t, db)

	var attempts atomic.Int32
	if err := e.AddRule(&Rule{
		Name: "victim", EventKey: pingKey(), ActionMode: Detached,
		Action: func(rc *RuleCtx) error {
			attempts.Add(1)
			return fmt.Errorf("forced: %w", txn.ErrDeadlock)
		},
	}); err != nil {
		t.Fatal(err)
	}

	fireOnce(t, db, obj)
	e.WaitDetached()

	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", got)
	}
	if got := e.met.retries.Value(); got != 2 {
		t.Fatalf("reach_rule_retries_total = %d, want 2", got)
	}
	dl := e.DeadLetters()
	if len(dl) != 1 {
		t.Fatalf("dead letters = %+v, want exactly one", dl)
	}
	if dl[0].Reason != "retries-exhausted" || dl[0].Attempts != 3 || dl[0].Rule != "victim" {
		t.Fatalf("dead letter = %+v, want reason retries-exhausted after 3 attempts", dl[0])
	}
}

// TestBreakerTripAndRearm walks a permanently failing rule through
// the breaker lifecycle: consecutive failures trip it at the
// threshold, spawns are then rejected straight to the dead-letter
// queue, and RearmRule closes it again.
func TestBreakerTripAndRearm(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{BreakerThreshold: 2})
	obj := newSensor(t, db)

	var runs atomic.Int32
	if err := e.AddRule(&Rule{
		Name: "perma", EventKey: pingKey(), ActionMode: Detached,
		Action: func(rc *RuleCtx) error {
			runs.Add(1)
			return errors.New("permanent failure")
		},
	}); err != nil {
		t.Fatal(err)
	}

	fireOnce(t, db, obj)
	e.WaitDetached()
	bs := e.Breakers()
	if len(bs) != 1 || bs[0].Open || bs[0].Consecutive != 1 {
		t.Fatalf("after 1 failure: breakers = %+v", bs)
	}

	fireOnce(t, db, obj)
	e.WaitDetached()
	bs = e.Breakers()
	if len(bs) != 1 || !bs[0].Open || bs[0].Consecutive != 2 {
		t.Fatalf("after 2 failures: breakers = %+v, want open", bs)
	}
	if got := e.met.breakerTrips.Value(); got != 1 {
		t.Fatalf("reach_rule_breaker_trips_total = %d, want 1", got)
	}
	if got := e.met.breakerOpen.Value(); got != 1 {
		t.Fatalf("reach_rule_breaker_open = %d, want 1", got)
	}

	// Open breaker: the spawn is rejected before it reaches the pool.
	fireOnce(t, db, obj)
	e.WaitDetached()
	if got := runs.Load(); got != 2 {
		t.Fatalf("rule ran %d times, want 2 (third spawn rejected at breaker)", got)
	}
	if got := e.met.rejBreaker.Value(); got != 1 {
		t.Fatalf("rejected{breaker-open} = %d, want 1", got)
	}
	dl := e.DeadLetters()
	if len(dl) != 3 || dl[2].Reason != "breaker-open" {
		t.Fatalf("dead letters = %+v, want third with reason breaker-open", dl)
	}

	if e.RearmRule("ghost") {
		t.Fatal("RearmRule invented a breaker record for an unknown rule")
	}
	if !e.RearmRule("perma") {
		t.Fatal("RearmRule(perma) = false, want true")
	}
	if got := e.met.breakerOpen.Value(); got != 0 {
		t.Fatalf("reach_rule_breaker_open after rearm = %d, want 0", got)
	}
	bs = e.Breakers()
	if bs[0].Open || bs[0].Consecutive != 0 {
		t.Fatalf("after rearm: breakers = %+v, want closed", bs)
	}

	fireOnce(t, db, obj)
	e.WaitDetached()
	if got := runs.Load(); got != 3 {
		t.Fatalf("rearmed rule ran %d times, want 3", got)
	}
}

// TestDetachedOverloadShed fills a Workers=1/Queue=1 executor and
// verifies the third spawn is shed: counted, dead-lettered, never
// executed.
func TestDetachedOverloadShed(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{Workers: 1, Queue: 1, Overload: OverloadShed})
	obj := newSensor(t, db)

	started := make(chan struct{}, 3)
	hold := make(chan struct{})
	var ran atomic.Int32
	if err := e.AddRule(&Rule{
		Name: "slowpoke", EventKey: pingKey(), ActionMode: Detached,
		Action: func(rc *RuleCtx) error {
			started <- struct{}{}
			<-hold
			ran.Add(1)
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}

	fireOnce(t, db, obj) // occupies the single worker...
	<-started            // ...and the queue is observably empty again
	fireOnce(t, db, obj) // fills the queue
	fireOnce(t, db, obj) // shed

	if got := e.met.rejOverload.Value(); got != 1 {
		t.Fatalf("rejected{overload} = %d, want 1", got)
	}
	if got := e.met.firedDetached.Value(); got != 2 {
		t.Fatalf("fired{detached} = %d, want 2 (shed spawn must not count)", got)
	}
	dl := e.DeadLetters()
	if len(dl) != 1 || dl[0].Reason != "overload" || !strings.Contains(dl[0].Err, "overloaded") {
		t.Fatalf("dead letters = %+v, want one overload entry", dl)
	}

	close(hold)
	e.WaitDetached()
	if got := ran.Load(); got != 2 {
		t.Fatalf("executed %d firings, want 2", got)
	}
}

// TestRuleDeadline gives a blocking rule a per-rule timeout and
// verifies the watchdog aborts it, cancels RuleCtx.Context, and
// reports the deadline (not the symptom) in metrics and the
// dead-letter queue.
func TestRuleDeadline(t *testing.T) {
	e, db := newExecEngine(t, Options{}, clock.NewReal())
	obj := newSensor(t, db)

	if err := e.AddRule(&Rule{
		Name: "stuck", EventKey: pingKey(), ActionMode: Detached,
		Timeout: 25 * time.Millisecond,
		Action: func(rc *RuleCtx) error {
			<-rc.Context.Done()
			return rc.Context.Err()
		},
	}); err != nil {
		t.Fatal(err)
	}

	fireOnce(t, db, obj)
	e.WaitDetached()

	if got := e.met.deadlines.Value(); got != 1 {
		t.Fatalf("reach_rule_deadline_total = %d, want 1", got)
	}
	dl := e.DeadLetters()
	if len(dl) != 1 || dl[0].Reason != "deadline" {
		t.Fatalf("dead letters = %+v, want one deadline entry", dl)
	}
	if !strings.Contains(dl[0].Err, "deadline") {
		t.Fatalf("dead letter error %q does not name the deadline", dl[0].Err)
	}
}

// TestRulePanicRecovered verifies a panicking detached rule aborts
// its own transaction, lands in the dead-letter queue with the panic
// message, and leaves the stack in the trace ring — without killing
// the process or the worker.
func TestRulePanicRecovered(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{})
	obj := newSensor(t, db)

	if err := e.AddRule(&Rule{
		Name: "bomb", EventKey: pingKey(), ActionMode: Detached,
		Action: func(rc *RuleCtx) error {
			panic("kaboom")
		},
	}); err != nil {
		t.Fatal(err)
	}

	fireOnce(t, db, obj)
	e.WaitDetached()

	if got := e.met.panics.Value(); got != 1 {
		t.Fatalf("reach_rule_panics_total = %d, want 1", got)
	}
	dl := e.DeadLetters()
	if len(dl) != 1 || !strings.Contains(dl[0].Err, "panicked: kaboom") {
		t.Fatalf("dead letters = %+v, want one panic entry", dl)
	}
	found := false
	for _, tr := range e.Tracer().Recent(16) {
		for _, sp := range tr.Spans {
			if sp.Stage == "panic" && strings.Contains(sp.Key, "bomb") {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no panic span with the rule's stack in the trace ring")
	}

	// The worker survived: the next firing still executes.
	var ok atomic.Bool
	if err := e.AddRule(&Rule{
		Name: "after", EventKey: resetKey(), ActionMode: Detached,
		Action: func(rc *RuleCtx) error { ok.Store(true); return nil },
	}); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if _, err := db.Invoke(tx, obj, "reset"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	e.WaitDetached()
	if !ok.Load() {
		t.Fatal("worker did not survive the panic")
	}
}

// TestParallelDeferredPanicIsolated pins the ParallelExec deferred
// batch: a panicking entry surfaces as that entry's error through
// errors.Join at commit, and its sibling still runs.
func TestParallelDeferredPanicIsolated(t *testing.T) {
	e, db, _ := newTestEngine(t, Options{Exec: ParallelExec})
	obj := newSensor(t, db)

	var okRan atomic.Bool
	if err := e.AddRule(&Rule{
		Name: "boomDef", EventKey: pingKey(), ActionMode: Deferred,
		Action: func(rc *RuleCtx) error { panic("deferred kaboom") },
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRule(&Rule{
		Name: "okDef", EventKey: pingKey(), ActionMode: Deferred,
		Action: func(rc *RuleCtx) error { okRan.Store(true); return nil },
	}); err != nil {
		t.Fatal(err)
	}

	tx := db.Begin()
	if _, err := db.Invoke(tx, obj, "ping", int64(1)); err != nil {
		t.Fatal(err)
	}
	err := tx.Commit()
	if err == nil || !strings.Contains(err.Error(), "panicked: deferred kaboom") {
		t.Fatalf("commit error = %v, want the recovered panic", err)
	}
	if !okRan.Load() {
		t.Fatal("sibling deferred rule did not run")
	}
	if got := e.met.panics.Value(); got != 1 {
		t.Fatalf("reach_rule_panics_total = %d, want 1", got)
	}
}

// TestCloseStopsTemporalHandles pins the timer-leak fix: a periodic
// temporal source armed on a virtual clock must leave zero pending
// timers once the engine closes, even though nobody called Stop on
// the handle.
func TestCloseStopsTemporalHandles(t *testing.T) {
	e, _, vc := newTestEngine(t, Options{})
	if _, err := e.ArmTemporal(event.TemporalSpec{
		Name: "tick", Temporal: event.Periodic, Period: time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	if vc.PendingTimers() == 0 {
		t.Fatal("periodic source armed no timer")
	}
	e.Close()
	if n := vc.PendingTimers(); n != 0 {
		t.Fatalf("%d timers leaked past Close (periodic handle re-armed itself)", n)
	}
}

// TestCloseReleasesGoroutines closes an engine with live workers and
// an armed periodic source and polls until the goroutine count
// returns to its pre-open baseline.
func TestCloseReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	db, err := oodb.Open(oodb.Options{Clock: clock.NewReal()})
	if err != nil {
		t.Fatal(err)
	}
	registerSensor(t, db)
	e := New(db, Options{Workers: 6})
	if _, err := e.ArmTemporal(event.TemporalSpec{
		Name: "tick", Temporal: event.Periodic, Period: 5 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	obj := newSensor(t, db)
	if err := e.AddRule(&Rule{
		Name: "noop", EventKey: pingKey(), ActionMode: Detached,
		Action: func(rc *RuleCtx) error { return nil },
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		fireOnce(t, db, obj)
	}
	e.WaitDetached()
	e.Close()

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("goroutines: %d before open, %d after Close", before, got)
	}
}

// TestDrainWaitDetachedRace hammers WaitDetached and Drain while
// raisers keep spawning detached work. Invariants under -race: every
// accepted spawn executes exactly once, and no rule body starts after
// Drain returns.
func TestDrainWaitDetachedRace(t *testing.T) {
	e, db := newExecEngine(t, Options{Workers: 4, Queue: 16}, clock.NewReal())
	obj := newSensor(t, db)

	var executed atomic.Int64
	if err := e.AddRule(&Rule{
		Name: "count", EventKey: pingKey(), ActionMode: Detached,
		Action: func(rc *RuleCtx) error { executed.Add(1); return nil },
	}); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var raisers sync.WaitGroup
	for g := 0; g < 4; g++ {
		raisers.Add(1)
		go func() {
			defer raisers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx := db.Begin()
				_, _ = db.Invoke(tx, obj, "ping", int64(1))
				_ = tx.Commit()
			}
		}()
	}
	var waiters sync.WaitGroup
	for g := 0; g < 2; g++ {
		waiters.Add(1)
		go func() {
			defer waiters.Done()
			for i := 0; i < 25; i++ {
				e.WaitDetached()
			}
		}()
	}

	time.Sleep(20 * time.Millisecond)
	if err := e.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	atDrain := executed.Load()
	close(stop)
	raisers.Wait()
	waiters.Wait()
	time.Sleep(10 * time.Millisecond)

	if got := executed.Load(); got != atDrain {
		t.Fatalf("rule body ran after Drain returned: %d -> %d", atDrain, got)
	}
	if fired := e.met.firedDetached.Value(); fired != uint64(atDrain) {
		t.Fatalf("accepted %d spawns but executed %d: a spawn was lost", fired, atDrain)
	}
	if got := e.met.rejDraining.Value(); got == 0 {
		t.Log("no spawns were rejected while draining (raisers stopped early); invariants still hold")
	}
}

// TestDrainDeadlineExpires verifies Drain honors its context while a
// rule is still running, and that draining is sticky: the spawn that
// follows is refused.
func TestDrainDeadlineExpires(t *testing.T) {
	e, db := newExecEngine(t, Options{Workers: 1}, clock.NewReal())
	obj := newSensor(t, db)

	hold := make(chan struct{})
	started := make(chan struct{})
	if err := e.AddRule(&Rule{
		Name: "holdup", EventKey: pingKey(), ActionMode: Detached,
		Action: func(rc *RuleCtx) error {
			close(started)
			<-hold
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}

	fireOnce(t, db, obj)
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := e.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain = %v, want context.DeadlineExceeded", err)
	}

	fireOnce(t, db, obj) // refused: draining is sticky
	if got := e.met.rejDraining.Value(); got != 1 {
		t.Fatalf("rejected{draining} = %d, want 1", got)
	}

	close(hold)
	if err := e.Drain(context.Background()); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
}

// TestDetachedRuleFaultInjection exercises the executor against the
// storage fault substrate: a WAL-append failpoint makes the rule
// transaction's commit fail with an injected (non-retriable) error,
// which must feed the breaker and the dead-letter queue.
func TestDetachedRuleFaultInjection(t *testing.T) {
	db, err := oodb.Open(oodb.Options{Dir: t.TempDir(), Clock: clock.NewReal()})
	if err != nil {
		t.Fatal(err)
	}
	registerSensor(t, db)
	e := New(db, Options{})
	t.Cleanup(e.Close)
	obj := newSensor(t, db)
	// Persist the sensor: only persistent objects reach the store (and
	// therefore the WAL failpoint) at commit.
	tx := db.Begin()
	if err := db.Persist(tx, obj); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	hold := make(chan struct{})
	if err := e.AddRule(&Rule{
		Name: "walvictim", EventKey: pingKey(), ActionMode: Detached,
		Action: func(rc *RuleCtx) error {
			<-hold // commit only after the failpoint is armed
			return rc.Ctx().Set(obj, "alarms", int64(7))
		},
	}); err != nil {
		t.Fatal(err)
	}

	fireOnce(t, db, obj) // trigger commits before the failpoint arms
	if err := fault.Arm(fault.SiteWALAppend, "error"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.DisarmAll)
	close(hold)
	e.WaitDetached()

	dl := e.DeadLetters()
	if len(dl) != 1 || dl[0].Reason != "failed" {
		t.Fatalf("dead letters = %+v, want one failed entry", dl)
	}
	if !strings.Contains(dl[0].Err, "injected") {
		t.Fatalf("dead letter error %q does not carry the injected fault", dl[0].Err)
	}
	bs := e.Breakers()
	if len(bs) != 1 || bs[0].Consecutive != 1 {
		t.Fatalf("breakers = %+v, want one record with a single failure", bs)
	}
}

// TestExecutorStress is the make-stress workhorse: a small pool under
// shed policy, rules that panic, deadlock, fail, and succeed, raisers
// on several goroutines, and a WAL failpoint injecting storage errors
// every few commits. The assertions are liveness and bookkeeping: the
// engine drains within the deadline and every accepted spawn resolved.
func TestExecutorStress(t *testing.T) {
	firings := 300
	if testing.Short() {
		firings = 80
	}
	db, err := oodb.Open(oodb.Options{Dir: t.TempDir(), Clock: clock.NewReal()})
	if err != nil {
		t.Fatal(err)
	}
	registerSensor(t, db)
	e := New(db, Options{
		Workers:          4,
		Queue:            8,
		Overload:         OverloadShed,
		RuleRetries:      2,
		RetryBackoff:     time.Millisecond,
		RetryBackoffMax:  4 * time.Millisecond,
		BreakerThreshold: 1 << 20, // keep failing rules flowing
	})
	t.Cleanup(e.Close)
	obj := newSensor(t, db)
	// Persist the sensor so rule commits carry WAL traffic for the
	// armed failpoint to inject into.
	ptx := db.Begin()
	if err := db.Persist(ptx, obj); err != nil {
		t.Fatal(err)
	}
	if err := ptx.Commit(); err != nil {
		t.Fatal(err)
	}

	var completions atomic.Int64
	var seq atomic.Int64
	if err := e.AddRule(&Rule{
		Name: "mixed", EventKey: pingKey(), ActionMode: Detached,
		Action: func(rc *RuleCtx) error {
			defer completions.Add(1)
			switch seq.Add(1) % 11 {
			case 3:
				completions.Add(-1) // retried: not a completion yet
				return fmt.Errorf("forced: %w", txn.ErrDeadlock)
			case 7:
				panic("stress kaboom")
			default:
				return rc.Ctx().Set(obj, "alarms", seq.Load())
			}
		},
	}); err != nil {
		t.Fatal(err)
	}

	if err := fault.Arm(fault.SiteWALAppend, "error-every=13"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.DisarmAll)

	var raisers sync.WaitGroup
	for g := 0; g < 4; g++ {
		raisers.Add(1)
		go func() {
			defer raisers.Done()
			for i := 0; i < firings/4; i++ {
				tx := db.Begin()
				_, _ = db.Invoke(tx, obj, "ping", int64(i))
				_ = tx.Commit() // may fail at the armed failpoint; fine
			}
		}()
	}
	raisers.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		t.Fatalf("Drain under stress: %v", err)
	}
	fired := e.met.firedDetached.Value()
	if fired == 0 {
		t.Fatal("stress run accepted no spawns")
	}
	// Every accepted spawn resolved: it either completed an attempt
	// cycle (success or permanent failure) — panics and injected
	// faults land in the dead-letter queue alongside it.
	if got := completions.Load(); uint64(got) > fired {
		t.Fatalf("completions %d exceed accepted spawns %d", got, fired)
	}
	if e.met.panics.Value() == 0 {
		t.Fatal("stress run never exercised panic recovery")
	}
}
