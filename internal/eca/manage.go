package eca

import (
	"sort"
	"time"

	"repro/internal/clock"
	"repro/internal/event"
)

// eventKindComposite avoids importing event in every call site below.
const eventKindComposite = event.KindComposite

// RuleInfo describes a registered rule for management interfaces
// (the paper's planned GUI for rule definition and management, §7).
type RuleInfo struct {
	Name       string
	EventKey   string
	Priority   int
	CondMode   Coupling
	ActionMode Coupling
	Disabled   bool
	Defined    time.Time
}

// ListRules returns every registered rule, grouped by event key and
// ordered by firing order within each group.
func (e *Engine) ListRules() []RuleInfo {
	e.mu.RLock()
	managers := make([]*Manager, 0, len(e.managers))
	for _, m := range e.managers {
		managers = append(managers, m)
	}
	e.mu.RUnlock()
	sort.Slice(managers, func(i, j int) bool { return managers[i].key < managers[j].key })
	var out []RuleInfo
	for _, m := range managers {
		for _, r := range m.Rules() {
			out = append(out, RuleInfo{
				Name:       r.Name,
				EventKey:   r.EventKey,
				Priority:   r.Priority,
				CondMode:   r.condMode(),
				ActionMode: r.ActionMode,
				Disabled:   r.Disabled,
				Defined:    r.regTime,
			})
		}
	}
	return out
}

// SetRuleEnabled enables or disables a rule at run time without
// unregistering it. It reports whether the rule was found.
func (e *Engine) SetRuleEnabled(eventKey, name string, enabled bool) bool {
	m := e.lookupManager(eventKey)
	if m == nil {
		return false
	}
	m.mu.Lock()
	found := false
	for _, r := range m.rules {
		if r.Name == name {
			r.Disabled = !enabled
			found = true
		}
	}
	m.refreshFiresLocked()
	m.mu.Unlock()
	if found && kindOfKey(eventKey) == eventKindComposite {
		e.mu.RLock()
		cm := e.composites[eventKey]
		e.mu.RUnlock()
		if cm != nil {
			cm.refreshImmediateFlag()
		}
	}
	return found
}

// StartGC arms a background garbage collector that expires
// semi-composed occurrences whose validity interval lapsed, every
// interval — the "background process" discipline of §6.3. Stop the
// returned timer chain with the handle.
func (e *Engine) StartGC(interval time.Duration) *TemporalHandle {
	h := e.newTemporalHandle()
	var rearm func()
	rearm = func() {
		if e.closed.Load() {
			return
		}
		e.GCExpired()
		h.mu.Lock()
		stopped := h.stopped
		h.mu.Unlock()
		if !stopped {
			h.setTimer(e.clk.AfterFunc(interval, rearm))
		}
	}
	h.setTimer(e.clk.AfterFunc(interval, rearm))
	return h
}

// Clock exposes the engine's time source.
func (e *Engine) Clock() clock.Clock { return e.clk }
